#pragma once

// Minimal dense-matrix math for the training-accuracy experiment
// (Fig. 13). Row-major float matrices with just the operations an MLP
// needs. Written for clarity, not BLAS-level speed — the experiment's
// models are tiny.

#include <cassert>
#include <cstddef>
#include <vector>

namespace dlfs::dnn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float* row(std::size_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const float* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  [[nodiscard]] std::vector<float>& data() { return data_; }
  [[nodiscard]] const std::vector<float>& data() const { return data_; }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b  (a: m×k, b: k×n, out: m×n)
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T  (a: m×k, b: n×k, out: m×n)
void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b  (a: k×m, b: k×n, out: m×n)
void matmul_at(const Matrix& a, const Matrix& b, Matrix& out);

/// Adds `bias` (1×n) to every row of m×n `x`.
void add_bias_rows(Matrix& x, const std::vector<float>& bias);

/// In-place ReLU; returns the pre-activation copy needed for backprop.
void relu_inplace(Matrix& x);

/// dx := dy masked by (x_pre > 0).
void relu_backward(const Matrix& pre, Matrix& grad);

/// Row-wise softmax in place.
void softmax_rows(Matrix& x);

}  // namespace dlfs::dnn

#pragma once

// A small multilayer perceptron with softmax cross-entropy, trained by
// mini-batch SGD — the model for the Fig. 13 sample-ordering experiment.
// (The paper trains AlexNet; what the experiment actually tests is
// whether DLFS's chunk-relaxed sample order degrades convergence, and
// that property is model-agnostic — any SGD learner sensitive to input
// ordering will expose a bad order. See DESIGN.md §2.)

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dnn/tensor.hpp"

namespace dlfs::dnn {

class Mlp {
 public:
  /// layers = {in, hidden..., out}; weights He-initialized from `seed`.
  Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed);

  [[nodiscard]] std::size_t input_dim() const { return sizes_.front(); }
  [[nodiscard]] std::size_t num_classes() const { return sizes_.back(); }

  /// Forward pass: returns class probabilities (batch × classes).
  [[nodiscard]] Matrix forward(const Matrix& x) const;

  /// One SGD step on a batch; returns the mean cross-entropy loss.
  float train_step(const Matrix& x, const std::vector<std::uint32_t>& labels,
                   float learning_rate);

  /// Top-1 accuracy on a labelled set.
  [[nodiscard]] double evaluate(const Matrix& x,
                                const std::vector<std::uint32_t>& labels) const;

 private:
  struct Layer {
    Matrix w;                 // in × out
    std::vector<float> bias;  // out
  };

  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
};

}  // namespace dlfs::dnn

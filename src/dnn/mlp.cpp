#include "dnn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace dlfs::dnn {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, std::uint64_t seed)
    : sizes_(std::move(layer_sizes)) {
  if (sizes_.size() < 2) throw std::invalid_argument("mlp needs >= 2 layers");
  Rng rng(seed);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.w = Matrix(sizes_[l], sizes_[l + 1]);
    const float scale =
        std::sqrt(2.0f / static_cast<float>(sizes_[l]));  // He init
    for (auto& v : layer.w.data()) {
      v = static_cast<float>(rng.next_gaussian()) * scale;
    }
    layer.bias.assign(sizes_[l + 1], 0.0f);
    layers_.push_back(std::move(layer));
  }
}

Matrix Mlp::forward(const Matrix& x) const {
  Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z;
    matmul(h, layers_[l].w, z);
    add_bias_rows(z, layers_[l].bias);
    if (l + 1 < layers_.size()) relu_inplace(z);
    h = std::move(z);
  }
  softmax_rows(h);
  return h;
}

float Mlp::train_step(const Matrix& x,
                      const std::vector<std::uint32_t>& labels,
                      float learning_rate) {
  const std::size_t batch = x.rows();
  if (labels.size() != batch) {
    throw std::invalid_argument("labels/batch size mismatch");
  }

  // Forward, keeping activations and pre-activations.
  std::vector<Matrix> acts;     // inputs of each layer
  std::vector<Matrix> pres;     // pre-activations (for relu backward)
  acts.push_back(x);
  Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z;
    matmul(h, layers_[l].w, z);
    add_bias_rows(z, layers_[l].bias);
    pres.push_back(z);
    if (l + 1 < layers_.size()) {
      relu_inplace(z);
      acts.push_back(z);
    }
    h = std::move(z);
  }
  softmax_rows(h);

  // Loss + output gradient (softmax cross-entropy): dz = (p - y) / batch.
  float loss = 0.0f;
  Matrix dz = h;
  for (std::size_t r = 0; r < batch; ++r) {
    const std::uint32_t y = labels[r];
    loss += -std::log(std::max(h.at(r, y), 1e-12f));
    dz.at(r, y) -= 1.0f;
  }
  loss /= static_cast<float>(batch);
  for (auto& v : dz.data()) v /= static_cast<float>(batch);

  // Backward through the layers.
  for (std::size_t li = layers_.size(); li-- > 0;) {
    Layer& layer = layers_[li];
    Matrix dw;
    matmul_at(acts[li], dz, dw);  // in × out
    std::vector<float> db(layer.bias.size(), 0.0f);
    for (std::size_t r = 0; r < dz.rows(); ++r) {
      const float* row = dz.row(r);
      for (std::size_t c = 0; c < db.size(); ++c) db[c] += row[c];
    }
    Matrix dx;
    if (li > 0) {
      matmul_bt(dz, layer.w, dx);
      relu_backward(pres[li - 1], dx);
    }
    // SGD update.
    for (std::size_t i = 0; i < layer.w.data().size(); ++i) {
      layer.w.data()[i] -= learning_rate * dw.data()[i];
    }
    for (std::size_t c = 0; c < layer.bias.size(); ++c) {
      layer.bias[c] -= learning_rate * db[c];
    }
    if (li > 0) dz = std::move(dx);
  }
  return loss;
}

double Mlp::evaluate(const Matrix& x,
                     const std::vector<std::uint32_t>& labels) const {
  const Matrix p = forward(x);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < p.cols(); ++c) {
      if (p.at(r, c) > p.at(r, best)) best = c;
    }
    if (best == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(p.rows());
}

}  // namespace dlfs::dnn

#include "dnn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace dlfs::dnn {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  out = Matrix(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float av = a.at(i, k);
      if (av == 0.0f) continue;
      const float* brow = b.row(k);
      float* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  out = Matrix(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* arow = a.row(i);
      const float* brow = b.row(j);
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      out.at(i, j) = acc;
    }
  }
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  out = Matrix(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
}

void add_bias_rows(Matrix& x, const std::vector<float>& bias) {
  assert(bias.size() == x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] += bias[c];
  }
}

void relu_inplace(Matrix& x) {
  for (auto& v : x.data()) v = std::max(v, 0.0f);
}

void relu_backward(const Matrix& pre, Matrix& grad) {
  assert(pre.rows() == grad.rows() && pre.cols() == grad.cols());
  for (std::size_t i = 0; i < pre.data().size(); ++i) {
    if (pre.data()[i] <= 0.0f) grad.data()[i] = 0.0f;
  }
}

void softmax_rows(Matrix& x) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    float mx = row[0];
    for (std::size_t c = 1; c < x.cols(); ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] /= sum;
  }
}

}  // namespace dlfs::dnn

#include "dnn/experiment.hpp"

#include <stdexcept>

namespace dlfs::dnn {

namespace {

void fill_split(Rng& rng, const Matrix& centers, double sigma,
                std::size_t num_classes, Matrix& x,
                std::vector<std::uint32_t>& y) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto cls = static_cast<std::uint32_t>(rng.next_below(num_classes));
    y[r] = cls;
    for (std::size_t d = 0; d < x.cols(); ++d) {
      x.at(r, d) = centers.at(cls, d) +
                   static_cast<float>(rng.next_gaussian() * sigma);
    }
  }
}

}  // namespace

SyntheticTask::SyntheticTask(const SyntheticTaskConfig& config)
    : config_(config),
      train_x_(config.train_samples, config.feature_dim),
      train_y_(config.train_samples),
      test_x_(config.test_samples, config.feature_dim),
      test_y_(config.test_samples) {
  Rng rng(config.seed);
  Matrix centers(config.num_classes, config.feature_dim);
  for (auto& v : centers.data()) {
    v = static_cast<float>(rng.next_gaussian());
  }
  fill_split(rng, centers, config.cluster_sigma, config.num_classes, train_x_,
             train_y_);
  fill_split(rng, centers, config.cluster_sigma, config.num_classes, test_x_,
             test_y_);
}

std::vector<std::uint32_t> epoch_order(OrderPolicy policy, std::size_t n,
                                       std::uint64_t epoch_seed,
                                       std::size_t samples_per_chunk) {
  std::vector<std::uint32_t> order(n);
  switch (policy) {
    case OrderPolicy::kSequential: {
      for (std::size_t i = 0; i < n; ++i) {
        order[i] = static_cast<std::uint32_t>(i);
      }
      return order;
    }
    case OrderPolicy::kFullRandom: {
      Rng rng(epoch_seed);
      auto perm = rng.permutation(n);
      for (std::size_t i = 0; i < n; ++i) {
        order[i] = static_cast<std::uint32_t>(perm[i]);
      }
      return order;
    }
    case OrderPolicy::kDlfsChunked: {
      // Exactly the dlfs_bread order: build the same chunk plan bread
      // uses (uniform small samples, one storage node) and walk one
      // epoch sequence.
      const std::uint32_t sample_bytes = 512;
      std::vector<core::SampleLocation> layout(n);
      for (std::size_t i = 0; i < n; ++i) {
        layout[i] = core::SampleLocation{
            0, static_cast<std::uint64_t>(i) * sample_bytes, sample_bytes};
      }
      core::BatchPlan plan(layout, samples_per_chunk * sample_bytes,
                           core::BatchingMode::kChunkLevel);
      core::EpochSequence seq(plan, epoch_seed, 0, 1);
      order.clear();
      order.reserve(n);
      for (auto picks = seq.take(n); !picks.empty(); picks = seq.take(n)) {
        for (const auto& pk : picks) {
          for (std::uint32_t k = 0; k < pk.count; ++k) {
            order.push_back(pk.unit->samples[pk.first_sample + k].sample_id);
          }
        }
      }
      return order;
    }
  }
  throw std::logic_error("unknown order policy");
}

TrainResult train_with_order(const SyntheticTask& task, OrderPolicy policy,
                             const TrainRunConfig& config) {
  const auto& cfg = task.config();
  Mlp model({cfg.feature_dim, config.hidden_dim, cfg.num_classes},
            config.model_seed);
  TrainResult result;
  const std::size_t n = cfg.train_samples;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto order = epoch_order(policy, n, /*epoch_seed=*/1000 + epoch,
                                   config.samples_per_chunk);
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t b = std::min(config.batch_size, n - start);
      Matrix x(b, cfg.feature_dim);
      std::vector<std::uint32_t> y(b);
      for (std::size_t i = 0; i < b; ++i) {
        const std::uint32_t id = order[start + i];
        const float* src = task.train_x().row(id);
        std::copy(src, src + cfg.feature_dim, x.row(i));
        y[i] = task.train_y()[id];
      }
      (void)model.train_step(x, y, config.learning_rate);
    }
    result.test_accuracy_per_epoch.push_back(
        model.evaluate(task.test_x(), task.test_y()));
  }
  return result;
}

}  // namespace dlfs::dnn

#include "octofs/octofs.hpp"

#include <stdexcept>

namespace dlfs::octofs {

OctoFs::OctoFs(cluster::Cluster& cluster, const Calibration& cal)
    : cluster_(&cluster), cal_(&cal), servers_(cluster.size()) {
  for (std::uint32_t n = 0; n < cluster.size(); ++n) {
    cluster_->node(n).device().claim(hw::DeviceOwner::kUserSpace);
    servers_[n].metadata_lock =
        std::make_unique<dlsim::Mutex>(cluster.simulator(),
                                       "octofs-metadata");
    servers_[n].metadata_core = std::make_unique<dlsim::CpuCore>(
        cluster.simulator(), "octofs-md-" + std::to_string(n));
  }
}

OctoFs::~OctoFs() {
  for (std::uint32_t n = 0; n < cluster_->size(); ++n) {
    cluster_->node(n).device().release(hw::DeviceOwner::kUserSpace);
  }
}

dlsim::Task<void> OctoFs::stage_file(const std::string& name,
                                     std::span<const std::byte> data) {
  const std::uint16_t owner = owner_of(name);
  Server& srv = servers_[owner];
  if (srv.metadata.contains(name)) {
    throw std::invalid_argument("octofs: duplicate file " + name);
  }
  const std::uint64_t offset = srv.next_offset;
  srv.next_offset += data.size();
  auto& device = cluster_->node(owner).device();
  if (srv.next_offset > device.capacity()) {
    throw std::runtime_error("octofs: server region full");
  }
  if (!srv.staging_qpair) srv.staging_qpair = device.create_qpair(1);
  auto& qp = *srv.staging_qpair;
  auto span = std::span<std::byte>(const_cast<std::byte*>(data.data()),
                                   data.size());
  if (qp.submit(hw::IoOp::kWrite, offset, span, 0) != hw::IoStatus::kOk) {
    throw std::runtime_error("octofs: stage write failed");
  }
  co_await qp.wait_for_completion();
  (void)qp.poll();
  srv.metadata.emplace(name,
                       FileMeta{owner, offset,
                                static_cast<std::uint32_t>(data.size())});
  ++total_files_;
}

OctoFs::Client::Client(OctoFs& fs, hw::NodeId node, dlsim::CpuCore& core)
    : fs_(&fs), node_(node), core_(&core) {
  qpairs_.reserve(fs.servers_.size());
  for (std::uint32_t s = 0; s < fs.servers_.size(); ++s) {
    // Octopus performs synchronous client-active reads: QD 1.
    qpairs_.push_back(fs.cluster_->node(s).device().create_qpair(1));
  }
}

dlsim::Task<std::optional<FileMeta>> OctoFs::Client::open(
    const std::string& name) {
  const std::uint16_t owner = fs_->owner_of(name);
  Server& srv = fs_->servers_[owner];
  co_await core_->compute(fs_->cal_->octopus.client_lookup_work);
  if (owner == node_) {
    ++lookups_local_;
    // Even a local lookup reads the NVM-resident metadata record.
    co_await fs_->cluster_->simulator().delay(
        fs_->cal_->octopus.metadata_nvm_read);
  } else {
    ++lookups_remote_;
    // RPC to the owner: request capsule, serialized server-side handling
    // (including the NVM metadata read) on the owner's metadata core,
    // reply capsule.
    auto& fabric = fs_->cluster_->fabric();
    co_await fabric.send_control(node_, owner);
    {
      auto guard = co_await srv.metadata_lock->scoped_lock();
      co_await srv.metadata_core->compute(
          fs_->cal_->octopus.metadata_server_work);
      co_await fs_->cluster_->simulator().delay(
          fs_->cal_->octopus.metadata_nvm_read);
    }
    co_await fabric.send_control(owner, node_);
  }
  auto it = srv.metadata.find(name);
  if (it == srv.metadata.end()) co_return std::nullopt;
  co_return it->second;
}

dlsim::Task<void> OctoFs::Client::read(const FileMeta& meta,
                                       std::span<std::byte> out) {
  if (out.size() < meta.len) {
    throw std::invalid_argument("octofs: read buffer too small");
  }
  co_await core_->compute(fs_->cal_->octopus.client_read_work);
  auto& fabric = fs_->cluster_->fabric();
  // One-sided RDMA read: request capsule to the owner's NIC (no server
  // CPU), storage-medium time at the owner, data back over the wire.
  co_await fabric.send_control(node_, meta.owner);
  auto& qp = *qpairs_[meta.owner];
  if (qp.submit(hw::IoOp::kRead, meta.offset, out.subspan(0, meta.len), 0) !=
      hw::IoStatus::kOk) {
    throw std::runtime_error("octofs: device read failed");
  }
  co_await qp.wait_for_completion();
  (void)qp.poll();
  co_await fabric.transfer(meta.owner, node_, meta.len);
  // Staging-buffer to application copy.
  co_await core_->compute(dlsim::transfer_time(
      meta.len, fs_->cal_->octopus.copy_bw_bytes_per_sec));
}

}  // namespace dlfs::octofs

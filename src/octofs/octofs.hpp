#pragma once

// OctoFs: the Octopus-like baseline (Lu et al., USENIX ATC'17) the paper
// compares against — an RDMA-enabled distributed file system with
// *distributed* metadata.
//
// The two properties the paper's analysis attributes Octopus' behaviour
// to are modeled first-class:
//
//  1. Metadata is hash-partitioned across server nodes and looked up with
//     an RPC to the owner on every open — "Octopus suffers from frequent
//     inter-node communication for sample lookup" (§IV-B). Server-side
//     handling serializes on the owner's metadata core, so many clients
//     queue up behind each other at scale (Fig. 10's flat curve).
//  2. Data reads are client-active RDMA reads from the owner's
//     NVM region (emulated, like the paper does, with an NVMe-timed
//     store): a read request capsule, the storage-medium time, and the
//     data transfer back — with no DL-specific batching, so every small
//     sample pays the full round trip.
//
// Staging, like the DLFS mount, places each file on its hash owner.

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/hash.hpp"
#include "common/calibration.hpp"
#include "sim/cpu.hpp"
#include "sim/sync.hpp"

namespace dlfs::octofs {

struct FileMeta {
  std::uint16_t owner = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
};

class OctoFs {
 public:
  /// Servers run on every cluster node; each node's device becomes that
  /// server's NVM data region (claimed for user space — Octopus maps it
  /// directly, no kernel FS involved).
  OctoFs(cluster::Cluster& cluster, const Calibration& cal);
  ~OctoFs();

  OctoFs(const OctoFs&) = delete;
  OctoFs& operator=(const OctoFs&) = delete;

  [[nodiscard]] std::uint16_t owner_of(std::string_view name) const {
    return static_cast<std::uint16_t>(hash64(name) % servers_.size());
  }

  /// Places a file's bytes on its owner node (staging; device-write timed).
  [[nodiscard]] dlsim::Task<void> stage_file(const std::string& name,
                                             std::span<const std::byte> data);

  /// Per-client session pinned to a node + core.
  class Client {
   public:
    Client(OctoFs& fs, hw::NodeId node, dlsim::CpuCore& core);

    /// Metadata lookup: local map probe if this node owns the file,
    /// otherwise an RPC to the owner. nullopt if the file doesn't exist.
    [[nodiscard]] dlsim::Task<std::optional<FileMeta>> open(
        const std::string& name);

    /// RDMA read of the whole file into `out`.
    [[nodiscard]] dlsim::Task<void> read(const FileMeta& meta,
                                         std::span<std::byte> out);

    [[nodiscard]] dlsim::CpuCore& core() { return *core_; }
    [[nodiscard]] std::uint64_t lookups_remote() const {
      return lookups_remote_;
    }
    [[nodiscard]] std::uint64_t lookups_local() const {
      return lookups_local_;
    }

   private:
    OctoFs* fs_;
    hw::NodeId node_;
    dlsim::CpuCore* core_;
    // One QD-1 qpair per (client, server): Octopus reads synchronously.
    std::vector<std::unique_ptr<hw::NvmeQueuePair>> qpairs_;
    std::uint64_t lookups_remote_ = 0;
    std::uint64_t lookups_local_ = 0;
  };

  [[nodiscard]] std::unique_ptr<Client> make_client(hw::NodeId node,
                                                    dlsim::CpuCore& core) {
    return std::make_unique<Client>(*this, node, core);
  }

  [[nodiscard]] std::size_t num_files() const { return total_files_; }

 private:
  friend class Client;

  struct Server {
    std::unordered_map<std::string, FileMeta> metadata;
    std::uint64_t next_offset = 0;
    std::unique_ptr<dlsim::Mutex> metadata_lock;  // one metadata core
    std::unique_ptr<dlsim::CpuCore> metadata_core;
    std::unique_ptr<hw::NvmeQueuePair> staging_qpair;
  };

  cluster::Cluster* cluster_;
  const Calibration* cal_;
  std::vector<Server> servers_;
  std::size_t total_files_ = 0;
};

}  // namespace dlfs::octofs

#include "sim/simulator.hpp"

#include <cassert>

namespace dlsim {

Simulator* Simulator::current_sim_ = nullptr;

std::string current_task_label() {
  Simulator* sim = Simulator::current();
  return sim ? sim->current_task_name() : std::string("<main>");
}

const void* current_task_id() {
  Simulator* sim = Simulator::current();
  return sim ? static_cast<const void*>(sim->current_process()) : nullptr;
}

std::string Simulator::current_task_name() const {
  if (!current_) return "<main>";
  return current_->name.empty() ? "<unnamed>" : current_->name;
}

Simulator::~Simulator() {
  // Tear down an aborted simulation without double-frees: queue entries are
  // *non-owning* references to suspended frames, so they are never destroyed
  // directly. Instead we destroy each live process' root frame; destroying a
  // suspended coroutine runs the destructors of its locals, which recursively
  // destroys every child Task frame it owns (including any whose handle sits
  // in the queue).
  while (!queue_.empty()) queue_.pop();
  for (auto& p : processes_) {
    if (p->root) {
      p->root.destroy();
      p->root = {};
    }
  }
}

void Simulator::schedule_at(SimTime t, std::coroutine_handle<> h,
                            detail::ProcessState* owner) {
  assert(h && "scheduling a null coroutine handle");
  assert(t >= now_ && "scheduling into the past");
  queue_.push(Item{t, seq_++, h, owner});
}

Task<void> Simulator::process_wrapper(
    Task<void> inner, std::shared_ptr<detail::ProcessState> st, bool daemon) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->error = std::current_exception();
  }
  st->done = true;
  st->root = {};  // the frame self-destroys at final suspend
  if (!daemon) --live_;
  for (const auto& j : st->joiners) schedule_now(j.h, j.owner);
  st->joiners.clear();
}

Process Simulator::spawn_impl(Task<void> t, std::string name, bool daemon) {
  assert(t.valid() && "spawning an empty Task");
  auto st = std::make_shared<detail::ProcessState>();
  st->name = std::move(name);
  st->daemon = daemon;
  processes_.push_back(st);
  if (!daemon) ++live_;
  Task<void> wrapper = process_wrapper(std::move(t), st, daemon);
  auto h = wrapper.release();
  h.promise().self_destroy = true;
  st->root = h;
  schedule_now(h, st.get());
  return Process{st};
}

Process Simulator::spawn(Task<void> t, std::string name) {
  return spawn_impl(std::move(t), std::move(name), /*daemon=*/false);
}

Process Simulator::spawn_daemon(Task<void> t, std::string name) {
  return spawn_impl(std::move(t), std::move(name), /*daemon=*/true);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  Item item = queue_.top();
  queue_.pop();
  now_ = item.t;
  ++processed_;
  // Publish the running task's identity for the duration of this slice
  // (saved/restored so a simulation stepped from inside another
  // simulation's process attributes correctly).
  Simulator* prev_sim = current_sim_;
  current_sim_ = this;
  current_ = item.owner;
  item.h.resume();
  current_ = nullptr;
  current_sim_ = prev_sim;
  return true;
}

void Simulator::run(bool allow_blocked) {
  while (step()) {
  }
  if (!allow_blocked && live_ > 0) {
    throw DeadlockError(blocked_process_names(), now_);
  }
}

void Simulator::run_watchdog(SimTime deadline) {
  while (!queue_.empty() && (live_ == 0 || queue_.top().t <= deadline)) {
    step();
  }
  if (live_ > 0) throw DeadlockError(blocked_process_names(), now_);
}

std::vector<std::string> Simulator::blocked_process_names() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (!p->done && !p->daemon) names.push_back(p->name);
  }
  return names;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().t <= t) step();
  if (t > now_) now_ = t;
}

void Simulator::rethrow_failures() const {
  for (const auto& p : processes_) {
    if (p->error) std::rethrow_exception(p->error);
  }
}

Task<void> Process::join() const {
  auto st = state_;
  if (!st) co_return;
  if (!st->done) {
    struct Awaiter {
      detail::ProcessState* st;
      bool await_ready() const noexcept { return st->done; }
      void await_suspend(std::coroutine_handle<> h) {
        Simulator* sim = Simulator::current();
        st->joiners.push_back(
            detail::Parked{h, sim ? sim->current_process() : nullptr});
      }
      void await_resume() const noexcept {}
    };
    co_await Awaiter{st.get()};
  }
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace dlsim

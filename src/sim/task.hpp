#pragma once

// Task<T>: the lazy coroutine type used by every simulated activity.
//
// A Task does not run until it is co_awaited (or handed to
// Simulator::spawn). Completion transfers control back to the awaiting
// coroutine via symmetric transfer, so arbitrarily deep await chains use
// O(1) native stack. Exceptions thrown inside a task propagate to the
// awaiter at the co_await expression, exactly like a function call.

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

namespace dlsim {

template <typename T>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation{};
  // Set for coroutines owned by the Simulator (detached processes): the
  // frame frees itself at the final suspend point instead of relying on a
  // Task destructor.
  bool self_destroy = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.self_destroy) h.destroy();
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace detail

/// Lazy coroutine returning a value of type T (or void).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::variant<std::monostate, T, std::exception_ptr> result;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      result.template emplace<1>(std::forward<U>(v));
    }
    void unhandled_exception() {
      result.template emplace<2>(std::current_exception());
    }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }

  /// Releases ownership of the coroutine frame (used by Simulator::spawn).
  handle_type release() { return std::exchange(h_, {}); }

  auto operator co_await() && {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // start the child coroutine now
      }
      T await_resume() {
        auto& r = h.promise().result;
        if (r.index() == 2) std::rethrow_exception(std::get<2>(std::move(r)));
        assert(r.index() == 1 && "task finished without a value");
        return std::get<1>(std::move(r));
      }
    };
    assert(h_ && "co_await on an empty Task");
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase {
    std::exception_ptr error;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const { return static_cast<bool>(h_); }

  handle_type release() { return std::exchange(h_, {}); }

  auto operator co_await() && {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    assert(h_ && "co_await on an empty Task");
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

}  // namespace dlsim

#pragma once

// Simulated-time types for the discrete-event simulation kernel.
//
// All simulated time is kept in integer nanoseconds. 2^64 ns is ~584 years,
// so overflow is not a practical concern for any experiment in this repo.

#include <cstdint>

namespace dlsim {

/// A point in simulated time, in nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::uint64_t;

inline namespace literals {

constexpr SimDuration operator""_ns(unsigned long long v) { return v; }
constexpr SimDuration operator""_us(unsigned long long v) { return v * 1000ull; }
constexpr SimDuration operator""_ms(unsigned long long v) {
  return v * 1'000'000ull;
}
constexpr SimDuration operator""_sec(unsigned long long v) {
  return v * 1'000'000'000ull;
}

}  // namespace literals

/// Converts a simulated duration to (floating-point) seconds, for reporting.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) * 1e-9;
}

/// Converts a simulated duration to (floating-point) microseconds.
constexpr double to_micros(SimDuration d) { return static_cast<double>(d) * 1e-3; }

/// Converts a simulated duration to (floating-point) milliseconds.
constexpr double to_millis(SimDuration d) { return static_cast<double>(d) * 1e-6; }

/// Duration of moving `bytes` through a pipe of `bytes_per_sec` bandwidth.
constexpr SimDuration transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  return static_cast<SimDuration>(static_cast<double>(bytes) / bytes_per_sec *
                                  1e9);
}

}  // namespace dlsim

#pragma once

// Dynamic concurrency-correctness checkers for the simulated kernel.
//
// Everything in the repository runs as cooperatively-scheduled coroutines
// over one Simulator, so classic thread-race tooling (TSan) sees nothing:
// the host process is single-threaded. The hazards that remain are
// *interleaving* bugs — lock-order inversions between simulated tasks,
// and shared state mutated by one task while another task still holds a
// logical reference to it across a suspension point. Two checkers cover
// them:
//
//   LockOrderGraph — every dlsim::Mutex acquisition *attempt* records a
//   "held -> wanted" edge keyed by the acquiring task and its
//   std::source_location call site. A cycle in the graph means two tasks
//   have acquired the same mutexes in opposite orders — a potential
//   deadlock even if this particular run got lucky — and raises
//   PotentialDeadlockError naming both tasks and both acquisition sites.
//   The graph persists for the Simulator's lifetime, so an inversion is
//   reported the moment the second ordering appears, not only when the
//   schedule actually deadlocks (Simulator::run's DeadlockError remains
//   the backstop for those).
//
//   Checked<T> — wraps shared state with RAII access guards. A guard
//   marks a critical slice: the region where one task reads or mutates
//   the state. Slices must not overlap across tasks (a write overlapping
//   any access, or any access overlapping a write, from a different
//   task); if they do, DataRaceError names both tasks and both access
//   sites. In a cooperative scheduler two slices can only overlap when
//   one of them spans a suspension point, so the checker precisely flags
//   "mutated between another task's suspension points without
//   synchronization" — the coroutine analogue of a data race.
//
// Both checkers are cheap (small vectors, tiny graphs) and always on;
// they are exercised by tests/check_test.cpp's expected-diagnostic
// fixtures.

#include <cstdint>
#include <map>
#include <source_location>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dlsim {

/// Label of the simulated task currently executing: the process name
/// given to Simulator::spawn, "<unnamed>" for anonymous processes, and
/// "<main>" outside any simulation step. Defined in simulator.cpp.
[[nodiscard]] std::string current_task_label();

/// Opaque identity of the currently executing task (nullptr for <main>).
[[nodiscard]] const void* current_task_id();

/// Formats a std::source_location as "file.cpp:123" (basename only).
[[nodiscard]] std::string format_site(const std::source_location& site);

/// Two tasks acquired the same mutexes in opposite orders. Thrown at the
/// acquisition attempt that closes the cycle, i.e. usually *before* the
/// schedule actually deadlocks.
class PotentialDeadlockError : public std::runtime_error {
 public:
  explicit PotentialDeadlockError(std::string what)
      : std::runtime_error(std::move(what)) {}
};

/// Lock-acquisition-order graph over every dlsim::Mutex of one Simulator.
/// Nodes are mutexes; an edge A -> B records "some task acquired B while
/// holding A" along with the task and both acquisition sites. Any cycle
/// is a potential deadlock.
class LockOrderGraph {
 public:
  using LockId = std::uint32_t;

  /// Registers a mutex; the name (or "mutex#<id>" if empty) appears in
  /// diagnostics. Names outlive the mutex, so reports stay valid even
  /// for locks destroyed before the cycle closed.
  LockId register_lock(std::string name);

  /// Called before task `task` waits for lock `id`. Records the ordering
  /// edges against every lock the task already holds and throws
  /// PotentialDeadlockError if one of them closes a cycle.
  void on_attempt(LockId id, const void* task, const std::string& task_name,
                  const std::string& site);

  /// Called once the lock is actually owned; adds it to the task's held
  /// set (release drops it again).
  void on_acquired(LockId id, const void* task, const std::string& site);
  void on_release(LockId id, const void* task);

  [[nodiscard]] std::size_t lock_count() const { return names_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  // By value: names_ may reallocate as later locks register.
  [[nodiscard]] std::string lock_name(LockId id) const { return names_[id]; }

 private:
  struct Edge {
    std::string task;       // who established this ordering
    std::string from_site;  // where the held lock was acquired
    std::string to_site;    // where the second lock was requested
  };

  struct Held {
    LockId id;
    std::string site;
  };

  // Walks recorded edges from -> ... -> to; fills `path` with the edge
  // keys along one such chain.
  [[nodiscard]] bool find_path(LockId from, LockId to,
                               std::vector<std::pair<LockId, LockId>>& path)
      const;

  std::vector<std::string> names_;
  std::map<std::pair<LockId, LockId>, Edge> edges_;
  std::unordered_map<const void*, std::vector<Held>> held_;
};

/// Two tasks' access slices to one Checked<T> overlapped with at least
/// one of them writing.
class DataRaceError : public std::runtime_error {
 public:
  explicit DataRaceError(std::string what)
      : std::runtime_error(std::move(what)) {}
};

namespace detail {

/// Non-template bookkeeping behind Checked<T>: the set of live access
/// slices and the overlap check.
class AccessLedger {
 public:
  explicit AccessLedger(std::string name) : name_(std::move(name)) {}

  AccessLedger(const AccessLedger&) = delete;
  AccessLedger& operator=(const AccessLedger&) = delete;

  /// Opens a slice; throws DataRaceError on a conflicting overlap.
  /// Returns a ticket for end().
  std::uint64_t begin(bool write, const std::source_location& site);
  void end(std::uint64_t ticket);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t live_accesses() const { return live_.size(); }

 private:
  struct Rec {
    std::uint64_t ticket;
    const void* task;
    std::string task_name;
    bool write;
    std::string site;
  };
  std::string name_;
  std::uint64_t next_ticket_ = 1;
  std::vector<Rec> live_;
};

}  // namespace detail

/// Exposed for classes that annotate whole methods (see AccessSlice)
/// instead of wrapping a member in Checked<T>.
using AccessLedger = detail::AccessLedger;

/// Whole-method critical-slice annotation for classes whose state is too
/// interleaved to funnel through one Checked<T> member: give the class a
/// `mutable dlsim::AccessLedger ledger_{"name"};` and open an
/// `dlsim::AccessSlice slice{ledger_, /*write=*/...};` at the top of each
/// method touching the shared state. Methods must stay suspension-free
/// while a slice is open; a co_await introduced inside one trips
/// DataRaceError as soon as another task enters.
class AccessSlice {
 public:
  AccessSlice(detail::AccessLedger& ledger, bool write,
              std::source_location site = std::source_location::current())
      : ledger_(&ledger), ticket_(ledger.begin(write, site)) {}
  AccessSlice(AccessSlice&& o) noexcept
      : ledger_(std::exchange(o.ledger_, nullptr)), ticket_(o.ticket_) {}
  AccessSlice(const AccessSlice&) = delete;
  AccessSlice& operator=(const AccessSlice&) = delete;
  AccessSlice& operator=(AccessSlice&&) = delete;
  ~AccessSlice() {
    if (ledger_) ledger_->end(ticket_);
  }

 private:
  detail::AccessLedger* ledger_;
  std::uint64_t ticket_;
};

/// Shared-state wrapper: access goes through read()/write() RAII guards,
/// each marking a critical slice attributed to the current simulated
/// task. Overlapping slices from different tasks (with a write involved)
/// raise DataRaceError naming both tasks and sites. Guards are meant to
/// span exactly the suspension-free region that touches the state — a
/// guard held across a co_await asserts that no other task touches the
/// state while this one is parked.
template <typename T>
class Checked {
 public:
  template <typename... Args>
  explicit Checked(std::string name, Args&&... args)
      : ledger_(std::move(name)), value_(std::forward<Args>(args)...) {}

  Checked(const Checked&) = delete;
  Checked& operator=(const Checked&) = delete;

  class WriteGuard {
   public:
    WriteGuard(Checked& c, const std::source_location& site)
        : c_(&c), ticket_(c.ledger_.begin(/*write=*/true, site)) {}
    WriteGuard(WriteGuard&& o) noexcept
        : c_(std::exchange(o.c_, nullptr)), ticket_(o.ticket_) {}
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;
    WriteGuard& operator=(WriteGuard&&) = delete;
    ~WriteGuard() {
      if (c_) c_->ledger_.end(ticket_);
    }
    [[nodiscard]] T& operator*() const { return c_->value_; }
    [[nodiscard]] T* operator->() const { return &c_->value_; }

   private:
    Checked* c_;
    std::uint64_t ticket_;
  };

  class ReadGuard {
   public:
    ReadGuard(const Checked& c, const std::source_location& site)
        : c_(&c), ticket_(c.ledger_.begin(/*write=*/false, site)) {}
    ReadGuard(ReadGuard&& o) noexcept
        : c_(std::exchange(o.c_, nullptr)), ticket_(o.ticket_) {}
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard() {
      if (c_) c_->ledger_.end(ticket_);
    }
    [[nodiscard]] const T& operator*() const { return c_->value_; }
    [[nodiscard]] const T* operator->() const { return &c_->value_; }

   private:
    const Checked* c_;
    std::uint64_t ticket_;
  };

  /// Opens a mutating access slice.
  [[nodiscard]] WriteGuard write(
      std::source_location site = std::source_location::current()) {
    return WriteGuard{*this, site};
  }

  /// Opens a read-only access slice.
  [[nodiscard]] ReadGuard read(
      std::source_location site = std::source_location::current()) const {
    return ReadGuard{*this, site};
  }

  [[nodiscard]] std::size_t live_accesses() const {
    return ledger_.live_accesses();
  }

 private:
  mutable detail::AccessLedger ledger_;
  T value_;
};

}  // namespace dlsim

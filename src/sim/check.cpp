#include "sim/check.hpp"

#include <cstring>

namespace dlsim {

std::string format_site(const std::source_location& site) {
  const char* file = site.file_name();
  if (const char* slash = std::strrchr(file, '/')) file = slash + 1;
  return std::string(file) + ":" + std::to_string(site.line());
}

LockOrderGraph::LockId LockOrderGraph::register_lock(std::string name) {
  const LockId id = static_cast<LockId>(names_.size());
  if (name.empty()) name = "mutex#" + std::to_string(id);
  names_.push_back(std::move(name));
  return id;
}

bool LockOrderGraph::find_path(
    LockId from, LockId to,
    std::vector<std::pair<LockId, LockId>>& path) const {
  if (from == to) return true;
  for (const auto& [key, edge] : edges_) {
    (void)edge;
    if (key.first != from) continue;
    // Cheap cycle guard: the path can never be longer than the number of
    // registered locks.
    if (path.size() >= names_.size()) return false;
    bool seen = false;
    for (const auto& step : path) {
      if (step.first == key.second) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    path.push_back(key);
    if (find_path(key.second, to, path)) return true;
    path.pop_back();
  }
  return false;
}

void LockOrderGraph::on_attempt(LockId id, const void* task,
                                const std::string& task_name,
                                const std::string& site) {
  auto& held = held_[task];
  for (const auto& h : held) {
    if (h.id == id) continue;  // recursive attempt; Mutex itself forbids it
    const auto key = std::make_pair(h.id, id);
    if (edges_.count(key) != 0) continue;  // ordering already vetted
    // Adding h.id -> id closes a cycle iff id already reaches h.id.
    std::vector<std::pair<LockId, LockId>> path;
    if (find_path(id, h.id, path)) {
      std::string msg = "potential deadlock (lock-order inversion): task '" +
                        task_name + "' acquiring '" + names_[id] + "' at " +
                        site + " while holding '" + names_[h.id] +
                        "' (acquired at " + h.site + ")";
      for (const auto& step : path) {
        const Edge& e = edges_.at(step);
        msg += "; conflicting order '" + names_[step.first] + "' -> '" +
               names_[step.second] + "' established by task '" + e.task +
               "' at " + e.to_site + " (holding '" + names_[step.first] +
               "' acquired at " + e.from_site + ")";
      }
      throw PotentialDeadlockError(msg);
    }
    edges_.emplace(key, Edge{task_name, h.site, site});
  }
}

void LockOrderGraph::on_acquired(LockId id, const void* task,
                                 const std::string& site) {
  held_[task].push_back(Held{id, site});
}

void LockOrderGraph::on_release(LockId id, const void* task) {
  const auto it = held_.find(task);
  if (it == held_.end()) return;
  auto& held = it->second;
  for (auto h = held.rbegin(); h != held.rend(); ++h) {
    if (h->id == id) {
      held.erase(std::next(h).base());
      break;
    }
  }
  if (held.empty()) held_.erase(it);
}

namespace detail {

std::uint64_t AccessLedger::begin(bool write,
                                  const std::source_location& site) {
  const void* task = current_task_id();
  for (const Rec& r : live_) {
    if (r.task == task) continue;
    if (!r.write && !write) continue;
    throw DataRaceError(
        "data race on '" + name_ + "': task '" + current_task_label() +
        "' " + (write ? "writes" : "reads") + " at " + format_site(site) +
        " while task '" + r.task_name + "' holds a " +
        (r.write ? "write" : "read") + " access from " + r.site +
        " across a suspension point");
  }
  const std::uint64_t ticket = next_ticket_++;
  live_.push_back(
      Rec{ticket, task, current_task_label(), write, format_site(site)});
  return ticket;
}

void AccessLedger::end(std::uint64_t ticket) {
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->ticket == ticket) {
      live_.erase(it);
      return;
    }
  }
}

}  // namespace detail

}  // namespace dlsim

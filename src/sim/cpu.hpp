#pragma once

// CpuCore: virtual-CPU-time accounting for simulated threads.
//
// The evaluation follows the paper's one-thread-per-core model: each
// simulated I/O or application thread owns one core. Work that occupies
// the CPU (syscall crossings, memcpy, hashing, busy-poll iterations)
// passes through CpuCore::compute(), which both advances simulated time
// and accrues the core's busy counter. Time spent blocked (a kernel
// thread sleeping on I/O) advances time without accruing busy-ns, so
// utilization = busy_ns / elapsed reproduces the paper's Fig. 7 CPU
// numbers exactly rather than approximately.

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dlsim {

class CpuCore {
 public:
  explicit CpuCore(Simulator& sim, std::string name = {})
      : sim_(&sim), name_(std::move(name)), created_at_(sim.now()) {}

  /// Occupies the core for `d` nanoseconds of computation.
  [[nodiscard]] Task<void> compute(SimDuration d) {
    busy_ns_ += d;
    co_await sim_->delay(d);
  }

  /// Accrues busy time without suspending — for costs folded into a single
  /// larger delay by the caller (e.g. a batched poll loop that already
  /// waited on a completion event and charges the elapsed time as busy).
  void charge(SimDuration d) { busy_ns_ += d; }

  /// Core-locality accounting: records that a unit of work produced on
  /// another core was executed here (the caller charges the handoff
  /// *cost* from its calibration; the core just counts the events so
  /// cross-core traffic is visible in results).
  void note_cross_core_handoff() { ++cross_core_handoffs_; }
  [[nodiscard]] std::uint64_t cross_core_handoffs() const {
    return cross_core_handoffs_;
  }

  [[nodiscard]] SimDuration busy_ns() const { return busy_ns_; }
  [[nodiscard]] SimDuration elapsed_ns() const {
    return sim_->now() - created_at_;
  }
  [[nodiscard]] double utilization() const {
    const SimDuration e = elapsed_ns();
    return e == 0 ? 0.0 : static_cast<double>(busy_ns_) / static_cast<double>(e);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Simulator& simulator() const { return *sim_; }

  void reset_accounting() {
    busy_ns_ = 0;
    cross_core_handoffs_ = 0;
    created_at_ = sim_->now();
  }

 private:
  Simulator* sim_;
  std::string name_;
  SimDuration busy_ns_ = 0;
  std::uint64_t cross_core_handoffs_ = 0;
  SimTime created_at_;
};

}  // namespace dlsim

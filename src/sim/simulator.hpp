#pragma once

// Simulator: the discrete-event loop at the heart of the repository.
//
// Every piece of the reproduced system — NVMe devices, NICs, kernel
// syscall paths, DLFS copy threads — is a coroutine (Task<void>) spawned
// onto one Simulator. The Simulator owns a time-ordered queue of
// resumptions; `co_await sim.delay(d)` suspends the current coroutine and
// resumes it d simulated nanoseconds later. Events at the same timestamp
// run in FIFO spawn order, so every run is bit-for-bit deterministic.
//
// The host process is single-threaded; all concurrency is simulated.

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/check.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dlsim {

class Simulator;

/// Thrown by Simulator::run() when the event queue drains while spawned
/// processes are still blocked (the simulated system has deadlocked) and
/// by run_watchdog() when live processes outlast the watchdog deadline.
/// Carries the names of the blocked non-daemon processes so a hung fault
/// path identifies itself instead of stalling the job.
class DeadlockError : public std::runtime_error {
 public:
  DeadlockError(std::vector<std::string> names, SimTime at)
      : std::runtime_error(format(names, at)),
        blocked_names(std::move(names)),
        time(at) {
    blocked_processes = blocked_names.size();
  }
  std::size_t blocked_processes = 0;
  std::vector<std::string> blocked_names;
  SimTime time;

 private:
  static std::string format(const std::vector<std::string>& names,
                            SimTime at) {
    std::string msg = "simulation deadlock: " + std::to_string(names.size()) +
                      " process(es) blocked at t=" + std::to_string(at) +
                      "ns [";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) msg += ", ";
      msg += names[i].empty() ? "<unnamed>" : names[i];
    }
    msg += "]";
    return msg;
  }
};

namespace detail {
struct ProcessState;

/// A parked coroutine handle plus the process it belongs to. Owners ride
/// along through every park/schedule hop so that, when the handle is
/// eventually resumed, the Simulator knows which simulated task is
/// executing — the identity the lock-order and Checked<T> diagnostics
/// attribute their findings to.
struct Parked {
  std::coroutine_handle<> h;
  ProcessState* owner = nullptr;
};

struct ProcessState {
  bool done = false;
  bool daemon = false;
  std::exception_ptr error;
  std::string name;
  std::vector<Parked> joiners;
  // Root coroutine frame of the process; non-null while the process is
  // alive. Destroying it cascades into every child frame it owns, which is
  // how Simulator::~Simulator tears down an aborted simulation safely.
  std::coroutine_handle<> root{};
};
}  // namespace detail

/// Handle to a spawned top-level coroutine. Copyable; all copies refer to
/// the same underlying process.
class Process {
 public:
  Process() = default;

  [[nodiscard]] bool done() const { return state_ && state_->done; }
  [[nodiscard]] bool failed() const { return state_ && state_->error != nullptr; }
  [[nodiscard]] const std::string& name() const { return state_->name; }

  /// Rethrows the process' terminal exception, if any.
  void rethrow() const {
    if (state_ && state_->error) std::rethrow_exception(state_->error);
  }

  /// Awaitable: suspends until the process finishes, then rethrows its
  /// error (if any) in the awaiting coroutine.
  [[nodiscard]] Task<void> join() const;

 private:
  friend class Simulator;
  explicit Process(std::shared_ptr<detail::ProcessState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t live_processes() const { return live_; }

  /// Schedules a raw coroutine resumption (used by awaitables and the sync
  /// primitives; application code should prefer delay()/spawn()). The
  /// two-argument form attributes the handle to the currently executing
  /// process — correct for self-suspension (delay/yield); wakers passing
  /// on a *parked* handle must use the owner-carrying overload so the
  /// resumption is attributed to the parked task, not the waker.
  void schedule_at(SimTime t, std::coroutine_handle<> h) {
    schedule_at(t, h, current_);
  }
  void schedule_at(SimTime t, std::coroutine_handle<> h,
                   detail::ProcessState* owner);
  void schedule_now(std::coroutine_handle<> h) { schedule_at(now_, h); }
  void schedule_now(std::coroutine_handle<> h, detail::ProcessState* owner) {
    schedule_at(now_, h, owner);
  }

  /// The process whose coroutine slice is executing right now (nullptr
  /// between events and outside run()). Within one step() control never
  /// leaves the resumed process — symmetric transfer only moves along its
  /// own await chain — so this is exact, not heuristic.
  [[nodiscard]] detail::ProcessState* current_process() const {
    return current_;
  }

  /// Name of the current process: "<unnamed>" for anonymous processes,
  /// "<main>" outside any step.
  [[nodiscard]] std::string current_task_name() const;

  /// The Simulator currently inside step(), if any (the process-global
  /// hook behind current_task_label()).
  [[nodiscard]] static Simulator* current() { return current_sim_; }

  /// Lock-acquisition-order graph shared by every Mutex of this
  /// Simulator; see sim/check.hpp.
  [[nodiscard]] LockOrderGraph& lock_graph() { return lock_graph_; }

  /// Awaitable that suspends the current coroutine for `d` nanoseconds.
  [[nodiscard]] auto delay(SimDuration d) {
    struct Awaiter {
      Simulator& sim;
      SimDuration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule_at(sim.now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that reschedules the coroutine at the current time, behind
  /// everything already queued for this instant.
  [[nodiscard]] auto yield() { return delay(0); }

  /// Starts a top-level simulated process. The coroutine begins executing
  /// at the current simulated time, once the event loop reaches it.
  Process spawn(Task<void> t, std::string name = {});

  /// Starts a daemon process: a server loop expected to idle forever
  /// (an NVMe-oF target poller, a copy-thread pool). Daemons do not count
  /// toward deadlock detection in run().
  Process spawn_daemon(Task<void> t, std::string name = {});

  /// Runs one event. Returns false when the queue is empty.
  bool step();

  /// Runs until the event queue is empty. Throws DeadlockError if spawned
  /// processes remain blocked (pass allow_blocked to tolerate that, e.g.
  /// for servers that idle forever waiting on a channel).
  void run(bool allow_blocked = false);

  /// Runs events up to and including time `t`; `now()` is `t` afterwards
  /// (even if the queue drained earlier).
  void run_until(SimTime t);
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// run() with a simulated-time watchdog: if non-daemon processes are
  /// still live once the clock would pass `deadline` — or the queue
  /// drains with them blocked — throws DeadlockError naming them. Fault
  /// tests use this so a hung recovery path fails fast with the culprit
  /// coroutines listed instead of stalling the job until ctest kills it.
  void run_watchdog(SimTime deadline);

  /// Names of the live (spawned, unfinished, non-daemon) processes.
  [[nodiscard]] std::vector<std::string> blocked_process_names() const;

  /// Re-seeds the simulation-wide RNG stream. Every consumer of simulated
  /// randomness (reconnect jitter, chaos schedules) must draw from this
  /// stream rather than keep private ad-hoc state, so that one seed
  /// reproduces the entire run — draws happen in event order, and event
  /// order is deterministic.
  void seed_rng(std::uint64_t seed) { rng_state_ = seed; }

  /// Next value of the simulation RNG stream (splitmix64: full 64-bit
  /// period, passes BigCrush, two arithmetic lines — enough for jitter
  /// and fault schedules, not for cryptography).
  [[nodiscard]] std::uint64_t rand64() {
    rng_state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// After run(), rethrows the first process failure encountered (processes
  /// that fail also rethrow at join()).
  void rethrow_failures() const;

 private:
  Process spawn_impl(Task<void> t, std::string name, bool daemon);
  Task<void> process_wrapper(Task<void> inner,
                             std::shared_ptr<detail::ProcessState> st,
                             bool daemon);

  struct Item {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    detail::ProcessState* owner;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::vector<std::shared_ptr<detail::ProcessState>> processes_;
  LockOrderGraph lock_graph_;
  detail::ProcessState* current_ = nullptr;
  SimTime now_ = 0;
  std::uint64_t rng_state_ = 0x6a09e667f3bcc909ull;  // default stream seed
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;

  static Simulator* current_sim_;  // the instance inside step(), if any
};

}  // namespace dlsim

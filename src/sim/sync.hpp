#pragma once

// Simulated-concurrency primitives: Event, Mutex, Semaphore, Channel.
//
// All primitives are single-(host-)threaded; "blocking" means suspending
// the current coroutine and parking its handle until another simulated
// activity wakes it. Wakeups always go through the Simulator queue (never
// resume inline), which keeps execution order deterministic and stacks
// shallow. Waiters use Mesa semantics: a woken coroutine re-checks its
// predicate, so spurious-looking wakeups are harmless by construction.

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <source_location>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/check.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace dlsim {

namespace detail {

/// FIFO list of suspended coroutines. The building block for every
/// primitive below. Each parked handle carries the identity of the
/// process that parked it, so a wake attributes the resumed slice to the
/// *waiter*, not to whoever called wake_one().
class WaitList {
 public:
  explicit WaitList(Simulator& sim) : sim_(&sim) {}

  [[nodiscard]] bool empty() const { return waiters_.empty(); }
  [[nodiscard]] std::size_t size() const { return waiters_.size(); }

  /// Awaitable that always suspends and parks the coroutine here.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      WaitList& wl;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        wl.waiters_.push_back(detail::Parked{h, wl.sim_->current_process()});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Schedules the oldest waiter (if any) at the current time.
  void wake_one() {
    if (waiters_.empty()) return;
    const detail::Parked& w = waiters_.front();
    sim_->schedule_now(w.h, w.owner);
    waiters_.pop_front();
  }

  void wake_all() {
    while (!waiters_.empty()) wake_one();
  }

 private:
  Simulator* sim_;
  std::deque<detail::Parked> waiters_;
};

}  // namespace detail

/// One-shot (resettable) event flag.
class Event {
 public:
  explicit Event(Simulator& sim) : waiters_(sim) {}

  [[nodiscard]] bool is_set() const { return set_; }

  /// Awaitable; returns immediately if the event is already set.
  [[nodiscard]] Task<void> wait() {
    while (!set_) co_await waiters_.wait();
  }

  void set() {
    set_ = true;
    waiters_.wake_all();
  }

  void reset() { set_ = false; }

 private:
  bool set_ = false;
  detail::WaitList waiters_;
};

class Mutex;

/// RAII lock ownership for Mutex (analogous to std::unique_lock).
class ScopedLock {
 public:
  ScopedLock() = default;
  explicit ScopedLock(Mutex& m) : m_(&m) {}
  ScopedLock(ScopedLock&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
  ScopedLock& operator=(ScopedLock&& o) noexcept {
    release();
    m_ = std::exchange(o.m_, nullptr);
    return *this;
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;
  ~ScopedLock() { release(); }

  void release();

 private:
  Mutex* m_ = nullptr;
};

/// FIFO mutex. Ownership hands off directly to the oldest waiter, so the
/// lock cannot be barged.
///
/// Every acquisition attempt is recorded in the Simulator's
/// LockOrderGraph (sim/check.hpp) together with the acquiring task and
/// the call site, so two tasks taking two mutexes in opposite orders
/// raise PotentialDeadlockError at the attempt that closes the cycle —
/// usually before the schedule actually deadlocks. Give contended
/// mutexes a name; it is what the diagnostic prints.
class Mutex {
 public:
  explicit Mutex(Simulator& sim, std::string name = {})
      : sim_(&sim),
        waiters_(sim),
        id_(sim.lock_graph().register_lock(std::move(name))) {}

  [[nodiscard]] bool locked() const { return locked_; }
  [[nodiscard]] std::string name() const {
    return sim_->lock_graph().lock_name(id_);
  }

  /// Awaitable lock acquisition.
  [[nodiscard]] Task<void> lock(
      std::source_location site = std::source_location::current()) {
    const std::string site_str = format_site(site);
    sim_->lock_graph().on_attempt(id_, sim_->current_process(),
                                  sim_->current_task_name(), site_str);
    if (!locked_) {
      locked_ = true;
    } else {
      // Park; unlock() transfers ownership to us before waking, so no
      // re-check loop is needed (FIFO handoff, not Mesa, for fairness).
      co_await waiters_.wait();
    }
    owner_ = sim_->current_process();
    sim_->lock_graph().on_acquired(id_, owner_, site_str);
  }

  /// Awaitable returning an RAII guard.
  [[nodiscard]] Task<ScopedLock> scoped_lock(
      std::source_location site = std::source_location::current()) {
    co_await lock(site);
    co_return ScopedLock{*this};
  }

  void unlock() {
    sim_->lock_graph().on_release(id_, owner_);
    owner_ = nullptr;
    if (!waiters_.empty()) {
      // Ownership passes to the woken waiter; locked_ stays true.
      waiters_.wake_one();
    } else {
      locked_ = false;
    }
  }

 private:
  Simulator* sim_;
  bool locked_ = false;
  detail::WaitList waiters_;
  LockOrderGraph::LockId id_;
  detail::ProcessState* owner_ = nullptr;
};

inline void ScopedLock::release() {
  if (m_) {
    m_->unlock();
    m_ = nullptr;
  }
}

/// Counting semaphore with FIFO wakeup.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t initial)
      : count_(initial), waiters_(sim) {}

  [[nodiscard]] std::size_t count() const { return count_; }

  [[nodiscard]] Task<void> acquire() {
    while (count_ == 0) co_await waiters_.wait();
    --count_;
  }

  [[nodiscard]] bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release(std::size_t n = 1) {
    count_ += n;
    for (std::size_t i = 0; i < n; ++i) waiters_.wake_one();
  }

 private:
  std::size_t count_;
  detail::WaitList waiters_;
};

/// Counts down from n; waiters resume when it reaches zero.
class CountdownLatch {
 public:
  CountdownLatch(Simulator& sim, std::size_t n) : count_(n), waiters_(sim) {}

  [[nodiscard]] std::size_t count() const { return count_; }

  void count_down(std::size_t n = 1) {
    count_ = n >= count_ ? 0 : count_ - n;
    if (count_ == 0) waiters_.wake_all();
  }

  /// Adds more work before anyone could have been released.
  void add(std::size_t n) { count_ += n; }

  [[nodiscard]] Task<void> wait() {
    while (count_ > 0) co_await waiters_.wait();
  }

 private:
  std::size_t count_;
  detail::WaitList waiters_;
};

/// Thrown when pushing into a closed Channel.
class ChannelClosed : public std::runtime_error {
 public:
  ChannelClosed() : std::runtime_error("push into closed channel") {}
};

/// Bounded FIFO channel between simulated activities. pop() on a closed,
/// drained channel yields nullopt — the canonical worker-shutdown signal.
template <typename T>
class Channel {
 public:
  Channel(Simulator& sim, std::size_t capacity)
      : capacity_(capacity), pop_waiters_(sim), push_waiters_(sim) {}

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool is_closed() const { return closed_; }

  [[nodiscard]] Task<void> push(T v) {
    for (;;) {
      if (closed_) throw ChannelClosed{};
      if (items_.size() < capacity_) {
        items_.push_back(std::move(v));
        pop_waiters_.wake_one();
        co_return;
      }
      co_await push_waiters_.wait();
    }
  }

  /// Non-blocking push; returns false when full.
  [[nodiscard]] bool try_push(T v) {
    if (closed_) throw ChannelClosed{};
    if (items_.size() >= capacity_) return false;
    items_.push_back(std::move(v));
    pop_waiters_.wake_one();
    return true;
  }

  [[nodiscard]] Task<std::optional<T>> pop() {
    for (;;) {
      if (!items_.empty()) {
        T v = std::move(items_.front());
        items_.pop_front();
        push_waiters_.wake_one();
        co_return std::optional<T>(std::move(v));
      }
      if (closed_) co_return std::nullopt;
      co_await pop_waiters_.wait();
    }
  }

  [[nodiscard]] std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    push_waiters_.wake_one();
    return v;
  }

  /// Closes the channel: pending pops drain remaining items then observe
  /// nullopt; further pushes throw.
  void close() {
    closed_ = true;
    pop_waiters_.wake_all();
    push_waiters_.wake_all();
  }

 private:
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  detail::WaitList pop_waiters_;
  detail::WaitList push_waiters_;
};

}  // namespace dlsim

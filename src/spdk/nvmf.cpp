#include "spdk/nvmf.hpp"

#include <cassert>
#include <optional>

namespace dlfs::spdk {

namespace {

/// One command capsule as it travels client -> target.
struct RemoteCmd {
  IoOp op = IoOp::kRead;
  std::uint64_t offset = 0;
  std::span<std::byte> buf{};
  std::uint64_t user_tag = 0;
};

}  // namespace

class RemoteIoQueue;

struct NvmfTarget::Connection {
  Connection(dlsim::Simulator& sim, hw::NodeId client,
             std::unique_ptr<hw::NvmeQueuePair> qpair, std::uint32_t depth)
      : client_node(client),
        qp(std::move(qpair)),
        inbound(sim, /*capacity=*/depth),
        expected(sim, /*capacity=*/depth),
        slots(sim, depth) {}

  hw::NodeId client_node;
  std::unique_ptr<hw::NvmeQueuePair> qp;
  dlsim::Channel<RemoteCmd> inbound;
  // Completion metadata in device-FIFO order.
  dlsim::Channel<RemoteCmd> expected;
  dlsim::Semaphore slots;
  RemoteIoQueue* client_queue = nullptr;
};

/// Initiator-side queue (lives on the client).
class RemoteIoQueue final : public IoQueue {
 public:
  RemoteIoQueue(dlsim::Simulator& sim, hw::Fabric& fabric,
                hw::NodeId client_node, hw::NodeId target_node,
                mem::HugePagePool& client_pool, NvmfTarget::Connection& conn,
                std::uint32_t depth)
      : sim_(&sim),
        fabric_(&fabric),
        client_node_(client_node),
        target_node_(target_node),
        pool_(&client_pool),
        conn_(&conn),
        depth_(depth),
        ready_waiters_(sim) {
    conn_->client_queue = this;
  }

  ~RemoteIoQueue() override {
    // Tear down the server-side loops; in-flight commands may still drain
    // into ready_ (discarded with us).
    conn_->inbound.close();
    conn_->client_queue = nullptr;
  }

  IoStatus submit(IoOp op, std::uint64_t offset, std::span<std::byte> buf,
                  std::uint64_t user_tag) override {
    if (outstanding_ >= depth_) return IoStatus::kQueueFull;
    if (!buf.empty() && !pool_->owns(buf.data())) {
      return IoStatus::kInvalidBuffer;
    }
    if (offset + buf.size() > conn_->qp->device().capacity()) {
      return IoStatus::kOutOfRange;
    }
    ++outstanding_;
    sim_->spawn(send_command(RemoteCmd{op, offset, buf, user_tag}),
                "nvmf-send");
    return IoStatus::kOk;
  }

  std::vector<IoCompletion> poll(std::size_t max) override {
    std::vector<IoCompletion> out;
    while (!ready_.empty() && out.size() < max) {
      out.push_back(ready_.front());
      ready_.pop_front();
    }
    return out;
  }

  dlsim::Task<void> wait_for_completion() override {
    while (ready_.empty() && outstanding_ > 0) {
      co_await ready_waiters_.wait();
    }
  }

  std::uint32_t outstanding() const override { return outstanding_; }
  std::uint32_t depth() const override { return depth_; }

  /// Called by the target's harvester when the data has landed.
  void deliver(IoCompletion c) {
    assert(outstanding_ > 0);
    --outstanding_;
    ready_.push_back(c);
    ready_waiters_.wake_all();
  }

  [[nodiscard]] hw::NodeId client_node() const { return client_node_; }

 private:
  dlsim::Task<void> send_command(RemoteCmd cmd) {
    // Command capsule over the wire, then into the target's inbound queue.
    co_await fabric_->send_control(client_node_, target_node_);
    co_await conn_->inbound.push(cmd);
  }

  dlsim::Simulator* sim_;
  hw::Fabric* fabric_;
  hw::NodeId client_node_;
  hw::NodeId target_node_;
  mem::HugePagePool* pool_;
  NvmfTarget::Connection* conn_;
  std::uint32_t depth_;
  std::uint32_t outstanding_ = 0;
  std::deque<IoCompletion> ready_;
  dlsim::detail::WaitList ready_waiters_;
};

NvmfTarget::NvmfTarget(dlsim::Simulator& sim, hw::Fabric& fabric,
                       hw::NodeId node, hw::NvmeDevice& device)
    : sim_(&sim),
      fabric_(&fabric),
      node_(node),
      device_(&device),
      poller_core_(sim, "nvmf-target-" + std::to_string(node)),
      poller_mutex_(sim) {
  device_->claim(hw::DeviceOwner::kUserSpace);
}

NvmfTarget::~NvmfTarget() {
  for (auto& c : connections_) c->inbound.close();
  device_->release(hw::DeviceOwner::kUserSpace);
}

std::unique_ptr<IoQueue> NvmfTarget::connect(hw::NodeId client_node,
                                             mem::HugePagePool& client_pool,
                                             std::uint32_t depth) {
  if (depth == 0) depth = device_->params().max_queue_depth;
  auto conn = std::make_unique<Connection>(
      *sim_, client_node, device_->create_qpair(depth), depth);
  Connection& ref = *conn;
  connections_.push_back(std::move(conn));
  sim_->spawn_daemon(dispatcher_loop(ref), "nvmf-dispatcher");
  sim_->spawn_daemon(harvester_loop(ref), "nvmf-harvester");
  return std::make_unique<RemoteIoQueue>(*sim_, *fabric_, client_node, node_,
                                         client_pool, ref, depth);
}

dlsim::Task<void> NvmfTarget::dispatcher_loop(Connection& conn) {
  const auto& nic = fabric_->params();
  for (;;) {
    std::optional<RemoteCmd> cmd = co_await conn.inbound.pop();
    if (!cmd) {
      conn.expected.close();
      co_return;
    }
    // Target CPU: parse the capsule and build the device command;
    // serialized on the single poller core.
    {
      auto guard = co_await poller_mutex_.scoped_lock();
      co_await poller_core_.compute(nic.per_message_cpu + 300);
    }
    co_await conn.slots.acquire();
    const IoStatus st =
        conn.qp->submit(cmd->op, cmd->offset, cmd->buf, cmd->user_tag);
    assert(st == IoStatus::kOk && "slot semaphore must bound submissions");
    (void)st;
    co_await conn.expected.push(*cmd);
  }
}

dlsim::Task<void> NvmfTarget::harvester_loop(Connection& conn) {
  for (;;) {
    std::optional<RemoteCmd> exp = co_await conn.expected.pop();
    if (!exp) co_return;
    // The per-connection qpair completes in FIFO order, so the head
    // completion corresponds to `exp`.
    std::vector<IoCompletion> done = conn.qp->poll(1);
    while (done.empty()) {
      co_await conn.qp->wait_for_completion();
      done = conn.qp->poll(1);
    }
    conn.slots.release();
    IoCompletion completion = done.front();
    completion.user_tag = exp->user_tag;
    {
      auto guard = co_await poller_mutex_.scoped_lock();
      co_await poller_core_.compute(fabric_->params().per_message_cpu);
    }
    // Pipeline the RDMA write back to the client: the NIC pipe model
    // serializes bandwidth; spawning keeps the harvester free to process
    // the next completion.
    sim_->spawn(return_data(conn, completion, exp->buf.size()),
                "nvmf-return");
  }
}

dlsim::Task<void> NvmfTarget::return_data(Connection& conn,
                                          IoCompletion completion,
                                          std::uint64_t bytes) {
  if (completion.status == IoStatus::kOk) {
    co_await fabric_->transfer(node_, conn.client_node, bytes);
  } else {
    // Errors carry no payload: just the completion capsule.
    co_await fabric_->send_control(node_, conn.client_node);
  }
  // Completion capsule rides behind the data (RDMA_WRITE + flagged CQE).
  if (conn.client_queue != nullptr) conn.client_queue->deliver(completion);
}

}  // namespace dlfs::spdk

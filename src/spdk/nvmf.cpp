#include "spdk/nvmf.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/check.hpp"

namespace dlfs::spdk {

namespace {

/// One command capsule as it travels client -> target.
struct RemoteCmd {
  IoOp op = IoOp::kRead;
  std::uint64_t offset = 0;
  std::span<std::byte> buf{};
  std::uint64_t user_tag = 0;
};

}  // namespace

struct NvmfTarget::Connection {
  Connection(dlsim::Simulator& sim, hw::NodeId client,
             std::unique_ptr<hw::NvmeQueuePair> qpair, std::uint32_t depth)
      : client_node(client),
        qp(std::move(qpair)),
        inbound(sim, /*capacity=*/depth),
        expected(sim, /*capacity=*/depth),
        slots(sim, depth) {}

  hw::NodeId client_node;
  std::unique_ptr<hw::NvmeQueuePair> qp;
  dlsim::Channel<RemoteCmd> inbound;
  // Completion metadata in device-FIFO order.
  dlsim::Channel<RemoteCmd> expected;
  dlsim::Semaphore slots;
  RemoteIoQueue* client_queue = nullptr;
  // Reap bookkeeping: a detached connection is destroyed once both service
  // daemons have exited and no return_data task still references it.
  bool detached = false;
  std::uint32_t active_daemons = 0;
  std::uint32_t pending_returns = 0;
};

/// Initiator-side queue (lives on the client).
///
/// Fault handling: every submitted command is stamped with a deadline.
/// poll()/wait_for_completion() complete overdue commands with kTimeout,
/// which also flips the connection into the reconnecting state: the old
/// server-side connection is detached (and reaped), and a background loop
/// retries the admin handshake with exponential backoff + jitter. On
/// success every still-pending command is replayed on the fresh
/// connection; when the attempt budget runs out the queue is dead and all
/// pending commands complete with kConnectionLost. A dead queue can be
/// revalidated explicitly via reprobe().
class RemoteIoQueue final : public IoQueue {
 public:
  RemoteIoQueue(dlsim::Simulator& sim, hw::Fabric& fabric, NvmfTarget& target,
                hw::NodeId client_node, mem::HugePagePool& client_pool,
                std::uint32_t depth, const NvmfFaultParams& fault)
      : sim_(&sim),
        fabric_(&fabric),
        target_(&target),
        client_node_(client_node),
        pool_(&client_pool),
        depth_(depth),
        fault_(fault),
        alive_(std::make_shared<bool>(true)),
        ready_waiters_(sim) {}

  ~RemoteIoQueue() override {
    *alive_ = false;
    if (conn_ != nullptr) {
      target_->detach_connection(conn_);
      conn_ = nullptr;
    }
  }

  void attach(NvmfTarget::Connection& conn) {
    conn_ = &conn;
    state_ = ConnState::kConnected;
  }

  IoStatus submit(IoOp op, std::uint64_t offset, std::span<std::byte> buf,
                  std::uint64_t user_tag) override {
    if (state_ == ConnState::kDead) return IoStatus::kConnectionLost;
    if (outstanding_ >= admission_depth()) return IoStatus::kQueueFull;
    if (!buf.empty() && !pool_->owns(buf.data())) {
      return IoStatus::kInvalidBuffer;
    }
    if (offset + buf.size() > target_->device().capacity()) {
      return IoStatus::kOutOfRange;
    }
    ++outstanding_;
    const RemoteCmd cmd{op, offset, buf, user_tag};
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/true};
    inflight_.emplace(user_tag,
                      Inflight{cmd, sim_->now() + fault_.command_timeout});
    deadline_fifo_.push_back(user_tag);
    if (state_ == ConnState::kConnected) {
      sim_->spawn(send_command(alive_, cmd), "nvmf-send");
    }
    // While reconnecting the command is parked; a successful reconnect
    // replays it, and its deadline still ticks meanwhile.
    return IoStatus::kOk;
  }

  std::vector<IoCompletion> poll(std::size_t max) override {
    expire_overdue();
    std::vector<IoCompletion> out;
    while (!ready_.empty() && out.size() < max) {
      out.push_back(ready_.front());
      ready_.pop_front();
    }
    return out;
  }

  dlsim::Task<void> wait_for_completion() override {
    expire_overdue();
    while (ready_.empty() && outstanding_ > 0) {
      arm_deadline_timer();
      co_await ready_waiters_.wait();
      expire_overdue();
    }
  }

  std::uint32_t outstanding() const override { return outstanding_; }
  std::uint32_t depth() const override { return depth_; }
  std::uint32_t admission_depth() const override {
    // Admission control (NvmfFaultParams::max_inflight_during_reconnect):
    // while reconnecting, every accepted command is parked for replay, so
    // capping admissions here caps the replay burst on the recovered path.
    if (state_ == ConnState::kReconnecting &&
        fault_.max_inflight_during_reconnect != 0) {
      return std::min(depth_, fault_.max_inflight_during_reconnect);
    }
    return depth_;
  }
  bool connected() const override { return state_ == ConnState::kConnected; }
  IoQueueStats transport_stats() const override { return stats_; }

  dlsim::Task<bool> reprobe() override {
    if (state_ == ConnState::kConnected) co_return true;
    if (state_ == ConnState::kReconnecting) co_return false;
    auto alive = alive_;
    const bool ok = co_await probe(alive);
    if (!*alive || !ok) co_return false;
    // Nothing can be in flight from the dead state, so no replay here.
    co_return establish();
  }

  /// Called by the target's harvester when the data has landed.
  void deliver(IoCompletion c) {
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/true};
    const auto it = inflight_.find(c.user_tag);
    // Unknown tag: the command already timed out (and was possibly
    // replayed) — this is the slow original finally arriving. Drop it, the
    // caller has already been told the outcome.
    if (it == inflight_.end()) return;
    inflight_.erase(it);
    complete(c);
  }

  [[nodiscard]] hw::NodeId client_node() const { return client_node_; }

 private:
  enum class ConnState : std::uint8_t { kConnected, kReconnecting, kDead };

  struct Inflight {
    RemoteCmd cmd;
    dlsim::SimTime deadline;
  };

  void complete(IoCompletion c) {
    assert(outstanding_ > 0);
    --outstanding_;
    ready_.push_back(c);
    ready_waiters_.wake_all();
  }

  /// Completes every overdue in-flight command with kTimeout. The first
  /// expiry on a connected queue also starts the reconnect state machine:
  /// in this model commands are only ever lost to crashes or partitions,
  /// so a deadline miss is a connection-level event, not a slow device.
  void expire_overdue() {
    if (inflight_.empty()) return;
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/true};
    const dlsim::SimTime now = sim_->now();
    bool expired = false;
    while (!deadline_fifo_.empty()) {
      const std::uint64_t tag = deadline_fifo_.front();
      const auto it = inflight_.find(tag);
      if (it == inflight_.end()) {  // stale entry from a replay
        deadline_fifo_.pop_front();
        continue;
      }
      if (it->second.deadline > now) break;  // deadlines are monotone
      deadline_fifo_.pop_front();
      const IoCompletion c{tag, it->second.cmd.op, IoStatus::kTimeout, 0};
      inflight_.erase(it);
      ++stats_.timeouts;
      complete(c);
      expired = true;
    }
    if (expired && state_ == ConnState::kConnected) begin_reconnect();
  }

  void begin_reconnect() {
    state_ = ConnState::kReconnecting;
    ++stats_.connections_lost;
    if (conn_ != nullptr) {
      target_->detach_connection(conn_);
      conn_ = nullptr;
    }
    sim_->spawn_daemon(reconnect_loop(alive_), "nvmf-reconnect");
  }

  dlsim::Task<void> reconnect_loop(std::shared_ptr<bool> alive) {
    for (std::uint32_t attempt = 0; attempt < fault_.reconnect_attempts;
         ++attempt) {
      if (!*alive) co_return;
      dlsim::SimDuration backoff =
          fault_.reconnect_backoff << std::min<std::uint32_t>(attempt, 16);
      backoff = std::min(backoff, fault_.reconnect_backoff_max);
      // Jitter (up to +25%) decorrelates clients reconnecting to the same
      // rebooted target. Drawn from the simulation-wide RNG stream so a
      // fixed Simulator::seed_rng() seed replays the whole schedule.
      backoff += static_cast<dlsim::SimDuration>(
          sim_->rand64() % (static_cast<std::uint64_t>(backoff) / 4 + 1));
      co_await sim_->delay(backoff);
      if (!*alive) co_return;
      const bool ok = co_await probe(alive);
      if (!*alive) co_return;
      if (ok && establish()) {
        replay_inflight();
        co_return;
      }
    }
    declare_dead();
  }

  /// Admin handshake: connect capsule out, acceptance back. Both legs ride
  /// the real fabric, so a partition or a crashed target fails the probe.
  // NB: the co_awaits are hoisted into named locals and the alive token is
  // taken by value; GCC 12 miscompiles this coroutine frame otherwise
  // (reference param / co_await inside a negated condition).
  dlsim::Task<bool> probe(std::shared_ptr<bool> alive) {
    if (!*alive) co_return false;
    const bool out_leg = co_await fabric_->send(client_node_, target_->node(),
                                                hw::kControlMessageBytes);
    if (!out_leg) co_return false;
    if (!*alive) co_return false;
    if (!target_->accepting()) co_return false;
    const bool back_leg = co_await fabric_->send(target_->node(), client_node_,
                                                 hw::kControlMessageBytes);
    co_return back_leg;
  }

  bool establish() {
    NvmfTarget::Connection* conn =
        target_->open_connection(client_node_, depth_, this);
    if (conn == nullptr) return false;  // raced with a crash
    attach(*conn);
    ++stats_.reconnects;
    return true;
  }

  void replay_inflight() {
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/true};
    std::vector<std::uint64_t> tags = pending_tags();
    deadline_fifo_.clear();
    const dlsim::SimTime deadline = sim_->now() + fault_.command_timeout;
    for (const std::uint64_t tag : tags) {
      Inflight& inf = inflight_.at(tag);
      inf.deadline = deadline;
      deadline_fifo_.push_back(tag);
      ++stats_.replays;
      sim_->spawn(send_command(alive_, inf.cmd), "nvmf-replay");
    }
  }

  void declare_dead() {
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/true};
    state_ = ConnState::kDead;
    for (const std::uint64_t tag : pending_tags()) {
      const IoCompletion c{tag, inflight_.at(tag).cmd.op,
                           IoStatus::kConnectionLost, 0};
      complete(c);
    }
    inflight_.clear();
    deadline_fifo_.clear();
  }

  /// In-flight tags in submission order (tags are caller-monotone).
  [[nodiscard]] std::vector<std::uint64_t> pending_tags() const {
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/false};
    std::vector<std::uint64_t> tags;
    tags.reserve(inflight_.size());
    for (const auto& [tag, inf] : inflight_) tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    return tags;
  }

  [[nodiscard]] dlsim::SimTime next_deadline() const {
    dlsim::AccessSlice slice{inflight_ledger_, /*write=*/false};
    for (const std::uint64_t tag : deadline_fifo_) {
      const auto it = inflight_.find(tag);
      if (it != inflight_.end()) return it->second.deadline;
    }
    return 0;
  }

  /// Ensures a wakeup exists at the earliest command deadline, so
  /// wait_for_completion() cannot block past it even when the completion
  /// never arrives.
  void arm_deadline_timer() {
    const dlsim::SimTime at = next_deadline();
    if (at == 0) return;
    if (timer_armed_until_ != 0 && timer_armed_until_ <= at) return;
    timer_armed_until_ = at;
    sim_->spawn_daemon(deadline_timer(alive_, at), "nvmf-timeout-timer");
  }

  dlsim::Task<void> deadline_timer(std::shared_ptr<bool> alive,
                                   dlsim::SimTime at) {
    const dlsim::SimTime now = sim_->now();
    if (at > now) co_await sim_->delay(at - now);
    if (!*alive) co_return;
    if (timer_armed_until_ == at) timer_armed_until_ = 0;
    expire_overdue();
    ready_waiters_.wake_all();
  }

  dlsim::Task<void> send_command(std::shared_ptr<bool> alive, RemoteCmd cmd) {
    if (!*alive) co_return;
    // Command capsule over the wire, then into the target's inbound queue.
    // Writes are in-capsule-data: the payload rides the outbound leg
    // (client -> target), so repair/checkpoint writes contend with reads
    // on the correct fabric direction.
    // Hoisted await (not `if (!co_await ...)`): GCC 12 miscompiles the
    // negated await-in-condition shape — same hazard probe() documents.
    const std::uint64_t capsule =
        hw::kControlMessageBytes +
        (cmd.op == IoOp::kWrite ? cmd.buf.size() : 0);
    const bool sent =
        co_await fabric_->send(client_node_, target_->node(), capsule);
    if (!sent) {
      co_return;  // capsule lost in the fabric; the deadline notices
    }
    if (!*alive) co_return;
    NvmfTarget::Connection* conn = conn_;  // may have changed while in flight
    if (conn == nullptr || conn->inbound.is_closed()) co_return;
    try {
      co_await conn->inbound.push(cmd);
    } catch (const dlsim::ChannelClosed&) {
      // Target crashed while we were parked on a full inbound queue; the
      // command dies here and its deadline surfaces it as a timeout.
    }
  }

  dlsim::Simulator* sim_;
  hw::Fabric* fabric_;
  NvmfTarget* target_;
  hw::NodeId client_node_;
  mem::HugePagePool* pool_;
  NvmfTarget::Connection* conn_ = nullptr;
  std::uint32_t depth_;
  NvmfFaultParams fault_;
  // Invalidated by the destructor; detached coroutines (sends, timers, the
  // reconnect loop) check it after every suspension before touching *this.
  std::shared_ptr<bool> alive_;
  ConnState state_ = ConnState::kConnected;
  std::uint32_t outstanding_ = 0;
  // The replay list is touched by the consumer (submit/poll), the target's
  // harvester (deliver), the timeout timer, and the reconnect loop — four
  // tasks; each touch must stay a suspension-free slice.
  mutable dlsim::AccessLedger inflight_ledger_{"nvmf-inflight"};
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  std::deque<std::uint64_t> deadline_fifo_;
  dlsim::SimTime timer_armed_until_ = 0;
  IoQueueStats stats_;
  std::deque<IoCompletion> ready_;
  dlsim::detail::WaitList ready_waiters_;
};

NvmfTarget::NvmfTarget(dlsim::Simulator& sim, hw::Fabric& fabric,
                       hw::NodeId node, hw::NvmeDevice& device)
    : sim_(&sim),
      fabric_(&fabric),
      node_(node),
      device_(&device),
      poller_core_(sim, "nvmf-target-" + std::to_string(node)),
      poller_mutex_(sim, "nvmf-poller") {
  device_->claim(hw::DeviceOwner::kUserSpace);
}

NvmfTarget::~NvmfTarget() {
  for (auto& c : connections_) {
    if (!c->inbound.is_closed()) c->inbound.close();
  }
  device_->release(hw::DeviceOwner::kUserSpace);
}

bool NvmfTarget::accepting() const {
  // A crashed target refuses admin connects; so does a target whose only
  // namespace is gone (the device controller died).
  return !crashed_ && !device_->crashed();
}

dlsim::Task<bool> NvmfTarget::metadata_rpc(hw::NodeId client_node,
                                           dlsim::SimDuration service,
                                           std::uint64_t reply_bytes) {
  if (crashed_) co_return false;
  // Request capsule: client -> target. Same 64 B a command capsule costs.
  const bool requested =
      co_await fabric_->send(client_node, node_, hw::kControlMessageBytes);
  if (!requested) co_return false;
  if (crashed_) co_return false;  // died while the capsule was in flight
  {
    // The owner's directory walk serializes on the poller core, exactly
    // like data-path capsule handling — a metadata storm is visible as
    // target CPU, not free.
    auto guard = co_await poller_mutex_.scoped_lock();
    co_await poller_core_.compute(fabric_->params().per_message_cpu + service);
  }
  if (crashed_) co_return false;
  const bool replied =
      co_await fabric_->send(node_, client_node, reply_bytes);
  co_return replied;
}

void NvmfTarget::crash() {
  crashed_ = true;
  // In-flight capsules die with the target process: closing the inbound
  // queues drains the service daemons (which drop everything they still
  // hold while crashed_ is set).
  for (auto& c : connections_) {
    if (!c->inbound.is_closed()) c->inbound.close();
  }
}

void NvmfTarget::recover() { crashed_ = false; }

void NvmfTarget::crash_at(dlsim::SimTime when) {
  sim_->spawn_daemon(
      [](NvmfTarget* t, dlsim::SimTime at) -> dlsim::Task<void> {
        const dlsim::SimTime now = t->sim_->now();
        if (at > now) co_await t->sim_->delay(at - now);
        t->crash();
      }(this, when),
      "nvmf-crash-at");
}

void NvmfTarget::recover_at(dlsim::SimTime when) {
  sim_->spawn_daemon(
      [](NvmfTarget* t, dlsim::SimTime at) -> dlsim::Task<void> {
        const dlsim::SimTime now = t->sim_->now();
        if (at > now) co_await t->sim_->delay(at - now);
        t->recover();
      }(this, when),
      "nvmf-recover-at");
}

std::unique_ptr<IoQueue> NvmfTarget::connect(hw::NodeId client_node,
                                             mem::HugePagePool& client_pool,
                                             std::uint32_t depth,
                                             const NvmfFaultParams& fault) {
  if (depth == 0) depth = device_->params().max_queue_depth;
  auto queue = std::make_unique<RemoteIoQueue>(
      *sim_, *fabric_, *this, client_node, client_pool, depth, fault);
  Connection* conn = open_connection(client_node, depth, queue.get());
  if (conn == nullptr) {
    throw std::runtime_error("nvmf: target on node " + std::to_string(node_) +
                             " refused the connection (down)");
  }
  queue->attach(*conn);
  return queue;
}

NvmfTarget::Connection* NvmfTarget::open_connection(hw::NodeId client_node,
                                                    std::uint32_t depth,
                                                    RemoteIoQueue* queue) {
  if (!accepting()) return nullptr;
  auto conn = std::make_unique<Connection>(
      *sim_, client_node, device_->create_qpair(depth), depth);
  conn->client_queue = queue;
  Connection& ref = *conn;
  connections_.push_back(std::move(conn));
  ref.active_daemons = 2;
  sim_->spawn_daemon(dispatcher_loop(ref), "nvmf-dispatcher");
  sim_->spawn_daemon(harvester_loop(ref), "nvmf-harvester");
  return &ref;
}

void NvmfTarget::detach_connection(Connection* conn) {
  conn->client_queue = nullptr;
  conn->detached = true;
  if (!conn->inbound.is_closed()) conn->inbound.close();
  maybe_reap(conn);
}

void NvmfTarget::maybe_reap(Connection* conn) {
  if (!conn->detached || conn->active_daemons != 0 ||
      conn->pending_returns != 0) {
    return;
  }
  std::erase_if(connections_, [conn](const std::unique_ptr<Connection>& c) {
    return c.get() == conn;
  });
}

dlsim::Task<void> NvmfTarget::dispatcher_loop(Connection& conn) {
  const auto& nic = fabric_->params();
  for (;;) {
    std::optional<RemoteCmd> cmd = co_await conn.inbound.pop();
    if (!cmd) break;
    if (crashed_) continue;  // the target process died; drop the capsule
    // Target CPU: parse the capsule and build the device command;
    // serialized on the single poller core.
    {
      auto guard = co_await poller_mutex_.scoped_lock();
      co_await poller_core_.compute(nic.per_message_cpu + 300);
    }
    co_await conn.slots.acquire();
    if (crashed_) {
      conn.slots.release();
      continue;
    }
    const IoStatus st =
        conn.qp->submit(cmd->op, cmd->offset, cmd->buf, cmd->user_tag);
    if (st != IoStatus::kOk) {
      // The device refused (controller crashed mid-stream): answer with an
      // error capsule instead of wedging the slot accounting. The slot
      // semaphore still bounds healthy submissions, so anything else here
      // is a device-level failure, never kQueueFull.
      conn.slots.release();
      ++conn.pending_returns;
      sim_->spawn(
          return_data(conn, IoCompletion{cmd->user_tag, cmd->op, st, 0}, 0),
          "nvmf-return");
      continue;
    }
    co_await conn.expected.push(*cmd);
  }
  if (!conn.expected.is_closed()) conn.expected.close();
  --conn.active_daemons;
  maybe_reap(&conn);
}

dlsim::Task<void> NvmfTarget::harvester_loop(Connection& conn) {
  for (;;) {
    std::optional<RemoteCmd> exp = co_await conn.expected.pop();
    if (!exp) break;
    if (crashed_) continue;  // completions die inside the dead target
    // The per-connection qpair completes in FIFO order, so the head
    // completion corresponds to `exp`.
    std::vector<IoCompletion> done = conn.qp->poll(1);
    while (done.empty()) {
      co_await conn.qp->wait_for_completion();
      if (crashed_) break;
      done = conn.qp->poll(1);
    }
    if (done.empty()) continue;  // target crashed while waiting
    conn.slots.release();
    IoCompletion completion = done.front();
    completion.user_tag = exp->user_tag;
    {
      auto guard = co_await poller_mutex_.scoped_lock();
      co_await poller_core_.compute(fabric_->params().per_message_cpu);
    }
    // Pipeline the RDMA write back to the client: the NIC pipe model
    // serializes bandwidth; spawning keeps the harvester free to process
    // the next completion.
    // Reads RDMA-write the data back; writes return only the completion
    // capsule (their payload already travelled on the submission leg).
    const std::uint64_t ret_bytes =
        exp->op == IoOp::kWrite ? 0 : exp->buf.size();
    ++conn.pending_returns;
    sim_->spawn(return_data(conn, completion, ret_bytes), "nvmf-return");
  }
  --conn.active_daemons;
  maybe_reap(&conn);
}

dlsim::Task<void> NvmfTarget::return_data(Connection& conn,
                                          IoCompletion completion,
                                          std::uint64_t bytes) {
  bool delivered = false;
  if (!crashed_) {
    if (completion.status == IoStatus::kOk) {
      delivered = co_await fabric_->send(
          node_, conn.client_node,
          bytes > 0 ? bytes : hw::kControlMessageBytes);
    } else {
      // Errors carry no payload: just the completion capsule.
      delivered = co_await fabric_->send(node_, conn.client_node,
                                         hw::kControlMessageBytes);
    }
  }
  // Completion capsule rides behind the data (RDMA_WRITE + flagged CQE).
  // A crash or partition eats it; the client's command deadline recovers.
  if (delivered && !crashed_ && conn.client_queue != nullptr) {
    conn.client_queue->deliver(completion);
  }
  --conn.pending_returns;
  maybe_reap(&conn);
}

}  // namespace dlfs::spdk

#pragma once

// IoQueue: the queue-pair abstraction DLFS's backend programs against.
//
// The paper's design is location-transparent: "the allocated NVMe devices
// may be local or remote with respect to the compute nodes" (§III). The
// DLFS I/O engine therefore talks to this interface; spdk::NvmeDriver
// provides the local implementation and spdk::NvmfTarget::connect() the
// NVMe-over-Fabrics one.
//
// Semantics mirror an SPDK I/O queue pair: submit() is non-blocking and
// fails with kQueueFull at the configured queue depth; completions are
// harvested by busy polling (poll()), and wait_for_completion() is the
// simulation-friendly way to express "poll until something completes"
// without an event per poll iteration (the caller charges the elapsed
// time to its core as busy-polling, preserving SPDK's CPU semantics).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hw/nvme/nvme_device.hpp"
#include "sim/task.hpp"

namespace dlfs::spdk {

using hw::IoCompletion;
using hw::IoOp;
using hw::IoStatus;

/// Transport-level fault counters. Local queues stay at zero; the NVMe-oF
/// initiator counts command timeouts, reconnects and replays.
struct IoQueueStats {
  std::uint64_t timeouts = 0;
  std::uint64_t connections_lost = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t replays = 0;
};

class IoQueue {
 public:
  virtual ~IoQueue() = default;

  /// Posts one command. Buffers must come from the driver's huge-page
  /// pool (kInvalidBuffer otherwise — the SPDK DMA-safety rule).
  [[nodiscard]] virtual IoStatus submit(IoOp op, std::uint64_t offset,
                                        std::span<std::byte> buf,
                                        std::uint64_t user_tag) = 0;

  /// Harvests up to `max` ready completions (non-blocking).
  [[nodiscard]] virtual std::vector<IoCompletion> poll(
      std::size_t max = SIZE_MAX) = 0;

  /// Suspends until >= 1 completion is visible; returns immediately when
  /// nothing is outstanding.
  [[nodiscard]] virtual dlsim::Task<void> wait_for_completion() = 0;

  [[nodiscard]] virtual std::uint32_t outstanding() const = 0;
  [[nodiscard]] virtual std::uint32_t depth() const = 0;

  /// How many commands the queue is willing to accept *right now* — the
  /// client-side admission bound. Equal to depth() on healthy paths; a
  /// degraded transport (e.g. an NVMe-oF initiator mid-reconnect) may
  /// report less so replay storms don't starve healthy nodes. Callers
  /// should gate posting on outstanding() < admission_depth() and treat a
  /// shrunken value as backpressure, not an error.
  [[nodiscard]] virtual std::uint32_t admission_depth() const {
    return depth();
  }

  /// If the time of the earliest outstanding completion is knowable
  /// (local device queues), returns it; nullopt for event-driven queues
  /// (NVMe-oF initiators) — callers then busy-poll at a fixed quantum,
  /// matching SPDK's polling semantics.
  [[nodiscard]] virtual std::optional<dlsim::SimTime> next_completion_at()
      const {
    return std::nullopt;
  }

  /// Whether the path to the device is currently believed usable. Local
  /// queues are always connected; the NVMe-oF initiator reports false
  /// once its reconnect budget is exhausted.
  [[nodiscard]] virtual bool connected() const { return true; }

  /// One explicit revalidation attempt for a queue whose path died (no
  /// backoff, no budget — the caller paces these, e.g. once per epoch).
  /// Returns true when the queue is usable again.
  [[nodiscard]] virtual dlsim::Task<bool> reprobe() {
    return []() -> dlsim::Task<bool> { co_return true; }();
  }

  [[nodiscard]] virtual IoQueueStats transport_stats() const { return {}; }
};

}  // namespace dlfs::spdk

#include "spdk/nvme_driver.hpp"

#include <stdexcept>

namespace dlfs::spdk {

namespace {

/// Local I/O queue: a thin shim over the device qpair that adds the
/// huge-page DMA check.
class LocalIoQueue final : public IoQueue {
 public:
  LocalIoQueue(std::unique_ptr<hw::NvmeQueuePair> qp, mem::HugePagePool& pool)
      : qp_(std::move(qp)), pool_(&pool) {}

  IoStatus submit(IoOp op, std::uint64_t offset, std::span<std::byte> buf,
                  std::uint64_t user_tag) override {
    if (!buf.empty() && !pool_->owns(buf.data())) {
      return IoStatus::kInvalidBuffer;
    }
    return qp_->submit(op, offset, buf, user_tag);
  }

  std::vector<IoCompletion> poll(std::size_t max) override {
    return qp_->poll(max);
  }

  dlsim::Task<void> wait_for_completion() override {
    return qp_->wait_for_completion();
  }

  std::uint32_t outstanding() const override { return qp_->outstanding(); }
  std::uint32_t depth() const override { return qp_->depth(); }

  std::optional<dlsim::SimTime> next_completion_at() const override {
    if (qp_->outstanding() == 0) return std::nullopt;
    return qp_->next_completion_at();
  }

  bool connected() const override { return !qp_->device().crashed(); }

  dlsim::Task<bool> reprobe() override {
    // Local path: nothing to re-handshake — the queue is usable iff the
    // controller is back.
    co_return !qp_->device().crashed();
  }

 private:
  std::unique_ptr<hw::NvmeQueuePair> qp_;
  mem::HugePagePool* pool_;
};

}  // namespace

NvmeDriver::~NvmeDriver() {
  for (auto* dev : devices_) dev->release(hw::DeviceOwner::kUserSpace);
}

void NvmeDriver::attach(hw::NvmeDevice& dev) {
  if (devices_.contains(&dev)) return;
  dev.claim(hw::DeviceOwner::kUserSpace);
  devices_.insert(&dev);
}

void NvmeDriver::detach(hw::NvmeDevice& dev) {
  if (!devices_.erase(&dev)) {
    throw std::logic_error("detach of non-attached device " + dev.name());
  }
  dev.release(hw::DeviceOwner::kUserSpace);
}

std::unique_ptr<IoQueue> NvmeDriver::create_io_queue(hw::NvmeDevice& dev,
                                                     std::uint32_t depth) {
  if (!devices_.contains(&dev)) {
    throw std::logic_error("create_io_queue on non-attached device " +
                           dev.name());
  }
  return std::make_unique<LocalIoQueue>(dev.create_qpair(depth), *pool_);
}

}  // namespace dlfs::spdk

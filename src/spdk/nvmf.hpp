#pragma once

// NVMe over Fabrics: user-level target and initiator (SPDK nvmf).
//
// An NvmfTarget runs on the storage node and exports one NVMe device.
// Each client connection gets its own server-side I/O queue pair (as in
// SPDK, where each host connection maps to a dedicated qpair), serviced
// by two daemon coroutines on the target:
//
//   dispatcher: inbound command capsules -> device submission (bounded by
//               the connection's queue depth via a slot semaphore)
//   harvester:  device completions (FIFO per qpair) -> RDMA-write of the
//               data back into the client's registered buffer -> client
//               completion
//
// All target-side per-command CPU work serializes on the target's single
// poller core (SPDK reactor model), so a flood of small commands from
// many clients saturates the target CPU — one of the effects chunk-level
// batching exists to avoid.
//
// The initiator side (RemoteIoQueue) implements spdk::IoQueue, so DLFS
// cannot tell a remote device from a local one — the disaggregation
// transparency the paper builds on.

#include <deque>
#include <memory>
#include <vector>

#include "hw/net/fabric.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/cpu.hpp"
#include "sim/sync.hpp"
#include "spdk/io_queue.hpp"

namespace dlfs::spdk {

class RemoteIoQueue;

/// Fault-handling knobs for one NVMe-oF connection. The command timeout
/// must exceed the worst legitimate target-side queueing delay (a full
/// queue of large commands), otherwise healthy-but-busy targets get
/// declared dead.
struct NvmfFaultParams {
  dlsim::SimDuration command_timeout = 50'000'000;     // 50 ms
  dlsim::SimDuration reconnect_backoff = 500'000;      // first retry: 500 us
  dlsim::SimDuration reconnect_backoff_max = 8'000'000;
  std::uint32_t reconnect_attempts = 6;
  // Backoff jitter is drawn from the owning Simulator's RNG stream
  // (Simulator::rand64), not from per-queue state: one seed_rng() call
  // reproduces every reconnect schedule in the run, which is what lets
  // chaos-soak failures replay deterministically.
  /// Client-side admission control: while the connection is reconnecting,
  /// cap the number of in-flight commands (parked for replay) at this
  /// value; further submits see kQueueFull. 0 = no cap (full queue depth).
  /// Bounding the parked set bounds the replay burst that hits a freshly
  /// recovered target — and frees the caller to route around the node.
  std::uint32_t max_inflight_during_reconnect = 0;

  bool operator==(const NvmfFaultParams&) const = default;
};

class NvmfTarget {
 public:
  NvmfTarget(dlsim::Simulator& sim, hw::Fabric& fabric, hw::NodeId node,
             hw::NvmeDevice& device);
  NvmfTarget(const NvmfTarget&) = delete;
  NvmfTarget& operator=(const NvmfTarget&) = delete;
  ~NvmfTarget();

  /// Establishes a connection from `client_node`; returns the initiator's
  /// queue. `client_pool` is the client's registered (huge-page) memory —
  /// RDMA writes land only there. depth 0 = device max.
  [[nodiscard]] std::unique_ptr<IoQueue> connect(
      hw::NodeId client_node, mem::HugePagePool& client_pool,
      std::uint32_t depth = 0, const NvmfFaultParams& fault = {});

  [[nodiscard]] hw::NodeId node() const { return node_; }
  [[nodiscard]] hw::NvmeDevice& device() { return *device_; }
  /// The target's poller core: its utilization measures target-side CPU.
  [[nodiscard]] dlsim::CpuCore& poller_core() { return poller_core_; }

  // --- fault injection -----------------------------------------------------
  /// Fail-stop the target process: inbound capsules are dropped, pending
  /// returns never leave the node, and new connections are refused. The
  /// NVMe device itself survives (data is intact after recover()).
  void crash();
  void recover();
  [[nodiscard]] bool crashed() const { return crashed_; }
  void crash_at(dlsim::SimTime when);
  void recover_at(dlsim::SimTime when);
  /// Whether a (re)connect attempt would be admitted right now.
  [[nodiscard]] bool accepting() const;

  /// NVMe-oF-style metadata exchange for the sharded sample directory:
  /// one request capsule from `client_node`, `service` of directory-walk
  /// CPU serialized on the poller core (metadata storms contend with the
  /// data path's capsule handling), and a `reply_bytes` response. True
  /// when the reply was delivered; false when the target is down or a
  /// link dropped either leg — the caller falls back / fails over.
  [[nodiscard]] dlsim::Task<bool> metadata_rpc(hw::NodeId client_node,
                                               dlsim::SimDuration service,
                                               std::uint64_t reply_bytes);

  /// Live server-side connections (reaped connections excluded).
  [[nodiscard]] std::size_t connection_count() const {
    return connections_.size();
  }

 private:
  friend class RemoteIoQueue;
  struct Connection;

  /// Admits one connection and starts its service daemons; returns nullptr
  /// when the target is down.
  Connection* open_connection(hw::NodeId client_node, std::uint32_t depth,
                              RemoteIoQueue* queue);
  /// Severs the initiator from a connection and reaps it once its daemons
  /// and in-flight returns have drained.
  void detach_connection(Connection* conn);
  void maybe_reap(Connection* conn);

  dlsim::Task<void> dispatcher_loop(Connection& conn);
  dlsim::Task<void> harvester_loop(Connection& conn);
  dlsim::Task<void> return_data(Connection& conn, IoCompletion completion,
                                std::uint64_t bytes);

  dlsim::Simulator* sim_;
  hw::Fabric* fabric_;
  hw::NodeId node_;
  hw::NvmeDevice* device_;
  dlsim::CpuCore poller_core_;
  dlsim::Mutex poller_mutex_;  // serializes work on the single poller core
  bool crashed_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace dlfs::spdk

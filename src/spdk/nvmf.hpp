#pragma once

// NVMe over Fabrics: user-level target and initiator (SPDK nvmf).
//
// An NvmfTarget runs on the storage node and exports one NVMe device.
// Each client connection gets its own server-side I/O queue pair (as in
// SPDK, where each host connection maps to a dedicated qpair), serviced
// by two daemon coroutines on the target:
//
//   dispatcher: inbound command capsules -> device submission (bounded by
//               the connection's queue depth via a slot semaphore)
//   harvester:  device completions (FIFO per qpair) -> RDMA-write of the
//               data back into the client's registered buffer -> client
//               completion
//
// All target-side per-command CPU work serializes on the target's single
// poller core (SPDK reactor model), so a flood of small commands from
// many clients saturates the target CPU — one of the effects chunk-level
// batching exists to avoid.
//
// The initiator side (RemoteIoQueue) implements spdk::IoQueue, so DLFS
// cannot tell a remote device from a local one — the disaggregation
// transparency the paper builds on.

#include <deque>
#include <memory>
#include <vector>

#include "hw/net/fabric.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/cpu.hpp"
#include "sim/sync.hpp"
#include "spdk/io_queue.hpp"

namespace dlfs::spdk {

class NvmfTarget {
 public:
  NvmfTarget(dlsim::Simulator& sim, hw::Fabric& fabric, hw::NodeId node,
             hw::NvmeDevice& device);
  NvmfTarget(const NvmfTarget&) = delete;
  NvmfTarget& operator=(const NvmfTarget&) = delete;
  ~NvmfTarget();

  /// Establishes a connection from `client_node`; returns the initiator's
  /// queue. `client_pool` is the client's registered (huge-page) memory —
  /// RDMA writes land only there. depth 0 = device max.
  [[nodiscard]] std::unique_ptr<IoQueue> connect(hw::NodeId client_node,
                                                 mem::HugePagePool& client_pool,
                                                 std::uint32_t depth = 0);

  [[nodiscard]] hw::NodeId node() const { return node_; }
  [[nodiscard]] hw::NvmeDevice& device() { return *device_; }
  /// The target's poller core: its utilization measures target-side CPU.
  [[nodiscard]] dlsim::CpuCore& poller_core() { return poller_core_; }

 private:
  friend class RemoteIoQueue;
  struct Connection;

  dlsim::Task<void> dispatcher_loop(Connection& conn);
  dlsim::Task<void> harvester_loop(Connection& conn);
  dlsim::Task<void> return_data(Connection& conn, IoCompletion completion,
                                std::uint64_t bytes);

  dlsim::Simulator* sim_;
  hw::Fabric* fabric_;
  hw::NodeId node_;
  hw::NvmeDevice* device_;
  dlsim::CpuCore poller_core_;
  dlsim::Mutex poller_mutex_;  // serializes work on the single poller core
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace dlfs::spdk

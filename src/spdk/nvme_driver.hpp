#pragma once

// NvmeDriver: the local user-space NVMe driver (SPDK's nvme library).
//
// attach() claims the device away from the kernel — the real SPDK
// requires `nvme` to be unbound and the device given to vfio/uio first,
// and our NvmeDevice enforces the same exclusivity. I/O queues created
// here validate that every buffer lives in the driver's huge-page pool.

#include <memory>
#include <unordered_set>

#include "mem/hugepage_pool.hpp"
#include "spdk/io_queue.hpp"

namespace dlfs::spdk {

class NvmeDriver {
 public:
  NvmeDriver(dlsim::Simulator& sim, mem::HugePagePool& pool)
      : sim_(&sim), pool_(&pool) {}

  NvmeDriver(const NvmeDriver&) = delete;
  NvmeDriver& operator=(const NvmeDriver&) = delete;
  ~NvmeDriver();

  /// Claims the device for user-space I/O. Throws std::logic_error if the
  /// kernel still owns it.
  void attach(hw::NvmeDevice& dev);
  void detach(hw::NvmeDevice& dev);
  [[nodiscard]] bool attached(hw::NvmeDevice& dev) const {
    return devices_.contains(&dev);
  }

  /// Creates an I/O queue on an attached device (depth 0 = device max).
  [[nodiscard]] std::unique_ptr<IoQueue> create_io_queue(
      hw::NvmeDevice& dev, std::uint32_t depth = 0);

  [[nodiscard]] mem::HugePagePool& pool() { return *pool_; }
  [[nodiscard]] dlsim::Simulator& simulator() { return *sim_; }

 private:
  dlsim::Simulator* sim_;
  mem::HugePagePool* pool_;
  std::unordered_set<hw::NvmeDevice*> devices_;
};

}  // namespace dlfs::spdk

// Multi-tenant QoS for shared storage nodes. Dozens of jobs (fleets)
// run against the same NVMe devices and fabric links; without admission
// control one job with a deep prefetch window monopolises every device
// queue and the others' tail latency explodes. The governor sits in the
// IoEngine submit path: before a piece is posted the engine asks its
// tenant handle for admission, and every harvested completion returns
// the grant. Three mechanisms compose:
//
//   * per-tenant in-flight caps (`TenantQos::max_inflight`) bound how
//     many commands one job may have outstanding fleet-wide, which
//     bounds its occupancy of the shared device pipes;
//   * weighted fair bandwidth shares via start-time virtual time: each
//     admitted command advances the tenant's virtual clock by
//     bytes / effective_weight, and a tenant whose clock has run ahead
//     of the slowest *active* tenant's by more than the burst allowance
//     is deferred until the others catch up;
//   * priority classes: kHigh multiplies the weight (latency-sensitive
//     jobs overtake at the same nominal share), kBackground trickles —
//     at most one command in flight while any foreground tenant is
//     busy, full speed on an otherwise idle fleet.
//
// The governor is sim-global state shared by every fleet that registers
// with it; the simulator is single-threaded, so no locking is needed —
// determinism comes for free. A job with no governor configured pays
// nothing (the engine hook is one null check).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dlfs::core {

class TenantGovernor;

/// Priority class of one tenant (one job / fleet).
enum class QosClass : std::uint8_t {
  kHigh,        // latency-sensitive: weight boosted by kHighBoost
  kNormal,      // weighted fair share
  kBackground,  // trickle while any foreground tenant is active
};

/// Static QoS parameters a job registers with.
struct TenantQos {
  std::string name;                        ///< for telemetry / errors
  std::uint32_t weight = 1;                ///< relative bandwidth share
  QosClass priority = QosClass::kNormal;   ///< class (see above)
  std::uint32_t max_inflight = 0;          ///< outstanding-cmd cap; 0 = none
};

/// Per-tenant counters, readable any time.
struct TenantQosStats {
  std::uint64_t admitted = 0;    ///< grants handed out
  std::uint64_t deferred = 0;    ///< admission refusals (retried later)
  std::uint64_t bytes_admitted = 0;
};

/// One registered tenant. Engines hold a shared_ptr and call the
/// admission trio below; all state mutation funnels through the
/// governor so the fairness floor sees every tenant.
class TenantHandle {
 public:
  [[nodiscard]] const TenantQos& qos() const { return cfg_; }
  [[nodiscard]] const TenantQosStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t inflight() const { return inflight_; }

  /// Ask to put `bytes` on the wire. False = deferred; the engine stops
  /// posting and retries after the next completion/poll quantum.
  bool try_admit(std::uint32_t bytes);
  /// Undo an admission whose submit never reached the device
  /// (queue-full race, connection lost mid-prep).
  void cancel_admit(std::uint32_t bytes);
  /// A previously admitted command completed at the transport.
  void on_complete(std::uint32_t bytes);

 private:
  friend class TenantGovernor;
  TenantQos cfg_;
  TenantGovernor* gov_ = nullptr;
  std::uint32_t inflight_ = 0;
  double vtime_ = 0;  ///< virtual clock, advances by bytes/effective_weight
  TenantQosStats stats_;
};

/// The shared arbiter. One instance per simulated deployment; every
/// fleet that should be governed registers a tenant and wires the
/// returned handle into its engines.
class TenantGovernor {
 public:
  /// `burst_bytes`: how far one tenant's virtual clock may run ahead of
  /// the fairness floor (divided by its effective weight), i.e. the
  /// scheduling granularity. Defaults to 1 MiB — a handful of chunks.
  explicit TenantGovernor(std::uint64_t burst_bytes = 1ull << 20)
      : burst_bytes_(burst_bytes) {}

  std::shared_ptr<TenantHandle> register_tenant(TenantQos cfg);

  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  [[nodiscard]] std::uint64_t burst_bytes() const { return burst_bytes_; }

  /// kHigh tenants behave like a tenant with weight * kHighBoost.
  static constexpr std::uint32_t kHighBoost = 8;

  /// Effective weight after the priority-class multiplier.
  static double effective_weight(const TenantQos& q);

 private:
  friend class TenantHandle;
  bool admit(TenantHandle& t, std::uint32_t bytes);
  void cancel(TenantHandle& t, std::uint32_t bytes);
  void complete(TenantHandle& t, std::uint32_t bytes);
  /// Min virtual clock over tenants with work in flight; `t`'s own
  /// clock when the fleet is otherwise idle (then `t` never self-blocks).
  [[nodiscard]] double floor_vtime(const TenantHandle& t) const;
  [[nodiscard]] bool foreground_busy(const TenantHandle& t) const;

  std::uint64_t burst_bytes_;
  std::vector<std::shared_ptr<TenantHandle>> tenants_;
};

}  // namespace dlfs::core

#include "dlfs/prefetcher.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace dlfs::core {

Prefetcher::Prefetcher(dlsim::Simulator& sim, IoEngine& engine,
                       mem::HugePagePool& pool, std::uint64_t chunk_bytes,
                       PrefetcherConfig config, const std::string& name)
    : sim_(&sim),
      engine_(&engine),
      pool_(&pool),
      chunk_bytes_(chunk_bytes),
      cfg_(config),
      wake_(sim) {
  cfg_.max_units = std::max(cfg_.max_units, cfg_.min_units);
  window_target_ =
      std::clamp(cfg_.initial_units, cfg_.min_units, cfg_.max_units);
  stats_.window_target = window_target_;
  core_ = std::make_unique<dlsim::CpuCore>(sim, name);
  sim.spawn_daemon(daemon_loop(), name);
}

Prefetcher::~Prefetcher() {
  shutdown_ = true;
  wake_.set();
}

void Prefetcher::start_epoch(const EpochSequence* seq) {
  // Extents cannot be cancelled: unfinished read-ahead from the previous
  // epoch keeps draining on the daemon and its buffers drop on arrival.
  // Finished entries release their chunks right here, with the ops.
  for (auto& e : window_) {
    if (!e.op->finished()) draining_.push_back(e.op);
  }
  window_.clear();
  seq_ = seq;
  next_issue_ = 0;
  demand_floor_ = 0;
  total_units_ = seq ? seq->my_units() : 0;
  wake_.set();
}

void Prefetcher::issue_back(std::size_t slot) {
  const ReadUnit* u = seq_->unit_at(slot);
  Entry e;
  e.slot = slot;
  e.op = engine_->start_extent(
      ReadExtent{u->nid, u->offset, u->len, nullptr, std::nullopt, nullptr,
                 {}});
  window_.push_back(std::move(e));
  ++stats_.units_issued;
  stats_.in_flight_hwm = std::max(
      stats_.in_flight_hwm, static_cast<std::uint32_t>(window_.size()));
  wake_.set();
}

void Prefetcher::ensure_issued_through(std::size_t slot) {
  if (seq_ == nullptr) return;
  demand_floor_ = std::max(demand_floor_, slot + 1);
  while (next_issue_ <= slot && next_issue_ < total_units_) {
    issue_back(next_issue_++);
  }
}

void Prefetcher::top_up() {
  if (seq_ == nullptr) return;
  // The target is read-ahead depth beyond the demanded batch: demand
  // issues never count against it, so the device keeps working on future
  // units even while the consumer drains the current batch.
  const std::size_t limit = std::min<std::size_t>(
      total_units_, demand_floor_ + window_target_);
  while (next_issue_ < limit) {
    const ReadUnit* u = seq_->unit_at(next_issue_);
    const auto need =
        static_cast<std::uint32_t>(ceil_div(u->len, chunk_bytes_));
    if (pool_->free_chunks() < need + cfg_.reserve_chunks) {
      // No pool headroom for more read-ahead: adapt the target down to
      // the depth the pool actually sustains instead of thrashing.
      const auto depth = static_cast<std::uint32_t>(
          next_issue_ > demand_floor_ ? next_issue_ - demand_floor_ : 0);
      const auto floor_target =
          std::clamp(depth, cfg_.min_units, window_target_);
      if (window_target_ > floor_target) {
        window_target_ = floor_target;
        ++stats_.window_shrinks;
        stats_.window_target = window_target_;
      }
      return;
    }
    issue_back(next_issue_++);
  }
}

ExtentOpPtr Prefetcher::oldest_unfinished() {
  for (const auto& op : draining_) {
    if (!op->finished()) return op;
  }
  for (const auto& e : window_) {
    if (!e.op->finished()) return e.op;
  }
  return nullptr;
}

bool Prefetcher::relieve_pressure() {
  // Shed the farthest resident, unconsumed unit: its chunks unblock
  // demand I/O now, and the consumer demand-fetches it again when the
  // cursor gets there. Entries being awaited (pinned) and unfinished ones
  // (chunks still in flight) cannot yield memory.
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    if (it->pinned || !it->op->finished() || it->op->error()) continue;
    (void)it->op->take_buffers();  // DmaBuffers drop -> chunks freed
    ++stats_.units_dropped;
    if (window_target_ > cfg_.min_units) {
      --window_target_;
      ++stats_.window_shrinks;
      stats_.window_target = window_target_;
    }
    window_.erase(std::next(it).base());
    return true;
  }
  return false;
}

void Prefetcher::discard(std::size_t slot) {
  demand_floor_ = std::max(demand_floor_, slot + 1);
  auto it = std::find_if(window_.begin(), window_.end(),
                         [slot](const Entry& e) { return e.slot == slot; });
  if (it == window_.end() || it->pinned) return;
  if (!it->op->finished()) {
    draining_.push_back(it->op);
  } else if (!it->op->error()) {
    (void)it->op->take_buffers();  // DmaBuffers drop -> chunks freed
  }
  window_.erase(it);
  wake_.set();
}

std::uint32_t Prefetcher::reissue_failed() {
  if (seq_ == nullptr) return 0;
  std::uint32_t n = 0;
  for (auto& e : window_) {
    if (e.pinned || !e.op->error()) continue;
    // An op can carry an error while extents still drain; those buffers
    // cannot be reused, so the old op keeps draining off to the side.
    if (!e.op->finished()) draining_.push_back(e.op);
    const ReadUnit* u = seq_->unit_at(e.slot);
    e.op = engine_->start_extent(
        ReadExtent{u->nid, u->offset, u->len, nullptr, std::nullopt, nullptr,
                   {}});
    ++stats_.units_reissued;
    ++n;
  }
  if (n > 0) wake_.set();
  return n;
}

dlsim::Task<std::vector<mem::DmaBuffer>> Prefetcher::acquire(
    std::size_t slot, dlsim::CpuCore& consumer_core) {
  if (daemon_error_) std::rethrow_exception(daemon_error_);
  demand_floor_ = std::max(demand_floor_, slot + 1);
  auto find_entry = [this, slot] {
    return std::find_if(window_.begin(), window_.end(),
                        [slot](const Entry& e) { return e.slot == slot; });
  };
  auto it = find_entry();
  if (it == window_.end()) {
    if (slot >= next_issue_) {
      ensure_issued_through(slot);
    } else {
      // The unit was shed under pool pressure; demand re-fetch it. With
      // in-order consumption every windowed slot is larger, so it goes
      // back to the front.
      const ReadUnit* u = seq_->unit_at(slot);
      Entry e;
      e.slot = slot;
      e.op = engine_->start_extent(
          ReadExtent{u->nid, u->offset, u->len, nullptr, std::nullopt,
                     nullptr, {}});
      ++stats_.units_issued;
      window_.push_front(std::move(e));
    }
    it = find_entry();
  }
  ExtentOpPtr op = it->op;
  if (op->finished() && !op->error()) {
    ++stats_.units_resident_at_pick;
  } else {
    // The window was not deep enough to cover this consumer's
    // inter-arrival time — stall (pumping the engine on the consumer's
    // core, like a demand fetch) and deepen the window.
    ++stats_.units_stalled;
    if (window_target_ < cfg_.max_units) {
      ++window_target_;
      ++stats_.window_grows;
      stats_.window_target = window_target_;
    }
    it->pinned = true;
    const dlsim::SimTime t0 = sim_->now();
    co_await engine_->await_op(consumer_core, op);
    stats_.stall_ns += sim_->now() - t0;
    it = find_entry();  // the window may have shifted during the await
  }
  window_.erase(it);
  wake_.set();  // window space freed; the daemon can read further ahead
  if (op->error()) std::rethrow_exception(op->error());
  co_return op->take_buffers();
}

dlsim::Task<void> Prefetcher::daemon_loop() {
  for (;;) {
    wake_.reset();
    if (shutdown_) co_return;
    try {
      top_up();
      if (ExtentOpPtr op = oldest_unfinished()) {
        co_await engine_->await_op(*core_, op);
        std::erase_if(draining_,
                      [](const ExtentOpPtr& o) { return o->finished(); });
        continue;
      }
    } catch (...) {
      // Engine-level failures (pool livelock) are stored and rethrown to
      // the next consumer; a daemon must never take the simulation down.
      daemon_error_ = std::current_exception();
      co_return;
    }
    co_await wake_.wait();
  }
}

}  // namespace dlfs::core

#include "dlfs/prefetcher.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace dlfs::core {

// ---------------------------------------------------------------------------
// PrefetchArbiter

void PrefetchArbiter::register_member(Prefetcher& p) {
  auto m = members_.write();
  if (std::find(m->begin(), m->end(), &p) == m->end()) m->push_back(&p);
}

void PrefetchArbiter::unregister_member(Prefetcher& p) {
  std::erase(*members_.write(), &p);
}

std::uint64_t PrefetchArbiter::chunk_allowance(const Prefetcher& p) const {
  // Node-wide budget: every member's pool headroom beyond its reserve,
  // plus what is already committed to read-ahead (so a full window is
  // not counted as vanished budget). Split proportionally to the
  // adaptive window targets — the daemons that stall grow their target
  // and thereby their share.
  // Each member's claim is weight × target: the tenant QoS weight scales
  // the adaptive target, so co-located jobs of unequal priority split the
  // node's read-ahead budget by their bandwidth shares.
  std::uint64_t budget = 0;
  double total_claim = 0;
  for (const Prefetcher* m : *members_.read()) {
    budget += m->readahead_chunks() + m->pool_headroom_chunks();
    total_claim += m->share_weight() * m->window_target();
  }
  const double claim = p.share_weight() * p.window_target();
  std::uint64_t share =
      total_claim > 0
          ? static_cast<std::uint64_t>(static_cast<double>(budget) * claim /
                                       total_claim)
          : budget;
  // The share can never exceed what p's own pool actually holds (pools
  // are per-instance; a neighbour's free chunks are not allocatable
  // here), and never starves below one unit's worth.
  share = std::min(share, p.readahead_chunks() + p.pool_headroom_chunks());
  // Chunks of acquired units still pinned by live ViewBatches are
  // read-ahead output the consumer has not returned: they occupy p's
  // pool but are no longer in ra_chunks_, so without this deduction the
  // same huge pages would be counted once as "held by p" and once as
  // window headroom — and a co-located daemon's share computed against a
  // budget p cannot actually honour.
  const std::uint64_t pinned = p.view_pinned_chunks();
  share = share > pinned ? share - pinned : 0;
  return std::max<std::uint64_t>(share, 1);
}

// ---------------------------------------------------------------------------
// Prefetcher

Prefetcher::Prefetcher(dlsim::Simulator& sim, IoEngine& engine,
                       mem::HugePagePool& pool, std::uint64_t chunk_bytes,
                       PrefetcherConfig config, const std::string& name)
    : sim_(&sim),
      engine_(&engine),
      pool_(&pool),
      chunk_bytes_(chunk_bytes),
      cfg_(config),
      wake_(sim) {
  cfg_.max_units = std::max(cfg_.max_units, cfg_.min_units);
  window_target_ =
      std::clamp(cfg_.initial_units, cfg_.min_units, cfg_.max_units);
  stats_.window_target = window_target_;
  core_ = std::make_unique<dlsim::CpuCore>(sim, name);
  sim.spawn_daemon(daemon_loop(), name);
}

Prefetcher::~Prefetcher() {
  if (arbiter_) arbiter_->unregister_member(*this);
  shutdown_ = true;
  wake_.set();
}

void Prefetcher::set_arbiter(std::shared_ptr<PrefetchArbiter> arbiter) {
  if (arbiter_) arbiter_->unregister_member(*this);
  arbiter_ = std::move(arbiter);
  if (arbiter_) arbiter_->register_member(*this);
}

void Prefetcher::set_share_weight(double w) {
  share_weight_ = w > 0 ? w : 1.0;
}

std::uint64_t Prefetcher::pool_headroom_chunks() const {
  const std::uint64_t free = pool_->free_chunks();
  return free > cfg_.reserve_chunks ? free - cfg_.reserve_chunks : 0;
}

std::size_t Prefetcher::window_size() const {
  std::size_t n = 0;
  for (const WindowShard& s : window_shards_) n += s.read()->size();
  return n;
}

void Prefetcher::start_epoch(const ReadUnitProvider* provider) {
  // Extents cannot be cancelled: unfinished read-ahead from the previous
  // epoch keeps draining on the daemon and its buffers drop on arrival.
  // Finished entries release their chunks right here, with the ops.
  for (WindowShard& s : window_shards_) {
    auto w = s.write();
    for (auto& e : *w) {
      for (auto& x : e.extents) {
        if (!x.op->finished()) draining_.push_back(x.op);
      }
    }
    w->clear();
  }
  ra_chunks_ = 0;
  provider_ = provider;
  next_issue_ = 0;
  demand_floor_ = 0;
  total_units_ = provider ? provider->num_units() : 0;
  wake_.set();
}

std::uint64_t Prefetcher::extents_chunks(const std::vector<UnitExtent>& xs,
                                         std::uint64_t chunk_bytes) {
  std::uint64_t n = 0;
  for (const auto& x : xs) n += ceil_div(x.len, chunk_bytes);
  return n;
}

void Prefetcher::issue_entry(std::size_t slot, std::vector<UnitExtent> xs,
                             bool front) {
  Entry e;
  e.slot = slot;
  e.chunks = extents_chunks(xs, chunk_bytes_);
  e.extents.reserve(xs.size());
  for (auto& x : xs) {
    Extent ex;
    ex.key = x.key;
    ex.op = engine_->start_extent(ReadExtent{x.nid, x.offset, x.len, nullptr,
                                             std::nullopt, nullptr, {},
                                             std::move(x.routes)});
    e.extents.push_back(std::move(ex));
  }
  ra_chunks_ += e.chunks;
  {
    auto w = shard_for(slot).write();
    if (front) {
      w->push_front(std::move(e));
    } else {
      w->push_back(std::move(e));
    }
  }
  ++stats_.units_issued;
  stats_.in_flight_hwm = std::max(
      stats_.in_flight_hwm, static_cast<std::uint32_t>(window_size()));
  wake_.set();
}

void Prefetcher::ensure_issued_through(std::size_t slot) {
  if (provider_ == nullptr) return;
  demand_floor_ = std::max(demand_floor_, slot + 1);
  while (next_issue_ <= slot && next_issue_ < total_units_) {
    issue_entry(next_issue_, provider_->unit_extents(next_issue_),
                /*front=*/false);
    ++next_issue_;
  }
}

void Prefetcher::top_up() {
  if (provider_ == nullptr) return;
  // The target is read-ahead depth beyond the demanded batch: demand
  // issues never count against it, so the device keeps working on future
  // units even while the consumer drains the current batch.
  const std::size_t limit = std::min<std::size_t>(
      total_units_, demand_floor_ + window_target_);
  while (next_issue_ < limit) {
    auto xs = provider_->unit_extents(next_issue_);
    const std::uint64_t need = extents_chunks(xs, chunk_bytes_);
    const bool pool_blocked =
        pool_->free_chunks() < need + cfg_.reserve_chunks;
    const bool arbiter_blocked =
        arbiter_ != nullptr && need > 0 &&
        ra_chunks_ + view_pinned_chunks_ + need >
            arbiter_->chunk_allowance(*this);
    if (pool_blocked || arbiter_blocked) {
      // No headroom for more read-ahead — locally (pool) or node-wide
      // (arbiter share): adapt the target down to the depth actually
      // sustained instead of thrashing.
      if (arbiter_blocked) ++stats_.arbiter_throttles;
      const auto depth = static_cast<std::uint32_t>(
          next_issue_ > demand_floor_ ? next_issue_ - demand_floor_ : 0);
      const auto floor_target =
          std::clamp(depth, cfg_.min_units, window_target_);
      if (window_target_ > floor_target) {
        window_target_ = floor_target;
        ++stats_.window_shrinks;
        stats_.window_target = window_target_;
      }
      return;
    }
    issue_entry(next_issue_, std::move(xs), /*front=*/false);
    ++next_issue_;
  }
}

ExtentOpPtr Prefetcher::oldest_unfinished() {
  for (const auto& op : draining_) {
    if (!op->finished()) return op;
  }
  // Shards are individually slot-ordered; the globally oldest entry with
  // an unfinished op is the slot-minimum of the per-shard firsts.
  ExtentOpPtr best;
  std::size_t best_slot = 0;
  for (const WindowShard& s : window_shards_) {
    auto w = s.read();
    for (const auto& e : *w) {
      ExtentOpPtr found;
      for (const auto& x : e.extents) {
        if (!x.op->finished()) {
          found = x.op;
          break;
        }
      }
      if (!found) continue;
      if (!best || e.slot < best_slot) {
        best = std::move(found);
        best_slot = e.slot;
      }
      break;
    }
  }
  return best;
}

bool Prefetcher::relieve_pressure() {
  // Shed the farthest resident, unconsumed unit: its chunks unblock
  // demand I/O now, and the consumer demand-fetches it again when the
  // cursor gets there. Entries being awaited (pinned) and unfinished ones
  // (chunks still in flight) cannot yield memory. Per shard, the first
  // candidate from the back is that shard's farthest; the global farthest
  // is the slot-maximum across shards.
  auto is_candidate = [](const Entry& e) {
    if (e.pinned || e.chunks == 0) return false;
    return std::all_of(e.extents.begin(), e.extents.end(),
                       [](const Extent& x) {
                         return x.op->finished() && !x.op->error();
                       });
  };
  bool found = false;
  std::size_t victim_slot = 0;
  for (const WindowShard& s : window_shards_) {
    auto w = s.read();
    for (auto it = w->rbegin(); it != w->rend(); ++it) {
      if (!is_candidate(*it)) continue;
      if (!found || it->slot > victim_slot) {
        found = true;
        victim_slot = it->slot;
      }
      break;
    }
  }
  if (!found) return false;
  auto w = shard_for(victim_slot).write();
  auto it = std::find_if(
      w->begin(), w->end(),
      [victim_slot](const Entry& e) { return e.slot == victim_slot; });
  for (auto& x : it->extents) {
    (void)x.op->take_buffers();  // DmaBuffers drop -> chunks freed
  }
  ++stats_.units_dropped;
  if (window_target_ > cfg_.min_units) {
    --window_target_;
    ++stats_.window_shrinks;
    stats_.window_target = window_target_;
  }
  ra_chunks_ -= it->chunks;
  w->erase(it);
  return true;
}

void Prefetcher::discard(std::size_t slot) {
  demand_floor_ = std::max(demand_floor_, slot + 1);
  // Never issued yet: just skip past it so top_up doesn't fetch a unit
  // nobody will consume.
  if (slot >= next_issue_) {
    next_issue_ = std::max(next_issue_, slot + 1);
    wake_.set();
    return;
  }
  auto w = shard_for(slot).write();
  auto it = std::find_if(w->begin(), w->end(),
                         [slot](const Entry& e) { return e.slot == slot; });
  if (it == w->end() || it->pinned) return;
  for (auto& x : it->extents) {
    if (!x.op->finished()) {
      draining_.push_back(x.op);
    } else if (!x.op->error()) {
      (void)x.op->take_buffers();  // DmaBuffers drop -> chunks freed
    }
  }
  ra_chunks_ -= it->chunks;
  w->erase(it);
  wake_.set();
}

std::uint32_t Prefetcher::reissue_failed() {
  if (provider_ == nullptr) return 0;
  std::uint32_t n = 0;
  for (WindowShard& s : window_shards_) {
    auto w = s.write();
    for (auto& e : *w) {
      if (e.pinned) continue;
      for (auto& x : e.extents) {
        if (!x.op->error()) continue;
        // An op can carry an error while pieces still drain; those buffers
        // cannot be reused, so the old op keeps draining off to the side.
        if (!x.op->finished()) draining_.push_back(x.op);
        // The failed op's extent already consumed the routes it tried, so
        // rx.routes holds exactly the untried alternates: the reissue
        // resumes the failover walk instead of restarting it. A reissue
        // after the node *recovered* simply succeeds on rx.nid directly.
        const ReadExtent& rx = x.op->extent;
        x.op = engine_->start_extent(ReadExtent{rx.nid, rx.offset, rx.len,
                                                nullptr, std::nullopt, nullptr,
                                                {}, rx.routes});
        ++stats_.units_reissued;
        ++n;
      }
    }
  }
  if (n > 0) wake_.set();
  return n;
}

dlsim::Task<AcquiredUnit> Prefetcher::acquire(
    std::size_t slot, dlsim::CpuCore& consumer_core) {
  if (daemon_error_) std::rethrow_exception(daemon_error_);
  demand_floor_ = std::max(demand_floor_, slot + 1);
  auto find_entry = [slot](std::deque<Entry>& w) {
    return std::find_if(w.begin(), w.end(),
                        [slot](const Entry& e) { return e.slot == slot; });
  };
  // First slice: locate (or demand-issue) the unit and decide whether we
  // must stall. The shard guard is scoped to end *before* the awaits —
  // the daemon legitimately tops the window up while we are parked. Only
  // slot's own shard is touched, so a concurrent top-up of another shard
  // never even shares this slice's ledger.
  std::vector<ExtentOpPtr> ops;  // non-empty => the stall path was taken
  {
    auto w = shard_for(slot).write();
    auto it = find_entry(*w);
    if (it == w->end()) {
      if (slot >= next_issue_) {
        ensure_issued_through(slot);
      } else {
        // The unit was shed under pool pressure; demand re-fetch it. With
        // in-order consumption every windowed slot in this shard is
        // larger, so it goes back to the front.
        issue_entry(slot, provider_->unit_extents(slot), /*front=*/true);
      }
      it = find_entry(*w);
    }
    const bool resident = std::all_of(
        it->extents.begin(), it->extents.end(),
        [](const Extent& x) { return x.op->finished(); });
    if (resident) {
      ++stats_.units_resident_at_pick;
    } else {
      // The window was not deep enough to cover this consumer's
      // inter-arrival time — stall (pumping the engine on the consumer's
      // core, like a demand fetch) and deepen the window.
      ++stats_.units_stalled;
      if (window_target_ < cfg_.max_units) {
        ++window_target_;
        ++stats_.window_grows;
        stats_.window_target = window_target_;
      }
      it->pinned = true;
      // Snapshot the ops: the window may shift while awaiting.
      ops.reserve(it->extents.size());
      for (const auto& x : it->extents) ops.push_back(x.op);
    }
  }
  if (!ops.empty()) {
    const dlsim::SimTime t0 = sim_->now();
    for (const auto& op : ops) {
      if (op->finished()) continue;
      co_await engine_->await_op(consumer_core, op);
    }
    stats_.stall_ns += sim_->now() - t0;
  }
  // Second slice: hand the unit over and release its window entry.
  AcquiredUnit unit;
  {
    auto w = shard_for(slot).write();
    auto it = find_entry(*w);
    unit.extents.reserve(it->extents.size());
    for (auto& x : it->extents) {
      AcquiredExtent ax;
      ax.key = x.key;
      ax.error = x.op->error();
      if (!ax.error) ax.buffers = x.op->take_buffers();
      unit.extents.push_back(std::move(ax));
    }
    ra_chunks_ -= it->chunks;
    w->erase(it);
  }
  wake_.set();  // window space freed; the daemon can read further ahead
  co_return unit;
}

dlsim::Task<void> Prefetcher::daemon_loop() {
  for (;;) {
    wake_.reset();
    if (shutdown_) co_return;
    try {
      top_up();
      if (ExtentOpPtr op = oldest_unfinished()) {
        co_await engine_->await_op(*core_, op);
        std::erase_if(draining_,
                      [](const ExtentOpPtr& o) { return o->finished(); });
        continue;
      }
    } catch (...) {
      // Engine-level failures (pool livelock) are stored and rethrown to
      // the next consumer; a daemon must never take the simulation down.
      daemon_error_ = std::current_exception();
      co_return;
    }
    co_await wake_.wait();
  }
}

}  // namespace dlfs::core

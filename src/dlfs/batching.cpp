#include "dlfs/batching.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "dlfs/sample_cache.hpp"

namespace dlfs::core {

BatchPlan::BatchPlan(const std::vector<SampleLocation>& layout,
                     std::uint64_t chunk_bytes, BatchingMode mode)
    : mode_(mode), num_samples_(layout.size()) {
  if (chunk_bytes == 0) throw std::invalid_argument("chunk_bytes must be > 0");

  if (mode != BatchingMode::kChunkLevel) {
    units_.reserve(layout.size());
    for (std::size_t i = 0; i < layout.size(); ++i) {
      const SampleLocation& s = layout[i];
      ReadUnit u;
      u.nid = s.nid;
      u.offset = s.offset;
      u.len = s.len;
      u.is_chunk = false;
      u.samples.push_back(
          UnitSample{static_cast<std::uint32_t>(i), 0, s.len});
      units_.push_back(std::move(u));
    }
    edge_units_ = units_.size();
    return;
  }

  // Chunk-level: group samples per node, walk the chunk grid. Samples
  // fully inside one chunk join that chunk's unit; boundary-crossers
  // become edge units.
  struct ChunkKey {
    std::uint16_t nid;
    std::uint64_t chunk;
    bool operator<(const ChunkKey& o) const {
      return nid != o.nid ? nid < o.nid : chunk < o.chunk;
    }
  };
  std::map<ChunkKey, ReadUnit> chunks;
  std::vector<std::uint64_t> node_data_end;

  for (std::size_t i = 0; i < layout.size(); ++i) {
    const SampleLocation& s = layout[i];
    if (node_data_end.size() <= s.nid) node_data_end.resize(s.nid + 1, 0);
    node_data_end[s.nid] =
        std::max<std::uint64_t>(node_data_end[s.nid], s.offset + s.len);
    const std::uint64_t first_chunk = s.offset / chunk_bytes;
    const std::uint64_t last_chunk = (s.offset + s.len - 1) / chunk_bytes;
    if (first_chunk == last_chunk) {
      ChunkKey key{s.nid, first_chunk};
      auto [it, created] = chunks.try_emplace(key);
      ReadUnit& u = it->second;
      if (created) {
        u.nid = s.nid;
        u.offset = first_chunk * chunk_bytes;
        u.is_chunk = true;
      }
      u.samples.push_back(UnitSample{
          static_cast<std::uint32_t>(i),
          static_cast<std::uint32_t>(s.offset - u.offset), s.len});
    } else {
      ReadUnit u;
      u.nid = s.nid;
      u.offset = s.offset;
      u.len = s.len;
      u.is_chunk = false;
      u.samples.push_back(
          UnitSample{static_cast<std::uint32_t>(i), 0, s.len});
      units_.push_back(std::move(u));
      ++edge_units_;
    }
  }
  for (auto& [key, u] : chunks) {
    // Clip the final chunk of a node's region to the data end.
    const std::uint64_t end = std::min<std::uint64_t>(
        u.offset + chunk_bytes, node_data_end[u.nid]);
    u.len = static_cast<std::uint32_t>(end - u.offset);
    units_.push_back(std::move(u));
    ++chunk_units_;
  }
}

EpochSequence::EpochSequence(const BatchPlan& plan, std::uint64_t seed,
                             std::uint32_t client_idx,
                             std::uint32_t num_clients) {
  if (num_clients == 0 || client_idx >= num_clients) {
    throw std::invalid_argument("bad client index");
  }
  // Identical shuffle on every client (same seed, same deterministic RNG).
  Rng rng(seed);
  auto perm = rng.permutation(plan.units().size());
  order_.reserve(perm.size() / num_clients + 1);
  for (std::size_t i = client_idx; i < perm.size(); i += num_clients) {
    const ReadUnit* u = &plan.units()[perm[i]];
    order_.push_back(u);
    total_samples_ += u->samples.size();
  }
}

std::vector<EpochSequence::UnitPicks> EpochSequence::take(std::size_t n) {
  std::vector<UnitPicks> out;
  std::size_t need = std::min(n, remaining_samples());
  while (need > 0) {
    const ReadUnit* u = order_[cur_unit_];
    const std::uint32_t avail =
        static_cast<std::uint32_t>(u->samples.size()) - cur_sample_;
    const std::uint32_t take_now =
        static_cast<std::uint32_t>(std::min<std::size_t>(avail, need));
    out.push_back(UnitPicks{u, cur_unit_, cur_sample_, take_now});
    cur_sample_ += take_now;
    consumed_samples_ += take_now;
    need -= take_now;
    if (cur_sample_ == u->samples.size()) {
      ++cur_unit_;
      cur_sample_ = 0;
    }
  }
  return out;
}

EpochUnitProvider::EpochUnitProvider(const EpochSequence& seq,
                                     std::uint32_t group,
                                     const SampleCache* cache,
                                     RouteResolver routes, PeerProbe peers)
    : seq_(&seq),
      group_(std::max<std::uint32_t>(group, 1)),
      cache_(cache),
      routes_(std::move(routes)),
      peers_(std::move(peers)) {}

std::size_t EpochUnitProvider::num_units() const {
  return (seq_->num_units() + group_ - 1) / group_;
}

std::vector<UnitExtent> EpochUnitProvider::unit_extents(
    std::size_t slot) const {
  std::vector<UnitExtent> out;
  const std::size_t begin = slot * group_;
  const std::size_t end =
      std::min<std::size_t>(begin + group_, seq_->num_units());
  out.reserve(end - begin);
  for (std::size_t s = begin; s < end; ++s) {
    const ReadUnit* u = seq_->unit_at(s);
    if (u->is_chunk) {
      // Chunk units are keyed by the epoch slot and fetched whole even
      // when some of their samples are resident (the chunk path always
      // consumes the full unit).
      out.push_back(UnitExtent{u->nid, u->offset, u->len, s});
      continue;
    }
    // Single-sample extents (sample-level/unbatched units and chunk-mode
    // edge samples), keyed by sample id. With a cache attached, resident
    // samples are served from it at consume time — don't re-read them.
    const std::uint32_t id = u->samples.front().sample_id;
    if (cache_ != nullptr && cache_->valid(id)) continue;
    // Peer-resident samples are likewise elided: the consume path serves
    // them from a co-located or remote peer cache instead of the device.
    if (peers_ && peers_(id)) continue;
    UnitExtent x{u->nid, u->offset, u->len, id};
    if (routes_) x.routes = routes_(id);
    out.push_back(std::move(x));
  }
  return out;
}

}  // namespace dlfs::core

#pragma once

// The DLFS public API (§III-A): dlfs_mount, dlfs_open / dlfs_read /
// dlfs_close, dlfs_sequence and dlfs_bread.
//
// A DlfsFleet is one mounted DLFS job: it owns the shared sample
// directory, the data layout, the batch plan, the NVMe-oF targets that
// export every storage node's device, and one DlfsInstance per client.
// dlfs_mount is collective — the caller spawns mount_participant(p) for
// every participant and the implementation does what the paper
// describes: each storage node uploads its shard from the PFS to its
// NVMe device, builds its slice of the in-memory sample directory, and
// the slices are all-gathered; each client then attaches a local SPDK
// queue for its own device and NVMe-oF initiator queues for all others.
//
// A DlfsInstance is one client (one I/O thread pinned to one core — the
// paper's configuration). It serves:
//   open(name)        -> handle (directory lookup)
//   read(handle, dst) -> synchronous sample read (cache-aware; this is
//                        DLFS-Base when used per sample)
//   sequence(seed)    -> install the epoch's global random order
//   bread(n, arena)   -> read the next n samples of this client's share
//                        with the configured batching optimizations

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/collective.hpp"
#include "cluster/pfs.hpp"
#include "common/calibration.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/batching.hpp"
#include "dlfs/directory_view.hpp"
#include "dlfs/io_engine.hpp"
#include "dlfs/prefetcher.hpp"
#include "dlfs/qos.hpp"
#include "dlfs/sample_cache.hpp"
#include "dlfs/sample_directory.hpp"
#include "spdk/nvme_driver.hpp"
#include "spdk/nvmf.hpp"

namespace dlfs::core {

/// Self-healing replication: the copy count plus the permanent-loss
/// lifecycle around it. Implicitly convertible from the copy count so
/// `cfg.fault.replication = 2` keeps meaning "two copies, detector off".
struct ReplicationConfig {
  ReplicationConfig() = default;
  // Intentionally implicit: the struct grew out of a plain copy count
  // and every existing call site assigns an integer.
  ReplicationConfig(std::uint32_t copies) : k(copies) {}
  /// Copies per sample (1 = no replication).
  std::uint32_t k = 1;
  // > 0: a storage node whose reconnect budget stays exhausted for this
  // long is *declared dead* — distinct from a transient link fault: its
  // replica routes drop and the repair engine restores k elsewhere.
  // 0 = never auto-declare (explicit DlfsFleet::declare_dead only).
  dlsim::SimDuration declare_dead_after = 0;
  // Repair-traffic budget per instance (bytes/sec). Re-replication
  // paces itself to this rate so repairs never starve demand reads.
  // 0 = unthrottled.
  std::uint64_t repair_bytes_per_sec = 0;

  bool operator==(const ReplicationConfig&) const = default;
};

/// Everything about surviving faults, consolidated (mirrors the PR 3
/// PrefetcherConfig consolidation): transport-level handling for every
/// remote initiator queue, engine-level retry pacing, reprobe cadence,
/// and the replication/repair policy. The loose top-level knobs on
/// DlfsConfig remain as deprecated aliases for one release; a legacy
/// knob set away from its default overrides the nested field.
struct FaultConfig {
  // NVMe-oF transport fault handling (command deadline, reconnect
  // backoff/budget, reconnect admission cap).
  spdk::NvmfFaultParams nvmf{};
  // k-way deterministic replica placement + the permanent-loss policy
  // (declare-dead deadline, repair-traffic budget).
  ReplicationConfig replication{};
  // Mid-epoch reprobe cadence (IoEngineConfig::reprobe_interval): > 0
  // runs a background probe daemon per instance so nodes that heal
  // mid-epoch rejoin within one interval; 0 = epoch-boundary only.
  dlsim::SimDuration reprobe_interval = 0;
  // Engine-level re-post backoff for transient completion errors
  // (media/timeout); doubles per attempt.
  dlsim::SimDuration io_retry_backoff = 10'000;

  bool operator==(const FaultConfig&) const = default;
};

/// Tenant identity of one job (one fleet) under a shared TenantGovernor.
/// Fleets that share storage register with the same governor; a fleet
/// with no governor runs ungoverned (standalone behavior, no overhead).
struct TenantConfig {
  std::string name;                       ///< telemetry / error messages
  std::uint32_t weight = 1;               ///< relative bandwidth share
  QosClass priority = QosClass::kNormal;  ///< kHigh / kNormal / kBackground
  std::uint32_t max_inflight = 0;         ///< job-wide outstanding cap; 0=off
  std::shared_ptr<TenantGovernor> governor;  ///< null = no QoS
};

struct DlfsConfig {
  std::uint64_t chunk_bytes = 256 * 1024;  // sample-cache chunk (paper default)
  std::uint32_t queue_depth = 128;         // SPDK I/O qpair depth
  std::uint32_t copy_threads = 2;          // SCQ copy-thread pool size
  BatchingMode batching = BatchingMode::kChunkLevel;
  std::size_t cache_chunks = 64;           // sample-cache LRU budget
  // Asynchronous epoch-aware prefetcher (every batching mode and the
  // record-file path): a per-instance daemon walks the read-unit order
  // ahead of the consumer and keeps an adaptive window of units in
  // flight across bread calls, so read-ahead overlaps application
  // compute instead of inflating bread latency. `prefetch.enabled =
  // false` falls back to the legacy synchronous read-ahead of
  // `prefetch.initial_units` units (chunk mode) or pure demand fetching
  // (sample-level / DLFS-Base), kept as the ablation baseline.
  PrefetcherConfig prefetch{};
  // > 0: store the dataset as TFRecord-style batched files of this many
  // samples each (8-byte length+crc header per record). The directory
  // still indexes every sample individually — "we are able to have direct
  // access to any samples in a TFRecord file" (§III-B.1) — and each
  // batched file additionally gets a file-oriented entry readable through
  // open_file().
  std::uint32_t record_file_samples = 0;
  std::uint64_t pool_bytes = 96ull * 1024 * 1024;  // client huge-page pool
  // Consolidated fault handling: transport (nvmf), replication/repair,
  // reprobe cadence and retry pacing. See FaultConfig.
  FaultConfig fault{};
  // How clients hold the sample directory after mount: kFull all-gathers
  // every shard to every client (§III-B, the default); kSharded keeps
  // each shard on its storage node and clients resolve foreign samples
  // lazily over NVMe-oF metadata RPCs through a bounded lookup cache +
  // negative cache, so per-client directory memory is O(dataset / S).
  DirectoryConfig directory{};
  // Cooperative peer sample cache: co-located instances serve each
  // other's cached samples through a per-node PeerCacheIndex, and a
  // consistent-hash cache directory lets a client fetch a hot sample
  // from a remote peer's DRAM over the fabric instead of re-reading
  // NVMe. Coherence-free because the dataset is immutable after mount.
  PeerCacheConfig peer_cache{};
  // Tenant identity under a shared TenantGovernor (multi-job QoS). A
  // default-constructed TenantConfig (null governor) means no QoS.
  TenantConfig tenant{};
  // First device byte this fleet's layout may use. Multiple jobs
  // mounting over the same storage nodes carve disjoint device regions
  // by giving each fleet its own base (the capacity check still applies
  // to the sum).
  std::uint64_t device_base = 0;
  // First client core ordinal this fleet's instances pin to. Co-located
  // jobs (two fleets with clients on the same node) offset their I/O
  // threads so they do not time-share one simulated core by accident.
  std::uint32_t client_core_base = 0;
  // Debug aid for the zero-copy contract: scribble recycled huge-page
  // chunks (0xDD) — and poison them under AddressSanitizer — so a view
  // read after release_views() faults loudly instead of silently seeing
  // stale or recycled bytes. Off in production runs (costs a memset per
  // recycled chunk).
  bool scribble_on_free = false;
  Calibration calibration{};
};

struct SampleHandle {
  /// kNoSample marks file-oriented handles (whole batched files).
  static constexpr std::uint32_t kNoSample = 0xffffffffu;
  std::uint32_t sample_id = 0;
  const SampleEntry* entry = nullptr;
};

struct BatchSample {
  std::uint32_t sample_id = 0;
  std::uint32_t class_id = 0;
  std::uint32_t offset_in_arena = 0;
  std::uint32_t len = 0;
};

/// Epoch-level metadata shared by every batch flavor (copy and
/// zero-copy deliver it identically; future epoch-level fields land
/// here once).
struct BatchMeta {
  // Samples this batch could not serve because their storage node is
  // unavailable (reconnect budget exhausted / partitioned). The epoch
  // continues over the surviving subset.
  std::uint64_t samples_skipped = 0;
  // The epoch's sample order is exhausted; nothing further will be
  // delivered until the next dlfs_sequence. This flag is the only
  // epoch-end signal — do not infer it from batch contents.
  bool end_of_epoch = false;
};

struct Batch : BatchMeta {
  std::vector<BatchSample> samples;
  std::uint64_t bytes = 0;
};

/// Zero-copy batch: samples are views into the huge-page sample cache
/// (possibly split across chunk boundaries). The backing chunks stay
/// pinned until release_views(); reading a view after release is a
/// use-after-free, exactly as with real DMA buffers.
struct ViewSample {
  std::uint32_t sample_id = 0;
  std::uint32_t class_id = 0;
  std::uint32_t len = 0;
  std::vector<std::span<const std::byte>> pieces;
};

struct ViewBatch : BatchMeta {
  std::vector<ViewSample> samples;
  std::uint64_t bytes = 0;
  std::vector<std::size_t> pinned_slots;  // internal: units held
  std::uint64_t token = 0;                // internal: release bookkeeping
  // Internal: batch-owned bytes backing the views of degraded samples
  // (replica-failover demand reads — the only copy on the views path).
  // Sized once before any span is taken; freed by release_views().
  std::vector<std::byte> fallback_storage;
};

/// One snapshot of a DlfsInstance's delivery/telemetry counters (the
/// former loose per-counter getters, consolidated).
struct InstanceStats {
  std::uint64_t samples_delivered = 0;
  // Samples skipped across all breads because their storage node was
  // unavailable (the epoch completed degraded).
  std::uint64_t samples_skipped = 0;
  std::uint64_t bytes_delivered = 0;
  dlsim::SimDuration lookup_time_total = 0;
  // Delivery-path byte accounting: bytes that went through a memcpy
  // (copy threads + inline copies) vs bytes handed out as zero-copy
  // views into the huge-page chunks. A warm bread_views epoch shows
  // bytes_copied == 0.
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_zero_copy = 0;
  // Read units currently pinned by live (unreleased) ViewBatches.
  std::uint64_t view_pins_active = 0;
  // Copy jobs executed on a different core than the one that produced
  // them (each paid DlfsCosts::cross_core_handoff).
  std::uint64_t cross_core_handoffs = 0;
  // Asynchronous-prefetcher counters (zero-initialized when the
  // prefetcher is off): resident-at-pick / stall / window telemetry.
  PrefetchStats prefetch{};
  // Self-healing replication telemetry (zero without replication):
  // permanent-loss declarations observed by this instance, samples this
  // instance re-replicated, repaired bytes moved, and how often the
  // repair daemon stalled against its traffic budget.
  std::uint64_t nodes_declared_dead = 0;
  std::uint64_t samples_rereplicated = 0;
  std::uint64_t repair_bytes = 0;
  std::uint64_t repair_throttles = 0;
  // Tenant QoS (zero without a governor): posting-loop stalls caused by
  // admission, not by queue depth or the pool.
  std::uint64_t qos_deferrals = 0;
  // Sharded-directory telemetry (all zero in kFull mode) plus the
  // directory memory this client actually holds — full mode reports the
  // whole all-gathered copy, sharded mode the partition map + resident
  // shards + caches (the O(dataset/S) claim, in bytes).
  DirectoryViewStats directory{};
  std::uint64_t directory_bytes = 0;
  // Cooperative peer-cache telemetry (all zero with peer_cache.enabled
  // off): samples served from a co-located instance's DRAM, samples
  // served from a remote client's DRAM over the fabric, consultations
  // that found no live holder, and total bytes peers served either way.
  std::uint64_t peer_hits_local = 0;
  std::uint64_t peer_hits_remote = 0;
  std::uint64_t peer_misses = 0;
  std::uint64_t peer_bytes = 0;
};

class DlfsFleet;

class DlfsInstance {
 public:
  DlfsInstance(const DlfsInstance&) = delete;
  DlfsInstance& operator=(const DlfsInstance&) = delete;
  ~DlfsInstance();

  /// dlfs_open: name -> handle. Charges one directory lookup.
  [[nodiscard]] dlsim::Task<SampleHandle> open(std::string_view name);

  /// Handle by dataset index (the sequence/bread path uses ids).
  [[nodiscard]] dlsim::Task<SampleHandle> open_id(std::uint32_t sample_id);

  /// File-oriented access to a whole batched record file (only available
  /// when the fleet was mounted with record_file_samples > 0). The file
  /// bytes parse with dataset::RecordFileReader, checksums included.
  [[nodiscard]] dlsim::Task<SampleHandle> open_file(std::string_view name);

  /// dlfs_read: synchronous whole-sample read into dst (>= sample size).
  [[nodiscard]] dlsim::Task<void> read(const SampleHandle& h,
                                       std::span<std::byte> dst);

  /// dlfs_sequence: installs the epoch order derived from `seed` (every
  /// client must call with the same seed — no communication happens).
  void sequence(std::uint64_t seed);

  /// Installs a shuffled streaming order over the mounted record files
  /// (record_file_samples > 0) and points the prefetch daemon at it:
  /// open_file()+read() calls that follow the returned order find their
  /// file already resident. Clients stride the shuffle exactly like
  /// sequence(). A later sequence() re-targets the daemon back to the
  /// sample epoch. Returns the file names in streaming order.
  const std::vector<std::string>& sequence_files(std::uint64_t seed);
  [[nodiscard]] const std::vector<std::string>& file_sequence() const {
    return file_order_;
  }

  /// dlfs_bread: reads up to `max_samples` of this client's share of the
  /// epoch into `arena`; returns the batch layout. Epoch end is reported
  /// via `Batch::end_of_epoch`.
  [[nodiscard]] dlsim::Task<Batch> bread(std::size_t max_samples,
                                         std::span<std::byte> arena);

  /// Zero-copy dlfs_bread — the paper's stated future work (§III-C.2:
  /// "True zero-copy transfers would require the application buffers to
  /// be mapped on the huge pages"): here the application instead consumes
  /// the huge-page chunks directly. Samples come back as views into the
  /// resident data chunks; no copy stage runs at all. The chunks stay
  /// pinned until release_views(batch). Chunk-level batching only.
  [[nodiscard]] dlsim::Task<ViewBatch> bread_views(std::size_t max_samples);
  void release_views(ViewBatch& batch);

  [[nodiscard]] std::size_t epoch_remaining() const {
    return seq_ ? seq_->remaining_samples() : 0;
  }

  /// Application compute folded into every polling-loop iteration
  /// (the Fig. 7b experiment).
  void set_injected_poll_compute(dlsim::SimDuration d) { injected_ = d; }

  [[nodiscard]] dlsim::CpuCore& io_core() { return *io_core_; }
  [[nodiscard]] IoEngine& engine() { return *engine_; }
  [[nodiscard]] SampleCache& cache() { return *cache_; }
  [[nodiscard]] const mem::HugePagePool& pool() const { return *pool_; }
  [[nodiscard]] const Prefetcher* prefetcher() const {
    return prefetcher_.get();
  }
  /// The client's partial directory view (sharded mount only; nullptr
  /// under the classic full allgather).
  [[nodiscard]] const DirectoryView* directory_view() const {
    return view_.get();
  }
  /// Directory bytes this client holds — `SampleDirectory::shard_bytes`
  /// accounting either way: the full all-gathered copy in kFull mode,
  /// the partition map + resident shards + lookup caches in kSharded.
  [[nodiscard]] std::uint64_t directory_bytes() const;

  /// One consolidated snapshot of the delivery and prefetch counters.
  [[nodiscard]] InstanceStats stats() const {
    InstanceStats s;
    s.samples_delivered = samples_delivered_;
    s.samples_skipped = samples_skipped_;
    s.bytes_delivered = bytes_delivered_;
    s.lookup_time_total = lookup_time_total_;
    s.bytes_copied = engine_->bytes_copied();
    s.bytes_zero_copy = bytes_zero_copy_;
    for (const auto& [slot, fu] : fetched_) s.view_pins_active += fu.view_pins;
    s.cross_core_handoffs = engine_->cross_core_handoffs();
    if (prefetcher_) s.prefetch = prefetcher_->stats();
    s.nodes_declared_dead = nodes_declared_dead_;
    s.samples_rereplicated = samples_rereplicated_;
    s.repair_bytes = repair_bytes_;
    s.repair_throttles = repair_throttles_;
    s.qos_deferrals = engine_->qos_deferrals();
    if (view_) s.directory = view_->stats();
    s.directory_bytes = directory_bytes();
    s.peer_hits_local = peer_hits_local_;
    s.peer_hits_remote = peer_hits_remote_;
    s.peer_misses = peer_misses_;
    s.peer_bytes = peer_bytes_;
    return s;
  }

 private:
  friend class DlfsFleet;
  DlfsInstance(DlfsFleet& fleet, std::uint32_t client_idx,
               cluster::Node& node, dlsim::CpuCore& core);

  struct FetchedUnit {
    std::vector<mem::DmaBuffer> buffers;
    // Per-sample replica recovery (chunk units only): when the unit's
    // chunk read failed on a down node, surviving samples are re-read
    // individually from their replicas into fresh buffers keyed by
    // sample id. Views/copies branch on `buffers` being empty.
    std::unordered_map<std::uint32_t, std::vector<mem::DmaBuffer>> per_sample;
    std::uint32_t delivered = 0;
    std::uint32_t view_pins = 0;  // live ViewBatches referencing this unit
  };
  void maybe_release_unit(std::size_t slot);

  dlsim::Task<void> charge_lookup();
  /// Sharded-mount resolution of one sample id, costs included: resident
  /// and cached ids charge the normal tree walk; foreign ids pay one
  /// metadata RPC to the owning slot and fill the lookup cache. Must
  /// only be called with view_ set.
  dlsim::Task<const SampleEntry*> resolve_id_sharded(std::uint32_t sample_id);
  /// One metadata RPC round trip to `slot`'s owner: request capsule,
  /// owner-side tree walk on the target's poller core, reply. Falls back
  /// to a local-rate walk when no transport path is up (the fault paths
  /// keep their existing skip/failover semantics).
  dlsim::Task<void> charge_remote_lookup(std::uint16_t slot);
  dlsim::Task<Batch> bread_unbatched(std::size_t max_samples,
                                     std::span<std::byte> arena);
  /// Frontend charge for one batched call: the real directory tree walks
  /// plus per-sample accounting CPU (shared by bread and bread_views).
  dlsim::Task<void> charge_frontend(
      std::span<const EpochSequence::UnitPicks> picks);
  /// Chunk-mode batch assembly, shared by bread and bread_views: brings
  /// every unit this batch picks to a settled state — chunk buffers
  /// resident, or degraded with surviving samples recovered into
  /// FetchedUnit::per_sample (unreachable ones recorded in `skipped`,
  /// media/unknown faults in `*fatal`) — and fires `on_unit_ready(slot)`
  /// per pick once its unit settles (idempotent callbacks; empty
  /// std::function when the caller consumes units after the co_await).
  /// Also drives read-ahead (daemon window or legacy synchronous).
  dlsim::Task<void> fetch_chunk_units(
      std::span<const EpochSequence::UnitPicks> picks, bool use_pf,
      std::unordered_set<std::uint32_t>* skipped, std::exception_ptr* fatal,
      std::function<void(std::size_t)> on_unit_ready);
  /// Degraded-unit recovery: re-reads this batch's picked samples of
  /// `slot` individually from their replicas (or the recovered primary)
  /// into FetchedUnit::per_sample. Non-picked read-ahead slots are
  /// simply forgotten so a later bread can re-fetch the whole chunk.
  dlsim::Task<void> recover_chunk_slot(
      std::size_t slot, std::span<const EpochSequence::UnitPicks> picks,
      bool use_pf, std::unordered_set<std::uint32_t>* skipped,
      std::exception_ptr* fatal);
  /// Injected poll-loop compute (Fig. 7b) as a concurrent task; counts
  /// `done` down when finished (immediately when nothing is injected).
  void spawn_injected(dlsim::CountdownLatch* done);
  /// Node health as every read path sees it: engine transport state AND
  /// the directory's wholesale V bit.
  [[nodiscard]] bool node_up(std::uint16_t nid) const;
  /// Epoch-boundary reprobe, shared by bread and bread_views: after
  /// sequence(), the first batch of the epoch revalidates down nodes
  /// once and retries read-ahead that failed while they were down.
  dlsim::Task<void> maybe_reprobe();
  /// Replica failover list for a sample (empty without replication).
  [[nodiscard]] std::vector<RouteHop> sample_routes(
      std::uint32_t sample_id) const;
  /// True when the sample's primary or any replica node is reachable.
  [[nodiscard]] bool sample_reachable(std::uint32_t sample_id) const;

  // --- cooperative peer cache ----------------------------------------------
  /// Cost-free probe: is the sample resident in some *other* instance's
  /// cache (co-located or remote) right now? Issue-time elision and the
  /// skip decision consult this before giving up on a sample.
  [[nodiscard]] bool peer_resident(std::uint32_t sample_id) const;
  /// Peer-cache read: co-located holder first (shared-DRAM copy), then a
  /// remote holder via the cache directory's home client (peer-read RPC
  /// over the fabric, charged to this fleet's tenant). Copies the
  /// sample's bytes into `dst` on success; a miss (no holder, raced
  /// eviction, transport refusal) counts peer_misses_ and returns false.
  [[nodiscard]] dlsim::Task<bool> try_peer_read(std::uint32_t sample_id,
                                                std::uint32_t len,
                                                std::byte* dst);

  // --- self-healing replication (failure detector + repair daemon) --------
  /// Availability-transition tap (runs inside the engine's node handler):
  /// a down transition arms the suspect → declared-dead timer; an up
  /// transition of a declared-dead node is the late-rejoin path.
  void on_node_transition(std::uint16_t nid, bool up);
  /// One-shot suspect timer: fires declare_dead_after later and promotes
  /// the node iff it is still down and no transition happened meanwhile.
  dlsim::Task<void> death_timer(std::uint16_t nid, std::uint64_t epoch,
                                std::shared_ptr<bool> alive);
  /// Background re-replication daemon: parks on repair_wake_, walks the
  /// fleet backlog when membership changes, repairs one sample at a time
  /// under the traffic budget.
  dlsim::Task<void> repair_loop(std::shared_ptr<bool> alive);
  /// Repairs one under-replicated sample: stream from a surviving copy,
  /// write to the deterministic replacement, publish the new hop. True
  /// on success.
  dlsim::Task<bool> repair_one(std::uint32_t sample_id,
                               std::shared_ptr<bool> alive);
  /// Fleet-side notifications (declare/undeclare fan-out).
  void note_declared_dead();
  void note_rejoined();

  DlfsFleet* fleet_;
  std::uint32_t client_idx_;
  cluster::Node* node_;
  dlsim::CpuCore* io_core_;
  std::unique_ptr<mem::HugePagePool> pool_;
  std::unique_ptr<SampleCache> cache_;
  std::unique_ptr<spdk::NvmeDriver> driver_;
  std::unique_ptr<IoEngine> engine_;
  // Sharded mount only: this client's partial directory view (partition
  // map + resident shards + lookup caches). Null under kFull.
  std::unique_ptr<DirectoryView> view_;
  // Providers and the arbiter are declared before prefetcher_ (and the
  // sequence below them): the daemon holds raw pointers into them, so
  // they must outlive it on destruction.
  std::optional<EpochSequence> seq_;
  std::unique_ptr<EpochUnitProvider> epoch_provider_;
  std::unique_ptr<ExtentListProvider> file_provider_;
  std::shared_ptr<PrefetchArbiter> arbiter_;
  // Declared after engine_: destroyed first, while the engine (whose
  // pressure reliever points at it) is still alive.
  std::unique_ptr<Prefetcher> prefetcher_;
  std::unordered_map<std::size_t, FetchedUnit> fetched_;
  // Sample-level / unbatched prefetching: acquired units whose samples
  // span bread calls (a fused unit rarely aligns with batch boundaries).
  struct PendingUnit {
    AcquiredUnit unit;
    std::uint32_t slots_left = 0;  // epoch slots of the unit not consumed
  };
  std::unordered_map<std::size_t, PendingUnit> acq_units_;
  // Record-file streaming order (sequence_files).
  std::vector<std::string> file_order_;
  std::vector<UnitExtent> file_extents_;
  std::size_t file_cursor_ = 0;
  bool file_seq_active_ = false;
  dlsim::SimDuration injected_ = 0;
  std::uint64_t samples_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t samples_skipped_ = 0;
  // Bytes handed out as views into resident chunks (no copy stage ran).
  std::uint64_t bytes_zero_copy_ = 0;
  // Set by sequence(); the next bread revalidates down nodes once, so a
  // recovered storage node rejoins at the epoch boundary.
  bool reprobe_pending_ = false;
  dlsim::SimDuration lookup_time_total_ = 0;
  // --- self-healing replication state --------------------------------------
  // The repair daemon runs on its own core (repairs never steal frontend
  // cycles) and parks on repair_wake_ when the backlog is empty, so the
  // simulator can quiesce once the fleet is healthy. The destructor must
  // NOT set the event: a parked frame would resume into a destroyed
  // member — it clears the alive token instead (checked after every
  // suspension, per the repo's coroutine-lifetime convention).
  std::unique_ptr<dlsim::CpuCore> repair_core_;
  std::unique_ptr<dlsim::Event> repair_wake_;
  std::shared_ptr<bool> repair_alive_ = std::make_shared<bool>(true);
  // Per-node transition epoch: bumped on every up/down flip so a pending
  // death timer can tell "still the same outage" from "bounced meanwhile".
  std::vector<std::uint64_t> down_epoch_;
  // Budget pacing: simulated time before which the next repair may not
  // start (advanced by bytes/budget per repaired sample).
  dlsim::SimTime repair_next_allowed_ = 0;
  std::uint64_t nodes_declared_dead_ = 0;
  std::uint64_t samples_rereplicated_ = 0;
  std::uint64_t repair_bytes_ = 0;
  std::uint64_t repair_throttles_ = 0;
  // --- cooperative peer cache state ----------------------------------------
  // The node-local index this instance registered its cache with (null
  // with peer_cache.enabled off); shared by every co-located instance.
  std::shared_ptr<PeerCacheIndex> peer_index_;
  std::uint64_t peer_hits_local_ = 0;
  std::uint64_t peer_hits_remote_ = 0;
  std::uint64_t peer_misses_ = 0;
  std::uint64_t peer_bytes_ = 0;
};

/// RAII holder for a zero-copy batch: releases the pinned units when the
/// lease leaves scope, so every exit path (including exceptions between
/// bread_views and the explicit release) unpins. Move-only; release()
/// is idempotent through the batch token.
class ViewLease {
 public:
  ViewLease() = default;
  ViewLease(DlfsInstance& inst, ViewBatch batch)
      : inst_(&inst), batch_(std::move(batch)) {}
  ViewLease(ViewLease&& o) noexcept
      : inst_(std::exchange(o.inst_, nullptr)), batch_(std::move(o.batch_)) {}
  ViewLease& operator=(ViewLease&& o) noexcept {
    if (this != &o) {
      release();
      inst_ = std::exchange(o.inst_, nullptr);
      batch_ = std::move(o.batch_);
    }
    return *this;
  }
  ViewLease(const ViewLease&) = delete;
  ViewLease& operator=(const ViewLease&) = delete;
  ~ViewLease() { release(); }

  void release() {
    if (inst_ != nullptr && batch_.token == 1) inst_->release_views(batch_);
    inst_ = nullptr;
  }
  /// True while the batch's views are still safe to read.
  [[nodiscard]] bool held() const {
    return inst_ != nullptr && batch_.token == 1;
  }
  [[nodiscard]] ViewBatch& batch() { return batch_; }
  [[nodiscard]] const ViewBatch& batch() const { return batch_; }

 private:
  DlfsInstance* inst_ = nullptr;
  ViewBatch batch_;
};

/// Options for the consolidated DlfsFleet::mount() entry point.
struct MountOptions {
  /// Drive the simulator to completion inside mount(): spawn every
  /// participant, run, rethrow the first failure, verify the mount
  /// finished. false = only spawn the participants — for callers that
  /// must overlap the mount with other scheduled simulator activity
  /// (they run the simulator themselves and check mounted() after).
  bool run_to_completion = true;
};

class DlfsFleet {
 public:
  /// `client_nodes` / `storage_nodes` default to every cluster node (the
  /// paper's symmetric configuration). Fig. 11 uses 1 client with many
  /// storage nodes.
  DlfsFleet(cluster::Cluster& cluster, cluster::Pfs& pfs,
            const dataset::Dataset& ds, DlfsConfig config,
            std::vector<hw::NodeId> client_nodes = {},
            std::vector<hw::NodeId> storage_nodes = {});
  ~DlfsFleet();

  DlfsFleet(const DlfsFleet&) = delete;
  DlfsFleet& operator=(const DlfsFleet&) = delete;

  /// dlfs_mount, consolidated: spawns every mount participant internally
  /// and (by default) runs the simulator until the collective mount
  /// completes. Call from outside coroutine context. Throws if the mount
  /// cannot finish. mount_participant() below stays as the advanced
  /// escape hatch for callers orchestrating participants themselves.
  void mount(const MountOptions& opts = {});

  /// Collective mount, manual orchestration: spawn one per participant
  /// p in [0, participants()).
  [[nodiscard]] dlsim::Task<void> mount_participant(std::uint32_t p);
  [[nodiscard]] std::uint32_t participants() const {
    return static_cast<std::uint32_t>(
        std::max(client_nodes_.size(), storage_nodes_.size()));
  }
  [[nodiscard]] bool mounted() const { return mounted_; }

  [[nodiscard]] std::uint32_t num_clients() const {
    return static_cast<std::uint32_t>(client_nodes_.size());
  }
  [[nodiscard]] std::uint32_t num_storage() const {
    return static_cast<std::uint32_t>(storage_nodes_.size());
  }
  [[nodiscard]] DlfsInstance& instance(std::uint32_t client_idx) {
    return *instances_.at(client_idx);
  }

  [[nodiscard]] const SampleDirectory& directory() const { return directory_; }
  /// The NVMe-oF target exporting storage slot `slot`'s device, or
  /// nullptr when no remote client ever connected to it (purely local
  /// slot). Fault injection — crash()/recover() and their scheduled
  /// variants — goes through here.
  [[nodiscard]] spdk::NvmfTarget* target(std::uint32_t slot) {
    return slot < targets_.size() ? targets_[slot].get() : nullptr;
  }
  [[nodiscard]] const BatchPlan& plan() const { return *plan_; }
  [[nodiscard]] const dataset::Dataset& dataset() const { return *dataset_; }
  [[nodiscard]] const DlfsConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<SampleLocation>& layout() const {
    return layout_;
  }
  [[nodiscard]] std::optional<std::uint32_t> sample_id_of(
      std::string_view name) const;

  /// This job's tenant handle under the shared governor (null without
  /// one). All instances' engines share it, so the in-flight cap and
  /// fair-share clock are job-wide.
  [[nodiscard]] const std::shared_ptr<TenantHandle>& tenant_handle() const {
    return tenant_;
  }

  /// What one client's full-allgather directory copy would cost — the
  /// comparison figure for DirectoryView::resident_bytes().
  [[nodiscard]] std::uint64_t full_directory_bytes() const {
    std::uint64_t b = 0;
    for (std::uint16_t s = 0; s < directory_.num_nodes(); ++s) {
      b += directory_.shard_bytes(s);
    }
    return b;
  }

  /// Batched-file layout (record_file_samples > 0): the record files of
  /// one storage slot, in on-device order.
  struct RecordFileInfo {
    std::string name;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    std::vector<std::uint32_t> sample_ids;
  };
  [[nodiscard]] const std::vector<std::vector<RecordFileInfo>>& record_files()
      const {
    return record_files_;
  }

  /// The shared per-node prefetch arbiter (created lazily when a mounted
  /// instance opts in via `prefetch.shared_arbiter`); nullptr when no
  /// instance on `nid` registered.
  [[nodiscard]] PrefetchArbiter* arbiter(hw::NodeId nid) const {
    auto it = arbiters_.find(nid);
    return it == arbiters_.end() ? nullptr : it->second.get();
  }

  /// The per-node cooperative cache index (created lazily when a mounted
  /// instance has peer_cache.enabled); nullptr when no instance on `nid`
  /// registered.
  [[nodiscard]] PeerCacheIndex* peer_index(hw::NodeId nid) const {
    auto it = peer_indexes_.find(nid);
    return it == peer_indexes_.end() ? nullptr : it->second.get();
  }
  /// The cluster-wide cooperative cache directory (created at
  /// construction when peer_cache.enabled; nullptr otherwise).
  [[nodiscard]] PeerCacheDirectory* peer_directory() const {
    return peer_directory_.get();
  }

  // --- self-healing replication --------------------------------------------
  // Permanent-loss lifecycle. A storage slot is *suspect* while its
  // transport is down; the per-instance failure detector promotes it to
  // *declared dead* after replication.declare_dead_after (or a test calls
  // declare_dead directly). Declaration atomically drops the slot's
  // replica routes — snapshots already issued are unaffected, new issues
  // stop seeing the slot at once — and wakes every repair daemon. A
  // declared-dead slot that heals is treated as a fresh rejoin:
  // undeclare() clears the flag, the slot's primary shard serves again
  // (dataset bytes are immutable, so its on-device shard is still valid)
  // and it becomes eligible as a repair target; hops dropped at
  // declaration are not resurrected — repair re-converges instead.

  /// Marks storage slot dead (idempotent). Drops its replica routes and
  /// wakes the repair daemons.
  void declare_dead(std::uint16_t slot);
  /// Clears a declaration (idempotent): the late-rejoin path, also the
  /// explicit test hook.
  void undeclare(std::uint16_t slot);
  [[nodiscard]] bool declared_dead(std::uint16_t slot) const {
    return slot < declared_dead_.size() && declared_dead_[slot] != 0;
  }
  [[nodiscard]] std::uint32_t num_declared_dead() const {
    std::uint32_t n = 0;
    for (const std::uint8_t d : declared_dead_) n += d;
    return n;
  }
  /// Copies of a sample on non-declared-dead slots (transiently-down
  /// nodes still count — they come back; only permanent loss triggers
  /// repair).
  [[nodiscard]] std::uint32_t live_copies(std::uint32_t sample_id) const;
  /// Sample ids whose live-copy count is below the effective replication
  /// target. Walked by the repair daemons; empty once repair has drained.
  [[nodiscard]] std::vector<std::uint32_t> repair_backlog() const;

 private:
  friend class DlfsInstance;

  [[nodiscard]] std::shared_ptr<PrefetchArbiter> arbiter_for(hw::NodeId nid);
  [[nodiscard]] std::shared_ptr<PeerCacheIndex> peer_index_for(hw::NodeId nid);

  /// Picks the deterministic replacement for a new copy of `sample_id` —
  /// the same hash(name ‖ r) probe chain as mount-time placement, skipping
  /// declared-dead slots, slots already holding a copy, slots the caller's
  /// `usable` predicate rejects, and slots out of device capacity — and
  /// allocates its device extent (advances repair_next_offset_). nullopt
  /// when no slot qualifies. The extent allocation is not rolled back if
  /// the repair write later fails — the next attempt claims a fresh
  /// extent; the hole is wasted device space, never corruption.
  [[nodiscard]] std::optional<RouteHop> claim_repair_target(
      std::uint32_t sample_id,
      const std::function<bool(std::uint16_t)>& usable);
  /// Atomically publishes a repaired copy: one directory add_replica call
  /// (no suspension), so advance_route / RouteResolver / failover see the
  /// new hop on their next issue.
  void publish_repair(std::uint32_t sample_id, RouteHop hop);

  cluster::Cluster* cluster_;
  cluster::Pfs* pfs_;
  const dataset::Dataset* dataset_;
  DlfsConfig config_;
  std::vector<hw::NodeId> client_nodes_;
  std::vector<hw::NodeId> storage_nodes_;

  SampleDirectory directory_;
  std::vector<SampleLocation> layout_;  // sample id -> location
  std::vector<std::vector<std::uint32_t>> shard_samples_;  // slot -> ids
  // Replica placement (config_.fault.replication > 1): per-sample failover
  // hops in priority order, and per-slot rows of (sample id, device
  // offset) hosted as replicas, in on-device order after the slot's
  // primary region. The mount writes replica bytes from shard_replicas_
  // and the primary owner registers replica_layout_ in the directory.
  std::vector<std::vector<RouteHop>> replica_layout_;  // sample id -> hops
  struct ReplicaRow {
    std::uint32_t sample_id = 0;
    std::uint64_t offset = 0;
  };
  std::vector<std::vector<ReplicaRow>> shard_replicas_;  // slot -> rows
  std::unordered_map<std::uint64_t, std::uint32_t> name_to_id_;
  std::vector<std::vector<RecordFileInfo>> record_files_;  // per slot
  std::unique_ptr<BatchPlan> plan_;
  std::vector<std::unique_ptr<spdk::NvmfTarget>> targets_;  // per slot
  // Per-node read-ahead arbiters for co-located instances (opt-in).
  std::unordered_map<hw::NodeId, std::shared_ptr<PrefetchArbiter>> arbiters_;
  // Cooperative peer cache (config.peer_cache.enabled): per-node member
  // indexes, registered alongside the arbiters, and the cluster-wide
  // consistent-hash cache directory. Declared before instances_ —
  // ~DlfsInstance unregisters from both, so they must outlive the
  // instances during fleet destruction.
  std::unordered_map<hw::NodeId, std::shared_ptr<PeerCacheIndex>> peer_indexes_;
  std::shared_ptr<PeerCacheDirectory> peer_directory_;
  std::vector<std::unique_ptr<DlfsInstance>> instances_;
  cluster::Barrier upload_barrier_;
  cluster::Barrier allgather_barrier_;
  cluster::Barrier ready_barrier_;
  bool mounted_ = false;
  // Tenant QoS: registered once per fleet at construction (when a
  // governor is configured) and shared by every instance's engine.
  std::shared_ptr<TenantHandle> tenant_;
  // --- self-healing replication state --------------------------------------
  std::vector<std::uint8_t> declared_dead_;  // index = storage slot
  // Next free device offset per slot, carried over from mount-time layout
  // so repair extents land after the primary + replica regions.
  std::vector<std::uint64_t> repair_next_offset_;
  // Samples currently being repaired by some instance's daemon (claims
  // prevent two daemons from duplicating the same copy).
  std::unordered_set<std::uint32_t> repair_claims_;
  // Effective copy count (replication.k clamped to the fleet size).
  std::uint32_t effective_reps_ = 1;
};

}  // namespace dlfs::core

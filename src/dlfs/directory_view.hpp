// DirectoryView: a client's *partial* view of the sample directory.
//
// The classic DLFS mount (§III-B) all-gathers every shard to every
// client, so per-client directory memory is O(dataset). At FalconFS
// scale (tens of millions of tiny samples, dozens of jobs) that is the
// limit that breaks first. The sharded mount keeps each AVL shard
// resident only where it was built — on its storage node — and gives
// every client this view instead:
//
//   * a partition map (one fixed-size row per storage slot: owner node,
//     entry count) gathered by the same ring collective that used to
//     move whole shards;
//   * the shards co-located with the client's own node, resident at the
//     usual entry + id-row rates;
//   * a bounded positive lookup cache (LRU over resolved entries) and a
//     bounded negative cache (name hashes known to be absent), both
//     filled by NVMe-oF-style metadata RPCs to the owning node.
//
// So per-client memory is O(dataset / S) + O(cache), proven with the
// same byte accounting `SampleDirectory::shard_bytes` uses for the full
// allgather.
//
// Deviation from a real deployment, consistent with the rest of the
// repo: the fully-built `SampleDirectory` object is shared in-process,
// so a "remote" resolution returns a pointer into the same trees the
// full mount would have copied — results are byte-identical by
// construction, and what the sharded mount changes is *time* (the RPC
// round trip, charged by the caller) and *accounted memory* (this
// class). The view itself is cost-free bookkeeping: it decides how a
// lookup would have been served and maintains the caches; the caller
// charges fabric/CPU accordingly.

#pragma once

#include <cstdint>
#include <list>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dlfs/sample_directory.hpp"

namespace dlfs::core {

/// How a client holds the directory after mount.
enum class DirectoryMode : std::uint8_t {
  kFull,     // classic §III-B: all-gather every shard to every client
  kSharded,  // partition map + co-located shards + lazy remote lookup
};

struct DirectoryConfig {
  DirectoryMode mode = DirectoryMode::kFull;
  /// Capacity of the positive lookup cache (entries resolved remotely),
  /// LRU-evicted. Each cached entry is accounted at the same
  /// entry + id-row rate as a resident shard entry.
  std::size_t lookup_cache_entries = 4096;
  /// Capacity of the negative cache (name hashes proven absent), so
  /// repeated opens of a missing name cost one RPC, not one per open.
  std::size_t negative_cache_entries = 1024;
};

struct DirectoryViewStats {
  std::uint64_t local_hits = 0;       // served by a resident shard
  std::uint64_t cache_hits = 0;       // served by the positive cache
  std::uint64_t negative_hits = 0;    // absent, answered by negative cache
  std::uint64_t remote_lookups = 0;   // resolutions that need an RPC
  std::uint64_t cache_evictions = 0;  // positive-cache LRU evictions
  /// Cached rows dropped because the sample's route set was republished
  /// (repair daemon) after the row was filled — served stale nowhere.
  std::uint64_t stale_invalidations = 0;
};

class DirectoryView {
 public:
  /// Accounted size of one partition-map row (slot -> owner node id +
  /// entry count); also the per-node slice the sharded mount's ring
  /// exchange moves instead of the whole shard.
  static constexpr std::uint64_t kPartitionRowBytes = 8;
  /// Accounted size of one negative-cache row (the 64-bit name hash).
  static constexpr std::uint64_t kNegativeRowBytes = 8;

  /// How one resolution was (or must be) served. kRemote means the
  /// caller owes an RPC round trip to the owner before calling
  /// complete_remote() with the result.
  enum class Served : std::uint8_t { kLocal, kCached, kNegative, kRemote };

  struct Resolution {
    const SampleEntry* entry = nullptr;  // null: absent, or kRemote pending
    Served served = Served::kLocal;
    std::uint16_t owner_slot = 0;
    std::uint64_t cache_key = 0;  // pass through to complete_remote()
  };

  /// `resident[slot]` marks the shards this client holds (its co-located
  /// storage slots; empty client nodes hold none).
  DirectoryView(const SampleDirectory& dir, DirectoryConfig cfg,
                std::vector<std::uint8_t> resident);

  /// Resolution by sample id (the dlfs_sequence / bread hot path). The
  /// id -> owner-slot step reads the partition metadata, not the shard.
  [[nodiscard]] Resolution resolve_id(std::size_t sample_id);

  /// Resolution by name (the dlfs_open path). Unknown names consult the
  /// negative cache before going remote.
  [[nodiscard]] Resolution resolve_name(std::string_view name);

  /// Deliver the owner's answer for a resolution that returned kRemote:
  /// installs the entry in the positive cache (evicting LRU), or the key
  /// in the negative cache when the owner reported the name absent.
  void complete_remote(const Resolution& r, const SampleEntry* entry);

  [[nodiscard]] bool resident(std::uint16_t slot) const {
    return slot < resident_.size() && resident_[slot] != 0;
  }
  [[nodiscard]] const DirectoryViewStats& stats() const { return stats_; }

  /// Directory memory this client actually holds: partition map +
  /// resident shards (at shard_bytes rates) + both caches. The full
  /// allgather equivalent is sum(shard_bytes) over every slot.
  [[nodiscard]] std::uint64_t resident_bytes() const;

 private:
  // Positive-cache keys live in one uint64 space: ids tagged with a low
  // 1-bit, name hashes shifted in with a low 0-bit, so the two access
  // paths can never collide.
  static std::uint64_t id_key(std::size_t sample_id) {
    return (static_cast<std::uint64_t>(sample_id) << 1) | 1u;
  }
  static std::uint64_t name_key(std::uint64_t name_hash) {
    return name_hash << 1;
  }

  [[nodiscard]] const SampleEntry* cache_find(std::uint64_t key);
  void cache_insert(std::uint64_t key, const SampleEntry* entry);
  void negative_insert(std::uint64_t key);

  // Route-set version a cache row for `key` must match to be served:
  // id-keyed rows validate against the sample's own version, name-keyed
  // rows (no id available) against the coarse directory epoch.
  [[nodiscard]] std::uint64_t row_version(std::uint64_t key) const {
    return (key & 1u) != 0 ? dir_->route_version(key >> 1)
                           : dir_->route_epoch();
  }

  const SampleDirectory* dir_;
  DirectoryConfig cfg_;
  std::vector<std::uint8_t> resident_;  // index = storage slot

  // Positive cache: key -> entry, LRU order front = most recent.
  struct CacheRow {
    const SampleEntry* entry;
    std::list<std::uint64_t>::iterator lru;
    std::uint64_t version;  // dir route version when the row was filled
  };
  std::unordered_map<std::uint64_t, CacheRow> cache_;
  std::list<std::uint64_t> lru_;

  // Negative cache: FIFO over name-hash keys.
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> neg_;
  std::list<std::uint64_t> neg_fifo_;

  DirectoryViewStats stats_;
};

}  // namespace dlfs::core

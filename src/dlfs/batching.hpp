#pragma once

// Opportunistic batching (§III-D): the planner behind dlfs_sequence and
// dlfs_bread.
//
// BatchPlan carves the mounted dataset into *read units*:
//   - chunk-level batching: fixed-size data chunks (256 KB default), each
//     delivering every sample fully contained in it, plus one unit per
//     *edge sample* that crosses a chunk boundary (the paper's data-chunk
//     access list and edge-sample access list);
//   - sample-level batching (and the unbatched DLFS-Base): one unit per
//     sample.
//
// EpochSequence is the per-epoch global random order: every node seeds
// the same RNG (dlfs_sequence's shared seed), derives the same shuffled
// unit list with zero communication, and reads only its strided share —
// "every node only reads its assigned portion on the list" (§III-D.1).
// The delivered sample order under chunk batching is random-chunk /
// sequential-within-chunk; Fig. 13 validates that this relaxation does
// not hurt training accuracy.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "dlfs/sample_entry.hpp"

namespace dlfs::core {

enum class BatchingMode {
  kNone,         // DLFS-Base: synchronous per-sample reads
  kSampleLevel,  // batch many per-sample requests up to the queue depth
  kChunkLevel,   // aggregate small samples into data chunks
};

/// Where a sample lives after mount.
struct SampleLocation {
  std::uint16_t nid = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
};

/// One sample delivered by a read unit.
struct UnitSample {
  std::uint32_t sample_id = 0;
  std::uint32_t offset_in_unit = 0;
  std::uint32_t len = 0;
};

/// One device extent the backend fetches as a whole.
struct ReadUnit {
  std::uint16_t nid = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  bool is_chunk = false;
  std::vector<UnitSample> samples;
};

class BatchPlan {
 public:
  /// `layout[i]` locates sample i. For chunk mode, chunks are aligned to
  /// the chunk grid of each node's data region (offset 0 upward).
  BatchPlan(const std::vector<SampleLocation>& layout,
            std::uint64_t chunk_bytes, BatchingMode mode);

  [[nodiscard]] BatchingMode mode() const { return mode_; }
  [[nodiscard]] const std::vector<ReadUnit>& units() const { return units_; }
  [[nodiscard]] std::size_t num_samples() const { return num_samples_; }
  [[nodiscard]] std::size_t num_chunk_units() const { return chunk_units_; }
  [[nodiscard]] std::size_t num_edge_units() const { return edge_units_; }

 private:
  BatchingMode mode_;
  std::vector<ReadUnit> units_;
  std::size_t num_samples_ = 0;
  std::size_t chunk_units_ = 0;
  std::size_t edge_units_ = 0;
};

/// One device extent of a prefetchable read unit. `key` is whatever the
/// provider's consumer uses to recognize the extent when the unit is
/// acquired — the sample id for per-sample extents, the slot itself for
/// chunks and record files — so a provider may elide extents (e.g.
/// already cache-resident samples) without breaking the mapping.
struct UnitExtent {
  std::uint16_t nid = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::uint64_t key = 0;
  // Replica failover order for these bytes (empty without replication).
  std::vector<RouteHop> routes{};
};

/// What the asynchronous prefetcher walks: an ordered list of read units,
/// each a small set of device extents fetched as one window entry. One
/// implementation per read path — chunk units, fused groups of per-sample
/// extents, record files — so a single windowed daemon serves them all.
class ReadUnitProvider {
 public:
  virtual ~ReadUnitProvider() = default;
  [[nodiscard]] virtual std::size_t num_units() const = 0;
  /// Extents of unit `slot` worth fetching *at call time*: the provider
  /// may skip extents that are already resident elsewhere (sample cache).
  [[nodiscard]] virtual std::vector<UnitExtent> unit_extents(
      std::size_t slot) const = 0;
};

class SampleCache;

/// One client's walk through an epoch's shuffled unit list.
class EpochSequence {
 public:
  /// All clients pass the same seed (the dlfs_sequence contract) and get
  /// the same global shuffle; client c of k takes units c, c+k, c+2k, ...
  EpochSequence(const BatchPlan& plan, std::uint64_t seed,
                std::uint32_t client_idx, std::uint32_t num_clients);

  [[nodiscard]] std::size_t my_units() const { return order_.size(); }
  [[nodiscard]] std::size_t remaining_samples() const {
    return total_samples_ - consumed_samples_;
  }

  /// A contiguous run of picks from one unit.
  struct UnitPicks {
    const ReadUnit* unit = nullptr;
    std::size_t unit_slot = 0;       // index into this client's unit order
    std::uint32_t first_sample = 0;  // index into unit->samples
    std::uint32_t count = 0;
  };

  /// Advances the cursor by up to n samples; the final bread of an epoch
  /// may return fewer.
  [[nodiscard]] std::vector<UnitPicks> take(std::size_t n);

  /// Unit pointer for a slot (for fetch bookkeeping in the instance).
  [[nodiscard]] const ReadUnit* unit_at(std::size_t slot) const {
    return order_.at(slot);
  }

  /// Cursor-based read-ahead iteration (no per-call allocation): the
  /// unit slot currently being consumed and the total slot count. The
  /// slots ahead of the cursor are [cursor_unit(), num_units()) — the
  /// prefetch window walks them directly.
  [[nodiscard]] std::size_t cursor_unit() const { return cur_unit_; }
  [[nodiscard]] std::size_t num_units() const { return order_.size(); }

 private:
  std::vector<const ReadUnit*> order_;
  std::size_t total_samples_ = 0;
  std::size_t consumed_samples_ = 0;
  std::size_t cur_unit_ = 0;
  std::uint32_t cur_sample_ = 0;
};

/// ReadUnitProvider over an EpochSequence. Chunk mode maps 1:1 (group =
/// 1, every epoch slot is one chunk/edge unit, keyed by the slot);
/// sample-level and unbatched modes fuse `group` consecutive epoch slots
/// — each a single-sample unit — into one prefetch unit whose extents
/// are keyed by sample id. With a cache attached, extents whose sample
/// is already resident are elided at issue time, so warm epochs cost no
/// device read-ahead.
class EpochUnitProvider final : public ReadUnitProvider {
 public:
  /// `routes` (optional) resolves a sample id to its replica failover
  /// list; per-sample extents carry it so prefetched reads can fail over.
  /// Chunk units read record regions, not samples — they get no routes.
  using RouteResolver = std::function<std::vector<RouteHop>(std::uint32_t)>;

  /// `peers` (optional) answers "is this sample currently resident in a
  /// cooperative peer cache?". Issue-time elision consults it after the
  /// local cache, so a warm peer set costs no device read-ahead either —
  /// the consume path fetches those bytes from the peer instead.
  using PeerProbe = std::function<bool(std::uint32_t)>;

  EpochUnitProvider(const EpochSequence& seq, std::uint32_t group,
                    const SampleCache* cache, RouteResolver routes = {},
                    PeerProbe peers = {});

  [[nodiscard]] std::size_t num_units() const override;
  [[nodiscard]] std::vector<UnitExtent> unit_extents(
      std::size_t slot) const override;

  /// The prefetch unit covering epoch slot `epoch_slot`.
  [[nodiscard]] std::size_t unit_of(std::size_t epoch_slot) const {
    return epoch_slot / group_;
  }
  [[nodiscard]] std::uint32_t group() const { return group_; }

 private:
  const EpochSequence* seq_;
  std::uint32_t group_;
  const SampleCache* cache_;  // may be null: no elision
  RouteResolver routes_;      // may be null: no replication
  PeerProbe peers_;           // may be null: no peer cache
};

/// Trivial provider over a precomputed extent list, one unit per extent
/// (keyed by its slot). The record-file streaming path shuffles the
/// mounted record files and hands them here.
class ExtentListProvider final : public ReadUnitProvider {
 public:
  explicit ExtentListProvider(std::vector<UnitExtent> units)
      : units_(std::move(units)) {}

  [[nodiscard]] std::size_t num_units() const override {
    return units_.size();
  }
  [[nodiscard]] std::vector<UnitExtent> unit_extents(
      std::size_t slot) const override {
    return {units_.at(slot)};
  }

 private:
  std::vector<UnitExtent> units_;
};

}  // namespace dlfs::core

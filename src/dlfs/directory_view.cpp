#include "dlfs/directory_view.hpp"

#include <stdexcept>

#include "common/hash.hpp"

namespace dlfs::core {

DirectoryView::DirectoryView(const SampleDirectory& dir, DirectoryConfig cfg,
                             std::vector<std::uint8_t> resident)
    : dir_(&dir), cfg_(cfg), resident_(std::move(resident)) {
  resident_.resize(dir.num_nodes(), 0);
  if (cfg_.lookup_cache_entries == 0) {
    throw std::invalid_argument(
        "DirectoryConfig::lookup_cache_entries must be >= 1");
  }
}

const SampleEntry* DirectoryView::cache_find(std::uint64_t key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) return nullptr;
  if (it->second.version != row_version(key)) {
    // The repair daemon republished this sample's hop set after the row
    // was cached: a real client's row is stale (it snapshots the routes
    // learned at RPC time) and must be re-fetched from the owner, so the
    // resolution goes remote again and pays the round trip.
    lru_.erase(it->second.lru);
    cache_.erase(it);
    ++stats_.stale_invalidations;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
  return it->second.entry;
}

void DirectoryView::cache_insert(std::uint64_t key, const SampleEntry* entry) {
  if (cache_find(key) != nullptr) return;  // raced duplicate: already fresh
  while (cache_.size() >= cfg_.lookup_cache_entries) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
  lru_.push_front(key);
  cache_.emplace(key, CacheRow{entry, lru_.begin(), row_version(key)});
}

void DirectoryView::negative_insert(std::uint64_t key) {
  if (cfg_.negative_cache_entries == 0) return;
  if (neg_.contains(key)) return;
  while (neg_.size() >= cfg_.negative_cache_entries) {
    neg_.erase(neg_fifo_.back());
    neg_fifo_.pop_back();
  }
  neg_fifo_.push_front(key);
  neg_.emplace(key, neg_fifo_.begin());
}

DirectoryView::Resolution DirectoryView::resolve_id(std::size_t sample_id) {
  Resolution r;
  r.cache_key = id_key(sample_id);
  r.owner_slot = dir_->owner_slot_of(sample_id);
  if (resident(r.owner_slot)) {
    ++stats_.local_hits;
    r.entry = dir_->lookup_id(sample_id);
    r.served = Served::kLocal;
    return r;
  }
  if (const SampleEntry* e = cache_find(r.cache_key)) {
    ++stats_.cache_hits;
    r.entry = e;
    r.served = Served::kCached;
    return r;
  }
  ++stats_.remote_lookups;
  r.served = Served::kRemote;
  return r;
}

DirectoryView::Resolution DirectoryView::resolve_name(std::string_view name) {
  Resolution r;
  const std::uint64_t h = hash64(name);
  r.cache_key = name_key(h);
  r.owner_slot = dir_->owner_of(name);
  if (resident(r.owner_slot)) {
    ++stats_.local_hits;
    r.entry = dir_->lookup(name);
    r.served = Served::kLocal;
    return r;
  }
  if (const SampleEntry* e = cache_find(r.cache_key)) {
    ++stats_.cache_hits;
    r.entry = e;
    r.served = Served::kCached;
    return r;
  }
  if (neg_.contains(r.cache_key)) {
    ++stats_.negative_hits;
    r.entry = nullptr;
    r.served = Served::kNegative;
    return r;
  }
  ++stats_.remote_lookups;
  r.served = Served::kRemote;
  return r;
}

void DirectoryView::complete_remote(const Resolution& r,
                                    const SampleEntry* entry) {
  if (entry != nullptr) {
    cache_insert(r.cache_key, entry);
  } else {
    negative_insert(r.cache_key);
  }
}

std::uint64_t DirectoryView::resident_bytes() const {
  std::uint64_t bytes =
      kPartitionRowBytes * static_cast<std::uint64_t>(dir_->num_nodes());
  for (std::uint16_t s = 0; s < dir_->num_nodes(); ++s) {
    if (resident_[s] != 0) bytes += dir_->shard_bytes(s);
  }
  bytes += static_cast<std::uint64_t>(cache_.size()) *
           (SampleDirectory::kEntryBytes + SampleDirectory::kIdRowBytes);
  bytes += static_cast<std::uint64_t>(neg_.size()) * kNegativeRowBytes;
  return bytes;
}

}  // namespace dlfs::core

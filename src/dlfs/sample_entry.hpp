#pragma once

// SampleEntry: the 128-bit directory entry of Fig. 3(b).
//
// Two 64-bit units:
//   unit 1:  NID (16 bits)  | key (48 bits, hash of sample name + attrs)
//   unit 2:  offset (40 bits) | len (23 bits) | V (1 bit)
//
// NID identifies the storage node holding the sample; (offset, len) is
// its location on that node's NVMe device; V tracks whether a copy is
// currently resident in the local sample cache. The layout caps a
// deployment at 65,536 storage nodes, 1 TiB of addressed bytes per
// device, and 8 MiB per sample — all stated or implied by the paper.

#include <cstdint>
#include <stdexcept>

namespace dlfs::core {

class SampleEntry {
 public:
  static constexpr std::uint64_t kMaxNid = (1ull << 16) - 1;
  static constexpr std::uint64_t kKeyMask = (1ull << 48) - 1;
  static constexpr std::uint64_t kMaxOffset = (1ull << 40) - 1;
  static constexpr std::uint64_t kMaxLen = (1ull << 23) - 1;

  SampleEntry() = default;

  SampleEntry(std::uint16_t nid, std::uint64_t key48, std::uint64_t offset,
              std::uint32_t len, bool valid_in_cache = false) {
    if (key48 > kKeyMask) throw std::invalid_argument("key exceeds 48 bits");
    if (offset > kMaxOffset) {
      throw std::invalid_argument("offset exceeds 40 bits (1 TiB)");
    }
    if (len > kMaxLen) {
      throw std::invalid_argument("sample length exceeds 23 bits (8 MiB)");
    }
    hi_ = (static_cast<std::uint64_t>(nid) << 48) | key48;
    lo_ = (offset << 24) | (static_cast<std::uint64_t>(len) << 1) |
          (valid_in_cache ? 1u : 0u);
  }

  [[nodiscard]] std::uint16_t nid() const {
    return static_cast<std::uint16_t>(hi_ >> 48);
  }
  [[nodiscard]] std::uint64_t key() const { return hi_ & kKeyMask; }
  [[nodiscard]] std::uint64_t offset() const { return lo_ >> 24; }
  [[nodiscard]] std::uint32_t len() const {
    return static_cast<std::uint32_t>((lo_ >> 1) & kMaxLen);
  }
  [[nodiscard]] bool valid_in_cache() const { return (lo_ & 1) != 0; }

  void set_valid_in_cache(bool v) {
    lo_ = (lo_ & ~1ull) | (v ? 1u : 0u);
  }

  [[nodiscard]] std::uint64_t raw_hi() const { return hi_; }
  [[nodiscard]] std::uint64_t raw_lo() const { return lo_; }

  friend bool operator==(const SampleEntry& a, const SampleEntry& b) {
    return a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

static_assert(sizeof(SampleEntry) == 16,
              "a sample entry must be exactly 128 bits (paper, Fig. 3b)");

// What kind of endpoint a route hop names. kStorage hops are NVMe-oF
// extents the IoEngine reads; kPeer hops name a peer client's DRAM cache
// and are consumed by the DLFS peer-read path before the extent ever
// reaches the engine (the engine skips them when advancing routes).
enum class HopClass : std::uint8_t { kStorage, kPeer };

// RouteHop: one alternate placement of a sample (replica location). Read
// paths carry a short list of these alongside the primary (nid, offset)
// so a downed node becomes a routing decision instead of a skip. The
// length is not repeated: every copy of a sample has the primary's length.
struct RouteHop {
  std::uint16_t nid = 0;
  std::uint64_t offset = 0;
  HopClass cls = HopClass::kStorage;

  friend bool operator==(const RouteHop& a, const RouteHop& b) {
    return a.nid == b.nid && a.offset == b.offset && a.cls == b.cls;
  }
};

}  // namespace dlfs::core

#pragma once

// Asynchronous epoch-aware prefetcher.
//
// dlfs_sequence hands every client the *entire* epoch access order up
// front, so — exactly as clairvoyant prefetching systems (NoPFS) exploit
// — there is nothing speculative about read-ahead: the next read units
// are known. The seed implementation nevertheless appended its
// "read-ahead" units to the same blocking read_extents call the consumer
// waited on, inflating bread latency instead of hiding it.
//
// The Prefetcher is a per-instance daemon coroutine (own CpuCore, like
// the SCQ copy threads) that walks a *read-unit* order ahead of the
// consumer cursor and keeps a window of units in flight *across* bread
// calls. A read unit is whatever the installed ReadUnitProvider says it
// is — one data chunk (chunk-level batching), a group of consecutive
// per-sample extents (sample-level batching and DLFS-Base), or one whole
// record file (the open_file() streaming path) — so one windowed daemon
// serves every BatchingMode and the file-oriented API. While the trainer
// computes between breads, the daemon pumps the shared IoEngine and
// upcoming units land in huge-page chunks; bread then finds its units
// already resident (acquire() returns without stalling) and awaits only
// what is genuinely missing.
//
// Window policy (adaptive):
//   * the target is the read-ahead depth *beyond* the highest slot the
//     consumer has demanded so far — units of the current batch do not
//     count against it, so the daemon keeps reading ahead of the batch
//     even while the consumer is busy acquiring it;
//   * target starts at clamp(initial_units, min, max) and grows by one
//     on every acquire() that had to stall — a stall means the window was
//     not deep enough to cover the consumer's inter-arrival time;
//   * it shrinks when the huge-page pool cannot hold more read-ahead
//     (top_up blocked with less than `reserve_chunks` headroom), when the
//     engine invokes the pressure reliever — pool exhausted and
//     SampleCache::evict_lru_one() found nothing to yield — in which case
//     the farthest resident, unconsumed unit is dropped and its chunks
//     returned, and when a shared PrefetchArbiter caps this instance's
//     read-ahead below what it wanted (co-located daemons competing for
//     one node's huge pages).
//
// Failure model: a prefetched extent's IoError is stored on its ExtentOp
// and handed back *per extent* by acquire() — the daemon never dies on a
// bad read-ahead, and the consumer routes each extent's error exactly as
// it would a synchronous fetch failure (media fatal, node faults skip
// just the affected samples).

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "dlfs/batching.hpp"
#include "dlfs/io_engine.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/check.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace dlfs::core {

class Prefetcher;

/// Divides one node's read-ahead budget among the co-located instances'
/// prefetch daemons. Each daemon, before topping its window up, asks for
/// its chunk allowance: the node-wide headroom (every member pool's free
/// chunks beyond its reserve, plus chunks already held as read-ahead)
/// split proportionally to the members' adaptive window targets — an
/// instance that stalls often grows its target and thereby its share,
/// while an instance coasting on a shallow window yields huge pages to
/// its neighbours instead of each daemon shrinking blindly on local
/// pool pressure alone. An instance's allowance never exceeds what its
/// own pool can actually hold, and never starves below one unit.
class PrefetchArbiter {
 public:
  PrefetchArbiter() = default;
  PrefetchArbiter(const PrefetchArbiter&) = delete;
  PrefetchArbiter& operator=(const PrefetchArbiter&) = delete;

  void register_member(Prefetcher& p);
  void unregister_member(Prefetcher& p);
  [[nodiscard]] std::size_t members() const { return members_.read()->size(); }

  /// Chunks `p` may hold as read-ahead right now.
  [[nodiscard]] std::uint64_t chunk_allowance(const Prefetcher& p) const;

 private:
  // Checked: the membership list is read by every co-located daemon's
  // top-up and mutated from instance setup/teardown; the ledger proves
  // no daemon is suspended mid-budget-split while the fleet mutates it.
  dlsim::Checked<std::vector<Prefetcher*>> members_{"prefetch-arbiter"};
};

struct PrefetcherConfig {
  // Off -> no daemon; bread falls back to the legacy synchronous
  // read-ahead (chunk mode) or pure demand fetching (sample-level /
  // DLFS-Base), kept as the ablation baseline.
  bool enabled = true;
  std::uint32_t min_units = 1;      // adaptive window lower bound
  std::uint32_t max_units = 32;     // adaptive window upper bound
  std::uint32_t initial_units = 4;  // starting window target; also the
                                    // legacy sync read-ahead depth
  // Pool chunks kept free for demand fetches and the sample cache when
  // sizing read-ahead; top_up never takes the pool below this.
  std::uint32_t reserve_chunks = 8;
  // Sample-level / unbatched modes: consecutive epoch slots fused into
  // one read unit, so tiny per-sample extents amortize the window
  // bookkeeping (chunk mode is always 1 unit = 1 chunk).
  std::uint32_t group_samples = 8;
  // Register with the fleet's per-node PrefetchArbiter so co-located
  // instances share the node's read-ahead budget.
  bool shared_arbiter = false;
};

struct PrefetchStats {
  std::uint64_t units_issued = 0;            // read-ahead + demand issues
  std::uint64_t units_resident_at_pick = 0;  // finished before acquire()
  std::uint64_t units_stalled = 0;           // acquire() had to wait
  dlsim::SimDuration stall_ns = 0;           // total wait on needed units
  std::uint32_t in_flight_hwm = 0;           // window depth high-water mark
  std::uint64_t window_grows = 0;
  std::uint64_t window_shrinks = 0;
  std::uint64_t units_dropped = 0;   // shed under pool pressure
  std::uint64_t units_reissued = 0;  // retried after a node came back
  std::uint64_t arbiter_throttles = 0;  // top-ups capped by the arbiter
  std::uint32_t window_target = 0;   // current adaptive target
};

/// One extent of an acquired read unit, identified by the provider's
/// key. `error` is the stored IoError of a failed read-ahead (buffers
/// empty); the consumer routes it exactly like a demand-fetch failure.
struct AcquiredExtent {
  std::uint64_t key = 0;
  std::vector<mem::DmaBuffer> buffers;
  std::exception_ptr error{};
};

struct AcquiredUnit {
  std::vector<AcquiredExtent> extents;
  [[nodiscard]] std::exception_ptr first_error() const {
    for (const auto& x : extents) {
      if (x.error) return x.error;
    }
    return {};
  }
};

class Prefetcher {
 public:
  Prefetcher(dlsim::Simulator& sim, IoEngine& engine, mem::HugePagePool& pool,
             std::uint64_t chunk_bytes, PrefetcherConfig config,
             const std::string& name);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Joins / leaves a shared per-node arbiter (unregisters on destruction).
  void set_arbiter(std::shared_ptr<PrefetchArbiter> arbiter);

  /// Tenant QoS weight applied to this instance's arbiter share: the
  /// budget splits by weight × window target, so a high-priority job's
  /// read-ahead window follows its bandwidth share instead of competing
  /// symmetrically with a background job on the same node.
  void set_share_weight(double w);
  [[nodiscard]] double share_weight() const { return share_weight_; }

  /// Installs a new read-unit order. Unfinished read-ahead from the
  /// previous order keeps draining in the background (extents cannot be
  /// cancelled) and its buffers are dropped on completion.
  void start_epoch(const ReadUnitProvider* provider);

  /// Demand-issues every unit up to and including `slot` that is not
  /// already in the window — bread calls this for its whole pick list
  /// before awaiting anything, so a batch larger than the window still
  /// fetches all its units concurrently.
  void ensure_issued_through(std::size_t slot);

  /// Hands over unit `slot`'s extents (buffers in on-device order, or a
  /// stored error per failed extent), waiting — and pumping the engine on
  /// `consumer_core` — only if the unit is not fully resident yet.
  /// Consumption must be in slot order (the provider contract). Extents
  /// the provider elided at issue time (e.g. already cache-resident
  /// samples) are simply absent.
  [[nodiscard]] dlsim::Task<AcquiredUnit> acquire(
      std::size_t slot, dlsim::CpuCore& consumer_core);

  /// Engine pressure callback: drops the farthest resident unconsumed
  /// unit and shrinks the window. Returns true if chunks were freed.
  bool relieve_pressure();

  /// Forgets unit `slot` without consuming it — bread skips a unit whose
  /// storage node is unavailable and tells the window to drop it. A
  /// still-unfinished op keeps draining on the daemon (extents cannot be
  /// cancelled); resident buffers are freed immediately.
  void discard(std::size_t slot);

  /// Re-issues every unconsumed window extent whose op failed — called
  /// after a down node is revalidated, so read-ahead issued while the node
  /// was unavailable is retried instead of surfacing stale errors. Returns
  /// the number of extents reissued.
  std::uint32_t reissue_failed();

  [[nodiscard]] const PrefetchStats& stats() const { return stats_; }
  [[nodiscard]] dlsim::CpuCore& core() { return *core_; }
  [[nodiscard]] std::size_t window_size() const;
  [[nodiscard]] std::uint32_t window_target() const { return window_target_; }
  // Arbiter inputs: chunks currently held by the window as read-ahead,
  // and this instance's pool headroom beyond its configured reserve.
  [[nodiscard]] std::uint64_t readahead_chunks() const { return ra_chunks_; }
  [[nodiscard]] std::uint64_t pool_headroom_chunks() const;

  /// Zero-copy consumers: pool chunks of already-acquired units that live
  /// ViewBatches still pin. They are read-ahead *output* the instance has
  /// not given back, so they count against its arbiter share — otherwise
  /// a co-located daemon would size its window as if those huge pages
  /// were reclaimable by consumption.
  void note_view_pins(std::int64_t delta_chunks) {
    view_pinned_chunks_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(view_pinned_chunks_) + delta_chunks);
  }
  [[nodiscard]] std::uint64_t view_pinned_chunks() const {
    return view_pinned_chunks_;
  }

 private:
  struct Extent {
    std::uint64_t key = 0;
    ExtentOpPtr op;
  };
  struct Entry {
    std::size_t slot = 0;
    std::vector<Extent> extents;
    std::uint64_t chunks = 0;  // pool chunks this unit's extents occupy
    bool pinned = false;  // a consumer is awaiting it; reliever must skip
  };

  // The in-flight window, sharded by slot. Each shard is its own Checked
  // deque (slot order within a shard; shard front = next to consume), so
  // the daemon's top-up touching slot s and a consumer acquiring slot t
  // form disjoint critical slices whenever s % kWindowShards !=
  // t % kWindowShards — only same-shard overlap would trip the ledger.
  // Operations that need a cross-window view (farthest entry, oldest
  // unfinished, total size) visit the shards one guard at a time.
  static constexpr std::size_t kWindowShards = 4;
  using WindowShard = dlsim::Checked<std::deque<Entry>>;

  [[nodiscard]] WindowShard& shard_for(std::size_t slot) {
    return window_shards_[slot % kWindowShards];
  }

  [[nodiscard]] static std::uint64_t extents_chunks(
      const std::vector<UnitExtent>& xs, std::uint64_t chunk_bytes);
  /// Issues unit `slot` into its shard (self-guarded; reentrant from a
  /// caller already holding that shard's guard — same-task slices nest).
  void issue_entry(std::size_t slot, std::vector<UnitExtent> xs, bool front);
  void top_up();
  [[nodiscard]] ExtentOpPtr oldest_unfinished();
  dlsim::Task<void> daemon_loop();

  dlsim::Simulator* sim_;
  IoEngine* engine_;
  mem::HugePagePool* pool_;
  std::uint64_t chunk_bytes_;
  PrefetcherConfig cfg_;
  std::unique_ptr<dlsim::CpuCore> core_;
  dlsim::Event wake_;
  const ReadUnitProvider* provider_ = nullptr;
  std::shared_ptr<PrefetchArbiter> arbiter_;
  std::array<WindowShard, kWindowShards> window_shards_{
      WindowShard{"prefetch-window-0"}, WindowShard{"prefetch-window-1"},
      WindowShard{"prefetch-window-2"}, WindowShard{"prefetch-window-3"}};
  std::vector<ExtentOpPtr> draining_;  // abandoned epochs' unfinished ops
  std::size_t next_issue_ = 0;
  std::size_t demand_floor_ = 0;  // one past the highest demanded slot
  std::size_t total_units_ = 0;
  std::uint64_t ra_chunks_ = 0;  // sum of window entries' chunks
  std::uint64_t view_pinned_chunks_ = 0;  // held by live ViewBatches
  std::uint32_t window_target_;
  double share_weight_ = 1.0;  // tenant QoS weight for the arbiter split
  PrefetchStats stats_;
  std::exception_ptr daemon_error_{};
  bool shutdown_ = false;
};

}  // namespace dlfs::core

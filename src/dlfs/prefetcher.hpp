#pragma once

// Asynchronous epoch-aware prefetcher.
//
// dlfs_sequence hands every client the *entire* epoch access order up
// front, so — exactly as clairvoyant prefetching systems (NoPFS) exploit
// — there is nothing speculative about read-ahead: the next read units
// are known. The seed implementation nevertheless appended its
// "read-ahead" units to the same blocking read_extents call the consumer
// waited on, inflating bread latency instead of hiding it.
//
// The Prefetcher is a per-instance daemon coroutine (own CpuCore, like
// the SCQ copy threads) that walks the epoch order ahead of the consumer
// cursor and keeps a window of read units in flight *across* bread calls:
// while the trainer computes between breads, the daemon pumps the shared
// IoEngine and upcoming units land in huge-page chunks. bread/bread_views
// then find their units already resident (acquire() returns without
// stalling) and await only what is genuinely missing.
//
// Window policy (adaptive):
//   * the target is the read-ahead depth *beyond* the highest slot the
//     consumer has demanded so far — units of the current batch do not
//     count against it, so the daemon keeps reading ahead of the batch
//     even while the consumer is busy acquiring it;
//   * target starts at clamp(prefetch_units, min, max) and grows by one
//     on every acquire() that had to stall — a stall means the window was
//     not deep enough to cover the consumer's inter-arrival time;
//   * it shrinks when the huge-page pool cannot hold more read-ahead
//     (top_up blocked with less than `reserve_chunks` headroom), and when
//     the engine invokes the pressure reliever — pool exhausted and
//     SampleCache::evict_lru_one() found nothing to yield — in which case
//     the farthest resident, unconsumed unit is dropped and its chunks
//     returned (it will be demand-fetched when the cursor reaches it).
//
// Failure model: a prefetched unit's IoError is stored on its ExtentOp
// and rethrown by acquire() on the consumer that needs the unit — the
// daemon never dies on a bad read-ahead, and errors keep surfacing from
// bread exactly as with synchronous fetching.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "dlfs/batching.hpp"
#include "dlfs/io_engine.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace dlfs::core {

struct PrefetcherConfig {
  std::uint32_t min_units = 1;      // adaptive window lower bound
  std::uint32_t max_units = 32;     // adaptive window upper bound
  std::uint32_t initial_units = 4;  // starting window target
  // Pool chunks kept free for demand fetches and the sample cache when
  // sizing read-ahead; top_up never takes the pool below this.
  std::uint32_t reserve_chunks = 8;
};

struct PrefetchStats {
  std::uint64_t units_issued = 0;            // read-ahead + demand issues
  std::uint64_t units_resident_at_pick = 0;  // finished before acquire()
  std::uint64_t units_stalled = 0;           // acquire() had to wait
  dlsim::SimDuration stall_ns = 0;           // total wait on needed units
  std::uint32_t in_flight_hwm = 0;           // window depth high-water mark
  std::uint64_t window_grows = 0;
  std::uint64_t window_shrinks = 0;
  std::uint64_t units_dropped = 0;   // shed under pool pressure
  std::uint64_t units_reissued = 0;  // retried after a node came back
  std::uint32_t window_target = 0;   // current adaptive target
};

class Prefetcher {
 public:
  Prefetcher(dlsim::Simulator& sim, IoEngine& engine, mem::HugePagePool& pool,
             std::uint64_t chunk_bytes, PrefetcherConfig config,
             const std::string& name);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Installs a new epoch order. Unfinished read-ahead from the previous
  /// epoch keeps draining in the background (extents cannot be cancelled)
  /// and its buffers are dropped on completion.
  void start_epoch(const EpochSequence* seq);

  /// Demand-issues every unit up to and including `slot` that is not
  /// already in the window — bread calls this for its whole pick list
  /// before awaiting anything, so a batch larger than the window still
  /// fetches all its units concurrently.
  void ensure_issued_through(std::size_t slot);

  /// Hands over the buffers of unit `slot` (chunk pieces in on-device
  /// order), waiting — and pumping the engine on `consumer_core` — only
  /// if the unit is not resident yet. Consumption must be in slot order
  /// (the EpochSequence contract). Rethrows the unit's IoError, if any.
  [[nodiscard]] dlsim::Task<std::vector<mem::DmaBuffer>> acquire(
      std::size_t slot, dlsim::CpuCore& consumer_core);

  /// Engine pressure callback: drops the farthest resident unconsumed
  /// unit and shrinks the window. Returns true if chunks were freed.
  bool relieve_pressure();

  /// Forgets unit `slot` without consuming it — bread skips a unit whose
  /// storage node is unavailable and tells the window to drop it. A
  /// still-unfinished op keeps draining on the daemon (extents cannot be
  /// cancelled); resident buffers are freed immediately.
  void discard(std::size_t slot);

  /// Re-issues every unconsumed window entry whose op failed — called
  /// after a down node is revalidated, so read-ahead issued while the node
  /// was unavailable is retried instead of surfacing stale errors. Returns
  /// the number of units reissued.
  std::uint32_t reissue_failed();

  [[nodiscard]] const PrefetchStats& stats() const { return stats_; }
  [[nodiscard]] dlsim::CpuCore& core() { return *core_; }
  [[nodiscard]] std::size_t window_size() const { return window_.size(); }
  [[nodiscard]] std::uint32_t window_target() const { return window_target_; }

 private:
  struct Entry {
    std::size_t slot = 0;
    ExtentOpPtr op;
    bool pinned = false;  // a consumer is awaiting it; reliever must skip
  };

  void issue_back(std::size_t slot);
  void top_up();
  [[nodiscard]] ExtentOpPtr oldest_unfinished();
  dlsim::Task<void> daemon_loop();

  dlsim::Simulator* sim_;
  IoEngine* engine_;
  mem::HugePagePool* pool_;
  std::uint64_t chunk_bytes_;
  PrefetcherConfig cfg_;
  std::unique_ptr<dlsim::CpuCore> core_;
  dlsim::Event wake_;
  const EpochSequence* seq_ = nullptr;
  std::deque<Entry> window_;  // slot order; front = next to be consumed
  std::vector<ExtentOpPtr> draining_;  // abandoned epochs' unfinished ops
  std::size_t next_issue_ = 0;
  std::size_t demand_floor_ = 0;  // one past the highest demanded slot
  std::size_t total_units_ = 0;
  std::uint32_t window_target_;
  PrefetchStats stats_;
  std::exception_ptr daemon_error_{};
  bool shutdown_ = false;
};

}  // namespace dlfs::core

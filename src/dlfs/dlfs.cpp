#include "dlfs/dlfs.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "common/units.hpp"
#include "dataset/record_file.hpp"

namespace dlfs::core {

namespace {
using namespace dlfs::byte_literals;

/// Spans of a [offset, offset+len) window across an ordered list of
/// fixed-size pieces (the chunk-split buffers of one read unit).
std::vector<std::span<const std::byte>> window_views(
    const std::vector<mem::DmaBuffer>& pieces, std::uint64_t piece_size,
    std::uint64_t offset, std::uint32_t len) {
  std::vector<std::span<const std::byte>> out;
  std::uint64_t pos = offset;
  std::uint32_t left = len;
  while (left > 0) {
    const std::size_t idx = static_cast<std::size_t>(pos / piece_size);
    const std::uint64_t in_piece = pos % piece_size;
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, piece_size - in_piece));
    out.push_back(pieces.at(idx).span().subspan(in_piece, n));
    pos += n;
    left -= n;
  }
  return out;
}

/// Piece lengths of a `len`-byte extent split at the chunk size — the
/// split start_extents performs; prefetched buffers come back in exactly
/// these pieces.
std::vector<std::uint32_t> piece_lens_of(std::uint32_t len,
                                         std::uint64_t chunk_bytes) {
  std::vector<std::uint32_t> lens;
  std::uint32_t left = len;
  while (left > 0) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(left, chunk_bytes));
    lens.push_back(n);
    left -= n;
  }
  return lens;
}

/// Metadata-RPC reply payload for the sharded directory: one packed
/// entry plus its id-index row — what the owning node returns for a
/// (positive or negative) lookup.
constexpr std::uint64_t kLookupReplyBytes =
    SampleDirectory::kEntryBytes + SampleDirectory::kIdRowBytes;

/// True when the stored extent error is a node-level fault (survivable:
/// skip the samples); false for media and unknown errors (fatal).
bool is_node_fault(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const IoError& e) {
    return e.kind != IoErrorKind::kMedia;
  } catch (...) {
    return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// DlfsFleet

DlfsFleet::DlfsFleet(cluster::Cluster& cluster, cluster::Pfs& pfs,
                     const dataset::Dataset& ds, DlfsConfig config,
                     std::vector<hw::NodeId> client_nodes,
                     std::vector<hw::NodeId> storage_nodes)
    : cluster_(&cluster),
      pfs_(&pfs),
      dataset_(&ds),
      config_(config),
      client_nodes_(std::move(client_nodes)),
      storage_nodes_(std::move(storage_nodes)),
      directory_(storage_nodes_.empty() ? cluster.size()
                                        : static_cast<std::uint32_t>(
                                              storage_nodes_.size())),
      upload_barrier_(cluster.simulator(),
                      storage_nodes_.empty() ? cluster.size()
                                             : storage_nodes_.size()),
      allgather_barrier_(cluster.simulator(),
                         storage_nodes_.empty() ? cluster.size()
                                                : storage_nodes_.size()),
      ready_barrier_(cluster.simulator(), 1) {
  if (config_.tenant.governor) {
    tenant_ = config_.tenant.governor->register_tenant(
        TenantQos{config_.tenant.name, config_.tenant.weight,
                  config_.tenant.priority, config_.tenant.max_inflight});
  }
  if (client_nodes_.empty()) {
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      client_nodes_.push_back(i);
    }
  }
  if (storage_nodes_.empty()) {
    for (std::uint32_t i = 0; i < cluster.size(); ++i) {
      storage_nodes_.push_back(i);
    }
  }
  ready_barrier_ = cluster::Barrier(cluster.simulator(), participants());

  // Deterministic layout: every sample is owned by hash(name) % S; shards
  // pack samples back-to-back from device offset 0 in dataset order —
  // either raw (one extent per sample) or grouped into TFRecord-style
  // batched files of record_file_samples each (8-byte header per record;
  // the sample entry points at the payload, so the directory gives
  // direct access to any sample inside a batched file).
  const std::size_t n = dataset_->num_samples();
  layout_.resize(n);
  shard_samples_.resize(storage_nodes_.size());
  record_files_.resize(storage_nodes_.size());
  name_to_id_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& spec = dataset_->sample(i);
    const std::uint16_t slot = directory_.owner_of(spec.name);
    shard_samples_[slot].push_back(static_cast<std::uint32_t>(i));
    name_to_id_.emplace(hash64(spec.name), static_cast<std::uint32_t>(i));
  }
  // device_base lets several fleets (tenants) pack disjoint regions on the
  // same physical devices; each fleet's shards start at its own base.
  std::vector<std::uint64_t> next_offset(storage_nodes_.size(),
                                         config_.device_base);
  const std::uint32_t per_file = config_.record_file_samples;
  for (std::uint16_t slot = 0; slot < storage_nodes_.size(); ++slot) {
    auto& files = record_files_[slot];
    for (std::size_t k = 0; k < shard_samples_[slot].size(); ++k) {
      const std::uint32_t id = shard_samples_[slot][k];
      const std::uint32_t size = dataset_->sample(id).size;
      if (per_file > 0) {
        if (k % per_file == 0) {
          files.push_back(RecordFileInfo{
              "rf" + std::to_string(slot) + "_" +
                  std::to_string(files.size()),
              next_offset[slot], 0, {}});
        }
        next_offset[slot] += 8;  // record header
        files.back().sample_ids.push_back(id);
      }
      layout_[id] = SampleLocation{slot, next_offset[slot], size};
      next_offset[slot] += size;
      if (per_file > 0) {
        auto& f = files.back();
        const std::uint64_t len = next_offset[slot] - f.offset;
        if (len > core::SampleEntry::kMaxLen) {
          throw std::invalid_argument(
              "record_file_samples groups more than 8 MiB per file; the "
              "23-bit length field cannot address it");
        }
        f.len = static_cast<std::uint32_t>(len);
      }
    }
  }
  // Replica placement (replication > 1): sample i's copy r lives on
  // hash(name ‖ r) % S, skipping nodes that already hold one; a bounded
  // linear fallback guarantees k distinct nodes when the hash keeps
  // colliding. Replica bytes are always raw per-sample extents (no
  // record headers — replica reads return exactly the payload) appended
  // after each slot's primary region, so primary offsets — and therefore
  // every healthy run — stay byte-identical to replication = 1.
  const std::uint32_t reps = std::min<std::uint32_t>(
      std::max<std::uint32_t>(config_.fault.replication.k, 1),
      static_cast<std::uint32_t>(storage_nodes_.size()));
  effective_reps_ = reps;
  if (reps > 1) {
    replica_layout_.resize(n);
    shard_replicas_.resize(storage_nodes_.size());
    const std::uint32_t hash_probes = 8 * reps + 32;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& spec = dataset_->sample(i);
      const std::uint16_t primary = layout_[i].nid;
      std::vector<std::uint16_t> chosen{primary};
      for (std::uint32_t r = 1; chosen.size() < reps; ++r) {
        const auto cand = static_cast<std::uint16_t>(
            r <= hash_probes
                ? hash64(std::string(spec.name) + '\x1f' +
                         std::to_string(r)) %
                      storage_nodes_.size()
                : (primary + r) % storage_nodes_.size());
        if (std::find(chosen.begin(), chosen.end(), cand) != chosen.end()) {
          continue;
        }
        chosen.push_back(cand);
        const std::uint64_t off = next_offset[cand];
        next_offset[cand] += layout_[i].len;
        shard_replicas_[cand].push_back(
            ReplicaRow{static_cast<std::uint32_t>(i), off});
        replica_layout_[i].push_back(RouteHop{cand, off});
      }
    }
  }
  for (std::uint16_t s = 0; s < storage_nodes_.size(); ++s) {
    const auto cap =
        cluster_->node(storage_nodes_[s]).device().capacity();
    if (next_offset[s] > cap) {
      throw std::invalid_argument(
          "dataset shard exceeds device capacity on storage slot " +
          std::to_string(s));
    }
  }
  plan_ = std::make_unique<BatchPlan>(layout_, config_.chunk_bytes,
                                      config_.batching);
  targets_.resize(storage_nodes_.size());
  instances_.resize(client_nodes_.size());
  // Self-healing replication: remember where each slot's data region ends
  // so repair extents can be allocated after it, and start with no slot
  // declared dead.
  declared_dead_.assign(storage_nodes_.size(), 0);
  repair_next_offset_ = std::move(next_offset);
  if (config_.peer_cache.enabled) {
    // Cooperative peer cache: one cluster-wide consistent-hash directory
    // of advertised residency. The per-node member indexes grow lazily
    // (peer_index_for) as instances mount, like the prefetch arbiters.
    peer_directory_ = std::make_shared<PeerCacheDirectory>(
        config_.peer_cache, static_cast<std::uint32_t>(client_nodes_.size()));
  }
}

DlfsFleet::~DlfsFleet() = default;

std::optional<std::uint32_t> DlfsFleet::sample_id_of(
    std::string_view name) const {
  auto it = name_to_id_.find(hash64(name));
  if (it == name_to_id_.end()) return std::nullopt;
  return it->second;
}

dlsim::Task<void> DlfsFleet::mount_participant(std::uint32_t p) {
  auto& sim = cluster_->simulator();

  // --- storage role: upload shard, build directory slice ------------------
  if (p < storage_nodes_.size()) {
    cluster::Node& node = cluster_->node(storage_nodes_[p]);
    const auto& ids = shard_samples_[p];
    std::uint64_t shard_bytes = 0;
    for (auto id : ids) shard_bytes += layout_[id].len;
    // Replica rows hosted on this slot ride the same PFS stream.
    static const std::vector<ReplicaRow> kNoReplicas;
    const auto& replicas =
        p < shard_replicas_.size() ? shard_replicas_[p] : kNoReplicas;
    for (const auto& row : replicas) shard_bytes += layout_[row.sample_id].len;

    // One streamed PFS request for the whole shard.
    co_await pfs_->stream_samples(ids.empty() ? 0 : ids.front(),
                                  ids.size() + replicas.size(), shard_bytes);

    // Write the shard to the local device in 1 MiB segments, pipelined at
    // queue depth 8. Contents are generated from the dataset's content
    // function into a staging buffer (functionally real bytes).
    {
      auto qp = node.device().create_qpair(8);
      constexpr std::uint64_t kSegment = 1_MiB;
      std::vector<std::byte> staging(kSegment);
      std::uint64_t seg_start = 0;  // device offset of the staged segment
      std::uint64_t seg_fill = 0;
      auto flush = [&]() -> dlsim::Task<void> {
        if (seg_fill == 0) co_return;
        while (qp->outstanding() >= qp->depth()) {
          co_await qp->wait_for_completion();
          (void)qp->poll();
        }
        const auto st =
            qp->submit(hw::IoOp::kWrite, seg_start,
                       std::span<std::byte>(staging.data(), seg_fill), 0);
        if (st != hw::IoStatus::kOk) {
          throw std::runtime_error("device write failed during mount");
        }
        seg_start += seg_fill;
        seg_fill = 0;
      };
      auto emit = [&](std::span<const std::byte> bytes) -> dlsim::Task<void> {
        std::size_t done = 0;
        while (done < bytes.size()) {
          if (seg_fill == kSegment) co_await flush();
          const std::uint64_t ncopy = std::min<std::uint64_t>(
              bytes.size() - done, kSegment - seg_fill);
          std::memcpy(staging.data() + seg_fill, bytes.data() + done, ncopy);
          seg_fill += ncopy;
          done += ncopy;
        }
      };
      std::vector<std::byte> scratch;
      for (auto id : ids) {
        const SampleLocation& loc = layout_[id];
        scratch.resize(loc.len);
        dataset_->fill_content(id, 0, scratch);
        if (config_.record_file_samples > 0) {
          // TFRecord-style header: length | crc32(payload).
          std::array<std::byte, 8> header;
          dataset::write_record_header(header, loc.len,
                                       dataset::crc32(scratch));
          co_await emit(header);
        }
        co_await emit(scratch);
      }
      // Replica region: the rows were assigned contiguous offsets right
      // after the primary region in this exact order, so the sequential
      // emit stream lands each copy at its planned offset.
      for (const auto& row : replicas) {
        scratch.resize(layout_[row.sample_id].len);
        dataset_->fill_content(row.sample_id, 0, scratch);
        co_await emit(scratch);
      }
      co_await flush();
      while (qp->outstanding() > 0) {
        co_await qp->wait_for_completion();
        (void)qp->poll();
      }
    }

    // Build this node's AVL slice (host-side insert; ~300 ns/sample of
    // simulated CPU — tree construction is pointer chasing + rebalance).
    for (auto id : ids) {
      const SampleLocation& loc = layout_[id];
      directory_.insert(id, dataset_->sample(id).name, loc.nid, loc.offset,
                        loc.len);
      // The primary owner registers the sample's replica hops (its
      // insert just created the id-index row they attach to); every
      // registration lands before the upload barrier, so the allgather
      // slices below already account the replica rows.
      if (!replica_layout_.empty()) {
        for (const RouteHop& h : replica_layout_[id]) {
          directory_.add_replica(id, h.nid, h.offset);
        }
      }
    }
    // File-oriented entries for the batched record files on this node.
    for (const auto& f : record_files_[p]) {
      directory_.insert_file(f.name, p, f.offset, f.len);
    }
    co_await node.core(0).compute(
        300ull * std::max<std::size_t>(ids.size() + record_files_[p].size(),
                                       1));

    co_await upload_barrier_.arrive();
    if (config_.directory.mode == DirectoryMode::kSharded) {
      // Sharded mount: only the partition map (one fixed-size row per
      // node) crosses the fabric; shard trees stay on their owners and
      // foreign samples resolve lazily through the metadata RPC.
      co_await cluster::ring_allgather_rows(
          sim, cluster_->fabric(), allgather_barrier_, p,
          static_cast<std::uint32_t>(storage_nodes_.size()),
          DirectoryView::kPartitionRowBytes);
    } else {
      // Full mount: all-gather every directory slice (data is shared
      // in-process; the ring models the communication time of moving
      // every slice to every node).
      std::vector<std::uint64_t> slice_bytes(storage_nodes_.size());
      for (std::uint16_t s = 0; s < storage_nodes_.size(); ++s) {
        slice_bytes[s] = directory_.shard_bytes(s);
      }
      co_await cluster::ring_allgather(sim, cluster_->fabric(),
                                       allgather_barrier_, p, slice_bytes);
    }
  }

  co_await ready_barrier_.arrive();

  // --- client role: build the instance and its queues ---------------------
  if (p < client_nodes_.size()) {
    cluster::Node& node = cluster_->node(client_nodes_[p]);
    // One I/O thread per client, pinned to the next free core of its node.
    // client_core_base shifts the whole range so co-located fleets
    // (multi-tenant runs) do not time-share a core.
    std::size_t ordinal = config_.client_core_base;
    for (std::uint32_t q = 0; q < p; ++q) {
      if (client_nodes_[q] == client_nodes_[p]) ++ordinal;
    }
    auto inst = std::unique_ptr<DlfsInstance>(
        new DlfsInstance(*this, p, node, node.core(ordinal)));
    for (std::uint16_t s = 0; s < storage_nodes_.size(); ++s) {
      cluster::Node& snode = cluster_->node(storage_nodes_[s]);
      std::unique_ptr<spdk::IoQueue> q;
      if (storage_nodes_[s] == client_nodes_[p]) {
        inst->driver_->attach(snode.device());
        q = inst->driver_->create_io_queue(snode.device(),
                                           config_.queue_depth);
      } else {
        if (!targets_[s]) {
          targets_[s] = std::make_unique<spdk::NvmfTarget>(
              sim, cluster_->fabric(), storage_nodes_[s], snode.device());
        }
        q = targets_[s]->connect(client_nodes_[p], *inst->pool_,
                                 config_.queue_depth, config_.fault.nvmf);
      }
      inst->engine_->attach_target(s, std::move(q));
    }
    instances_[p] = std::move(inst);
  }
  mounted_ = true;
}

void DlfsFleet::mount(const MountOptions& opts) {
  dlsim::Simulator& sim = cluster_->simulator();
  for (std::uint32_t p = 0; p < participants(); ++p) {
    sim.spawn(mount_participant(p));
  }
  if (!opts.run_to_completion) return;
  sim.run();
  sim.rethrow_failures();
  if (!mounted_) {
    throw std::runtime_error(
        "DlfsFleet::mount: collective did not complete (a participant "
        "blocked before the ready barrier)");
  }
}

// ---------------------------------------------------------------------------
// DlfsInstance

DlfsInstance::DlfsInstance(DlfsFleet& fleet, std::uint32_t client_idx,
                           cluster::Node& node, dlsim::CpuCore& core)
    : fleet_(&fleet),
      client_idx_(client_idx),
      node_(&node),
      io_core_(&core) {
  const DlfsConfig& cfg = fleet.config_;
  pool_ = std::make_unique<mem::HugePagePool>(cfg.pool_bytes,
                                              cfg.chunk_bytes);
  pool_->set_scribble_on_free(cfg.scribble_on_free);
  cache_ = std::make_unique<SampleCache>(*pool_, cfg.cache_chunks,
                                         fleet.dataset_->num_samples());
  driver_ = std::make_unique<spdk::NvmeDriver>(node.simulator(), *pool_);
  IoEngineConfig ecfg;
  ecfg.chunk_bytes = cfg.chunk_bytes;
  ecfg.copy_threads = cfg.copy_threads;
  ecfg.retry_backoff = cfg.fault.io_retry_backoff;
  ecfg.reprobe_interval = cfg.fault.reprobe_interval;
  engine_ = std::make_unique<IoEngine>(node.simulator(), *pool_, *cache_,
                                       cfg.calibration, ecfg);
  // Multi-tenant QoS: every queue this instance owns submits through the
  // fleet's tenant handle, so one governor arbitrates all of the job's
  // traffic against co-located jobs.
  engine_->set_tenant(fleet.tenant_);
  if (cfg.directory.mode == DirectoryMode::kSharded) {
    // Resident shards are the slots co-located with this client's node
    // (their trees are in local memory anyway); everything else resolves
    // lazily through the owner's metadata RPC.
    std::vector<std::uint8_t> resident(fleet.storage_nodes_.size(), 0);
    for (std::size_t s = 0; s < fleet.storage_nodes_.size(); ++s) {
      if (fleet.storage_nodes_[s] == fleet.client_nodes_[client_idx]) {
        resident[s] = 1;
      }
    }
    view_ = std::make_unique<DirectoryView>(fleet.directory_, cfg.directory,
                                            std::move(resident));
  }
  // Node fault domain: when a storage node's reconnect budget is
  // exhausted the engine reports it down and the shared directory's
  // wholesale V bit clears, so every path fails over (or skips) its
  // samples; a successful reprobe — epoch-boundary or the mid-epoch
  // probe daemon — restores it and retries read-ahead that failed while
  // the node was down.
  engine_->set_node_down_handler([this](std::uint16_t nid, bool up) {
    fleet_->directory_.set_node_available(nid, up);
    if (up && prefetcher_) (void)prefetcher_->reissue_failed();
    // Failure detector + late-rejoin reconciliation ride the same
    // transition (suspect timer on down, undeclare on up).
    on_node_transition(nid, up);
  });
  if (cfg.fault.replication.k > 1) {
    // Background re-replication: one daemon per instance, parked on
    // repair_wake_ until a permanent-loss declaration (or a rejoin)
    // creates work. Its own core — repairs never steal frontend cycles;
    // the traffic budget bounds how hard they compete for the fabric.
    repair_wake_ = std::make_unique<dlsim::Event>(node.simulator());
    repair_core_ = std::make_unique<dlsim::CpuCore>(
        node.simulator(), "dlfs-repair-" + std::to_string(client_idx));
    node.simulator().spawn_daemon(
        repair_loop(repair_alive_),
        "dlfs-repair-" + std::to_string(client_idx));
  }
  if (cfg.prefetch.enabled) {
    prefetcher_ = std::make_unique<Prefetcher>(
        node.simulator(), *engine_, *pool_, cfg.chunk_bytes, cfg.prefetch,
        "dlfs-prefetch-" + std::to_string(client_idx));
    engine_->set_pressure_reliever(
        [this] { return prefetcher_->relieve_pressure(); });
    if (fleet.tenant_) {
      // The arbiter splits a node's prefetch budget by weight × window
      // target, so a tenant's read-ahead share follows its QoS weight.
      prefetcher_->set_share_weight(
          TenantGovernor::effective_weight(fleet.tenant_->qos()));
    }
    if (cfg.prefetch.shared_arbiter) {
      arbiter_ = fleet.arbiter_for(fleet.client_nodes_[client_idx]);
      prefetcher_->set_arbiter(arbiter_);
    }
  }
  if (cfg.peer_cache.enabled) {
    // Cooperative peer cache: join the node's member index so co-located
    // instances can serve out of this cache, and mirror V-bit flips into
    // the cluster directory so remote ones can find it. The listener runs
    // inside cache slices, so it must stay suspension-free — directory
    // updates are plain bookkeeping (the model's stand-in for residency
    // deltas piggybacked on existing metadata traffic).
    peer_index_ = fleet.peer_index_for(fleet.client_nodes_[client_idx]);
    peer_index_->register_member(client_idx_, cache_.get(), io_core_);
    cache_->set_residency_listener(
        [this, pnode = static_cast<std::uint16_t>(
                   fleet.client_nodes_[client_idx])](std::size_t id,
                                                     bool resident) {
          PeerCacheDirectory* dir = fleet_->peer_directory_.get();
          if (dir == nullptr) return;
          if (resident) {
            dir->advertise(client_idx_, pnode, id,
                           fleet_->layout_[id].len);
          } else {
            dir->retract(client_idx_, id);
          }
        });
  }
}

std::shared_ptr<PrefetchArbiter> DlfsFleet::arbiter_for(hw::NodeId nid) {
  auto& a = arbiters_[nid];
  if (!a) a = std::make_shared<PrefetchArbiter>();
  return a;
}

std::shared_ptr<PeerCacheIndex> DlfsFleet::peer_index_for(hw::NodeId nid) {
  auto& idx = peer_indexes_[nid];
  if (!idx) idx = std::make_shared<PeerCacheIndex>();
  return idx;
}

// ---------------------------------------------------------------------------
// Self-healing replication (fleet side)

void DlfsFleet::declare_dead(std::uint16_t slot) {
  if (slot >= storage_nodes_.size()) {
    throw std::invalid_argument("declare_dead: storage slot out of range");
  }
  if (declared_dead_[slot] != 0) return;
  declared_dead_[slot] = 1;
  // Atomic route retirement: one call, no suspension — route snapshots
  // already issued are unaffected, every new issue stops seeing the slot.
  (void)directory_.drop_replicas_on(slot);
  // A declaration can come from a test before any transport transition
  // cleared the V bit; reads must stop targeting the slot either way.
  directory_.set_node_available(slot, false);
  for (auto& inst : instances_) {
    if (inst) inst->note_declared_dead();
  }
}

void DlfsFleet::undeclare(std::uint16_t slot) {
  if (slot >= storage_nodes_.size()) {
    throw std::invalid_argument("undeclare: storage slot out of range");
  }
  if (declared_dead_[slot] == 0) return;
  declared_dead_[slot] = 0;
  // Fresh rejoin: the slot's primary shard serves again (the dataset is
  // immutable, so its on-device bytes are still valid) and it is a repair
  // target again. Hops dropped at declaration stay dropped — repair
  // re-converges instead; samples repaired meanwhile are merely
  // over-replicated, which is harmless for an immutable dataset. Reads
  // still require the per-instance transport to agree the node answers
  // (node_up() ANDs the engine state with this V bit).
  directory_.set_node_available(slot, true);
  for (auto& inst : instances_) {
    if (inst) inst->note_rejoined();
  }
}

std::uint32_t DlfsFleet::live_copies(std::uint32_t sample_id) const {
  std::uint32_t live = declared_dead_[layout_[sample_id].nid] == 0 ? 1u : 0u;
  for (const RouteHop& h : directory_.replicas(sample_id)) {
    if (declared_dead_[h.nid] == 0) ++live;
  }
  return live;
}

std::vector<std::uint32_t> DlfsFleet::repair_backlog() const {
  std::vector<std::uint32_t> out;
  if (effective_reps_ <= 1) return out;
  const std::uint32_t alive_slots =
      static_cast<std::uint32_t>(storage_nodes_.size()) - num_declared_dead();
  const std::uint32_t target = std::min(effective_reps_, alive_slots);
  for (std::uint32_t id = 0; id < layout_.size(); ++id) {
    if (live_copies(id) < target) out.push_back(id);
  }
  return out;
}

std::optional<RouteHop> DlfsFleet::claim_repair_target(
    std::uint32_t sample_id, const std::function<bool(std::uint16_t)>& usable) {
  const auto& spec = dataset_->sample(sample_id);
  const SampleLocation& loc = layout_[sample_id];
  const auto num_slots = static_cast<std::uint32_t>(storage_nodes_.size());
  // The mount-time probe chain, continued: replica r of a sample lives at
  // hash(name ‖ r) % S with a linear tail. Walking the same chain here
  // (skipping dead/occupied/unusable slots) makes the replacement
  // deterministic — every instance, and every rerun of the same seed,
  // picks the same node for the same loss.
  const std::uint32_t hash_probes = 8 * effective_reps_ + 32;
  for (std::uint32_t r = 1; r <= hash_probes + num_slots; ++r) {
    const auto cand = static_cast<std::uint16_t>(
        r <= hash_probes
            ? hash64(std::string(spec.name) + '\x1f' + std::to_string(r)) %
                  num_slots
            : (loc.nid + r) % num_slots);
    if (declared_dead_[cand] != 0 || cand == loc.nid) continue;
    bool holds = false;
    for (const RouteHop& h : directory_.replicas(sample_id)) {
      if (h.nid == cand) {
        holds = true;
        break;
      }
    }
    if (holds) continue;
    if (usable && !usable(cand)) continue;
    const std::uint64_t off = repair_next_offset_[cand];
    if (off + loc.len >
            cluster_->node(storage_nodes_[cand]).device().capacity() ||
        off > SampleEntry::kMaxOffset) {
      continue;  // slot full; keep probing
    }
    repair_next_offset_[cand] += loc.len;
    return RouteHop{cand, off};
  }
  return std::nullopt;
}

void DlfsFleet::publish_repair(std::uint32_t sample_id, RouteHop hop) {
  directory_.add_replica(sample_id, hop.nid, hop.offset);
}

DlfsInstance::~DlfsInstance() {
  // Invalidate the repair daemon and any pending death timers. Do NOT set
  // repair_wake_: a frame parked on it would resume into a destroyed
  // member; the alive token (checked after every suspension) is the only
  // teardown signal.
  *repair_alive_ = false;
  // Leave the cooperative cache before members start dying: co-located
  // instances must stop probing this cache, and advertised residency
  // must vanish from the cluster directory (the cache tears entries down
  // without firing the listener).
  if (peer_index_) peer_index_->unregister_member(client_idx_);
  if (fleet_->peer_directory_) {
    fleet_->peer_directory_->retract_all(client_idx_);
  }
  if (cache_) cache_->set_residency_listener({});
}

dlsim::Task<void> DlfsInstance::charge_lookup() {
  lookup_time_total_ += fleet_->config_.calibration.dlfs.dir_lookup;
  co_await io_core_->compute(fleet_->config_.calibration.dlfs.dir_lookup);
}

dlsim::Task<void> DlfsInstance::charge_remote_lookup(std::uint16_t slot) {
  const dlsim::SimDuration walk = fleet_->config_.calibration.dlfs.dir_lookup;
  lookup_time_total_ += walk;
  spdk::NvmfTarget* t =
      slot < fleet_->targets_.size() ? fleet_->targets_[slot].get() : nullptr;
  if (t != nullptr && t->accepting()) {
    const bool replied = co_await t->metadata_rpc(
        fleet_->client_nodes_[client_idx_], walk, kLookupReplyBytes);
    if (replied) co_return;
  }
  // No transport path (the owner slot is co-located with another client
  // and never grew a target, the target is down, or a leg dropped): fall
  // back to a local-rate walk so lookups never stall on a fault — the
  // read path's skip/failover semantics decide the sample's fate.
  co_await io_core_->compute(walk);
}

dlsim::Task<const SampleEntry*> DlfsInstance::resolve_id_sharded(
    std::uint32_t sample_id) {
  DirectoryView::Resolution r = view_->resolve_id(sample_id);
  if (r.served == DirectoryView::Served::kRemote) {
    co_await charge_remote_lookup(r.owner_slot);
    const SampleEntry* e = fleet_->directory_.lookup_id(sample_id);
    view_->complete_remote(r, e);
    co_return e;
  }
  // Resident shards did the real tree walk inside resolve_id; cache hits
  // charge the same local rate (the RPC round trip is the saving, not
  // the probe).
  co_await charge_lookup();
  co_return r.entry;
}

std::uint64_t DlfsInstance::directory_bytes() const {
  return view_ ? view_->resident_bytes() : fleet_->full_directory_bytes();
}

dlsim::Task<void> DlfsInstance::maybe_reprobe() {
  if (!reprobe_pending_) co_return;
  reprobe_pending_ = false;
  if (engine_->nodes_down() == 0) co_return;
  const std::uint32_t recovered =
      co_await engine_->reprobe_down_nodes(*io_core_);
  // Read-ahead issued while the node was down carries baked-in
  // failures; retry it now that the node answers again.
  if (recovered > 0 && prefetcher_) (void)prefetcher_->reissue_failed();
}

std::vector<RouteHop> DlfsInstance::sample_routes(
    std::uint32_t sample_id) const {
  return fleet_->directory_.replicas(sample_id);
}

bool DlfsInstance::node_up(std::uint16_t nid) const {
  return engine_->node_available(nid) &&
         fleet_->directory_.node_available(nid);
}

bool DlfsInstance::sample_reachable(std::uint32_t sample_id) const {
  if (node_up(fleet_->layout_[sample_id].nid)) return true;
  for (const RouteHop& h : fleet_->directory_.replicas(sample_id)) {
    if (node_up(h.nid)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Cooperative peer cache (read side)

bool DlfsInstance::peer_resident(std::uint32_t sample_id) const {
  if (!fleet_->config_.peer_cache.enabled) return false;
  if (peer_index_ != nullptr &&
      peer_index_->find_holder(sample_id, client_idx_) != nullptr) {
    return true;
  }
  PeerCacheDirectory* dir = fleet_->peer_directory_.get();
  return dir != nullptr && dir->find(sample_id, client_idx_).found;
}

dlsim::Task<bool> DlfsInstance::try_peer_read(std::uint32_t sample_id,
                                              std::uint32_t len,
                                              std::byte* dst) {
  if (!fleet_->config_.peer_cache.enabled) co_return false;
  const DlfsCosts& costs = fleet_->config_.calibration.dlfs;

  // Intra-node first: a co-located instance's resident copy is one pin
  // plus one DRAM copy away — no fabric, and no tenant admission (same
  // treatment as own-cache hits: host-memory copies never compete with
  // other tenants for the devices or the wire).
  if (peer_index_ != nullptr) {
    const PeerCacheIndex::Member* m =
        peer_index_->find_holder(sample_id, client_idx_);
    if (m != nullptr) {
      auto views = m->cache->pin(sample_id);
      if (!views.empty()) {
        co_await io_core_->compute(costs.peer_serve);
        CopyJob job;
        job.views = std::move(views);
        job.dst = dst;
        co_await engine_->run_copy_inline(*io_core_, std::move(job));
        m->cache->unpin(sample_id);
        ++peer_hits_local_;
        peer_bytes_ += len;
        co_return true;
      }
    }
  }

  // Cross-node: ask the sample's consistent-hash home for a holder, then
  // pull the bytes from the holder's DRAM over the fabric. Every refusal
  // along the way (no holder, dropped leg, raced eviction) unwinds to a
  // miss; the caller falls back to the normal replica read path.
  PeerCacheDirectory* dir = fleet_->peer_directory_.get();
  if (dir == nullptr) {
    ++peer_misses_;
    co_return false;
  }
  hw::Fabric& fabric = fleet_->cluster_->fabric();
  const hw::NodeId me = fleet_->client_nodes_[client_idx_];
  const std::uint32_t home = dir->home_client(sample_id);
  const hw::NodeId home_node = fleet_->client_nodes_[home];
  if (home != client_idx_) {
    // Request hop (skipped when this client is the home — the directory
    // slice is then local memory).
    const bool asked =
        co_await fabric.send(me, home_node, hw::kControlMessageBytes);
    if (!asked) {
      ++peer_misses_;
      co_return false;
    }
  }
  const PeerCacheDirectory::Holder h = dir->find(sample_id, client_idx_);
  if (!h.found) {
    if (home != client_idx_) {
      // Miss reply from the home.
      co_await fabric.transfer(home_node, me, hw::kControlMessageBytes);
    }
    ++peer_misses_;
    co_return false;
  }
  const hw::NodeId holder_node = fleet_->client_nodes_[h.client];
  if (h.client != home) {
    // Forward hop: the home passes the request on to the holder
    // (loopback when they share a node).
    const bool forwarded =
        co_await fabric.send(home_node, holder_node, hw::kControlMessageBytes);
    if (!forwarded) {
      ++peer_misses_;
      co_return false;
    }
  }
  // Pin the holder's entry. The fabric hops above suspended, so the
  // holder may have evicted (and retracted) meanwhile — an empty pin is
  // that race, answered with a miss reply.
  PeerCacheIndex* hidx = fleet_->peer_index(holder_node);
  const PeerCacheIndex::Member* m =
      hidx != nullptr ? hidx->member_of(h.client) : nullptr;
  std::vector<std::span<const std::byte>> views;
  if (m != nullptr) views = m->cache->pin(sample_id);
  if (views.empty()) {
    co_await fabric.transfer(holder_node, me, hw::kControlMessageBytes);
    ++peer_misses_;
    co_return false;
  }
  // The bulk transfer is charged to the requesting tenant exactly like a
  // device read of the same bytes — a peer read must not let a capped
  // job dodge its QoS share.
  if (fleet_->tenant_) {
    while (!fleet_->tenant_->try_admit(len)) {
      co_await io_core_->compute(costs.poll_iteration);
    }
  }
  // Holder-side serve (verbs recv + RDMA post) on the holder's core; the
  // data path itself is one-sided, so there is no holder-side copy.
  co_await m->core->compute(costs.peer_serve);
  const bool delivered = co_await fabric.send(holder_node, me, len);
  if (!delivered) {
    m->cache->unpin(sample_id);
    if (fleet_->tenant_) fleet_->tenant_->on_complete(len);
    ++peer_misses_;
    co_return false;
  }
  // Requester-side placement of the landed bytes (real memcpy: delivery
  // stays byte-identical to the device path).
  CopyJob job;
  job.views = std::move(views);
  job.dst = dst;
  co_await engine_->run_copy_inline(*io_core_, std::move(job));
  m->cache->unpin(sample_id);
  if (fleet_->tenant_) fleet_->tenant_->on_complete(len);
  ++peer_hits_remote_;
  peer_bytes_ += len;
  co_return true;
}

// ---------------------------------------------------------------------------
// Self-healing replication (instance side)

void DlfsInstance::note_declared_dead() {
  ++nodes_declared_dead_;
  if (repair_wake_) repair_wake_->set();
}

void DlfsInstance::note_rejoined() {
  // A rejoined slot is a fresh repair target; re-walk the backlog.
  if (repair_wake_) repair_wake_->set();
}

void DlfsInstance::on_node_transition(std::uint16_t nid, bool up) {
  if (down_epoch_.size() <= nid) down_epoch_.resize(nid + 1, 0);
  ++down_epoch_[nid];
  if (!up) {
    // Suspect: arm the one-shot promotion timer. A transient fault heals
    // before it fires (the transition bumps the epoch and disarms it).
    const dlsim::SimDuration deadline =
        fleet_->config_.fault.replication.declare_dead_after;
    if (deadline > 0 && !fleet_->declared_dead(nid)) {
      node_->simulator().spawn_daemon(
          death_timer(nid, down_epoch_[nid], repair_alive_),
          "dlfs-death-timer");
    }
    return;
  }
  // Up transition of a declared-dead node: late rejoin — reconcile it as
  // a fresh node.
  if (fleet_->declared_dead(nid)) fleet_->undeclare(nid);
}

dlsim::Task<void> DlfsInstance::death_timer(std::uint16_t nid,
                                            std::uint64_t epoch,
                                            std::shared_ptr<bool> alive) {
  co_await node_->simulator().delay(
      fleet_->config_.fault.replication.declare_dead_after);
  if (!*alive) co_return;
  // Promote only if this exact outage is still in progress: any
  // transition meanwhile bumped the epoch — the node bounced, which is a
  // transient link fault, not permanent loss.
  if (nid >= down_epoch_.size() || down_epoch_[nid] != epoch) co_return;
  if (node_up(nid)) co_return;
  fleet_->declare_dead(nid);
}

dlsim::Task<void> DlfsInstance::repair_loop(std::shared_ptr<bool> alive) {
  for (;;) {
    {
      // Park until membership changes. The wait is hoisted to its own
      // statement (never inside a condition) per the repo's coroutine
      // conventions.
      dlsim::Task<void> parked = repair_wake_->wait();
      co_await std::move(parked);
    }
    if (!*alive) co_return;
    repair_wake_->reset();
    // Walk the backlog until a full pass makes no progress. Samples that
    // cannot be repaired right now — no live source, no viable target,
    // or a transient op failure — wait for the next membership
    // transition: every transition sets the wake, so parking loses
    // nothing, and a parked daemon holds no timers, so the simulator can
    // quiesce once churn stops.
    bool progress = true;
    while (progress) {
      progress = false;
      const std::vector<std::uint32_t> backlog = fleet_->repair_backlog();
      for (const std::uint32_t id : backlog) {
        if (fleet_->repair_claims_.contains(id)) continue;
        fleet_->repair_claims_.insert(id);
        const bool repaired = co_await repair_one(id, alive);
        if (!*alive) co_return;  // fleet_ may be mid-destruction
        fleet_->repair_claims_.erase(id);
        if (repaired) progress = true;
      }
    }
  }
}

dlsim::Task<bool> DlfsInstance::repair_one(std::uint32_t sample_id,
                                           std::shared_ptr<bool> alive) {
  // Recheck under-replication at run time: the backlog snapshot may be
  // stale by the time this sample's turn comes (a rejoin, or another
  // instance's repair, may already have restored it).
  const std::uint32_t alive_slots =
      fleet_->num_storage() - fleet_->num_declared_dead();
  const std::uint32_t target =
      std::min(fleet_->effective_reps_, alive_slots);
  if (fleet_->live_copies(sample_id) >= target) co_return false;

  // Source: every copy on a non-dead node this instance can reach, in
  // failover order (first is the read target, the rest ride as routes).
  const SampleLocation& loc = fleet_->layout_[sample_id];
  std::vector<RouteHop> sources;
  if (!fleet_->declared_dead(loc.nid) && node_up(loc.nid)) {
    sources.push_back(RouteHop{loc.nid, loc.offset});
  }
  for (const RouteHop& h : fleet_->directory_.replicas(sample_id)) {
    if (!fleet_->declared_dead(h.nid) && node_up(h.nid)) sources.push_back(h);
  }
  if (sources.empty()) co_return false;
  const std::optional<RouteHop> dst = fleet_->claim_repair_target(
      sample_id, [this](std::uint16_t nid) { return node_up(nid); });
  if (!dst) co_return false;

  // Traffic budget: pace repairs to repair_bytes_per_sec so they never
  // starve demand reads of fabric/device bandwidth.
  const std::uint64_t budget =
      fleet_->config_.fault.replication.repair_bytes_per_sec;
  if (budget > 0) {
    auto& sim = node_->simulator();
    const dlsim::SimTime now = sim.now();
    if (repair_next_allowed_ > now) {
      ++repair_throttles_;
      co_await sim.delay(repair_next_allowed_ - now);
      if (!*alive) co_return false;
    }
    const dlsim::SimTime start = std::max(repair_next_allowed_, now);
    repair_next_allowed_ =
        start + static_cast<dlsim::SimDuration>(
                    loc.len * 1'000'000'000ull / budget);
  }

  // Stream the bytes from a surviving copy through the shared engine —
  // same pump, tag space and queue-depth budget as demand reads.
  std::vector<mem::DmaBuffer> pieces;
  ReadExtent x;
  x.nid = sources.front().nid;
  x.offset = sources.front().offset;
  x.len = loc.len;
  x.out_buffers = &pieces;
  x.routes.assign(sources.begin() + 1, sources.end());
  const ExtentOpPtr rop = engine_->start_extent(std::move(x));
  co_await engine_->await_op(*repair_core_, rop, 0);
  if (!*alive) co_return false;
  if (rop->error()) co_return false;  // next membership wake retries

  const ExtentOpPtr wop = engine_->start_write(
      dst->nid, dst->offset, std::move(pieces),
      piece_lens_of(loc.len, fleet_->config_.chunk_bytes));
  co_await engine_->await_op(*repair_core_, wop, 0);
  if (!*alive) co_return false;
  if (wop->error()) co_return false;  // allocated extent is wasted, not wrong

  // Atomic publication: one directory call, no suspension — failover,
  // the prefetcher's RouteResolver and advance_route see the new hop on
  // their next issue, mid-epoch.
  fleet_->publish_repair(sample_id, *dst);
  ++samples_rereplicated_;
  repair_bytes_ += loc.len;
  co_return true;
}

void DlfsInstance::spawn_injected(dlsim::CountdownLatch* done) {
  if (injected_ <= 0) {
    done->count_down();
    return;
  }
  // Injected poll-loop compute (Fig. 7b) runs concurrently with the
  // fetches — the daemon keeps pumping I/O meanwhile, so the compute
  // hides under the batch's stalls exactly as it hid under the
  // synchronous pump's poll loop.
  node_->simulator().spawn(
      [](dlsim::CpuCore* core, dlsim::SimDuration d,
         dlsim::CountdownLatch* latch) -> dlsim::Task<void> {
        co_await core->compute(d);
        latch->count_down();
      }(io_core_, injected_, done));
}

dlsim::Task<void> DlfsInstance::charge_frontend(
    std::span<const EpochSequence::UnitPicks> picks) {
  std::size_t total = 0;
  std::size_t local = 0;  // resolutions served at the local walk rate
  for (const auto& pk : picks) {
    total += pk.count;
    for (std::uint32_t i = 0; i < pk.count; ++i) {
      const std::uint32_t id = pk.unit->samples[pk.first_sample + i].sample_id;
      if (view_ == nullptr) {
        (void)fleet_->directory_.lookup_id(id);  // real tree walk
        ++local;
        continue;
      }
      // Sharded mount: resident/cached ids stay at the local rate;
      // foreign ids pay one metadata RPC and fill the lookup cache, so
      // a steady epoch's bread converges to mostly cache hits.
      DirectoryView::Resolution r = view_->resolve_id(id);
      if (r.served == DirectoryView::Served::kRemote) {
        co_await charge_remote_lookup(r.owner_slot);
        view_->complete_remote(r, fleet_->directory_.lookup_id(id));
      } else {
        ++local;
      }
    }
  }
  lookup_time_total_ += local * fleet_->config_.calibration.dlfs.dir_lookup;
  co_await io_core_->compute(
      local * fleet_->config_.calibration.dlfs.dir_lookup +
      total * fleet_->config_.calibration.dlfs.bread_per_sample);
}

dlsim::Task<void> DlfsInstance::recover_chunk_slot(
    std::size_t slot, std::span<const EpochSequence::UnitPicks> picks,
    bool use_pf, std::unordered_set<std::uint32_t>* skipped,
    std::exception_ptr* fatal) {
  if (use_pf) prefetcher_->discard(slot);
  const EpochSequence::UnitPicks* pick = nullptr;
  for (const auto& pk : picks) {
    if (pk.unit_slot == slot) {
      pick = &pk;
      break;
    }
  }
  if (pick == nullptr) {
    // Pure read-ahead slot: forget it so a later bread re-fetches the
    // whole chunk once the node recovers — unless a live ViewBatch still
    // pins it: erasing would recycle (and under scribble_on_free poison)
    // huge-page chunks the application is reading through views. The
    // pinned unit stays; release_views() runs maybe_release_unit as usual.
    auto it = fetched_.find(slot);
    if (it == fetched_.end() || it->second.view_pins == 0) {
      fetched_.erase(slot);
    }
    co_return;
  }
  // The degraded entry persists across breads (a unit can span batch
  // boundaries); re-entry fills the newly-picked samples only. Empty
  // `buffers` is the degraded marker every consumer branches on.
  FetchedUnit& fu = fetched_[slot];
  if (fu.view_pins > 0 && !fu.buffers.empty()) {
    // Node crashed mid-batch while this unit's chunks are view-pinned.
    // The resident bytes are still valid client memory — dropping them
    // would yank data out from under live views — so the unit stays
    // resident and nothing needs recovering.
    co_return;
  }
  fu.buffers.clear();
  for (std::uint32_t i = 0; i < pick->count; ++i) {
    const auto& us = pick->unit->samples[pick->first_sample + i];
    const std::uint32_t id = us.sample_id;
    if (fu.per_sample.contains(id)) continue;
    if (!sample_reachable(id)) {
      skipped->insert(id);
      continue;
    }
    const SampleLocation& loc = fleet_->layout_[id];
    std::vector<mem::DmaBuffer> pieces;
    auto op = engine_->start_extent(ReadExtent{loc.nid, loc.offset, loc.len,
                                               nullptr, std::nullopt, &pieces,
                                               {}, sample_routes(id)});
    co_await engine_->await_op(*io_core_, op, 0);
    if (op->error()) {
      // Media/unknown faults stay fatal; the caller rethrows after its
      // latch settles. Either way this sample has nothing to deliver.
      if (!is_node_fault(op->error()) && !*fatal) *fatal = op->error();
      skipped->insert(id);
      continue;
    }
    fu.per_sample.emplace(id, std::move(pieces));
  }
}

dlsim::Task<void> DlfsInstance::fetch_chunk_units(
    std::span<const EpochSequence::UnitPicks> picks, bool use_pf,
    std::unordered_set<std::uint32_t>* skipped, std::exception_ptr* fatal,
    std::function<void(std::size_t)> on_unit_ready) {
  auto ready = [&on_unit_ready](std::size_t slot) {
    if (on_unit_ready) on_unit_ready(slot);
  };
  // Recovery runs once per slot per call; later picks of a slot already
  // handled this batch fall straight through to ready().
  std::unordered_set<std::size_t> degraded;

  if (use_pf) {
    // The daemon keeps a window of units in flight between bread calls;
    // here we only make sure every unit this batch needs has been issued
    // (the window may be shallower than the batch), then consume them in
    // slot order. ready() fires the moment a unit settles, while later
    // units are still in flight.
    prefetcher_->ensure_issued_through(picks.back().unit_slot);
    dlsim::CountdownLatch inj_done(node_->simulator(), 1);
    spawn_injected(&inj_done);
    for (const auto& pk : picks) {
      const std::size_t slot = pk.unit_slot;
      if (degraded.contains(slot)) {
        ready(slot);
        continue;
      }
      auto fit = fetched_.find(slot);
      if (fit != fetched_.end() && fit->second.buffers.empty()) {
        // Degraded in an earlier batch: recover this batch's picks too.
        co_await recover_chunk_slot(slot, picks, use_pf, skipped, fatal);
        degraded.insert(slot);
        ready(slot);
        continue;
      }
      if (fit == fetched_.end()) {
        bool recover = false;
        if (!node_up(pk.unit->nid)) {
          recover = true;
        } else {
          AcquiredUnit au = co_await prefetcher_->acquire(slot, *io_core_);
          if (std::exception_ptr err = au.first_error()) {
            // Read-ahead faults surface here, on the bread that owns the
            // unit: media errors stay fatal (the slot settles empty so
            // the caller's latch still drains before the rethrow);
            // node-level faults degrade to per-sample replica recovery.
            if (!is_node_fault(err)) {
              if (!*fatal) *fatal = err;
              fetched_[slot].buffers.clear();
              degraded.insert(slot);
              ready(slot);
              continue;
            }
            recover = true;
          } else if (au.extents.empty()) {  // cannot happen for chunk units
            recover = true;
          } else {
            fetched_[slot].buffers = std::move(au.extents.front().buffers);
          }
        }
        if (recover) {
          co_await recover_chunk_slot(slot, picks, use_pf, skipped, fatal);
          degraded.insert(slot);
          ready(slot);
          continue;
        }
      }
      ready(slot);
    }
    co_await inj_done.wait();
    co_return;
  }

  // Legacy synchronous path: one extent per unit this batch needs plus
  // initial_units of read-ahead, all overlapped; picked units fire
  // ready() from on_buffers_ready so copies start while later chunks
  // are still in flight.
  std::vector<ReadExtent> extents;
  std::vector<std::size_t> extent_slots;  // parallel to extents
  std::unordered_set<std::size_t> slots_fetching;
  auto add_fetch = [&](std::size_t slot, const ReadUnit* unit) {
    if (fetched_.contains(slot)) return false;
    if (!slots_fetching.insert(slot).second) return false;
    auto& fu = fetched_[slot];  // stable address (node-based map)
    extents.push_back(ReadExtent{unit->nid, unit->offset, unit->len, nullptr,
                                 std::nullopt, &fu.buffers, {}});
    extent_slots.push_back(slot);
    return true;
  };
  for (const auto& pk : picks) {
    const std::size_t slot = pk.unit_slot;
    if (degraded.contains(slot)) continue;
    auto fit = fetched_.find(slot);
    if (fit != fetched_.end() && fit->second.buffers.empty() &&
        !slots_fetching.contains(slot)) {
      // Degraded in an earlier batch: recover this batch's picks too.
      co_await recover_chunk_slot(slot, picks, use_pf, skipped, fatal);
      degraded.insert(slot);
      ready(slot);
      continue;
    }
    if (fit == fetched_.end() && !node_up(pk.unit->nid)) {
      co_await recover_chunk_slot(slot, picks, use_pf, skipped, fatal);
      degraded.insert(slot);
      ready(slot);
      continue;
    }
    if (add_fetch(slot, pk.unit)) {
      // `on_unit_ready` lives in this coroutine's frame until every
      // extent has been awaited below, so the pointer capture is safe.
      extents.back().on_buffers_ready = [cb = &on_unit_ready, slot] {
        if (*cb) (*cb)(slot);
      };
    } else if (fetched_.contains(slot) && !fetched_.at(slot).buffers.empty()) {
      // Already resident from earlier read-ahead: settled right away.
      ready(slot);
    }
  }
  // Synchronous read-ahead: fetch the next initial_units units along
  // with this batch so the device pipeline stays full across bread
  // calls (legacy mode; the async prefetcher replaces this).
  const std::size_t ra_end =
      std::min(seq_->num_units(),
               seq_->cursor_unit() + fleet_->config_.prefetch.initial_units);
  for (std::size_t slot = seq_->cursor_unit(); slot < ra_end; ++slot) {
    const ReadUnit* u = seq_->unit_at(slot);
    if (!node_up(u->nid)) continue;  // no point read-ahead to a dead node
    (void)add_fetch(slot, u);
  }
  if (extents.empty()) co_return;
  auto ops = engine_->start_extents(std::move(extents));
  dlsim::SimDuration inj = injected_;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    co_await engine_->await_op(*io_core_, ops[i], inj);
    inj = 0;
    if (!ops[i]->error()) continue;
    bool needs_recovery = false;
    bool settled_fatal = false;
    try {
      std::rethrow_exception(ops[i]->error());
    } catch (const IoError& e) {
      if (e.kind == IoErrorKind::kMedia) {
        if (!*fatal) *fatal = ops[i]->error();
        settled_fatal = true;
      } else {
        needs_recovery = true;  // co_await is illegal in a handler
      }
    } catch (...) {
      if (!*fatal) *fatal = ops[i]->error();
      settled_fatal = true;
    }
    const std::size_t slot = extent_slots[i];
    if (needs_recovery) {
      co_await recover_chunk_slot(slot, picks, use_pf, skipped, fatal);
      degraded.insert(slot);
      ready(slot);
    } else if (settled_fatal) {
      // The slot settles empty (possibly partially-filled buffers are
      // dropped) so the caller's latch drains before the rethrow.
      fetched_[slot].buffers.clear();
      degraded.insert(slot);
      ready(slot);
    }
  }
}

dlsim::Task<SampleHandle> DlfsInstance::open(std::string_view name) {
  const SampleEntry* e = nullptr;
  if (view_) {
    DirectoryView::Resolution r = view_->resolve_name(name);
    if (r.served == DirectoryView::Served::kRemote) {
      co_await charge_remote_lookup(r.owner_slot);
      e = fleet_->directory_.lookup(name);
      view_->complete_remote(r, e);
    } else {
      // kLocal / kCached / kNegative all answer from client-held state;
      // a negative hit in particular spares the repeat RPC for a name
      // the owner already reported absent.
      co_await charge_lookup();
      e = r.entry;
    }
  } else {
    co_await charge_lookup();
    e = fleet_->directory_.lookup(name);
  }
  if (e == nullptr) {
    throw std::invalid_argument("dlfs_open: no such sample '" +
                                std::string(name) + "'");
  }
  const auto id = fleet_->sample_id_of(name);
  assert(id.has_value());
  co_return SampleHandle{*id, e};
}

dlsim::Task<SampleHandle> DlfsInstance::open_id(std::uint32_t sample_id) {
  const SampleEntry* e = nullptr;
  if (view_ && sample_id < fleet_->directory_.num_samples()) {
    e = co_await resolve_id_sharded(sample_id);
  } else {
    // Out-of-range ids keep the classic path (and its error) in both
    // modes: the partition map cannot route an id it has no row for.
    co_await charge_lookup();
    e = fleet_->directory_.lookup_id(sample_id);
  }
  if (e == nullptr) {
    throw std::invalid_argument("dlfs_open: bad sample id " +
                                std::to_string(sample_id));
  }
  co_return SampleHandle{sample_id, e};
}

dlsim::Task<SampleHandle> DlfsInstance::open_file(std::string_view name) {
  co_await charge_lookup();
  const SampleEntry* e = fleet_->directory_.lookup_file(name);
  if (e == nullptr) {
    throw std::invalid_argument("dlfs_open: no such batched file '" +
                                std::string(name) + "'");
  }
  co_return SampleHandle{SampleHandle::kNoSample, e};
}

dlsim::Task<void> DlfsInstance::read(const SampleHandle& h,
                                     std::span<std::byte> dst) {
  const SampleEntry& e = *h.entry;
  if (dst.size() < e.len()) {
    throw std::invalid_argument("dlfs_read: destination too small");
  }
  if (h.sample_id == SampleHandle::kNoSample) {
    // File-oriented read, no sample cache. When the handle is the next
    // file of the installed streaming order (sequence_files), the
    // prefetch daemon already has its extent in flight — consume it;
    // out-of-order / unsequenced file reads go straight through the
    // engine as before.
    if (prefetcher_ && file_seq_active_ &&
        file_cursor_ < file_extents_.size() &&
        file_extents_[file_cursor_].nid == e.nid() &&
        file_extents_[file_cursor_].offset == e.offset() &&
        file_extents_[file_cursor_].len == e.len()) {
      const std::size_t slot = file_cursor_;
      ++file_cursor_;
      AcquiredUnit au = co_await prefetcher_->acquire(slot, *io_core_);
      if (!au.extents.empty() && au.extents.front().error) {
        std::rethrow_exception(au.extents.front().error);
      }
      if (au.extents.empty()) {
        co_await engine_->read_one(*io_core_, e.nid(), e.offset(), e.len(),
                                   dst.data());
      } else {
        CopyJob job;
        job.owned_pieces = std::move(au.extents.front().buffers);
        job.piece_lens =
            piece_lens_of(e.len(), fleet_->config_.chunk_bytes);
        job.dst = dst.data();
        co_await engine_->run_copy_inline(*io_core_, std::move(job));
      }
    } else {
      co_await engine_->read_one(*io_core_, e.nid(), e.offset(), e.len(),
                                 dst.data());
    }
    ++samples_delivered_;
    bytes_delivered_ += e.len();
    co_return;
  }
  if (cache_->valid(h.sample_id)) {
    cache_->note_hit();
    auto views = cache_->pin(h.sample_id);
    CopyJob job;
    job.views = std::move(views);
    job.dst = dst.data();
    co_await engine_->run_copy_inline(*io_core_, std::move(job));
    cache_->unpin(h.sample_id);
  } else {
    cache_->note_miss();
    // A cooperating peer's DRAM beats any device: try it first, fall
    // back to the normal (replica-routed) read on a peer miss.
    const bool peer_served =
        co_await try_peer_read(h.sample_id, e.len(), dst.data());
    if (!peer_served) {
      co_await engine_->read_one(*io_core_, e.nid(), e.offset(), e.len(),
                                 dst.data(), h.sample_id,
                                 sample_routes(h.sample_id));
    }
  }
  ++samples_delivered_;
  bytes_delivered_ += e.len();
}

void DlfsInstance::sequence(std::uint64_t seed) {
  for (const auto& [slot, fu] : fetched_) {
    if (fu.view_pins > 0) {
      throw std::logic_error(
          "dlfs_sequence: zero-copy batches from the previous epoch are "
          "still pinned; release_views() them first");
    }
  }
  seq_.emplace(*fleet_->plan_, seed, client_idx_, fleet_->num_clients());
  fetched_.clear();
  acq_units_.clear();
  file_seq_active_ = false;
  reprobe_pending_ = true;  // epoch boundary: revalidate down nodes once
  if (prefetcher_) {
    // Chunk mode prefetches 1 unit = 1 chunk/edge extent (always fetched
    // whole); sample-level and unbatched modes fuse group_samples
    // consecutive per-sample slots into one unit and elide extents whose
    // sample is already cache-resident.
    const bool chunk = fleet_->config_.batching == BatchingMode::kChunkLevel;
    // With replication, per-sample extents (sample-level/unbatched units
    // and chunk-mode edge samples) carry their replica failover list so
    // read-ahead re-routes inside the engine instead of failing.
    EpochUnitProvider::RouteResolver routes;
    if (fleet_->config_.fault.replication.k > 1) {
      routes = [this](std::uint32_t id) { return sample_routes(id); };
    }
    // Peer-resident samples are elided from read-ahead like cache hits:
    // the consume path pulls them from the peer instead of the device.
    // Chunk units always fetch whole (their samples never populate the
    // sample cache), so chunk mode takes no probe.
    EpochUnitProvider::PeerProbe peers;
    if (fleet_->config_.peer_cache.enabled && !chunk) {
      peers = [this](std::uint32_t id) { return peer_resident(id); };
    }
    epoch_provider_ = std::make_unique<EpochUnitProvider>(
        *seq_, chunk ? 1u : fleet_->config_.prefetch.group_samples,
        chunk ? nullptr : cache_.get(), std::move(routes),
        std::move(peers));
    prefetcher_->start_epoch(epoch_provider_.get());
  }
}

const std::vector<std::string>& DlfsInstance::sequence_files(
    std::uint64_t seed) {
  const auto& per_slot = fleet_->record_files_;
  std::vector<const DlfsFleet::RecordFileInfo*> all;
  std::vector<std::uint16_t> owner;
  for (std::uint16_t s = 0; s < per_slot.size(); ++s) {
    for (const auto& f : per_slot[s]) {
      all.push_back(&f);
      owner.push_back(s);
    }
  }
  if (all.empty()) {
    throw std::logic_error(
        "sequence_files: fleet mounted without record_file_samples");
  }
  // Same contract as sequence(): every client passes the same seed, gets
  // the same global shuffle, and streams its strided share.
  Rng rng(seed);
  auto perm = rng.permutation(all.size());
  file_order_.clear();
  file_extents_.clear();
  file_cursor_ = 0;
  for (std::size_t i = client_idx_; i < perm.size();
       i += fleet_->num_clients()) {
    const DlfsFleet::RecordFileInfo* f = all[perm[i]];
    file_extents_.push_back(UnitExtent{owner[perm[i]], f->offset, f->len,
                                       file_extents_.size()});
    file_order_.push_back(f->name);
  }
  file_seq_active_ = true;
  if (prefetcher_) {
    file_provider_ = std::make_unique<ExtentListProvider>(file_extents_);
    prefetcher_->start_epoch(file_provider_.get());
  }
  return file_order_;
}

dlsim::Task<Batch> DlfsInstance::bread(std::size_t max_samples,
                                       std::span<std::byte> arena) {
  if (!seq_) {
    throw std::logic_error("dlfs_bread: call dlfs_sequence(seed) first");
  }
  co_await maybe_reprobe();
  const auto mode = fleet_->config_.batching;
  if (mode == BatchingMode::kNone) {
    co_return co_await bread_unbatched(max_samples, arena);
  }

  Batch batch;
  auto picks = seq_->take(max_samples);
  batch.end_of_epoch = picks.empty();
  if (picks.empty()) co_return batch;
  // The daemon serves whatever order was installed last; a record-file
  // streaming order (sequence_files) means bread fetches on demand.
  const bool use_pf = prefetcher_ != nullptr && !file_seq_active_;
  // Skip accounting: one entry per unreachable sample, no matter how
  // many paths (per-request fault, unit-level skip, precheck) notice it.
  std::unordered_set<std::uint32_t> skipped;

  // Frontend: directory lookups for every sample in the mini-batch.
  std::size_t total = 0;
  for (const auto& pk : picks) total += pk.count;
  co_await charge_frontend(picks);

  // Arena layout: samples packed in pick order.
  std::uint64_t arena_pos = 0;
  auto place = [&](std::uint32_t sample_id, std::uint32_t len)
      -> std::uint32_t {
    if (arena_pos + len > arena.size()) {
      throw std::invalid_argument("dlfs_bread: arena too small for batch");
    }
    const auto off = static_cast<std::uint32_t>(arena_pos);
    batch.samples.push_back(BatchSample{
        sample_id, fleet_->dataset_->sample(sample_id).class_id, off, len});
    arena_pos += len;
    return off;
  };

  if (mode == BatchingMode::kSampleLevel && use_pf) {
    // Route the batch through the prefetch daemon: misses come out of the
    // acquired read units (fused groups of per-sample extents, issued
    // ahead of the cursor between bread calls) and copy through the SCQ
    // pool; cache hits copy inline exactly as in the demand path — so
    // delivery order and bytes are identical with the daemon on or off.
    prefetcher_->ensure_issued_through(
        epoch_provider_->unit_of(picks.back().unit_slot));
    dlsim::CountdownLatch copy_latch(node_->simulator(), total);
    // Injected poll-loop compute (Fig. 7b) runs concurrently with the
    // acquires — the daemon keeps pumping I/O meanwhile.
    dlsim::CountdownLatch inj_done(node_->simulator(), 1);
    spawn_injected(&inj_done);
    std::exception_ptr fatal;
    for (const auto& pk : picks) {
      for (std::uint32_t i = 0; i < pk.count; ++i) {
        const auto& us = pk.unit->samples[pk.first_sample + i];
        const SampleLocation& loc = fleet_->layout_[us.sample_id];
        const std::size_t uslot = epoch_provider_->unit_of(pk.unit_slot);
        auto pu = acq_units_.find(uslot);
        if (pu == acq_units_.end()) {
          PendingUnit fresh;
          fresh.unit = co_await prefetcher_->acquire(uslot, *io_core_);
          const std::size_t begin = uslot * epoch_provider_->group();
          fresh.slots_left = static_cast<std::uint32_t>(
              std::min<std::size_t>(begin + epoch_provider_->group(),
                                    seq_->num_units()) -
              begin);
          pu = acq_units_.emplace(uslot, std::move(fresh)).first;
        }
        PendingUnit& pun = pu->second;
        AcquiredExtent* ax = nullptr;
        for (auto& x : pun.unit.extents) {
          if (x.key == us.sample_id) {
            ax = &x;
            break;
          }
        }
        if (cache_->valid(us.sample_id)) {
          // Hit: memcpy out of the cache; a prefetched duplicate (the
          // sample became resident after issue) just drops with the unit.
          cache_->note_hit();
          const auto off = place(us.sample_id, loc.len);
          CopyJob job;
          job.views = cache_->pin(us.sample_id);
          job.dst = arena.data() + off;
          co_await engine_->run_copy_inline(*io_core_, std::move(job));
          cache_->unpin(us.sample_id);
          copy_latch.count_down();
        } else if (ax != nullptr && !ax->error) {
          cache_->note_miss();
          const auto off = place(us.sample_id, loc.len);
          CopyJob job;
          job.owned_pieces = std::move(ax->buffers);
          job.piece_lens =
              piece_lens_of(loc.len, fleet_->config_.chunk_bytes);
          job.dst = arena.data() + off;
          job.cache_sample_id = us.sample_id;
          job.latch = &copy_latch;
          if (fleet_->config_.copy_threads == 0) {
            co_await engine_->run_copy_inline(*io_core_, std::move(job));
          } else {
            co_await engine_->enqueue_copy(std::move(job));
          }
        } else if (ax != nullptr && !is_node_fault(ax->error)) {
          // Read-ahead media/unknown errors surface on the bread that
          // owns the sample and stay fatal (after the latches settle).
          if (!fatal) fatal = ax->error;
          copy_latch.count_down();
        } else if (!fleet_->config_.peer_cache.enabled &&
                   !sample_reachable(us.sample_id)) {
          // No live copy anywhere: degrade by skipping just this sample.
          // (With the peer cache on, an unreachable sample may still be
          // servable from a peer's DRAM — decided below.)
          skipped.insert(us.sample_id);
          copy_latch.count_down();
        } else {
          // Elided at issue time (the sample was cache- or peer-resident
          // then but evicted since), or its read-ahead died on a node
          // fault while a replica — or the recovered primary — can still
          // serve it: serve from a peer if one holds it, else
          // demand-fetch with the failover route attached. The skipped
          // set keeps accounting exactly-once even when a sample falls
          // through both the peer and the replica attempts.
          if (arena_pos + loc.len > arena.size()) {
            throw std::invalid_argument(
                "dlfs_bread: arena too small for batch");
          }
          cache_->note_miss();
          const bool peer_served = co_await try_peer_read(
              us.sample_id, loc.len, arena.data() + arena_pos);
          if (peer_served) {
            (void)place(us.sample_id, loc.len);
          } else if (!sample_reachable(us.sample_id)) {
            skipped.insert(us.sample_id);
          } else {
            try {
              co_await engine_->read_one(*io_core_, loc.nid, loc.offset,
                                         loc.len, arena.data() + arena_pos,
                                         us.sample_id,
                                         sample_routes(us.sample_id));
              (void)place(us.sample_id, loc.len);
            } catch (const IoError& e) {
              if (e.kind == IoErrorKind::kMedia) {
                if (!fatal) fatal = std::current_exception();
              } else {
                skipped.insert(us.sample_id);
              }
            }
          }
          copy_latch.count_down();
        }
        if (--pun.slots_left == 0) acq_units_.erase(pu);
      }
    }
    co_await inj_done.wait();
    co_await copy_latch.wait();
    if (fatal) std::rethrow_exception(fatal);
  } else if (mode == BatchingMode::kSampleLevel) {
    // One request per sample, overlapped up to the queue depth; cache hits
    // are served with a memcpy only. Samples on an unavailable node are
    // skipped (cache hits still serve); per-request node faults surfacing
    // mid-batch drop just their sample.
    std::vector<ReadExtent> extents;
    std::vector<std::uint32_t> extent_samples;  // parallel: sample ids
    extents.reserve(total);
    for (const auto& pk : picks) {
      for (std::uint32_t i = 0; i < pk.count; ++i) {
        const auto& us = pk.unit->samples[pk.first_sample + i];
        const SampleLocation& loc = fleet_->layout_[us.sample_id];
        if (cache_->valid(us.sample_id)) {
          cache_->note_hit();
          const auto off = place(us.sample_id, loc.len);
          CopyJob job;
          job.views = cache_->pin(us.sample_id);
          job.dst = arena.data() + off;
          co_await engine_->run_copy_inline(*io_core_, std::move(job));
          cache_->unpin(us.sample_id);
        } else if (!fleet_->config_.peer_cache.enabled &&
                   !sample_reachable(us.sample_id)) {
          skipped.insert(us.sample_id);
        } else {
          cache_->note_miss();
          bool peer_served = false;
          if (fleet_->config_.peer_cache.enabled) {
            if (arena_pos + loc.len > arena.size()) {
              throw std::invalid_argument(
                  "dlfs_bread: arena too small for batch");
            }
            peer_served = co_await try_peer_read(us.sample_id, loc.len,
                                                 arena.data() + arena_pos);
          }
          if (peer_served) {
            (void)place(us.sample_id, loc.len);
          } else if (!sample_reachable(us.sample_id)) {
            // Peer miss and no live replica: skip exactly once.
            skipped.insert(us.sample_id);
          } else {
            const auto off = place(us.sample_id, loc.len);
            extents.push_back(ReadExtent{loc.nid, loc.offset, loc.len,
                                         arena.data() + off, us.sample_id,
                                         nullptr, {},
                                         sample_routes(us.sample_id)});
            extent_samples.push_back(us.sample_id);
          }
        }
      }
    }
    if (!extents.empty()) {
      auto ops = engine_->start_extents(std::move(extents));
      dlsim::SimDuration inj = injected_;
      std::exception_ptr fatal;
      std::unordered_set<std::uint32_t> failed_ids;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        co_await engine_->await_op(*io_core_, ops[i], inj);
        inj = 0;
        if (!ops[i]->error()) continue;
        try {
          std::rethrow_exception(ops[i]->error());
        } catch (const IoError& e) {
          if (e.kind == IoErrorKind::kMedia) {
            if (!fatal) fatal = ops[i]->error();
          } else {
            failed_ids.insert(extent_samples[i]);
          }
        } catch (...) {
          if (!fatal) fatal = ops[i]->error();
        }
      }
      if (fatal) std::rethrow_exception(fatal);
      if (!failed_ids.empty()) {
        skipped.insert(failed_ids.begin(), failed_ids.end());
        std::erase_if(batch.samples, [&](const BatchSample& s) {
          return failed_ids.contains(s.sample_id);
        });
      }
    }
  } else {
    // Chunk-level: fetch whole data chunks (and edge-sample extents); as
    // each chunk lands, its picked samples start copying out immediately
    // (copy threads run while later chunks are still in flight).
    dlsim::CountdownLatch latch(node_->simulator(), total);

    // Arena placement happens up front, in pick order, so sample offsets
    // are known before the copies are scheduled.
    struct PendingCopy {
      const UnitSample* us;
      std::uint32_t arena_off;
    };
    std::unordered_map<std::size_t, std::vector<PendingCopy>> copies_by_slot;
    for (const auto& pk : picks) {
      auto& list = copies_by_slot[pk.unit_slot];
      for (std::uint32_t i = 0; i < pk.count; ++i) {
        const auto& us = pk.unit->samples[pk.first_sample + i];
        list.push_back(PendingCopy{&us, place(us.sample_id, us.len)});
      }
    }

    // With a copy pool, a settled unit's copies are scheduled as a
    // detached process (channel pushes never stall the I/O loop) and run
    // on the copy threads while later chunks are still in flight. Without
    // a pool the frontend core itself copies — serially, after the fetch
    // (it cannot poll and memcpy at once). Degraded units copy out of
    // their per-sample replica buffers; samples with nothing recovered
    // (unreachable, or fatal faults pending rethrow) settle their latch
    // slots here so the wait below always drains.
    std::vector<std::pair<std::size_t, std::vector<PendingCopy>>> inline_work;
    auto schedule_copies = [this, &arena, &latch, &inline_work](
                               std::size_t slot,
                               std::vector<PendingCopy> list) {
      FetchedUnit& fu = fetched_.at(slot);
      fu.delivered += static_cast<std::uint32_t>(list.size());
      std::erase_if(list, [&](const PendingCopy& pc) {
        const bool gone = fu.buffers.empty() &&
                          !fu.per_sample.contains(pc.us->sample_id);
        if (gone) latch.count_down();
        return gone;
      });
      if (list.empty()) return;
      if (fleet_->config_.copy_threads == 0) {
        inline_work.emplace_back(slot, std::move(list));
        return;
      }
      node_->simulator().spawn_daemon(
          [](DlfsInstance* self, FetchedUnit* fu,
             std::vector<PendingCopy> list, std::span<std::byte> arena,
             dlsim::CountdownLatch* latch) -> dlsim::Task<void> {
            const std::uint64_t chunk = self->fleet_->config_.chunk_bytes;
            for (const auto& pc : list) {
              CopyJob job;
              job.views =
                  fu->buffers.empty()
                      ? window_views(fu->per_sample.at(pc.us->sample_id),
                                     chunk, 0, pc.us->len)
                      : window_views(fu->buffers, chunk,
                                     pc.us->offset_in_unit, pc.us->len);
              job.dst = arena.data() + pc.arena_off;
              job.latch = latch;
              job.origin = self->io_core_;
              co_await self->engine_->enqueue_copy(std::move(job));
            }
          }(this, &fu, std::move(list), arena, &latch),
          "bread-copies");
    };

    // Shared batch assembly (also backs bread_views): every picked unit
    // settles — chunk buffers resident, or degraded with surviving
    // samples recovered into per-sample replica buffers — and fires its
    // copies the moment it does.
    std::exception_ptr fatal;
    auto on_ready = [&](std::size_t slot) {
      auto it = copies_by_slot.find(slot);
      if (it == copies_by_slot.end() || it->second.empty()) return;
      auto list = std::move(it->second);
      it->second.clear();
      schedule_copies(slot, std::move(list));
    };
    co_await fetch_chunk_units(picks, use_pf, &skipped, &fatal, on_ready);
    for (auto& [slot, list] : inline_work) {
      FetchedUnit& fu = fetched_.at(slot);
      for (const auto& pc : list) {
        CopyJob job;
        job.views =
            fu.buffers.empty()
                ? window_views(fu.per_sample.at(pc.us->sample_id),
                               fleet_->config_.chunk_bytes, 0, pc.us->len)
                : window_views(fu.buffers, fleet_->config_.chunk_bytes,
                               pc.us->offset_in_unit, pc.us->len);
        job.dst = arena.data() + pc.arena_off;
        job.latch = &latch;
        co_await engine_->run_copy_inline(*io_core_, std::move(job));
      }
    }
    co_await latch.wait();
    if (fatal) std::rethrow_exception(fatal);
    // Release fully-consumed units.
    for (const auto& pk : picks) maybe_release_unit(pk.unit_slot);
    if (!skipped.empty()) {
      std::erase_if(batch.samples, [&](const BatchSample& s) {
        return skipped.contains(s.sample_id);
      });
    }
  }

  batch.bytes = arena_pos;
  batch.samples_skipped = skipped.size();
  if (batch.samples_skipped > 0) {
    // Skipped samples left holes in the arena; the batch's byte count is
    // what was actually delivered.
    batch.bytes = 0;
    for (const auto& s : batch.samples) batch.bytes += s.len;
    samples_skipped_ += batch.samples_skipped;
  }
  samples_delivered_ += batch.samples.size();
  bytes_delivered_ += batch.bytes;
  co_return batch;
}

void DlfsInstance::maybe_release_unit(std::size_t slot) {
  auto it = fetched_.find(slot);
  if (it == fetched_.end()) return;
  const ReadUnit* unit = seq_ ? seq_->unit_at(slot) : nullptr;
  if (unit == nullptr) return;
  if (it->second.view_pins == 0 &&
      it->second.delivered == unit->samples.size()) {
    fetched_.erase(it);
  }
}

dlsim::Task<ViewBatch> DlfsInstance::bread_views(std::size_t max_samples) {
  if (!seq_) {
    throw std::logic_error("dlfs_bread: call dlfs_sequence(seed) first");
  }
  if (fleet_->config_.batching != BatchingMode::kChunkLevel) {
    throw std::logic_error(
        "bread_views requires chunk-level batching (samples must live in "
        "resident data chunks)");
  }
  co_await maybe_reprobe();
  ViewBatch batch;
  auto picks = seq_->take(max_samples);
  batch.end_of_epoch = picks.empty();
  if (picks.empty()) co_return batch;
  const bool use_pf = prefetcher_ != nullptr && !file_seq_active_;

  co_await charge_frontend(picks);

  // One entry per unreachable sample (never double-counted between the
  // unit-level and per-sample paths).
  std::unordered_set<std::uint32_t> skipped;
  // Shared batch assembly (also backs bread): every picked unit settles —
  // chunk buffers resident, or degraded with surviving samples recovered
  // into per-sample replica buffers. No per-unit callback: views are
  // handed out after everything settles (handing out a span costs no
  // CPU, so there is nothing to overlap).
  std::exception_ptr fatal;
  co_await fetch_chunk_units(picks, use_pf, &skipped, &fatal, {});
  // Fatal (media/unknown) read-ahead faults abort the batch before any
  // unit is pinned, exactly like the copy path's post-latch rethrow.
  if (fatal) std::rethrow_exception(fatal);

  // Degraded samples are the only ones that copy on the views path:
  // their replica bytes move into one batch-owned buffer so the handed-
  // out spans survive release of the DMA buffers. Pre-size it before
  // the first span is taken — growth would invalidate earlier views.
  std::size_t fallback_bytes = 0;
  for (const auto& pk : picks) {
    const FetchedUnit& fu = fetched_.at(pk.unit_slot);
    if (!fu.buffers.empty()) continue;
    for (std::uint32_t i = 0; i < pk.count; ++i) {
      const auto& us = pk.unit->samples[pk.first_sample + i];
      if (fu.per_sample.contains(us.sample_id)) fallback_bytes += us.len;
    }
  }
  batch.fallback_storage.resize(fallback_bytes);
  std::size_t fallback_pos = 0;

  for (const auto& pk : picks) {
    FetchedUnit& fu = fetched_.at(pk.unit_slot);
    ++fu.view_pins;
    if (fu.view_pins == 1 && prefetcher_) {
      // First pin: the unit's chunks now sit outside the prefetcher's
      // window but still occupy the pool; tell the arbiter.
      prefetcher_->note_view_pins(
          static_cast<std::int64_t>(fu.buffers.size()));
    }
    batch.pinned_slots.push_back(pk.unit_slot);
    fu.delivered += pk.count;
    for (std::uint32_t i = 0; i < pk.count; ++i) {
      const auto& us = pk.unit->samples[pk.first_sample + i];
      ViewSample vs;
      vs.sample_id = us.sample_id;
      vs.class_id = fleet_->dataset_->sample(us.sample_id).class_id;
      vs.len = us.len;
      if (!fu.buffers.empty()) {
        vs.pieces = window_views(fu.buffers, fleet_->config_.chunk_bytes,
                                 us.offset_in_unit, us.len);
        bytes_zero_copy_ += us.len;
      } else {
        // Degraded unit: samples with no reachable copy were already
        // counted; recovered ones copy into the batch-owned fallback
        // (charged like any inline copy) and free their DMA buffers.
        auto rec = fu.per_sample.find(us.sample_id);
        if (rec == fu.per_sample.end()) continue;
        CopyJob job;
        job.owned_pieces = std::move(rec->second);
        job.piece_lens = piece_lens_of(us.len, fleet_->config_.chunk_bytes);
        job.dst = batch.fallback_storage.data() + fallback_pos;
        co_await engine_->run_copy_inline(*io_core_, std::move(job));
        fu.per_sample.erase(rec);
        vs.pieces = {std::span<const std::byte>(
            batch.fallback_storage.data() + fallback_pos, us.len)};
        fallback_pos += us.len;
      }
      batch.bytes += us.len;
      batch.samples.push_back(std::move(vs));
      // Handing out a view costs no extra CPU: the frontend's
      // bread_per_sample charge already covers per-sample accounting, and
      // span construction replaces the copy-job setup included there.
    }
  }
  batch.samples_skipped = skipped.size();
  batch.token = 1;
  samples_delivered_ += batch.samples.size();
  samples_skipped_ += batch.samples_skipped;
  bytes_delivered_ += batch.bytes;
  co_return batch;
}

void DlfsInstance::release_views(ViewBatch& batch) {
  if (batch.token == 2) {
    throw std::logic_error("release_views: batch already released");
  }
  if (batch.token == 0) return;  // empty batch (end of epoch)
  batch.token = 2;
  for (std::size_t slot : batch.pinned_slots) {
    auto it = fetched_.find(slot);
    if (it == fetched_.end()) continue;
    if (it->second.view_pins == 0) {
      throw std::logic_error("release_views: pin underflow");
    }
    if (--it->second.view_pins == 0 && prefetcher_) {
      // Last pin gone: the chunks leave the view-pinned pool share
      // (whether or not the unit itself is released below).
      prefetcher_->note_view_pins(
          -static_cast<std::int64_t>(it->second.buffers.size()));
    }
    maybe_release_unit(slot);
  }
  batch.pinned_slots.clear();
  batch.samples.clear();
  batch.fallback_storage.clear();
  batch.fallback_storage.shrink_to_fit();
}

dlsim::Task<Batch> DlfsInstance::bread_unbatched(std::size_t max_samples,
                                                 std::span<std::byte> arena) {
  // DLFS-Base: each sample is a synchronous dlfs_read. With the daemon
  // on, the reads themselves still land one at a time in epoch order —
  // but the device works ahead of the cursor between them, so the
  // per-sample wait collapses to a memcpy once the window is warm.
  Batch batch;
  auto picks = seq_->take(max_samples);
  batch.end_of_epoch = picks.empty();
  const bool use_pf = prefetcher_ != nullptr && !file_seq_active_;
  if (use_pf && !picks.empty()) {
    prefetcher_->ensure_issued_through(
        epoch_provider_->unit_of(picks.back().unit_slot));
  }
  std::uint64_t arena_pos = 0;
  // One entry per unreachable sample, whichever path notices it.
  std::unordered_set<std::uint32_t> skipped;
  for (const auto& pk : picks) {
    for (std::uint32_t i = 0; i < pk.count; ++i) {
      const auto& us = pk.unit->samples[pk.first_sample + i];
      const SampleLocation& loc = fleet_->layout_[us.sample_id];
      if (arena_pos + loc.len > arena.size()) {
        throw std::invalid_argument("dlfs_bread: arena too small for batch");
      }
      PendingUnit* pun = nullptr;
      if (use_pf) {
        const std::size_t uslot = epoch_provider_->unit_of(pk.unit_slot);
        auto pu = acq_units_.find(uslot);
        if (pu == acq_units_.end()) {
          PendingUnit fresh;
          fresh.unit = co_await prefetcher_->acquire(uslot, *io_core_);
          const std::size_t begin = uslot * epoch_provider_->group();
          fresh.slots_left = static_cast<std::uint32_t>(
              std::min<std::size_t>(begin + epoch_provider_->group(),
                                    seq_->num_units()) -
              begin);
          pu = acq_units_.emplace(uslot, std::move(fresh)).first;
        }
        pun = &pu->second;
      }
      AcquiredExtent* ax = nullptr;
      if (pun != nullptr) {
        for (auto& x : pun->unit.extents) {
          if (x.key == us.sample_id) {
            ax = &x;
            break;
          }
        }
      }
      bool served = false;
      if (cache_->valid(us.sample_id)) {
        SampleHandle h{us.sample_id,
                       fleet_->directory_.lookup_id(us.sample_id)};
        co_await charge_lookup();
        co_await read(h, arena.subspan(arena_pos, loc.len));
        served = true;
      } else if (ax != nullptr && !ax->error) {
        // The daemon already read this sample: the "read" is the
        // directory walk plus a memcpy out of the prefetched chunks.
        (void)fleet_->directory_.lookup_id(us.sample_id);
        co_await charge_lookup();
        cache_->note_miss();
        CopyJob job;
        job.owned_pieces = std::move(ax->buffers);
        job.piece_lens = piece_lens_of(loc.len, fleet_->config_.chunk_bytes);
        job.dst = arena.data() + arena_pos;
        job.cache_sample_id = us.sample_id;
        co_await engine_->run_copy_inline(*io_core_, std::move(job));
        ++samples_delivered_;
        bytes_delivered_ += loc.len;
        served = true;
      } else if (ax != nullptr && !is_node_fault(ax->error)) {
        std::rethrow_exception(ax->error);
      } else if (!sample_reachable(us.sample_id) &&
                 !peer_resident(us.sample_id)) {
        skipped.insert(us.sample_id);
      } else {
        // Demand read (never prefetched, elided for a peer, or read-ahead
        // died on a node fault while a live copy remains): read() tries
        // the peer cache first and carries the replica failover route. A
        // peer-resident but unreachable sample that then loses the peer
        // race fails the engine read with a node fault — caught below, so
        // the skipped set still counts it exactly once.
        SampleHandle h{us.sample_id,
                       fleet_->directory_.lookup_id(us.sample_id)};
        co_await charge_lookup();
        try {
          co_await read(h, arena.subspan(arena_pos, loc.len));
          served = true;
        } catch (const IoError& e) {
          if (e.kind == IoErrorKind::kMedia) throw;
          skipped.insert(us.sample_id);
        }
      }
      if (pun != nullptr && --pun->slots_left == 0) {
        acq_units_.erase(epoch_provider_->unit_of(pk.unit_slot));
      }
      if (!served) continue;
      batch.samples.push_back(BatchSample{
          us.sample_id, fleet_->dataset_->sample(us.sample_id).class_id,
          static_cast<std::uint32_t>(arena_pos), loc.len});
      arena_pos += loc.len;
    }
  }
  batch.bytes = arena_pos;
  batch.samples_skipped = skipped.size();
  samples_skipped_ += batch.samples_skipped;
  // read() / the inline copies above already counted samples/bytes.
  co_return batch;
}

}  // namespace dlfs::core

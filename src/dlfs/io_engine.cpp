#include "dlfs/io_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/units.hpp"

namespace dlfs::core {

IoEngine::IoEngine(dlsim::Simulator& sim, mem::HugePagePool& pool,
                   SampleCache& cache, const Calibration& cal,
                   const IoEngineConfig& config)
    : sim_(&sim), pool_(&pool), cache_(&cache), cal_(&cal), config_(config) {
  scq_ = std::make_unique<dlsim::Channel<CopyJob>>(sim, config_.scq_capacity);
  for (std::uint32_t i = 0; i < config_.copy_threads; ++i) {
    copy_cores_.push_back(
        std::make_unique<dlsim::CpuCore>(sim, "copy-" + std::to_string(i)));
    sim.spawn_daemon(copy_thread_loop(i), "dlfs-copy-" + std::to_string(i));
  }
  if (config_.reprobe_interval > 0) {
    probe_core_ = std::make_unique<dlsim::CpuCore>(sim, "probe");
    probe_wake_ = std::make_unique<dlsim::Event>(sim);
    sim.spawn_daemon(probe_loop(alive_), "dlfs-reprobe");
  }
}

IoEngine::~IoEngine() {
  *alive_ = false;
  scq_->close();
}

dlsim::Task<void> IoEngine::probe_loop(std::shared_ptr<bool> alive) {
  // Deadline-driven recovery: a node that heals mid-epoch comes back
  // within one interval, instead of staying "down" until the next epoch
  // boundary. The alive token is taken by value and re-checked after
  // every suspension (the engine may be destroyed while we sleep).
  // Event-gated: the daemon parks on probe_wake_ while the cluster is
  // healthy and only ticks timers while a node is down, so a healthy
  // simulator still quiesces.
  for (;;) {
    co_await probe_wake_->wait();
    if (!*alive) co_return;
    probe_wake_->reset();
    while (*alive && nodes_down() > 0) {
      co_await sim_->delay(config_.reprobe_interval);
      if (!*alive) co_return;
      if (nodes_down() == 0) break;
      const std::uint32_t recovered = co_await reprobe_down_nodes(*probe_core_);
      if (!*alive) co_return;
      (void)recovered;  // transitions are reported through node_handler_
    }
    if (!*alive) co_return;
  }
}

void IoEngine::attach_target(std::uint16_t nid,
                             std::unique_ptr<spdk::IoQueue> queue) {
  if (targets_.size() <= nid) targets_.resize(nid + 1);
  targets_[nid] = std::move(queue);
}

dlsim::SimDuration IoEngine::copy_cost(const CopyJob& job) const {
  std::uint64_t bytes = 0;
  for (auto l : job.piece_lens) bytes += l;
  for (const auto& v : job.views) bytes += v.size();
  return dlsim::transfer_time(bytes, cal_->dlfs.copy_bw_bytes_per_sec);
}

void IoEngine::do_copy(CopyJob& job) {
  std::byte* out = job.dst;
  std::uint64_t copied = 0;
  for (std::size_t i = 0; i < job.owned_pieces.size(); ++i) {
    const std::uint32_t n = job.piece_lens[i];
    if (out != nullptr) {
      std::memcpy(out, job.owned_pieces[i].data(), n);
      out += n;
    }
    copied += n;
  }
  for (const auto& v : job.views) {
    if (out != nullptr) {
      std::memcpy(out, v.data(), v.size());
      out += v.size();
    }
    copied += v.size();
  }
  bytes_copied_ += copied;
  if (job.cache_sample_id && !job.owned_pieces.empty()) {
    cache_->insert(*job.cache_sample_id, std::move(job.owned_pieces),
                   std::move(job.piece_lens));
  }
  if (job.latch != nullptr) job.latch->count_down();
  if (job.op) {
    assert(copies_pending_ > 0);
    --copies_pending_;
    job.op->finished_ = true;
    job.op->done.set();
  }
}

dlsim::Task<void> IoEngine::copy_thread_loop(std::size_t idx) {
  dlsim::CpuCore& core = *copy_cores_[idx];
  for (;;) {
    auto job = co_await scq_->pop();
    if (!job) co_return;
    // Batched SCQ drain: after the blocking pop, grab this thread's share
    // of the jobs already queued behind it in the same acquisition —
    // leaving the rest for the sibling copy threads — instead of a
    // park/wake round-trip through the channel per job. Per-job costs
    // (handling + memcpy time) are still charged individually so the
    // timeline of each copy is unchanged.
    std::vector<CopyJob> batch;
    batch.push_back(std::move(*job));
    std::size_t extra = scq_->size() / copy_cores_.size();
    while (extra > 0) {
      auto more = scq_->try_pop();
      if (!more) break;
      batch.push_back(std::move(*more));
      --extra;
    }
    for (CopyJob& j : batch) {
      dlsim::SimDuration cost = cal_->dlfs.completion_handling + copy_cost(j);
      if (j.origin != nullptr && j.origin != &core) {
        core.note_cross_core_handoff();
        cost += cal_->dlfs.cross_core_handoff;
      }
      co_await core.compute(cost);
      do_copy(j);
    }
  }
}

dlsim::Task<void> IoEngine::enqueue_copy(CopyJob job) {
  if (config_.copy_threads == 0) {
    // No pool configured: the caller's context performs the copy. The
    // cost is charged by run_copy_inline; here we only have the engine's
    // own context, so execute directly with a bare delay.
    co_await sim_->delay(cal_->dlfs.completion_handling + copy_cost(job));
    do_copy(job);
    co_return;
  }
  co_await scq_->push(std::move(job));
}

dlsim::Task<void> IoEngine::run_copy_inline(dlsim::CpuCore& core,
                                            CopyJob job) {
  co_await core.compute(cal_->dlfs.completion_handling + copy_cost(job));
  do_copy(job);
}

dlsim::Task<void> IoEngine::wait_any(dlsim::CpuCore& core) {
  // Busy-polling: all waiting time is CPU time (SPDK semantics). If every
  // outstanding queue is a local device queue the completion time is
  // knowable and we jump straight there; any remote queue forces quantum
  // polling.
  std::optional<dlsim::SimTime> known;
  bool any_unknown = false;
  for (const auto& q : targets_) {
    if (!q || q->outstanding() == 0) continue;
    if (auto t = q->next_completion_at()) {
      known = known ? std::min(*known, *t) : *t;
    } else {
      any_unknown = true;
    }
  }
  if (!known && !any_unknown && !delayed_.empty()) {
    // Nothing in flight — only backed-off retries. Spin until the
    // earliest one is due.
    dlsim::AccessSlice slice{pieces_ledger_, /*write=*/false};
    dlsim::SimTime due = delayed_.front().not_before;
    for (const Piece& p : delayed_) due = std::min(due, p.not_before);
    known = due;
  }
  const dlsim::SimTime now = sim_->now();
  if (!any_unknown && known && *known > now) {
    co_await core.compute(*known - now);
  } else {
    co_await core.compute(config_.poll_quantum);
  }
}

void IoEngine::fail_op(ExtentOp& op, std::exception_ptr e) {
  op.error_ = std::move(e);
  op.finished_ = true;
  op.done.set();
}

void IoEngine::mark_node_down(std::uint16_t nid) {
  if (node_down_.size() <= nid) node_down_.resize(nid + 1, 0);
  if (node_down_[nid] != 0) return;
  node_down_[nid] = 1;
  if (probe_wake_) probe_wake_->set();
  if (node_handler_) node_handler_(nid, false);
}

bool IoEngine::advance_route(ReadExtent& x) {
  while (!x.routes.empty()) {
    const RouteHop hop = x.routes.front();
    x.routes.erase(x.routes.begin());
    // Peer hops name a client's DRAM cache, not an NVMe-oF target; they
    // are consumed by the DLFS peer-read path before start_extents and
    // must never be posted as device reads here.
    if (hop.cls == HopClass::kPeer) continue;
    if (hop.nid < targets_.size() && targets_[hop.nid] != nullptr &&
        node_available(hop.nid)) {
      x.nid = hop.nid;
      x.offset = hop.offset;
      return true;
    }
  }
  return false;
}

bool IoEngine::reroute_piece(Piece& p) {
  ReadExtent& x = p.op->extent;
  // "The op already moved on": a sibling piece re-routed the extent to a
  // node that is still up — just requeue, the posting loop follows the
  // extent's current route. Otherwise consume the next live alternate.
  const bool follow = p.nid != x.nid && node_available(x.nid);
  if (!follow && !advance_route(x)) return false;
  p.attempts = 0;  // fresh retry budget on the new node
  p.not_before = 0;
  to_post_.push_back(std::move(p));
  return true;
}

std::uint32_t IoEngine::nodes_down() const {
  std::uint32_t n = 0;
  for (const std::uint8_t d : node_down_) n += d;
  return n;
}

dlsim::Task<std::uint32_t> IoEngine::reprobe_down_nodes(dlsim::CpuCore& core) {
  std::uint32_t recovered = 0;
  for (std::uint16_t nid = 0; nid < node_down_.size(); ++nid) {
    if (node_down_[nid] == 0) continue;
    if (nid >= targets_.size() || targets_[nid] == nullptr) continue;
    co_await core.compute(cal_->dlfs.prep_request);
    // Hoisted await (repo convention). The node_down_ re-check matters:
    // the epoch-boundary reprobe and the probe_loop daemon can race on
    // the same node, and only the first one back may fire the handler.
    const bool up = co_await targets_[nid]->reprobe();
    if (up && node_down_[nid] != 0) {
      node_down_[nid] = 0;
      ++recovered;
      if (node_handler_) node_handler_(nid, true);
    }
  }
  co_return recovered;
}

spdk::IoQueueStats IoEngine::transport_stats() const {
  spdk::IoQueueStats total;
  for (const auto& q : targets_) {
    if (!q) continue;
    const spdk::IoQueueStats s = q->transport_stats();
    total.timeouts += s.timeouts;
    total.connections_lost += s.connections_lost;
    total.reconnects += s.reconnects;
    total.replays += s.replays;
  }
  return total;
}

void IoEngine::promote_delayed() {
  if (delayed_.empty()) return;
  dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
  const dlsim::SimTime now = sim_->now();
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->not_before <= now) {
      to_post_.push_back(std::move(*it));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<ExtentOpPtr> IoEngine::start_extents(
    std::vector<ReadExtent> extents) {
  dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
  std::vector<ExtentOpPtr> ops;
  ops.reserve(extents.size());
  for (auto& x : extents) {
    if (x.nid >= targets_.size() || targets_[x.nid] == nullptr) {
      throw std::logic_error("read_extents: no queue for storage node " +
                             std::to_string(x.nid));
    }
    if (!node_available(x.nid) && !advance_route(x)) {
      // The node is known-down and no replica route survives: fail fast
      // instead of queueing pieces that would only burn a timeout each.
      // Callers route on the error kind.
      auto op = std::make_shared<ExtentOp>(*sim_, std::move(x));
      fail_op(*op, std::make_exception_ptr(IoError(
                       op->extent.nid, op->extent.offset,
                       IoErrorKind::kNodeDown)));
      ops.push_back(std::move(op));
      continue;
    }
    auto op = std::make_shared<ExtentOp>(*sim_, std::move(x));
    std::uint64_t off = op->extent.offset;
    std::uint32_t left = op->extent.len;
    std::uint32_t idx = 0;
    while (left > 0) {
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(left, config_.chunk_bytes));
      to_post_.push_back(Piece{op, idx++, off, n, mem::DmaBuffer{}});
      off += n;
      left -= n;
    }
    op->pieces_total_ = idx;
    op->buffers_.resize(idx);
    op->lens_.resize(idx);
    if (idx == 0) {  // zero-length extent: trivially done
      op->finished_ = true;
      op->done.set();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

ExtentOpPtr IoEngine::start_extent(ReadExtent extent) {
  std::vector<ReadExtent> one;
  one.push_back(std::move(extent));
  return start_extents(std::move(one)).front();
}

ExtentOpPtr IoEngine::start_write(std::uint16_t nid, std::uint64_t offset,
                                  std::vector<mem::DmaBuffer> pieces,
                                  std::vector<std::uint32_t> lens) {
  if (pieces.size() != lens.size()) {
    throw std::logic_error("start_write: pieces/lens size mismatch");
  }
  if (nid >= targets_.size() || targets_[nid] == nullptr) {
    throw std::logic_error("start_write: no queue for storage node " +
                           std::to_string(nid));
  }
  ReadExtent x;
  x.nid = nid;
  x.offset = offset;
  x.write = true;
  for (const std::uint32_t l : lens) x.len += l;
  dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
  auto op = std::make_shared<ExtentOp>(*sim_, std::move(x));
  if (!node_available(nid)) {
    // Writes do not fail over: the placement was chosen against live
    // membership, so a down target means the plan is stale — surface it.
    fail_op(*op, std::make_exception_ptr(
                     IoError(nid, offset, IoErrorKind::kNodeDown)));
    return op;
  }
  op->pieces_total_ = static_cast<std::uint32_t>(pieces.size());
  op->buffers_.resize(pieces.size());
  op->lens_ = lens;
  std::uint64_t off = offset;
  for (std::uint32_t i = 0; i < pieces.size(); ++i) {
    to_post_.push_back(Piece{op, i, off, lens[i], std::move(pieces[i])});
    off += lens[i];
  }
  if (pieces.empty()) {
    op->finished_ = true;
    op->done.set();
  }
  return op;
}

dlsim::Task<void> IoEngine::finish_extent(dlsim::CpuCore& core,
                                          ExtentOpPtr op) {
  ReadExtent& x = op->extent;
  if (x.dst != nullptr) {
    CopyJob job;
    job.owned_pieces = std::move(op->buffers_);
    job.piece_lens = std::move(op->lens_);
    job.dst = x.dst;
    job.cache_sample_id = x.cache_sample_id;
    job.origin = &core;
    job.op = op;
    ++copies_pending_;
    if (config_.copy_threads == 0) {
      co_await run_copy_inline(core, std::move(job));
    } else {
      co_await enqueue_copy(std::move(job));
    }
  } else {
    if (x.out_buffers != nullptr) {
      *x.out_buffers = std::move(op->buffers_);
    }
    op->finished_ = true;
    op->done.set();
    if (x.on_buffers_ready) x.on_buffers_ready();
  }
}

dlsim::Task<void> IoEngine::pump(dlsim::CpuCore& core, const ExtentOp& until,
                                 dlsim::SimDuration injected_compute) {
  bool injected_done = injected_compute == 0;
  // The pump serves the whole engine, not just `until`: any queued or
  // in-flight piece (another bread's demand fetch, a prefetched unit) is
  // posted and harvested by whichever coroutine is pumping. We stop as
  // soon as `until` has all its pieces (its copy, if any, is awaited by
  // the caller through the op event).
  auto satisfied = [&] {
    return until.finished_ || until.pieces_done_ == until.pieces_total_;
  };
  while (!satisfied()) {
    bool progress = false;
    promote_delayed();  // backed-off retries whose delay has elapsed

    // Post while targets have queue space and the pool has chunks. The
    // sample cache shares the pool: under pressure it yields LRU entries,
    // then the prefetcher sheds read-ahead; if neither can free a chunk
    // *and* nothing is in flight the read can never make progress — fail
    // loudly instead of livelocking.
    std::size_t rotated = 0;  // pieces parked behind degraded queues this pass
    while (!to_post_.empty()) {
      Piece p;
      spdk::IoQueue* q = nullptr;
      {
        // Suspension-free slice: claim (or reject) the head piece before
        // the prep/post compute charge suspends this pumper.
        dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
        if (to_post_.front().op->error_) {
          // The extent already failed; drop its remaining queued pieces.
          to_post_.pop_front();
          progress = true;
          continue;
        }
        std::uint16_t nid = to_post_.front().op->extent.nid;
        if (!node_available(nid)) {
          // The current route is down: re-point the extent at the first
          // live replica before giving up on its pieces.
          if (advance_route(to_post_.front().op->extent)) {
            nid = to_post_.front().op->extent.nid;
          } else {
            Piece dead = std::move(to_post_.front());
            to_post_.pop_front();
            fail_op(*dead.op, std::make_exception_ptr(IoError(
                                  nid, dead.offset, IoErrorKind::kNodeDown)));
            progress = true;
            continue;
          }
        }
        q = targets_[nid].get();
        if (q->outstanding() >= q->admission_depth()) {
          // A healthy queue at its natural depth frees slots via the poll
          // phase below — stop posting. A *degraded* queue (reconnecting
          // at its admission cap) must not head-block work for healthy
          // nodes: rotate the piece to the back. One full pass without a
          // post means everything left is capped — stop then too.
          if (q->connected() && q->admission_depth() >= q->depth()) break;
          if (rotated >= to_post_.size()) break;
          ++rotated;
          to_post_.push_back(std::move(to_post_.front()));
          to_post_.pop_front();
          continue;
        }
        if (pool_->free_chunks() == 0 && !to_post_.front().buffer.valid()) {
          bool freed = cache_->evict_lru_one();
          if (!freed && pressure_reliever_) freed = pressure_reliever_();
          if (!freed) {
            if (in_flight_.empty() && scq_->empty() && copies_pending_ == 0 &&
                delayed_.empty()) {
              throw std::runtime_error(
                  "huge-page pool exhausted: cache pinned + nothing in "
                  "flight");
            }
            break;
          }
        }
        if (tenant_ && !tenant_->try_admit(to_post_.front().len)) {
          // Tenant QoS deferred us: another job owns this share of the
          // devices right now. Completions (ours or theirs, seen via the
          // governor) advance the fairness floor; the poll phase below
          // keeps time moving until admission reopens.
          ++qos_deferrals_;
          break;
        }
        p = std::move(to_post_.front());
        to_post_.pop_front();
        // Bind the piece to the extent's *current* route at post time (it
        // may have been re-routed since the piece was queued). Pieces are
        // chunk-aligned splits, so piece k starts at offset + k * chunk.
        // Write extents never re-route, so their queued offsets stand.
        p.nid = nid;
        if (!p.op->extent.write) {
          p.offset = p.op->extent.offset +
                     static_cast<std::uint64_t>(p.idx) * config_.chunk_bytes;
        }
      }
      if (!p.buffer.valid()) p.buffer = pool_->allocate();  // retry keeps its
      ++p.attempts;
      co_await core.compute(cal_->dlfs.prep_request + cal_->dlfs.sq_post);
      const std::uint64_t tag = next_tag_++;
      const auto st = q->submit(
          p.op->extent.write ? spdk::IoOp::kWrite : spdk::IoOp::kRead,
          p.offset, p.buffer.span().subspan(0, p.len), tag);
      if (st == spdk::IoStatus::kQueueFull) {
        // The command never reached the device; hand the QoS grant back.
        if (tenant_) tenant_->cancel_admit(p.len);
        dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
        if (q->connected()) {
          // A concurrent pumper filled the queue while we were prepping.
          to_post_.push_front(std::move(p));
          break;
        }
        // The queue slipped into reconnecting (and hit its admission cap)
        // mid-prep: park the piece at the back so healthy nodes keep
        // posting; its route advances when the node is declared down.
        to_post_.push_back(std::move(p));
        continue;
      }
      if (st == spdk::IoStatus::kConnectionLost) {
        // The queue's reconnect budget is spent (or the local controller
        // died): the whole node is gone, not just this piece. Fail over
        // to a surviving replica in place when the extent has one.
        if (tenant_) tenant_->cancel_admit(p.len);  // never left the host
        mark_node_down(p.nid);
        {
          dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
          if (!reroute_piece(p)) {
            fail_op(*p.op, std::make_exception_ptr(IoError(
                               p.nid, p.offset, IoErrorKind::kNodeDown)));
          }
        }
        progress = true;
        continue;
      }
      if (st != spdk::IoStatus::kOk) {
        throw std::runtime_error("unexpected submit failure in read_extents");
      }
      ++posted_;
      {
        dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
        in_flight_.emplace(tag, std::move(p));
      }
      progress = true;
    }

    // Poll every queue with work outstanding.
    std::uint64_t polled = 0;
    for (const auto& target : targets_) {
      if (!target || target->outstanding() == 0) continue;
      ++polled;
    }
    if (polled > 0) {
      co_await core.compute(cal_->dlfs.poll_iteration * polled);
    }
    for (const auto& target : targets_) {
      if (!target) continue;
      const std::vector<spdk::IoCompletion> comps = target->poll();
      if (comps.empty()) continue;
      // Batched completion drain: every piece this poll harvested is
      // claimed under ONE ledger acquisition (the real SCQ is drained
      // with one lock hold, not one per completion), and the handling
      // cost for the whole batch is charged as a single compute slice.
      // Status routing below still processes completions in harvest
      // order, so retry/failover behaviour per piece is unchanged.
      std::vector<std::pair<spdk::IoCompletion, Piece>> ready;
      ready.reserve(comps.size());
      {
        dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
        for (const spdk::IoCompletion& c : comps) {
          auto it = in_flight_.find(c.user_tag);
          assert(it != in_flight_.end());
          ready.emplace_back(c, std::move(it->second));
          in_flight_.erase(it);
        }
      }
      co_await core.compute(cal_->dlfs.completion_handling * ready.size());
      for (auto& [c, p] : ready) {
        progress = true;
        // Every harvested completion frees one QoS grant, whatever its
        // status — a retry re-admits when it is re-posted.
        if (tenant_) tenant_->on_complete(p.len);
        if (p.op->error_) continue;  // failed extent: buffer just drops
        if (c.status == spdk::IoStatus::kConnectionLost) {
          // Transport gave up on the node. Re-route the piece to a
          // surviving replica in place; queued siblings follow the
          // extent's new route in the posting loop above.
          mark_node_down(p.nid);
          dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
          if (!reroute_piece(p)) {
            fail_op(*p.op, std::make_exception_ptr(IoError(
                               p.nid, p.offset, IoErrorKind::kNodeDown)));
          }
          continue;
        }
        if (c.status == spdk::IoStatus::kMediaError ||
            c.status == spdk::IoStatus::kTimeout) {
          // Transient fault: re-post the same piece (same cache chunk)
          // until the retry budget runs out, backing off per attempt so
          // retries don't hot-loop the device queue.
          if (c.status == spdk::IoStatus::kTimeout) ++timeouts_;
          if (p.attempts > config_.max_retries) {
            if (c.status == spdk::IoStatus::kTimeout) {
              // Timeout budget spent: before declaring the read failed,
              // try a replica — the node may be slow or partitioned while
              // a sibling copy is healthy. Media errors stay sample-fatal
              // (the application must hear about bad bytes).
              dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
              if (reroute_piece(p)) continue;
            }
            fail_op(*p.op,
                    std::make_exception_ptr(IoError(
                        p.nid, p.offset,
                        c.status == spdk::IoStatus::kTimeout
                            ? IoErrorKind::kTimeout
                            : IoErrorKind::kMedia)));
            continue;
          }
          ++retries_;
          const dlsim::SimDuration backoff =
              config_.retry_backoff
              << std::min<std::uint32_t>(p.attempts - 1, 10);
          dlsim::AccessSlice slice{pieces_ledger_, /*write=*/true};
          if (backoff == 0) {
            to_post_.push_back(std::move(p));
          } else {
            p.not_before = sim_->now() + backoff;
            delayed_.push_back(std::move(p));
          }
          continue;
        }
        ++harvested_;
        ExtentOp& op = *p.op;
        op.buffers_[p.idx] = std::move(p.buffer);
        op.lens_[p.idx] = p.len;
        if (++op.pieces_done_ == op.pieces_total_) {
          co_await finish_extent(core, p.op);
        }
      }
    }

    // Fig. 7b: application compute folded into this batch's polling loop,
    // once per read batch — the paper measures how much concurrent
    // computation one mini-batch's I/O can hide. It runs after the first
    // posting round so the device works underneath it.
    if (!injected_done) {
      injected_done = true;
      co_await core.compute(injected_compute);
      progress = true;  // time passed; re-poll before deciding to wait
    }

    if (!progress && !satisfied()) {
      co_await wait_any(core);
    }
  }
}

dlsim::Task<void> IoEngine::await_op(dlsim::CpuCore& core, ExtentOpPtr op,
                                     dlsim::SimDuration injected_compute) {
  co_await pump(core, *op, injected_compute);
  if (!op->finished_) co_await op->done.wait();  // copy stage completing
}

dlsim::Task<void> IoEngine::read_extents(dlsim::CpuCore& core,
                                         std::vector<ReadExtent> extents,
                                         dlsim::SimDuration injected_compute) {
  if (extents.empty()) co_return;
  auto ops = start_extents(std::move(extents));
  std::exception_ptr first_error;
  for (auto& op : ops) {
    co_await await_op(core, op, injected_compute);
    injected_compute = 0;
    if (op->error() && !first_error) first_error = op->error();
  }
  if (first_error) std::rethrow_exception(first_error);
}

dlsim::Task<void> IoEngine::read_one(dlsim::CpuCore& core, std::uint16_t nid,
                                     std::uint64_t offset, std::uint32_t len,
                                     std::byte* dst,
                                     std::optional<std::size_t>
                                         cache_sample_id,
                                     std::vector<RouteHop> routes) {
  std::vector<ReadExtent> one(1);
  one[0] = ReadExtent{nid,     offset, len, dst, cache_sample_id,
                      nullptr, {},     std::move(routes)};
  co_await read_extents(core, std::move(one));
}

dlsim::SimDuration IoEngine::copy_busy_ns() const {
  dlsim::SimDuration total = 0;
  for (const auto& c : copy_cores_) total += c->busy_ns();
  return total;
}

std::uint64_t IoEngine::cross_core_handoffs() const {
  std::uint64_t total = 0;
  for (const auto& c : copy_cores_) total += c->cross_core_handoffs();
  return total;
}

}  // namespace dlfs::core

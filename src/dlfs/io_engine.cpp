#include "dlfs/io_engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/units.hpp"

namespace dlfs::core {

IoEngine::IoEngine(dlsim::Simulator& sim, mem::HugePagePool& pool,
                   SampleCache& cache, const Calibration& cal,
                   const IoEngineConfig& config)
    : sim_(&sim), pool_(&pool), cache_(&cache), cal_(&cal), config_(config) {
  scq_ = std::make_unique<dlsim::Channel<CopyJob>>(sim, config_.scq_capacity);
  for (std::uint32_t i = 0; i < config_.copy_threads; ++i) {
    copy_cores_.push_back(
        std::make_unique<dlsim::CpuCore>(sim, "copy-" + std::to_string(i)));
    sim.spawn_daemon(copy_thread_loop(i), "dlfs-copy-" + std::to_string(i));
  }
}

IoEngine::~IoEngine() { scq_->close(); }

void IoEngine::attach_target(std::uint16_t nid,
                             std::unique_ptr<spdk::IoQueue> queue) {
  if (targets_.size() <= nid) targets_.resize(nid + 1);
  targets_[nid] = std::move(queue);
}

dlsim::SimDuration IoEngine::copy_cost(const CopyJob& job) const {
  std::uint64_t bytes = 0;
  for (auto l : job.piece_lens) bytes += l;
  for (const auto& v : job.views) bytes += v.size();
  return dlsim::transfer_time(bytes, cal_->dlfs.copy_bw_bytes_per_sec);
}

void IoEngine::do_copy(CopyJob& job) {
  std::byte* out = job.dst;
  std::uint64_t copied = 0;
  for (std::size_t i = 0; i < job.owned_pieces.size(); ++i) {
    const std::uint32_t n = job.piece_lens[i];
    if (out != nullptr) {
      std::memcpy(out, job.owned_pieces[i].data(), n);
      out += n;
    }
    copied += n;
  }
  for (const auto& v : job.views) {
    if (out != nullptr) {
      std::memcpy(out, v.data(), v.size());
      out += v.size();
    }
    copied += v.size();
  }
  bytes_copied_ += copied;
  if (job.cache_sample_id && !job.owned_pieces.empty()) {
    cache_->insert(*job.cache_sample_id, std::move(job.owned_pieces),
                   std::move(job.piece_lens));
  }
  if (job.latch != nullptr) job.latch->count_down();
}

dlsim::Task<void> IoEngine::copy_thread_loop(std::size_t idx) {
  dlsim::CpuCore& core = *copy_cores_[idx];
  for (;;) {
    auto job = co_await scq_->pop();
    if (!job) co_return;
    co_await core.compute(cal_->dlfs.completion_handling + copy_cost(*job));
    do_copy(*job);
  }
}

dlsim::Task<void> IoEngine::enqueue_copy(CopyJob job) {
  if (config_.copy_threads == 0) {
    // No pool configured: the caller's context performs the copy. The
    // cost is charged by run_copy_inline; here we only have the engine's
    // own context, so execute directly with a bare delay.
    co_await sim_->delay(cal_->dlfs.completion_handling + copy_cost(job));
    do_copy(job);
    co_return;
  }
  co_await scq_->push(std::move(job));
}

dlsim::Task<void> IoEngine::run_copy_inline(dlsim::CpuCore& core,
                                            CopyJob job) {
  co_await core.compute(cal_->dlfs.completion_handling + copy_cost(job));
  do_copy(job);
}

dlsim::Task<void> IoEngine::wait_any(dlsim::CpuCore& core,
                                     const std::vector<std::uint16_t>& nids) {
  // Busy-polling: all waiting time is CPU time (SPDK semantics). If every
  // outstanding queue is a local device queue the completion time is
  // knowable and we jump straight there; any remote queue forces quantum
  // polling.
  std::optional<dlsim::SimTime> known;
  bool any_unknown = false;
  for (auto nid : nids) {
    const auto& q = targets_[nid];
    if (q->outstanding() == 0) continue;
    if (auto t = q->next_completion_at()) {
      known = known ? std::min(*known, *t) : *t;
    } else {
      any_unknown = true;
    }
  }
  const dlsim::SimTime now = sim_->now();
  if (!any_unknown && known && *known > now) {
    co_await core.compute(*known - now);
  } else {
    co_await core.compute(config_.poll_quantum);
  }
}

dlsim::Task<void> IoEngine::read_extents(dlsim::CpuCore& core,
                                         std::vector<ReadExtent> extents,
                                         dlsim::SimDuration injected_compute) {
  if (extents.empty()) co_return;

  // --- prep: split every extent into chunk-sized pieces -------------------
  struct ExtentState {
    std::uint32_t pieces_total = 0;
    std::uint32_t pieces_done = 0;
    std::vector<mem::DmaBuffer> buffers;
    std::vector<std::uint32_t> lens;
  };
  std::vector<ExtentState> state(extents.size());
  std::deque<Piece> to_post;
  std::vector<std::uint16_t> used_nids;
  for (std::size_t e = 0; e < extents.size(); ++e) {
    const ReadExtent& x = extents[e];
    if (x.nid >= targets_.size() || targets_[x.nid] == nullptr) {
      throw std::logic_error("read_extents: no queue for storage node " +
                             std::to_string(x.nid));
    }
    if (std::find(used_nids.begin(), used_nids.end(), x.nid) ==
        used_nids.end()) {
      used_nids.push_back(x.nid);
    }
    std::uint64_t off = x.offset;
    std::uint32_t left = x.len;
    while (left > 0) {
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(left, config_.chunk_bytes));
      to_post.push_back(Piece{e, off, n, mem::DmaBuffer{}});
      ++state[e].pieces_total;
      off += n;
      left -= n;
    }
    state[e].buffers.reserve(state[e].pieces_total);
    state[e].lens.reserve(state[e].pieces_total);
  }

  const std::size_t total_pieces = to_post.size();
  std::unordered_map<std::uint64_t, Piece> in_flight;
  in_flight.reserve(total_pieces);
  dlsim::CountdownLatch done_latch(*sim_, extents.size());
  std::size_t harvested_here = 0;
  bool injected_done = false;

  // --- post/poll loop ------------------------------------------------------
  while (harvested_here < total_pieces) {
    bool progress = false;

    // Post while targets have queue space and the pool has chunks. The
    // sample cache shares the pool: under pressure it yields LRU entries,
    // and if nothing is evictable *and* nothing is in flight the read can
    // never make progress — fail loudly instead of livelocking.
    while (!to_post.empty()) {
      Piece& head = to_post.front();
      spdk::IoQueue& q = *targets_[extents[head.extent_idx].nid];
      if (q.outstanding() >= q.depth()) break;
      if (pool_->free_chunks() == 0 && !cache_->evict_lru_one()) {
        if (in_flight.empty() && scq_->empty()) {
          throw std::runtime_error(
              "huge-page pool exhausted: cache pinned + nothing in flight");
        }
        break;
      }
      Piece p = std::move(head);
      to_post.pop_front();
      if (!p.buffer.valid()) p.buffer = pool_->allocate();  // retry keeps its
      ++p.attempts;
      co_await core.compute(cal_->dlfs.prep_request + cal_->dlfs.sq_post);
      const std::uint64_t tag = next_tag_++;
      const auto st = q.submit(spdk::IoOp::kRead, p.offset,
                               p.buffer.span().subspan(0, p.len), tag);
      if (st != spdk::IoStatus::kOk) {
        throw std::runtime_error("unexpected submit failure in read_extents");
      }
      ++posted_;
      in_flight.emplace(tag, std::move(p));
      progress = true;
    }

    // Poll every queue in use.
    co_await core.compute(cal_->dlfs.poll_iteration *
                          static_cast<std::uint64_t>(used_nids.size()));
    for (auto nid : used_nids) {
      for (const auto& c : targets_[nid]->poll()) {
        auto it = in_flight.find(c.user_tag);
        assert(it != in_flight.end());
        Piece p = std::move(it->second);
        in_flight.erase(it);
        co_await core.compute(cal_->dlfs.completion_handling);
        if (c.status == spdk::IoStatus::kMediaError) {
          // Transient fault: re-post the same piece (same cache chunk)
          // until the retry budget runs out.
          if (p.attempts > config_.max_retries) {
            throw IoError(extents[p.extent_idx].nid, p.offset);
          }
          ++retries_;
          to_post.push_back(std::move(p));
          progress = true;
          continue;
        }
        ++harvested_;
        ++harvested_here;
        ExtentState& es = state[p.extent_idx];
        es.buffers.push_back(std::move(p.buffer));
        es.lens.push_back(p.len);
        if (++es.pieces_done == es.pieces_total) {
          ReadExtent& x = extents[p.extent_idx];
          if (x.dst != nullptr) {
            CopyJob job;
            job.owned_pieces = std::move(es.buffers);
            job.piece_lens = std::move(es.lens);
            job.dst = x.dst;
            job.cache_sample_id = x.cache_sample_id;
            job.latch = &done_latch;
            if (config_.copy_threads == 0) {
              co_await run_copy_inline(core, std::move(job));
            } else {
              co_await enqueue_copy(std::move(job));
            }
          } else {
            if (x.out_buffers != nullptr) {
              *x.out_buffers = std::move(es.buffers);
            }
            if (x.on_buffers_ready) x.on_buffers_ready();
            done_latch.count_down();
          }
        }
        progress = true;
      }
    }

    // Fig. 7b: application compute folded into this batch's polling loop,
    // once per read_extents call — the paper measures how much concurrent
    // computation one mini-batch's I/O can hide. It runs after the first
    // posting round so the device works underneath it.
    if (injected_compute > 0 && !injected_done) {
      injected_done = true;
      co_await core.compute(injected_compute);
      progress = true;  // time passed; re-poll before deciding to wait
    }

    if (!progress && harvested_here < total_pieces) {
      co_await wait_any(core, used_nids);
    }
  }

  co_await done_latch.wait();
}

dlsim::Task<void> IoEngine::read_one(dlsim::CpuCore& core, std::uint16_t nid,
                                     std::uint64_t offset, std::uint32_t len,
                                     std::byte* dst,
                                     std::optional<std::size_t>
                                         cache_sample_id) {
  std::vector<ReadExtent> one(1);
  one[0] = ReadExtent{nid, offset, len, dst, cache_sample_id, nullptr};
  co_await read_extents(core, std::move(one));
}

dlsim::SimDuration IoEngine::copy_busy_ns() const {
  dlsim::SimDuration total = 0;
  for (const auto& c : copy_cores_) total += c->busy_ns();
  return total;
}

}  // namespace dlfs::core

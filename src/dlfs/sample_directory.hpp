#pragma once

// SampleDirectory: the in-memory tree-based sample directory (§III-B).
//
// The directory is an array of AVL trees, one per storage node; tree i
// holds the entries of every sample stored on node i's NVMe device. Each
// node builds the tree for its own shard at mount and the trees are
// all-gathered so every node holds the complete directory. Samples are
// assigned to storage nodes by name hash (the paper: "partitioned ...
// according to the file name and the number of storage nodes").
//
// Keys are the low 48 bits of a 64-bit name hash (the entry format only
// has 48 key bits). 48-bit collisions are real at paper scale (50M
// samples), so colliding keys are linearly probed at insert and the
// full-hash -> probed-key mapping is kept in a (tiny) side table consulted
// on name lookups. The paper does not describe its collision story; this
// is the minimal scheme that keeps the 128-bit entry intact.
//
// Deviation from the paper noted in DESIGN.md: entries here are shared
// between in-process "nodes" instead of replicated per node (identical
// copies either way), so the per-node V bit lives in a per-instance
// sidecar bitmap (see SampleCache), not in the shared entry.

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "dlfs/avl_tree.hpp"
#include "dlfs/sample_entry.hpp"

namespace dlfs::core {

class SampleDirectory {
 public:
  using Tree = AvlTree<std::uint64_t, SampleEntry>;

  explicit SampleDirectory(std::uint32_t num_nodes);

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(trees_.size());
  }

  /// Storage node a sample name is assigned to (partition function used
  /// both to place data at mount and to pick the tree at lookup).
  [[nodiscard]] std::uint16_t owner_of(std::string_view name) const {
    return static_cast<std::uint16_t>(hash64(name) % trees_.size());
  }

  /// Inserts a sample during mount. `sample_id` is the dataset index;
  /// (nid, offset, len) locate the bytes on nid's device. Throws if the
  /// name duplicates an existing sample.
  void insert(std::size_t sample_id, std::string_view name, std::uint16_t nid,
              std::uint64_t offset, std::uint32_t len);

  /// Name-based lookup (the dlfs_open path). Returns nullptr if absent.
  [[nodiscard]] const SampleEntry* lookup(std::string_view name) const;

  /// Id-based lookup (the dlfs_sequence/bread path): resolves the stored
  /// (nid, key) for the sample and searches that AVL tree — the same tree
  /// walk a name lookup performs, so the charged cost is identical.
  [[nodiscard]] const SampleEntry* lookup_id(std::size_t sample_id) const;

  /// File-oriented entries (§III-B.1: "there is also an entry taking by
  /// the batched file for file-oriented access"): a whole batched record
  /// file gets an entry in the tree of the node that stores it. Files
  /// are placed with their samples, so (unlike sample entries) the tree
  /// is remembered in a side index rather than derived from the hash.
  void insert_file(std::string_view name, std::uint16_t nid,
                   std::uint64_t offset, std::uint32_t len);
  [[nodiscard]] const SampleEntry* lookup_file(std::string_view name) const;
  [[nodiscard]] std::size_t num_files() const { return file_index_.size(); }

  // --- replica placement ---------------------------------------------------
  // k-way deterministic replication: the primary stays at `hash % N`
  // (owner_of); replica r lives on node `hash(name ‖ r) % N`, skipping
  // nodes already holding a copy. Replicas are *alternate routes*, not
  // directory entries: each is a (nid, offset) recorded against the
  // sample id, moved with the shard in the mount-time allgather, and
  // consulted only when a read must fail over. Order = failover order.

  /// Records one replica of `sample_id`. Must be called after insert().
  void add_replica(std::size_t sample_id, std::uint16_t nid,
                   std::uint64_t offset);

  /// Alternate placements of a sample, in failover order (empty when the
  /// dataset was mounted without replication).
  [[nodiscard]] const std::vector<RouteHop>& replicas(
      std::size_t sample_id) const;

  /// Drops every replica hop hosted on `nid` (all samples). Called when a
  /// node is declared permanently dead: its routes are stale the moment the
  /// declaration lands, and the repair engine restores the replication
  /// factor elsewhere. Reads holding an already-issued route snapshot are
  /// unaffected (snapshots copy); new issues stop seeing the node at once —
  /// this is the "atomic publication" half of hop mutation. Returns the
  /// number of hops dropped.
  std::size_t drop_replicas_on(std::uint16_t nid);

  [[nodiscard]] std::size_t num_replicas() const { return replica_rows_; }

  /// Monotone per-sample route-set version: bumped whenever the hop set
  /// of `sample_id` changes (add_replica / drop_replicas_on). Cached
  /// directory rows stamp the version they were filled at; a mismatch
  /// means the repair daemon republished the sample since the row was
  /// cached and the row must not be served (see DirectoryView).
  [[nodiscard]] std::uint32_t route_version(std::size_t sample_id) const {
    return sample_id < route_versions_.size() ? route_versions_[sample_id] : 0;
  }

  /// Coarse whole-directory route epoch: bumped once per mutation call
  /// that changed any hop set. Name-keyed cache rows (which cannot name
  /// a sample id) validate against this instead.
  [[nodiscard]] std::uint64_t route_epoch() const { return route_epoch_; }

  [[nodiscard]] std::size_t num_samples() const { return id_index_.size(); }

  /// Owner storage slot of a sample id — an O(1) read of the id-index
  /// row (partition metadata), not a tree walk. The sharded
  /// DirectoryView routes lazy lookups with it.
  [[nodiscard]] std::uint16_t owner_slot_of(std::size_t sample_id) const {
    return id_index_.at(sample_id).nid;
  }
  [[nodiscard]] const Tree& tree(std::uint16_t nid) const {
    return trees_.at(nid);
  }

  // Serialized row sizes — the single source of truth for directory
  // memory/transfer accounting. Used by shard_bytes() for the full
  // allgather figure and by DirectoryView to account resident shards,
  // partition-map rows and lookup-cache entries in the sharded mount.
  static constexpr std::uint64_t kEntryBytes = 16;     // packed SampleEntry
  static constexpr std::uint64_t kIdRowBytes = 12;     // id -> (nid, key)
  static constexpr std::uint64_t kRouteRowBytes = 12;  // one replica hop

  /// Serialized size of node `nid`'s shard — what the mount-time
  /// allgather moves per node (16 B entry + 12 B id-index row, plus a
  /// 12 B route row for every replica hosted on this node).
  [[nodiscard]] std::uint64_t shard_bytes(std::uint16_t nid) const {
    return shard_counts_.at(nid) * (kEntryBytes + kIdRowBytes) +
           replica_counts_.at(nid) * kRouteRowBytes;
  }

  /// Sample entries in node `nid`'s shard (mount-time insert count).
  [[nodiscard]] std::uint64_t shard_entries(std::uint16_t nid) const {
    return shard_counts_.at(nid);
  }

  [[nodiscard]] std::size_t collision_count() const {
    return collision_keys_.size();
  }

  // --- node availability ---------------------------------------------------
  // Wholesale V-bit state for one node's tree: when a storage node's
  // reconnect budget is exhausted the I/O engine clears its availability
  // here, and bread/prefetch skip its samples until a reprobe restores it.
  // (The per-sample V bits live in the per-instance SampleCache sidecar;
  // this is the per-*node* fault-domain analog.)
  void set_node_available(std::uint16_t nid, bool up) {
    node_available_.at(nid) = up ? 1 : 0;
  }
  [[nodiscard]] bool node_available(std::uint16_t nid) const {
    return nid < node_available_.size() && node_available_[nid] != 0;
  }
  [[nodiscard]] std::uint32_t nodes_available() const {
    std::uint32_t n = 0;
    for (const std::uint8_t a : node_available_) n += a;
    return n;
  }

  /// Test-only: shrink the linear-probe key space so saturation (and the
  /// wrap-around overflow guard) can be exercised without 2^48 inserts.
  void set_probe_mask_for_test(std::uint64_t mask) { probe_mask_ = mask; }

 private:
  struct IdLoc {
    std::uint16_t nid = 0xffff;
    std::uint64_t key = 0;
  };

  std::vector<Tree> trees_;
  std::vector<std::uint8_t> node_available_;  // index = nid; 1 = serving
  std::vector<IdLoc> id_index_;          // sample id -> (nid, key)
  std::unordered_map<std::uint64_t, IdLoc> file_index_;  // file hash -> loc
  std::vector<std::uint64_t> shard_counts_;
  std::vector<std::vector<RouteHop>> replica_index_;  // sample id -> routes
  std::vector<std::uint64_t> replica_counts_;  // replicas hosted per nid
  std::size_t replica_rows_ = 0;
  std::vector<std::uint32_t> route_versions_;  // sample id -> hop-set version
  std::uint64_t route_epoch_ = 0;              // any-route mutation counter
  std::uint64_t probe_mask_ = SampleEntry::kKeyMask;
  // full 64-bit name hash -> probed key, for the rare 48-bit collisions.
  std::unordered_map<std::uint64_t, std::uint64_t> collision_keys_;
};

}  // namespace dlfs::core

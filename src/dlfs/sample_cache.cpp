#include "dlfs/sample_cache.hpp"

#include <cassert>
#include <stdexcept>

namespace dlfs::core {

SampleCache::SampleCache(mem::HugePagePool& pool, std::size_t capacity_chunks,
                         std::size_t num_samples)
    : pool_(&pool), capacity_(capacity_chunks), valid_bits_(num_samples, 0) {}

std::size_t SampleCache::resident_samples() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.map.size();
  return n;
}

std::size_t SampleCache::resident_chunks() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.chunks_used;
  return n;
}

std::vector<std::span<const std::byte>> SampleCache::pin(
    std::size_t sample_id) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};  // LRU refresh mutates
  auto it = sh.map.find(sample_id);
  if (it == sh.map.end()) return {};
  Entry& e = it->second;
  ++e.pins;
  // Refresh recency: shard-list position plus the global stamp.
  sh.lru.erase(e.lru_pos);
  sh.lru.push_front(sample_id);
  e.lru_pos = sh.lru.begin();
  e.last_use = ++tick_;
  std::vector<std::span<const std::byte>> out;
  out.reserve(e.pieces.size());
  for (std::size_t i = 0; i < e.pieces.size(); ++i) {
    out.push_back(e.pieces[i].span().subspan(0, e.piece_lens[i]));
  }
  return out;
}

void SampleCache::unpin(std::size_t sample_id) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  auto it = sh.map.find(sample_id);
  if (it == sh.map.end()) {
    throw std::logic_error("unpin of non-resident sample");
  }
  if (it->second.pins == 0) throw std::logic_error("unpin without pin");
  --it->second.pins;
}

void SampleCache::insert(std::size_t sample_id,
                         std::vector<mem::DmaBuffer> pieces,
                         std::vector<std::uint32_t> piece_lens) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  assert(pieces.size() == piece_lens.size());
  if (sample_id >= valid_bits_.size()) {
    throw std::out_of_range("sample id beyond dataset size");
  }
  if (sh.map.contains(sample_id)) return;  // already resident (racing reads)
  const std::size_t need = pieces.size();
  if (need > capacity_) return;  // can never fit; don't retain
  evict_until_fits(need);
  if (resident_chunks() + need > capacity_) return;  // everything pinned
  Entry e;
  e.pieces = std::move(pieces);
  e.piece_lens = std::move(piece_lens);
  sh.lru.push_front(sample_id);
  e.lru_pos = sh.lru.begin();
  e.last_use = ++tick_;
  sh.chunks_used += need;
  sh.map.emplace(sample_id, std::move(e));
  valid_bits_[sample_id] = 1;
}

void SampleCache::evict(std::size_t sample_id) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  auto it = sh.map.find(sample_id);
  if (it == sh.map.end() || it->second.pins > 0) return;
  sh.chunks_used -= it->second.pieces.size();
  sh.lru.erase(it->second.lru_pos);
  valid_bits_[sample_id] = 0;
  sh.map.erase(it);
}

SampleCache::Victim SampleCache::find_global_lru_victim() const {
  // Within one shard the list is recency-ordered, so the first unpinned
  // entry from the back is that shard's oldest unpinned candidate; the
  // globally oldest is the stamp-minimum across the shard candidates.
  Victim v;
  std::uint64_t oldest = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& sh = shards_[s];
    dlsim::AccessSlice slice{sh.ledger, /*write=*/false};
    for (auto it = sh.lru.rbegin(); it != sh.lru.rend(); ++it) {
      const Entry& e = sh.map.at(*it);
      if (e.pins > 0) continue;
      if (!v.found || e.last_use < oldest) {
        v.found = true;
        v.shard = s;
        v.sample_id = *it;
        oldest = e.last_use;
      }
      break;
    }
  }
  return v;
}

void SampleCache::evict_from_shard(std::size_t shard_idx,
                                   std::size_t sample_id) {
  Shard& sh = shards_[shard_idx];
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  auto it = sh.map.find(sample_id);
  assert(it != sh.map.end() && it->second.pins == 0);
  sh.chunks_used -= it->second.pieces.size();
  sh.lru.erase(it->second.lru_pos);
  valid_bits_[sample_id] = 0;
  sh.map.erase(it);
}

bool SampleCache::evict_lru_one() {
  const Victim v = find_global_lru_victim();
  if (!v.found) return false;
  evict_from_shard(v.shard, v.sample_id);
  return true;
}

void SampleCache::evict_until_fits(std::size_t incoming_chunks) {
  while (resident_chunks() + incoming_chunks > capacity_) {
    const Victim v = find_global_lru_victim();
    if (!v.found) return;  // everything pinned
    evict_from_shard(v.shard, v.sample_id);
  }
}

}  // namespace dlfs::core

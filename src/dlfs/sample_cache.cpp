#include "dlfs/sample_cache.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "common/hash.hpp"

namespace dlfs::core {

SampleCache::SampleCache(mem::HugePagePool& pool, std::size_t capacity_chunks,
                         std::size_t num_samples)
    : pool_(&pool), capacity_(capacity_chunks), valid_bits_(num_samples, 0) {}

std::size_t SampleCache::resident_samples() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.map.size();
  return n;
}

std::size_t SampleCache::resident_chunks() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.chunks_used;
  return n;
}

std::vector<std::span<const std::byte>> SampleCache::pin(
    std::size_t sample_id) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};  // LRU refresh mutates
  auto it = sh.map.find(sample_id);
  if (it == sh.map.end()) return {};
  Entry& e = it->second;
  ++e.pins;
  // Refresh recency: shard-list position plus the global stamp.
  sh.lru.erase(e.lru_pos);
  sh.lru.push_front(sample_id);
  e.lru_pos = sh.lru.begin();
  e.last_use = ++tick_;
  std::vector<std::span<const std::byte>> out;
  out.reserve(e.pieces.size());
  for (std::size_t i = 0; i < e.pieces.size(); ++i) {
    out.push_back(e.pieces[i].span().subspan(0, e.piece_lens[i]));
  }
  return out;
}

void SampleCache::unpin(std::size_t sample_id) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  auto it = sh.map.find(sample_id);
  if (it == sh.map.end()) {
    throw std::logic_error("unpin of non-resident sample");
  }
  if (it->second.pins == 0) throw std::logic_error("unpin without pin");
  --it->second.pins;
}

void SampleCache::insert(std::size_t sample_id,
                         std::vector<mem::DmaBuffer> pieces,
                         std::vector<std::uint32_t> piece_lens) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  assert(pieces.size() == piece_lens.size());
  if (sample_id >= valid_bits_.size()) {
    throw std::out_of_range("sample id beyond dataset size");
  }
  if (sh.map.contains(sample_id)) return;  // already resident (racing reads)
  const std::size_t need = pieces.size();
  if (need > capacity_) return;  // can never fit; don't retain
  evict_until_fits(need);
  if (resident_chunks() + need > capacity_) return;  // everything pinned
  Entry e;
  e.pieces = std::move(pieces);
  e.piece_lens = std::move(piece_lens);
  sh.lru.push_front(sample_id);
  e.lru_pos = sh.lru.begin();
  e.last_use = ++tick_;
  sh.chunks_used += need;
  sh.map.emplace(sample_id, std::move(e));
  valid_bits_[sample_id] = 1;
  if (residency_listener_) residency_listener_(sample_id, true);
}

void SampleCache::evict(std::size_t sample_id) {
  Shard& sh = shard_of(sample_id);
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  auto it = sh.map.find(sample_id);
  if (it == sh.map.end() || it->second.pins > 0) return;
  sh.chunks_used -= it->second.pieces.size();
  sh.lru.erase(it->second.lru_pos);
  valid_bits_[sample_id] = 0;
  sh.map.erase(it);
  if (residency_listener_) residency_listener_(sample_id, false);
}

SampleCache::Victim SampleCache::find_global_lru_victim() const {
  // Within one shard the list is recency-ordered, so the first unpinned
  // entry from the back is that shard's oldest unpinned candidate; the
  // globally oldest is the stamp-minimum across the shard candidates.
  Victim v;
  std::uint64_t oldest = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& sh = shards_[s];
    dlsim::AccessSlice slice{sh.ledger, /*write=*/false};
    for (auto it = sh.lru.rbegin(); it != sh.lru.rend(); ++it) {
      const Entry& e = sh.map.at(*it);
      if (e.pins > 0) continue;
      if (!v.found || e.last_use < oldest) {
        v.found = true;
        v.shard = s;
        v.sample_id = *it;
        oldest = e.last_use;
      }
      break;
    }
  }
  return v;
}

void SampleCache::evict_from_shard(std::size_t shard_idx,
                                   std::size_t sample_id) {
  Shard& sh = shards_[shard_idx];
  dlsim::AccessSlice slice{sh.ledger, /*write=*/true};
  auto it = sh.map.find(sample_id);
  assert(it != sh.map.end() && it->second.pins == 0);
  sh.chunks_used -= it->second.pieces.size();
  sh.lru.erase(it->second.lru_pos);
  valid_bits_[sample_id] = 0;
  sh.map.erase(it);
  if (residency_listener_) residency_listener_(sample_id, false);
}

bool SampleCache::evict_lru_one() {
  const Victim v = find_global_lru_victim();
  if (!v.found) return false;
  evict_from_shard(v.shard, v.sample_id);
  return true;
}

void SampleCache::evict_until_fits(std::size_t incoming_chunks) {
  while (resident_chunks() + incoming_chunks > capacity_) {
    const Victim v = find_global_lru_victim();
    if (!v.found) return;  // everything pinned
    evict_from_shard(v.shard, v.sample_id);
  }
}

// --- PeerCacheIndex ---------------------------------------------------------

void PeerCacheIndex::register_member(std::uint32_t client, SampleCache* cache,
                                     dlsim::CpuCore* core) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  for (const Member& m : members_) {
    if (m.client == client) {
      throw std::logic_error("peer-cache member registered twice");
    }
  }
  members_.push_back(Member{client, cache, core});
}

void PeerCacheIndex::unregister_member(std::uint32_t client) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  std::erase_if(members_,
                [client](const Member& m) { return m.client == client; });
}

const PeerCacheIndex::Member* PeerCacheIndex::find_holder(
    std::size_t sample_id, std::uint32_t asking) const {
  dlsim::AccessSlice slice{ledger_, /*write=*/false};
  for (const Member& m : members_) {
    if (m.client == asking) continue;
    if (m.cache != nullptr && m.cache->valid(sample_id)) return &m;
  }
  return nullptr;
}

const PeerCacheIndex::Member* PeerCacheIndex::member_of(
    std::uint32_t client) const {
  dlsim::AccessSlice slice{ledger_, /*write=*/false};
  for (const Member& m : members_) {
    if (m.client == client) return &m;
  }
  return nullptr;
}

// --- PeerCacheDirectory -----------------------------------------------------

PeerCacheDirectory::PeerCacheDirectory(PeerCacheConfig cfg,
                                       std::uint32_t num_clients)
    : cfg_(cfg), num_clients_(num_clients) {
  if (num_clients == 0) {
    throw std::invalid_argument("peer-cache directory needs >= 1 client");
  }
}

std::uint32_t PeerCacheDirectory::home_client(std::size_t sample_id) const {
  // Same probe discipline as replica placement: hash the key with a
  // '\x1f'-separated probe rank. Only rank 0 (the home) is used today;
  // ranks > 0 are the natural successor chain if homes ever fail over.
  return static_cast<std::uint32_t>(
      hash64("peer\x1f" + std::to_string(sample_id) + "\x1f" + "0") %
      num_clients_);
}

void PeerCacheDirectory::advertise(std::uint32_t holder, std::uint16_t node,
                                   std::size_t sample_id,
                                   std::uint32_t bytes) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  NodeBook& book = books_[node];
  if (cfg_.advertise_budget_bytes != 0 &&
      book.bytes + bytes > cfg_.advertise_budget_bytes) {
    if (cfg_.eviction == PeerCacheConfig::Eviction::kRefuseNew) {
      ++refused_;
      return;
    }
    while (book.bytes + bytes > cfg_.advertise_budget_bytes &&
           !book.order.empty()) {
      const auto [old_sample, old_holder] = book.order.front();
      retract_locked(old_holder, old_sample);
      ++budget_retractions_;
    }
    if (book.bytes + bytes > cfg_.advertise_budget_bytes) {
      ++refused_;  // one sample larger than the whole budget
      return;
    }
  }
  auto& rows = ads_[sample_id];
  for (const Ad& a : rows) {
    if (a.holder == holder) return;  // already advertised
  }
  rows.push_back(Ad{holder, node, bytes});
  book.bytes += bytes;
  book.order.emplace_back(sample_id, holder);
}

void PeerCacheDirectory::retract_locked(std::uint32_t holder,
                                        std::size_t sample_id) {
  auto it = ads_.find(sample_id);
  if (it == ads_.end()) return;
  auto& rows = it->second;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].holder != holder) continue;
    NodeBook& book = books_[rows[i].node];
    book.bytes -= rows[i].bytes;
    for (auto oit = book.order.begin(); oit != book.order.end(); ++oit) {
      if (oit->first == sample_id && oit->second == holder) {
        book.order.erase(oit);
        break;
      }
    }
    rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(i));
    break;
  }
  if (rows.empty()) ads_.erase(it);
}

void PeerCacheDirectory::retract(std::uint32_t holder, std::size_t sample_id) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  retract_locked(holder, sample_id);
}

void PeerCacheDirectory::retract_all(std::uint32_t holder) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  std::vector<std::size_t> samples;
  for (const auto& [sample_id, rows] : ads_) {
    for (const Ad& a : rows) {
      if (a.holder == holder) {
        samples.push_back(sample_id);
        break;
      }
    }
  }
  for (const std::size_t sample_id : samples) {
    retract_locked(holder, sample_id);
  }
}

PeerCacheDirectory::Holder PeerCacheDirectory::find(
    std::size_t sample_id, std::uint32_t asking) const {
  dlsim::AccessSlice slice{ledger_, /*write=*/false};
  auto it = ads_.find(sample_id);
  if (it == ads_.end()) return {};
  for (const Ad& a : it->second) {
    if (a.holder == asking) continue;
    return Holder{true, a.holder, a.node};
  }
  return {};
}

std::uint64_t PeerCacheDirectory::advertised_bytes(std::uint16_t node) const {
  dlsim::AccessSlice slice{ledger_, /*write=*/false};
  auto it = books_.find(node);
  return it == books_.end() ? 0 : it->second.bytes;
}

}  // namespace dlfs::core

#include "dlfs/sample_cache.hpp"

#include <cassert>
#include <stdexcept>

namespace dlfs::core {

SampleCache::SampleCache(mem::HugePagePool& pool, std::size_t capacity_chunks,
                         std::size_t num_samples)
    : pool_(&pool), capacity_(capacity_chunks), valid_bits_(num_samples, 0) {}

std::vector<std::span<const std::byte>> SampleCache::pin(
    std::size_t sample_id) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};  // LRU refresh mutates
  auto it = map_.find(sample_id);
  if (it == map_.end()) return {};
  Entry& e = it->second;
  ++e.pins;
  // Refresh recency.
  lru_.erase(e.lru_pos);
  lru_.push_front(sample_id);
  e.lru_pos = lru_.begin();
  std::vector<std::span<const std::byte>> out;
  out.reserve(e.pieces.size());
  for (std::size_t i = 0; i < e.pieces.size(); ++i) {
    out.push_back(e.pieces[i].span().subspan(0, e.piece_lens[i]));
  }
  return out;
}

void SampleCache::unpin(std::size_t sample_id) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  auto it = map_.find(sample_id);
  if (it == map_.end()) throw std::logic_error("unpin of non-resident sample");
  if (it->second.pins == 0) throw std::logic_error("unpin without pin");
  --it->second.pins;
}

void SampleCache::insert(std::size_t sample_id,
                         std::vector<mem::DmaBuffer> pieces,
                         std::vector<std::uint32_t> piece_lens) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  assert(pieces.size() == piece_lens.size());
  if (sample_id >= valid_bits_.size()) {
    throw std::out_of_range("sample id beyond dataset size");
  }
  if (map_.contains(sample_id)) return;  // already resident (racing reads)
  const std::size_t need = pieces.size();
  if (need > capacity_) return;  // can never fit; don't retain
  evict_until_fits(need);
  if (chunks_used_ + need > capacity_) return;  // everything pinned
  Entry e;
  e.pieces = std::move(pieces);
  e.piece_lens = std::move(piece_lens);
  lru_.push_front(sample_id);
  e.lru_pos = lru_.begin();
  chunks_used_ += need;
  map_.emplace(sample_id, std::move(e));
  valid_bits_[sample_id] = 1;
}

void SampleCache::evict(std::size_t sample_id) {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  auto it = map_.find(sample_id);
  if (it == map_.end() || it->second.pins > 0) return;
  chunks_used_ -= it->second.pieces.size();
  lru_.erase(it->second.lru_pos);
  valid_bits_[sample_id] = 0;
  map_.erase(it);
}

bool SampleCache::evict_lru_one() {
  dlsim::AccessSlice slice{ledger_, /*write=*/true};
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const std::size_t victim = *it;
    if (map_.at(victim).pins > 0) continue;
    evict(victim);
    return true;
  }
  return false;
}

void SampleCache::evict_until_fits(std::size_t incoming_chunks) {
  if (chunks_used_ + incoming_chunks <= capacity_) return;
  // Walk from the LRU end, skipping pinned entries.
  auto it = lru_.end();
  while (chunks_used_ + incoming_chunks > capacity_ && it != lru_.begin()) {
    --it;
    const std::size_t victim = *it;
    Entry& e = map_.at(victim);
    if (e.pins > 0) continue;
    chunks_used_ -= e.pieces.size();
    valid_bits_[victim] = 0;
    it = lru_.erase(it);
    map_.erase(victim);
  }
}

}  // namespace dlfs::core

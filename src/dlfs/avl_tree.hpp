#pragma once

// AvlTree: the balanced binary search tree backing the in-memory sample
// directory (Fig. 3a: "the entire directory is partitioned into an array
// of balanced AVL trees"). Written from scratch — the directory's lookup
// cost model and the micro_avl benchmark measure precisely this
// structure, so hiding it behind std::map would defeat the experiment.
//
// Not thread-safe by design: the directory is built once at mount and is
// read-only afterwards (the paper leans on DL datasets being read-only to
// avoid any coherence machinery).

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace dlfs::core {

template <typename K, typename V>
class AvlTree {
 public:
  AvlTree() = default;
  AvlTree(AvlTree&&) noexcept = default;
  AvlTree& operator=(AvlTree&&) noexcept = default;
  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;
  ~AvlTree() { clear(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Inserts (key, value). Returns false (and leaves the tree unchanged)
  /// if the key already exists.
  bool insert(const K& key, V value) {
    bool inserted = false;
    root_ = insert_node(std::move(root_), key, std::move(value), inserted);
    if (inserted) ++size_;
    return inserted;
  }

  /// Finds a value by key; nullptr if absent. The non-const overload
  /// permits in-place mutation (the V-bit updates on cache fill/evict).
  [[nodiscard]] V* find(const K& key) {
    Node* n = root_.get();
    while (n) {
      if (key < n->key) {
        n = n->left.get();
      } else if (n->key < key) {
        n = n->right.get();
      } else {
        return &n->value;
      }
    }
    return nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const {
    return const_cast<AvlTree*>(this)->find(key);
  }

  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != nullptr;
  }

  /// Removes a key. Returns false if absent.
  bool erase(const K& key) {
    bool erased = false;
    root_ = erase_node(std::move(root_), key, erased);
    if (erased) --size_;
    return erased;
  }

  /// In-order traversal (ascending key order).
  void for_each(const std::function<void(const K&, const V&)>& fn) const {
    visit(root_.get(), fn);
  }

  void clear() {
    // Iterative teardown with an explicit stack: recursive unique_ptr
    // destruction would overflow the native stack on deep trees, and the
    // destructor must stay O(n) — the sample directory holds millions of
    // entries.
    if (root_) {
      std::vector<NodePtr> stack;
      stack.push_back(std::move(root_));
      while (!stack.empty()) {
        NodePtr n = std::move(stack.back());
        stack.pop_back();
        if (n->left) stack.push_back(std::move(n->left));
        if (n->right) stack.push_back(std::move(n->right));
      }
    }
    size_ = 0;
  }

  [[nodiscard]] int height() const { return node_height(root_.get()); }

  /// Validates AVL invariants (BST order + balance factors). O(n); used
  /// by property tests.
  [[nodiscard]] bool validate() const {
    bool ok = true;
    (void)check(root_.get(), nullptr, nullptr, ok);
    return ok;
  }

 private:
  struct Node {
    K key;
    V value;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    int height = 1;
    Node(const K& k, V v) : key(k), value(std::move(v)) {}
  };
  using NodePtr = std::unique_ptr<Node>;

  static int node_height(const Node* n) { return n ? n->height : 0; }
  static int balance_of(const Node* n) {
    return n ? node_height(n->left.get()) - node_height(n->right.get()) : 0;
  }
  static void update(Node* n) {
    n->height =
        1 + std::max(node_height(n->left.get()), node_height(n->right.get()));
  }

  static NodePtr rotate_right(NodePtr y) {
    NodePtr x = std::move(y->left);
    y->left = std::move(x->right);
    update(y.get());
    x->right = std::move(y);
    update(x.get());
    return x;
  }

  static NodePtr rotate_left(NodePtr x) {
    NodePtr y = std::move(x->right);
    x->right = std::move(y->left);
    update(x.get());
    y->left = std::move(x);
    update(y.get());
    return y;
  }

  static NodePtr rebalance(NodePtr n) {
    update(n.get());
    const int bf = balance_of(n.get());
    if (bf > 1) {
      if (balance_of(n->left.get()) < 0) n->left = rotate_left(std::move(n->left));
      return rotate_right(std::move(n));
    }
    if (bf < -1) {
      if (balance_of(n->right.get()) > 0) {
        n->right = rotate_right(std::move(n->right));
      }
      return rotate_left(std::move(n));
    }
    return n;
  }

  static NodePtr insert_node(NodePtr n, const K& key, V&& value,
                             bool& inserted) {
    if (!n) {
      inserted = true;
      return std::make_unique<Node>(key, std::move(value));
    }
    if (key < n->key) {
      n->left = insert_node(std::move(n->left), key, std::move(value),
                            inserted);
    } else if (n->key < key) {
      n->right = insert_node(std::move(n->right), key, std::move(value),
                             inserted);
    } else {
      inserted = false;
      return n;
    }
    return inserted ? rebalance(std::move(n)) : std::move(n);
  }

  static NodePtr erase_node(NodePtr n, const K& key, bool& erased) {
    if (!n) {
      erased = false;
      return nullptr;
    }
    if (key < n->key) {
      n->left = erase_node(std::move(n->left), key, erased);
    } else if (n->key < key) {
      n->right = erase_node(std::move(n->right), key, erased);
    } else {
      erased = true;
      if (!n->left) return std::move(n->right);
      if (!n->right) return std::move(n->left);
      // Replace with in-order successor.
      Node* succ = n->right.get();
      while (succ->left) succ = succ->left.get();
      n->key = succ->key;
      n->value = std::move(succ->value);
      bool dummy = false;
      n->right = erase_node(std::move(n->right), n->key, dummy);
    }
    return rebalance(std::move(n));
  }

  static void visit(const Node* n,
                    const std::function<void(const K&, const V&)>& fn) {
    if (!n) return;
    visit(n->left.get(), fn);
    fn(n->key, n->value);
    visit(n->right.get(), fn);
  }

  // Returns subtree height; sets ok=false on any violated invariant.
  static int check(const Node* n, const K* lo, const K* hi, bool& ok) {
    if (!n) return 0;
    if ((lo && !(*lo < n->key)) || (hi && !(n->key < *hi))) ok = false;
    const int hl = check(n->left.get(), lo, &n->key, ok);
    const int hr = check(n->right.get(), &n->key, hi, ok);
    if (std::abs(hl - hr) > 1) ok = false;
    if (n->height != 1 + std::max(hl, hr)) ok = false;
    return 1 + std::max(hl, hr);
  }

  NodePtr root_;
  std::size_t size_ = 0;
};

}  // namespace dlfs::core

#include "dlfs/sample_directory.hpp"

#include <stdexcept>

namespace dlfs::core {

SampleDirectory::SampleDirectory(std::uint32_t num_nodes)
    : trees_(num_nodes),
      node_available_(num_nodes, 1),
      shard_counts_(num_nodes, 0),
      replica_counts_(num_nodes, 0) {
  if (num_nodes == 0 || num_nodes > SampleEntry::kMaxNid + 1) {
    throw std::invalid_argument("node count must be in [1, 65536]");
  }
}

void SampleDirectory::insert(std::size_t sample_id, std::string_view name,
                             std::uint16_t nid, std::uint64_t offset,
                             std::uint32_t len) {
  const std::uint64_t full = hash64(name);
  if (nid != static_cast<std::uint16_t>(full % trees_.size())) {
    // Lookups derive the tree from the name hash; placement must agree.
    throw std::invalid_argument("sample '" + std::string(name) +
                                "' inserted on node " + std::to_string(nid) +
                                " but partitions to node " +
                                std::to_string(full % trees_.size()));
  }
  std::uint64_t key = full & SampleEntry::kKeyMask;
  Tree& tree = trees_.at(nid);

  if (!tree.insert(key, SampleEntry(nid, key, offset, len))) {
    // 48-bit collision within this node's tree: linear probing.
    std::uint64_t probe = key;
    for (;;) {
      probe = (probe + 1) & SampleEntry::kKeyMask;
      if (probe == key) {
        throw std::overflow_error("sample directory tree is full");
      }
      if (tree.insert(probe, SampleEntry(nid, probe, offset, len))) break;
    }
    if (collision_keys_.contains(full)) {
      // Same 64-bit hash for two distinct names: astronomically unlikely;
      // refuse rather than silently alias two samples.
      throw std::runtime_error("64-bit name-hash collision on '" +
                               std::string(name) + "'");
    }
    collision_keys_.emplace(full, probe);
    key = probe;
  }

  if (id_index_.size() <= sample_id) id_index_.resize(sample_id + 1);
  id_index_[sample_id] = IdLoc{nid, key};
  ++shard_counts_.at(nid);
}

const SampleEntry* SampleDirectory::lookup(std::string_view name) const {
  const std::uint64_t full = hash64(name);
  std::uint64_t key = full & SampleEntry::kKeyMask;
  if (auto it = collision_keys_.find(full); it != collision_keys_.end()) {
    key = it->second;
  }
  const std::uint16_t nid =
      static_cast<std::uint16_t>(full % trees_.size());
  return trees_[nid].find(key);
}

void SampleDirectory::insert_file(std::string_view name, std::uint16_t nid,
                                  std::uint64_t offset, std::uint32_t len) {
  const std::uint64_t full = hash64(name);
  if (file_index_.contains(full)) {
    throw std::invalid_argument("duplicate file entry '" + std::string(name) +
                                "'");
  }
  std::uint64_t key = full & probe_mask_;
  Tree& tree = trees_.at(nid);
  if (!tree.insert(key, SampleEntry(nid, key, offset, len))) {
    // Probe past sample entries — with the same full-wrap termination
    // guard as insert(); a saturated tree must throw, not spin forever.
    std::uint64_t probe = key;
    for (;;) {
      probe = (probe + 1) & probe_mask_;
      if (probe == key) {
        throw std::overflow_error("sample directory tree is full");
      }
      if (tree.insert(probe, SampleEntry(nid, probe, offset, len))) break;
    }
    key = probe;
  }
  file_index_.emplace(full, IdLoc{nid, key});
}

void SampleDirectory::add_replica(std::size_t sample_id, std::uint16_t nid,
                                  std::uint64_t offset) {
  if (nid >= trees_.size()) {
    throw std::invalid_argument("replica nid out of range");
  }
  if (offset > SampleEntry::kMaxOffset) {
    throw std::invalid_argument("replica offset exceeds 40 bits (1 TiB)");
  }
  if (sample_id >= id_index_.size() || id_index_[sample_id].nid == 0xffff) {
    throw std::invalid_argument("replica added for unknown sample id " +
                                std::to_string(sample_id));
  }
  if (replica_index_.size() <= sample_id) replica_index_.resize(sample_id + 1);
  replica_index_[sample_id].push_back(RouteHop{nid, offset});
  ++replica_counts_.at(nid);
  ++replica_rows_;
  if (route_versions_.size() <= sample_id) {
    route_versions_.resize(sample_id + 1, 0);
  }
  ++route_versions_[sample_id];
  ++route_epoch_;
}

std::size_t SampleDirectory::drop_replicas_on(std::uint16_t nid) {
  if (nid >= trees_.size()) {
    throw std::invalid_argument("drop_replicas_on: nid out of range");
  }
  std::size_t dropped = 0;
  for (std::size_t id = 0; id < replica_index_.size(); ++id) {
    const auto removed = std::erase_if(
        replica_index_[id], [nid](const RouteHop& h) { return h.nid == nid; });
    if (removed > 0) {
      if (route_versions_.size() <= id) route_versions_.resize(id + 1, 0);
      ++route_versions_[id];
    }
    dropped += removed;
  }
  if (dropped > 0) ++route_epoch_;
  replica_counts_.at(nid) -= dropped;
  replica_rows_ -= dropped;
  return dropped;
}

const std::vector<RouteHop>& SampleDirectory::replicas(
    std::size_t sample_id) const {
  static const std::vector<RouteHop> kNone;
  if (sample_id >= replica_index_.size()) return kNone;
  return replica_index_[sample_id];
}

const SampleEntry* SampleDirectory::lookup_file(std::string_view name) const {
  auto it = file_index_.find(hash64(name));
  if (it == file_index_.end()) return nullptr;
  return trees_.at(it->second.nid).find(it->second.key);
}

const SampleEntry* SampleDirectory::lookup_id(std::size_t sample_id) const {
  if (sample_id >= id_index_.size()) return nullptr;
  const IdLoc& loc = id_index_[sample_id];
  if (loc.nid == 0xffff) return nullptr;
  return trees_.at(loc.nid).find(loc.key);
}

}  // namespace dlfs::core

#pragma once

// SampleCache: the huge-page-backed sample cache of §III-C.1, plus the
// per-instance V-bit sidecar.
//
// "We allocate the sample cache on huge pages to store the data read from
// local/remote NVMe devices ... the cache is divided into many fixed-size
// chunks (256 KB by default)."
//
// Completed sample reads are retained in an LRU keyed by sample id; the
// V bit of a sample is on exactly while a copy is resident here, so a
// dlfs_read can serve a hit with a memcpy and no device I/O. Entries
// pinned by an in-flight copy are never evicted. Capacity is counted in
// pool chunks, mirroring how the real cache is carved.
//
// The index is sharded by sample id: each shard owns its own hash map,
// recency list and access ledger, so the hot-path operations (valid/pin/
// unpin/insert) form per-shard critical slices instead of funnelling
// every reader and the read-ahead inserter through one cache-wide slice.
// Recency and capacity stay *global*: entries carry a monotonically
// increasing last-use stamp, eviction always removes the globally
// least-recently-used unpinned entry (comparing the shard LRU tails by
// stamp), and the chunk budget is enforced across all shards — so the
// observable hit/miss/eviction behaviour is identical to a single-list
// LRU of the same capacity.

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/hugepage_pool.hpp"
#include "sim/check.hpp"

namespace dlsim {
class CpuCore;
}

namespace dlfs::core {

/// Cooperative peer sample cache configuration (nested in DlfsConfig).
/// The dataset is immutable after mount, so serving another instance's
/// cached bytes is coherence-free by construction — the only policy
/// knobs are whether to cooperate at all and how much residency a node
/// may advertise into the cluster cache directory.
struct PeerCacheConfig {
  /// What happens when new residency would push a node past its
  /// advertise budget.
  enum class Eviction : std::uint8_t {
    kLru,        // retract the node's oldest advertisement to make room
    kRefuseNew,  // keep the old set; the new residency goes unadvertised
  };

  bool enabled = false;
  /// Advertised-residency budget per client node, in bytes. 0 means
  /// every resident sample is advertised (already bounded by the cache
  /// capacity itself).
  std::uint64_t advertise_budget_bytes = 0;
  Eviction eviction = Eviction::kLru;

  friend bool operator==(const PeerCacheConfig&,
                         const PeerCacheConfig&) = default;
};

class SampleCache {
 public:
  /// `capacity_chunks` bounds the resident set; the pool is where chunk
  /// memory comes from (shared with in-flight I/O buffers).
  SampleCache(mem::HugePagePool& pool, std::size_t capacity_chunks,
              std::size_t num_samples);

  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// The per-instance V bit (paper: tracked in the sample entry; here a
  /// sidecar because entries are shared between in-process nodes).
  [[nodiscard]] bool valid(std::size_t sample_id) const {
    return valid_bits_[sample_id] != 0;
  }

  /// A resident sample's bytes, as the list of chunk-piece spans it
  /// occupies (in order). Also refreshes LRU recency and pins the entry
  /// until unpin(). Returns empty if not resident.
  [[nodiscard]] std::vector<std::span<const std::byte>> pin(
      std::size_t sample_id);
  void unpin(std::size_t sample_id);

  /// Inserts a completed read: takes ownership of the chunk buffers
  /// holding the sample (piece i holds bytes [piece_len[i]] of it).
  /// Evicts LRU victims (clearing their V bits) to stay within capacity;
  /// if everything is pinned the insert is skipped (the data still
  /// reaches the application; it just isn't retained).
  void insert(std::size_t sample_id, std::vector<mem::DmaBuffer> pieces,
              std::vector<std::uint32_t> piece_lens);

  /// Drops a resident sample (no-op if absent or pinned).
  void evict(std::size_t sample_id);

  /// Evicts the least-recently-used unpinned entry; returns false if
  /// nothing can be evicted. The I/O engine calls this under huge-page
  /// pool pressure — the cache and in-flight DMA buffers share the pool,
  /// so a full cache must yield chunks back to keep I/O flowing.
  bool evict_lru_one();

  [[nodiscard]] std::size_t resident_samples() const;
  [[nodiscard]] std::size_t resident_chunks() const;
  [[nodiscard]] std::size_t capacity_chunks() const { return capacity_; }
  [[nodiscard]] static constexpr std::size_t num_shards() { return kShards; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void note_hit() { ++hits_; }
  void note_miss() { ++misses_; }

  /// Residency listener: fired synchronously with (sample_id, resident)
  /// every time this cache's V bit flips. The cooperative peer cache
  /// uses it to advertise/retract residency in the cluster cache
  /// directory. Must be suspension-free — it runs inside cache slices.
  void set_residency_listener(std::function<void(std::size_t, bool)> fn) {
    residency_listener_ = std::move(fn);
  }

 private:
  static constexpr std::size_t kShards = 4;

  struct Entry {
    std::vector<mem::DmaBuffer> pieces;
    std::vector<std::uint32_t> piece_lens;
    std::list<std::size_t>::iterator lru_pos;
    std::uint32_t pins = 0;
    std::uint64_t last_use = 0;  // global recency stamp (tick_)
  };

  struct Shard {
    explicit Shard(const char* ledger_name) : ledger(ledger_name) {}
    // Each shard's map/lru/chunks_used form one suspension-free slice;
    // the ledger enforces that should a co_await ever creep in.
    mutable dlsim::AccessLedger ledger;
    std::unordered_map<std::size_t, Entry> map;
    std::list<std::size_t> lru;  // front = most recent within the shard
    std::size_t chunks_used = 0;
  };

  [[nodiscard]] Shard& shard_of(std::size_t sample_id) {
    return shards_[sample_id % kShards];
  }

  /// Globally least-recently-used unpinned entry, as (shard, sample id);
  /// found == false when every resident entry is pinned. Suspension-free;
  /// takes a read slice on every shard scanned.
  struct Victim {
    bool found = false;
    std::size_t shard = 0;
    std::size_t sample_id = 0;
  };
  [[nodiscard]] Victim find_global_lru_victim() const;

  /// Removes one entry from its shard (caller already picked it; entry
  /// must be unpinned). Opens the shard's write slice.
  void evict_from_shard(std::size_t shard_idx, std::size_t sample_id);

  void evict_until_fits(std::size_t incoming_chunks);

  mem::HugePagePool* pool_;
  std::size_t capacity_;
  std::vector<std::uint8_t> valid_bits_;
  std::array<Shard, kShards> shards_{
      Shard{"sample-cache-0"}, Shard{"sample-cache-1"},
      Shard{"sample-cache-2"}, Shard{"sample-cache-3"}};
  std::uint64_t tick_ = 0;  // global recency clock; bumped on pin/insert
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::function<void(std::size_t, bool)> residency_listener_;
};

/// PeerCacheIndex: the intra-node half of the cooperative cache. One per
/// *client node*, registered on the fleet alongside the PrefetchArbiter:
/// every co-located DlfsInstance registers its SampleCache (and the I/O
/// core its peer serves are charged to), so a sample resident in any
/// local instance is a local hit for all of them — UnifyFS-style
/// ephemeral node-local aggregation. Like DirectoryView, the object is
/// cost-free bookkeeping; callers charge CPU/copy time.
class PeerCacheIndex {
 public:
  struct Member {
    std::uint32_t client = 0;         // fleet client index
    SampleCache* cache = nullptr;     // that instance's sample cache
    dlsim::CpuCore* core = nullptr;   // core a peer serve is charged to
  };

  void register_member(std::uint32_t client, SampleCache* cache,
                       dlsim::CpuCore* core);
  void unregister_member(std::uint32_t client);

  /// First co-located member other than `asking` holding `sample_id`.
  /// Returned pointer stays valid until that member unregisters.
  [[nodiscard]] const Member* find_holder(std::size_t sample_id,
                                          std::uint32_t asking) const;

  /// Registered record for `client`, or nullptr.
  [[nodiscard]] const Member* member_of(std::uint32_t client) const;

 private:
  mutable dlsim::AccessLedger ledger_{"peer-cache-index"};
  std::vector<Member> members_;
};

/// PeerCacheDirectory: the cross-node half. A consistent-hash cache
/// directory mapping sample id -> the client instances currently holding
/// it in DRAM, with a per-node advertised-bytes budget. Residency deltas
/// are published synchronously by the SampleCache residency listener —
/// the model's stand-in for piggybacking them on existing metadata
/// traffic; consumers of the directory charge the fabric/CPU cost of the
/// home-directed request/forward hops (see the DlfsInstance peer-read
/// path). The object itself is cost-free bookkeeping.
class PeerCacheDirectory {
 public:
  PeerCacheDirectory(PeerCacheConfig cfg, std::uint32_t num_clients);

  /// Home client of a sample — the consistent-hash probe discipline the
  /// replica placement uses (hash of the key with a '\x1f'-separated
  /// probe rank; rank 0 is the home, the degenerate k=1 chain). The home
  /// answers or forwards peer-read requests for the sample.
  [[nodiscard]] std::uint32_t home_client(std::size_t sample_id) const;

  /// Client `holder` (on `node`) now holds `sample_id` (`bytes` long).
  /// Subject to the node's advertise budget and eviction policy.
  void advertise(std::uint32_t holder, std::uint16_t node,
                 std::size_t sample_id, std::uint32_t bytes);
  void retract(std::uint32_t holder, std::size_t sample_id);
  void retract_all(std::uint32_t holder);

  struct Holder {
    bool found = false;
    std::uint32_t client = 0;
    std::uint16_t node = 0;
  };
  /// Some advertised holder of `sample_id` other than `asking`
  /// (deterministic: first surviving advertisement wins).
  [[nodiscard]] Holder find(std::size_t sample_id,
                            std::uint32_t asking) const;

  [[nodiscard]] std::uint64_t advertised_bytes(std::uint16_t node) const;
  [[nodiscard]] std::uint64_t budget_retractions() const {
    return budget_retractions_;
  }
  [[nodiscard]] std::uint64_t refused_adverts() const { return refused_; }

 private:
  struct Ad {
    std::uint32_t holder = 0;
    std::uint16_t node = 0;
    std::uint32_t bytes = 0;
  };
  struct NodeBook {
    std::uint64_t bytes = 0;
    // Advertise order, front = oldest: the kLru budget policy retracts
    // from the front.
    std::list<std::pair<std::size_t, std::uint32_t>> order;
  };

  void retract_locked(std::uint32_t holder, std::size_t sample_id);

  PeerCacheConfig cfg_;
  std::uint32_t num_clients_;
  mutable dlsim::AccessLedger ledger_{"peer-cache-directory"};
  std::unordered_map<std::size_t, std::vector<Ad>> ads_;
  std::unordered_map<std::uint16_t, NodeBook> books_;
  std::uint64_t budget_retractions_ = 0;
  std::uint64_t refused_ = 0;
};

}  // namespace dlfs::core

#pragma once

// SampleCache: the huge-page-backed sample cache of §III-C.1, plus the
// per-instance V-bit sidecar.
//
// "We allocate the sample cache on huge pages to store the data read from
// local/remote NVMe devices ... the cache is divided into many fixed-size
// chunks (256 KB by default)."
//
// Completed sample reads are retained in an LRU keyed by sample id; the
// V bit of a sample is on exactly while a copy is resident here, so a
// dlfs_read can serve a hit with a memcpy and no device I/O. Entries
// pinned by an in-flight copy are never evicted. Capacity is counted in
// pool chunks, mirroring how the real cache is carved.
//
// The index is sharded by sample id: each shard owns its own hash map,
// recency list and access ledger, so the hot-path operations (valid/pin/
// unpin/insert) form per-shard critical slices instead of funnelling
// every reader and the read-ahead inserter through one cache-wide slice.
// Recency and capacity stay *global*: entries carry a monotonically
// increasing last-use stamp, eviction always removes the globally
// least-recently-used unpinned entry (comparing the shard LRU tails by
// stamp), and the chunk budget is enforced across all shards — so the
// observable hit/miss/eviction behaviour is identical to a single-list
// LRU of the same capacity.

#include <array>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/hugepage_pool.hpp"
#include "sim/check.hpp"

namespace dlfs::core {

class SampleCache {
 public:
  /// `capacity_chunks` bounds the resident set; the pool is where chunk
  /// memory comes from (shared with in-flight I/O buffers).
  SampleCache(mem::HugePagePool& pool, std::size_t capacity_chunks,
              std::size_t num_samples);

  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// The per-instance V bit (paper: tracked in the sample entry; here a
  /// sidecar because entries are shared between in-process nodes).
  [[nodiscard]] bool valid(std::size_t sample_id) const {
    return valid_bits_[sample_id] != 0;
  }

  /// A resident sample's bytes, as the list of chunk-piece spans it
  /// occupies (in order). Also refreshes LRU recency and pins the entry
  /// until unpin(). Returns empty if not resident.
  [[nodiscard]] std::vector<std::span<const std::byte>> pin(
      std::size_t sample_id);
  void unpin(std::size_t sample_id);

  /// Inserts a completed read: takes ownership of the chunk buffers
  /// holding the sample (piece i holds bytes [piece_len[i]] of it).
  /// Evicts LRU victims (clearing their V bits) to stay within capacity;
  /// if everything is pinned the insert is skipped (the data still
  /// reaches the application; it just isn't retained).
  void insert(std::size_t sample_id, std::vector<mem::DmaBuffer> pieces,
              std::vector<std::uint32_t> piece_lens);

  /// Drops a resident sample (no-op if absent or pinned).
  void evict(std::size_t sample_id);

  /// Evicts the least-recently-used unpinned entry; returns false if
  /// nothing can be evicted. The I/O engine calls this under huge-page
  /// pool pressure — the cache and in-flight DMA buffers share the pool,
  /// so a full cache must yield chunks back to keep I/O flowing.
  bool evict_lru_one();

  [[nodiscard]] std::size_t resident_samples() const;
  [[nodiscard]] std::size_t resident_chunks() const;
  [[nodiscard]] std::size_t capacity_chunks() const { return capacity_; }
  [[nodiscard]] static constexpr std::size_t num_shards() { return kShards; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void note_hit() { ++hits_; }
  void note_miss() { ++misses_; }

 private:
  static constexpr std::size_t kShards = 4;

  struct Entry {
    std::vector<mem::DmaBuffer> pieces;
    std::vector<std::uint32_t> piece_lens;
    std::list<std::size_t>::iterator lru_pos;
    std::uint32_t pins = 0;
    std::uint64_t last_use = 0;  // global recency stamp (tick_)
  };

  struct Shard {
    explicit Shard(const char* ledger_name) : ledger(ledger_name) {}
    // Each shard's map/lru/chunks_used form one suspension-free slice;
    // the ledger enforces that should a co_await ever creep in.
    mutable dlsim::AccessLedger ledger;
    std::unordered_map<std::size_t, Entry> map;
    std::list<std::size_t> lru;  // front = most recent within the shard
    std::size_t chunks_used = 0;
  };

  [[nodiscard]] Shard& shard_of(std::size_t sample_id) {
    return shards_[sample_id % kShards];
  }

  /// Globally least-recently-used unpinned entry, as (shard, sample id);
  /// found == false when every resident entry is pinned. Suspension-free;
  /// takes a read slice on every shard scanned.
  struct Victim {
    bool found = false;
    std::size_t shard = 0;
    std::size_t sample_id = 0;
  };
  [[nodiscard]] Victim find_global_lru_victim() const;

  /// Removes one entry from its shard (caller already picked it; entry
  /// must be unpinned). Opens the shard's write slice.
  void evict_from_shard(std::size_t shard_idx, std::size_t sample_id);

  void evict_until_fits(std::size_t incoming_chunks);

  mem::HugePagePool* pool_;
  std::size_t capacity_;
  std::vector<std::uint8_t> valid_bits_;
  std::array<Shard, kShards> shards_{
      Shard{"sample-cache-0"}, Shard{"sample-cache-1"},
      Shard{"sample-cache-2"}, Shard{"sample-cache-3"}};
  std::uint64_t tick_ = 0;  // global recency clock; bumped on pin/insert
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dlfs::core

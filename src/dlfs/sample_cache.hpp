#pragma once

// SampleCache: the huge-page-backed sample cache of §III-C.1, plus the
// per-instance V-bit sidecar.
//
// "We allocate the sample cache on huge pages to store the data read from
// local/remote NVMe devices ... the cache is divided into many fixed-size
// chunks (256 KB by default)."
//
// Completed sample reads are retained in an LRU keyed by sample id; the
// V bit of a sample is on exactly while a copy is resident here, so a
// dlfs_read can serve a hit with a memcpy and no device I/O. Entries
// pinned by an in-flight copy are never evicted. Capacity is counted in
// pool chunks, mirroring how the real cache is carved.

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/hugepage_pool.hpp"
#include "sim/check.hpp"

namespace dlfs::core {

class SampleCache {
 public:
  /// `capacity_chunks` bounds the resident set; the pool is where chunk
  /// memory comes from (shared with in-flight I/O buffers).
  SampleCache(mem::HugePagePool& pool, std::size_t capacity_chunks,
              std::size_t num_samples);

  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// The per-instance V bit (paper: tracked in the sample entry; here a
  /// sidecar because entries are shared between in-process nodes).
  [[nodiscard]] bool valid(std::size_t sample_id) const {
    return valid_bits_[sample_id] != 0;
  }

  /// A resident sample's bytes, as the list of chunk-piece spans it
  /// occupies (in order). Also refreshes LRU recency and pins the entry
  /// until unpin(). Returns empty if not resident.
  [[nodiscard]] std::vector<std::span<const std::byte>> pin(
      std::size_t sample_id);
  void unpin(std::size_t sample_id);

  /// Inserts a completed read: takes ownership of the chunk buffers
  /// holding the sample (piece i holds bytes [piece_len[i]] of it).
  /// Evicts LRU victims (clearing their V bits) to stay within capacity;
  /// if everything is pinned the insert is skipped (the data still
  /// reaches the application; it just isn't retained).
  void insert(std::size_t sample_id, std::vector<mem::DmaBuffer> pieces,
              std::vector<std::uint32_t> piece_lens);

  /// Drops a resident sample (no-op if absent or pinned).
  void evict(std::size_t sample_id);

  /// Evicts the least-recently-used unpinned entry; returns false if
  /// nothing can be evicted. The I/O engine calls this under huge-page
  /// pool pressure — the cache and in-flight DMA buffers share the pool,
  /// so a full cache must yield chunks back to keep I/O flowing.
  bool evict_lru_one();

  [[nodiscard]] std::size_t resident_samples() const { return map_.size(); }
  [[nodiscard]] std::size_t resident_chunks() const { return chunks_used_; }
  [[nodiscard]] std::size_t capacity_chunks() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  void note_hit() { ++hits_; }
  void note_miss() { ++misses_; }

 private:
  struct Entry {
    std::vector<mem::DmaBuffer> pieces;
    std::vector<std::uint32_t> piece_lens;
    std::list<std::size_t>::iterator lru_pos;
    std::uint32_t pins = 0;
  };

  void evict_until_fits(std::size_t incoming_chunks);

  // The cache is shared by demand reads, read-ahead insertions, and the
  // engine's pressure-eviction callback; every method is a suspension-free
  // slice, which the ledger enforces should a co_await ever creep in.
  mutable dlsim::AccessLedger ledger_{"sample-cache"};
  mem::HugePagePool* pool_;
  std::size_t capacity_;
  std::vector<std::uint8_t> valid_bits_;
  std::unordered_map<std::size_t, Entry> map_;
  std::list<std::size_t> lru_;  // front = most recent
  std::size_t chunks_used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dlfs::core

#pragma once

// IoEngine: DLFS's backend layer (§III-C) — the prep/post/poll/copy
// pipeline over SPDK queue pairs.
//
//   prep  — build one SPDK request per data chunk of the extent (requests
//           larger than the chunk size split into multiple, each with its
//           own cache chunk, exactly as §III-C.1 describes)
//   post  — submit to the target's queue pair, bounded by queue depth
//   poll  — busy-poll completion queues; every harvested completion is
//           pushed to the shared completion queue (SCQ)
//   copy  — a pool of copy threads drains the SCQ and memcpys sample data
//           from the huge-page cache chunks to the application buffer
//
// Reads are modeled as *extent operations* (ExtentOp): start_extents()
// splits each extent into chunk-sized pieces and queues them; await_op()
// drives the shared post/poll pump from the awaiting coroutine's core
// until that one extent's data is delivered. Every ExtentOp carries its
// own completion event, so independent consumers — dlfs_bread demand
// fetches and the asynchronous prefetcher's read-ahead — share one
// engine, one tag space and one queue-depth budget, and each awaits only
// the extents it actually needs while the rest complete in the
// background. read_extents() is the batch convenience built on top (start
// everything, await everything).
//
// The pump runs *in the awaiting coroutine* (the paper drives DLFS with
// one I/O thread on one core; that core is charged for all prep, post,
// poll and completion-handling work it performs). Copy threads are
// separate daemons with their own cores. Fig. 7(b)'s experiment — how
// much application compute can be folded into the polling loop — is the
// `injected_compute` hook, executed once per read batch.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/calibration.hpp"
#include "dlfs/qos.hpp"
#include "dlfs/sample_cache.hpp"
#include "dlfs/sample_entry.hpp"
#include "sim/check.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "spdk/io_queue.hpp"

namespace dlfs::core {

struct IoEngineConfig {
  std::uint64_t chunk_bytes = 256 * 1024;  // request split size (paper default)
  std::uint32_t copy_threads = 2;
  std::uint32_t scq_capacity = 4096;
  // Busy-poll quantum used when waiting on event-driven (remote) queues.
  dlsim::SimDuration poll_quantum = 500;
  // Transient media errors are re-posted this many times before the read
  // fails (NVMe drivers retry retryable statuses the same way).
  std::uint32_t max_retries = 3;
  // First-retry delay; doubles per attempt. Keeps a faulting device from
  // being hammered with re-posts within the same poll quantum.
  dlsim::SimDuration retry_backoff = 10'000;  // 10 us
  // Mid-epoch reprobe: when > 0, a background daemon revalidates down
  // nodes every `reprobe_interval` on its own core, instead of waiting
  // for the caller's epoch-boundary reprobe. 0 = epoch-boundary only.
  // The daemon only schedules timers while a node is down (it parks on
  // an event otherwise), so the simulator can quiesce once the cluster
  // is healthy; a node that never recovers keeps the timer wheel alive,
  // so such runs must be bounded with run_until/run_watchdog.
  dlsim::SimDuration reprobe_interval = 0;
};

/// Why a read ultimately failed — callers route on this: media errors are
/// sample-fatal (surface to the application), node-level faults are
/// survivable (skip the samples, finish the epoch degraded).
enum class IoErrorKind : std::uint8_t {
  kMedia,     // device returned kMediaError past the retry budget
  kTimeout,   // command deadlines kept expiring past the retry budget
  kNodeDown,  // the storage node's reconnect budget is exhausted
};

/// A read failed even after max_retries re-posts.
class IoError : public std::runtime_error {
 public:
  IoError(std::uint16_t nid, std::uint64_t offset,
          IoErrorKind kind = IoErrorKind::kMedia)
      : std::runtime_error(
            std::string(kind == IoErrorKind::kNodeDown
                            ? "storage node down: node "
                            : (kind == IoErrorKind::kTimeout
                                   ? "I/O timed out on storage node "
                                   : "unrecoverable I/O error on storage "
                                     "node ")) +
            std::to_string(nid) + " at offset " + std::to_string(offset)),
        nid(nid),
        offset(offset),
        kind(kind) {}
  std::uint16_t nid;
  std::uint64_t offset;
  IoErrorKind kind;
};

/// One device extent to read. If `dst` is non-null the data is copied
/// there by the copy stage; if additionally `cache_sample_id` is set, the
/// chunks are retained in the sample cache afterwards (V bit set). If
/// `dst` is null the chunks are handed back through `out_buffers`, or —
/// when that is also null — retained on the ExtentOp for take_buffers()
/// (the prefetcher's read-ahead path).
struct ReadExtent {
  std::uint16_t nid = 0;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  std::byte* dst = nullptr;
  std::optional<std::size_t> cache_sample_id{};
  std::vector<mem::DmaBuffer>* out_buffers = nullptr;
  // Invoked as soon as this extent's buffers land in *out_buffers, while
  // the remaining extents are still in flight — dlfs_bread uses it to
  // start copying a data chunk's samples out without waiting for the
  // whole batch (keeps copy threads and the NIC busy simultaneously).
  std::function<void()> on_buffers_ready{};
  // Alternate placements of the same bytes (replica failover order). The
  // engine consumes hops from the front as it re-routes, so at any moment
  // the list holds exactly the untried alternates: when (nid, offset)
  // stops being reachable the extent is re-pointed at the first hop whose
  // node is up and the read restarts there instead of failing kNodeDown.
  std::vector<RouteHop> routes{};
  // Direction. Write extents (start_write) carry their payload in the
  // piece buffers instead of allocating them at post time; they have no
  // failover routes — a write targets one specific placement, and a dead
  // target fails the op with kNodeDown for the caller to re-plan.
  bool write = false;
};

/// Shared state of one in-flight extent read. Created by start_extents();
/// `done` fires when the extent's data is delivered (copied, or its
/// buffers handed over) or when it failed — check error() before touching
/// the data. Failures are *stored*, never thrown from the pump, so a
/// read-ahead error surfaces on whichever consumer eventually needs the
/// extent instead of killing the prefetch daemon.
class ExtentOp {
 public:
  ExtentOp(dlsim::Simulator& sim, ReadExtent x)
      : extent(std::move(x)), done(sim) {}

  ReadExtent extent;
  dlsim::Event done;

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::exception_ptr error() const { return error_; }

  /// Chunk buffers of a buffer-handover extent (dst == nullptr,
  /// out_buffers == nullptr), in on-device order. Transfers ownership;
  /// call once, after done.
  [[nodiscard]] std::vector<mem::DmaBuffer> take_buffers() {
    return std::move(buffers_);
  }

 private:
  friend class IoEngine;
  bool finished_ = false;
  std::exception_ptr error_{};
  std::uint32_t pieces_total_ = 0;
  std::uint32_t pieces_done_ = 0;
  std::vector<mem::DmaBuffer> buffers_;  // placed by piece index
  std::vector<std::uint32_t> lens_;
};

using ExtentOpPtr = std::shared_ptr<ExtentOp>;

/// Work item on the shared completion queue.
struct CopyJob {
  // Either owned pieces (sample-level reads) ...
  std::vector<mem::DmaBuffer> owned_pieces;
  std::vector<std::uint32_t> piece_lens;
  // ... or borrowed views (copies out of a resident data chunk).
  std::vector<std::span<const std::byte>> views;
  std::byte* dst = nullptr;
  std::optional<std::size_t> cache_sample_id{};
  dlsim::CountdownLatch* latch = nullptr;
  // Core that produced the job. A copy thread running on a different
  // core pays the cross-core handoff cost (cache-line transfer of the
  // job + first-touch misses on the data) and counts the event, so
  // locality shows up in CPU results instead of being free.
  const dlsim::CpuCore* origin = nullptr;
  ExtentOpPtr op{};  // engine-internal: completes the op after the memcpy
};

class IoEngine {
 public:
  IoEngine(dlsim::Simulator& sim, mem::HugePagePool& pool, SampleCache& cache,
           const Calibration& cal, const IoEngineConfig& config);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  /// Registers the queue used to reach storage node `nid`.
  void attach_target(std::uint16_t nid, std::unique_ptr<spdk::IoQueue> queue);
  [[nodiscard]] std::size_t num_targets() const { return targets_.size(); }

  /// Splits the extents into chunk-sized pieces and queues them for
  /// posting. Nothing is submitted until some coroutine drives the pump
  /// via await_op() — posting, polling and completion handling are
  /// charged to whichever cores await.
  [[nodiscard]] std::vector<ExtentOpPtr> start_extents(
      std::vector<ReadExtent> extents);
  [[nodiscard]] ExtentOpPtr start_extent(ReadExtent extent);

  /// Queues a write of `pieces` (pool-owned buffers, `lens[i]` bytes each,
  /// chunk-aligned splits of one device extent) to node `nid` starting at
  /// `offset`. Rides the same posting/poll pump, queue-depth budget and
  /// fault machinery as reads — the re-replication engine uses this to
  /// stream repaired bytes to a replacement node without a second I/O
  /// path. The buffers stay owned by the op until it completes.
  [[nodiscard]] ExtentOpPtr start_write(std::uint16_t nid,
                                        std::uint64_t offset,
                                        std::vector<mem::DmaBuffer> pieces,
                                        std::vector<std::uint32_t> lens);

  /// Drives the shared pump on `core` until `op` completes (data
  /// delivered or failed). Extent failures are recorded on the op, not
  /// thrown; pool livelock (exhausted + nothing evictable + nothing in
  /// flight) still throws.
  [[nodiscard]] dlsim::Task<void> await_op(
      dlsim::CpuCore& core, ExtentOpPtr op,
      dlsim::SimDuration injected_compute = 0);

  /// Reads a batch of extents; resumes when every extent's data has been
  /// copied (or its buffers handed over). `core` is the I/O thread's CPU.
  /// `injected_compute` > 0 folds that much application computation into
  /// the batch's polling loop (Fig. 7b). Rethrows the first extent error.
  [[nodiscard]] dlsim::Task<void> read_extents(
      dlsim::CpuCore& core, std::vector<ReadExtent> extents,
      dlsim::SimDuration injected_compute = 0);

  /// Convenience: one extent, synchronously (the dlfs_read fast path —
  /// "DLFS-Base" when used for every sample).
  [[nodiscard]] dlsim::Task<void> read_one(dlsim::CpuCore& core,
                                           std::uint16_t nid,
                                           std::uint64_t offset,
                                           std::uint32_t len, std::byte* dst,
                                           std::optional<std::size_t>
                                               cache_sample_id = {},
                                           std::vector<RouteHop> routes = {});

  /// Enqueues a copy of already-resident bytes (cache hits, chunk-batched
  /// sample delivery). The latch is counted down after the memcpy.
  [[nodiscard]] dlsim::Task<void> enqueue_copy(CopyJob job);

  /// Copy-stage work executed inline when copy_threads == 0; exposed so
  /// the API layer can account hits identically.
  [[nodiscard]] dlsim::Task<void> run_copy_inline(dlsim::CpuCore& core,
                                                  CopyJob job);

  /// Called when the pool is exhausted, the sample cache has nothing
  /// evictable, and a read still needs chunks. Returns true if the
  /// callback freed at least one chunk (the prefetcher sheds its farthest
  /// read-ahead unit); false lets the pump fall through to the livelock
  /// guard.
  void set_pressure_reliever(std::function<bool()> reliever) {
    pressure_reliever_ = std::move(reliever);
  }

  /// Multi-tenant QoS: when set, every piece must be admitted by the
  /// tenant's governor before it is posted (and the grant is returned on
  /// completion). All engines of one job share one handle, so the
  /// in-flight cap and the fair-share clock are job-wide. Null = no QoS
  /// (standalone job), zero overhead.
  void set_tenant(std::shared_ptr<TenantHandle> tenant) {
    tenant_ = std::move(tenant);
  }
  [[nodiscard]] const TenantHandle* tenant() const { return tenant_.get(); }
  /// Posting-loop stalls caused by QoS admission (not queue depth).
  [[nodiscard]] std::uint64_t qos_deferrals() const { return qos_deferrals_; }

  // --- node fault domain ---------------------------------------------------
  /// Fired on availability transitions of a storage node: (nid, false)
  /// when its reconnect budget is exhausted, (nid, true) when a reprobe
  /// brings it back. DLFS wires this to the sample directory's V bits.
  void set_node_down_handler(std::function<void(std::uint16_t, bool)> fn) {
    node_handler_ = std::move(fn);
  }
  [[nodiscard]] bool node_available(std::uint16_t nid) const {
    return nid >= node_down_.size() || node_down_[nid] == 0;
  }
  [[nodiscard]] std::uint32_t nodes_down() const;
  /// One revalidation pass over every down node (paced by the caller —
  /// DLFS runs it at epoch start). Returns how many nodes came back.
  [[nodiscard]] dlsim::Task<std::uint32_t> reprobe_down_nodes(
      dlsim::CpuCore& core);
  /// Aggregated transport counters across all attached queues.
  [[nodiscard]] spdk::IoQueueStats transport_stats() const;

  [[nodiscard]] const IoEngineConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t requests_posted() const { return posted_; }
  [[nodiscard]] std::uint64_t completions_harvested() const {
    return harvested_;
  }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t bytes_copied() const { return bytes_copied_; }
  /// Aggregate busy time of the copy-thread pool.
  [[nodiscard]] dlsim::SimDuration copy_busy_ns() const;
  /// Copy jobs executed on a different core than the one that produced
  /// them (aggregated over the copy-thread pool).
  [[nodiscard]] std::uint64_t cross_core_handoffs() const;

 private:
  struct Piece {
    ExtentOpPtr op;
    std::uint32_t idx = 0;  // position within the extent
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    mem::DmaBuffer buffer;
    std::uint32_t attempts = 0;
    dlsim::SimTime not_before = 0;  // retry backoff gate
    // Node this piece was last *posted* to. The extent may be re-routed
    // by a sibling piece while this one is in flight, so failure handling
    // compares p.nid against op->extent.nid to tell "my route died" from
    // "the op already moved on — just follow it".
    std::uint16_t nid = 0;
  };

  void mark_node_down(std::uint16_t nid);
  /// Re-points `x` at the first routed replica whose node is attached and
  /// up, consuming hops from the front. False when no alternate remains.
  bool advance_route(ReadExtent& x);
  /// Failure handling for a piece whose posted route (p.nid) stopped
  /// working: follows the op if a sibling already re-routed it, otherwise
  /// advances to the next live replica; requeues the piece with a fresh
  /// retry budget. False = no route left, the caller fails the op. Must
  /// run inside a pieces_ledger_ write slice.
  bool reroute_piece(Piece& p);
  dlsim::Task<void> probe_loop(std::shared_ptr<bool> alive);
  void promote_delayed();
  dlsim::Task<void> pump(dlsim::CpuCore& core, const ExtentOp& until,
                         dlsim::SimDuration injected_compute);
  dlsim::Task<void> finish_extent(dlsim::CpuCore& core, ExtentOpPtr op);
  static void fail_op(ExtentOp& op, std::exception_ptr e);
  dlsim::Task<void> copy_thread_loop(std::size_t idx);
  void do_copy(CopyJob& job);
  [[nodiscard]] dlsim::SimDuration copy_cost(const CopyJob& job) const;
  dlsim::Task<void> wait_any(dlsim::CpuCore& core);

  dlsim::Simulator* sim_;
  mem::HugePagePool* pool_;
  SampleCache* cache_;
  const Calibration* cal_;
  IoEngineConfig config_;
  std::vector<std::unique_ptr<spdk::IoQueue>> targets_;  // index = nid
  std::unique_ptr<dlsim::Channel<CopyJob>> scq_;
  std::vector<std::unique_ptr<dlsim::CpuCore>> copy_cores_;
  // Mid-epoch reprobe daemon (reprobe_interval > 0): its own core, so
  // probe handshakes never steal cycles from the I/O thread; the alive
  // token is cleared by the destructor and checked after every await.
  // The daemon parks on probe_wake_ while every node is up (set by
  // mark_node_down) so it holds no pending timers when the cluster is
  // healthy and the simulator can quiesce. The destructor must NOT set
  // the event: the parked frame would resume into a destroyed member.
  std::unique_ptr<dlsim::CpuCore> probe_core_;
  std::unique_ptr<dlsim::Event> probe_wake_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  // Engine-global piece state: all concurrent drivers (bread demand
  // fetches, the prefetch daemon) share one posting queue and one
  // in-flight map, so completions are delivered to the right extent no
  // matter which coroutine harvests them. Every pumper's touch of these
  // queues is ledgered as a suspension-free slice — concurrent pumpers
  // may interleave *between* slices, never inside one.
  mutable dlsim::AccessLedger pieces_ledger_{"engine-pieces"};
  std::deque<Piece> to_post_;
  std::vector<Piece> delayed_;  // retries waiting out their backoff
  std::unordered_map<std::uint64_t, Piece> in_flight_;
  std::uint32_t copies_pending_ = 0;  // engine copy jobs not yet executed
  std::function<bool()> pressure_reliever_;
  std::shared_ptr<TenantHandle> tenant_;  // null = ungoverned
  std::uint64_t qos_deferrals_ = 0;
  std::vector<std::uint8_t> node_down_;  // index = nid; 1 = unavailable
  std::function<void(std::uint16_t, bool)> node_handler_;
  std::uint64_t posted_ = 0;
  std::uint64_t harvested_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t bytes_copied_ = 0;
  std::uint64_t next_tag_ = 1;
};

}  // namespace dlfs::core

#include "dlfs/qos.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlfs::core {

bool TenantHandle::try_admit(std::uint32_t bytes) {
  return gov_->admit(*this, bytes);
}

void TenantHandle::cancel_admit(std::uint32_t bytes) {
  gov_->cancel(*this, bytes);
}

void TenantHandle::on_complete(std::uint32_t bytes) {
  gov_->complete(*this, bytes);
}

std::shared_ptr<TenantHandle> TenantGovernor::register_tenant(TenantQos cfg) {
  if (cfg.weight == 0) {
    throw std::invalid_argument("TenantQos::weight must be >= 1 (tenant '" +
                                cfg.name + "')");
  }
  auto h = std::make_shared<TenantHandle>();
  h->cfg_ = std::move(cfg);
  h->gov_ = this;
  // A late joiner starts at the current floor, not at zero: otherwise it
  // would owe the whole fleet's history and monopolise the devices until
  // its clock caught up.
  double floor = 0;
  bool any = false;
  for (const auto& t : tenants_) {
    if (!any || t->vtime_ < floor) floor = t->vtime_;
    any = true;
  }
  h->vtime_ = any ? floor : 0;
  tenants_.push_back(h);
  return h;
}

double TenantGovernor::effective_weight(const TenantQos& q) {
  double w = q.weight;
  if (q.priority == QosClass::kHigh) w *= kHighBoost;
  return w;
}

double TenantGovernor::floor_vtime(const TenantHandle& t) const {
  double floor = t.vtime_;
  bool any = false;
  for (const auto& other : tenants_) {
    if (other->inflight_ == 0) continue;
    if (!any || other->vtime_ < floor) floor = other->vtime_;
    any = true;
  }
  return floor;
}

bool TenantGovernor::foreground_busy(const TenantHandle& t) const {
  for (const auto& other : tenants_) {
    if (other.get() == &t) continue;
    if (other->cfg_.priority == QosClass::kBackground) continue;
    if (other->inflight_ > 0) return true;
  }
  return false;
}

bool TenantGovernor::admit(TenantHandle& t, std::uint32_t bytes) {
  // 1. Hard occupancy cap.
  if (t.cfg_.max_inflight != 0 && t.inflight_ >= t.cfg_.max_inflight) {
    ++t.stats_.deferred;
    return false;
  }
  // 2. Background trickle: while any foreground tenant has work in
  //    flight, a background tenant keeps at most one command going.
  if (t.cfg_.priority == QosClass::kBackground && t.inflight_ >= 1 &&
      foreground_busy(t)) {
    ++t.stats_.deferred;
    return false;
  }
  // 3. Weighted fairness: defer when this tenant's virtual clock has run
  //    more than one burst ahead of the slowest active tenant.
  const double ew = effective_weight(t.cfg_);
  const double floor = floor_vtime(t);
  if (t.vtime_ > floor + static_cast<double>(burst_bytes_) / ew) {
    ++t.stats_.deferred;
    return false;
  }
  // Snap an idle tenant's clock up to the floor so unused share is not
  // banked (classic start-time fair queueing).
  t.vtime_ = std::max(t.vtime_, floor) + static_cast<double>(bytes) / ew;
  ++t.inflight_;
  ++t.stats_.admitted;
  t.stats_.bytes_admitted += bytes;
  return true;
}

void TenantGovernor::cancel(TenantHandle& t, std::uint32_t bytes) {
  if (t.inflight_ == 0) {
    throw std::logic_error("TenantGovernor::cancel with nothing admitted");
  }
  --t.inflight_;
  t.vtime_ -= static_cast<double>(bytes) / effective_weight(t.cfg_);
  --t.stats_.admitted;
  t.stats_.bytes_admitted -= bytes;
}

void TenantGovernor::complete(TenantHandle& t, std::uint32_t bytes) {
  (void)bytes;  // the clock advanced at admission; completion frees the slot
  if (t.inflight_ == 0) {
    throw std::logic_error("TenantGovernor::complete with nothing admitted");
  }
  --t.inflight_;
}

}  // namespace dlfs::core

#pragma once

// Node: one compute/storage node in the simulated cluster — a huge-page
// pool, one NVMe device (the paper's configuration: one device per node
// in multi-node runs), and CPU cores for its I/O and copy threads.

#include <memory>
#include <string>
#include <vector>

#include "common/calibration.hpp"
#include "common/units.hpp"
#include "hw/net/fabric.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/cpu.hpp"

namespace dlfs::cluster {

struct NodeConfig {
  std::uint64_t device_capacity = 8ull * 1024 * 1024 * 1024;
  /// Synthetic (deterministic-content) backing store for large runs, RAM
  /// store for data-integrity tests.
  bool synthetic_store = true;
  std::uint64_t pool_bytes = 64ull * 1024 * 1024;
  std::uint64_t pool_chunk_bytes = 256 * 1024;
  NvmeParams nvme{};
};

class Node {
 public:
  Node(dlsim::Simulator& sim, hw::NodeId id, const NodeConfig& config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] hw::NodeId id() const { return id_; }
  [[nodiscard]] mem::HugePagePool& pool() { return pool_; }
  [[nodiscard]] hw::NvmeDevice& device() { return *device_; }
  [[nodiscard]] dlsim::Simulator& simulator() { return *sim_; }

  /// Lazily creates core `i` (one simulated thread per core).
  [[nodiscard]] dlsim::CpuCore& core(std::size_t i);
  [[nodiscard]] std::size_t num_cores() const { return cores_.size(); }

 private:
  dlsim::Simulator* sim_;
  hw::NodeId id_;
  mem::HugePagePool pool_;
  std::unique_ptr<hw::NvmeDevice> device_;
  std::vector<std::unique_ptr<dlsim::CpuCore>> cores_;
};

}  // namespace dlfs::cluster

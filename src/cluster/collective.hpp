#pragma once

// Collective communication for the mount-time protocol: a reusable
// barrier and a ring allgather with fabric-accurate timing. The paper's
// dlfs_mount is "a collective call from all processes": every node loads
// its shard, builds its local AVL tree, and the trees are allgathered so
// each node ends up with an identical full sample directory (§III-B.2).

#include <cstdint>
#include <vector>

#include "hw/net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace dlfs::cluster {

/// Reusable (generation-counted) barrier for n participants.
class Barrier {
 public:
  Barrier(dlsim::Simulator& sim, std::size_t n)
      : n_(n), waiters_(sim) {}

  [[nodiscard]] dlsim::Task<void> arrive() {
    const std::uint64_t gen = generation_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++generation_;
      waiters_.wake_all();
      co_return;
    }
    while (generation_ == gen) co_await waiters_.wait();
  }

  [[nodiscard]] std::size_t participants() const { return n_; }

 private:
  std::size_t n_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  dlsim::detail::WaitList waiters_;
};

/// Ring allgather of per-node shards. Caller `me` participates with all
/// other nodes (each must call this concurrently). `shard_bytes[i]` is
/// the contribution size of node i; after n-1 rounds every node holds all
/// shards. The *data* merge is done by the caller (shared host memory);
/// this models the communication time on the fabric.
[[nodiscard]] dlsim::Task<void> ring_allgather(
    dlsim::Simulator& sim, hw::Fabric& fabric, Barrier& barrier,
    hw::NodeId me, const std::vector<std::uint64_t>& shard_bytes);

/// Ring allgather where every node contributes one fixed-size row — the
/// sharded mount's partition-map exchange. Same ring, same barriers,
/// but the wire carries `row_bytes` per node instead of a whole shard,
/// which is what makes the sharded mount O(S) on the fabric.
[[nodiscard]] dlsim::Task<void> ring_allgather_rows(
    dlsim::Simulator& sim, hw::Fabric& fabric, Barrier& barrier,
    hw::NodeId me, std::uint32_t n, std::uint64_t row_bytes);

}  // namespace dlfs::cluster

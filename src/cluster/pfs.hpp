#pragma once

// Pfs: the backend parallel file system stub datasets are uploaded from.
//
// The paper's workflow (§III): "DL applications typically load the
// training datasets into the burst buffers at the beginning of their
// execution from the persistent file system." The PFS here is purely a
// mount-time data source: per-client striped bandwidth, high request
// latency — nothing in the evaluation reads it on the training path.

#include <cstdint>
#include <span>

#include "common/calibration.hpp"
#include "dataset/dataset.hpp"
#include "hw/net/fabric.hpp"
#include "sim/simulator.hpp"

namespace dlfs::cluster {

class Pfs {
 public:
  Pfs(dlsim::Simulator& sim, const dataset::Dataset& ds,
      const PfsParams& params = PfsParams{})
      : sim_(&sim), dataset_(&ds), params_(params) {}

  [[nodiscard]] const dataset::Dataset& dataset() const { return *dataset_; }

  /// Reads one whole sample into `out` (sized to the sample). Models one
  /// PFS request: latency plus streaming at the per-client stripe rate.
  [[nodiscard]] dlsim::Task<void> read_sample(std::size_t sample_id,
                                              std::span<std::byte> out) {
    dataset_->fill_content(sample_id, 0, out);
    bytes_served_ += out.size();
    co_await sim_->delay(
        params_.request_latency +
        dlsim::transfer_time(out.size(), params_.read_bw_bytes_per_sec));
  }

  /// Bulk sequential read of a range of samples in one streamed request —
  /// what a well-written loader does at mount time.
  [[nodiscard]] dlsim::Task<void> stream_samples(std::size_t first,
                                                 std::size_t count,
                                                 std::uint64_t total_bytes) {
    bytes_served_ += total_bytes;
    (void)first;
    (void)count;
    co_await sim_->delay(
        params_.request_latency +
        dlsim::transfer_time(total_bytes, params_.read_bw_bytes_per_sec));
  }

  [[nodiscard]] std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  dlsim::Simulator* sim_;
  const dataset::Dataset* dataset_;
  PfsParams params_;
  std::uint64_t bytes_served_ = 0;
};

}  // namespace dlfs::cluster

#pragma once

// Cluster: N nodes plus the fabric that connects them.

#include <memory>
#include <vector>

#include "cluster/node.hpp"
#include "hw/net/fabric.hpp"
#include "sim/simulator.hpp"

namespace dlfs::cluster {

class Cluster {
 public:
  Cluster(dlsim::Simulator& sim, std::uint32_t num_nodes,
          const NodeConfig& node_config = NodeConfig{},
          const NicParams& nic = NicParams{});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] Node& node(hw::NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] hw::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] dlsim::Simulator& simulator() { return *sim_; }

 private:
  dlsim::Simulator* sim_;
  std::unique_ptr<hw::Fabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace dlfs::cluster

#include "cluster/node.hpp"

namespace dlfs::cluster {

namespace {
std::unique_ptr<hw::BackingStore> make_store(const NodeConfig& c,
                                             hw::NodeId id) {
  if (c.synthetic_store) {
    return std::make_unique<hw::SyntheticBackingStore>(
        c.device_capacity, /*seed=*/0x5eed0000u + id);
  }
  return std::make_unique<hw::RamBackingStore>(c.device_capacity);
}
}  // namespace

Node::Node(dlsim::Simulator& sim, hw::NodeId id, const NodeConfig& config)
    : sim_(&sim),
      id_(id),
      pool_(config.pool_bytes, config.pool_chunk_bytes),
      device_(std::make_unique<hw::NvmeDevice>(
          sim, "nvme-node" + std::to_string(id), make_store(config, id),
          config.nvme)) {}

dlsim::CpuCore& Node::core(std::size_t i) {
  while (cores_.size() <= i) {
    cores_.push_back(std::make_unique<dlsim::CpuCore>(
        *sim_,
        "node" + std::to_string(id_) + "-core" + std::to_string(cores_.size())));
  }
  return *cores_[i];
}

}  // namespace dlfs::cluster

#include "cluster/collective.hpp"

namespace dlfs::cluster {

dlsim::Task<void> ring_allgather(dlsim::Simulator& sim, hw::Fabric& fabric,
                                 Barrier& barrier, hw::NodeId me,
                                 const std::vector<std::uint64_t>& shard_bytes) {
  (void)sim;
  const std::uint32_t n = static_cast<std::uint32_t>(shard_bytes.size());
  if (n <= 1) co_return;
  const hw::NodeId next = (me + 1) % n;
  // Classic ring: in round r, node i forwards shard (i - r + n) % n to its
  // right neighbor. A barrier between rounds keeps rounds aligned (real
  // ring implementations synchronize implicitly through receives).
  for (std::uint32_t r = 0; r < n - 1; ++r) {
    co_await barrier.arrive();
    const std::uint32_t shard = (me + n - r) % n;
    co_await fabric.transfer(me, next, shard_bytes[shard]);
  }
  co_await barrier.arrive();
}

dlsim::Task<void> ring_allgather_rows(dlsim::Simulator& sim,
                                      hw::Fabric& fabric, Barrier& barrier,
                                      hw::NodeId me, std::uint32_t n,
                                      std::uint64_t row_bytes) {
  const std::vector<std::uint64_t> rows(n, row_bytes);
  co_await ring_allgather(sim, fabric, barrier, me, rows);
}

}  // namespace dlfs::cluster

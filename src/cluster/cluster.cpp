#include "cluster/cluster.hpp"

namespace dlfs::cluster {

Cluster::Cluster(dlsim::Simulator& sim, std::uint32_t num_nodes,
                 const NodeConfig& node_config, const NicParams& nic)
    : sim_(&sim), fabric_(std::make_unique<hw::Fabric>(sim, num_nodes, nic)) {
  nodes_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, node_config));
  }
}

}  // namespace dlfs::cluster

#include "common/stats.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace dlfs {

double Summary::stddev() const { return std::sqrt(variance()); }

double Percentiles::percentile(double p) {
  if (values_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

double Percentiles::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0) {}

Histogram Histogram::pow2(double lo, double hi) {
  std::vector<double> b;
  for (double x = lo; x <= hi; x *= 2.0) b.push_back(x);
  return Histogram(std::move(b));
}

void Histogram::add(double x, std::uint64_t weight) {
  std::size_t i = 0;
  while (i < boundaries_.size() && x > boundaries_[i]) ++i;
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    if (x >= boundaries_[i]) {
      below += counts_[i];
    } else {
      // Interpolate inside bucket i: [prev boundary, boundaries_[i]].
      const double prev = i == 0 ? 0.0 : boundaries_[i - 1];
      const double span = boundaries_[i] - prev;
      const double frac = span > 0 ? (x - prev) / span : 0.0;
      below += static_cast<std::uint64_t>(
          frac * static_cast<double>(counts_[i]));
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::render_cdf(const std::string& unit) const {
  std::string out;
  std::uint64_t cum = 0;
  char line[128];
  for (std::size_t i = 0; i < boundaries_.size(); ++i) {
    cum += counts_[i];
    const double frac =
        total_ ? static_cast<double>(cum) / static_cast<double>(total_) : 0.0;
    std::snprintf(line, sizeof(line), "  <= %10.0f %-4s : %6.2f%%\n",
                  boundaries_[i], unit.c_str(), frac * 100.0);
    out += line;
  }
  return out;
}

}  // namespace dlfs

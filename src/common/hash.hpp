#pragma once

// 64-bit hashing used for DLFS sample keys (truncated to 48 bits by the
// sample directory) and for deterministic synthetic data generation.

#include <cstdint>
#include <string_view>

namespace dlfs {

/// FNV-1a 64-bit, finalized with a splitmix64-style avalanche so that
/// truncating to 48 bits (the sample-entry key width) keeps good
/// dispersion in the low bits.
constexpr std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // splitmix64 finalizer
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

/// Mixes an integer into a well-dispersed 64-bit value (splitmix64 step).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Combines two hashes.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

}  // namespace dlfs

#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace dlfs {

namespace {

std::string format_scaled(double v, const char* const* suffixes,
                          std::size_t n_suffixes, double base,
                          const char* int_fmt, const char* frac_fmt) {
  std::size_t idx = 0;
  while (v >= base && idx + 1 < n_suffixes) {
    v /= base;
    ++idx;
  }
  std::array<char, 64> buf{};
  if (v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    std::snprintf(buf.data(), buf.size(), int_fmt,
                  static_cast<unsigned long long>(v), suffixes[idx]);
  } else {
    std::snprintf(buf.data(), buf.size(), frac_fmt, v, suffixes[idx]);
  }
  return std::string(buf.data());
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static const char* const kSuffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return format_scaled(static_cast<double>(bytes), kSuffix, 5, 1024.0,
                       "%llu %s", "%.1f %s");
}

std::string format_rate(double bytes_per_sec) {
  static const char* const kSuffix[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return format_scaled(bytes_per_sec, kSuffix, 5, 1000.0, "%llu %s",
                       "%.2f %s");
}

std::string format_count(double v) {
  static const char* const kSuffix[] = {"", " K", " M", " G"};
  return format_scaled(v, kSuffix, 4, 1000.0, "%llu%s", "%.2f%s");
}

}  // namespace dlfs

#pragma once

// Deterministic PRNG (xoshiro256**) and shuffle utilities.
//
// std::mt19937 + std::shuffle are implementation-defined across standard
// libraries; experiments must produce identical sequences everywhere, so
// we carry our own generator and Fisher–Yates shuffle. This is also what
// backs dlfs_sequence(seed): every node seeds an identical Rng and derives
// the same global sample order without communication (§III-D.1 of the
// paper).

#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace dlfs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding per xoshiro authors' recommendation.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      word = mix64(x);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the distribution exact for any bound.
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double next_gaussian();

  /// Log-normal with the given parameters of the underlying normal.
  double next_lognormal(double mu, double sigma) {
    return exp_of(mu + sigma * next_gaussian());
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A shuffled identity permutation of size n.
  std::vector<std::uint64_t> permutation(std::uint64_t n) {
    std::vector<std::uint64_t> p(n);
    for (std::uint64_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double exp_of(double x);

  std::uint64_t s_[4]{};
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dlfs

#pragma once

// Minimal leveled logger. Defaults to warnings-and-above so test and bench
// output stays clean; examples turn on info logging to narrate what the
// system is doing.

#include <cstdio>
#include <string>

namespace dlfs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel lvl);

void log_message(LogLevel lvl, const std::string& msg);

inline void log_debug(const std::string& msg) {
  log_message(LogLevel::kDebug, msg);
}
inline void log_info(const std::string& msg) {
  log_message(LogLevel::kInfo, msg);
}
inline void log_warn(const std::string& msg) {
  log_message(LogLevel::kWarn, msg);
}
inline void log_error(const std::string& msg) {
  log_message(LogLevel::kError, msg);
}

}  // namespace dlfs

#include "common/table.hpp"

#include <algorithm>
#include <array>

namespace dlfs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += "  ";
      // Right-align everything but the first column (row label).
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        out += cells[c];
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cells[c];
      }
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (auto w : widths) rule += w + 2;
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string Table::num(double v, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return std::string(buf.data());
}

std::string Table::integer(std::uint64_t v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%llu",
                static_cast<unsigned long long>(v));
  return std::string(buf.data());
}

void print_banner(const std::string& title) {
  std::string bar(title.size() + 10, '=');
  std::printf("\n%s\n==== %s ====\n%s\n", bar.c_str(), title.c_str(),
              bar.c_str());
}

}  // namespace dlfs

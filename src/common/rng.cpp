#include "common/rng.hpp"

#include <cmath>

namespace dlfs {

double Rng::next_gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::exp_of(double x) { return std::exp(x); }

}  // namespace dlfs

#pragma once

// Byte-size literals and helpers shared across the repository.

#include <cstdint>
#include <string>

namespace dlfs {

inline namespace byte_literals {

constexpr std::uint64_t operator""_B(unsigned long long v) { return v; }
constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ull;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}

}  // namespace byte_literals

/// Rounds `v` up to the next multiple of `align` (align must be > 0).
constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
  return (v + align - 1) / align * align;
}

constexpr std::uint64_t round_down(std::uint64_t v, std::uint64_t align) {
  return v / align * align;
}

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Human-readable byte size, e.g. "512 B", "4 KiB", "2.5 MiB".
std::string format_bytes(std::uint64_t bytes);

/// Human-readable rate, e.g. "2.41 GB/s".
std::string format_rate(double bytes_per_sec);

/// Human-readable count, e.g. "1.25 M", "3.1 K".
std::string format_count(double v);

}  // namespace dlfs

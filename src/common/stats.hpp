#pragma once

// Lightweight statistics containers used by benchmarks and tests:
// a streaming summary (count/mean/min/max/stddev), an exact-percentile
// reservoir, and a fixed-bucket histogram for size distributions.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dlfs {

/// Streaming summary statistics (Welford's algorithm for variance).
class Summary {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; exact percentiles. Fine for the sample counts used
/// in this repo's experiments (≤ a few million doubles).
class Percentiles {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }

  /// p in [0, 100]; nearest-rank on the sorted values.
  [[nodiscard]] double percentile(double p);

  [[nodiscard]] double median() { return percentile(50.0); }
  [[nodiscard]] double mean() const;

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

/// Histogram over power-of-two (or custom) bucket boundaries.
class Histogram {
 public:
  /// Buckets: (-inf, b0], (b0, b1], ..., (bn-1, +inf).
  explicit Histogram(std::vector<double> boundaries);

  /// Power-of-two boundaries from `lo` to `hi` inclusive.
  static Histogram pow2(double lo, double hi);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<double>& boundaries() const {
    return boundaries_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

  /// Fraction of mass at or below `x` (interpolates within a bucket).
  [[nodiscard]] double cdf(double x) const;

  /// Renders an ASCII CDF table (used by the Fig. 1 bench).
  [[nodiscard]] std::string render_cdf(const std::string& unit) const;

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;  // boundaries_.size() + 1 buckets
  std::uint64_t total_ = 0;
};

}  // namespace dlfs

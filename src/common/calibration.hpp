#pragma once

// Calibration constants for every timing model in the repository.
//
// The paper's testbed: dual-socket Xeon E5-2650 nodes, FDR InfiniBand via
// ConnectX-3, one 480 GB Intel Optane NVMe SSD (single-node runs), and
// RAM-emulated NVMe devices (multi-node runs). We have none of that
// hardware, so each component's timing is an explicit, auditable constant
// here. Values are chosen from public datasheets and the systems
// literature; the rationale for each is in the comment next to it.
// EXPERIMENTS.md records how well the resulting figure shapes match.

#include <cstdint>

#include "sim/time.hpp"

namespace dlfs {

using dlsim::SimDuration;
using namespace dlsim::literals;

/// NVMe SSD service model (Intel Optane 900P/905P class, matching the
/// paper's "480 GB Intel Optane NVMe SSD").
struct NvmeParams {
  // Device-internal read latency. Optane media reads complete in ~10 us
  // end-to-end at QD1 (datasheet & Guz et al. ToS'18 measurements).
  SimDuration read_latency = 10_us;
  // Sustained sequential read bandwidth: 2.5 GB/s (900P datasheet).
  double read_bw_bytes_per_sec = 2.5e9;
  // Writes are slightly slower on Optane; only used at dataset-load time.
  SimDuration write_latency = 12_us;
  double write_bw_bytes_per_sec = 2.2e9;
  // Minimum pipe occupancy per command. 1.8 us gives the ~555K IOPS
  // 4 KiB random-read ceiling of the 900P: throughput for a command of
  // b bytes is 1 / max(cmd_min_occupancy, b / bw).
  SimDuration cmd_min_occupancy = 1800_ns;
  // Maximum outstanding commands per queue pair (NVMe spec allows 64K;
  // SPDK defaults are much lower; 128 matches common SPDK configs).
  std::uint32_t max_queue_depth = 128;
};

/// Fabric / NIC model (FDR InfiniBand, ConnectX-3).
struct NicParams {
  // FDR 4x signals at 56 Gb/s; ~6.8 GB/s usable after 64/66 encoding.
  double bw_bytes_per_sec = 6.8e9;
  // One-way MTU-to-MTU latency through one switch (typical FDR: 1.1-1.5us).
  SimDuration latency = 1300_ns;
  // Per-message host overhead (doorbell, WQE processing) — RDMA verbs
  // post/poll costs measured around 0.2-0.4 us on ConnectX-3.
  SimDuration per_message_cpu = 300_ns;
};

/// Kernel I/O path costs (the "deep kernel-based stack" of Fig. 2b).
/// These drive the Ext4 baseline. Sources: syscall microbenchmarks on
/// Sandy/Ivy Bridge Xeons (the paper's E5-2650 era), FlexSC/Arrakis-era
/// measurements, and the block-layer overhead numbers in Swanson &
/// Caulfield (IEEE Computer 2013), which the paper itself cites as [60].
struct KernelCosts {
  // User->kernel->user crossing for one syscall (mode switch + entry path).
  SimDuration syscall = 700_ns;
  // Blocking on I/O: schedule out + interrupt + schedule in.
  SimDuration context_switch = 2_us;
  // VFS path resolution, per component, when the dentry cache hits.
  SimDuration dcache_lookup = 250_ns;
  // Reading + validating an inode that is already cached in memory.
  SimDuration inode_lookup = 400_ns;
  // Page-cache radix-tree probe per 4 KiB page.
  SimDuration page_cache_probe = 300_ns;
  // Ext4 extent-tree block mapping per mapped extent.
  SimDuration extent_lookup = 400_ns;
  // Block layer: request alloc, merge attempt, submit + completion soft-IRQ.
  SimDuration block_layer = 1500_ns;
  // copy_to_user streams at roughly DRAM-copy speed on one core.
  double copy_bw_bytes_per_sec = 10e9;
  // Page size used by the page cache.
  std::uint64_t page_size = 4096;
};

/// DLFS user-level path costs.
struct DlfsCosts {
  // AVL sample-directory lookup. micro_avl measures the real structure on
  // this host: ~123 ns at 16K entries, ~263 ns at 128K, ~670 ns at 1M.
  // The directory is partitioned per storage node, so per-tree sizes in
  // the experiments sit around 60-500K entries; 150 ns reflects the
  // common (16-node) shard size. Still 2+ orders below an Ext4 open.
  SimDuration dir_lookup = 150_ns;
  // Building one SPDK request in the prep stage.
  SimDuration prep_request = 200_ns;
  // Posting one command to an SPDK submission queue (doorbell write).
  SimDuration sq_post = 300_ns;
  // One busy-poll iteration over a completion queue.
  SimDuration poll_iteration = 100_ns;
  // Handling one harvested completion (SCQ enqueue etc.).
  SimDuration completion_handling = 150_ns;
  // Frontend per-sample work in dlfs_bread beyond the directory lookup:
  // sequence-list accounting, sample-entry checks, copy-job setup.
  // Calibrated so single-node small-sample throughput lands in the same
  // regime as the paper's Xeon E5-2650 testbed (~1 us/sample of frontend
  // CPU) rather than at this model's theoretical minimum.
  SimDuration bread_per_sample = 600_ns;
  // Sample-cache to application-buffer memcpy bandwidth (hugepage-backed,
  // single core on a Sandy-Bridge-class Xeon).
  double copy_bw_bytes_per_sec = 8e9;
  // Executing a copy job on a different core than the one that produced
  // it: cache-line transfer of the job descriptor plus first-touch misses
  // on the source chunk. ~0.2 us covers the cross-socket case on the
  // paper's dual-socket E5-2650 testbed; same-core execution pays zero.
  SimDuration cross_core_handoff = 200_ns;
  // Serving one peer-cache read on the holder client: request decode,
  // cache index probe + pin, and posting the reply transfer. Comparable
  // to an RDMA-verbs recv/post pair plus a hash probe on the E5-2650
  // class host (~0.3-0.5 us in softRoCE/verbs microbenchmarks); the data
  // bytes themselves are charged separately at copy_bw_bytes_per_sec and
  // on the fabric.
  SimDuration peer_serve = 400_ns;
};

/// Octopus-like distributed FS costs (RDMA-enabled, distributed metadata).
struct OctopusCosts {
  // Server-side work to service one metadata lookup RPC.
  SimDuration metadata_server_work = 1_us;
  // Octopus keeps its file metadata in persistent memory; the paper
  // emulates NVM with an added delay "similar to the Ext4 test case",
  // so every lookup pays one NVM-resident metadata read at the owner.
  SimDuration metadata_nvm_read = 25_us;
  // Client-side work to issue one lookup / parse the reply.
  SimDuration client_lookup_work = 500_ns;
  // Per-read client bookkeeping (Octopus' client-active data fetch).
  SimDuration client_read_work = 600_ns;
  // Data copy from the RDMA staging buffer to the app buffer.
  double copy_bw_bytes_per_sec = 10e9;
};

/// The parallel-file-system stub datasets are uploaded from at mount time.
struct PfsParams {
  double read_bw_bytes_per_sec = 1.0e9;  // shared PFS stripe, per client
  SimDuration request_latency = 500_us;  // network + OST queueing
};

/// Framework (TensorFlow-like) per-element pipeline overheads for Fig. 12.
struct FrameworkCosts {
  // Per-sample: tensor wrap, bookkeeping in the Dataset iterator.
  SimDuration per_sample = 2_us;
  // Per-batch: session/iterator advance, collation.
  SimDuration per_batch = 30_us;
};

/// Everything bundled; passed around as one read-only blob.
struct Calibration {
  NvmeParams nvme;
  NicParams nic;
  KernelCosts kernel;
  DlfsCosts dlfs;
  OctopusCosts octopus;
  PfsParams pfs;
  FrameworkCosts framework;
};

/// The default calibration used by all benches unless a sweep overrides it.
inline const Calibration& default_calibration() {
  static const Calibration c{};
  return c;
}

}  // namespace dlfs

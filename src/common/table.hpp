#pragma once

// Fixed-width ASCII table printer. Every figure-reproduction bench prints
// its series through this so the outputs are uniform and diffable.

#include <cstdio>
#include <string>
#include <vector>

namespace dlfs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  [[nodiscard]] std::string render() const;

  void print() const { std::fputs(render().c_str(), stdout); }

  // Cell formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("==== Fig 6: ... ====") used by benches.
void print_banner(const std::string& title);

}  // namespace dlfs

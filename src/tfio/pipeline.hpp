#pragma once

// tfio: a TensorFlow-Dataset-style input pipeline (the paper's §IV-E
// "customized TensorFlow API" enabling TF on top of DLFS, Octopus and
// Ext4).
//
// Pull-based: a Source produces sample elements from some file system; a
// Pipeline layers an optional shuffle buffer and batching on top, and
// charges the framework's per-sample / per-batch overheads (tensor wrap,
// iterator bookkeeping) to the training thread's core. Fig. 12 measures
// exactly this stack's throughput over each FS.
//
// The shuffle stage reproduces tf.data's bounded shuffle buffer: keep B
// elements, emit a uniformly random one, refill from upstream. §II-B's
// observation — "if the size of the shuffle buffer is not large enough,
// the learner only obtains partially shuffled samples" — is measurable
// with shuffle_quality().
//
// The prefetch stage reproduces dataset.prefetch(n): a background
// producer coroutine (its own core, like tf.data's internal thread)
// runs the source+shuffle+batch stages ahead of the trainer and parks
// finished mini-batches in a bounded queue, so framework and file-system
// time overlap the training step instead of serializing with it.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/calibration.hpp"
#include "common/rng.hpp"
#include "sim/cpu.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace dlfs::tfio {

struct Element {
  std::uint32_t sample_id = 0;
  std::uint32_t class_id = 0;
  std::uint32_t bytes = 0;
};

/// Pull-based element source (one per underlying file system).
class Source {
 public:
  virtual ~Source() = default;
  /// Next element, or nullopt at end of epoch.
  [[nodiscard]] virtual dlsim::Task<std::optional<Element>> next() = 0;
};

struct MiniBatch {
  std::vector<Element> elements;
  [[nodiscard]] std::uint64_t bytes() const {
    std::uint64_t b = 0;
    for (const auto& e : elements) b += e.bytes;
    return b;
  }
};

class Pipeline {
 public:
  Pipeline(dlsim::CpuCore& core, std::unique_ptr<Source> source,
           const FrameworkCosts& costs)
      : core_(&core), source_(std::move(source)), costs_(costs) {}

  /// Inserts a bounded shuffle buffer (tf.data semantics).
  Pipeline& shuffle(std::size_t buffer_size, std::uint64_t seed) {
    shuffle_buffer_size_ = buffer_size;
    rng_ = Rng(seed);
    return *this;
  }

  Pipeline& batch(std::size_t n) {
    batch_size_ = n;
    return *this;
  }

  /// Inserts a bounded prefetch queue of `depth` mini-batches produced by
  /// a background coroutine (tf.data's dataset.prefetch(n)). 0 disables
  /// the stage. Must be set before the first next_batch() call.
  Pipeline& prefetch(std::size_t depth) {
    prefetch_depth_ = depth;
    return *this;
  }

  /// Next mini-batch (short or nullopt at end of data).
  [[nodiscard]] dlsim::Task<std::optional<MiniBatch>> next_batch();

  [[nodiscard]] std::uint64_t elements_delivered() const {
    return elements_delivered_;
  }

 private:
  [[nodiscard]] dlsim::Task<std::optional<Element>> next_element();
  [[nodiscard]] dlsim::Task<std::optional<MiniBatch>> produce_batch(
      dlsim::CpuCore& core);
  dlsim::Task<void> producer_loop();

  dlsim::CpuCore* core_;
  std::unique_ptr<Source> source_;
  FrameworkCosts costs_;
  std::size_t batch_size_ = 32;
  std::size_t shuffle_buffer_size_ = 0;  // 0 = no shuffle stage
  std::size_t prefetch_depth_ = 0;       // 0 = no prefetch stage
  Rng rng_{0};
  std::vector<Element> buffer_;
  bool upstream_done_ = false;
  std::uint64_t elements_delivered_ = 0;
  // Prefetch stage state, created lazily on the first next_batch().
  std::unique_ptr<dlsim::CpuCore> prefetch_core_;
  std::unique_ptr<dlsim::Channel<MiniBatch>> prefetch_queue_;
  bool producer_started_ = false;
  std::exception_ptr producer_error_{};
};

/// How shuffled a delivered order is: mean normalized displacement of
/// each sample from its source position, in [0, 1]. ~0 for the identity
/// order; -> 1 as the permutation approaches uniform random (expected
/// value 1/2 * ... normalized so that a uniform shuffle scores ~1).
[[nodiscard]] double shuffle_quality(
    const std::vector<std::uint32_t>& delivered);

}  // namespace dlfs::tfio

#include "tfio/pipeline.hpp"

#include <cmath>
#include <cstdlib>

namespace dlfs::tfio {

dlsim::Task<std::optional<Element>> Pipeline::next_element() {
  if (shuffle_buffer_size_ == 0) {
    co_return co_await source_->next();
  }
  // Fill the buffer.
  while (!upstream_done_ && buffer_.size() < shuffle_buffer_size_) {
    auto e = co_await source_->next();
    if (!e) {
      upstream_done_ = true;
      break;
    }
    buffer_.push_back(*e);
  }
  if (buffer_.empty()) co_return std::nullopt;
  const std::size_t idx =
      static_cast<std::size_t>(rng_.next_below(buffer_.size()));
  Element out = buffer_[idx];
  buffer_[idx] = buffer_.back();
  buffer_.pop_back();
  co_return out;
}

dlsim::Task<std::optional<MiniBatch>> Pipeline::produce_batch(
    dlsim::CpuCore& core) {
  MiniBatch mb;
  mb.elements.reserve(batch_size_);
  while (mb.elements.size() < batch_size_) {
    auto e = co_await next_element();
    if (!e) break;
    // Per-element framework work: tensor wrap, iterator advance.
    co_await core.compute(costs_.per_sample);
    mb.elements.push_back(*e);
  }
  if (mb.elements.empty()) co_return std::nullopt;
  // Per-batch work: collation, session hand-off.
  co_await core.compute(costs_.per_batch);
  elements_delivered_ += mb.elements.size();
  co_return mb;
}

dlsim::Task<void> Pipeline::producer_loop() {
  try {
    for (;;) {
      auto mb = co_await produce_batch(*prefetch_core_);
      if (!mb) break;
      co_await prefetch_queue_->push(std::move(*mb));
    }
  } catch (...) {
    // Surfaced by the consumer when it drains the queue dry.
    producer_error_ = std::current_exception();
  }
  prefetch_queue_->close();
}

dlsim::Task<std::optional<MiniBatch>> Pipeline::next_batch() {
  if (prefetch_depth_ == 0) co_return co_await produce_batch(*core_);
  if (!producer_started_) {
    producer_started_ = true;
    auto& sim = core_->simulator();
    prefetch_core_ =
        std::make_unique<dlsim::CpuCore>(sim, "tfio-prefetch");
    prefetch_queue_ =
        std::make_unique<dlsim::Channel<MiniBatch>>(sim, prefetch_depth_);
    sim.spawn_daemon(producer_loop(), "tfio-prefetch");
  }
  auto mb = co_await prefetch_queue_->pop();
  if (!mb && producer_error_) std::rethrow_exception(producer_error_);
  co_return mb;
}

double shuffle_quality(const std::vector<std::uint32_t>& delivered) {
  if (delivered.size() < 2) return 0.0;
  const double n = static_cast<double>(delivered.size());
  double total = 0.0;
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    total += std::abs(static_cast<double>(delivered[i]) -
                      static_cast<double>(i));
  }
  // Expected mean displacement of a uniform permutation is n/3; normalize
  // so a perfect shuffle scores ~1.
  return (total / n) / (n / 3.0);
}

}  // namespace dlfs::tfio

#include "tfio/sources.hpp"

#include <algorithm>
#include <stdexcept>

namespace dlfs::tfio {

DlfsSource::DlfsSource(core::DlfsInstance& instance, std::uint64_t epoch_seed,
                       std::size_t io_batch, std::uint32_t max_sample_bytes)
    : instance_(&instance),
      io_batch_(io_batch),
      arena_(io_batch * static_cast<std::size_t>(max_sample_bytes)) {
  instance_->sequence(epoch_seed);
}

dlsim::Task<std::optional<Element>> DlfsSource::next() {
  while (cursor_ >= pending_.samples.size()) {
    pending_ = co_await instance_->bread(io_batch_, arena_);
    cursor_ = 0;
    if (pending_.end_of_epoch) co_return std::nullopt;
    // A non-final batch can come back empty when every sample was
    // skipped (degraded epoch) — keep pulling until data or epoch end.
  }
  const auto& s = pending_.samples[cursor_++];
  co_return Element{s.sample_id, s.class_id, s.len};
}

Ext4Source::Ext4Source(osfs::Ext4Fs& fs, osfs::OsThread& thread,
                       std::vector<FileRef> files)
    : fs_(&fs), thread_(&thread), files_(std::move(files)) {
  std::uint32_t max_bytes = 0;
  for (const auto& f : files_) max_bytes = std::max(max_bytes, f.bytes);
  scratch_.resize(max_bytes);
}

dlsim::Task<std::optional<Element>> Ext4Source::next() {
  if (cursor_ >= files_.size()) co_return std::nullopt;
  const FileRef& f = files_[cursor_++];
  auto fd = co_await fs_->open(*thread_, f.path);
  if (!fd) throw std::runtime_error("tfio: missing file " + f.path);
  const auto n = co_await fs_->pread(
      *thread_, *fd, std::span<std::byte>(scratch_.data(), f.bytes), 0);
  co_await fs_->close(*thread_, *fd);
  if (n != f.bytes) throw std::runtime_error("tfio: short read of " + f.path);
  co_return Element{f.sample_id, f.class_id, f.bytes};
}

OctoSource::OctoSource(octofs::OctoFs::Client& client,
                       std::vector<FileRef> files)
    : client_(&client), files_(std::move(files)) {
  std::uint32_t max_bytes = 0;
  for (const auto& f : files_) max_bytes = std::max(max_bytes, f.bytes);
  scratch_.resize(max_bytes);
}

dlsim::Task<std::optional<Element>> OctoSource::next() {
  if (cursor_ >= files_.size()) co_return std::nullopt;
  const FileRef& f = files_[cursor_++];
  auto meta = co_await client_->open(f.name);
  if (!meta) throw std::runtime_error("tfio: missing file " + f.name);
  co_await client_->read(*meta,
                         std::span<std::byte>(scratch_.data(), f.bytes));
  co_return Element{f.sample_id, f.class_id, f.bytes};
}

}  // namespace dlfs::tfio

#pragma once

// Concrete tfio Sources, one per file system under comparison (Fig. 12):
//
//   DlfsSource  — dlfs_bread through a DlfsInstance (order comes from the
//                 epoch sequence installed by dlfs_sequence)
//   Ext4Source  — open/pread/close per sample from a (pre-shuffled) local
//                 file list, the way TF reads raw image files from disk
//   OctoSource  — open (possibly remote lookup) + RDMA read per sample
//
// Every source delivers sample *metadata* plus fully materialized bytes
// into its scratch arena; Element carries sizes only (the pipeline's
// framework costs are charged per element; the FS already charged its
// own I/O and copy time).

#include <memory>
#include <string>
#include <vector>

#include "dlfs/dlfs.hpp"
#include "octofs/octofs.hpp"
#include "osfs/ext4.hpp"
#include "tfio/pipeline.hpp"

namespace dlfs::tfio {

class DlfsSource final : public Source {
 public:
  /// The instance must already be mounted; installs the epoch order.
  DlfsSource(core::DlfsInstance& instance, std::uint64_t epoch_seed,
             std::size_t io_batch, std::uint32_t max_sample_bytes);

  [[nodiscard]] dlsim::Task<std::optional<Element>> next() override;

 private:
  core::DlfsInstance* instance_;
  std::size_t io_batch_;
  std::vector<std::byte> arena_;
  core::Batch pending_;
  std::size_t cursor_ = 0;
};

class Ext4Source final : public Source {
 public:
  struct FileRef {
    std::string path;
    std::uint32_t sample_id;
    std::uint32_t class_id;
    std::uint32_t bytes;
  };

  /// `files` must already be in read order (shuffle before constructing).
  Ext4Source(osfs::Ext4Fs& fs, osfs::OsThread& thread,
             std::vector<FileRef> files);

  [[nodiscard]] dlsim::Task<std::optional<Element>> next() override;

 private:
  osfs::Ext4Fs* fs_;
  osfs::OsThread* thread_;
  std::vector<FileRef> files_;
  std::vector<std::byte> scratch_;
  std::size_t cursor_ = 0;
};

class OctoSource final : public Source {
 public:
  struct FileRef {
    std::string name;
    std::uint32_t sample_id;
    std::uint32_t class_id;
    std::uint32_t bytes;
  };

  OctoSource(octofs::OctoFs::Client& client, std::vector<FileRef> files);

  [[nodiscard]] dlsim::Task<std::optional<Element>> next() override;

 private:
  octofs::OctoFs::Client* client_;
  std::vector<FileRef> files_;
  std::vector<std::byte> scratch_;
  std::size_t cursor_ = 0;
};

}  // namespace dlfs::tfio

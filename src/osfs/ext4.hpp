#pragma once

// Ext4Fs: the kernel-based baseline file system (the paper's Ext4).
//
// A functional Ext4-like file system over one NVMe device — inodes with
// extent maps, hashed directories with a bounded dentry/inode cache, a
// page cache, and a blk-mq-style block layer (one hardware queue per
// kernel thread) — with every kernel-path software cost charged from the
// explicit model in common/calibration.hpp:
//
//   open(path):  syscall + per-component dentry-cache probe; on a miss,
//                one directory-block read and one inode-table read from
//                the device (blocking, with a context switch)
//   pread(...):  syscall + per-page page-cache probes; missing page runs
//                coalesce into one device command each (extent lookup +
//                block-layer charge), blocking wait, then copy_to_user
//
// This is what Fig. 2(b) calls "the deep kernel-based stack": the reason
// Ext4-Base loses to DLFS on small samples is precisely these charges,
// so they are explicit and auditable rather than folded into a magic
// per-op constant.
//
// Threading: each simulated application thread makes an OsThread (its
// core + its blk-mq queue). Shared metadata structures are guarded by a
// kernel mutex, which is where Ext4-MC's multi-core contention comes
// from.

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/calibration.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "osfs/page_cache.hpp"
#include "sim/cpu.hpp"
#include "sim/sync.hpp"

namespace dlfs::osfs {

struct Ext4Config {
  std::size_t page_cache_pages = 16384;     // 64 MiB at 4 KiB pages
  std::size_t dentry_cache_entries = 65536;
  std::uint32_t blk_queue_depth = 32;
};

class Ext4Fs;

/// One kernel-visible thread: the caller's core plus its blk-mq queue.
class OsThread {
 public:
  OsThread(Ext4Fs& fs, dlsim::CpuCore& core);

  [[nodiscard]] dlsim::CpuCore& core() { return *core_; }

 private:
  friend class Ext4Fs;
  dlsim::CpuCore* core_;
  std::unique_ptr<hw::NvmeQueuePair> blk_queue_;
};

class Ext4Fs {
 public:
  /// mkfs + mount: claims the device for the kernel.
  Ext4Fs(dlsim::Simulator& sim, hw::NvmeDevice& device, const Calibration& cal,
         const Ext4Config& config = Ext4Config{});
  ~Ext4Fs();

  Ext4Fs(const Ext4Fs&) = delete;
  Ext4Fs& operator=(const Ext4Fs&) = delete;

  // --- write path (dataset staging; direct-I/O style, bypasses the page
  // cache so training starts cold like the paper's freshly loaded SSD) ---
  [[nodiscard]] dlsim::Task<int> create(OsThread& t, const std::string& path);
  [[nodiscard]] dlsim::Task<void> append(OsThread& t, int fd,
                                         std::span<const std::byte> data);

  // --- read path -----------------------------------------------------------
  /// Returns the fd, or nullopt if the path does not exist.
  [[nodiscard]] dlsim::Task<std::optional<int>> open(OsThread& t,
                                                     const std::string& path);
  /// Reads up to out.size() bytes at `offset`; returns bytes read.
  [[nodiscard]] dlsim::Task<std::uint64_t> pread(OsThread& t, int fd,
                                                 std::span<std::byte> out,
                                                 std::uint64_t offset);
  [[nodiscard]] dlsim::Task<void> close(OsThread& t, int fd);

  [[nodiscard]] dlsim::Task<std::optional<std::uint64_t>> file_size(
      OsThread& t, const std::string& path);

  /// Drops the page cache and dentry cache (cold-start benchmarking).
  void drop_caches();

  [[nodiscard]] PageCache& page_cache() { return page_cache_; }
  [[nodiscard]] std::uint64_t opens() const { return opens_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t dentry_hits() const { return dentry_hits_; }
  [[nodiscard]] std::uint64_t dentry_misses() const { return dentry_misses_; }
  [[nodiscard]] std::size_t num_files() const { return files_.size(); }

 private:
  friend class OsThread;

  struct Extent {
    std::uint64_t logical_block;
    std::uint64_t phys_block;
    std::uint64_t count;
  };
  struct Inode {
    std::uint64_t ino = 0;
    std::uint64_t size = 0;
    std::vector<Extent> extents;
  };
  struct OpenFile {
    std::uint64_t ino;
  };

  [[nodiscard]] dlsim::Task<void> block_read(OsThread& t, std::uint64_t dev_off,
                                             std::span<std::byte> out);
  [[nodiscard]] dlsim::Task<void> block_write(OsThread& t,
                                              std::uint64_t dev_off,
                                              std::span<const std::byte> in);
  /// Charges the cost of a metadata miss: directory block + inode read.
  [[nodiscard]] dlsim::Task<void> metadata_device_reads(OsThread& t);
  [[nodiscard]] dlsim::Task<std::optional<std::uint64_t>> resolve(
      OsThread& t, const std::string& path);
  [[nodiscard]] std::uint64_t phys_offset(const Inode& ino,
                                          std::uint64_t file_off) const;

  // Dentry cache: bounded LRU of resolved names.
  [[nodiscard]] bool dentry_probe(const std::string& path);
  void dentry_insert(const std::string& path);

  dlsim::Simulator* sim_;
  hw::NvmeDevice* device_;
  const Calibration* cal_;
  Ext4Config config_;
  dlsim::Mutex kernel_lock_;  // metadata + allocator + page-cache updates
  PageCache page_cache_;

  std::unordered_map<std::string, std::uint64_t> dirmap_;  // path -> ino
  std::unordered_map<std::uint64_t, Inode> inodes_;
  std::unordered_map<std::string, std::uint64_t> files_;   // = dirmap alias
  std::unordered_map<int, OpenFile> fds_;

  // Dentry LRU.
  std::list<std::string> dentry_lru_;
  std::unordered_map<std::string, std::list<std::string>::iterator>
      dentry_map_;

  std::uint64_t next_ino_ = 2;  // 1 = root
  std::uint64_t next_block_ = 1024;  // blocks 0..1023: superblock + tables
  int next_fd_ = 3;
  std::uint64_t opens_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t dentry_hits_ = 0;
  std::uint64_t dentry_misses_ = 0;
};

}  // namespace dlfs::osfs

#include "osfs/ext4.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/units.hpp"

namespace dlfs::osfs {

namespace {
constexpr std::uint64_t kBlock = 4096;
}

OsThread::OsThread(Ext4Fs& fs, dlsim::CpuCore& core) : core_(&core) {
  // blk-mq: one hardware context per CPU.
  blk_queue_ = fs.device_->create_qpair(fs.config_.blk_queue_depth);
}

Ext4Fs::Ext4Fs(dlsim::Simulator& sim, hw::NvmeDevice& device,
               const Calibration& cal, const Ext4Config& config)
    : sim_(&sim),
      device_(&device),
      cal_(&cal),
      config_(config),
      kernel_lock_(sim, "ext4-kernel"),
      page_cache_(config.page_cache_pages) {
  device_->claim(hw::DeviceOwner::kKernel);
}

Ext4Fs::~Ext4Fs() { device_->release(hw::DeviceOwner::kKernel); }

// --- low-level block I/O (blocking, through the calling thread's queue) ----

dlsim::Task<void> Ext4Fs::block_read(OsThread& t, std::uint64_t dev_off,
                                     std::span<std::byte> out) {
  // The kernel block layer retries retryable NVMe statuses a few times
  // before surfacing EIO.
  for (int attempt = 0; attempt < 4; ++attempt) {
    co_await t.core().compute(cal_->kernel.block_layer);
    auto& qp = *t.blk_queue_;
    const auto st = qp.submit(hw::IoOp::kRead, dev_off, out, 0);
    if (st != hw::IoStatus::kOk) {
      throw std::runtime_error("ext4: block read failed at offset " +
                               std::to_string(dev_off));
    }
    // The kernel thread blocks (schedules out) until the interrupt: the
    // context-switch pair is CPU work, the device wait is not.
    co_await t.core().compute(cal_->kernel.context_switch);
    co_await qp.wait_for_completion();
    auto done = qp.poll();
    if (done.empty() || done.front().status == hw::IoStatus::kOk) co_return;
  }
  throw std::runtime_error("ext4: EIO at offset " + std::to_string(dev_off));
}

dlsim::Task<void> Ext4Fs::block_write(OsThread& t, std::uint64_t dev_off,
                                      std::span<const std::byte> in) {
  co_await t.core().compute(cal_->kernel.block_layer);
  auto& qp = *t.blk_queue_;
  // The device model moves data at submit; the span stays valid across it.
  auto mutable_span = std::span<std::byte>(
      const_cast<std::byte*>(in.data()), in.size());
  const auto st = qp.submit(hw::IoOp::kWrite, dev_off, mutable_span, 0);
  if (st != hw::IoStatus::kOk) {
    throw std::runtime_error("ext4: block write failed");
  }
  co_await t.core().compute(cal_->kernel.context_switch);
  co_await qp.wait_for_completion();
  (void)qp.poll();
}

dlsim::Task<void> Ext4Fs::metadata_device_reads(OsThread& t) {
  // Directory (htree leaf) block, then the inode-table block.
  std::array<std::byte, kBlock> scratch;
  co_await block_read(t, 0, scratch);          // dir block (superblock area
  co_await block_read(t, kBlock, scratch);     // + inode table, modeled)
}

// --- dentry cache -----------------------------------------------------------

bool Ext4Fs::dentry_probe(const std::string& path) {
  auto it = dentry_map_.find(path);
  if (it == dentry_map_.end()) {
    ++dentry_misses_;
    return false;
  }
  ++dentry_hits_;
  dentry_lru_.splice(dentry_lru_.begin(), dentry_lru_, it->second);
  return true;
}

void Ext4Fs::dentry_insert(const std::string& path) {
  if (dentry_map_.contains(path)) return;
  if (dentry_map_.size() >= config_.dentry_cache_entries &&
      !dentry_lru_.empty()) {
    dentry_map_.erase(dentry_lru_.back());
    dentry_lru_.pop_back();
  }
  dentry_lru_.push_front(path);
  dentry_map_[path] = dentry_lru_.begin();
}

dlsim::Task<std::optional<std::uint64_t>> Ext4Fs::resolve(
    OsThread& t, const std::string& path) {
  // Path walk: charge one dcache probe per component.
  std::size_t components = 1 + static_cast<std::size_t>(std::count(
                                   path.begin(), path.end(), '/'));
  co_await t.core().compute(cal_->kernel.dcache_lookup * components);
  auto it = dirmap_.find(path);
  if (it == dirmap_.end()) co_return std::nullopt;
  if (!dentry_probe(path)) {
    // Cold lookup: htree block + inode from the device, then cache it.
    co_await metadata_device_reads(t);
    auto guard = co_await kernel_lock_.scoped_lock();
    dentry_insert(path);
  }
  co_await t.core().compute(cal_->kernel.inode_lookup);
  co_return it->second;
}

std::uint64_t Ext4Fs::phys_offset(const Inode& ino,
                                  std::uint64_t file_off) const {
  const std::uint64_t logical_block = file_off / kBlock;
  for (const auto& e : ino.extents) {
    if (logical_block >= e.logical_block &&
        logical_block < e.logical_block + e.count) {
      return (e.phys_block + (logical_block - e.logical_block)) * kBlock +
             file_off % kBlock;
    }
  }
  throw std::logic_error("ext4: unmapped block in inode " +
                         std::to_string(ino.ino));
}

// --- write path -------------------------------------------------------------

dlsim::Task<int> Ext4Fs::create(OsThread& t, const std::string& path) {
  co_await t.core().compute(cal_->kernel.syscall);
  auto guard = co_await kernel_lock_.scoped_lock();
  if (dirmap_.contains(path)) {
    throw std::invalid_argument("ext4: create of existing path " + path);
  }
  const std::uint64_t ino = next_ino_++;
  dirmap_[path] = ino;
  files_[path] = ino;
  Inode inode;
  inode.ino = ino;
  inodes_[ino] = std::move(inode);
  dentry_insert(path);
  // Directory + inode updates: journalled metadata, amortized; charge the
  // in-memory work only (staging time is not part of any figure).
  co_await t.core().compute(cal_->kernel.inode_lookup);
  const int fd = next_fd_++;
  fds_[fd] = OpenFile{ino};
  co_return fd;
}

dlsim::Task<void> Ext4Fs::append(OsThread& t, int fd,
                                 std::span<const std::byte> data) {
  co_await t.core().compute(cal_->kernel.syscall);
  auto it = fds_.find(fd);
  if (it == fds_.end()) throw std::invalid_argument("ext4: bad fd");
  Inode& ino = inodes_.at(it->second.ino);
  const std::uint64_t blocks_needed =
      ceil_div(ino.size + data.size(), kBlock) - ceil_div(ino.size, kBlock);
  std::uint64_t write_phys;
  {
    auto guard = co_await kernel_lock_.scoped_lock();
    if (blocks_needed > 0) {
      // Bump allocation is contiguous: extend the last extent when possible.
      const std::uint64_t first_new = next_block_;
      next_block_ += blocks_needed;
      if ((first_new + blocks_needed) * kBlock > device_->capacity()) {
        throw std::runtime_error("ext4: device full");
      }
      if (!ino.extents.empty() &&
          ino.extents.back().phys_block + ino.extents.back().count ==
              first_new) {
        ino.extents.back().count += blocks_needed;
      } else {
        ino.extents.push_back(Extent{ceil_div(ino.size, kBlock), first_new,
                                     blocks_needed});
      }
    }
    write_phys = phys_offset(ino, ino.size);
    ino.size += data.size();
  }
  co_await block_write(t, write_phys, data);
}

// --- read path --------------------------------------------------------------

dlsim::Task<std::optional<int>> Ext4Fs::open(OsThread& t,
                                             const std::string& path) {
  ++opens_;
  co_await t.core().compute(cal_->kernel.syscall);
  auto ino = co_await resolve(t, path);
  if (!ino) co_return std::nullopt;
  const int fd = next_fd_++;
  fds_[fd] = OpenFile{*ino};
  co_return fd;
}

dlsim::Task<std::uint64_t> Ext4Fs::pread(OsThread& t, int fd,
                                         std::span<std::byte> out,
                                         std::uint64_t offset) {
  ++reads_;
  co_await t.core().compute(cal_->kernel.syscall);
  auto it = fds_.find(fd);
  if (it == fds_.end()) throw std::invalid_argument("ext4: bad fd");
  const Inode& ino = inodes_.at(it->second.ino);
  if (offset >= ino.size) co_return 0;
  const std::uint64_t n =
      std::min<std::uint64_t>(out.size(), ino.size - offset);

  const std::uint64_t first_page = offset / kBlock;
  const std::uint64_t last_page = (offset + n - 1) / kBlock;

  // Probe the page cache per page; coalesce runs of misses into single
  // device commands.
  std::uint64_t page = first_page;
  while (page <= last_page) {
    bool hit;
    {
      auto guard = co_await kernel_lock_.scoped_lock();
      co_await t.core().compute(cal_->kernel.page_cache_probe);
      hit = page_cache_.contains(ino.ino, page);
    }
    if (hit) {
      ++page;
      continue;
    }
    std::uint64_t run_end = page + 1;
    while (run_end <= last_page) {
      auto guard = co_await kernel_lock_.scoped_lock();
      co_await t.core().compute(cal_->kernel.page_cache_probe);
      if (page_cache_.contains(ino.ino, run_end)) break;
      ++run_end;
    }
    // Map + read the run [page, run_end).
    co_await t.core().compute(cal_->kernel.extent_lookup);
    const std::uint64_t run_bytes = (run_end - page) * kBlock;
    std::vector<std::byte> pages_buf(run_bytes);
    co_await block_read(t, phys_offset(ino, page * kBlock), pages_buf);
    {
      auto guard = co_await kernel_lock_.scoped_lock();
      for (std::uint64_t p = page; p < run_end; ++p) {
        page_cache_.insert(ino.ino, p);
      }
    }
    page = run_end;
  }

  // copy_to_user: functional copy straight from the device store (the
  // page cache holds presence, not bytes — see page_cache.hpp).
  device_->store().read(phys_offset(ino, offset), out.subspan(0, n));
  co_await t.core().compute(
      dlsim::transfer_time(n, cal_->kernel.copy_bw_bytes_per_sec));
  co_return n;
}

dlsim::Task<void> Ext4Fs::close(OsThread& t, int fd) {
  co_await t.core().compute(cal_->kernel.syscall);
  if (fds_.erase(fd) == 0) throw std::invalid_argument("ext4: bad fd");
}

dlsim::Task<std::optional<std::uint64_t>> Ext4Fs::file_size(
    OsThread& t, const std::string& path) {
  co_await t.core().compute(cal_->kernel.syscall);
  auto ino = co_await resolve(t, path);
  if (!ino) co_return std::nullopt;
  co_return inodes_.at(*ino).size;
}

void Ext4Fs::drop_caches() {
  page_cache_.drop_all();
  dentry_lru_.clear();
  dentry_map_.clear();
}

}  // namespace dlfs::osfs

#include "osfs/page_cache.hpp"

namespace dlfs::osfs {

bool PageCache::contains(std::uint64_t ino, std::uint64_t page) {
  auto it = map_.find(Key{ino, page});
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void PageCache::insert(std::uint64_t ino, std::uint64_t page) {
  const Key k{ino, page};
  if (auto it = map_.find(k); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(k);
  map_[k] = lru_.begin();
}

void PageCache::invalidate(std::uint64_t ino) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->ino == ino) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::drop_all() {
  lru_.clear();
  map_.clear();
}

}  // namespace dlfs::osfs

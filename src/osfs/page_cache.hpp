#pragma once

// PageCache: the kernel page cache used by the Ext4-like baseline.
//
// This is a *timing* structure: it tracks which (inode, page) pairs are
// resident so the read path knows whether to go to the device. Actual
// bytes always come from the device's backing store (the dataset is
// read-only once staged, so the contents are identical either way); the
// savings a hit delivers — no block-layer trip, no device time — are the
// part that matters to the evaluation.

#include <cstdint>
#include <list>
#include <unordered_map>

namespace dlfs::osfs {

class PageCache {
 public:
  explicit PageCache(std::size_t capacity_pages)
      : capacity_(capacity_pages) {}

  struct Key {
    std::uint64_t ino;
    std::uint64_t page;
    bool operator==(const Key&) const = default;
  };

  /// Probe; refreshes LRU position on hit.
  [[nodiscard]] bool contains(std::uint64_t ino, std::uint64_t page);

  /// Inserts (evicting the LRU page if full).
  void insert(std::uint64_t ino, std::uint64_t page);

  /// Drops every page of an inode (used by unlink / cold-cache setup).
  void invalidate(std::uint64_t ino);

  /// Drops everything (echo 3 > /proc/sys/vm/drop_caches).
  void drop_all();

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(k.ino * 0x9e3779b97f4a7c15ull ^
                                        k.page);
    }
  };

  std::size_t capacity_;
  std::list<Key> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dlfs::osfs

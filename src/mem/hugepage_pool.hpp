#pragma once

// HugePagePool: the pinned-memory arena SPDK-style I/O requires.
//
// The real SPDK mandates that all I/O buffers live on huge pages so the
// user-space driver can pin and DMA-map them. We reproduce the *rule*
// (device I/O rejects buffers not carved from a registered pool — see
// spdk::NvmeDriver) with an arena allocator: one contiguous host
// allocation carved into fixed-size chunks, handed out as RAII DmaBuffer
// handles. DLFS's sample cache (§III-C.1 of the paper) sits directly on
// top of this pool, with the 256 KiB default chunk size the paper uses.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dlfs::mem {

class HugePagePool;

/// RAII handle to one pool chunk. Movable; returns the chunk on destruction.
class DmaBuffer {
 public:
  DmaBuffer() = default;
  DmaBuffer(DmaBuffer&& o) noexcept
      : pool_(std::exchange(o.pool_, nullptr)),
        chunk_(std::exchange(o.chunk_, 0)),
        span_(std::exchange(o.span_, {})) {}
  DmaBuffer& operator=(DmaBuffer&& o) noexcept;
  DmaBuffer(const DmaBuffer&) = delete;
  DmaBuffer& operator=(const DmaBuffer&) = delete;
  ~DmaBuffer() { release(); }

  [[nodiscard]] bool valid() const { return pool_ != nullptr; }
  [[nodiscard]] std::span<std::byte> span() const { return span_; }
  [[nodiscard]] std::byte* data() const { return span_.data(); }
  [[nodiscard]] std::size_t size() const { return span_.size(); }
  [[nodiscard]] std::size_t chunk_index() const { return chunk_; }

  void release();

 private:
  friend class HugePagePool;
  DmaBuffer(HugePagePool* pool, std::size_t chunk, std::span<std::byte> span)
      : pool_(pool), chunk_(chunk), span_(span) {}

  HugePagePool* pool_ = nullptr;
  std::size_t chunk_ = 0;
  std::span<std::byte> span_{};
};

/// Thrown when the pool is exhausted.
class PoolExhausted : public std::runtime_error {
 public:
  PoolExhausted() : std::runtime_error("huge-page pool exhausted") {}
};

class HugePagePool {
 public:
  /// `total_bytes` is rounded up to a whole number of chunks.
  HugePagePool(std::size_t total_bytes, std::size_t chunk_size);
  ~HugePagePool();

  HugePagePool(const HugePagePool&) = delete;
  HugePagePool& operator=(const HugePagePool&) = delete;

  /// Debug aid for zero-copy lifetime bugs: when on, recycled chunks are
  /// scribbled with 0xDD on free — and poisoned under AddressSanitizer —
  /// so a stale view (read after release) sees garbage / faults instead
  /// of silently reading recycled bytes. Off by default (memset cost).
  void set_scribble_on_free(bool on) { scribble_on_free_ = on; }
  [[nodiscard]] bool scribble_on_free() const { return scribble_on_free_; }

  /// Allocates one chunk; throws PoolExhausted when empty.
  [[nodiscard]] DmaBuffer allocate();

  /// Allocates n chunks (all-or-nothing).
  [[nodiscard]] std::vector<DmaBuffer> allocate_many(std::size_t n);

  /// True if `p` points inside this pool — the SPDK "is this DMA-safe
  /// memory" check enforced by the user-level driver.
  [[nodiscard]] bool owns(const std::byte* p) const {
    return p >= arena_.get() && p < arena_.get() + arena_bytes_;
  }

  [[nodiscard]] std::size_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] std::size_t total_chunks() const { return total_chunks_; }
  [[nodiscard]] std::size_t free_chunks() const { return free_list_.size(); }
  [[nodiscard]] std::size_t used_chunks() const {
    return total_chunks_ - free_list_.size();
  }
  /// High-water mark of simultaneously used chunks.
  [[nodiscard]] std::size_t peak_used_chunks() const { return peak_used_; }

 private:
  friend class DmaBuffer;
  void free_chunk(std::size_t idx);

  std::size_t chunk_size_;
  std::size_t total_chunks_;
  std::size_t arena_bytes_;
  std::unique_ptr<std::byte[]> arena_;
  std::vector<std::size_t> free_list_;
  std::size_t peak_used_ = 0;
  bool scribble_on_free_ = false;
};

}  // namespace dlfs::mem

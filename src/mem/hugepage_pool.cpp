#include "mem/hugepage_pool.hpp"

#include <algorithm>
#include <cstring>

#include "common/units.hpp"

// ASan hooks for the scribble-on-free debug mode: poisoned freed chunks
// turn a stale zero-copy view into a hard ASan report instead of a
// silent read of 0xDD bytes.
#if defined(__SANITIZE_ADDRESS__)
#define DLFS_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DLFS_POOL_ASAN 1
#endif
#endif
#if defined(DLFS_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace dlfs::mem {

namespace {
inline void poison_chunk(const std::byte* p, std::size_t n) {
#if defined(DLFS_POOL_ASAN)
  __asan_poison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

inline void unpoison_chunk(const std::byte* p, std::size_t n) {
#if defined(DLFS_POOL_ASAN)
  __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}
}  // namespace

DmaBuffer& DmaBuffer::operator=(DmaBuffer&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = std::exchange(o.pool_, nullptr);
    chunk_ = std::exchange(o.chunk_, 0);
    span_ = std::exchange(o.span_, {});
  }
  return *this;
}

void DmaBuffer::release() {
  if (pool_) {
    pool_->free_chunk(chunk_);
    pool_ = nullptr;
    span_ = {};
  }
}

namespace {
std::size_t checked_chunk_count(std::size_t total_bytes,
                                std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("chunk_size must be > 0");
  return ceil_div(total_bytes, chunk_size);
}
}  // namespace

HugePagePool::HugePagePool(std::size_t total_bytes, std::size_t chunk_size)
    : chunk_size_(chunk_size),
      total_chunks_(checked_chunk_count(total_bytes, chunk_size)),
      arena_bytes_(total_chunks_ * chunk_size) {
  if (total_chunks_ == 0) {
    throw std::invalid_argument("pool must hold at least one chunk");
  }
  // for_overwrite: skip zero-initialization — chunk contents are always
  // written by DMA before being read (multi-hundred-MiB pools otherwise
  // cost a memset per benchmark configuration).
  arena_ = std::make_unique_for_overwrite<std::byte[]>(arena_bytes_);
  free_list_.reserve(total_chunks_);
  // Push in reverse so allocation order starts at chunk 0.
  for (std::size_t i = total_chunks_; i > 0; --i) free_list_.push_back(i - 1);
}

HugePagePool::~HugePagePool() {
  // The arena's heap pages go back to the allocator; make sure no stale
  // poisoning outlives the pool (the allocator may recycle the range).
  if (scribble_on_free_) unpoison_chunk(arena_.get(), arena_bytes_);
}

DmaBuffer HugePagePool::allocate() {
  if (free_list_.empty()) throw PoolExhausted{};
  const std::size_t idx = free_list_.back();
  free_list_.pop_back();
  peak_used_ = std::max(peak_used_, used_chunks());
  std::byte* base = arena_.get() + idx * chunk_size_;
  if (scribble_on_free_) unpoison_chunk(base, chunk_size_);
  return DmaBuffer(this, idx, std::span<std::byte>(base, chunk_size_));
}

std::vector<DmaBuffer> HugePagePool::allocate_many(std::size_t n) {
  if (free_list_.size() < n) throw PoolExhausted{};
  std::vector<DmaBuffer> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(allocate());
  return out;
}

void HugePagePool::free_chunk(std::size_t idx) {
  if (scribble_on_free_) {
    std::byte* base = arena_.get() + idx * chunk_size_;
    std::memset(base, 0xDD, chunk_size_);
    poison_chunk(base, chunk_size_);
  }
  free_list_.push_back(idx);
}

}  // namespace dlfs::mem

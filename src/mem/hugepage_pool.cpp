#include "mem/hugepage_pool.hpp"

#include <algorithm>

#include "common/units.hpp"

namespace dlfs::mem {

DmaBuffer& DmaBuffer::operator=(DmaBuffer&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = std::exchange(o.pool_, nullptr);
    chunk_ = std::exchange(o.chunk_, 0);
    span_ = std::exchange(o.span_, {});
  }
  return *this;
}

void DmaBuffer::release() {
  if (pool_) {
    pool_->free_chunk(chunk_);
    pool_ = nullptr;
    span_ = {};
  }
}

namespace {
std::size_t checked_chunk_count(std::size_t total_bytes,
                                std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("chunk_size must be > 0");
  return ceil_div(total_bytes, chunk_size);
}
}  // namespace

HugePagePool::HugePagePool(std::size_t total_bytes, std::size_t chunk_size)
    : chunk_size_(chunk_size),
      total_chunks_(checked_chunk_count(total_bytes, chunk_size)),
      arena_bytes_(total_chunks_ * chunk_size) {
  if (total_chunks_ == 0) {
    throw std::invalid_argument("pool must hold at least one chunk");
  }
  // for_overwrite: skip zero-initialization — chunk contents are always
  // written by DMA before being read (multi-hundred-MiB pools otherwise
  // cost a memset per benchmark configuration).
  arena_ = std::make_unique_for_overwrite<std::byte[]>(arena_bytes_);
  free_list_.reserve(total_chunks_);
  // Push in reverse so allocation order starts at chunk 0.
  for (std::size_t i = total_chunks_; i > 0; --i) free_list_.push_back(i - 1);
}

DmaBuffer HugePagePool::allocate() {
  if (free_list_.empty()) throw PoolExhausted{};
  const std::size_t idx = free_list_.back();
  free_list_.pop_back();
  peak_used_ = std::max(peak_used_, used_chunks());
  return DmaBuffer(this, idx,
                   std::span<std::byte>(arena_.get() + idx * chunk_size_,
                                        chunk_size_));
}

std::vector<DmaBuffer> HugePagePool::allocate_many(std::size_t n) {
  if (free_list_.size() < n) throw PoolExhausted{};
  std::vector<DmaBuffer> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(allocate());
  return out;
}

void HugePagePool::free_chunk(std::size_t idx) { free_list_.push_back(idx); }

}  // namespace dlfs::mem

#include "hw/nvme/backing_store.hpp"

#include <cstring>
#include <stdexcept>

namespace dlfs::hw {

namespace {
void check_range(std::uint64_t offset, std::size_t len, std::uint64_t cap) {
  if (offset + len > cap) {
    throw std::out_of_range("backing store access beyond capacity: offset=" +
                            std::to_string(offset) + " len=" +
                            std::to_string(len) + " cap=" +
                            std::to_string(cap));
  }
}
}  // namespace

RamBackingStore::RamBackingStore(std::uint64_t capacity, std::size_t page_size)
    : capacity_(capacity), page_size_(page_size) {
  if (page_size == 0) throw std::invalid_argument("page_size must be > 0");
}

void RamBackingStore::read(std::uint64_t offset,
                           std::span<std::byte> out) const {
  check_range(offset, out.size(), capacity_);
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t page = pos / page_size_;
    const std::size_t in_page = static_cast<std::size_t>(pos % page_size_);
    const std::size_t n =
        std::min(out.size() - done, page_size_ - in_page);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      std::memset(out.data() + done, 0, n);
    } else {
      std::memcpy(out.data() + done, it->second.get() + in_page, n);
    }
    done += n;
  }
}

void RamBackingStore::write(std::uint64_t offset,
                            std::span<const std::byte> in) {
  check_range(offset, in.size(), capacity_);
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t pos = offset + done;
    const std::uint64_t page = pos / page_size_;
    const std::size_t in_page = static_cast<std::size_t>(pos % page_size_);
    const std::size_t n = std::min(in.size() - done, page_size_ - in_page);
    auto& slot = pages_[page];
    if (!slot) {
      slot = std::make_unique<std::byte[]>(page_size_);
      std::memset(slot.get(), 0, page_size_);
    }
    std::memcpy(slot.get() + in_page, in.data() + done, n);
    done += n;
  }
}

SyntheticBackingStore::SyntheticBackingStore(std::uint64_t capacity,
                                             std::uint64_t seed)
    : capacity_(capacity), seed_(seed) {}

void SyntheticBackingStore::fill(std::uint64_t seed, std::uint64_t offset,
                                 std::span<std::byte> out) {
  // Generate 8 bytes at a time from mix64 over the aligned word index.
  std::size_t i = 0;
  // Leading unaligned bytes.
  while (i < out.size() && ((offset + i) & 7) != 0) {
    const std::uint64_t pos = offset + i;
    const std::uint64_t w = dlfs::mix64(seed ^ (pos >> 3));
    out[i] = static_cast<std::byte>((w >> (8 * (pos & 7))) & 0xff);
    ++i;
  }
  // Aligned words.
  while (i + 8 <= out.size()) {
    const std::uint64_t w = dlfs::mix64(seed ^ ((offset + i) >> 3));
    std::memcpy(out.data() + i, &w, 8);
    i += 8;
  }
  // Trailing bytes.
  while (i < out.size()) {
    const std::uint64_t pos = offset + i;
    const std::uint64_t w = dlfs::mix64(seed ^ (pos >> 3));
    out[i] = static_cast<std::byte>((w >> (8 * (pos & 7))) & 0xff);
    ++i;
  }
}

void SyntheticBackingStore::read(std::uint64_t offset,
                                 std::span<std::byte> out) const {
  check_range(offset, out.size(), capacity_);
  fill(seed_, offset, out);
}

void SyntheticBackingStore::write(std::uint64_t offset,
                                  std::span<const std::byte> in) {
  check_range(offset, in.size(), capacity_);
  bytes_written_ += in.size();
}

}  // namespace dlfs::hw

#include "hw/nvme/nvme_device.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace dlfs::hw {

NvmeQueuePair::NvmeQueuePair(NvmeDevice& dev, std::uint32_t depth)
    : device_(&dev), depth_(depth) {}

IoStatus NvmeQueuePair::submit(IoOp op, std::uint64_t offset,
                               std::span<std::byte> buf,
                               std::uint64_t user_tag) {
  if (device_->crashed_) return IoStatus::kConnectionLost;
  if (pending_.size() >= depth_) return IoStatus::kQueueFull;
  if (offset + buf.size() > device_->capacity()) return IoStatus::kOutOfRange;

  // Injected transient media fault? The command still occupies the pipe
  // (the device worked on it) but completes with an error and moves no
  // data.
  IoStatus final_status = IoStatus::kOk;
  if (device_->fault_state_ != 0) {
    device_->fault_state_ = dlfs::mix64(device_->fault_state_);
    const double roll = static_cast<double>(device_->fault_state_ >> 11) *
                        0x1.0p-53;
    if (roll < device_->fault_rate_) {
      final_status = IoStatus::kMediaError;
      ++device_->faults_injected_;
    }
  }

  if (final_status == IoStatus::kOk) {
    // Functional data movement now; visibility at completion harvest.
    if (op == IoOp::kRead) {
      device_->store().read(offset, buf);
      device_->bytes_read_ += buf.size();
    } else {
      device_->store().write(offset, buf);
      device_->bytes_written_ += buf.size();
    }
  }

  const SimTime done = device_->schedule_command(op, buf.size());
  pending_.push_back(Pending{
      done, IoCompletion{user_tag, op, final_status,
                         static_cast<std::uint32_t>(buf.size())}});
  return IoStatus::kOk;
}

std::vector<IoCompletion> NvmeQueuePair::poll(std::size_t max) {
  std::vector<IoCompletion> out;
  if (device_->crashed_) {
    // The controller died: everything in flight fails now, regardless of
    // its scheduled completion time. Data visibility never happens.
    while (!pending_.empty() && out.size() < max) {
      IoCompletion c = pending_.front().completion;
      c.status = IoStatus::kConnectionLost;
      c.bytes = 0;
      out.push_back(c);
      pending_.pop_front();
    }
    return out;
  }
  const SimTime now = device_->simulator().now();
  while (!pending_.empty() && out.size() < max &&
         pending_.front().done_at <= now) {
    out.push_back(pending_.front().completion);
    pending_.pop_front();
    ++device_->commands_;
  }
  return out;
}

dlsim::Task<void> NvmeQueuePair::wait_for_completion() {
  if (pending_.empty() || device_->crashed_) co_return;
  const SimTime now = device_->simulator().now();
  const SimTime first = pending_.front().done_at;
  if (first > now) co_await device_->simulator().delay(first - now);
}

SimTime NvmeQueuePair::next_completion_at() const {
  if (pending_.empty()) return 0;
  if (device_->crashed_) return device_->sim_->now();
  return pending_.front().done_at;
}

NvmeDevice::NvmeDevice(dlsim::Simulator& sim, std::string name,
                       std::unique_ptr<BackingStore> store,
                       const NvmeParams& params)
    : sim_(&sim),
      name_(std::move(name)),
      store_(std::move(store)),
      params_(params) {
  if (!store_) throw std::invalid_argument("device needs a backing store");
}

std::unique_ptr<NvmeQueuePair> NvmeDevice::create_qpair(std::uint32_t depth) {
  if (depth == 0) depth = params_.max_queue_depth;
  depth = std::min(depth, params_.max_queue_depth);
  // Not make_unique: the constructor is private to this friend.
  return std::unique_ptr<NvmeQueuePair>(new NvmeQueuePair(*this, depth));
}

void NvmeDevice::claim(DeviceOwner who) {
  if (who == DeviceOwner::kUnbound) {
    throw std::logic_error("cannot claim as kUnbound; use release()");
  }
  if (owner_ != DeviceOwner::kUnbound && owner_ != who) {
    throw std::logic_error(
        "device " + name_ + " is bound to the " +
        (owner_ == DeviceOwner::kKernel ? "kernel" : "user-space") +
        " driver; unbind it first (SPDK requires exclusive ownership)");
  }
  owner_ = who;
  ++owner_claims_;
}

void NvmeDevice::release(DeviceOwner who) {
  if (owner_ != who || owner_claims_ == 0) {
    throw std::logic_error("release by non-owner on device " + name_);
  }
  if (--owner_claims_ == 0) owner_ = DeviceOwner::kUnbound;
}

SimTime NvmeDevice::schedule_command(IoOp op, std::uint64_t bytes) {
  const bool is_read = op == IoOp::kRead;
  const double bw = is_read ? params_.read_bw_bytes_per_sec
                            : params_.write_bw_bytes_per_sec;
  const SimDuration latency =
      is_read ? params_.read_latency : params_.write_latency;
  const SimDuration occupancy =
      std::max<SimDuration>(params_.cmd_min_occupancy,
                            dlsim::transfer_time(bytes, bw));
  const SimTime now = sim_->now();
  const SimTime start = std::max(now, pipe_free_at_);
  pipe_free_at_ = start + occupancy;
  pipe_busy_ns_ += occupancy;
  return pipe_free_at_ + latency;
}

void NvmeDevice::inject_faults(double rate, std::uint64_t seed) {
  fault_rate_ = rate;
  fault_state_ = rate > 0.0 ? dlfs::mix64(seed | 1) : 0;
}

void NvmeDevice::crash() { crashed_ = true; }

void NvmeDevice::recover() { crashed_ = false; }

void NvmeDevice::crash_at(SimTime when) {
  sim_->spawn_daemon(
      [](NvmeDevice* dev, SimTime at) -> dlsim::Task<void> {
        const SimTime now = dev->sim_->now();
        if (at > now) co_await dev->sim_->delay(at - now);
        dev->crash();
      }(this, when),
      "nvme-crash-at");
}

void NvmeDevice::recover_at(SimTime when) {
  sim_->spawn_daemon(
      [](NvmeDevice* dev, SimTime at) -> dlsim::Task<void> {
        const SimTime now = dev->sim_->now();
        if (at > now) co_await dev->sim_->delay(at - now);
        dev->recover();
      }(this, when),
      "nvme-recover-at");
}

double NvmeDevice::pipe_utilization() const {
  const SimDuration elapsed = sim_->now() - stats_since_;
  if (elapsed == 0) return 0.0;
  return std::min(1.0, static_cast<double>(pipe_busy_ns_) /
                           static_cast<double>(elapsed));
}

void NvmeDevice::reset_stats() {
  stats_since_ = sim_->now();
  pipe_busy_ns_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  commands_ = 0;
}

}  // namespace dlfs::hw

#pragma once

// NvmeDevice: the simulated NVMe SSD.
//
// Functional model: a byte-addressed BackingStore (the repo works in byte
// offsets; LBA math adds nothing for these experiments).
//
// Timing model (calibrated to the paper's Intel Optane device, see
// common/calibration.hpp):
//
//   occupancy(cmd)  = max(cmd_min_occupancy, bytes / bandwidth)
//   service_start   = max(submit_time, pipe_free_at)
//   done            = service_start + occupancy + media_latency
//   pipe_free_at    = service_start + occupancy
//
// i.e. media latency overlaps across outstanding commands (the device's
// internal parallelism) while the data path serializes — which yields the
// three behaviours the paper's results hinge on: a QD1 latency floor
// (DLFS-Base, Ext4-Base), an IOPS ceiling for small commands (why
// chunk-level batching wins), and a bandwidth ceiling for large ones.
//
// Ownership: a device is either kernel-owned (mounted by osfs) or
// unbound and claimed by the user-space driver (spdk) — never both. The
// real SPDK requires unbinding the kernel NVMe driver first; tests assert
// the same exclusivity here.

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/calibration.hpp"
#include "hw/nvme/backing_store.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace dlfs::hw {

using dlsim::SimDuration;
using dlsim::SimTime;

enum class IoOp : std::uint8_t { kRead, kWrite };

enum class IoStatus : std::uint8_t {
  kOk,
  kOutOfRange,
  kQueueFull,
  kInvalidBuffer,
  kMediaError,       // injected device fault (see NvmeDevice::inject_faults)
  kTimeout,          // command deadline passed without a completion
  kConnectionLost,   // device/target crashed or the fabric path is dead
};

/// A harvested completion.
struct IoCompletion {
  std::uint64_t user_tag = 0;
  IoOp op = IoOp::kRead;
  IoStatus status = IoStatus::kOk;
  std::uint32_t bytes = 0;
};

class NvmeDevice;

/// One NVMe submission/completion queue pair. Commands submitted here
/// complete in service order; completions become visible to poll() once
/// simulated time reaches their completion timestamp.
class NvmeQueuePair {
 public:
  NvmeQueuePair(const NvmeQueuePair&) = delete;
  NvmeQueuePair& operator=(const NvmeQueuePair&) = delete;

  /// Posts a command. Returns kQueueFull when `outstanding() == depth()`,
  /// kOutOfRange for bad offsets. The data transfer happens functionally
  /// at submit (the dataset is read-only during training; writes happen
  /// only during the serial load phase), but is *visible* to the caller
  /// only when the completion is harvested.
  IoStatus submit(IoOp op, std::uint64_t offset, std::span<std::byte> buf,
                  std::uint64_t user_tag);

  /// Harvests up to `max` completions whose time has come.
  [[nodiscard]] std::vector<IoCompletion> poll(std::size_t max = SIZE_MAX);

  /// Suspends until at least one completion is visible (or returns
  /// immediately if nothing is outstanding). Models the fast-path of a
  /// busy-poll loop without generating an event per poll iteration; the
  /// caller charges the elapsed time to its CPU core as busy-poll time.
  [[nodiscard]] dlsim::Task<void> wait_for_completion();

  [[nodiscard]] std::uint32_t outstanding() const {
    return static_cast<std::uint32_t>(pending_.size());
  }
  [[nodiscard]] std::uint32_t depth() const { return depth_; }

  /// Timestamp of the earliest outstanding completion (0 when none).
  /// On a crashed device every outstanding command is already harvestable
  /// (as kConnectionLost), so this returns the current time.
  [[nodiscard]] SimTime next_completion_at() const;
  [[nodiscard]] NvmeDevice& device() { return *device_; }

 private:
  friend class NvmeDevice;
  NvmeQueuePair(NvmeDevice& dev, std::uint32_t depth);

  struct Pending {
    SimTime done_at;
    IoCompletion completion;
  };

  NvmeDevice* device_;
  std::uint32_t depth_;
  std::deque<Pending> pending_;  // ordered by done_at (service order)
};

/// Who currently drives the device.
enum class DeviceOwner : std::uint8_t { kUnbound, kKernel, kUserSpace };

class NvmeDevice {
 public:
  NvmeDevice(dlsim::Simulator& sim, std::string name,
             std::unique_ptr<BackingStore> store,
             const NvmeParams& params = NvmeParams{});

  NvmeDevice(const NvmeDevice&) = delete;
  NvmeDevice& operator=(const NvmeDevice&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t capacity() const { return store_->capacity(); }
  [[nodiscard]] const NvmeParams& params() const { return params_; }
  [[nodiscard]] dlsim::Simulator& simulator() { return *sim_; }
  [[nodiscard]] BackingStore& store() { return *store_; }

  /// Creates an I/O queue pair (depth 0 = device default).
  [[nodiscard]] std::unique_ptr<NvmeQueuePair> create_qpair(
      std::uint32_t depth = 0);

  // --- ownership -----------------------------------------------------------
  [[nodiscard]] DeviceOwner owner() const { return owner_; }
  /// Claims the device; throws std::logic_error if owned by the other side.
  /// Claims by the same side nest (e.g. the local SPDK driver and an
  /// NVMe-oF target both driving one device from user space); the device
  /// unbinds when the last claim is released.
  void claim(DeviceOwner who);
  void release(DeviceOwner who);

  // --- fault injection ------------------------------------------------------
  /// Makes roughly `rate` of subsequent commands complete with
  /// kMediaError (deterministic given `seed`). rate 0 disables. Transient
  /// faults: a retry of the same extent may succeed — which is what the
  /// DLFS engine's retry policy is tested against.
  void inject_faults(double rate, std::uint64_t seed = 1);
  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_injected_;
  }

  /// Fail-stop the device: subsequent submissions are rejected with
  /// kConnectionLost and every in-flight command completes immediately
  /// with kConnectionLost (the controller is gone, not slow). recover()
  /// restores service for new submissions; queue pairs survive.
  void crash();
  void recover();
  [[nodiscard]] bool crashed() const { return crashed_; }
  /// Scheduled variants, e.g. "crash at t=2s" for mid-epoch fault tests.
  void crash_at(SimTime when);
  void recover_at(SimTime when);

  // --- statistics ----------------------------------------------------------
  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t commands_completed() const { return commands_; }
  /// Fraction of time the data pipe was busy since the last reset.
  [[nodiscard]] double pipe_utilization() const;
  void reset_stats();

 private:
  friend class NvmeQueuePair;

  /// Computes the completion time for a command submitted now and advances
  /// the pipe. Returns the completion timestamp.
  SimTime schedule_command(IoOp op, std::uint64_t bytes);

  dlsim::Simulator* sim_;
  std::string name_;
  std::unique_ptr<BackingStore> store_;
  NvmeParams params_;
  DeviceOwner owner_ = DeviceOwner::kUnbound;
  std::uint32_t owner_claims_ = 0;

  double fault_rate_ = 0.0;
  std::uint64_t fault_state_ = 0;  // splitmix64 walker; 0 = disabled
  std::uint64_t faults_injected_ = 0;
  bool crashed_ = false;

  SimTime pipe_free_at_ = 0;
  // For utilization accounting:
  SimTime stats_since_ = 0;
  SimDuration pipe_busy_ns_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t commands_ = 0;
};

}  // namespace dlfs::hw

#pragma once

// Backing stores for the simulated NVMe device: where the bytes actually
// live. Two flavours:
//
//  * RamBackingStore   — sparse page-granular RAM store; every byte written
//                        is stored and read back exactly. Used by tests and
//                        small experiments where end-to-end data integrity
//                        is asserted.
//  * SyntheticBackingStore — deterministic content computed from (seed,
//                        offset); writes are checked for shape but the
//                        payload is discarded. Used by the large-scale
//                        throughput benches (16 nodes × GBs of dataset
//                        would not fit in host RAM), mirroring the paper's
//                        own use of a "dummy dataset with random values".
//                        Reads are still fully verifiable: any reader can
//                        recompute the expected bytes for an offset.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"

namespace dlfs::hw {

class BackingStore {
 public:
  virtual ~BackingStore() = default;

  /// Fills `out` with the device contents at [offset, offset + out.size()).
  virtual void read(std::uint64_t offset, std::span<std::byte> out) const = 0;

  /// Writes `in` at `offset`.
  virtual void write(std::uint64_t offset, std::span<const std::byte> in) = 0;

  /// Device capacity in bytes.
  [[nodiscard]] virtual std::uint64_t capacity() const = 0;
};

/// Sparse RAM store: pages materialize on first write; unwritten reads as 0.
class RamBackingStore final : public BackingStore {
 public:
  explicit RamBackingStore(std::uint64_t capacity,
                           std::size_t page_size = 64 * 1024);

  void read(std::uint64_t offset, std::span<std::byte> out) const override;
  void write(std::uint64_t offset, std::span<const std::byte> in) override;
  [[nodiscard]] std::uint64_t capacity() const override { return capacity_; }

  [[nodiscard]] std::size_t resident_pages() const { return pages_.size(); }
  [[nodiscard]] std::size_t page_size() const { return page_size_; }

 private:
  std::uint64_t capacity_;
  std::size_t page_size_;
  // page index -> page bytes
  std::unordered_map<std::uint64_t, std::unique_ptr<std::byte[]>> pages_;
};

/// Deterministic synthetic content: byte at `offset` is a pure function of
/// (seed, offset). expected_byte() lets any test recompute what a read
/// must return.
class SyntheticBackingStore final : public BackingStore {
 public:
  SyntheticBackingStore(std::uint64_t capacity, std::uint64_t seed);

  void read(std::uint64_t offset, std::span<std::byte> out) const override;
  void write(std::uint64_t offset, std::span<const std::byte> in) override;
  [[nodiscard]] std::uint64_t capacity() const override { return capacity_; }

  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

  [[nodiscard]] std::byte expected_byte(std::uint64_t offset) const {
    return word_byte(seed_, offset);
  }

  /// Fills a span with the content function — shared with read().
  static void fill(std::uint64_t seed, std::uint64_t offset,
                   std::span<std::byte> out);

 private:
  static std::byte word_byte(std::uint64_t seed, std::uint64_t offset) {
    const std::uint64_t w = dlfs::mix64(seed ^ (offset >> 3));
    return static_cast<std::byte>((w >> (8 * (offset & 7))) & 0xff);
  }

  std::uint64_t capacity_;
  std::uint64_t seed_;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace dlfs::hw

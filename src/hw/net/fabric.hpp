#pragma once

// Fabric: the FDR-InfiniBand-class network connecting nodes.
//
// Topology model: every node has one NIC (full duplex, one egress and one
// ingress pipe) attached to a single non-blocking switch with fixed
// cut-through latency. A transfer of b bytes from src to dst:
//
//   start  = max(now, egress_free[src], ingress_free[dst])
//   finish = start + latency + b / bandwidth
//   both pipes busy until start + b / bandwidth
//
// This captures the two network effects the paper's evaluation depends
// on: a single client's NIC caps its aggregate throughput once enough
// NVMe-oF targets are attached (Fig. 11's NVMe-1C ideal curve bends at
// two devices), and per-message latency penalizes per-sample RPCs
// (Octopus' metadata lookups, Fig. 10).
//
// Loopback (src == dst) bypasses the NIC: DMA within one node.

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/calibration.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dlfs::hw {

using NodeId = std::uint32_t;

/// Size we charge for a control message (NVMe-oF capsule, RPC header).
inline constexpr std::uint64_t kControlMessageBytes = 64;

class Fabric {
 public:
  Fabric(dlsim::Simulator& sim, std::uint32_t num_nodes,
         const NicParams& params = NicParams{});

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(egress_free_.size());
  }
  [[nodiscard]] const NicParams& params() const { return params_; }

  /// Moves `bytes` from src to dst; resumes when the last byte lands.
  /// If the src↔dst path is down the frames vanish in the switch: time
  /// still passes (the NIC pushed them out) but delivery silently fails.
  /// Fault-aware callers use send() to learn the delivery outcome.
  [[nodiscard]] dlsim::Task<void> transfer(NodeId src, NodeId dst,
                                           std::uint64_t bytes);

  /// Like transfer(), but reports whether the payload was delivered.
  /// The link state is sampled when the last byte would land, so a link
  /// failing mid-flight drops the message.
  [[nodiscard]] dlsim::Task<bool> send(NodeId src, NodeId dst,
                                       std::uint64_t bytes);

  /// A small control message (command capsule / RPC header).
  [[nodiscard]] dlsim::Task<void> send_control(NodeId src, NodeId dst) {
    return transfer(src, dst, kControlMessageBytes);
  }

  // --- fault injection -----------------------------------------------------
  /// Cuts the (undirected) path between two nodes: messages either way are
  /// dropped after consuming their wire time. Loopback cannot fail.
  void fail_link(NodeId a, NodeId b);
  void heal_link(NodeId a, NodeId b);
  /// Detaches a node's NIC from the switch entirely (every path to or from
  /// it drops) — models a machine falling off the network.
  void isolate_node(NodeId n);
  void rejoin_node(NodeId n);
  [[nodiscard]] bool link_up(NodeId src, NodeId dst) const;
  /// Scheduled variants for mid-run fault plans ("partition at t=2s").
  void fail_link_at(NodeId a, NodeId b, dlsim::SimTime when);
  void heal_link_at(NodeId a, NodeId b, dlsim::SimTime when);
  void isolate_node_at(NodeId n, dlsim::SimTime when);
  void rejoin_node_at(NodeId n, dlsim::SimTime when);

  // --- statistics ----------------------------------------------------------
  [[nodiscard]] std::uint64_t bytes_sent(NodeId node) const {
    check_node(node);
    return bytes_sent_[node];
  }
  [[nodiscard]] std::uint64_t bytes_received(NodeId node) const {
    check_node(node);
    return bytes_received_[node];
  }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }

 private:
  void check_node(NodeId n) const {
    if (n >= egress_free_.size()) {
      throw std::out_of_range("fabric: bad node id " + std::to_string(n));
    }
  }

  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  void schedule_fault(dlsim::SimTime when, void (Fabric::*fn)(NodeId, NodeId),
                      NodeId a, NodeId b, const char* name);

  dlsim::Simulator* sim_;
  NicParams params_;
  std::vector<dlsim::SimTime> egress_free_;
  std::vector<dlsim::SimTime> ingress_free_;
  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> bytes_received_;
  std::uint64_t messages_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::unordered_set<std::uint64_t> failed_links_;
  std::vector<std::uint8_t> isolated_;
};

}  // namespace dlfs::hw

#pragma once

// Fabric: the FDR-InfiniBand-class network connecting nodes.
//
// Topology model: every node has one NIC (full duplex, one egress and one
// ingress pipe) attached to a single non-blocking switch with fixed
// cut-through latency. A transfer of b bytes from src to dst:
//
//   start  = max(now, egress_free[src], ingress_free[dst])
//   finish = start + latency + b / bandwidth
//   both pipes busy until start + b / bandwidth
//
// This captures the two network effects the paper's evaluation depends
// on: a single client's NIC caps its aggregate throughput once enough
// NVMe-oF targets are attached (Fig. 11's NVMe-1C ideal curve bends at
// two devices), and per-message latency penalizes per-sample RPCs
// (Octopus' metadata lookups, Fig. 10).
//
// Loopback (src == dst) bypasses the NIC: DMA within one node.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/calibration.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dlfs::hw {

using NodeId = std::uint32_t;

/// Size we charge for a control message (NVMe-oF capsule, RPC header).
inline constexpr std::uint64_t kControlMessageBytes = 64;

class Fabric {
 public:
  Fabric(dlsim::Simulator& sim, std::uint32_t num_nodes,
         const NicParams& params = NicParams{});

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(egress_free_.size());
  }
  [[nodiscard]] const NicParams& params() const { return params_; }

  /// Moves `bytes` from src to dst; resumes when the last byte lands.
  [[nodiscard]] dlsim::Task<void> transfer(NodeId src, NodeId dst,
                                           std::uint64_t bytes);

  /// A small control message (command capsule / RPC header).
  [[nodiscard]] dlsim::Task<void> send_control(NodeId src, NodeId dst) {
    return transfer(src, dst, kControlMessageBytes);
  }

  // --- statistics ----------------------------------------------------------
  [[nodiscard]] std::uint64_t bytes_sent(NodeId node) const {
    check_node(node);
    return bytes_sent_[node];
  }
  [[nodiscard]] std::uint64_t bytes_received(NodeId node) const {
    check_node(node);
    return bytes_received_[node];
  }
  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  void check_node(NodeId n) const {
    if (n >= egress_free_.size()) {
      throw std::out_of_range("fabric: bad node id " + std::to_string(n));
    }
  }

  dlsim::Simulator* sim_;
  NicParams params_;
  std::vector<dlsim::SimTime> egress_free_;
  std::vector<dlsim::SimTime> ingress_free_;
  std::vector<std::uint64_t> bytes_sent_;
  std::vector<std::uint64_t> bytes_received_;
  std::uint64_t messages_ = 0;
};

}  // namespace dlfs::hw

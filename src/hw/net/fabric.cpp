#include "hw/net/fabric.hpp"

#include <algorithm>

namespace dlfs::hw {

Fabric::Fabric(dlsim::Simulator& sim, std::uint32_t num_nodes,
               const NicParams& params)
    : sim_(&sim),
      params_(params),
      egress_free_(num_nodes, 0),
      ingress_free_(num_nodes, 0),
      bytes_sent_(num_nodes, 0),
      bytes_received_(num_nodes, 0) {
  if (num_nodes == 0) throw std::invalid_argument("fabric needs >= 1 node");
}

dlsim::Task<void> Fabric::transfer(NodeId src, NodeId dst,
                                   std::uint64_t bytes) {
  check_node(src);
  check_node(dst);
  ++messages_;
  bytes_sent_[src] += bytes;
  bytes_received_[dst] += bytes;

  const dlsim::SimTime now = sim_->now();
  if (src == dst) {
    // Intra-node: no NIC involved; a DMA-engine-speed memory move.
    co_await sim_->delay(dlsim::transfer_time(bytes, 20e9) + 150);
    co_return;
  }
  const dlsim::SimDuration wire =
      dlsim::transfer_time(bytes, params_.bw_bytes_per_sec);
  // Store-and-forward pipe model: the sender books its egress slot as
  // soon as the NIC frees up; the switch buffers; the receiver books its
  // ingress slot independently. Decoupling the two reservations avoids
  // head-of-line bubbles that would otherwise collapse all-to-all
  // bandwidth (a real switched fabric overlaps these phases per flow).
  const dlsim::SimTime tx_start = std::max(now, egress_free_[src]);
  egress_free_[src] = tx_start + wire;
  const dlsim::SimTime rx_start =
      std::max(tx_start + params_.latency, ingress_free_[dst]);
  ingress_free_[dst] = rx_start + wire;
  const dlsim::SimTime finish = rx_start + wire;
  co_await sim_->delay(finish - now);
}

}  // namespace dlfs::hw

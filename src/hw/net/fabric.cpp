#include "hw/net/fabric.hpp"

#include <algorithm>

namespace dlfs::hw {

Fabric::Fabric(dlsim::Simulator& sim, std::uint32_t num_nodes,
               const NicParams& params)
    : sim_(&sim),
      params_(params),
      egress_free_(num_nodes, 0),
      ingress_free_(num_nodes, 0),
      bytes_sent_(num_nodes, 0),
      bytes_received_(num_nodes, 0),
      isolated_(num_nodes, 0) {
  if (num_nodes == 0) throw std::invalid_argument("fabric needs >= 1 node");
}

dlsim::Task<void> Fabric::transfer(NodeId src, NodeId dst,
                                   std::uint64_t bytes) {
  (void)co_await send(src, dst, bytes);
}

dlsim::Task<bool> Fabric::send(NodeId src, NodeId dst, std::uint64_t bytes) {
  check_node(src);
  check_node(dst);
  ++messages_;
  bytes_sent_[src] += bytes;

  const dlsim::SimTime now = sim_->now();
  if (src == dst) {
    // Intra-node: no NIC involved; a DMA-engine-speed memory move.
    bytes_received_[dst] += bytes;
    co_await sim_->delay(dlsim::transfer_time(bytes, 20e9) + 150);
    co_return true;
  }
  const dlsim::SimDuration wire =
      dlsim::transfer_time(bytes, params_.bw_bytes_per_sec);
  // Store-and-forward pipe model: the sender books its egress slot as
  // soon as the NIC frees up; the switch buffers; the receiver books its
  // ingress slot independently. Decoupling the two reservations avoids
  // head-of-line bubbles that would otherwise collapse all-to-all
  // bandwidth (a real switched fabric overlaps these phases per flow).
  const dlsim::SimTime tx_start = std::max(now, egress_free_[src]);
  egress_free_[src] = tx_start + wire;
  const dlsim::SimTime rx_start =
      std::max(tx_start + params_.latency, ingress_free_[dst]);
  ingress_free_[dst] = rx_start + wire;
  const dlsim::SimTime finish = rx_start + wire;
  co_await sim_->delay(finish - now);
  // Delivery is decided when the last byte would land, so a partition
  // that opens mid-flight eats the message too.
  if (!link_up(src, dst)) {
    ++messages_dropped_;
    co_return false;
  }
  bytes_received_[dst] += bytes;
  co_return true;
}

bool Fabric::link_up(NodeId src, NodeId dst) const {
  if (src == dst) return true;  // loopback never touches the switch
  if (isolated_[src] || isolated_[dst]) return false;
  return !failed_links_.contains(link_key(src, dst));
}

void Fabric::fail_link(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  if (a != b) failed_links_.insert(link_key(a, b));
}

void Fabric::heal_link(NodeId a, NodeId b) {
  check_node(a);
  check_node(b);
  failed_links_.erase(link_key(a, b));
}

void Fabric::isolate_node(NodeId n) {
  check_node(n);
  isolated_[n] = 1;
}

void Fabric::rejoin_node(NodeId n) {
  check_node(n);
  isolated_[n] = 0;
}

void Fabric::schedule_fault(dlsim::SimTime when,
                            void (Fabric::*fn)(NodeId, NodeId), NodeId a,
                            NodeId b, const char* name) {
  sim_->spawn_daemon(
      [](Fabric* f, dlsim::SimTime at, void (Fabric::*op)(NodeId, NodeId),
         NodeId x, NodeId y) -> dlsim::Task<void> {
        const dlsim::SimTime now = f->sim_->now();
        if (at > now) co_await f->sim_->delay(at - now);
        (f->*op)(x, y);
      }(this, when, fn, a, b),
      name);
}

void Fabric::fail_link_at(NodeId a, NodeId b, dlsim::SimTime when) {
  schedule_fault(when, &Fabric::fail_link, a, b, "fabric-fail-link");
}

void Fabric::heal_link_at(NodeId a, NodeId b, dlsim::SimTime when) {
  schedule_fault(when, &Fabric::heal_link, a, b, "fabric-heal-link");
}

void Fabric::isolate_node_at(NodeId n, dlsim::SimTime when) {
  sim_->spawn_daemon(
      [](Fabric* f, dlsim::SimTime at, NodeId x) -> dlsim::Task<void> {
        const dlsim::SimTime now = f->sim_->now();
        if (at > now) co_await f->sim_->delay(at - now);
        f->isolate_node(x);
      }(this, when, n),
      "fabric-isolate-node");
}

void Fabric::rejoin_node_at(NodeId n, dlsim::SimTime when) {
  sim_->spawn_daemon(
      [](Fabric* f, dlsim::SimTime at, NodeId x) -> dlsim::Task<void> {
        const dlsim::SimTime now = f->sim_->now();
        if (at > now) co_await f->sim_->delay(at - now);
        f->rejoin_node(x);
      }(this, when, n),
      "fabric-rejoin-node");
}

}  // namespace dlfs::hw

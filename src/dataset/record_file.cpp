#include "dataset/record_file.hpp"

#include <array>
#include <cstring>

namespace dlfs::dataset {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  std::byte b[4];
  std::memcpy(b, &v, 4);
  out.insert(out.end(), b, b + 4);
}

std::uint32_t get_u32(std::span<const std::byte> in, std::uint64_t off) {
  std::uint32_t v;
  std::memcpy(&v, in.data() + off, 4);
  return v;
}

}  // namespace

std::uint32_t crc32_init() { return 0xffffffffu; }

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::byte> data) {
  static const auto table = make_crc_table();
  for (std::byte b : data) {
    state = table[(state ^ static_cast<std::uint8_t>(b)) & 0xff] ^
            (state >> 8);
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xffffffffu; }

std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

void write_record_header(std::span<std::byte, 8> out, std::uint32_t length,
                         std::uint32_t crc) {
  std::memcpy(out.data(), &length, 4);
  std::memcpy(out.data() + 4, &crc, 4);
}

RecordRef RecordFileWriter::append(std::span<const std::byte> payload) {
  RecordRef ref;
  ref.offset = bytes_.size();
  ref.length = static_cast<std::uint32_t>(payload.size());
  put_u32(bytes_, ref.length);
  put_u32(bytes_, crc32(payload));
  bytes_.insert(bytes_.end(), payload.begin(), payload.end());
  index_.push_back(ref);
  return ref;
}

std::optional<std::vector<RecordRef>> RecordFileReader::scan() const {
  std::vector<RecordRef> out;
  std::uint64_t pos = 0;
  while (pos < file_.size()) {
    if (pos + 8 > file_.size()) return std::nullopt;
    RecordRef ref;
    ref.offset = pos;
    ref.length = get_u32(file_, pos);
    if (pos + 8 + ref.length > file_.size()) return std::nullopt;
    if (!read(ref)) return std::nullopt;  // checksum
    out.push_back(ref);
    pos += 8 + ref.length;
  }
  return out;
}

std::optional<std::span<const std::byte>> RecordFileReader::read(
    const RecordRef& ref) const {
  if (ref.offset + 8 + ref.length > file_.size()) return std::nullopt;
  const std::uint32_t want = get_u32(file_, ref.offset + 4);
  auto payload = file_.subspan(ref.payload_offset(), ref.length);
  if (crc32(payload) != want) return std::nullopt;
  return payload;
}

}  // namespace dlfs::dataset

#pragma once

// TFRecord-like batched sample format.
//
// The paper (§II-B) discusses preprocessing small samples into large
// batched files (TFRecord / CIFAR10 format) to avoid small random I/O —
// at the cost of shuffle quality, because frameworks then shuffle within
// a bounded buffer. This module implements such a format:
//
//   record  := u32 length | u32 crc32(payload) | payload
//   file    := record*
//
// plus a per-record offset index, which is what lets DLFS "have direct
// access to any samples in a TFRecord file" (§III-B.1): its sample
// directory can point at (record offset + header) inside a batched file
// rather than at whole files only.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dlfs::dataset {

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data);

/// Incremental CRC-32 for streamed payloads.
[[nodiscard]] std::uint32_t crc32_init();
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::byte> data);
[[nodiscard]] std::uint32_t crc32_final(std::uint32_t state);

/// Serializes the 8-byte record header (u32 length | u32 crc).
void write_record_header(std::span<std::byte, 8> out, std::uint32_t length,
                         std::uint32_t crc);

struct RecordRef {
  std::uint64_t offset = 0;   // file offset of the record header
  std::uint32_t length = 0;   // payload length
  [[nodiscard]] std::uint64_t payload_offset() const { return offset + 8; }
};

class RecordFileWriter {
 public:
  /// Appends one record; returns its reference.
  RecordRef append(std::span<const std::byte> payload);

  [[nodiscard]] const std::vector<std::byte>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(bytes_); }
  [[nodiscard]] const std::vector<RecordRef>& index() const { return index_; }

 private:
  std::vector<std::byte> bytes_;
  std::vector<RecordRef> index_;
};

class RecordFileReader {
 public:
  explicit RecordFileReader(std::span<const std::byte> file) : file_(file) {}

  /// Scans the whole file, validating structure and checksums.
  /// Returns the record index, or nullopt if the file is corrupt.
  [[nodiscard]] std::optional<std::vector<RecordRef>> scan() const;

  /// Reads one record's payload by reference (validates the checksum).
  /// Returns nullopt on corruption.
  [[nodiscard]] std::optional<std::span<const std::byte>> read(
      const RecordRef& ref) const;

 private:
  std::span<const std::byte> file_;
};

}  // namespace dlfs::dataset

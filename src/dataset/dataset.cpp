#include "dataset/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "hw/nvme/backing_store.hpp"

namespace dlfs::dataset {

Dataset::Dataset(std::string name, std::uint64_t content_seed,
                 std::vector<SampleSpec> samples)
    : name_(std::move(name)),
      content_seed_(content_seed),
      samples_(std::move(samples)) {
  for (const auto& s : samples_) {
    if (s.size == 0) throw std::invalid_argument("zero-size sample");
    total_bytes_ += s.size;
    max_bytes_ = std::max(max_bytes_, s.size);
  }
}

void Dataset::fill_content(std::size_t id, std::uint64_t offset,
                           std::span<std::byte> out) const {
  const auto& s = samples_.at(id);
  if (offset + out.size() > s.size) {
    throw std::out_of_range("content request beyond sample size");
  }
  // Derive a per-sample seed; reuse the synthetic-store generator so the
  // content function is identical everywhere.
  const std::uint64_t sample_seed =
      hash_combine(content_seed_, mix64(static_cast<std::uint64_t>(id)));
  hw::SyntheticBackingStore::fill(sample_seed, offset, out);
}

std::byte Dataset::content_byte(std::size_t id, std::uint64_t offset) const {
  std::byte b;
  fill_content(id, offset, std::span<std::byte>(&b, 1));
  return b;
}

namespace {

std::vector<SampleSpec> make_specs(std::size_t n, std::uint32_t num_classes,
                                   Rng& rng,
                                   const std::function<std::uint32_t()>& size_fn,
                                   const std::string& prefix) {
  std::vector<SampleSpec> specs;
  specs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SampleSpec s;
    s.name = prefix + "_" + std::to_string(i);
    s.class_id = static_cast<std::uint32_t>(rng.next_below(num_classes));
    s.size = size_fn();
    specs.push_back(std::move(s));
  }
  return specs;
}

std::uint32_t clamp_u32(double v, double lo, double hi) {
  return static_cast<std::uint32_t>(std::clamp(v, lo, hi));
}

}  // namespace

Dataset make_fixed_size_dataset(std::size_t n, std::uint32_t size,
                                std::uint64_t seed,
                                std::uint32_t num_classes) {
  Rng rng(seed);
  auto specs = make_specs(
      n, num_classes, rng, [size]() { return size; },
      "fixed" + std::to_string(size));
  return Dataset("fixed-" + std::to_string(size), seed, std::move(specs));
}

Dataset make_imagenet_like_dataset(std::size_t n, std::uint64_t seed,
                                   std::uint32_t num_classes) {
  Rng rng(seed);
  // ln(median) = ln(90 KB); P75 = exp(mu + 0.6745 sigma) = 147 KB
  //   => sigma = ln(147/90) / 0.6745 ~= 0.727
  const double mu = std::log(90.0e3);
  const double sigma = 0.727;
  auto specs = make_specs(
      n, num_classes, rng,
      [&rng, mu, sigma]() {
        return clamp_u32(rng.next_lognormal(mu, sigma), 2048.0, 4.0 * 1024 * 1024);
      },
      "imagenet");
  return Dataset("imagenet-like", seed, std::move(specs));
}

Dataset make_imdb_like_dataset(std::size_t n, std::uint64_t seed,
                               std::uint32_t num_classes) {
  Rng rng(seed);
  // ln(median) = ln(900 B); P75 = 1.6 KB => sigma = ln(1600/900)/0.6745
  const double mu = std::log(900.0);
  const double sigma = std::log(1600.0 / 900.0) / 0.6745;
  auto specs = make_specs(
      n, num_classes, rng,
      [&rng, mu, sigma]() {
        return clamp_u32(rng.next_lognormal(mu, sigma), 64.0, 64.0 * 1024);
      },
      "imdb");
  return Dataset("imdb-like", seed, std::move(specs));
}

}  // namespace dlfs::dataset

#pragma once

// Dataset model: what a DL training set looks like to the storage stack.
//
// A dataset is an ordered list of samples, each with a name, a class
// label and a size. Content is a pure function of (dataset seed, sample
// id, offset) so that any layer — the PFS stub, a file system, a test —
// can generate or verify a sample's bytes without shipping gigabytes
// around (the paper's evaluation likewise uses "a dummy dataset with
// random values as the sample content").
//
// Size distributions are fitted to the paper's Fig. 1:
//   ImageNet-like: log-normal, 75% of samples below 147 KB
//   IMDB-like:     log-normal, 75% of samples below 1.6 KB

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace dlfs::dataset {

struct SampleSpec {
  std::string name;
  std::uint32_t class_id = 0;
  std::uint32_t size = 0;
};

class Dataset {
 public:
  Dataset(std::string name, std::uint64_t content_seed,
          std::vector<SampleSpec> samples);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t content_seed() const { return content_seed_; }
  [[nodiscard]] std::size_t num_samples() const { return samples_.size(); }
  [[nodiscard]] const SampleSpec& sample(std::size_t i) const {
    return samples_.at(i);
  }
  [[nodiscard]] const std::vector<SampleSpec>& samples() const {
    return samples_;
  }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint32_t max_sample_bytes() const { return max_bytes_; }

  /// Fills `out` with sample `id`'s content starting at `offset` within
  /// the sample. Deterministic; any layer can verify reads against this.
  void fill_content(std::size_t id, std::uint64_t offset,
                    std::span<std::byte> out) const;

  /// One content byte (for spot checks).
  [[nodiscard]] std::byte content_byte(std::size_t id,
                                       std::uint64_t offset) const;

 private:
  std::string name_;
  std::uint64_t content_seed_;
  std::vector<SampleSpec> samples_;
  std::uint64_t total_bytes_ = 0;
  std::uint32_t max_bytes_ = 0;
};

// --- generators -------------------------------------------------------------

/// n samples of exactly `size` bytes — the micro-benchmark datasets used
/// for every throughput figure (the paper sweeps 512 B ... 1 MB).
Dataset make_fixed_size_dataset(std::size_t n, std::uint32_t size,
                                std::uint64_t seed = 1,
                                std::uint32_t num_classes = 10);

/// ImageNet-like log-normal sizes (75% < 147 KB, clamped to [2 KiB, 4 MiB]).
Dataset make_imagenet_like_dataset(std::size_t n, std::uint64_t seed = 1,
                                   std::uint32_t num_classes = 1000);

/// IMDB-like log-normal sizes (75% < 1.6 KB, clamped to [64 B, 64 KiB]).
Dataset make_imdb_like_dataset(std::size_t n, std::uint64_t seed = 1,
                               std::uint32_t num_classes = 2);

}  // namespace dlfs::dataset

# Empty dependencies file for fig07_cpu_utilization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig07_cpu_utilization"
  "../bench/fig07_cpu_utilization.pdb"
  "CMakeFiles/fig07_cpu_utilization.dir/fig07_cpu_utilization.cpp.o"
  "CMakeFiles/fig07_cpu_utilization.dir/fig07_cpu_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

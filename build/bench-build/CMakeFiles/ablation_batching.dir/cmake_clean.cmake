file(REMOVE_RECURSE
  "../bench/ablation_batching"
  "../bench/ablation_batching.pdb"
  "CMakeFiles/ablation_batching.dir/ablation_batching.cpp.o"
  "CMakeFiles/ablation_batching.dir/ablation_batching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

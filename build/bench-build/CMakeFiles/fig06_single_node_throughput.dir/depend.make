# Empty dependencies file for fig06_single_node_throughput.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig06_single_node_throughput"
  "../bench/fig06_single_node_throughput.pdb"
  "CMakeFiles/fig06_single_node_throughput.dir/fig06_single_node_throughput.cpp.o"
  "CMakeFiles/fig06_single_node_throughput.dir/fig06_single_node_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_single_node_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

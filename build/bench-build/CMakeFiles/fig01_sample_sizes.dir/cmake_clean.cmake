file(REMOVE_RECURSE
  "../bench/fig01_sample_sizes"
  "../bench/fig01_sample_sizes.pdb"
  "CMakeFiles/fig01_sample_sizes.dir/fig01_sample_sizes.cpp.o"
  "CMakeFiles/fig01_sample_sizes.dir/fig01_sample_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sample_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig01_sample_sizes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dlfs_bench_common.
# This may be replaced when dependencies are built.

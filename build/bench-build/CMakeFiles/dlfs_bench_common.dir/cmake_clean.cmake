file(REMOVE_RECURSE
  "CMakeFiles/dlfs_bench_common.dir/harness.cpp.o"
  "CMakeFiles/dlfs_bench_common.dir/harness.cpp.o.d"
  "libdlfs_bench_common.a"
  "libdlfs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

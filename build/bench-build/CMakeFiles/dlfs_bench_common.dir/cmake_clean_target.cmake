file(REMOVE_RECURSE
  "libdlfs_bench_common.a"
)

file(REMOVE_RECURSE
  "../bench/fig12_tensorflow_pipeline"
  "../bench/fig12_tensorflow_pipeline.pdb"
  "CMakeFiles/fig12_tensorflow_pipeline.dir/fig12_tensorflow_pipeline.cpp.o"
  "CMakeFiles/fig12_tensorflow_pipeline.dir/fig12_tensorflow_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tensorflow_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig12_tensorflow_pipeline.
# This may be replaced when dependencies are built.

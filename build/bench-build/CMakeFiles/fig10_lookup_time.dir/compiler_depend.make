# Empty compiler generated dependencies file for fig10_lookup_time.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig10_lookup_time"
  "../bench/fig10_lookup_time.pdb"
  "CMakeFiles/fig10_lookup_time.dir/fig10_lookup_time.cpp.o"
  "CMakeFiles/fig10_lookup_time.dir/fig10_lookup_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lookup_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig09_scalability"
  "../bench/fig09_scalability.pdb"
  "CMakeFiles/fig09_scalability.dir/fig09_scalability.cpp.o"
  "CMakeFiles/fig09_scalability.dir/fig09_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig13_training_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig11_disaggregation_efficiency"
  "../bench/fig11_disaggregation_efficiency.pdb"
  "CMakeFiles/fig11_disaggregation_efficiency.dir/fig11_disaggregation_efficiency.cpp.o"
  "CMakeFiles/fig11_disaggregation_efficiency.dir/fig11_disaggregation_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_disaggregation_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

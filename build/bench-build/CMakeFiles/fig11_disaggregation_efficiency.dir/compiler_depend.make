# Empty compiler generated dependencies file for fig11_disaggregation_efficiency.
# This may be replaced when dependencies are built.

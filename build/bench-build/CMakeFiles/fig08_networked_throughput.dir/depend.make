# Empty dependencies file for fig08_networked_throughput.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/micro_simkernel"
  "../bench/micro_simkernel.pdb"
  "CMakeFiles/micro_simkernel.dir/micro_simkernel.cpp.o"
  "CMakeFiles/micro_simkernel.dir/micro_simkernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/micro_avl"
  "../bench/micro_avl.pdb"
  "CMakeFiles/micro_avl.dir/micro_avl.cpp.o"
  "CMakeFiles/micro_avl.dir/micro_avl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_avl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

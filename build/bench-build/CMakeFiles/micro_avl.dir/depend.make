# Empty dependencies file for micro_avl.
# This may be replaced when dependencies are built.

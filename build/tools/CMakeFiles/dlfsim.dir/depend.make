# Empty dependencies file for dlfsim.
# This may be replaced when dependencies are built.

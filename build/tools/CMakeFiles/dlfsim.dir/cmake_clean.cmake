file(REMOVE_RECURSE
  "CMakeFiles/dlfsim.dir/dlfsim.cpp.o"
  "CMakeFiles/dlfsim.dir/dlfsim.cpp.o.d"
  "dlfsim"
  "dlfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

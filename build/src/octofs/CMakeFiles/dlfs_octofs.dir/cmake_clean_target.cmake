file(REMOVE_RECURSE
  "libdlfs_octofs.a"
)

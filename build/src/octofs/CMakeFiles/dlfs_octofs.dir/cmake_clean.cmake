file(REMOVE_RECURSE
  "CMakeFiles/dlfs_octofs.dir/octofs.cpp.o"
  "CMakeFiles/dlfs_octofs.dir/octofs.cpp.o.d"
  "libdlfs_octofs.a"
  "libdlfs_octofs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_octofs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

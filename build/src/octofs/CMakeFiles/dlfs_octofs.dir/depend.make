# Empty dependencies file for dlfs_octofs.
# This may be replaced when dependencies are built.

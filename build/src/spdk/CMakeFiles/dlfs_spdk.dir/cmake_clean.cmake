file(REMOVE_RECURSE
  "CMakeFiles/dlfs_spdk.dir/nvme_driver.cpp.o"
  "CMakeFiles/dlfs_spdk.dir/nvme_driver.cpp.o.d"
  "CMakeFiles/dlfs_spdk.dir/nvmf.cpp.o"
  "CMakeFiles/dlfs_spdk.dir/nvmf.cpp.o.d"
  "libdlfs_spdk.a"
  "libdlfs_spdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_spdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdlfs_spdk.a"
)

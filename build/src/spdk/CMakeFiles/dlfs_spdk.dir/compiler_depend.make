# Empty compiler generated dependencies file for dlfs_spdk.
# This may be replaced when dependencies are built.

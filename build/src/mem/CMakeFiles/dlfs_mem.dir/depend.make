# Empty dependencies file for dlfs_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dlfs_mem.dir/hugepage_pool.cpp.o"
  "CMakeFiles/dlfs_mem.dir/hugepage_pool.cpp.o.d"
  "libdlfs_mem.a"
  "libdlfs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdlfs_mem.a"
)

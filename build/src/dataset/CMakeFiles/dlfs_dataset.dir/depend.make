# Empty dependencies file for dlfs_dataset.
# This may be replaced when dependencies are built.

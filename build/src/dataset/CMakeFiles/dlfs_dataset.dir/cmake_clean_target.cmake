file(REMOVE_RECURSE
  "libdlfs_dataset.a"
)

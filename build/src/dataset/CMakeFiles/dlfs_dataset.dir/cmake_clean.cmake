file(REMOVE_RECURSE
  "CMakeFiles/dlfs_dataset.dir/dataset.cpp.o"
  "CMakeFiles/dlfs_dataset.dir/dataset.cpp.o.d"
  "CMakeFiles/dlfs_dataset.dir/record_file.cpp.o"
  "CMakeFiles/dlfs_dataset.dir/record_file.cpp.o.d"
  "libdlfs_dataset.a"
  "libdlfs_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

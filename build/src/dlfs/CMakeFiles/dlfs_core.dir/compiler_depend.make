# Empty compiler generated dependencies file for dlfs_core.
# This may be replaced when dependencies are built.

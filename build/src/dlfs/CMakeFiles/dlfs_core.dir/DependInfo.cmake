
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlfs/batching.cpp" "src/dlfs/CMakeFiles/dlfs_core.dir/batching.cpp.o" "gcc" "src/dlfs/CMakeFiles/dlfs_core.dir/batching.cpp.o.d"
  "/root/repo/src/dlfs/dlfs.cpp" "src/dlfs/CMakeFiles/dlfs_core.dir/dlfs.cpp.o" "gcc" "src/dlfs/CMakeFiles/dlfs_core.dir/dlfs.cpp.o.d"
  "/root/repo/src/dlfs/io_engine.cpp" "src/dlfs/CMakeFiles/dlfs_core.dir/io_engine.cpp.o" "gcc" "src/dlfs/CMakeFiles/dlfs_core.dir/io_engine.cpp.o.d"
  "/root/repo/src/dlfs/sample_cache.cpp" "src/dlfs/CMakeFiles/dlfs_core.dir/sample_cache.cpp.o" "gcc" "src/dlfs/CMakeFiles/dlfs_core.dir/sample_cache.cpp.o.d"
  "/root/repo/src/dlfs/sample_directory.cpp" "src/dlfs/CMakeFiles/dlfs_core.dir/sample_directory.cpp.o" "gcc" "src/dlfs/CMakeFiles/dlfs_core.dir/sample_directory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spdk/CMakeFiles/dlfs_spdk.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dlfs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/dlfs_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dlfs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dlfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libdlfs_core.a"
)

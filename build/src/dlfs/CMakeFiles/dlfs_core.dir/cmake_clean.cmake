file(REMOVE_RECURSE
  "CMakeFiles/dlfs_core.dir/batching.cpp.o"
  "CMakeFiles/dlfs_core.dir/batching.cpp.o.d"
  "CMakeFiles/dlfs_core.dir/dlfs.cpp.o"
  "CMakeFiles/dlfs_core.dir/dlfs.cpp.o.d"
  "CMakeFiles/dlfs_core.dir/io_engine.cpp.o"
  "CMakeFiles/dlfs_core.dir/io_engine.cpp.o.d"
  "CMakeFiles/dlfs_core.dir/sample_cache.cpp.o"
  "CMakeFiles/dlfs_core.dir/sample_cache.cpp.o.d"
  "CMakeFiles/dlfs_core.dir/sample_directory.cpp.o"
  "CMakeFiles/dlfs_core.dir/sample_directory.cpp.o.d"
  "libdlfs_core.a"
  "libdlfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src/dlfs
# Build directory: /root/repo/build/src/dlfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

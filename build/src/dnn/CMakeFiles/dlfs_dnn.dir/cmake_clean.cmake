file(REMOVE_RECURSE
  "CMakeFiles/dlfs_dnn.dir/experiment.cpp.o"
  "CMakeFiles/dlfs_dnn.dir/experiment.cpp.o.d"
  "CMakeFiles/dlfs_dnn.dir/mlp.cpp.o"
  "CMakeFiles/dlfs_dnn.dir/mlp.cpp.o.d"
  "CMakeFiles/dlfs_dnn.dir/tensor.cpp.o"
  "CMakeFiles/dlfs_dnn.dir/tensor.cpp.o.d"
  "libdlfs_dnn.a"
  "libdlfs_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdlfs_dnn.a"
)

# Empty dependencies file for dlfs_dnn.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("common")
subdirs("mem")
subdirs("hw")
subdirs("spdk")
subdirs("osfs")
subdirs("octofs")
subdirs("cluster")
subdirs("dlfs")
subdirs("dataset")
subdirs("tfio")
subdirs("dnn")

file(REMOVE_RECURSE
  "libdlfs_osfs.a"
)

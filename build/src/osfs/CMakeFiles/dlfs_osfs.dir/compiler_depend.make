# Empty compiler generated dependencies file for dlfs_osfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dlfs_osfs.dir/ext4.cpp.o"
  "CMakeFiles/dlfs_osfs.dir/ext4.cpp.o.d"
  "CMakeFiles/dlfs_osfs.dir/page_cache.cpp.o"
  "CMakeFiles/dlfs_osfs.dir/page_cache.cpp.o.d"
  "libdlfs_osfs.a"
  "libdlfs_osfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_osfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdlfs_sim.a"
)

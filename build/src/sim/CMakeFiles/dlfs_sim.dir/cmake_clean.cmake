file(REMOVE_RECURSE
  "CMakeFiles/dlfs_sim.dir/simulator.cpp.o"
  "CMakeFiles/dlfs_sim.dir/simulator.cpp.o.d"
  "libdlfs_sim.a"
  "libdlfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

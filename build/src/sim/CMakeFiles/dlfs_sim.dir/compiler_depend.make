# Empty compiler generated dependencies file for dlfs_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdlfs_cluster.a"
)

# Empty dependencies file for dlfs_cluster.
# This may be replaced when dependencies are built.

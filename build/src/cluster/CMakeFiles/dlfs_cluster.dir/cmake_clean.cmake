file(REMOVE_RECURSE
  "CMakeFiles/dlfs_cluster.dir/cluster.cpp.o"
  "CMakeFiles/dlfs_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/dlfs_cluster.dir/collective.cpp.o"
  "CMakeFiles/dlfs_cluster.dir/collective.cpp.o.d"
  "CMakeFiles/dlfs_cluster.dir/node.cpp.o"
  "CMakeFiles/dlfs_cluster.dir/node.cpp.o.d"
  "libdlfs_cluster.a"
  "libdlfs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

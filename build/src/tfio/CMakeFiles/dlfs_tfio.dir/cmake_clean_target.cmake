file(REMOVE_RECURSE
  "libdlfs_tfio.a"
)

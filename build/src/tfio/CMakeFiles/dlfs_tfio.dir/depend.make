# Empty dependencies file for dlfs_tfio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dlfs_tfio.dir/pipeline.cpp.o"
  "CMakeFiles/dlfs_tfio.dir/pipeline.cpp.o.d"
  "CMakeFiles/dlfs_tfio.dir/sources.cpp.o"
  "CMakeFiles/dlfs_tfio.dir/sources.cpp.o.d"
  "libdlfs_tfio.a"
  "libdlfs_tfio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_tfio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

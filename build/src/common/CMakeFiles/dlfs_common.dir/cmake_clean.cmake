file(REMOVE_RECURSE
  "CMakeFiles/dlfs_common.dir/log.cpp.o"
  "CMakeFiles/dlfs_common.dir/log.cpp.o.d"
  "CMakeFiles/dlfs_common.dir/rng.cpp.o"
  "CMakeFiles/dlfs_common.dir/rng.cpp.o.d"
  "CMakeFiles/dlfs_common.dir/stats.cpp.o"
  "CMakeFiles/dlfs_common.dir/stats.cpp.o.d"
  "CMakeFiles/dlfs_common.dir/table.cpp.o"
  "CMakeFiles/dlfs_common.dir/table.cpp.o.d"
  "CMakeFiles/dlfs_common.dir/units.cpp.o"
  "CMakeFiles/dlfs_common.dir/units.cpp.o.d"
  "libdlfs_common.a"
  "libdlfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdlfs_common.a"
)

# Empty compiler generated dependencies file for dlfs_hw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dlfs_hw.dir/net/fabric.cpp.o"
  "CMakeFiles/dlfs_hw.dir/net/fabric.cpp.o.d"
  "CMakeFiles/dlfs_hw.dir/nvme/backing_store.cpp.o"
  "CMakeFiles/dlfs_hw.dir/nvme/backing_store.cpp.o.d"
  "CMakeFiles/dlfs_hw.dir/nvme/nvme_device.cpp.o"
  "CMakeFiles/dlfs_hw.dir/nvme/nvme_device.cpp.o.d"
  "libdlfs_hw.a"
  "libdlfs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

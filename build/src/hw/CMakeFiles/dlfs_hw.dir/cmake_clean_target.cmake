file(REMOVE_RECURSE
  "libdlfs_hw.a"
)

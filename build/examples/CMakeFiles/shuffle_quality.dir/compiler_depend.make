# Empty compiler generated dependencies file for shuffle_quality.
# This may be replaced when dependencies are built.

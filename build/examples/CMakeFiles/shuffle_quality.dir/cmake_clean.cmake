file(REMOVE_RECURSE
  "CMakeFiles/shuffle_quality.dir/shuffle_quality.cpp.o"
  "CMakeFiles/shuffle_quality.dir/shuffle_quality.cpp.o.d"
  "shuffle_quality"
  "shuffle_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

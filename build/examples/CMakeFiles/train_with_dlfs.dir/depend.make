# Empty dependencies file for train_with_dlfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/train_with_dlfs.dir/train_with_dlfs.cpp.o"
  "CMakeFiles/train_with_dlfs.dir/train_with_dlfs.cpp.o.d"
  "train_with_dlfs"
  "train_with_dlfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_with_dlfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

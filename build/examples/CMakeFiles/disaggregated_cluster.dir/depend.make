# Empty dependencies file for disaggregated_cluster.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/disaggregated_cluster.dir/disaggregated_cluster.cpp.o"
  "CMakeFiles/disaggregated_cluster.dir/disaggregated_cluster.cpp.o.d"
  "disaggregated_cluster"
  "disaggregated_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/io_engine_test.dir/io_engine_test.cpp.o"
  "CMakeFiles/io_engine_test.dir/io_engine_test.cpp.o.d"
  "io_engine_test"
  "io_engine_test.pdb"
  "io_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for io_engine_test.
# This may be replaced when dependencies are built.

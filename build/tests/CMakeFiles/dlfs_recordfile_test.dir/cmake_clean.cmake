file(REMOVE_RECURSE
  "CMakeFiles/dlfs_recordfile_test.dir/dlfs_recordfile_test.cpp.o"
  "CMakeFiles/dlfs_recordfile_test.dir/dlfs_recordfile_test.cpp.o.d"
  "dlfs_recordfile_test"
  "dlfs_recordfile_test.pdb"
  "dlfs_recordfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_recordfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

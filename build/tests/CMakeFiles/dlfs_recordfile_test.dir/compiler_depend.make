# Empty compiler generated dependencies file for dlfs_recordfile_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dlfs_core_test.dir/dlfs_core_test.cpp.o"
  "CMakeFiles/dlfs_core_test.dir/dlfs_core_test.cpp.o.d"
  "dlfs_core_test"
  "dlfs_core_test.pdb"
  "dlfs_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

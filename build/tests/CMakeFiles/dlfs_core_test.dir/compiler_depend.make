# Empty compiler generated dependencies file for dlfs_core_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/octofs_test.dir/octofs_test.cpp.o"
  "CMakeFiles/octofs_test.dir/octofs_test.cpp.o.d"
  "octofs_test"
  "octofs_test.pdb"
  "octofs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octofs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for octofs_test.
# This may be replaced when dependencies are built.

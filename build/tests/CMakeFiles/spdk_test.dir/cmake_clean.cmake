file(REMOVE_RECURSE
  "CMakeFiles/spdk_test.dir/spdk_test.cpp.o"
  "CMakeFiles/spdk_test.dir/spdk_test.cpp.o.d"
  "spdk_test"
  "spdk_test.pdb"
  "spdk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spdk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

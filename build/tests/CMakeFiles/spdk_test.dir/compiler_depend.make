# Empty compiler generated dependencies file for spdk_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spdk_test.cpp" "tests/CMakeFiles/spdk_test.dir/spdk_test.cpp.o" "gcc" "tests/CMakeFiles/spdk_test.dir/spdk_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spdk/CMakeFiles/dlfs_spdk.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dlfs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dlfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dlfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dlfs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

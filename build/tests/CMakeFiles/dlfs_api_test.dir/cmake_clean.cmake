file(REMOVE_RECURSE
  "CMakeFiles/dlfs_api_test.dir/dlfs_api_test.cpp.o"
  "CMakeFiles/dlfs_api_test.dir/dlfs_api_test.cpp.o.d"
  "dlfs_api_test"
  "dlfs_api_test.pdb"
  "dlfs_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

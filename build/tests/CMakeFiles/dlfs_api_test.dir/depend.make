# Empty dependencies file for dlfs_api_test.
# This may be replaced when dependencies are built.

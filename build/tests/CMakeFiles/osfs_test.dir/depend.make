# Empty dependencies file for osfs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/osfs_test.dir/osfs_test.cpp.o"
  "CMakeFiles/osfs_test.dir/osfs_test.cpp.o.d"
  "osfs_test"
  "osfs_test.pdb"
  "osfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tfio_test.dir/tfio_test.cpp.o"
  "CMakeFiles/tfio_test.dir/tfio_test.cpp.o.d"
  "tfio_test"
  "tfio_test.pdb"
  "tfio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

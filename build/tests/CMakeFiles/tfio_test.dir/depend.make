# Empty dependencies file for tfio_test.
# This may be replaced when dependencies are built.

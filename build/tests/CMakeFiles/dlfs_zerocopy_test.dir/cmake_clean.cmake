file(REMOVE_RECURSE
  "CMakeFiles/dlfs_zerocopy_test.dir/dlfs_zerocopy_test.cpp.o"
  "CMakeFiles/dlfs_zerocopy_test.dir/dlfs_zerocopy_test.cpp.o.d"
  "dlfs_zerocopy_test"
  "dlfs_zerocopy_test.pdb"
  "dlfs_zerocopy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlfs_zerocopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dlfs_zerocopy_test.
# This may be replaced when dependencies are built.

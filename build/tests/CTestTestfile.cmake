# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/spdk_test[1]_include.cmake")
include("/root/repo/build/tests/dlfs_core_test[1]_include.cmake")
include("/root/repo/build/tests/dlfs_api_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/osfs_test[1]_include.cmake")
include("/root/repo/build/tests/octofs_test[1]_include.cmake")
include("/root/repo/build/tests/tfio_test[1]_include.cmake")
include("/root/repo/build/tests/dnn_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/dlfs_recordfile_test[1]_include.cmake")
include("/root/repo/build/tests/io_engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_test[1]_include.cmake")
include("/root/repo/build/tests/dlfs_zerocopy_test[1]_include.cmake")

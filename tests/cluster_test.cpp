// Tests for the cluster layer: nodes, barrier, ring allgather, PFS stub.

#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster.hpp"
#include "cluster/collective.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::cluster::Barrier;
using dlfs::cluster::Cluster;
using dlfs::cluster::NodeConfig;
using dlfs::cluster::Pfs;
using dlsim::SimTime;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

TEST(ClusterNode, BuildsDevicesAndPools) {
  Simulator sim;
  NodeConfig nc;
  nc.device_capacity = 16_MiB;
  Cluster c(sim, 3, nc);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.node(0).device().capacity(), 16_MiB);
  EXPECT_EQ(c.fabric().num_nodes(), 3u);
  EXPECT_NE(&c.node(0).device(), &c.node(1).device());
}

TEST(ClusterNode, CoresCreatedLazily) {
  Simulator sim;
  Cluster c(sim, 1);
  EXPECT_EQ(c.node(0).num_cores(), 0u);
  auto& core2 = c.node(0).core(2);
  EXPECT_EQ(c.node(0).num_cores(), 3u);
  EXPECT_EQ(&c.node(0).core(2), &core2);
}

TEST(Barrier, AllArriveTogether) {
  Simulator sim;
  Barrier bar(sim, 3);
  std::vector<SimTime> released(3, 0);
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Simulator& s, Barrier& b, SimTime& out,
                 dlsim::SimDuration d) -> Task<void> {
      co_await s.delay(d);
      co_await b.arrive();
      out = s.now();
    }(sim, bar, released[i], static_cast<dlsim::SimDuration>(i * 10)));
  }
  sim.run();
  EXPECT_EQ(released[0], 20u);  // all release when the slowest arrives
  EXPECT_EQ(released[1], 20u);
  EXPECT_EQ(released[2], 20u);
}

TEST(Barrier, Reusable) {
  Simulator sim;
  Barrier bar(sim, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    sim.spawn([](Simulator& s, Barrier& b, int& done) -> Task<void> {
      for (int r = 0; r < 5; ++r) {
        co_await s.delay(1);
        co_await b.arrive();
      }
      ++done;
    }(sim, bar, rounds_done));
  }
  sim.run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(RingAllgather, CompletesAndTakesWireTime) {
  Simulator sim;
  dlfs::hw::Fabric fabric(sim, 4);
  Barrier bar(sim, 4);
  std::vector<std::uint64_t> shards = {1_MiB, 1_MiB, 1_MiB, 1_MiB};
  std::vector<SimTime> done(4, 0);
  for (std::uint32_t n = 0; n < 4; ++n) {
    sim.spawn([](Simulator& s, dlfs::hw::Fabric& f, Barrier& b,
                 std::uint32_t me, const std::vector<std::uint64_t>& sh,
                 SimTime& out) -> Task<void> {
      co_await dlfs::cluster::ring_allgather(s, f, b, me, sh);
      out = s.now();
    }(sim, fabric, bar, n, shards, done[n]));
  }
  sim.run();
  // 3 rounds of 1 MiB at 6.8 GB/s ~= 3 * 154us plus latencies.
  const SimTime min_expected = 3 * dlsim::transfer_time(1_MiB, 6.8e9);
  for (auto t : done) {
    EXPECT_GE(t, min_expected);
    EXPECT_LT(t, min_expected + 100_us);
  }
  // Every node sent 3 shards.
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(fabric.bytes_sent(n), 3 * 1_MiB);
  }
}

TEST(RingAllgather, SingleNodeIsFree) {
  Simulator sim;
  dlfs::hw::Fabric fabric(sim, 1);
  Barrier bar(sim, 1);
  std::vector<std::uint64_t> shards = {123};
  SimTime done = 1;
  sim.spawn([](Simulator& s, dlfs::hw::Fabric& f, Barrier& b,
               const std::vector<std::uint64_t>& sh,
               SimTime& out) -> Task<void> {
    co_await dlfs::cluster::ring_allgather(s, f, b, 0, sh);
    out = s.now();
  }(sim, fabric, bar, shards, done));
  sim.run();
  EXPECT_EQ(done, 0u);
}

TEST(Pfs, StreamTimingMatchesBandwidth) {
  Simulator sim;
  auto ds = dlfs::dataset::make_fixed_size_dataset(10, 1_MiB);
  Pfs pfs(sim, ds);
  SimTime done = 0;
  sim.spawn([](Simulator& s, Pfs& p, SimTime& out) -> Task<void> {
    co_await p.stream_samples(0, 10, 10_MiB);
    out = s.now();
  }(sim, pfs, done));
  sim.run();
  // 10 MiB at 1 GB/s ~= 10.5ms + 0.5ms latency.
  EXPECT_GT(done, 10_ms);
  EXPECT_LT(done, 12_ms);
  EXPECT_EQ(pfs.bytes_served(), 10_MiB);
}

TEST(Pfs, ReadSampleFillsContent) {
  Simulator sim;
  auto ds = dlfs::dataset::make_fixed_size_dataset(10, 2048);
  Pfs pfs(sim, ds);
  std::vector<std::byte> buf(2048), want(2048);
  ds.fill_content(4, 0, want);
  sim.spawn([](Pfs& p, std::span<std::byte> b) -> Task<void> {
    co_await p.read_sample(4, b);
  }(pfs, buf));
  sim.run();
  EXPECT_EQ(std::memcmp(buf.data(), want.data(), 2048), 0);
}

}  // namespace

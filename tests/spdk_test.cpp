// Tests for the SPDK-like layer: local user-space driver (hugepage
// enforcement, kernel exclusivity) and the NVMe-over-Fabrics target /
// initiator path (correct data, timing composition, queue depth,
// pipelining, target CPU accounting).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

#include "common/units.hpp"
#include "hw/net/fabric.hpp"
#include "hw/nvme/backing_store.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/simulator.hpp"
#include "spdk/nvme_driver.hpp"
#include "spdk/nvmf.hpp"

namespace {

using dlfs::hw::DeviceOwner;
using dlfs::hw::Fabric;
using dlfs::hw::NvmeDevice;
using dlfs::hw::RamBackingStore;
using dlfs::hw::SyntheticBackingStore;
using dlfs::mem::HugePagePool;
using dlfs::spdk::IoOp;
using dlfs::spdk::IoQueue;
using dlfs::spdk::IoStatus;
using dlfs::spdk::NvmeDriver;
using dlfs::spdk::NvmfTarget;
using dlsim::SimTime;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

struct LocalRig {
  Simulator sim;
  HugePagePool pool{8_MiB, 256_KiB};
  std::unique_ptr<NvmeDevice> dev;
  NvmeDriver driver{sim, pool};

  LocalRig() {
    dev = std::make_unique<NvmeDevice>(
        sim, "nvme0", std::make_unique<SyntheticBackingStore>(1_GiB, 1));
    driver.attach(*dev);
  }
};

TEST(NvmeDriver, AttachClaimsDeviceFromKernel) {
  LocalRig rig;
  EXPECT_EQ(rig.dev->owner(), DeviceOwner::kUserSpace);
  EXPECT_THROW(rig.dev->claim(DeviceOwner::kKernel), std::logic_error);
  rig.driver.detach(*rig.dev);
  EXPECT_EQ(rig.dev->owner(), DeviceOwner::kUnbound);
}

TEST(NvmeDriver, AttachKernelOwnedDeviceFails) {
  Simulator sim;
  HugePagePool pool(1_MiB, 256_KiB);
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 1));
  dev.claim(DeviceOwner::kKernel);
  NvmeDriver driver(sim, pool);
  EXPECT_THROW(driver.attach(dev), std::logic_error);
}

TEST(NvmeDriver, IoQueueRequiresAttachment) {
  Simulator sim;
  HugePagePool pool(1_MiB, 256_KiB);
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 1));
  NvmeDriver driver(sim, pool);
  EXPECT_THROW((void)driver.create_io_queue(dev), std::logic_error);
}

TEST(NvmeDriver, RejectsNonHugepageBuffers) {
  LocalRig rig;
  auto q = rig.driver.create_io_queue(*rig.dev);
  std::vector<std::byte> heap_buf(4096);  // not from the pool
  EXPECT_EQ(q->submit(IoOp::kRead, 0, heap_buf, 1), IoStatus::kInvalidBuffer);
  auto dma = rig.pool.allocate();
  EXPECT_EQ(q->submit(IoOp::kRead, 0, dma.span().subspan(0, 4096), 1),
            IoStatus::kOk);
}

TEST(NvmeDriver, LocalReadTiming) {
  LocalRig rig;
  auto q = rig.driver.create_io_queue(*rig.dev);
  auto dma = rig.pool.allocate();
  SimTime done = 0;
  rig.sim.spawn([](Simulator& s, IoQueue& q, std::span<std::byte> b,
                   SimTime& out) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 4096), 7), IoStatus::kOk);
    co_await q.wait_for_completion();
    auto c = q.poll();
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].user_tag, 7u);
    out = s.now();
  }(rig.sim, *q, dma.span(), done));
  rig.sim.run();
  EXPECT_EQ(done, 11800u);  // 1.8us occupancy + 10us media latency
}

// ---------------------------------------------------------------------------
// NVMe over Fabrics

struct FabricRig {
  Simulator sim;
  Fabric fabric{sim, 2};
  HugePagePool client_pool{8_MiB, 256_KiB};
  std::unique_ptr<NvmeDevice> dev;
  std::unique_ptr<NvmfTarget> target;

  explicit FabricRig(std::unique_ptr<dlfs::hw::BackingStore> store = nullptr) {
    if (!store) store = std::make_unique<SyntheticBackingStore>(1_GiB, 1);
    // Target on node 1, client on node 0.
    dev = std::make_unique<NvmeDevice>(sim, "nvme-remote", std::move(store));
    target = std::make_unique<NvmfTarget>(sim, fabric, 1, *dev);
  }
};

TEST(Nvmf, TargetClaimsDevice) {
  FabricRig rig;
  EXPECT_EQ(rig.dev->owner(), DeviceOwner::kUserSpace);
}

TEST(Nvmf, RemoteReadReturnsCorrectData) {
  auto store = std::make_unique<RamBackingStore>(1_MiB);
  std::vector<std::byte> expect(8192);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<std::byte>((i * 13) & 0xff);
  }
  store->write(40960, expect);
  FabricRig rig(std::move(store));
  auto q = rig.target->connect(0, rig.client_pool);
  auto dma = rig.client_pool.allocate();
  rig.sim.spawn([](IoQueue& q, std::span<std::byte> b) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 40960, b.subspan(0, 8192), 1),
              IoStatus::kOk);
    co_await q.wait_for_completion();
    auto c = q.poll();
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].status, IoStatus::kOk);
  }(*q, dma.span()));
  rig.sim.run();
  EXPECT_EQ(std::memcmp(dma.data(), expect.data(), expect.size()), 0);
}

TEST(Nvmf, RemoteReadTimingComposesNetworkAndDevice) {
  FabricRig rig;
  auto q = rig.target->connect(0, rig.client_pool);
  auto dma = rig.client_pool.allocate();
  SimTime done = 0;
  rig.sim.spawn([](Simulator& s, IoQueue& q, std::span<std::byte> b,
                   SimTime& out) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 128_KiB), 1),
              IoStatus::kOk);
    co_await q.wait_for_completion();
    (void)q.poll();
    out = s.now();
  }(rig.sim, *q, dma.span(), done));
  rig.sim.run();
  // Lower bound: capsule (1.3us+) + target cpu + device (52.4us+10us)
  //            + data return (128KiB/6.8GBps ~= 19.3us + 1.3us).
  EXPECT_GT(done, 80_us);
  EXPECT_LT(done, 100_us);
}

TEST(Nvmf, QueueDepthEnforcedAtInitiator) {
  FabricRig rig;
  auto q = rig.target->connect(0, rig.client_pool, /*depth=*/2);
  auto dma = rig.client_pool.allocate();
  auto b = dma.span().subspan(0, 512);
  EXPECT_EQ(q->submit(IoOp::kRead, 0, b, 1), IoStatus::kOk);
  EXPECT_EQ(q->submit(IoOp::kRead, 512, b, 2), IoStatus::kOk);
  EXPECT_EQ(q->submit(IoOp::kRead, 1024, b, 3), IoStatus::kQueueFull);
  rig.sim.run();
  EXPECT_EQ(q->poll().size(), 2u);
}

TEST(Nvmf, RejectsUnregisteredClientBuffer) {
  FabricRig rig;
  auto q = rig.target->connect(0, rig.client_pool);
  std::vector<std::byte> heap(512);
  EXPECT_EQ(q->submit(IoOp::kRead, 0, heap, 1), IoStatus::kInvalidBuffer);
}

TEST(Nvmf, OutOfRangeRejectedAtSubmit) {
  FabricRig rig;
  auto q = rig.target->connect(0, rig.client_pool);
  auto dma = rig.client_pool.allocate();
  EXPECT_EQ(q->submit(IoOp::kRead, 2_GiB, dma.span().subspan(0, 512), 1),
            IoStatus::kOutOfRange);
}

TEST(Nvmf, PipeliningBeatsSerialReads) {
  // 16 reads of 128 KiB posted at once should take far less than 16
  // sequential round trips.
  FabricRig rig;
  auto q = rig.target->connect(0, rig.client_pool, 16);
  auto bufs = rig.client_pool.allocate_many(16);
  SimTime pipelined = 0;
  rig.sim.spawn([](Simulator& s, IoQueue& q,
                   std::vector<dlfs::mem::DmaBuffer>& bs,
                   SimTime& out) -> Task<void> {
    for (std::size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(q.submit(IoOp::kRead, i * 128_KiB,
                         bs[i].span().subspan(0, 128_KiB), i),
                IoStatus::kOk);
    }
    std::size_t got = 0;
    while (got < bs.size()) {
      co_await q.wait_for_completion();
      got += q.poll().size();
    }
    out = s.now();
  }(rig.sim, *q, bufs, pipelined));
  rig.sim.run();
  // Serial would be ~16 * 85us = 1.36ms. Pipelined: device pipe is the
  // bottleneck: 16 * 52.4us ~= 840us plus one latency tail.
  EXPECT_LT(pipelined, 950_us);
  EXPECT_GT(pipelined, 800_us);
}

TEST(Nvmf, TargetCpuAccrues) {
  FabricRig rig;
  auto q = rig.target->connect(0, rig.client_pool);
  auto dma = rig.client_pool.allocate();
  rig.sim.spawn([](IoQueue& q, std::span<std::byte> b) -> Task<void> {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(q.submit(IoOp::kRead, static_cast<std::uint64_t>(i) * 4096,
                         b.subspan(0, 4096), static_cast<std::uint64_t>(i)),
                IoStatus::kOk);
    }
    std::size_t got = 0;
    while (got < 8) {
      co_await q.wait_for_completion();
      got += q.poll().size();
    }
  }(*q, dma.span()));
  rig.sim.run();
  // 8 commands * (dispatch 600ns + harvest 300ns) = 7.2us of target CPU.
  EXPECT_EQ(rig.target->poller_core().busy_ns(), 8 * (600 + 300));
}

TEST(Nvmf, TwoClientsShareOneTarget) {
  Simulator sim;
  Fabric fabric(sim, 3);
  HugePagePool pool_a(4_MiB, 256_KiB), pool_b(4_MiB, 256_KiB);
  NvmeDevice dev(sim, "nvme-shared",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 3));
  NvmfTarget target(sim, fabric, 2, dev);
  auto qa = target.connect(0, pool_a);
  auto qb = target.connect(1, pool_b);
  auto da = pool_a.allocate();
  auto db = pool_b.allocate();
  int completions = 0;
  auto reader = [](IoQueue& q, std::span<std::byte> b, int& n) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 64_KiB), 1), IoStatus::kOk);
    co_await q.wait_for_completion();
    n += static_cast<int>(q.poll().size());
  };
  sim.spawn(reader(*qa, da.span(), completions));
  sim.spawn(reader(*qb, db.span(), completions));
  sim.run();
  EXPECT_EQ(completions, 2);
  // The two reads serialized on the shared device pipe.
  EXPECT_EQ(dev.bytes_read(), 2 * 64_KiB);
}

TEST(Nvmf, ManyClientsManyTargetsAllToAll) {
  // 4 clients x 4 targets, every client reads from every target
  // concurrently with verified bytes — the disaggregation mesh the
  // multi-node figures stand on.
  Simulator sim;
  constexpr std::uint32_t kN = 4;
  Fabric fabric(sim, 2 * kN);  // clients 0..3, targets 4..7
  std::vector<std::unique_ptr<HugePagePool>> pools;
  std::vector<std::unique_ptr<NvmeDevice>> devs;
  std::vector<std::unique_ptr<NvmfTarget>> targets;
  for (std::uint32_t t = 0; t < kN; ++t) {
    devs.push_back(std::make_unique<NvmeDevice>(
        sim, "nvme" + std::to_string(t),
        std::make_unique<SyntheticBackingStore>(1_GiB, 1000 + t)));
    targets.push_back(
        std::make_unique<NvmfTarget>(sim, fabric, kN + t, *devs[t]));
  }
  int verified = 0;
  std::vector<std::unique_ptr<IoQueue>> queues;
  std::vector<dlfs::mem::DmaBuffer> bufs;
  for (std::uint32_t c = 0; c < kN; ++c) {
    pools.push_back(std::make_unique<HugePagePool>(8_MiB, 256_KiB));
    for (std::uint32_t t = 0; t < kN; ++t) {
      queues.push_back(targets[t]->connect(c, *pools[c]));
      bufs.push_back(pools[c]->allocate());
      sim.spawn([](IoQueue& q, std::span<std::byte> buf, NvmeDevice& dev,
                   std::uint64_t off, int& ok) -> Task<void> {
        EXPECT_EQ(q.submit(IoOp::kRead, off, buf.subspan(0, 64_KiB), 1),
                  IoStatus::kOk);
        co_await q.wait_for_completion();
        auto done = q.poll();
        EXPECT_EQ(done.size(), 1u);
        std::vector<std::byte> want(64_KiB);
        dev.store().read(off, want);
        if (std::memcmp(buf.data(), want.data(), want.size()) == 0) ++ok;
      }(*queues.back(), bufs.back().span(), *devs[t],
        static_cast<std::uint64_t>(c) * 1_MiB, verified));
    }
  }
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(verified, static_cast<int>(kN * kN));
  // Every device served all four clients.
  for (std::uint32_t t = 0; t < kN; ++t) {
    EXPECT_EQ(devs[t]->bytes_read(), kN * 64_KiB);
  }
}

TEST(Nvmf, DisconnectReapsConnection) {
  FabricRig rig;
  {
    auto q = rig.target->connect(0, rig.client_pool);
    rig.sim.run();
    EXPECT_EQ(rig.target->connection_count(), 1u);
  }
  // Destroying the initiator queue detaches the server-side connection;
  // once its service daemons observe the closed channel it is reaped —
  // repeated connects must not accumulate dead state on the target.
  rig.sim.run();
  EXPECT_EQ(rig.target->connection_count(), 0u);
  for (int i = 0; i < 3; ++i) {
    auto q = rig.target->connect(0, rig.client_pool);
    rig.sim.run();
  }
  rig.sim.run();
  EXPECT_EQ(rig.target->connection_count(), 0u);
}

TEST(Nvmf, CrashTimesOutReconnectFailsThenReprobeRevives) {
  FabricRig rig;
  dlfs::spdk::NvmfFaultParams fp;
  fp.command_timeout = 1_ms;
  fp.reconnect_backoff = 100_us;
  fp.reconnect_backoff_max = 500_us;
  fp.reconnect_attempts = 3;
  auto q = rig.target->connect(0, rig.client_pool, /*depth=*/16, fp);
  auto dma = rig.client_pool.allocate();
  rig.sim.spawn([](FabricRig& r, IoQueue& q,
                   std::span<std::byte> b) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 4096), 1), IoStatus::kOk);
    r.target->crash();  // the capsule dies inside the dead target
    co_await q.wait_for_completion();
    auto done = q.poll();
    EXPECT_EQ(done.size(), 1u);
    if (!done.empty()) {
      EXPECT_EQ(done[0].user_tag, 1u);
      EXPECT_EQ(done[0].status, IoStatus::kTimeout);
    }
    // Let the reconnect budget burn out against the crashed target.
    co_await r.sim.delay(10_ms);
    EXPECT_FALSE(q.connected());
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 4096), 2),
              IoStatus::kConnectionLost);
    EXPECT_EQ(r.target->connection_count(), 0u);  // stale conn reaped
    const auto st = q.transport_stats();
    EXPECT_EQ(st.timeouts, 1u);
    EXPECT_EQ(st.connections_lost, 1u);
    EXPECT_EQ(st.reconnects, 0u);
    // Explicit revalidation once the target is back: the queue reconnects
    // and serves reads again.
    r.target->recover();
    const bool ok = co_await q.reprobe();
    EXPECT_TRUE(ok);
    EXPECT_TRUE(q.connected());
    EXPECT_EQ(r.target->connection_count(), 1u);
    EXPECT_EQ(q.transport_stats().reconnects, 1u);
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 4096), 3), IoStatus::kOk);
    co_await q.wait_for_completion();
    auto revived = q.poll();
    EXPECT_EQ(revived.size(), 1u);
    if (!revived.empty()) {
      EXPECT_EQ(revived[0].status, IoStatus::kOk);
    }
  }(rig, *q, dma.span()));
  rig.sim.run();
  rig.sim.rethrow_failures();
}

TEST(Nvmf, AdmissionCapLimitsInflightDuringReconnect) {
  // Client-side admission control: while the connection is reconnecting,
  // max_inflight_during_reconnect caps how many commands may be parked
  // for replay; further submits see kQueueFull instead of piling onto a
  // node that may never come back.
  FabricRig rig;
  dlfs::spdk::NvmfFaultParams fp;
  fp.command_timeout = 1_ms;
  fp.reconnect_backoff = 500_us;
  fp.reconnect_backoff_max = 1_ms;
  fp.reconnect_attempts = 4;
  fp.max_inflight_during_reconnect = 2;
  auto q = rig.target->connect(0, rig.client_pool, /*depth=*/16, fp);
  auto dma = rig.client_pool.allocate();
  rig.sim.spawn([](FabricRig& r, IoQueue& q,
                   std::span<std::byte> b) -> Task<void> {
    EXPECT_EQ(q.admission_depth(), 16u);  // healthy: full queue depth
    r.target->crash();
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 512), 1), IoStatus::kOk);
    co_await q.wait_for_completion();  // command timeout starts reconnect
    auto done = q.poll();
    EXPECT_EQ(done.size(), 1u);
    if (!done.empty()) {
      EXPECT_EQ(done[0].status, IoStatus::kTimeout);
    }
    EXPECT_FALSE(q.connected());
    EXPECT_EQ(q.admission_depth(), 2u);  // reconnecting: the cap binds
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 512), 2), IoStatus::kOk);
    EXPECT_EQ(q.submit(IoOp::kRead, 4096, b.subspan(512, 512), 3),
              IoStatus::kOk);
    EXPECT_EQ(q.submit(IoOp::kRead, 8192, b.subspan(1024, 512), 4),
              IoStatus::kQueueFull);
    // The target heals before the budget burns out; the replay burst is
    // exactly the capped parked set, and the cap lifts with the reconnect.
    r.target->recover();
    std::size_t got = 0;
    while (got < 2) {
      co_await q.wait_for_completion();
      for (const auto& c : q.poll()) {
        EXPECT_EQ(c.status, IoStatus::kOk);
        ++got;
      }
    }
    EXPECT_TRUE(q.connected());
    EXPECT_EQ(q.transport_stats().replays, 2u);
    EXPECT_EQ(q.admission_depth(), 16u);
  }(rig, *q, dma.span()));
  rig.sim.run();
  rig.sim.rethrow_failures();
}

TEST(Nvmf, ParkedCommandsReplayOnceAndCompleteOnce) {
  // The exact admission boundary, and the replay invariant behind it:
  // exactly max_inflight_during_reconnect commands park, the next submit
  // is kQueueFull, and — even when several reconnect attempts fail before
  // one succeeds — each parked command is replayed exactly once and
  // completes exactly once.
  FabricRig rig;
  dlfs::spdk::NvmfFaultParams fp;
  // Long command timeout relative to the reconnect dance: the parked
  // commands' deadlines must not expire while the link is down, or the
  // parked set drains through timeouts instead of replays.
  fp.command_timeout = 10_ms;
  fp.reconnect_backoff = 500_us;
  fp.reconnect_backoff_max = 1_ms;
  fp.reconnect_attempts = 6;
  fp.max_inflight_during_reconnect = 2;
  auto q = rig.target->connect(0, rig.client_pool, /*depth=*/16, fp);
  auto dma = rig.client_pool.allocate();
  rig.target->crash();
  // Heal only after the first couple of reconnect attempts (at roughly
  // timeout + 0.5 ms, + 1.5 ms, ...) have already failed.
  rig.target->recover_at(13_ms);
  rig.sim.spawn([](FabricRig&, IoQueue& q,
                   std::span<std::byte> b) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 512), 1), IoStatus::kOk);
    co_await q.wait_for_completion();  // timeout kicks off the reconnect
    auto done = q.poll();
    EXPECT_EQ(done.size(), 1u);
    if (!done.empty()) {
      EXPECT_EQ(done[0].status, IoStatus::kTimeout);
    }
    EXPECT_FALSE(q.connected());
    // Boundary: the cap admits exactly two, the third is rejected.
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 512), 2), IoStatus::kOk);
    EXPECT_EQ(q.submit(IoOp::kRead, 4096, b.subspan(512, 512), 3),
              IoStatus::kOk);
    EXPECT_EQ(q.submit(IoOp::kRead, 8192, b.subspan(1024, 512), 4),
              IoStatus::kQueueFull);
    std::map<std::uint64_t, int> completions;
    std::size_t got = 0;
    while (got < 2) {
      co_await q.wait_for_completion();
      for (const auto& c : q.poll()) {
        EXPECT_EQ(c.status, IoStatus::kOk);
        ++completions[c.user_tag];
        ++got;
      }
    }
    EXPECT_TRUE(q.connected());
    // One replay per parked command per successful reconnect — the failed
    // attempts in between must not multiply the replays.
    EXPECT_EQ(q.transport_stats().replays, 2u);
    EXPECT_GE(q.transport_stats().reconnects, 1u);
    EXPECT_EQ(completions[2], 1);
    EXPECT_EQ(completions[3], 1);
    // A healthy follow-up completes exactly once too — no stragglers from
    // the reconnect window surface later as duplicates.
    EXPECT_EQ(q.admission_depth(), 16u);
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 512), 5), IoStatus::kOk);
    co_await q.wait_for_completion();
    auto last = q.poll();
    EXPECT_EQ(last.size(), 1u);
    if (!last.empty()) {
      EXPECT_EQ(last[0].user_tag, 5u);
      EXPECT_EQ(last[0].status, IoStatus::kOk);
    }
    EXPECT_TRUE(q.poll().empty());
  }(rig, *q, dma.span()));
  rig.sim.run();
  rig.sim.rethrow_failures();
}

TEST(Nvmf, ScheduledCrashAndRecoverFlipAccepting) {
  FabricRig rig;
  rig.target->crash_at(1_ms);
  rig.target->recover_at(2_ms);
  EXPECT_TRUE(rig.target->accepting());
  rig.sim.run_until(1_ms + 1);
  EXPECT_FALSE(rig.target->accepting());
  rig.sim.run_until(2_ms + 1);
  EXPECT_TRUE(rig.target->accepting());
}

TEST(Nvmf, DestroyingQueueStopsServerLoops) {
  FabricRig rig;
  {
    auto q = rig.target->connect(0, rig.client_pool);
    auto dma = rig.client_pool.allocate();
    rig.sim.spawn([](IoQueue& q, std::span<std::byte> b) -> Task<void> {
      EXPECT_EQ(q.submit(IoOp::kRead, 0, b.subspan(0, 512), 1), IoStatus::kOk);
      co_await q.wait_for_completion();
      (void)q.poll();
    }(*q, dma.span()));
    rig.sim.run();
  }
  // After queue destruction the daemons wake, observe the closed channel,
  // and exit; the simulation must drain with no live user processes.
  rig.sim.run();
  EXPECT_EQ(rig.sim.live_processes(), 0u);
}

}  // namespace

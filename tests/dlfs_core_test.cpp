// Tests for DLFS's core data structures: the 128-bit sample entry, the
// AVL tree (including property tests of its invariants), the partitioned
// sample directory, the LRU sample cache, and the batching planner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "dlfs/avl_tree.hpp"
#include "dlfs/batching.hpp"
#include "dlfs/sample_cache.hpp"
#include "dlfs/sample_directory.hpp"
#include "dlfs/sample_entry.hpp"
#include "mem/hugepage_pool.hpp"

namespace {

using dlfs::core::AvlTree;
using dlfs::core::BatchingMode;
using dlfs::core::BatchPlan;
using dlfs::core::EpochSequence;
using dlfs::core::ReadUnit;
using dlfs::core::SampleCache;
using dlfs::core::SampleDirectory;
using dlfs::core::SampleEntry;
using dlfs::core::SampleLocation;
using namespace dlfs::byte_literals;

// ---------------------------------------------------------------------------
// SampleEntry

TEST(SampleEntry, RoundTripsAllFields) {
  SampleEntry e(/*nid=*/513, /*key=*/0xABCDEF012345ull,
                /*offset=*/(1ull << 39) + 77, /*len=*/(1u << 22) + 9,
                /*valid=*/true);
  EXPECT_EQ(e.nid(), 513);
  EXPECT_EQ(e.key(), 0xABCDEF012345ull);
  EXPECT_EQ(e.offset(), (1ull << 39) + 77);
  EXPECT_EQ(e.len(), (1u << 22) + 9);
  EXPECT_TRUE(e.valid_in_cache());
}

TEST(SampleEntry, Is128Bits) { EXPECT_EQ(sizeof(SampleEntry), 16u); }

TEST(SampleEntry, FieldLimitsEnforced) {
  EXPECT_THROW(SampleEntry(0, 1ull << 48, 0, 0), std::invalid_argument);
  EXPECT_THROW(SampleEntry(0, 0, 1ull << 40, 0), std::invalid_argument);
  EXPECT_THROW(SampleEntry(0, 0, 0, 1u << 23), std::invalid_argument);
  // Extremes are fine.
  EXPECT_NO_THROW(SampleEntry(0xffff, SampleEntry::kKeyMask,
                              SampleEntry::kMaxOffset,
                              static_cast<std::uint32_t>(SampleEntry::kMaxLen)));
}

TEST(SampleEntry, VBitToggles) {
  SampleEntry e(1, 2, 3, 4, false);
  EXPECT_FALSE(e.valid_in_cache());
  e.set_valid_in_cache(true);
  EXPECT_TRUE(e.valid_in_cache());
  EXPECT_EQ(e.len(), 4u);      // neighbours untouched
  EXPECT_EQ(e.offset(), 3u);
  e.set_valid_in_cache(false);
  EXPECT_FALSE(e.valid_in_cache());
}

TEST(SampleEntry, MaxLenIs8MiB) {
  EXPECT_EQ(SampleEntry::kMaxLen + 1, 8u * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// AvlTree

TEST(AvlTree, InsertFindErase) {
  AvlTree<std::uint64_t, int> t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(3, 30));
  EXPECT_TRUE(t.insert(7, 70));
  EXPECT_FALSE(t.insert(5, 99));  // duplicate rejected
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_EQ(*t.find(3), 30);
  EXPECT_EQ(t.find(4), nullptr);
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(3), nullptr);
}

TEST(AvlTree, InOrderTraversalIsSorted) {
  AvlTree<std::uint64_t, int> t;
  dlfs::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    (void)t.insert(rng.next_below(100000), i);
  }
  std::vector<std::uint64_t> keys;
  t.for_each([&](const std::uint64_t& k, const int&) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), t.size());
}

TEST(AvlTree, StaysBalancedOnSortedInsert) {
  // The classic AVL stress: ascending inserts.
  AvlTree<std::uint64_t, int> t;
  constexpr int kN = 4096;
  for (int i = 0; i < kN; ++i) EXPECT_TRUE(t.insert(i, i));
  EXPECT_TRUE(t.validate());
  // Height must be <= 1.44 * log2(n) + 2.
  EXPECT_LE(t.height(), static_cast<int>(1.44 * std::log2(kN)) + 2);
}

TEST(AvlTree, ValueMutationThroughFind) {
  AvlTree<std::uint64_t, SampleEntry> t;
  (void)t.insert(1, SampleEntry(0, 1, 100, 10, false));
  t.find(1)->set_valid_in_cache(true);
  EXPECT_TRUE(t.find(1)->valid_in_cache());
}

class AvlPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AvlPropertyTest, InvariantsHoldUnderRandomInsertErase) {
  AvlTree<std::uint64_t, std::uint64_t> t;
  std::set<std::uint64_t> reference;
  dlfs::Rng rng(GetParam());
  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t k = rng.next_below(512);  // small space forces dups
    if (rng.next_below(3) != 0) {
      const bool inserted = t.insert(k, k * 2);
      EXPECT_EQ(inserted, reference.insert(k).second);
    } else {
      const bool erased = t.erase(k);
      EXPECT_EQ(erased, reference.erase(k) == 1);
    }
  }
  EXPECT_TRUE(t.validate());
  EXPECT_EQ(t.size(), reference.size());
  for (auto k : reference) {
    ASSERT_NE(t.find(k), nullptr);
    EXPECT_EQ(*t.find(k), k * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(AvlTree, LargeTreeTeardownDoesNotOverflowStack) {
  AvlTree<std::uint64_t, int> t;
  for (std::uint64_t i = 0; i < 200000; ++i) (void)t.insert(i, 0);
  t.clear();
  EXPECT_TRUE(t.empty());
}

TEST(AvlTree, MoveSemantics) {
  AvlTree<std::uint64_t, int> a;
  (void)a.insert(1, 10);
  AvlTree<std::uint64_t, int> b = std::move(a);
  ASSERT_NE(b.find(1), nullptr);
  EXPECT_EQ(*b.find(1), 10);
}

// ---------------------------------------------------------------------------
// SampleDirectory

TEST(SampleDirectory, InsertAndLookupByName) {
  SampleDirectory dir(4);
  for (int i = 0; i < 100; ++i) {
    const std::string name = "img_" + std::to_string(i);
    const std::uint16_t owner = dir.owner_of(name);
    dir.insert(i, name, owner, static_cast<std::uint64_t>(i) * 4096, 1234);
  }
  EXPECT_EQ(dir.num_samples(), 100u);
  for (int i = 0; i < 100; ++i) {
    const auto* e = dir.lookup("img_" + std::to_string(i));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->offset(), static_cast<std::uint64_t>(i) * 4096);
    EXPECT_EQ(e->len(), 1234u);
  }
  EXPECT_EQ(dir.lookup("img_100"), nullptr);
}

TEST(SampleDirectory, LookupByIdMatchesName) {
  SampleDirectory dir(3);
  for (int i = 0; i < 50; ++i) {
    const std::string name = "s" + std::to_string(i);
    dir.insert(i, name, dir.owner_of(name), i * 100, 100);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dir.lookup_id(i), dir.lookup("s" + std::to_string(i)));
  }
  EXPECT_EQ(dir.lookup_id(999), nullptr);
}

TEST(SampleDirectory, PartitionSpreadsAcrossTrees) {
  SampleDirectory dir(8);
  for (int i = 0; i < 4000; ++i) {
    const std::string name = "f" + std::to_string(i);
    dir.insert(i, name, dir.owner_of(name), 0, 1);
  }
  // Every tree should hold roughly 500 entries (within 4x either way —
  // hash dispersion, not a strict balance guarantee).
  for (std::uint16_t n = 0; n < 8; ++n) {
    EXPECT_GT(dir.tree(n).size(), 125u);
    EXPECT_LT(dir.tree(n).size(), 2000u);
  }
}

TEST(SampleDirectory, RejectsWrongPlacement) {
  SampleDirectory dir(4);
  const std::string name = "x1";
  const std::uint16_t wrong = (dir.owner_of(name) + 1) % 4;
  EXPECT_THROW(dir.insert(0, name, wrong, 0, 1), std::invalid_argument);
}

TEST(SampleDirectory, ShardBytesCountEntries) {
  SampleDirectory dir(2);
  std::uint64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    const std::string name = "y" + std::to_string(i);
    dir.insert(i, name, dir.owner_of(name), 0, 1);
  }
  total = dir.shard_bytes(0) + dir.shard_bytes(1);
  EXPECT_EQ(total, 10u * 28u);
}

TEST(SampleDirectory, SingleNodeHoldsEverything) {
  SampleDirectory dir(1);
  for (int i = 0; i < 100; ++i) {
    dir.insert(i, "z" + std::to_string(i), 0, i, 1);
  }
  EXPECT_EQ(dir.tree(0).size(), 100u);
  EXPECT_TRUE(dir.tree(0).validate());
}

TEST(SampleDirectory, InsertFileOverflowThrowsInsteadOfSpinning) {
  // Regression: insert_file's linear-probe loop used to have no
  // wrap-around guard and spun forever once the tree was saturated.
  // Shrink the probe key space to 4 slots so saturation is reachable.
  SampleDirectory dir(1);
  dir.set_probe_mask_for_test(0x3);
  int inserted = 0;
  try {
    for (int i = 0; i < 16; ++i) {
      dir.insert_file("rec_" + std::to_string(i), 0, i * 4096ull, 4096);
      ++inserted;
    }
    FAIL() << "expected overflow_error after the key space saturated";
  } catch (const std::overflow_error&) {
  }
  // Exactly the key-space capacity landed before the guard fired.
  EXPECT_EQ(inserted, 4);
  EXPECT_EQ(dir.tree(0).size(), 4u);
}

TEST(SampleDirectory, ReplicasAreRecordedInFailoverOrder) {
  SampleDirectory dir(4);
  const std::string name = "img_r";
  const std::uint16_t owner = dir.owner_of(name);
  dir.insert(0, name, owner, 4096, 512);
  EXPECT_TRUE(dir.replicas(0).empty());  // no replication by default
  const auto r1 = static_cast<std::uint16_t>((owner + 1) % 4);
  const auto r2 = static_cast<std::uint16_t>((owner + 2) % 4);
  dir.add_replica(0, r1, 8192);
  dir.add_replica(0, r2, 12288);
  const auto& hops = dir.replicas(0);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].nid, r1);
  EXPECT_EQ(hops[0].offset, 8192u);
  EXPECT_EQ(hops[1].nid, r2);
  EXPECT_EQ(hops[1].offset, 12288u);
  // Ids never inserted (or out of range) have no replicas and adding one
  // for them is a caller bug.
  EXPECT_TRUE(dir.replicas(7).empty());
  EXPECT_THROW(dir.add_replica(7, r1, 0), std::invalid_argument);
  EXPECT_THROW(dir.add_replica(0, 9, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SampleCache

struct CacheRig {
  dlfs::mem::HugePagePool pool{16 * 256_KiB, 256_KiB};
  SampleCache cache{pool, /*capacity_chunks=*/4, /*num_samples=*/100};

  void insert_sample(std::size_t id, std::size_t chunks = 1) {
    std::vector<dlfs::mem::DmaBuffer> pieces;
    std::vector<std::uint32_t> lens;
    for (std::size_t i = 0; i < chunks; ++i) {
      pieces.push_back(pool.allocate());
      lens.push_back(1000);
    }
    cache.insert(id, std::move(pieces), std::move(lens));
  }
};

TEST(SampleCache, InsertSetsVBit) {
  CacheRig rig;
  EXPECT_FALSE(rig.cache.valid(7));
  rig.insert_sample(7);
  EXPECT_TRUE(rig.cache.valid(7));
  EXPECT_EQ(rig.cache.resident_samples(), 1u);
  EXPECT_EQ(rig.cache.resident_chunks(), 1u);
}

TEST(SampleCache, PinReturnsSpansOfInsertedLengths) {
  CacheRig rig;
  rig.insert_sample(3, 2);
  auto views = rig.cache.pin(3);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].size(), 1000u);
  rig.cache.unpin(3);
}

TEST(SampleCache, LruEvictionClearsVBit) {
  CacheRig rig;  // capacity 4 chunks
  for (std::size_t id = 0; id < 4; ++id) rig.insert_sample(id);
  EXPECT_TRUE(rig.cache.valid(0));
  rig.insert_sample(4);  // evicts LRU = sample 0
  EXPECT_FALSE(rig.cache.valid(0));
  EXPECT_TRUE(rig.cache.valid(4));
  EXPECT_LE(rig.cache.resident_chunks(), 4u);
}

TEST(SampleCache, PinRefreshesRecency) {
  CacheRig rig;
  for (std::size_t id = 0; id < 4; ++id) rig.insert_sample(id);
  // Touch 0 so 1 becomes the LRU victim.
  (void)rig.cache.pin(0);
  rig.cache.unpin(0);
  rig.insert_sample(9);
  EXPECT_TRUE(rig.cache.valid(0));
  EXPECT_FALSE(rig.cache.valid(1));
}

TEST(SampleCache, PinnedEntriesSurviveEviction) {
  CacheRig rig;
  for (std::size_t id = 0; id < 4; ++id) rig.insert_sample(id);
  (void)rig.cache.pin(0);  // pin the LRU candidate
  rig.insert_sample(5);
  EXPECT_TRUE(rig.cache.valid(0));   // pinned: not evicted
  EXPECT_FALSE(rig.cache.valid(1));  // next victim instead
  rig.cache.unpin(0);
}

TEST(SampleCache, OversizedInsertIsSkipped) {
  CacheRig rig;  // capacity 4
  rig.insert_sample(1, 5);
  EXPECT_FALSE(rig.cache.valid(1));
  EXPECT_EQ(rig.cache.resident_chunks(), 0u);
}

TEST(SampleCache, ExplicitEvict) {
  CacheRig rig;
  rig.insert_sample(2);
  rig.cache.evict(2);
  EXPECT_FALSE(rig.cache.valid(2));
  rig.cache.evict(2);  // idempotent
}

TEST(SampleCache, UnpinErrors) {
  CacheRig rig;
  EXPECT_THROW(rig.cache.unpin(50), std::logic_error);
  rig.insert_sample(50);
  EXPECT_THROW(rig.cache.unpin(50), std::logic_error);  // never pinned
}

// ---------------------------------------------------------------------------
// BatchPlan / EpochSequence

std::vector<SampleLocation> uniform_layout(std::size_t n, std::uint32_t size,
                                           std::uint16_t nodes) {
  // Round-robin samples over nodes, packed per node.
  std::vector<SampleLocation> layout(n);
  std::vector<std::uint64_t> off(nodes, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t nid = static_cast<std::uint16_t>(i % nodes);
    layout[i] = SampleLocation{nid, off[nid], size};
    off[nid] += size;
  }
  return layout;
}

TEST(BatchPlan, SampleLevelHasOneUnitPerSample) {
  auto layout = uniform_layout(100, 4096, 2);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kSampleLevel);
  EXPECT_EQ(plan.units().size(), 100u);
  EXPECT_EQ(plan.num_chunk_units(), 0u);
  for (const auto& u : plan.units()) {
    EXPECT_FALSE(u.is_chunk);
    EXPECT_EQ(u.samples.size(), 1u);
  }
}

TEST(BatchPlan, ChunkLevelAggregatesSmallSamples) {
  // 512 samples x 512 B on one node = 256 KiB = exactly one chunk.
  auto layout = uniform_layout(512, 512, 1);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kChunkLevel);
  EXPECT_EQ(plan.num_chunk_units(), 1u);
  EXPECT_EQ(plan.num_edge_units(), 0u);
  EXPECT_EQ(plan.units()[0].samples.size(), 512u);
  EXPECT_EQ(plan.units()[0].len, 256_KiB);
}

TEST(BatchPlan, EdgeSamplesCrossChunkBoundaries) {
  // 3 samples of 100 KiB: [0,100K) in chunk 0, [100K,200K) crosses the
  // 256 KiB boundary? No — 200K < 256K. Use sizes that straddle:
  // sample sizes 200 KiB: s0 [0,200K) inside chunk0; s1 [200K,400K)
  // crosses; s2 [400K,600K) crosses chunk1->2 boundary? 400K..600K
  // crosses 512K. So: 1 contained, 2 edges.
  std::vector<SampleLocation> layout = {
      {0, 0, 200 * 1024},
      {0, 200 * 1024, 200 * 1024},
      {0, 400 * 1024, 200 * 1024},
  };
  BatchPlan plan(layout, 256_KiB, BatchingMode::kChunkLevel);
  EXPECT_EQ(plan.num_edge_units(), 2u);
  EXPECT_EQ(plan.num_chunk_units(), 1u);
  std::size_t samples_total = 0;
  for (const auto& u : plan.units()) samples_total += u.samples.size();
  EXPECT_EQ(samples_total, 3u);  // every sample delivered exactly once
}

TEST(BatchPlan, EverySampleAppearsExactlyOnce) {
  dlfs::Rng rng(77);
  std::vector<SampleLocation> layout;
  std::vector<std::uint64_t> off(3, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::uint16_t nid = static_cast<std::uint16_t>(rng.next_below(3));
    const std::uint32_t size =
        static_cast<std::uint32_t>(512 + rng.next_below(100000));
    layout.push_back(SampleLocation{nid, off[nid], size});
    off[nid] += size;
  }
  BatchPlan plan(layout, 256_KiB, BatchingMode::kChunkLevel);
  std::set<std::uint32_t> seen;
  for (const auto& u : plan.units()) {
    for (const auto& s : u.samples) {
      EXPECT_TRUE(seen.insert(s.sample_id).second);
      EXPECT_EQ(s.len, layout[s.sample_id].len);
      if (u.is_chunk) {
        EXPECT_EQ(u.offset + s.offset_in_unit, layout[s.sample_id].offset);
      }
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(BatchPlan, FinalChunkClippedToDataEnd) {
  // 3 x 1000 B on one node: data ends at 3000; single chunk clipped.
  auto layout = uniform_layout(3, 1000, 1);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kChunkLevel);
  ASSERT_EQ(plan.units().size(), 1u);
  EXPECT_EQ(plan.units()[0].len, 3000u);
}

TEST(EpochSequence, SameSeedSameOrderAcrossClients) {
  auto layout = uniform_layout(64, 4096, 2);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kSampleLevel);
  EpochSequence a(plan, 42, 0, 1), b(plan, 42, 0, 1);
  auto pa = a.take(64), pb = b.take(64);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].unit, pb[i].unit);
  }
}

TEST(EpochSequence, ClientsPartitionDisjointly) {
  auto layout = uniform_layout(100, 4096, 2);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kSampleLevel);
  std::set<const ReadUnit*> seen;
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    EpochSequence seq(plan, 7, c, 4);
    auto picks = seq.take(1000);
    for (const auto& pk : picks) {
      EXPECT_TRUE(seen.insert(pk.unit).second) << "unit delivered twice";
      total += pk.count;
    }
  }
  EXPECT_EQ(total, 100u);
}

TEST(EpochSequence, TakeRespectsBatchBoundaries) {
  auto layout = uniform_layout(512, 512, 1);  // one chunk of 512 samples
  BatchPlan plan(layout, 256_KiB, BatchingMode::kChunkLevel);
  EpochSequence seq(plan, 1, 0, 1);
  EXPECT_EQ(seq.remaining_samples(), 512u);
  auto p1 = seq.take(32);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].count, 32u);
  EXPECT_EQ(p1[0].first_sample, 0u);
  auto p2 = seq.take(32);
  EXPECT_EQ(p2[0].first_sample, 32u);  // resumes inside the same unit
  EXPECT_EQ(seq.remaining_samples(), 448u);
}

TEST(EpochSequence, ExhaustionReturnsShortThenEmpty) {
  auto layout = uniform_layout(10, 4096, 1);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kSampleLevel);
  EpochSequence seq(plan, 3, 0, 1);
  auto p1 = seq.take(8);
  std::size_t c1 = 0;
  for (auto& pk : p1) c1 += pk.count;
  EXPECT_EQ(c1, 8u);
  auto p2 = seq.take(8);
  std::size_t c2 = 0;
  for (auto& pk : p2) c2 += pk.count;
  EXPECT_EQ(c2, 2u);
  EXPECT_TRUE(seq.take(8).empty());
}

TEST(EpochSequence, DifferentSeedsDifferentOrder) {
  auto layout = uniform_layout(200, 4096, 1);
  BatchPlan plan(layout, 256_KiB, BatchingMode::kSampleLevel);
  EpochSequence a(plan, 1, 0, 1), b(plan, 2, 0, 1);
  auto pa = a.take(200), pb = b.take(200);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(pa.size(), pb.size()); ++i) {
    if (pa[i].unit != pb[i].unit) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace

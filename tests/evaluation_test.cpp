// Evaluation-claim regression tests: small, fast versions of each
// figure's *directional* result, pinned as assertions so a refactor that
// silently breaks a paper-level conclusion fails CI — not just the
// benches' eyeballed output.

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "harness.hpp"

namespace {

using dlfs::bench::Workload;
using dlfs::core::BatchingMode;
using namespace dlfs::byte_literals;
using namespace dlsim::literals;

Workload small_node_workload(std::uint32_t nodes, std::uint32_t sample_bytes,
                             std::size_t samples_per_node) {
  Workload w;
  w.num_nodes = nodes;
  w.sample_bytes = sample_bytes;
  w.samples_per_node = samples_per_node;
  return w;
}

dlfs::core::DlfsConfig chunked() {
  dlfs::core::DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  return cfg;
}

// Fig. 6: single node, small samples — DLFS-Base beats Ext4-Base by the
// paper's >= 1.82x, and full DLFS beats everything.
TEST(EvaluationClaims, Fig6SmallSampleOrdering) {
  const auto w = small_node_workload(1, 4096, 4096);
  dlfs::core::DlfsConfig base;
  base.batching = BatchingMode::kNone;
  // DLFS-Base is the paper's synchronous per-sample baseline; the
  // generalized daemon would otherwise read ahead for it too.
  base.prefetch.enabled = false;
  const double ext4_base = dlfs::bench::run_ext4(w, 1).samples_per_sec;
  const double ext4_mc = dlfs::bench::run_ext4(w, 4).samples_per_sec;
  const double dlfs_base = dlfs::bench::run_dlfs(w, base).samples_per_sec;
  const double dlfs_full = dlfs::bench::run_dlfs(w, chunked()).samples_per_sec;
  EXPECT_GT(dlfs_base, 1.82 * ext4_base);
  EXPECT_GT(dlfs_full, ext4_mc);
  EXPECT_GT(dlfs_full, dlfs_base);
}

// Fig. 6 large samples: everything converges near device bandwidth, and
// DLFS still leads.
TEST(EvaluationClaims, Fig6LargeSamplesConverge) {
  const auto w = small_node_workload(1, 1_MiB, 96);
  const double ext4 = dlfs::bench::run_ext4(w, 1).bytes_per_sec;
  const double dlfs = dlfs::bench::run_dlfs(w, chunked()).bytes_per_sec;
  EXPECT_GT(dlfs, ext4);
  EXPECT_LT(dlfs / ext4, 2.0);    // no longer an order of magnitude
  EXPECT_GT(dlfs, 1.8e9);         // near the 2.5 GB/s device
}

// Fig. 7a: DLFS saturates the device from one core; Ext4 with one core
// does not come close for small samples.
TEST(EvaluationClaims, Fig7SingleCoreSaturation) {
  const auto w = small_node_workload(1, 16_KiB, 2048);
  const auto dlfs = dlfs::bench::run_dlfs(w, chunked());
  const auto ext4 = dlfs::bench::run_ext4(w, 1);
  EXPECT_GT(dlfs.bytes_per_sec, 0.8 * 2.5e9);
  EXPECT_LT(ext4.bytes_per_sec, 0.5 * 2.5e9);
}

// Fig. 7b: a 32 x 128 KiB batch hides ~1.5 ms of compute; 4 ms hurts.
TEST(EvaluationClaims, Fig7bComputeOverlapKnee) {
  auto w = small_node_workload(1, 128_KiB, 384);
  const double base = dlfs::bench::run_dlfs(w, chunked()).samples_per_sec;
  const double hidden =
      dlfs::bench::run_dlfs(w, chunked(), 1500_us).samples_per_sec;
  const double hurt =
      dlfs::bench::run_dlfs(w, chunked(), 4_ms).samples_per_sec;
  EXPECT_GT(hidden, 0.95 * base);
  EXPECT_LT(hurt, 0.75 * base);
}

// Fig. 9: DLFS throughput scales near-linearly from 2 to 8 nodes and
// dominates both baselines at small samples.
TEST(EvaluationClaims, Fig9ScalingAndDominance) {
  double prev = 0;
  for (std::uint32_t nodes : {2u, 4u, 8u}) {
    const auto w = small_node_workload(nodes, 512, 2048);
    const double dlfs = dlfs::bench::run_dlfs(w, chunked()).samples_per_sec;
    if (prev > 0) {
      EXPECT_GT(dlfs, 1.5 * prev);  // >= 75% scaling efficiency
    }
    prev = dlfs;
    EXPECT_GT(dlfs, 5.0 * dlfs::bench::run_ext4(w, 1).samples_per_sec);
    EXPECT_GT(dlfs, 5.0 * dlfs::bench::run_octopus(w).samples_per_sec);
  }
}

// Fig. 10: metadata ordering — DLFS << Ext4 (>= 1.5 orders) <= Octopus.
TEST(EvaluationClaims, Fig10LookupOrdering) {
  const auto lt = dlfs::bench::measure_lookup_times(
      /*num_nodes=*/4, /*files_per_node=*/4000, /*sample_bytes=*/512,
      /*measure_count=*/2000);
  EXPECT_GT(lt.ext4_us, 30.0 * lt.dlfs_us);
  EXPECT_GT(lt.octopus_us, lt.ext4_us);
  EXPECT_LT(lt.dlfs_us, 1.0);
}

// Fig. 11: one client is NIC-bound beyond ~2 remote devices (adding
// devices stops helping), while many clients keep scaling.
TEST(EvaluationClaims, Fig11NicBottleneckShape) {
  auto run_1c = [&](std::uint32_t devices) {
    Workload w = small_node_workload(devices + 1, 128_KiB, 96);
    w.clients = 1;
    w.storage = devices;
    w.client_node_offset = devices;
    auto cfg = chunked();
    cfg.prefetch.initial_units = 16;
    return dlfs::bench::run_dlfs(w, cfg).bytes_per_sec;
  };
  const double at2 = run_1c(2);
  const double at8 = run_1c(8);
  EXPECT_LT(at8, 1.6 * at2);   // NIC cap: not 4x
  EXPECT_LT(at8, 6.8e9);       // never beats the wire
  EXPECT_GT(at8, 3.0e9);       // but gets a good fraction of it
}

}  // namespace

// Tests for the Octopus-like distributed FS baseline: metadata
// partitioning, remote-vs-local lookup costs, RDMA read timing, data
// integrity, and server-side metadata contention.

#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster.hpp"
#include "common/units.hpp"
#include "octofs/octofs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::cluster::Cluster;
using dlfs::cluster::NodeConfig;
using dlfs::octofs::FileMeta;
using dlfs::octofs::OctoFs;
using dlsim::CpuCore;
using dlsim::SimTime;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

struct OctoRig {
  Simulator sim;
  Cluster cluster;
  OctoFs fs;

  explicit OctoRig(std::uint32_t nodes)
      : cluster(sim, nodes, ram_config()), fs(cluster, dlfs::default_calibration()) {}

  static NodeConfig ram_config() {
    NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 256_MiB;
    return nc;
  }

  void stage(const std::string& name, std::span<const std::byte> data) {
    sim.spawn([](OctoFs& fs, std::string n,
                 std::span<const std::byte> d) -> Task<void> {
      co_await fs.stage_file(n, d);
    }(fs, name, data));
    sim.run();
    sim.rethrow_failures();
  }
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 7 + seed) & 0xff);
  }
  return v;
}

TEST(OctoFs, StagePlacesFileOnHashOwner) {
  OctoRig rig(4);
  auto data = pattern(1000);
  rig.stage("file_x", data);
  const std::uint16_t owner = rig.fs.owner_of("file_x");
  EXPECT_GT(rig.cluster.node(owner).device().bytes_written(), 0u);
  EXPECT_EQ(rig.fs.num_files(), 1u);
}

TEST(OctoFs, OpenAndReadRoundTrip) {
  OctoRig rig(3);
  auto data = pattern(50000);
  rig.stage("sample", data);
  CpuCore core(rig.sim, "client");
  auto client = rig.fs.make_client(0, core);
  std::vector<std::byte> out(50000);
  bool opened = false;
  rig.sim.spawn([](OctoFs::Client& c, std::span<std::byte> o,
                   bool& ok) -> Task<void> {
    auto meta = co_await c.open("sample");
    EXPECT_TRUE(meta.has_value());
    ok = meta.has_value();
    co_await c.read(*meta, o);
  }(*client, out, opened));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(opened);
  EXPECT_EQ(std::memcmp(out.data(), pattern(50000).data(), 50000), 0);
}

TEST(OctoFs, OpenMissingReturnsNullopt) {
  OctoRig rig(2);
  CpuCore core(rig.sim, "client");
  auto client = rig.fs.make_client(0, core);
  bool found = true;
  rig.sim.spawn([](OctoFs::Client& c, bool& f) -> Task<void> {
    auto meta = co_await c.open("ghost");
    f = meta.has_value();
  }(*client, found));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_FALSE(found);
}

TEST(OctoFs, RemoteLookupCostsRpcRoundTrip) {
  OctoRig rig(4);
  // Find names owned locally (node 0) and remotely.
  std::string local_name, remote_name;
  for (int i = 0; i < 100 && (local_name.empty() || remote_name.empty());
       ++i) {
    const std::string n = "f" + std::to_string(i);
    if (rig.fs.owner_of(n) == 0 && local_name.empty()) local_name = n;
    if (rig.fs.owner_of(n) != 0 && remote_name.empty()) remote_name = n;
  }
  auto data = pattern(100);
  rig.stage(local_name, data);
  rig.stage(remote_name, data);
  CpuCore core(rig.sim, "client");
  auto client = rig.fs.make_client(0, core);
  dlsim::SimDuration t_local = 0, t_remote = 0;
  rig.sim.spawn([](Simulator& s, OctoFs::Client& c, std::string ln,
                   std::string rn, dlsim::SimDuration& tl,
                   dlsim::SimDuration& tr) -> Task<void> {
    auto t0 = s.now();
    (void)co_await c.open(ln);
    tl = s.now() - t0;
    t0 = s.now();
    (void)co_await c.open(rn);
    tr = s.now() - t0;
  }(rig.sim, *client, local_name, remote_name, t_local, t_remote));
  rig.sim.run();
  rig.sim.rethrow_failures();
  // Both pay the 25us NVM metadata read; remote adds the RPC round trip.
  EXPECT_LT(t_local, 27_us);
  EXPECT_GT(t_remote, t_local + 3_us);  // 2 capsules + 1us server work
  EXPECT_EQ(client->lookups_local(), 1u);
  EXPECT_EQ(client->lookups_remote(), 1u);
}

TEST(OctoFs, MetadataServerSerializesConcurrentLookups) {
  OctoRig rig(2);
  // Stage several files on node 1; have 4 clients on node 0 look them up
  // at once: server work (1us each) serializes on node 1's metadata core.
  std::vector<std::string> names;
  for (int i = 0; names.size() < 8; ++i) {
    const std::string n = "s" + std::to_string(i);
    if (rig.fs.owner_of(n) == 1) {
      names.push_back(n);
      rig.stage(n, pattern(64));
    }
  }
  std::vector<std::unique_ptr<CpuCore>> cores;
  std::vector<std::unique_ptr<OctoFs::Client>> clients;
  for (int c = 0; c < 4; ++c) {
    cores.push_back(std::make_unique<CpuCore>(rig.sim, "c" + std::to_string(c)));
    clients.push_back(rig.fs.make_client(0, *cores.back()));
  }
  SimTime done = 0;
  int remaining = 4;
  for (int c = 0; c < 4; ++c) {
    rig.sim.spawn([](Simulator& s, OctoFs::Client& cl,
                     const std::vector<std::string>& ns, int idx, int& left,
                     SimTime& out) -> Task<void> {
      for (std::size_t k = 0; k < 2; ++k) {
        (void)co_await cl.open(ns[idx * 2 + k]);
      }
      if (--left == 0) out = s.now();
    }(rig.sim, *clients[c], names, c, remaining, done));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  // 8 lookups * 1us serialized server work is a hard lower bound beyond
  // the parallel wire time.
  EXPECT_GT(done, 8_us);
}

TEST(OctoFs, SmallReadDominatedByLatencyNotBandwidth) {
  OctoRig rig(2);
  std::string remote_name;
  for (int i = 0;; ++i) {
    const std::string n = "r" + std::to_string(i);
    if (rig.fs.owner_of(n) == 1) {
      remote_name = n;
      break;
    }
  }
  rig.stage(remote_name, pattern(512));
  CpuCore core(rig.sim, "client");
  auto client = rig.fs.make_client(0, core);
  dlsim::SimDuration t_read = 0;
  rig.sim.spawn([](Simulator& s, OctoFs::Client& c, std::string n,
                   dlsim::SimDuration& out) -> Task<void> {
    auto meta = co_await c.open(n);
    std::vector<std::byte> buf(512);
    const auto t0 = s.now();
    co_await c.read(*meta, buf);
    out = s.now() - t0;
  }(rig.sim, *client, remote_name, t_read));
  rig.sim.run();
  rig.sim.rethrow_failures();
  // Capsule + device (~11.8us) + return latency: ~15us for 512 B.
  EXPECT_GT(t_read, 13_us);
  EXPECT_LT(t_read, 20_us);
}

TEST(OctoFs, DuplicateStageThrows) {
  OctoRig rig(2);
  rig.stage("dup", pattern(10));
  auto p = rig.sim.spawn([](OctoFs& fs) -> Task<void> {
    std::vector<std::byte> d(10);
    co_await fs.stage_file("dup", d);
  }(rig.fs));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

TEST(OctoFs, ReadBufferTooSmallThrows) {
  OctoRig rig(2);
  rig.stage("big", pattern(1000));
  CpuCore core(rig.sim, "client");
  auto client = rig.fs.make_client(0, core);
  auto p = rig.sim.spawn([](OctoFs::Client& c) -> Task<void> {
    auto meta = co_await c.open("big");
    std::vector<std::byte> tiny(10);
    co_await c.read(*meta, tiny);
  }(*client));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

}  // namespace

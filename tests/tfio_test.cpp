// Tests for the TF-like input pipeline: batching, the bounded shuffle
// buffer (partial-shuffling semantics), framework cost charging, the
// shuffle-quality metric, and each FS-backed source end to end.

#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "octofs/octofs.hpp"
#include "osfs/ext4.hpp"
#include "sim/simulator.hpp"
#include "tfio/pipeline.hpp"
#include "tfio/sources.hpp"

namespace {

using dlfs::tfio::Element;
using dlfs::tfio::MiniBatch;
using dlfs::tfio::Pipeline;
using dlfs::tfio::Source;
using dlsim::CpuCore;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

/// In-memory source: elements 0..n-1 in order, no I/O.
class CountingSource final : public Source {
 public:
  explicit CountingSource(std::uint32_t n) : n_(n) {}
  dlsim::Task<std::optional<Element>> next() override {
    if (i_ >= n_) co_return std::nullopt;
    const auto id = i_++;
    co_return Element{id, id % 10, 100};
  }

 private:
  std::uint32_t n_;
  std::uint32_t i_ = 0;
};

TEST(Pipeline, BatchesElements) {
  Simulator sim;
  CpuCore core(sim, "train");
  Pipeline p(core, std::make_unique<CountingSource>(10),
             dlfs::FrameworkCosts{});
  p.batch(4);
  std::vector<std::size_t> batch_sizes;
  sim.spawn([](Pipeline& p, std::vector<std::size_t>& out) -> Task<void> {
    for (;;) {
      auto b = co_await p.next_batch();
      if (!b) break;
      out.push_back(b->elements.size());
    }
  }(p, batch_sizes));
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 2}));
  EXPECT_EQ(p.elements_delivered(), 10u);
}

TEST(Pipeline, FrameworkCostsCharged) {
  Simulator sim;
  CpuCore core(sim, "train");
  dlfs::FrameworkCosts costs;  // 2us/sample + 30us/batch
  Pipeline p(core, std::make_unique<CountingSource>(8), costs);
  p.batch(8);
  sim.spawn([](Pipeline& p) -> Task<void> {
    (void)co_await p.next_batch();
  }(p));
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(core.busy_ns(), 8 * 2000 + 30000u);
}

TEST(Pipeline, PrefetchOverlapsProductionWithTraining) {
  // dataset.prefetch(n): the framework stages run on a background core
  // while the trainer computes, so end-to-end time drops from the sum of
  // the two stages toward their max.
  auto run = [](std::size_t depth) {
    Simulator sim;
    CpuCore core(sim, "train");
    dlfs::FrameworkCosts costs;  // 2us/sample + 30us/batch = 46us per 8
    Pipeline p(core, std::make_unique<CountingSource>(64), costs);
    p.batch(8).prefetch(depth);
    std::uint64_t total = 0;
    sim.spawn([](Pipeline& p, CpuCore& core, std::uint64_t& n) -> Task<void> {
      for (;;) {
        auto b = co_await p.next_batch();
        if (!b) break;
        n += b->elements.size();
        co_await core.compute(50_us);  // the training step
      }
    }(p, core, total));
    sim.run();
    sim.rethrow_failures();
    EXPECT_EQ(total, 64u);
    return sim.now();
  };
  const auto serial = run(0);      // ~8 * (46 + 50) us
  const auto overlapped = run(2);  // ~46 + 8 * 50 us
  EXPECT_LT(overlapped + 300_us, serial);
}

TEST(Pipeline, PrefetchDeliversIdenticalBatches) {
  // The prefetch stage only changes *when* batches are produced, never
  // what they contain: same source + same shuffle seed => same order.
  auto collect = [](std::size_t depth) {
    Simulator sim;
    CpuCore core(sim, "train");
    Pipeline p(core, std::make_unique<CountingSource>(100),
               dlfs::FrameworkCosts{});
    p.shuffle(16, 7).batch(8).prefetch(depth);
    std::vector<std::uint32_t> ids;
    sim.spawn([](Pipeline& p, std::vector<std::uint32_t>& out) -> Task<void> {
      for (;;) {
        auto b = co_await p.next_batch();
        if (!b) break;
        for (const auto& e : b->elements) out.push_back(e.sample_id);
      }
    }(p, ids));
    sim.run();
    sim.rethrow_failures();
    return ids;
  };
  EXPECT_EQ(collect(0), collect(3));
}

TEST(Pipeline, UnboundedShuffleIsFullPermutation) {
  Simulator sim;
  CpuCore core(sim, "train");
  Pipeline p(core, std::make_unique<CountingSource>(100),
             dlfs::FrameworkCosts{});
  p.shuffle(100, 42).batch(100);
  std::vector<std::uint32_t> order;
  sim.spawn([](Pipeline& p, std::vector<std::uint32_t>& out) -> Task<void> {
    auto b = co_await p.next_batch();
    for (const auto& e : b->elements) out.push_back(e.sample_id);
  }(p, order));
  sim.run();
  sim.rethrow_failures();
  std::set<std::uint32_t> s(order.begin(), order.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_GT(dlfs::tfio::shuffle_quality(order), 0.5);
}

TEST(Pipeline, SmallShuffleBufferOnlyPartiallyShuffles) {
  // The §II-B observation: a small buffer keeps samples near their
  // source positions.
  auto run = [](std::size_t buffer) {
    Simulator sim;
    CpuCore core(sim, "train");
    Pipeline p(core, std::make_unique<CountingSource>(2000),
               dlfs::FrameworkCosts{});
    p.shuffle(buffer, 7).batch(2000);
    std::vector<std::uint32_t> order;
    sim.spawn([](Pipeline& p, std::vector<std::uint32_t>& out) -> Task<void> {
      auto b = co_await p.next_batch();
      for (const auto& e : b->elements) out.push_back(e.sample_id);
    }(p, order));
    sim.run();
    return dlfs::tfio::shuffle_quality(order);
  };
  const double q_small = run(16);
  const double q_large = run(2000);
  EXPECT_LT(q_small, 0.1);   // barely shuffled
  EXPECT_GT(q_large, 0.5);   // well shuffled
}

TEST(ShuffleQuality, IdentityIsZero) {
  std::vector<std::uint32_t> id(100);
  for (std::uint32_t i = 0; i < 100; ++i) id[i] = i;
  EXPECT_NEAR(dlfs::tfio::shuffle_quality(id), 0.0, 1e-9);
}

TEST(ShuffleQuality, ReversalIsHigh) {
  std::vector<std::uint32_t> rev(100);
  for (std::uint32_t i = 0; i < 100; ++i) rev[i] = 99 - i;
  EXPECT_GT(dlfs::tfio::shuffle_quality(rev), 1.0);
}

// ---------------------------------------------------------------------------
// FS-backed sources

TEST(Sources, DlfsSourceStreamsWholeEpoch) {
  Simulator sim;
  dlfs::cluster::NodeConfig nc;
  nc.synthetic_store = false;
  nc.device_capacity = 1_GiB;
  dlfs::cluster::Cluster cluster(sim, 1, nc);
  auto ds = dlfs::dataset::make_fixed_size_dataset(200, 2048);
  dlfs::cluster::Pfs pfs(sim, ds);
  dlfs::core::DlfsFleet fleet(cluster, pfs, ds, dlfs::core::DlfsConfig{});
  fleet.mount();

  CpuCore core(sim, "train");
  Pipeline p(core,
             std::make_unique<dlfs::tfio::DlfsSource>(
                 fleet.instance(0), /*epoch_seed=*/9, /*io_batch=*/32,
                 ds.max_sample_bytes()),
             dlfs::FrameworkCosts{});
  p.batch(32);
  std::set<std::uint32_t> seen;
  sim.spawn([](Pipeline& p, std::set<std::uint32_t>& out) -> Task<void> {
    for (;;) {
      auto b = co_await p.next_batch();
      if (!b) break;
      for (const auto& e : b->elements) out.insert(e.sample_id);
    }
  }(p, seen));
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(seen.size(), 200u);
}

TEST(Sources, OctoSourceReadsThroughDistributedFs) {
  Simulator sim;
  dlfs::cluster::NodeConfig nc;
  nc.synthetic_store = false;
  nc.device_capacity = 64_MiB;
  dlfs::cluster::Cluster cluster(sim, 2, nc);
  dlfs::octofs::OctoFs fs(cluster, dlfs::default_calibration());
  std::vector<dlfs::tfio::OctoSource::FileRef> refs;
  sim.spawn([](dlfs::octofs::OctoFs& fs,
               std::vector<dlfs::tfio::OctoSource::FileRef>& refs)
                -> Task<void> {
    std::vector<std::byte> data(800, std::byte{0x44});
    for (std::uint32_t i = 0; i < 12; ++i) {
      const std::string name = "o" + std::to_string(i);
      co_await fs.stage_file(name, data);
      refs.push_back({name, i, i % 3, 800});
    }
  }(fs, refs));
  sim.run();
  sim.rethrow_failures();

  CpuCore core(sim, "train");
  auto client = fs.make_client(0, core);
  Pipeline p(core,
             std::make_unique<dlfs::tfio::OctoSource>(*client, refs),
             dlfs::FrameworkCosts{});
  p.batch(5);
  std::size_t total = 0;
  sim.spawn([](Pipeline& p, std::size_t& n) -> Task<void> {
    for (;;) {
      auto b = co_await p.next_batch();
      if (!b) break;
      n += b->elements.size();
    }
  }(p, total));
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(total, 12u);
  EXPECT_GT(client->lookups_remote() + client->lookups_local(), 0u);
}

TEST(Sources, Ext4SourceReadsFiles) {
  Simulator sim;
  dlfs::hw::NvmeDevice dev(
      sim, "nvme0", std::make_unique<dlfs::hw::RamBackingStore>(256_MiB));
  dlfs::osfs::Ext4Fs fs(sim, dev, dlfs::default_calibration());
  CpuCore core(sim, "train");
  dlfs::osfs::OsThread thread(fs, core);
  // Stage 20 files.
  std::vector<dlfs::tfio::Ext4Source::FileRef> refs;
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               std::vector<dlfs::tfio::Ext4Source::FileRef>& refs)
                -> Task<void> {
    std::vector<std::byte> data(1000, std::byte{0x5a});
    for (std::uint32_t i = 0; i < 20; ++i) {
      const std::string path = "s" + std::to_string(i);
      const int fd = co_await fs.create(t, path);
      co_await fs.append(t, fd, data);
      co_await fs.close(t, fd);
      refs.push_back({path, i, i % 2, 1000});
    }
  }(fs, thread, refs));
  sim.run();
  sim.rethrow_failures();

  Pipeline p(core,
             std::make_unique<dlfs::tfio::Ext4Source>(fs, thread, refs),
             dlfs::FrameworkCosts{});
  p.batch(8);
  std::size_t total = 0;
  sim.spawn([](Pipeline& p, std::size_t& n) -> Task<void> {
    for (;;) {
      auto b = co_await p.next_batch();
      if (!b) break;
      n += b->elements.size();
    }
  }(p, total));
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(total, 20u);
  EXPECT_EQ(fs.opens(), 20u);
}

}  // namespace

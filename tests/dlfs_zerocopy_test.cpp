// Tests for zero-copy dlfs_bread (bread_views) — the paper's §III-C.2
// future-work item: samples delivered as views into resident huge-page
// data chunks, with pin/release lifetime rules.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

// Mirror of the pool's ASan gating (hugepage_pool.cpp): under ASan a
// released view's bytes are poisoned, so the stale-read test must query
// the poison state instead of dereferencing.
#if defined(__SANITIZE_ADDRESS__)
#define DLFS_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DLFS_TEST_ASAN 1
#endif
#endif
#if defined(DLFS_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace {

using dlfs::core::BatchingMode;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::core::ViewBatch;
using dlfs::core::ViewLease;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  DlfsFleet fleet;

  explicit Rig(std::size_t samples = 256, std::uint32_t bytes = 2000,
               BatchingMode mode = BatchingMode::kChunkLevel)
      : Rig(samples, bytes, cfg(mode)) {}

  Rig(std::size_t samples, std::uint32_t bytes, DlfsConfig c,
      std::vector<dlfs::hw::NodeId> client_nodes = {})
      : cluster(sim, 1, node_cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(samples, bytes)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, c, std::move(client_nodes)) {
    fleet.mount();
  }

  static dlfs::cluster::NodeConfig node_cfg() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 256_MiB;
    return nc;
  }
  static DlfsConfig cfg(BatchingMode mode) {
    DlfsConfig c;
    c.batching = mode;
    return c;
  }
};

bool view_matches(const dlfs::dataset::Dataset& ds,
                  const dlfs::core::ViewSample& vs) {
  std::vector<std::byte> got;
  for (const auto& p : vs.pieces) got.insert(got.end(), p.begin(), p.end());
  std::vector<std::byte> want(vs.len);
  ds.fill_content(vs.sample_id, 0, want);
  return got == want;
}

TEST(ZeroCopyBread, ViewsCarryExactContent) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);
  bool ok = true;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, bool& ok) -> Task<void> {
    ViewBatch b = co_await inst.bread_views(32);
    EXPECT_EQ(b.samples.size(), 32u);
    for (const auto& vs : b.samples) {
      if (!view_matches(r.ds, vs)) ok = false;
    }
    inst.release_views(b);
  }(rig, inst, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(ok);
}

TEST(ZeroCopyBread, EpochCoversDatasetExactly) {
  Rig rig(300, 1234);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(3);
  std::set<std::uint32_t> seen;
  bool ok = true;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, std::set<std::uint32_t>& s,
                   bool& ok) -> Task<void> {
    for (;;) {
      ViewBatch b = co_await inst.bread_views(17);
      if (b.end_of_epoch) break;
      for (const auto& vs : b.samples) {
        if (!s.insert(vs.sample_id).second) ok = false;
        if (!view_matches(r.ds, vs)) ok = false;
      }
      inst.release_views(b);
    }
  }(rig, inst, seen, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_TRUE(ok);
}

TEST(ZeroCopyBread, ChunksStayPinnedUntilRelease) {
  Rig rig(512, 512);  // one 256 KiB chunk holds the whole epoch
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    ViewBatch b1 = co_await inst.bread_views(32);
    const std::byte first = b1.samples[0].pieces[0][0];
    // Drain the rest of the epoch while b1 stays pinned: the shared chunk
    // must not be recycled underneath b1's views.
    for (;;) {
      ViewBatch b = co_await inst.bread_views(64);
      if (b.end_of_epoch) break;
      inst.release_views(b);
    }
    EXPECT_EQ(b1.samples[0].pieces[0][0], first);  // still readable
    inst.release_views(b1);
  }(inst));
  rig.sim.run();
  rig.sim.rethrow_failures();
}

TEST(ZeroCopyBread, DoubleReleaseThrows) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  auto p = rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    ViewBatch b = co_await inst.bread_views(8);
    inst.release_views(b);
    inst.release_views(b);  // boom
  }(inst));
  rig.sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

TEST(ZeroCopyBread, RequiresChunkMode) {
  Rig rig(64, 1000, BatchingMode::kSampleLevel);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  auto p = rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    (void)co_await inst.bread_views(8);
  }(inst));
  rig.sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

TEST(ZeroCopyBread, NewEpochWithPinnedBatchThrows) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  ViewBatch held;
  rig.sim.spawn([](DlfsInstance& inst, ViewBatch& out) -> Task<void> {
    out = co_await inst.bread_views(8);
  }(inst, held));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_THROW(inst.sequence(2), std::logic_error);
  inst.release_views(held);
  EXPECT_NO_THROW(inst.sequence(2));
}

TEST(ZeroCopyBread, EliminatesTheCopyStage) {
  // Zero-copy removes the copy stage: zero bytes memcpyed, zero
  // copy-thread CPU, and wall time no worse than the copying path (the
  // copies overlap I/O, so the win is CPU, not latency, at one device).
  struct Result {
    dlsim::SimDuration elapsed;
    std::uint64_t bytes_copied;
    dlsim::SimDuration copy_busy;
  };
  auto run = [](bool zero_copy) {
    Rig rig(2048, 2000);
    auto& inst = rig.fleet.instance(0);
    inst.sequence(5);
    const auto t0 = rig.sim.now();
    rig.sim.spawn([](DlfsInstance& inst, bool zc) -> Task<void> {
      std::vector<std::byte> arena(64 * 2000);
      for (;;) {
        if (zc) {
          ViewBatch b = co_await inst.bread_views(32);
          if (b.end_of_epoch) break;
          inst.release_views(b);
        } else {
          auto b = co_await inst.bread(32, arena);
          if (b.end_of_epoch) break;
        }
      }
    }(inst, zero_copy));
    rig.sim.run();
    rig.sim.rethrow_failures();
    return Result{rig.sim.now() - t0, inst.engine().bytes_copied(),
                  inst.engine().copy_busy_ns()};
  };
  const Result with_copy = run(false);
  const Result zero = run(true);
  EXPECT_EQ(zero.bytes_copied, 0u);
  EXPECT_EQ(zero.copy_busy, 0u);
  EXPECT_EQ(with_copy.bytes_copied, 2048u * 2000u);
  EXPECT_GT(with_copy.copy_busy, 0u);
  EXPECT_LE(zero.elapsed, with_copy.elapsed);
}

TEST(ZeroCopyBread, ViewLeaseReleasesOnScopeExitAndMove) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(11);
  rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    {
      ViewLease lease(inst, co_await inst.bread_views(8));
      EXPECT_TRUE(lease.held());
      EXPECT_GE(inst.stats().view_pins_active, 1u);
      // Moving transfers ownership: the source must not double-release.
      ViewLease moved(std::move(lease));
      EXPECT_FALSE(lease.held());
      EXPECT_TRUE(moved.held());
      EXPECT_EQ(moved.batch().samples.size(), 8u);
    }  // moved's destructor releases
    EXPECT_EQ(inst.stats().view_pins_active, 0u);
    // Explicit release is idempotent with the destructor.
    ViewLease again(inst, co_await inst.bread_views(8));
    again.release();
    EXPECT_FALSE(again.held());
    EXPECT_EQ(inst.stats().view_pins_active, 0u);
  }(inst));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(inst.stats().bytes_zero_copy, 16u * 2000u);
}

TEST(ZeroCopyBread, ViewsStayByteIdenticalUnderPoolPressure) {
  // 16-chunk dataset through an 8-chunk pool: chunks recycle mid-epoch
  // while the first batch stays pinned. Every batch must match the
  // dataset at handout time and the pinned batch must still match after
  // the churn — recycled chunks must never be ones a live view holds.
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  cfg.pool_bytes = 8ull * 256 * 1024;
  Rig rig(2048, 2000, cfg);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(13);
  bool ok = true;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, bool& ok) -> Task<void> {
    ViewBatch first = co_await inst.bread_views(32);
    for (;;) {
      ViewBatch b = co_await inst.bread_views(32);
      if (b.end_of_epoch) break;
      for (const auto& vs : b.samples) {
        if (!view_matches(r.ds, vs)) ok = false;
      }
      inst.release_views(b);
    }
    for (const auto& vs : first.samples) {
      if (!view_matches(r.ds, vs)) ok = false;
    }
    inst.release_views(first);
  }(rig, inst, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(ok);
}

TEST(ZeroCopyBread, LastReleaseRecyclesTheChunk) {
  Rig rig(512, 512);  // 512 * 512 B = exactly one 256 KiB chunk
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  std::size_t used_while_pinned = 0;
  rig.sim.spawn([](DlfsInstance& inst, std::size_t& used) -> Task<void> {
    ViewBatch b1 = co_await inst.bread_views(64);
    for (;;) {
      ViewBatch b = co_await inst.bread_views(128);
      if (b.end_of_epoch) break;
      inst.release_views(b);
    }
    // Whole epoch delivered, but b1 still pins the chunk.
    used = inst.pool().used_chunks();
    inst.release_views(b1);
  }(inst, used_while_pinned));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_GE(used_while_pinned, 1u);
  // The last release was the only remaining pin on a fully-delivered
  // unit: its chunk must be back on the free list.
  EXPECT_EQ(inst.pool().used_chunks(), 0u);
  EXPECT_EQ(inst.stats().view_pins_active, 0u);
}

TEST(ZeroCopyBread, UseAfterReleaseIsCaughtByScribble) {
  // scribble_on_free turns a stale view into detectable garbage: freed
  // chunks are 0xDD-filled (and ASan-poisoned when built with ASan, so
  // the same bug becomes a hard report instead of a wrong byte).
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  cfg.scribble_on_free = true;
  Rig rig(512, 512, cfg);  // one-chunk epoch, nothing realloc's after
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  const std::byte* stale = nullptr;
  rig.sim.spawn([](DlfsInstance& inst, const std::byte*& p) -> Task<void> {
    ViewBatch b1 = co_await inst.bread_views(64);
    p = b1.samples[0].pieces[0].data();
    EXPECT_NE(*p, std::byte{0xDD});  // live view reads real sample bytes
    for (;;) {
      ViewBatch b = co_await inst.bread_views(128);
      if (b.end_of_epoch) break;
      inst.release_views(b);
    }
    inst.release_views(b1);  // last pin: chunk freed and scribbled
  }(inst, stale));
  rig.sim.run();
  rig.sim.rethrow_failures();
  ASSERT_NE(stale, nullptr);
#if defined(DLFS_TEST_ASAN)
  EXPECT_NE(__asan_address_is_poisoned(stale), 0);
#else
  EXPECT_EQ(*stale, std::byte{0xDD});
#endif
}

TEST(ZeroCopyBread, CoLocatedInstancesCompleteWithPinnedUnits) {
  // Regression for the arbiter/pinned-unit budget: two instances share
  // one node, each double-buffering view batches (the previous batch
  // stays pinned across the next bread_views). Pinned chunks must count
  // against the read-ahead allowance — if they did not, top-ups sized
  // for the nominal pool would exhaust it and the epoch would die with
  // PoolExhausted instead of throttling.
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  cfg.prefetch.initial_units = 16;
  cfg.prefetch.max_units = 32;
  cfg.prefetch.shared_arbiter = true;
  cfg.pool_bytes = 24ull * 256 * 1024;
  Rig rig(2048, 2000, cfg, /*client_nodes=*/{0, 0});
  std::set<std::uint32_t> seen;
  for (std::uint32_t c = 0; c < 2; ++c) rig.fleet.instance(c).sequence(21);
  for (std::uint32_t c = 0; c < 2; ++c) {
    rig.sim.spawn([](DlfsInstance& inst,
                     std::set<std::uint32_t>& out) -> Task<void> {
      ViewLease prev;
      for (;;) {
        ViewBatch b = co_await inst.bread_views(32);
        if (b.end_of_epoch) break;
        for (const auto& vs : b.samples) out.insert(vs.sample_id);
        prev = ViewLease(inst, std::move(b));
      }
    }(rig.fleet.instance(c), seen));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(seen.size(), 2048u);
  for (std::uint32_t c = 0; c < 2; ++c) {
    EXPECT_EQ(rig.fleet.instance(c).stats().view_pins_active, 0u);
  }
}

// ---------------------------------------------------------------------------
// ZeroCopyMatrix — registered once per BatchingMode via DLFS_TEST_BATCHING
// (see tests/CMakeLists.txt): the copy path runs under the environment's
// mode, and its delivered bytes must be identical to what bread_views
// (always chunk-level) hands out as views.
// ---------------------------------------------------------------------------

BatchingMode mode_from_env() {
  const char* v = std::getenv("DLFS_TEST_BATCHING");
  if (v == nullptr) return BatchingMode::kChunkLevel;
  const std::string s(v);
  if (s == "none") return BatchingMode::kNone;
  if (s == "sample") return BatchingMode::kSampleLevel;
  return BatchingMode::kChunkLevel;
}

TEST(ZeroCopyMatrix, ViewsMatchCopyPathBytes) {
  std::map<std::uint32_t, std::vector<std::byte>> copied, viewed;
  {
    Rig rig(300, 1234, mode_from_env());
    auto& inst = rig.fleet.instance(0);
    inst.sequence(17);
    rig.sim.spawn(
        [](DlfsInstance& inst,
           std::map<std::uint32_t, std::vector<std::byte>>& out)
            -> Task<void> {
          std::vector<std::byte> arena(32 * 1234);
          for (;;) {
            auto b = co_await inst.bread(32, arena);
            if (b.end_of_epoch) break;
            for (const auto& s : b.samples) {
              out[s.sample_id].assign(
                  arena.begin() + s.offset_in_arena,
                  arena.begin() + s.offset_in_arena + s.len);
            }
          }
        }(inst, copied));
    rig.sim.run();
    rig.sim.rethrow_failures();
  }
  {
    Rig rig(300, 1234);  // bread_views requires chunk-level batching
    auto& inst = rig.fleet.instance(0);
    inst.sequence(17);
    rig.sim.spawn(
        [](DlfsInstance& inst,
           std::map<std::uint32_t, std::vector<std::byte>>& out)
            -> Task<void> {
          for (;;) {
            ViewBatch b = co_await inst.bread_views(32);
            if (b.end_of_epoch) break;
            for (const auto& vs : b.samples) {
              auto& dst = out[vs.sample_id];
              for (const auto& p : vs.pieces) {
                dst.insert(dst.end(), p.begin(), p.end());
              }
            }
            inst.release_views(b);
          }
        }(inst, viewed));
    rig.sim.run();
    rig.sim.rethrow_failures();
  }
  EXPECT_EQ(copied.size(), 300u);
  EXPECT_EQ(copied, viewed);
}

}  // namespace

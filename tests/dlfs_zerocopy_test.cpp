// Tests for zero-copy dlfs_bread (bread_views) — the paper's §III-C.2
// future-work item: samples delivered as views into resident huge-page
// data chunks, with pin/release lifetime rules.

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::core::BatchingMode;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::core::ViewBatch;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  DlfsFleet fleet;

  explicit Rig(std::size_t samples = 256, std::uint32_t bytes = 2000,
               BatchingMode mode = BatchingMode::kChunkLevel)
      : cluster(sim, 1, node_cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(samples, bytes)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg(mode)) {
    sim.spawn(fleet.mount_participant(0));
    sim.run();
    sim.rethrow_failures();
  }

  static dlfs::cluster::NodeConfig node_cfg() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 256_MiB;
    return nc;
  }
  static DlfsConfig cfg(BatchingMode mode) {
    DlfsConfig c;
    c.batching = mode;
    return c;
  }
};

bool view_matches(const dlfs::dataset::Dataset& ds,
                  const dlfs::core::ViewSample& vs) {
  std::vector<std::byte> got;
  for (const auto& p : vs.pieces) got.insert(got.end(), p.begin(), p.end());
  std::vector<std::byte> want(vs.len);
  ds.fill_content(vs.sample_id, 0, want);
  return got == want;
}

TEST(ZeroCopyBread, ViewsCarryExactContent) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);
  bool ok = true;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, bool& ok) -> Task<void> {
    ViewBatch b = co_await inst.bread_views(32);
    EXPECT_EQ(b.samples.size(), 32u);
    for (const auto& vs : b.samples) {
      if (!view_matches(r.ds, vs)) ok = false;
    }
    inst.release_views(b);
  }(rig, inst, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(ok);
}

TEST(ZeroCopyBread, EpochCoversDatasetExactly) {
  Rig rig(300, 1234);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(3);
  std::set<std::uint32_t> seen;
  bool ok = true;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, std::set<std::uint32_t>& s,
                   bool& ok) -> Task<void> {
    for (;;) {
      ViewBatch b = co_await inst.bread_views(17);
      if (b.end_of_epoch) break;
      for (const auto& vs : b.samples) {
        if (!s.insert(vs.sample_id).second) ok = false;
        if (!view_matches(r.ds, vs)) ok = false;
      }
      inst.release_views(b);
    }
  }(rig, inst, seen, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_TRUE(ok);
}

TEST(ZeroCopyBread, ChunksStayPinnedUntilRelease) {
  Rig rig(512, 512);  // one 256 KiB chunk holds the whole epoch
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    ViewBatch b1 = co_await inst.bread_views(32);
    const std::byte first = b1.samples[0].pieces[0][0];
    // Drain the rest of the epoch while b1 stays pinned: the shared chunk
    // must not be recycled underneath b1's views.
    for (;;) {
      ViewBatch b = co_await inst.bread_views(64);
      if (b.end_of_epoch) break;
      inst.release_views(b);
    }
    EXPECT_EQ(b1.samples[0].pieces[0][0], first);  // still readable
    inst.release_views(b1);
  }(inst));
  rig.sim.run();
  rig.sim.rethrow_failures();
}

TEST(ZeroCopyBread, DoubleReleaseThrows) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  auto p = rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    ViewBatch b = co_await inst.bread_views(8);
    inst.release_views(b);
    inst.release_views(b);  // boom
  }(inst));
  rig.sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

TEST(ZeroCopyBread, RequiresChunkMode) {
  Rig rig(64, 1000, BatchingMode::kSampleLevel);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  auto p = rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    (void)co_await inst.bread_views(8);
  }(inst));
  rig.sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

TEST(ZeroCopyBread, NewEpochWithPinnedBatchThrows) {
  Rig rig;
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  ViewBatch held;
  rig.sim.spawn([](DlfsInstance& inst, ViewBatch& out) -> Task<void> {
    out = co_await inst.bread_views(8);
  }(inst, held));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_THROW(inst.sequence(2), std::logic_error);
  inst.release_views(held);
  EXPECT_NO_THROW(inst.sequence(2));
}

TEST(ZeroCopyBread, EliminatesTheCopyStage) {
  // Zero-copy removes the copy stage: zero bytes memcpyed, zero
  // copy-thread CPU, and wall time no worse than the copying path (the
  // copies overlap I/O, so the win is CPU, not latency, at one device).
  struct Result {
    dlsim::SimDuration elapsed;
    std::uint64_t bytes_copied;
    dlsim::SimDuration copy_busy;
  };
  auto run = [](bool zero_copy) {
    Rig rig(2048, 2000);
    auto& inst = rig.fleet.instance(0);
    inst.sequence(5);
    const auto t0 = rig.sim.now();
    rig.sim.spawn([](DlfsInstance& inst, bool zc) -> Task<void> {
      std::vector<std::byte> arena(64 * 2000);
      for (;;) {
        if (zc) {
          ViewBatch b = co_await inst.bread_views(32);
          if (b.end_of_epoch) break;
          inst.release_views(b);
        } else {
          auto b = co_await inst.bread(32, arena);
          if (b.end_of_epoch) break;
        }
      }
    }(inst, zero_copy));
    rig.sim.run();
    rig.sim.rethrow_failures();
    return Result{rig.sim.now() - t0, inst.engine().bytes_copied(),
                  inst.engine().copy_busy_ns()};
  };
  const Result with_copy = run(false);
  const Result zero = run(true);
  EXPECT_EQ(zero.bytes_copied, 0u);
  EXPECT_EQ(zero.copy_busy, 0u);
  EXPECT_EQ(with_copy.bytes_copied, 2048u * 2000u);
  EXPECT_GT(with_copy.copy_busy, 0u);
  EXPECT_LE(zero.elapsed, with_copy.elapsed);
}

}  // namespace

// Tests for the DNN module: tensor ops against hand-computed values,
// MLP learning on separable data, gradient sanity, and the
// order-policy machinery behind the Fig. 13 experiment.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dnn/experiment.hpp"
#include "dnn/mlp.hpp"
#include "dnn/tensor.hpp"

namespace {

using dlfs::dnn::Matrix;
using dlfs::dnn::Mlp;
using dlfs::dnn::OrderPolicy;
using dlfs::dnn::SyntheticTask;
using dlfs::dnn::SyntheticTaskConfig;
using dlfs::dnn::TrainRunConfig;

// ---------------------------------------------------------------------------
// Tensor ops

TEST(Tensor, MatmulKnownValues) {
  Matrix a(2, 3), b(3, 2), out;
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  float av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data().begin());
  std::copy(bv, bv + 6, b.data().begin());
  dlfs::dnn::matmul(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154);
}

TEST(Tensor, MatmulTransposesConsistent) {
  // a * b == (a^T)^T * b; check matmul_at and matmul_bt against matmul.
  Matrix a(3, 4), b(4, 2);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    a.data()[i] = static_cast<float>(i) * 0.5f - 2.0f;
  }
  for (std::size_t i = 0; i < b.data().size(); ++i) {
    b.data()[i] = 1.0f - static_cast<float>(i) * 0.25f;
  }
  Matrix ref;
  dlfs::dnn::matmul(a, b, ref);

  // matmul_bt: a(3x4) * bT where bT is b transposed stored as (2x4).
  Matrix bt(2, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 2; ++c) bt.at(c, r) = b.at(r, c);
  }
  Matrix out_bt;
  dlfs::dnn::matmul_bt(a, bt, out_bt);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(out_bt.at(r, c), ref.at(r, c), 1e-5);
    }
  }

  // matmul_at: aT(4x3)^T * b == matmul_at(aT_storage=a? ) — build at.
  Matrix at(4, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) at.at(c, r) = a.at(r, c);
  }
  Matrix out_at;
  dlfs::dnn::matmul_at(at, b, out_at);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(out_at.at(r, c), ref.at(r, c), 1e-5);
    }
  }
}

TEST(Tensor, ReluAndBackward) {
  Matrix x(1, 4);
  float v[] = {-1, 0, 2, -3};
  std::copy(v, v + 4, x.data().begin());
  Matrix pre = x;
  dlfs::dnn::relu_inplace(x);
  EXPECT_FLOAT_EQ(x.at(0, 0), 0);
  EXPECT_FLOAT_EQ(x.at(0, 2), 2);
  Matrix g(1, 4);
  std::fill(g.data().begin(), g.data().end(), 1.0f);
  dlfs::dnn::relu_backward(pre, g);
  EXPECT_FLOAT_EQ(g.at(0, 0), 0);  // masked
  EXPECT_FLOAT_EQ(g.at(0, 2), 1);
}

TEST(Tensor, SoftmaxRowsSumToOne) {
  Matrix x(2, 3);
  float v[] = {1, 2, 3, 1000, 1000, 1000};  // second row tests stability
  std::copy(v, v + 6, x.data().begin());
  dlfs::dnn::softmax_rows(x);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += x.at(r, c);
      EXPECT_GE(x.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_GT(x.at(0, 2), x.at(0, 0));
  EXPECT_NEAR(x.at(1, 0), 1.0f / 3.0f, 1e-5);
}

TEST(Tensor, AddBiasRows) {
  Matrix x(2, 2);
  dlfs::dnn::add_bias_rows(x, {1.0f, -2.0f});
  EXPECT_FLOAT_EQ(x.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.at(1, 1), -2.0f);
}

// ---------------------------------------------------------------------------
// MLP

TEST(Mlp, LossDecreasesOnSeparableData) {
  // Two linearly separable blobs.
  Matrix x(64, 2);
  std::vector<std::uint32_t> y(64);
  dlfs::Rng rng(4);
  for (std::size_t i = 0; i < 64; ++i) {
    const bool pos = i % 2 == 0;
    y[i] = pos ? 1 : 0;
    x.at(i, 0) = (pos ? 2.0f : -2.0f) +
                 static_cast<float>(rng.next_gaussian() * 0.3);
    x.at(i, 1) = (pos ? 2.0f : -2.0f) +
                 static_cast<float>(rng.next_gaussian() * 0.3);
  }
  Mlp model({2, 8, 2}, 1);
  float first = 0, last = 0;
  for (int step = 0; step < 200; ++step) {
    const float loss = model.train_step(x, y, 0.1f);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.2f);
  EXPECT_GT(model.evaluate(x, y), 0.95);
}

TEST(Mlp, DeterministicGivenSeed) {
  Mlp a({4, 8, 3}, 7), b({4, 8, 3}, 7);
  Matrix x(2, 4);
  for (std::size_t i = 0; i < 8; ++i) {
    x.data()[i] = static_cast<float>(i) * 0.1f;
  }
  const Matrix pa = a.forward(x);
  const Matrix pb = b.forward(x);
  for (std::size_t i = 0; i < pa.data().size(); ++i) {
    EXPECT_FLOAT_EQ(pa.data()[i], pb.data()[i]);
  }
}

TEST(Mlp, RejectsBadConfig) {
  EXPECT_THROW(Mlp({4}, 1), std::invalid_argument);
}

TEST(Mlp, BatchLabelMismatchThrows) {
  Mlp model({2, 2}, 1);
  Matrix x(4, 2);
  std::vector<std::uint32_t> y(3);
  EXPECT_THROW(model.train_step(x, y, 0.1f), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Synthetic task & order policies

TEST(SyntheticTask, DeterministicAndLabelled) {
  SyntheticTaskConfig cfg;
  cfg.train_samples = 256;
  cfg.test_samples = 128;
  SyntheticTask a(cfg), b(cfg);
  EXPECT_EQ(a.train_y(), b.train_y());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_FLOAT_EQ(a.train_x().data()[i], b.train_x().data()[i]);
  }
  for (auto y : a.train_y()) EXPECT_LT(y, cfg.num_classes);
}

TEST(EpochOrder, FullRandomIsPermutation) {
  auto order = dlfs::dnn::epoch_order(OrderPolicy::kFullRandom, 1000, 5, 512);
  std::set<std::uint32_t> s(order.begin(), order.end());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(EpochOrder, DlfsChunkedIsChunkGranular) {
  auto order = dlfs::dnn::epoch_order(OrderPolicy::kDlfsChunked, 2048, 5, 512);
  std::set<std::uint32_t> s(order.begin(), order.end());
  EXPECT_EQ(s.size(), 2048u);  // still a permutation overall
  // Sequential runs within chunks of 512.
  int sequential_steps = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] == order[i - 1] + 1) ++sequential_steps;
  }
  // 4 chunks of 512 => ~511*4 sequential steps out of 2047.
  EXPECT_GT(sequential_steps, 2000);
  // But chunk order differs from sequential overall (shuffled chunks).
  auto seq = dlfs::dnn::epoch_order(OrderPolicy::kSequential, 2048, 5, 512);
  EXPECT_NE(order, seq);
}

TEST(EpochOrder, DifferentEpochSeedsDiffer) {
  auto a = dlfs::dnn::epoch_order(OrderPolicy::kFullRandom, 100, 1, 512);
  auto b = dlfs::dnn::epoch_order(OrderPolicy::kFullRandom, 100, 2, 512);
  EXPECT_NE(a, b);
}

TEST(TrainWithOrder, DlfsOrderMatchesFullRandomAccuracy) {
  // The Fig. 13 claim, in miniature: chunk-relaxed order converges to the
  // same accuracy as full randomization.
  SyntheticTaskConfig tcfg;
  tcfg.train_samples = 2048;
  tcfg.test_samples = 512;
  SyntheticTask task(tcfg);
  TrainRunConfig rcfg;
  rcfg.epochs = 10;
  auto full = dlfs::dnn::train_with_order(task, OrderPolicy::kFullRandom, rcfg);
  auto dlfs_run =
      dlfs::dnn::train_with_order(task, OrderPolicy::kDlfsChunked, rcfg);
  EXPECT_GT(full.final_accuracy(), 0.5);  // the task is learnable
  EXPECT_NEAR(full.final_accuracy(), dlfs_run.final_accuracy(), 0.05);
}

}  // namespace

// Tests for common utilities: units, hashing, RNG, statistics, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace {

using namespace dlfs::byte_literals;

TEST(Units, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648ull);
  EXPECT_EQ(512_B, 512u);
}

TEST(Units, Rounding) {
  EXPECT_EQ(dlfs::round_up(1, 4096), 4096u);
  EXPECT_EQ(dlfs::round_up(4096, 4096), 4096u);
  EXPECT_EQ(dlfs::round_up(4097, 4096), 8192u);
  EXPECT_EQ(dlfs::round_up(0, 4096), 0u);
  EXPECT_EQ(dlfs::round_down(4097, 4096), 4096u);
  EXPECT_EQ(dlfs::ceil_div(10, 3), 4u);
  EXPECT_EQ(dlfs::ceil_div(9, 3), 3u);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(dlfs::format_bytes(512), "512 B");
  EXPECT_EQ(dlfs::format_bytes(4096), "4 KiB");
  EXPECT_EQ(dlfs::format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(dlfs::format_bytes(1_MiB), "1 MiB");
}

TEST(Hash, DeterministicAndDispersed) {
  EXPECT_EQ(dlfs::hash64("sample_000001"), dlfs::hash64("sample_000001"));
  EXPECT_NE(dlfs::hash64("sample_000001"), dlfs::hash64("sample_000002"));
  // 48-bit truncation must still disperse: no collisions among 100k keys.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100000; ++i) {
    const auto k = dlfs::hash64("file_" + std::to_string(i)) &
                   ((1ull << 48) - 1);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hash, Mix64AvoidsFixedPointZero) {
  EXPECT_NE(dlfs::mix64(0), 0u);
  EXPECT_NE(dlfs::mix64(1), dlfs::mix64(2));
}

TEST(Rng, DeterministicSequence) {
  dlfs::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  dlfs::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  dlfs::Rng rng(7);
  std::array<int, 10> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% of expected
  }
}

TEST(Rng, NextBelowZeroAndOne) {
  dlfs::Rng rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  dlfs::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  dlfs::Rng rng(123);
  dlfs::Summary s;
  for (int i = 0; i < 200000; ++i) s.add(rng.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalMedian) {
  // Median of lognormal(mu, sigma) is exp(mu).
  dlfs::Rng rng(321);
  dlfs::Percentiles p;
  for (int i = 0; i < 100000; ++i) p.add(rng.next_lognormal(3.0, 0.8));
  EXPECT_NEAR(p.median(), std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(Rng, PermutationIsBijective) {
  dlfs::Rng rng(5);
  auto p = rng.permutation(1000);
  std::set<std::uint64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(Rng, ShuffleIsSeedDeterministic) {
  dlfs::Rng a(99), b(99);
  auto pa = a.permutation(500);
  auto pb = b.permutation(500);
  EXPECT_EQ(pa, pb);
}

TEST(Summary, BasicMoments) {
  dlfs::Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Summary, Empty) {
  dlfs::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Percentiles, ExactValues) {
  dlfs::Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
  EXPECT_NEAR(p.median(), 50.5, 0.5);
  EXPECT_NEAR(p.percentile(75), 75.25, 0.5);
}

TEST(Histogram, BucketsAndCdf) {
  auto h = dlfs::Histogram::pow2(1.0, 16.0);  // 1,2,4,8,16
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  h.add(16.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.cdf(2.0), 0.5, 1e-9);
  EXPECT_NEAR(h.cdf(16.0), 1.0, 1e-9);
  EXPECT_NEAR(h.cdf(1e9), 1.0, 1e-9);
}

TEST(Table, RendersAlignedColumns) {
  dlfs::Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "123.45"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("123.45"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(dlfs::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(dlfs::Table::integer(42), "42");
}

}  // namespace

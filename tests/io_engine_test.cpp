// Direct unit tests for the DLFS I/O engine: request splitting at chunk
// granularity, huge-page pool backpressure, multi-target batches,
// queue-depth pipelining, SCQ copy threads, cache interaction, and
// parameterized sweeps over (sample size x chunk size).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>

#include "common/units.hpp"
#include "dlfs/io_engine.hpp"
#include "hw/nvme/backing_store.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "mem/hugepage_pool.hpp"
#include "sim/simulator.hpp"
#include "spdk/nvme_driver.hpp"

namespace {

using dlfs::core::IoEngine;
using dlfs::core::IoEngineConfig;
using dlfs::core::ReadExtent;
using dlfs::core::SampleCache;
using dlfs::hw::NvmeDevice;
using dlfs::hw::SyntheticBackingStore;
using dlfs::mem::HugePagePool;
using dlsim::CpuCore;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

struct EngineRig {
  Simulator sim;
  HugePagePool pool;
  SampleCache cache;
  std::vector<std::unique_ptr<NvmeDevice>> devices;
  std::unique_ptr<dlfs::spdk::NvmeDriver> driver;
  std::unique_ptr<IoEngine> engine;
  CpuCore core{sim, "io"};

  explicit EngineRig(IoEngineConfig cfg = IoEngineConfig{},
                     std::size_t num_devices = 1,
                     std::size_t pool_chunks = 64)
      : pool(pool_chunks * cfg.chunk_bytes, cfg.chunk_bytes),
        cache(pool, 16, 1000) {
    driver = std::make_unique<dlfs::spdk::NvmeDriver>(sim, pool);
    engine = std::make_unique<IoEngine>(sim, pool, cache,
                                        dlfs::default_calibration(), cfg);
    for (std::size_t d = 0; d < num_devices; ++d) {
      devices.push_back(std::make_unique<NvmeDevice>(
          sim, "nvme" + std::to_string(d),
          std::make_unique<SyntheticBackingStore>(1_GiB, 100 + d)));
      driver->attach(*devices.back());
      engine->attach_target(static_cast<std::uint16_t>(d),
                            driver->create_io_queue(*devices.back()));
    }
  }

  void read(std::vector<ReadExtent> extents) {
    sim.spawn([](IoEngine& e, CpuCore& c,
                 std::vector<ReadExtent> xs) -> Task<void> {
      co_await e.read_extents(c, std::move(xs));
    }(*engine, core, std::move(extents)));
    sim.run();
    sim.rethrow_failures();
  }
};

TEST(IoEngine, SingleExtentCopiesExactBytes) {
  EngineRig rig;
  std::vector<std::byte> dst(10000), want(10000);
  rig.devices[0]->store().read(4096, want);
  rig.read({ReadExtent{0, 4096, 10000, dst.data(), std::nullopt, nullptr}});
  EXPECT_EQ(std::memcmp(dst.data(), want.data(), want.size()), 0);
}

TEST(IoEngine, LargeExtentSplitsIntoChunkRequests) {
  EngineRig rig;
  std::vector<std::byte> dst(1_MiB);
  rig.read({ReadExtent{0, 0, 1_MiB, dst.data(), std::nullopt, nullptr}});
  // 1 MiB at 256 KiB chunks = 4 requests.
  EXPECT_EQ(rig.engine->requests_posted(), 4u);
  EXPECT_EQ(rig.engine->completions_harvested(), 4u);
  EXPECT_EQ(rig.engine->bytes_copied(), 1_MiB);
}

TEST(IoEngine, PoolBackpressureStillCompletes) {
  // 12 extents of one chunk each with only 2 pool chunks: posting must
  // stall on the pool and recycle buffers as copies finish.
  IoEngineConfig cfg;
  EngineRig rig(cfg, 1, /*pool_chunks=*/2);
  std::vector<std::vector<std::byte>> dsts(12,
                                           std::vector<std::byte>(64_KiB));
  std::vector<ReadExtent> xs;
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    xs.push_back(ReadExtent{0, i * 64_KiB, 64_KiB, dsts[i].data(),
                            std::nullopt, nullptr});
  }
  rig.read(std::move(xs));
  EXPECT_EQ(rig.engine->bytes_copied(), 12 * 64_KiB);
  EXPECT_EQ(rig.pool.used_chunks(), 0u);  // everything returned
}

TEST(IoEngine, CacheYieldsChunksUnderPoolPressure) {
  // A cache big enough to absorb the whole pool must evict LRU entries
  // when new reads need DMA chunks (regression test for a livelock where
  // the posting loop waited forever on a pool the cache had swallowed).
  IoEngineConfig cfg;
  EngineRig rig(cfg, 1, /*pool_chunks=*/4);
  // rig.cache capacity is 16 chunks > 4 pool chunks.
  std::vector<std::byte> dst(4096);
  for (std::size_t id = 0; id < 10; ++id) {
    rig.sim.spawn([](IoEngine& e, CpuCore& c, std::byte* d,
                     std::size_t id) -> Task<void> {
      std::vector<ReadExtent> xs = {
          ReadExtent{0, id * 4096, 4096, d, id, nullptr}};
      co_await e.read_extents(c, std::move(xs));
    }(*rig.engine, rig.core, dst.data(), id));
    rig.sim.run();
    rig.sim.rethrow_failures();
  }
  // All ten reads completed; the cache holds at most what the pool allows.
  EXPECT_LE(rig.cache.resident_chunks(), 4u);
  EXPECT_GT(rig.cache.resident_samples(), 0u);
}

TEST(IoEngine, MultiTargetBatchReadsInParallel) {
  EngineRig rig(IoEngineConfig{}, /*num_devices=*/4);
  std::vector<std::vector<std::byte>> dsts(4, std::vector<std::byte>(128_KiB));
  std::vector<ReadExtent> xs;
  for (std::uint16_t d = 0; d < 4; ++d) {
    xs.push_back(ReadExtent{d, 0, 128_KiB, dsts[d].data(), std::nullopt,
                            nullptr});
  }
  const auto t0 = rig.sim.now();
  rig.read(std::move(xs));
  const auto elapsed = rig.sim.now() - t0;
  // Four devices in parallel: roughly one device's 128 KiB time (~62us)
  // plus copy; far below 4x serial.
  EXPECT_LT(elapsed, 150_us);
  for (std::uint16_t d = 0; d < 4; ++d) {
    EXPECT_EQ(rig.devices[d]->bytes_read(), 128_KiB);
  }
}

TEST(IoEngine, QueueDepthPipelinesOneTarget) {
  EngineRig rig;
  constexpr std::size_t kN = 32;
  std::vector<std::vector<std::byte>> dsts(kN, std::vector<std::byte>(4096));
  std::vector<ReadExtent> xs;
  for (std::size_t i = 0; i < kN; ++i) {
    xs.push_back(ReadExtent{0, i * 4096, 4096, dsts[i].data(), std::nullopt,
                            nullptr});
  }
  const auto t0 = rig.sim.now();
  rig.read(std::move(xs));
  const auto elapsed = rig.sim.now() - t0;
  // Pipelined 4 KiB commands: ~1.8us occupancy each + one latency tail,
  // not 32 sequential 11.8us round trips (~380us).
  EXPECT_LT(elapsed, 120_us);
}

TEST(IoEngine, BuffersHandedOverWhenDstIsNull) {
  EngineRig rig;
  std::vector<dlfs::mem::DmaBuffer> buffers;
  rig.read({ReadExtent{0, 0, 600 * 1024, nullptr, std::nullopt, &buffers}});
  ASSERT_EQ(buffers.size(), 3u);  // ceil(600K / 256K)
  std::vector<std::byte> want(256_KiB);
  rig.devices[0]->store().read(0, want);
  EXPECT_EQ(std::memcmp(buffers[0].data(), want.data(), want.size()), 0);
}

TEST(IoEngine, OnBuffersReadyFiresBeforeBatchEnd) {
  // Two extents on one device: the first completes first; its hook must
  // fire while the second is still outstanding.
  EngineRig rig;
  std::vector<dlfs::mem::DmaBuffer> b1, b2;
  bool hook_fired_early = false;
  std::vector<ReadExtent> xs(2);
  xs[0] = ReadExtent{0, 0, 256_KiB, nullptr, std::nullopt, &b1, {}};
  xs[1] = ReadExtent{0, 1_MiB, 256_KiB, nullptr, std::nullopt, &b2, {}};
  xs[0].on_buffers_ready = [&] {
    hook_fired_early = b2.empty();  // second extent not yet delivered
  };
  rig.read(std::move(xs));
  EXPECT_TRUE(hook_fired_early);
  EXPECT_EQ(b1.size(), 1u);
  EXPECT_EQ(b2.size(), 1u);
}

TEST(IoEngine, CacheInsertionSetsVBit) {
  EngineRig rig;
  std::vector<std::byte> dst(4096);
  rig.read({ReadExtent{0, 0, 4096, dst.data(), /*cache_sample_id=*/7,
                       nullptr}});
  EXPECT_TRUE(rig.cache.valid(7));
  auto views = rig.cache.pin(7);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].size(), 4096u);
  rig.cache.unpin(7);
}

TEST(IoEngine, CopyThreadsAccrueBusyTime) {
  IoEngineConfig cfg;
  cfg.copy_threads = 2;
  EngineRig rig(cfg);
  std::vector<std::byte> dst(1_MiB);
  rig.read({ReadExtent{0, 0, 1_MiB, dst.data(), std::nullopt, nullptr}});
  // 1 MiB at 8 GB/s ~= 131us of copy time across the pool.
  EXPECT_GT(rig.engine->copy_busy_ns(), 100_us);
}

TEST(IoEngine, InlineCopyChargesCallerCore) {
  IoEngineConfig cfg;
  cfg.copy_threads = 0;
  EngineRig rig(cfg);
  std::vector<std::byte> dst(1_MiB);
  const auto busy0 = rig.core.busy_ns();
  rig.read({ReadExtent{0, 0, 1_MiB, dst.data(), std::nullopt, nullptr}});
  EXPECT_GT(rig.core.busy_ns() - busy0, 100_us);
  EXPECT_EQ(rig.engine->copy_busy_ns(), 0u);
}

TEST(IoEngine, UnknownTargetThrows) {
  EngineRig rig;
  std::vector<std::byte> dst(512);
  auto p = rig.sim.spawn([](IoEngine& e, CpuCore& c,
                            std::byte* d) -> Task<void> {
    std::vector<ReadExtent> xs = {
        ReadExtent{9, 0, 512, d, std::nullopt, nullptr}};
    co_await e.read_extents(c, std::move(xs));
  }(*rig.engine, rig.core, dst.data()));
  rig.sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

TEST(IoEngine, EmptyBatchIsNoop) {
  EngineRig rig;
  rig.read({});
  EXPECT_EQ(rig.engine->requests_posted(), 0u);
}

// Parameterized sweep: every (sample size, chunk size) combination must
// deliver exact bytes and account the right request count.
class EngineSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(EngineSweep, ExactBytesAndRequestAccounting) {
  const auto [len, chunk] = GetParam();
  IoEngineConfig cfg;
  cfg.chunk_bytes = chunk;
  EngineRig rig(cfg, 1, /*pool_chunks=*/256);
  std::vector<std::byte> dst(len), want(len);
  rig.devices[0]->store().read(12345, want);
  rig.read({ReadExtent{0, 12345, len, dst.data(), std::nullopt, nullptr}});
  EXPECT_EQ(std::memcmp(dst.data(), want.data(), len), 0);
  EXPECT_EQ(rig.engine->requests_posted(), dlfs::ceil_div(len, chunk));
  EXPECT_EQ(rig.engine->bytes_copied(), len);
  EXPECT_EQ(rig.pool.used_chunks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EngineSweep,
    ::testing::Combine(::testing::Values(512u, 4096u, 65536u, 300000u,
                                         1048576u),
                       ::testing::Values(64_KiB, 256_KiB, 1_MiB)));

}  // namespace

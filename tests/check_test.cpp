// Expected-diagnostic fixtures for the dynamic concurrency checkers
// (sim/check.hpp). A deliberate A-B lock-order inversion must raise
// PotentialDeadlockError naming both tasks and both acquisition sites,
// and overlapping Checked<T> access slices from two tasks must raise
// DataRaceError. The tests pin the diagnostics' *content*, not just
// their type — the point of the checkers is that the report identifies
// the culprit sites without a debugger.

#include <gtest/gtest.h>

#include <string>

#include "sim/check.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace {

using dlsim::AccessLedger;
using dlsim::AccessSlice;
using dlsim::Checked;
using dlsim::DataRaceError;
using dlsim::Mutex;
using dlsim::PotentialDeadlockError;
using dlsim::Process;
using dlsim::Simulator;
using dlsim::Task;

// Coroutine params are pointers, not references: corolint's CL001 flags
// reference params on coroutines (the GCC 12 frame-miscompile hazard).
Task<void> lock_in_order(Simulator* sim, Mutex* first, Mutex* second,
                         dlsim::SimDuration hold) {
  co_await first->lock();
  co_await sim->delay(hold);
  co_await second->lock();
  second->unlock();
  first->unlock();
}

TEST(LockOrderGraph, AbInversionRaisesPotentialDeadlock) {
  Simulator sim;
  Mutex a(sim, "mutex-A");
  Mutex b(sim, "mutex-B");
  // task-ab: A at t=0, then B at t=10 (records the ordering A -> B).
  Process p1 = sim.spawn(lock_in_order(&sim, &a, &b, 10), "task-ab");
  // task-ba: B at t=5, then A at t=15 — the inverted order. The attempt
  // on A closes the cycle and must throw *at the attempt*, before the
  // schedule actually deadlocks.
  Process p2 = sim.spawn(lock_in_order(&sim, &b, &a, 10), "task-ba");
  // task-ba starts at t=0 too; stagger it so B is taken after A.
  // (Spawn order alone already serializes the first locks at t=0; the
  // delays inside lock_in_order provide the interleaving.)
  sim.run(/*allow_blocked=*/true);  // task-ab stays parked on B forever

  ASSERT_TRUE(p2.failed());
  try {
    p2.rethrow();
    FAIL() << "expected PotentialDeadlockError";
  } catch (const PotentialDeadlockError& e) {
    const std::string msg = e.what();
    // Both tasks are named...
    EXPECT_NE(msg.find("task-ba"), std::string::npos) << msg;
    EXPECT_NE(msg.find("task-ab"), std::string::npos) << msg;
    // ...both mutexes are named...
    EXPECT_NE(msg.find("mutex-A"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mutex-B"), std::string::npos) << msg;
    // ...and both conflicting acquisition sites are in this file.
    std::size_t sites = 0;
    for (std::size_t pos = msg.find("check_test.cpp");
         pos != std::string::npos; pos = msg.find("check_test.cpp", pos + 1)) {
      ++sites;
    }
    EXPECT_GE(sites, 2u) << msg;
  }
  EXPECT_FALSE(p1.failed());
}

TEST(LockOrderGraph, ConsistentOrderDoesNotFire) {
  Simulator sim;
  Mutex a(sim, "mutex-A");
  Mutex b(sim, "mutex-B");
  // Both tasks take A then B; they contend but never invert.
  Process p1 = sim.spawn(lock_in_order(&sim, &a, &b, 10), "task-1");
  Process p2 = sim.spawn(lock_in_order(&sim, &a, &b, 10), "task-2");
  sim.run();
  EXPECT_FALSE(p1.failed());
  EXPECT_FALSE(p2.failed());
  EXPECT_GE(sim.lock_graph().edge_count(), 1u);  // A -> B was recorded
}

TEST(LockOrderGraph, ReacquireAfterReleaseIsNotAnInversion) {
  Simulator sim;
  Mutex a(sim, "mutex-A");
  Mutex b(sim, "mutex-B");
  Process p = sim.spawn(
      [](Simulator* s, Mutex* ma, Mutex* mb) -> Task<void> {
        // A -> B with A released before B: no "held while acquiring"
        // edge, so the later B -> A order is legal.
        co_await ma->lock();
        ma->unlock();
        co_await mb->lock();
        co_await s->delay(1);
        co_await ma->lock();  // holds B, takes A: records B -> A only
        ma->unlock();
        mb->unlock();
      }(&sim, &a, &b),
      "task-release");
  sim.run();
  EXPECT_FALSE(p.failed());
}

TEST(CheckedState, CrossTaskOverlapWithWriteRaisesDataRace) {
  Simulator sim;
  Checked<int> shared{"shared-counter", 0};
  // writer holds a write guard across a suspension point — the exact
  // hazard the ledger exists to catch.
  Process w = sim.spawn(
      [](Simulator* s, Checked<int>* c) -> Task<void> {
        auto g = c->write();
        co_await s->delay(10);
        *g = 1;
      }(&sim, &shared),
      "writer");
  // reader touches the state at t=5, inside the writer's slice.
  Process r = sim.spawn(
      [](Simulator* s, Checked<int>* c) -> Task<void> {
        co_await s->delay(5);
        auto g = c->read();
        (void)*g;
      }(&sim, &shared),
      "reader");
  sim.run();

  EXPECT_FALSE(w.failed());
  ASSERT_TRUE(r.failed());
  try {
    r.rethrow();
    FAIL() << "expected DataRaceError";
  } catch (const DataRaceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shared-counter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("writer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reader"), std::string::npos) << msg;
    EXPECT_NE(msg.find("suspension point"), std::string::npos) << msg;
    EXPECT_NE(msg.find("check_test.cpp"), std::string::npos) << msg;
  }
}

TEST(CheckedState, ReadReadOverlapIsAllowed) {
  Simulator sim;
  Checked<int> shared{"ro-state", 7};
  int seen1 = 0;
  int seen2 = 0;
  Process r1 = sim.spawn(
      [](Simulator* s, Checked<int>* c, int* out) -> Task<void> {
        auto g = c->read();
        co_await s->delay(10);
        *out = *g;
      }(&sim, &shared, &seen1),
      "reader-1");
  Process r2 = sim.spawn(
      [](Simulator* s, Checked<int>* c, int* out) -> Task<void> {
        co_await s->delay(5);
        auto g = c->read();
        *out = *g;
      }(&sim, &shared, &seen2),
      "reader-2");
  sim.run();
  EXPECT_FALSE(r1.failed());
  EXPECT_FALSE(r2.failed());
  EXPECT_EQ(seen1, 7);
  EXPECT_EQ(seen2, 7);
}

TEST(CheckedState, SameTaskNestedGuardsAreAllowed) {
  Simulator sim;
  Checked<int> shared{"nested", 0};
  Process p = sim.spawn(
      [](Simulator* s, Checked<int>* c) -> Task<void> {
        co_await s->yield();
        auto outer = c->write();
        auto inner = c->read();  // same task: never a conflict
        *outer = *inner + 1;
      }(&sim, &shared),
      "nester");
  sim.run();
  EXPECT_FALSE(p.failed());
  EXPECT_EQ(shared.live_accesses(), 0u);
}

TEST(CheckedState, SequentialSlicesAreAllowed) {
  Simulator sim;
  Checked<int> shared{"sequential", 0};
  auto bump = [](Simulator* s, Checked<int>* c) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      {
        auto g = c->write();
        *g += 1;
      }  // guard closed before suspending: the legal pattern
      co_await s->delay(1);
    }
  };
  Process p1 = sim.spawn(bump(&sim, &shared), "bumper-1");
  Process p2 = sim.spawn(bump(&sim, &shared), "bumper-2");
  sim.run();
  EXPECT_FALSE(p1.failed());
  EXPECT_FALSE(p2.failed());
  EXPECT_EQ(*shared.read(), 6);
}

TEST(AccessSlice, StaticCl005FindingIsARealRuntimeRace) {
  // Companion to dlfslint's CL005 (AccessSlice live across co_await):
  // this coroutine is the exact shape the static scanner flags — the
  // DLFSLINT-ALLOW marker below suppresses that finding — and the
  // dynamic ledger proves the hazard is real: a second task touching
  // the ledger inside the suspended slice raises DataRaceError.
  Simulator sim;
  AccessLedger ledger{"cl005-shape"};
  Process holder = sim.spawn(
      [](Simulator* s, AccessLedger* l) -> Task<void> {
        AccessSlice slice{*l, /*write=*/true};
        co_await s->yield();  // DLFSLINT-ALLOW: CL005
        co_await s->delay(20);
      }(&sim, &ledger),
      "cl005-holder");
  Process prober = sim.spawn(
      [](Simulator* s, AccessLedger* l) -> Task<void> {
        co_await s->delay(10);
        AccessSlice slice{*l, /*write=*/true};
      }(&sim, &ledger),
      "cl005-prober");
  sim.run();
  EXPECT_FALSE(holder.failed());
  ASSERT_TRUE(prober.failed());
  try {
    prober.rethrow();
    FAIL() << "expected DataRaceError";
  } catch (const DataRaceError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cl005-shape"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cl005-holder"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cl005-prober"), std::string::npos) << msg;
  }
}

TEST(AccessSlice, WholeMethodAnnotationConflictsAcrossTasks) {
  // The AccessSlice helper used by SampleCache / RemoteIoQueue /
  // IoEngine: a slice held across a suspension conflicts with any other
  // task's slice on the same ledger.
  Simulator sim;
  AccessLedger ledger{"annotated-struct"};
  Process bad = sim.spawn(
      [](Simulator* s, AccessLedger* l) -> Task<void> {
        AccessSlice slice{*l, /*write=*/true};
        co_await s->delay(10);  // DLFSLINT-ALLOW: CL005
      }(&sim, &ledger),
      "holder");
  Process victim = sim.spawn(
      [](Simulator* s, AccessLedger* l) -> Task<void> {
        co_await s->delay(5);
        AccessSlice slice{*l, /*write=*/false};
      }(&sim, &ledger),
      "toucher");
  sim.run();
  EXPECT_FALSE(bad.failed());
  ASSERT_TRUE(victim.failed());
  EXPECT_THROW(victim.rethrow(), DataRaceError);
}

}  // namespace

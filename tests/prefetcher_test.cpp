// Tests for the asynchronous epoch-aware prefetcher: warm-window breads
// must not stall (chunk and sample-level alike), the adaptive window must
// shrink under pool pressure, epoch end must drain every pool chunk, the
// record-file streaming order must warm open_file() reads, co-located
// instances must share one node's read-ahead budget through the arbiter,
// and turning the prefetcher on or off must never change what an epoch
// delivers — only when. The PrefetcherMatrix suite is mode-agnostic: the
// ctest registration runs it once per BatchingMode via DLFS_TEST_BATCHING.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dataset/record_file.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::cluster::Cluster;
using dlfs::cluster::NodeConfig;
using dlfs::cluster::Pfs;
using dlfs::core::BatchingMode;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::dataset::Dataset;
using dlsim::CpuCore;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  Cluster cluster;
  Dataset ds;
  Pfs pfs;
  DlfsFleet fleet;

  Rig(Dataset dataset, DlfsConfig cfg, std::uint32_t nodes = 1,
      std::vector<dlfs::hw::NodeId> client_nodes = {},
      std::vector<dlfs::hw::NodeId> storage_nodes = {})
      : cluster(sim, nodes, make_node_config()),
        ds(std::move(dataset)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg, std::move(client_nodes),
              std::move(storage_nodes)) {}

  static NodeConfig make_node_config() {
    NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 1_GiB;
    return nc;
  }

  void mount() {
    fleet.mount();
    ASSERT_TRUE(fleet.mounted());
  }
};

DlfsConfig chunk_cfg() {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  return cfg;
}

DlfsConfig sample_cfg() {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kSampleLevel;
  return cfg;
}

/// The ctest matrix registers the PrefetcherMatrix suite once per
/// BatchingMode through this environment variable; unset means chunk.
BatchingMode mode_from_env() {
  const char* v = std::getenv("DLFS_TEST_BATCHING");
  if (v == nullptr) return BatchingMode::kChunkLevel;
  const std::string s(v);
  if (s == "none") return BatchingMode::kNone;
  if (s == "sample") return BatchingMode::kSampleLevel;
  return BatchingMode::kChunkLevel;
}

/// Drains a whole epoch with bread(batch) and returns delivered ids.
std::vector<std::uint32_t> drain_epoch(Rig& rig, DlfsInstance& inst,
                                       std::size_t batch,
                                       bool check_content = false) {
  std::vector<std::uint32_t> ids;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, std::size_t batch,
                   bool check, std::vector<std::uint32_t>& out)
                    -> Task<void> {
    std::vector<std::byte> arena(batch * r.ds.max_sample_bytes());
    for (;;) {
      auto b = co_await inst.bread(batch, arena);
      if (b.end_of_epoch) break;
      for (const auto& s : b.samples) {
        out.push_back(s.sample_id);
        if (check) {
          std::vector<std::byte> want(s.len);
          r.ds.fill_content(s.sample_id, 0, want);
          EXPECT_EQ(std::memcmp(arena.data() + s.offset_in_arena,
                                want.data(), want.size()),
                    0);
        }
      }
    }
  }(rig, inst, batch, check_content, ids));
  rig.sim.run();
  rig.sim.rethrow_failures();
  return ids;
}

// ---------------------------------------------------------------------------

TEST(Prefetcher, WarmWindowBreadDoesNotStall) {
  // A window deep enough to cover the next batch, plus idle time for the
  // daemon to land it: the second bread must find every unit resident and
  // accumulate zero additional stall time.
  auto cfg = chunk_cfg();
  cfg.prefetch.initial_units = 16;
  cfg.prefetch.min_units = 16;
  cfg.prefetch.max_units = 16;
  // 128 KiB samples, 256 KiB chunks: one bread of 8 spans 4 read units.
  Rig rig(dlfs::dataset::make_fixed_size_dataset(128, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);

  dlfs::core::PrefetchStats warm{};
  dlfs::core::PrefetchStats after{};
  rig.sim.spawn([](Rig& r, DlfsInstance& inst,
                   dlfs::core::PrefetchStats& warm,
                   dlfs::core::PrefetchStats& after) -> Task<void> {
    CpuCore train(r.sim, "train");
    std::vector<std::byte> arena(8 * 128_KiB);
    (void)co_await inst.bread(8, arena);  // cold: stalls are expected
    co_await train.compute(10_ms);        // daemon fills the window
    warm = inst.stats().prefetch;
    (void)co_await inst.bread(8, arena);  // warm: everything resident
    after = inst.stats().prefetch;
  }(rig, inst, warm, after));
  rig.sim.run();
  rig.sim.rethrow_failures();

  EXPECT_EQ(after.stall_ns, warm.stall_ns);
  EXPECT_EQ(after.units_stalled, warm.units_stalled);
  EXPECT_GT(after.units_resident_at_pick, warm.units_resident_at_pick);
}

TEST(Prefetcher, SampleLevelWarmWindowBreadDoesNotStall) {
  // Same zero-stall contract on the sample-level path: units are fused
  // groups of per-sample extents, and a warm window means bread finds the
  // whole next group resident.
  auto cfg = sample_cfg();
  cfg.prefetch.initial_units = 16;
  cfg.prefetch.min_units = 16;
  cfg.prefetch.max_units = 16;
  cfg.prefetch.group_samples = 8;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(256, 4096), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);

  dlfs::core::PrefetchStats warm{};
  dlfs::core::PrefetchStats after{};
  rig.sim.spawn([](Rig& r, DlfsInstance& inst,
                   dlfs::core::PrefetchStats& warm,
                   dlfs::core::PrefetchStats& after) -> Task<void> {
    CpuCore train(r.sim, "train");
    std::vector<std::byte> arena(8 * 4096);
    (void)co_await inst.bread(8, arena);  // cold: consumes exactly unit 0
    co_await train.compute(10_ms);        // daemon lands units 1..16
    warm = inst.stats().prefetch;
    (void)co_await inst.bread(8, arena);  // warm: unit 1 fully resident
    after = inst.stats().prefetch;
  }(rig, inst, warm, after));
  rig.sim.run();
  rig.sim.rethrow_failures();

  EXPECT_EQ(after.stall_ns, warm.stall_ns);
  EXPECT_EQ(after.units_stalled, warm.units_stalled);
  EXPECT_GT(after.units_resident_at_pick, warm.units_resident_at_pick);
}

TEST(Prefetcher, WindowShrinksUnderPoolPressure) {
  // A pool far smaller than the requested window: top_up must give way
  // (shrink) instead of starving demand fetches, and the epoch must still
  // deliver every sample.
  auto cfg = chunk_cfg();
  cfg.prefetch.initial_units = 32;
  cfg.prefetch.max_units = 32;
  cfg.pool_bytes = 16ull * 256 * 1024;  // 16 chunks for a 32-unit ask
  Rig rig(dlfs::dataset::make_fixed_size_dataset(256, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);
  const auto ids = drain_epoch(rig, inst, 8);
  EXPECT_EQ(ids.size(), 256u);
  const auto s = inst.stats().prefetch;
  EXPECT_GE(s.window_shrinks + s.units_dropped, 1u);
  EXPECT_LT(s.window_target, 32u);
}

TEST(Prefetcher, EpochEndDrainsPoolAndNextEpochWorks) {
  // Read-ahead never outlives its epoch: after the last bread every pool
  // chunk is back on the free list, and a fresh sequence starts clean.
  auto cfg = chunk_cfg();
  cfg.prefetch.initial_units = 8;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(128, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);

  inst.sequence(1);
  EXPECT_EQ(drain_epoch(rig, inst, 8).size(), 128u);
  EXPECT_EQ(inst.pool().used_chunks(), 0u);

  inst.sequence(2);
  EXPECT_EQ(drain_epoch(rig, inst, 8).size(), 128u);
  EXPECT_EQ(inst.pool().used_chunks(), 0u);
}

TEST(Prefetcher, DeliveryIdenticalWithChunkEdgeSamples) {
  // Samples spanning chunk boundaries (edge units): same seed, same batch
  // size, same delivered order and bytes whether read-ahead is async or
  // synchronous.
  auto run = [](bool async) {
    auto cfg = chunk_cfg();
    cfg.prefetch.enabled = async;
    cfg.prefetch.initial_units = 8;
    Rig rig(dlfs::dataset::make_fixed_size_dataset(192, 128_KiB), cfg);
    rig.mount();
    auto& inst = rig.fleet.instance(0);
    inst.sequence(42);
    return drain_epoch(rig, inst, 8, /*check_content=*/true);
  };
  const auto with_prefetcher = run(true);
  const auto without = run(false);
  EXPECT_EQ(with_prefetcher.size(), 192u);
  EXPECT_EQ(with_prefetcher, without);
}

TEST(Prefetcher, RecordFileSequenceWarmsWholeFileReads) {
  // sequence_files() re-targets the daemon at whole record files; reads
  // that follow the returned order find their file already resident, and
  // the bytes delivered are byte-identical to the prefetch-off path
  // (every record's CRC validates either way).
  auto run = [](bool async, std::vector<std::vector<std::byte>>& files,
                dlfs::core::PrefetchStats& stats) {
    DlfsConfig cfg;
    cfg.record_file_samples = 8;
    cfg.prefetch.enabled = async;
    Rig rig(dlfs::dataset::make_fixed_size_dataset(64, 2048), cfg);
    rig.mount();
    auto& inst = rig.fleet.instance(0);
    const auto& order = inst.sequence_files(5);
    ASSERT_EQ(order.size(), 8u);
    rig.sim.spawn([](Rig& r, DlfsInstance& inst,
                     const std::vector<std::string>* order,
                     std::vector<std::vector<std::byte>>* out) -> Task<void> {
      CpuCore train(r.sim, "train");
      for (const auto& name : *order) {
        auto h = co_await inst.open_file(name);
        std::vector<std::byte> buf(h.entry->len());
        co_await inst.read(h, buf);
        dlfs::dataset::RecordFileReader reader(buf);
        auto index = reader.scan();  // validates structure + every CRC
        EXPECT_TRUE(index.has_value());
        out->push_back(std::move(buf));
        co_await train.compute(2_ms);  // daemon pulls the next files in
      }
    }(rig, inst, &order, &files));
    rig.sim.run();
    rig.sim.rethrow_failures();
    stats = inst.stats().prefetch;
  };
  std::vector<std::vector<std::byte>> warm_files, cold_files;
  dlfs::core::PrefetchStats warm{}, cold{};
  run(true, warm_files, warm);
  run(false, cold_files, cold);
  EXPECT_EQ(warm_files, cold_files);
  EXPECT_GE(warm.units_issued, 8u);
  // Everything after the first file had idle time to land.
  EXPECT_GE(warm.units_resident_at_pick, 1u);
  EXPECT_EQ(cold.units_issued, 0u);
}

TEST(Prefetcher, SharedArbiterBoundsCoLocatedReadAhead) {
  // Two instances on one node, each asking for a 16-unit window out of a
  // 16-chunk pool: the shared arbiter caps their combined read-ahead, at
  // least one top-up is throttled, and both still drain their full share.
  auto cfg = chunk_cfg();
  cfg.prefetch.initial_units = 16;
  cfg.prefetch.max_units = 32;
  cfg.prefetch.shared_arbiter = true;
  cfg.pool_bytes = 16ull * 256 * 1024;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(256, 128_KiB), cfg,
          /*nodes=*/1, /*client_nodes=*/{0, 0}, /*storage_nodes=*/{0});
  rig.mount();
  auto* arb = rig.fleet.arbiter(0);
  ASSERT_NE(arb, nullptr);
  EXPECT_EQ(arb->members(), 2u);

  std::vector<std::uint32_t> got[2];
  for (std::uint32_t c = 0; c < 2; ++c) rig.fleet.instance(c).sequence(9);
  for (std::uint32_t c = 0; c < 2; ++c) {
    rig.sim.spawn([](DlfsInstance& inst,
                     std::vector<std::uint32_t>& out) -> Task<void> {
      std::vector<std::byte> arena(8 * 128_KiB);
      for (;;) {
        auto b = co_await inst.bread(8, arena);
        if (b.end_of_epoch) break;
        for (const auto& s : b.samples) out.push_back(s.sample_id);
      }
    }(rig.fleet.instance(c), got[c]));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(got[0].size() + got[1].size(), 256u);
  const auto s0 = rig.fleet.instance(0).stats().prefetch;
  const auto s1 = rig.fleet.instance(1).stats().prefetch;
  EXPECT_GE(s0.arbiter_throttles + s1.arbiter_throttles, 1u);
}

TEST(Prefetcher, SampleLevelDegradedEpochSkipsThenReissuesAfterRecovery) {
  // kSampleLevel over NVMe-oF: a storage node crashes mid-epoch, the
  // epoch completes degraded (every sample either served or skipped, the
  // prefetcher's stored node-fault errors routed to skips, never fatal).
  // After recovery, the epoch boundary reprobes the node and read-ahead
  // issued while it was down is reissued instead of surfacing stale
  // errors — the second epoch is served in full.
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kSampleLevel;
  cfg.fault.nvmf.command_timeout = 5_ms;
  cfg.fault.nvmf.reconnect_backoff = 200_us;
  cfg.fault.nvmf.reconnect_backoff_max = 1_ms;
  cfg.fault.nvmf.reconnect_attempts = 4;
  constexpr std::size_t kSamples = 2048;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(kSamples, 4096), cfg,
          /*nodes=*/3, /*client_nodes=*/{2}, /*storage_nodes=*/{0, 1});
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  const dlsim::SimTime t0 = rig.sim.now();
  rig.fleet.target(0)->crash_at(t0 + 500_us);
  rig.fleet.target(0)->recover_at(t0 + 50_ms);

  std::size_t served1 = 0, served2 = 0;
  std::uint64_t skipped1 = 0, skipped2 = 0;
  rig.sim.spawn(
      [](Rig& r, DlfsInstance& inst, std::size_t* served1,
         std::uint64_t* skipped1, std::size_t* served2,
         std::uint64_t* skipped2, dlsim::SimTime resume_at) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        inst.sequence(1);
        for (;;) {
          auto b = co_await inst.bread(16, arena);
          if (b.end_of_epoch) break;
          *served1 += b.samples.size();
          *skipped1 += b.samples_skipped;
        }
        if (r.sim.now() < resume_at) {
          co_await r.sim.delay(resume_at - r.sim.now());
        }
        inst.sequence(2);
        // Give the daemon idle time to issue read-ahead before the first
        // bread reprobes — that read-ahead carries baked-in failures if
        // the reconnect has not happened yet, and must be reissued.
        CpuCore train(r.sim, "train");
        co_await train.compute(1_ms);
        for (;;) {
          auto b = co_await inst.bread(16, arena);
          if (b.end_of_epoch) break;
          *served2 += b.samples.size();
          *skipped2 += b.samples_skipped;
        }
      }(rig, inst, &served1, &skipped1, &served2, &skipped2, t0 + 51_ms),
      "sample-level-degraded-epochs");
  rig.sim.run_watchdog(t0 + 2_sec);
  rig.sim.rethrow_failures();

  EXPECT_GT(served1, 0u);
  EXPECT_GT(skipped1, 0u);
  EXPECT_EQ(served1 + skipped1, kSamples);
  EXPECT_EQ(served2, kSamples);
  EXPECT_EQ(skipped2, 0u);
  EXPECT_EQ(inst.stats().samples_skipped, skipped1);
  EXPECT_GE(inst.engine().transport_stats().reconnects, 1u);
  EXPECT_EQ(inst.engine().nodes_down(), 0u);
}

// ---------------------------------------------------------------------------
// Mode-agnostic matrix: ctest registers this suite once per BatchingMode
// (DLFS_TEST_BATCHING = none | sample | chunk).

TEST(PrefetcherMatrix, DeliveryIsIdenticalWithPrefetchOnAndOff) {
  // The prefetcher changes timing only: same seed, same batch size, same
  // delivered order and bytes whether read-ahead is asynchronous or the
  // legacy synchronous path, for whichever BatchingMode the environment
  // selected.
  const BatchingMode mode = mode_from_env();
  auto run = [mode](bool async) {
    DlfsConfig cfg;
    cfg.batching = mode;
    cfg.prefetch.enabled = async;
    cfg.prefetch.initial_units = 8;
    Rig rig(dlfs::dataset::make_fixed_size_dataset(192, 4096), cfg);
    rig.mount();
    auto& inst = rig.fleet.instance(0);
    inst.sequence(42);
    return drain_epoch(rig, inst, 8, /*check_content=*/true);
  };
  const auto with_prefetcher = run(true);
  const auto without = run(false);
  EXPECT_EQ(with_prefetcher.size(), 192u);
  EXPECT_EQ(with_prefetcher, without);
}

TEST(PrefetcherMatrix, BackToBackEpochsDeliverEverySample) {
  // Two epochs through one instance: the second epoch re-targets the
  // daemon (and, in the sample modes, elides cache-resident extents at
  // issue time) yet still delivers every sample with exact content.
  DlfsConfig cfg;
  cfg.batching = mode_from_env();
  Rig rig(dlfs::dataset::make_fixed_size_dataset(192, 4096), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  EXPECT_EQ(drain_epoch(rig, inst, 8, /*check_content=*/true).size(), 192u);
  inst.sequence(2);
  EXPECT_EQ(drain_epoch(rig, inst, 8, /*check_content=*/true).size(), 192u);
  EXPECT_EQ(inst.stats().samples_delivered, 384u);
}

}  // namespace

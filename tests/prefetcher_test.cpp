// Tests for the asynchronous epoch-aware prefetcher: warm-window breads
// must not stall, the adaptive window must shrink under pool pressure,
// epoch end must drain every pool chunk, and turning the prefetcher on
// or off must never change what an epoch delivers — only when.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::cluster::Cluster;
using dlfs::cluster::NodeConfig;
using dlfs::cluster::Pfs;
using dlfs::core::BatchingMode;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::dataset::Dataset;
using dlsim::CpuCore;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  Cluster cluster;
  Dataset ds;
  Pfs pfs;
  DlfsFleet fleet;

  Rig(Dataset dataset, DlfsConfig cfg)
      : cluster(sim, 1, make_node_config()),
        ds(std::move(dataset)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg) {}

  static NodeConfig make_node_config() {
    NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 1_GiB;
    return nc;
  }

  void mount() {
    sim.spawn(fleet.mount_participant(0), "mount");
    sim.run();
    sim.rethrow_failures();
    ASSERT_TRUE(fleet.mounted());
  }
};

DlfsConfig chunk_cfg() {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  cfg.async_prefetch = true;
  return cfg;
}

/// Drains a whole epoch with bread(batch) and returns delivered ids.
std::vector<std::uint32_t> drain_epoch(Rig& rig, DlfsInstance& inst,
                                       std::size_t batch,
                                       bool check_content = false) {
  std::vector<std::uint32_t> ids;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, std::size_t batch,
                   bool check, std::vector<std::uint32_t>& out)
                    -> Task<void> {
    std::vector<std::byte> arena(batch * r.ds.max_sample_bytes());
    for (;;) {
      auto b = co_await inst.bread(batch, arena);
      if (b.samples.empty()) break;
      for (const auto& s : b.samples) {
        out.push_back(s.sample_id);
        if (check) {
          std::vector<std::byte> want(s.len);
          r.ds.fill_content(s.sample_id, 0, want);
          EXPECT_EQ(std::memcmp(arena.data() + s.offset_in_arena,
                                want.data(), want.size()),
                    0);
        }
      }
    }
  }(rig, inst, batch, check_content, ids));
  rig.sim.run();
  rig.sim.rethrow_failures();
  return ids;
}

// ---------------------------------------------------------------------------

TEST(Prefetcher, WarmWindowBreadDoesNotStall) {
  // A window deep enough to cover the next batch, plus idle time for the
  // daemon to land it: the second bread must find every unit resident and
  // accumulate zero additional stall time.
  auto cfg = chunk_cfg();
  cfg.prefetch_units = 16;
  cfg.prefetch_min_units = 16;
  cfg.prefetch_max_units = 16;
  // 128 KiB samples, 256 KiB chunks: one bread of 8 spans 4 read units.
  Rig rig(dlfs::dataset::make_fixed_size_dataset(128, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);

  dlfs::core::PrefetchStats warm{};
  dlfs::core::PrefetchStats after{};
  rig.sim.spawn([](Rig& r, DlfsInstance& inst,
                   dlfs::core::PrefetchStats& warm,
                   dlfs::core::PrefetchStats& after) -> Task<void> {
    CpuCore train(r.sim, "train");
    std::vector<std::byte> arena(8 * 128_KiB);
    (void)co_await inst.bread(8, arena);  // cold: stalls are expected
    co_await train.compute(10_ms);        // daemon fills the window
    warm = inst.prefetch_stats();
    (void)co_await inst.bread(8, arena);  // warm: everything resident
    after = inst.prefetch_stats();
  }(rig, inst, warm, after));
  rig.sim.run();
  rig.sim.rethrow_failures();

  EXPECT_EQ(after.stall_ns, warm.stall_ns);
  EXPECT_EQ(after.units_stalled, warm.units_stalled);
  EXPECT_GT(after.units_resident_at_pick, warm.units_resident_at_pick);
}

TEST(Prefetcher, WindowShrinksUnderPoolPressure) {
  // A pool far smaller than the requested window: top_up must give way
  // (shrink) instead of starving demand fetches, and the epoch must still
  // deliver every sample.
  auto cfg = chunk_cfg();
  cfg.prefetch_units = 32;
  cfg.prefetch_max_units = 32;
  cfg.pool_bytes = 16ull * 256 * 1024;  // 16 chunks for a 32-unit ask
  Rig rig(dlfs::dataset::make_fixed_size_dataset(256, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(7);
  const auto ids = drain_epoch(rig, inst, 8);
  EXPECT_EQ(ids.size(), 256u);
  const auto s = inst.prefetch_stats();
  EXPECT_GE(s.window_shrinks + s.units_dropped, 1u);
  EXPECT_LT(s.window_target, 32u);
}

TEST(Prefetcher, EpochEndDrainsPoolAndNextEpochWorks) {
  // Read-ahead never outlives its epoch: after the last bread every pool
  // chunk is back on the free list, and a fresh sequence starts clean.
  auto cfg = chunk_cfg();
  cfg.prefetch_units = 8;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(128, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);

  inst.sequence(1);
  EXPECT_EQ(drain_epoch(rig, inst, 8).size(), 128u);
  EXPECT_EQ(inst.pool().used_chunks(), 0u);

  inst.sequence(2);
  EXPECT_EQ(drain_epoch(rig, inst, 8).size(), 128u);
  EXPECT_EQ(inst.pool().used_chunks(), 0u);
}

TEST(Prefetcher, DeliveryIsIdenticalWithPrefetchOnAndOff) {
  // The prefetcher changes timing only: same seed, same batch size, same
  // delivered order and bytes whether read-ahead is async or synchronous.
  auto run = [](bool async) {
    auto cfg = chunk_cfg();
    cfg.async_prefetch = async;
    cfg.prefetch_units = 8;
    Rig rig(dlfs::dataset::make_fixed_size_dataset(192, 128_KiB), cfg);
    rig.mount();
    auto& inst = rig.fleet.instance(0);
    inst.sequence(42);
    return drain_epoch(rig, inst, 8, /*check_content=*/true);
  };
  const auto with_prefetcher = run(true);
  const auto without = run(false);
  EXPECT_EQ(with_prefetcher.size(), 192u);
  EXPECT_EQ(with_prefetcher, without);
}

}  // namespace

// Integration tests for the DLFS API: collective mount, dlfs_open /
// dlfs_read (cache behaviour), dlfs_sequence / dlfs_bread in all three
// batching modes, multi-node disaggregated reads, and data integrity
// end-to-end (PFS -> device -> DLFS -> application buffer).

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <type_traits>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::cluster::Cluster;
using dlfs::cluster::NodeConfig;
using dlfs::cluster::Pfs;
using dlfs::core::Batch;
using dlfs::core::BatchingMode;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::core::SampleHandle;
using dlfs::dataset::Dataset;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  Cluster cluster;
  Dataset ds;
  Pfs pfs;
  DlfsFleet fleet;

  Rig(std::uint32_t nodes, Dataset dataset, DlfsConfig cfg = DlfsConfig{},
      std::vector<dlfs::hw::NodeId> clients = {},
      std::vector<dlfs::hw::NodeId> storage = {},
      bool ram_store = true)
      : cluster(sim, nodes, make_node_config(ram_store)),
        ds(std::move(dataset)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg, std::move(clients), std::move(storage)) {}

  static NodeConfig make_node_config(bool ram_store) {
    NodeConfig nc;
    nc.synthetic_store = !ram_store;
    nc.device_capacity = 1_GiB;
    return nc;
  }

  void mount() {
    fleet.mount();
    ASSERT_TRUE(fleet.mounted());
  }
};

// samples_skipped / end_of_epoch live once, in the shared BatchMeta base
// both delivery structs derive from.
static_assert(std::is_base_of_v<dlfs::core::BatchMeta, dlfs::core::Batch>);
static_assert(
    std::is_base_of_v<dlfs::core::BatchMeta, dlfs::core::ViewBatch>);

bool sample_matches(const Dataset& ds, std::uint32_t id,
                    std::span<const std::byte> got) {
  std::vector<std::byte> want(ds.sample(id).size);
  ds.fill_content(id, 0, want);
  return got.size() == want.size() &&
         std::memcmp(got.data(), want.data(), want.size()) == 0;
}

// ---------------------------------------------------------------------------
// Mount

TEST(DlfsMount, SingleNodeMountBuildsDirectory) {
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(100, 4096));
  rig.mount();
  EXPECT_EQ(rig.fleet.directory().num_samples(), 100u);
  EXPECT_EQ(rig.fleet.directory().tree(0).size(), 100u);
  EXPECT_TRUE(rig.fleet.directory().tree(0).validate());
  // Data actually landed on the device.
  EXPECT_EQ(rig.cluster.node(0).device().bytes_written(), 100u * 4096u);
}

TEST(DlfsMount, MultiNodeMountPartitionsData) {
  Rig rig(4, dlfs::dataset::make_fixed_size_dataset(400, 4096));
  rig.mount();
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    const auto w = rig.cluster.node(n).device().bytes_written();
    EXPECT_GT(w, 0u);
    total += w;
  }
  EXPECT_EQ(total, 400u * 4096u);
  EXPECT_EQ(rig.fleet.directory().num_samples(), 400u);
}

TEST(DlfsMount, MountTakesSimulatedTime) {
  Rig rig(2, dlfs::dataset::make_fixed_size_dataset(100, 64_KiB));
  rig.mount();
  // PFS streaming at 1 GB/s + device writes: must be visible in sim time.
  EXPECT_GT(rig.sim.now(), 1_ms);
}

TEST(DlfsMount, ManualParticipantSpawnStillWorks) {
  // mount_participant stays as the advanced escape hatch: spawning the
  // collective by hand must end in the same mounted state mount() gives.
  Rig rig(2, dlfs::dataset::make_fixed_size_dataset(100, 4096));
  for (std::uint32_t p = 0; p < rig.fleet.participants(); ++p) {
    rig.sim.spawn(rig.fleet.mount_participant(p));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(rig.fleet.mounted());
  EXPECT_EQ(rig.fleet.directory().num_samples(), 100u);
}

// ---------------------------------------------------------------------------
// dlfs_open / dlfs_read

TEST(DlfsRead, OpenReadReturnsExactContent) {
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(50, 8000));
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  bool ok = false;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, bool& ok) -> Task<void> {
    SampleHandle h = co_await inst.open("fixed8000_7");
    EXPECT_EQ(h.entry->len(), 8000u);
    std::vector<std::byte> buf(8000);
    co_await inst.read(h, buf);
    ok = sample_matches(r.ds, h.sample_id, buf);
  }(rig, inst, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(ok);
}

TEST(DlfsRead, OpenUnknownNameThrows) {
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(10, 512));
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  auto p = rig.sim.spawn([](DlfsInstance& i) -> Task<void> {
    (void)co_await i.open("no-such-sample");
  }(inst));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

TEST(DlfsRead, SecondReadHitsCache) {
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(10, 4096));
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  dlsim::SimTime t_miss = 0, t_hit = 0;
  rig.sim.spawn([](Simulator& s, DlfsInstance& inst, dlsim::SimTime& tm,
                   dlsim::SimTime& th) -> Task<void> {
    SampleHandle h = co_await inst.open("fixed4096_3");
    std::vector<std::byte> buf(4096);
    const auto t0 = s.now();
    co_await inst.read(h, buf);
    tm = s.now() - t0;
    const auto t1 = s.now();
    co_await inst.read(h, buf);
    th = s.now() - t1;
  }(rig.sim, inst, t_miss, t_hit));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(inst.cache().hits(), 1u);
  EXPECT_EQ(inst.cache().misses(), 1u);
  // Cache hit skips the device: ~12us vs sub-us memcpy.
  EXPECT_GT(t_miss, 10_us);
  EXPECT_LT(t_hit, 2_us);
}

TEST(DlfsRead, ReadIntoTooSmallBufferThrows) {
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(10, 4096));
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  auto p = rig.sim.spawn([](DlfsInstance& i) -> Task<void> {
    SampleHandle h = co_await i.open("fixed4096_0");
    std::vector<std::byte> buf(100);
    co_await i.read(h, buf);
  }(inst));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

// ---------------------------------------------------------------------------
// dlfs_sequence / dlfs_bread

struct BreadResult {
  std::vector<std::uint32_t> order;
  std::uint64_t total_bytes = 0;
  bool content_ok = true;
};

Task<void> drain_epoch(Rig& r, DlfsInstance& inst, std::size_t batch_size,
                       BreadResult& out) {
  std::vector<std::byte> arena(batch_size * (r.ds.max_sample_bytes() + 16));
  for (;;) {
    Batch b = co_await inst.bread(batch_size, arena);
    if (b.end_of_epoch) break;
    for (const auto& s : b.samples) {
      out.order.push_back(s.sample_id);
      out.total_bytes += s.len;
      if (!sample_matches(r.ds, s.sample_id,
                          std::span<const std::byte>(
                              arena.data() + s.offset_in_arena, s.len))) {
        out.content_ok = false;
      }
    }
  }
}

class BreadModeTest : public ::testing::TestWithParam<BatchingMode> {};

TEST_P(BreadModeTest, EpochDeliversEverySampleOnceWithCorrectContent) {
  DlfsConfig cfg;
  cfg.batching = GetParam();
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(300, 3000), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  inst.sequence(12345);
  BreadResult res;
  rig.sim.spawn(drain_epoch(rig, inst, 32, res));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(res.order.size(), 300u);
  std::set<std::uint32_t> unique(res.order.begin(), res.order.end());
  EXPECT_EQ(unique.size(), 300u);
  EXPECT_TRUE(res.content_ok);
  EXPECT_EQ(res.total_bytes, 300u * 3000u);
}

TEST_P(BreadModeTest, MultiNodeEpochCoversDatasetAcrossClients) {
  DlfsConfig cfg;
  cfg.batching = GetParam();
  Rig rig(4, dlfs::dataset::make_fixed_size_dataset(400, 2048), cfg);
  rig.mount();
  std::vector<BreadResult> res(4);
  for (std::uint32_t c = 0; c < 4; ++c) {
    rig.fleet.instance(c).sequence(777);  // same seed everywhere
  }
  for (std::uint32_t c = 0; c < 4; ++c) {
    rig.sim.spawn(drain_epoch(rig, rig.fleet.instance(c), 16, res[c]));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  std::set<std::uint32_t> all;
  for (const auto& r : res) {
    EXPECT_TRUE(r.content_ok);
    for (auto id : r.order) EXPECT_TRUE(all.insert(id).second);
  }
  EXPECT_EQ(all.size(), 400u);  // disjoint cover of the whole dataset
}

INSTANTIATE_TEST_SUITE_P(Modes, BreadModeTest,
                         ::testing::Values(BatchingMode::kNone,
                                           BatchingMode::kSampleLevel,
                                           BatchingMode::kChunkLevel));

TEST(DlfsBread, RequiresSequenceFirst) {
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(10, 512));
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  auto p = rig.sim.spawn([](DlfsInstance& i) -> Task<void> {
    std::vector<std::byte> arena(64_KiB);
    (void)co_await i.bread(4, arena);
  }(inst));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

TEST(DlfsBread, SameSeedReproducesOrder) {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(200, 1000), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  BreadResult r1, r2;
  inst.sequence(99);
  rig.sim.spawn(drain_epoch(rig, inst, 32, r1));
  rig.sim.run();
  rig.sim.rethrow_failures();
  inst.sequence(99);
  rig.sim.spawn(drain_epoch(rig, inst, 32, r2));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(r1.order, r2.order);
}

TEST(DlfsBread, ChunkModeShufflesAtChunkGranularity) {
  // 1024 x 512 B on one node = two 256 KiB chunks. Within a chunk the
  // order is sequential; across epochs with different seeds the chunk
  // order changes.
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  Rig rig(1, dlfs::dataset::make_fixed_size_dataset(1024, 512), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  BreadResult res;
  inst.sequence(5);
  rig.sim.spawn(drain_epoch(rig, inst, 64, res));
  rig.sim.run();
  rig.sim.rethrow_failures();
  ASSERT_EQ(res.order.size(), 1024u);
  // Samples within one chunk arrive in ascending on-device order.
  for (std::size_t i = 1; i < 512; ++i) {
    EXPECT_EQ(res.order[i], res.order[i - 1] + 1);
  }
}

TEST(DlfsBread, ChunkBatchingIssuesFarFewerRequests) {
  DlfsConfig chunk_cfg;
  chunk_cfg.batching = BatchingMode::kChunkLevel;
  DlfsConfig sample_cfg;
  sample_cfg.batching = BatchingMode::kSampleLevel;
  std::uint64_t posted_chunk = 0, posted_sample = 0;
  for (auto* pair : {&posted_chunk, &posted_sample}) {
    const auto& cfg = pair == &posted_chunk ? chunk_cfg : sample_cfg;
    Rig rig(1, dlfs::dataset::make_fixed_size_dataset(2048, 512), cfg);
    rig.mount();
    auto& inst = rig.fleet.instance(0);
    inst.sequence(1);
    BreadResult res;
    rig.sim.spawn(drain_epoch(rig, inst, 32, res));
    rig.sim.run();
    rig.sim.rethrow_failures();
    *pair = inst.engine().requests_posted();
  }
  // 2048 samples at 512 B = 1 MiB = 4 chunks vs 2048 per-sample requests.
  EXPECT_EQ(posted_chunk, 4u);
  EXPECT_EQ(posted_sample, 2048u);
}

TEST(DlfsBread, VariableSizeDatasetWithEdgeSamples) {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  Rig rig(2, dlfs::dataset::make_imagenet_like_dataset(150, 3), cfg);
  rig.mount();
  EXPECT_GT(rig.fleet.plan().num_edge_units(), 0u);  // big samples cross
  for (std::uint32_t c = 0; c < 2; ++c) rig.fleet.instance(c).sequence(4);
  std::vector<BreadResult> res(2);
  for (std::uint32_t c = 0; c < 2; ++c) {
    rig.sim.spawn(drain_epoch(rig, rig.fleet.instance(c), 8, res[c]));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  std::set<std::uint32_t> all;
  for (const auto& r : res) {
    EXPECT_TRUE(r.content_ok);
    for (auto id : r.order) all.insert(id);
  }
  EXPECT_EQ(all.size(), 150u);
}

// ---------------------------------------------------------------------------
// Disaggregation topologies

TEST(DlfsTopology, OneClientManyStorageNodes) {
  // Fig. 11's DLFS-1C shape: client on node 0, storage on nodes 0..3.
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  Rig rig(4, dlfs::dataset::make_fixed_size_dataset(400, 4096), cfg,
          /*clients=*/{0}, /*storage=*/{0, 1, 2, 3});
  rig.mount();
  EXPECT_EQ(rig.fleet.num_clients(), 1u);
  EXPECT_EQ(rig.fleet.num_storage(), 4u);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(6);
  BreadResult res;
  rig.sim.spawn(drain_epoch(rig, inst, 32, res));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(res.order.size(), 400u);
  EXPECT_TRUE(res.content_ok);
  // Remote devices actually served data.
  for (std::uint32_t n = 1; n < 4; ++n) {
    EXPECT_GT(rig.cluster.node(n).device().bytes_read(), 0u);
  }
}

TEST(DlfsTopology, RemoteReadsCostMoreThanLocal) {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kNone;
  Rig rig(2, dlfs::dataset::make_fixed_size_dataset(64, 128_KiB), cfg);
  rig.mount();
  auto& inst = rig.fleet.instance(0);
  // Find one local and one remote sample (from node 0's perspective).
  std::int64_t local_id = -1, remote_id = -1;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& loc = rig.fleet.layout()[i];
    if (loc.nid == 0 && local_id < 0) local_id = i;
    if (loc.nid == 1 && remote_id < 0) remote_id = i;
  }
  ASSERT_GE(local_id, 0);
  ASSERT_GE(remote_id, 0);
  dlsim::SimDuration t_local = 0, t_remote = 0;
  rig.sim.spawn([](Simulator& s, DlfsInstance& inst, std::uint32_t lid,
                   std::uint32_t rid, dlsim::SimDuration& tl,
                   dlsim::SimDuration& tr) -> Task<void> {
    std::vector<std::byte> buf(128_KiB);
    SampleHandle hl = co_await inst.open_id(lid);
    auto t0 = s.now();
    co_await inst.read(hl, buf);
    tl = s.now() - t0;
    SampleHandle hr = co_await inst.open_id(rid);
    t0 = s.now();
    co_await inst.read(hr, buf);
    tr = s.now() - t0;
  }(rig.sim, inst, static_cast<std::uint32_t>(local_id),
    static_cast<std::uint32_t>(remote_id), t_local, t_remote));
  rig.sim.run();
  rig.sim.rethrow_failures();
  // Remote adds capsule + data return over the fabric (~20+us for 128 KiB).
  EXPECT_GT(t_remote, t_local + 15_us);
}

}  // namespace

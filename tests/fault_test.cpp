// Failure-injection tests: transient media errors at the device, retry
// behaviour in the DLFS engine (local and over NVMe-oF), kernel-path
// retries in Ext4, and unrecoverable-error surfacing.

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "osfs/ext4.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::hw::IoOp;
using dlfs::hw::IoStatus;
using dlfs::hw::NvmeDevice;
using dlfs::hw::SyntheticBackingStore;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

TEST(FaultInjection, DeviceCompletesWithMediaError) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 1));
  dev.inject_faults(1.0);  // every command fails
  auto qp = dev.create_qpair();
  std::vector<std::byte> buf(4096);
  EXPECT_EQ(qp->submit(IoOp::kRead, 0, buf, 1), IoStatus::kOk);
  sim.run_until(1_ms);
  auto done = qp->poll();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status, IoStatus::kMediaError);
  EXPECT_EQ(dev.faults_injected(), 1u);
  EXPECT_EQ(dev.bytes_read(), 0u);  // no data moved on error
}

TEST(FaultInjection, FaultRateIsDeterministicAndRoughlyCalibrated) {
  auto count_faults = [] {
    Simulator sim;
    NvmeDevice dev(sim, "nvme0",
                   std::make_unique<SyntheticBackingStore>(1_GiB, 1));
    dev.inject_faults(0.25, /*seed=*/7);
    auto qp = dev.create_qpair(128);
    std::vector<std::byte> buf(512);
    for (int i = 0; i < 128; ++i) {
      (void)qp->submit(IoOp::kRead, 0, buf, static_cast<std::uint64_t>(i));
    }
    sim.run_until(10_ms);
    (void)qp->poll();
    return dev.faults_injected();
  };
  const auto a = count_faults();
  EXPECT_EQ(a, count_faults());  // deterministic
  EXPECT_GT(a, 16u);             // ~32 expected of 128
  EXPECT_LT(a, 48u);
}

TEST(FaultInjection, DisableStopsFaults) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 1));
  dev.inject_faults(1.0);
  dev.inject_faults(0.0);
  auto qp = dev.create_qpair();
  std::vector<std::byte> buf(512);
  EXPECT_EQ(qp->submit(IoOp::kRead, 0, buf, 1), IoStatus::kOk);
  sim.run_until(1_ms);
  EXPECT_EQ(qp->poll()[0].status, IoStatus::kOk);
}

// ---------------------------------------------------------------------------
// DLFS engine retries

struct FleetRig {
  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  explicit FleetRig(std::uint32_t nodes)
      : cluster(sim, nodes, cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(nodes * 128ull, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, dlfs::core::DlfsConfig{}) {
    for (std::uint32_t p = 0; p < fleet.participants(); ++p) {
      sim.spawn(fleet.mount_participant(p));
    }
    sim.run();
    sim.rethrow_failures();
  }

  static dlfs::cluster::NodeConfig cfg() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 256_MiB;
    return nc;
  }
};

TEST(FaultInjection, DlfsRetriesTransientFaultsAndSucceeds) {
  FleetRig rig(1);
  rig.cluster.node(0).device().inject_faults(0.3, 11);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  bool epoch_ok = false;
  rig.sim.spawn([](dlfs::core::DlfsInstance& inst, bool& ok) -> Task<void> {
    std::vector<std::byte> arena(64_KiB);
    std::size_t n = 0;
    for (;;) {
      auto b = co_await inst.bread(16, arena);
      if (b.samples.empty()) break;
      n += b.samples.size();
    }
    ok = n == 128;
  }(inst, epoch_ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(epoch_ok);
  EXPECT_GT(inst.engine().retries(), 0u);
  EXPECT_GT(rig.cluster.node(0).device().faults_injected(), 0u);
}

TEST(FaultInjection, DlfsRemoteRetriesOverFabric) {
  FleetRig rig(2);
  rig.cluster.node(0).device().inject_faults(0.3, 5);
  rig.cluster.node(1).device().inject_faults(0.3, 6);
  for (std::uint32_t c = 0; c < 2; ++c) rig.fleet.instance(c).sequence(1);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < 2; ++c) {
    rig.sim.spawn(
        [](dlfs::core::DlfsInstance& inst, std::size_t& n) -> Task<void> {
          std::vector<std::byte> arena(64_KiB);
          for (;;) {
            auto b = co_await inst.bread(16, arena);
            if (b.samples.empty()) break;
            n += b.samples.size();
          }
        }(rig.fleet.instance(c), total));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(total, 256u);
}

TEST(FaultInjection, PermanentFaultSurfacesAsIoError) {
  FleetRig rig(1);
  rig.cluster.node(0).device().inject_faults(1.0);  // nothing ever succeeds
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  auto p = rig.sim.spawn(
      [](dlfs::core::DlfsInstance& inst) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        (void)co_await inst.bread(16, arena);
      }(inst),
      "doomed-bread");
  rig.sim.run(/*allow_blocked=*/true);
  ASSERT_TRUE(p.failed());
  try {
    p.rethrow();
    FAIL() << "expected IoError";
  } catch (const dlfs::core::IoError& e) {
    EXPECT_EQ(e.nid, 0);
  }
}

TEST(FaultInjection, RetriesReturnCorrectData) {
  // Even with a high fault rate, retried reads must deliver exact bytes.
  FleetRig rig(1);
  rig.cluster.node(0).device().inject_faults(0.4, 13);
  auto& inst = rig.fleet.instance(0);
  bool ok = false;
  rig.sim.spawn([](FleetRig& r, dlfs::core::DlfsInstance& inst,
                   bool& ok) -> Task<void> {
    auto h = co_await inst.open_id(17);
    std::vector<std::byte> buf(h.entry->len()), want(h.entry->len());
    co_await inst.read(h, buf);
    r.ds.fill_content(17, 0, want);
    ok = buf == want;
  }(rig, inst, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// Ext4 kernel-path retries

TEST(FaultInjection, Ext4RetriesThenSucceeds) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<dlfs::hw::RamBackingStore>(64_MiB));
  dlfs::osfs::Ext4Fs fs(sim, dev, dlfs::default_calibration());
  dlsim::CpuCore core(sim, "app");
  dlfs::osfs::OsThread t(fs, core);
  std::vector<std::byte> data(8192, std::byte{0x7e});
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               std::span<const std::byte> d) -> Task<void> {
    const int fd = co_await fs.create(t, "f");
    co_await fs.append(t, fd, d);
    co_await fs.close(t, fd);
  }(fs, t, data));
  sim.run();
  sim.rethrow_failures();
  fs.drop_caches();
  dev.inject_faults(0.5, 21);
  bool ok = false;
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               bool& ok) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    std::vector<std::byte> buf(8192);
    const auto n = co_await fs.pread(t, *fd, buf, 0);
    ok = n == 8192 && buf[100] == std::byte{0x7e};
    co_await fs.close(t, *fd);
  }(fs, t, ok));
  sim.run();
  sim.rethrow_failures();
  EXPECT_TRUE(ok);
  EXPECT_GT(dev.faults_injected(), 0u);
}

TEST(FaultInjection, Ext4PermanentFaultIsEio) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<dlfs::hw::RamBackingStore>(64_MiB));
  dlfs::osfs::Ext4Fs fs(sim, dev, dlfs::default_calibration());
  dlsim::CpuCore core(sim, "app");
  dlfs::osfs::OsThread t(fs, core);
  std::vector<std::byte> data(4096, std::byte{1});
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               std::span<const std::byte> d) -> Task<void> {
    const int fd = co_await fs.create(t, "f");
    co_await fs.append(t, fd, d);
    co_await fs.close(t, fd);
  }(fs, t, data));
  sim.run();
  sim.rethrow_failures();
  fs.drop_caches();
  dev.inject_faults(1.0);
  auto p = sim.spawn([](dlfs::osfs::Ext4Fs& fs,
                        dlfs::osfs::OsThread& t) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    std::vector<std::byte> buf(4096);
    (void)co_await fs.pread(t, *fd, buf, 0);
  }(fs, t));
  sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

}  // namespace

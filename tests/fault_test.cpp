// Failure-injection tests: transient media errors at the device, retry
// behaviour in the DLFS engine (local and over NVMe-oF), kernel-path
// retries in Ext4, and unrecoverable-error surfacing.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "osfs/ext4.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::hw::IoOp;
using dlfs::hw::IoStatus;
using dlfs::hw::NvmeDevice;
using dlfs::hw::SyntheticBackingStore;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

TEST(FaultInjection, DeviceCompletesWithMediaError) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 1));
  dev.inject_faults(1.0);  // every command fails
  auto qp = dev.create_qpair();
  std::vector<std::byte> buf(4096);
  EXPECT_EQ(qp->submit(IoOp::kRead, 0, buf, 1), IoStatus::kOk);
  sim.run_until(1_ms);
  auto done = qp->poll();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status, IoStatus::kMediaError);
  EXPECT_EQ(dev.faults_injected(), 1u);
  EXPECT_EQ(dev.bytes_read(), 0u);  // no data moved on error
}

TEST(FaultInjection, FaultRateIsDeterministicAndRoughlyCalibrated) {
  auto count_faults = [] {
    Simulator sim;
    NvmeDevice dev(sim, "nvme0",
                   std::make_unique<SyntheticBackingStore>(1_GiB, 1));
    dev.inject_faults(0.25, /*seed=*/7);
    auto qp = dev.create_qpair(128);
    std::vector<std::byte> buf(512);
    for (int i = 0; i < 128; ++i) {
      (void)qp->submit(IoOp::kRead, 0, buf, static_cast<std::uint64_t>(i));
    }
    sim.run_until(10_ms);
    (void)qp->poll();
    return dev.faults_injected();
  };
  const auto a = count_faults();
  EXPECT_EQ(a, count_faults());  // deterministic
  EXPECT_GT(a, 16u);             // ~32 expected of 128
  EXPECT_LT(a, 48u);
}

TEST(FaultInjection, DisableStopsFaults) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<SyntheticBackingStore>(1_GiB, 1));
  dev.inject_faults(1.0);
  dev.inject_faults(0.0);
  auto qp = dev.create_qpair();
  std::vector<std::byte> buf(512);
  EXPECT_EQ(qp->submit(IoOp::kRead, 0, buf, 1), IoStatus::kOk);
  sim.run_until(1_ms);
  EXPECT_EQ(qp->poll()[0].status, IoStatus::kOk);
}

// ---------------------------------------------------------------------------
// DLFS engine retries

struct FleetRig {
  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  explicit FleetRig(std::uint32_t nodes)
      : cluster(sim, nodes, cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(nodes * 128ull, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, dlfs::core::DlfsConfig{}) {
    fleet.mount();
  }

  static dlfs::cluster::NodeConfig cfg() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 256_MiB;
    return nc;
  }
};

TEST(FaultInjection, DlfsRetriesTransientFaultsAndSucceeds) {
  FleetRig rig(1);
  rig.cluster.node(0).device().inject_faults(0.3, 11);
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  bool epoch_ok = false;
  rig.sim.spawn([](dlfs::core::DlfsInstance& inst, bool& ok) -> Task<void> {
    std::vector<std::byte> arena(64_KiB);
    std::size_t n = 0;
    for (;;) {
      auto b = co_await inst.bread(16, arena);
      if (b.end_of_epoch) break;
      n += b.samples.size();
    }
    ok = n == 128;
  }(inst, epoch_ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(epoch_ok);
  EXPECT_GT(inst.engine().retries(), 0u);
  EXPECT_GT(rig.cluster.node(0).device().faults_injected(), 0u);
}

TEST(FaultInjection, DlfsRemoteRetriesOverFabric) {
  FleetRig rig(2);
  rig.cluster.node(0).device().inject_faults(0.3, 5);
  rig.cluster.node(1).device().inject_faults(0.3, 6);
  for (std::uint32_t c = 0; c < 2; ++c) rig.fleet.instance(c).sequence(1);
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < 2; ++c) {
    rig.sim.spawn(
        [](dlfs::core::DlfsInstance& inst, std::size_t& n) -> Task<void> {
          std::vector<std::byte> arena(64_KiB);
          for (;;) {
            auto b = co_await inst.bread(16, arena);
            if (b.end_of_epoch) break;
            n += b.samples.size();
          }
        }(rig.fleet.instance(c), total));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(total, 256u);
}

TEST(FaultInjection, PermanentFaultSurfacesAsIoError) {
  FleetRig rig(1);
  rig.cluster.node(0).device().inject_faults(1.0);  // nothing ever succeeds
  auto& inst = rig.fleet.instance(0);
  inst.sequence(1);
  auto p = rig.sim.spawn(
      [](dlfs::core::DlfsInstance& inst) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        (void)co_await inst.bread(16, arena);
      }(inst),
      "doomed-bread");
  rig.sim.run(/*allow_blocked=*/true);
  ASSERT_TRUE(p.failed());
  try {
    p.rethrow();
    FAIL() << "expected IoError";
  } catch (const dlfs::core::IoError& e) {
    EXPECT_EQ(e.nid, 0);
  }
}

TEST(FaultInjection, RetriesReturnCorrectData) {
  // Even with a high fault rate, retried reads must deliver exact bytes.
  FleetRig rig(1);
  rig.cluster.node(0).device().inject_faults(0.4, 13);
  auto& inst = rig.fleet.instance(0);
  bool ok = false;
  rig.sim.spawn([](FleetRig& r, dlfs::core::DlfsInstance& inst,
                   bool& ok) -> Task<void> {
    auto h = co_await inst.open_id(17);
    std::vector<std::byte> buf(h.entry->len()), want(h.entry->len());
    co_await inst.read(h, buf);
    r.ds.fill_content(17, 0, want);
    ok = buf == want;
  }(rig, inst, ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// Storage-node fault domain: NVMe-oF timeouts, reconnect, degraded epochs

// One pure client (node 2) reading from two storage nodes (0 and 1) over
// NVMe-oF. The fault parameters are shrunken so a crashed target is
// discovered — command timeout, then the whole reconnect budget — within
// a few simulated milliseconds instead of the production defaults.
struct RemoteFleetRig {
  static constexpr std::size_t kSamples = 2048;

  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  RemoteFleetRig()
      : cluster(sim, 3, FleetRig::cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(kSamples, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg(), /*client_nodes=*/{2},
              /*storage_nodes=*/{0, 1}) {
    fleet.mount();
  }

  static dlfs::core::DlfsConfig cfg() {
    dlfs::core::DlfsConfig c;
    c.fault.nvmf.command_timeout = 5_ms;
    c.fault.nvmf.reconnect_backoff = 200_us;
    c.fault.nvmf.reconnect_backoff_max = 1_ms;
    c.fault.nvmf.reconnect_attempts = 4;
    return c;
  }
};

struct EpochTally {
  std::size_t served = 0;
  std::uint64_t skipped = 0;
};

Task<void> run_epoch(dlfs::core::DlfsInstance& inst, EpochTally& t) {
  std::vector<std::byte> arena(64_KiB);
  for (;;) {
    auto b = co_await inst.bread(16, arena);
    if (b.end_of_epoch) break;
    // Skip accounting is per sample, exactly once: a batch that asked for
    // 16 samples can never report more than 16 outcomes in total.
    EXPECT_LE(b.samples.size() + b.samples_skipped, 16u);
    t.served += b.samples.size();
    t.skipped += b.samples_skipped;
  }
}

TEST(FaultInjection, TargetCrashMidEpochCompletesDegraded) {
  RemoteFleetRig rig;
  auto& inst = rig.fleet.instance(0);
  ASSERT_NE(rig.fleet.target(0), nullptr);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  inst.sequence(1);
  EpochTally t;
  rig.sim.spawn(run_epoch(inst, t), "degraded-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 1_sec);
  rig.sim.rethrow_failures();
  // The epoch completes over the surviving node; node-0 samples that were
  // not yet served (or cached) are reported as skipped, not hung on.
  EXPECT_GT(t.served, 0u);
  EXPECT_GT(t.skipped, 0u);
  EXPECT_EQ(t.served + t.skipped, RemoteFleetRig::kSamples);
  EXPECT_EQ(inst.stats().samples_skipped, t.skipped);
  const auto ts = inst.engine().transport_stats();
  EXPECT_GT(ts.timeouts, 0u);
  EXPECT_GE(ts.connections_lost, 1u);
  EXPECT_EQ(inst.engine().nodes_down(), 1u);
  EXPECT_FALSE(rig.fleet.directory().node_available(0));
  EXPECT_TRUE(rig.fleet.directory().node_available(1));
}

TEST(FaultInjection, TargetCrashThenRecoverServesFullEpochAfterReconnect) {
  RemoteFleetRig rig;
  auto& inst = rig.fleet.instance(0);
  const dlsim::SimTime t0 = rig.sim.now();
  rig.fleet.target(0)->crash_at(t0 + 500_us);
  rig.fleet.target(0)->recover_at(t0 + 50_ms);
  EpochTally e1, e2;
  rig.sim.spawn(
      [](RemoteFleetRig& r, dlfs::core::DlfsInstance& inst, EpochTally& e1,
         EpochTally& e2, dlsim::SimTime resume_at) -> Task<void> {
        inst.sequence(1);
        std::vector<std::byte> arena(64_KiB);
        for (;;) {
          auto b = co_await inst.bread(16, arena);
          if (b.end_of_epoch) break;
          e1.served += b.samples.size();
          e1.skipped += b.samples_skipped;
        }
        if (r.sim.now() < resume_at) {
          co_await r.sim.delay(resume_at - r.sim.now());
        }
        // Epoch boundary: sequence() schedules a revalidation of the down
        // node, and the recovered target accepts the reconnect.
        inst.sequence(2);
        for (;;) {
          auto b = co_await inst.bread(16, arena);
          if (b.end_of_epoch) break;
          e2.served += b.samples.size();
          e2.skipped += b.samples_skipped;
        }
      }(rig, inst, e1, e2, t0 + 51_ms),
      "crash-recover-epochs");
  rig.sim.run_watchdog(t0 + 2_sec);
  rig.sim.rethrow_failures();
  EXPECT_GT(e1.skipped, 0u);
  EXPECT_EQ(e1.served + e1.skipped, RemoteFleetRig::kSamples);
  EXPECT_EQ(e2.served, RemoteFleetRig::kSamples);
  EXPECT_EQ(e2.skipped, 0u);
  EXPECT_GE(inst.engine().transport_stats().reconnects, 1u);
  EXPECT_EQ(inst.engine().nodes_down(), 0u);
  EXPECT_TRUE(rig.fleet.directory().node_available(0));
}

TEST(FaultInjection, PermanentPartitionSurfacesTypedErrorWithoutHanging) {
  RemoteFleetRig rig;
  auto& inst = rig.fleet.instance(0);
  rig.cluster.fabric().fail_link(2, 0);  // client <-> storage node 0
  std::uint32_t victim = 0;
  for (std::uint32_t id = 0; id < rig.fleet.layout().size(); ++id) {
    if (rig.fleet.layout()[id].nid == 0) {
      victim = id;
      break;
    }
  }
  auto p = rig.sim.spawn(
      [](dlfs::core::DlfsInstance& inst, std::uint32_t id) -> Task<void> {
        auto h = co_await inst.open_id(id);
        std::vector<std::byte> buf(h.entry->len());
        co_await inst.read(h, buf);
      }(inst, victim),
      "partitioned-read");
  // The watchdog (not ctest's kill) is what bounds a broken recovery
  // path here: the read must fail with a typed error, never block.
  rig.sim.run_watchdog(rig.sim.now() + 1_sec);
  ASSERT_TRUE(p.failed());
  try {
    p.rethrow();
    FAIL() << "expected IoError";
  } catch (const dlfs::core::IoError& e) {
    EXPECT_EQ(e.nid, 0);
    EXPECT_NE(e.kind, dlfs::core::IoErrorKind::kMedia);
  }
  EXPECT_FALSE(inst.engine().node_available(0));
  EXPECT_GT(rig.cluster.fabric().messages_dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Replica-aware degraded reads: k-way replication, failover routing,
// mid-epoch reprobe

// RemoteFleetRig with a caller-supplied config (replication factor,
// batching mode, reprobe cadence).
struct ReplicaRig {
  static constexpr std::size_t kSamples = 2048;

  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  explicit ReplicaRig(const dlfs::core::DlfsConfig& c)
      : cluster(sim, 3, FleetRig::cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(kSamples, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, c, /*client_nodes=*/{2},
              /*storage_nodes=*/{0, 1}) {
    fleet.mount();
  }

  static dlfs::core::DlfsConfig cfg(std::uint32_t replication,
                                    dlfs::core::BatchingMode mode) {
    dlfs::core::DlfsConfig c = RemoteFleetRig::cfg();
    c.fault.replication = replication;
    c.batching = mode;
    return c;
  }
};

// Full delivery record of one epoch: sample ids and arena offsets in
// delivery order, the skip total, and whether every delivered sample's
// bytes matched the canonical dataset content.
struct DeliveryLog {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> offsets;
  std::uint64_t skipped = 0;
  bool content_ok = true;
};

Task<void> run_epoch_logged(const dlfs::dataset::Dataset& ds,
                            dlfs::core::DlfsInstance& inst,
                            DeliveryLog& log) {
  std::vector<std::byte> arena(64_KiB);
  std::vector<std::byte> want;
  for (;;) {
    auto b = co_await inst.bread(16, arena);
    if (b.end_of_epoch) break;
    EXPECT_LE(b.samples.size() + b.samples_skipped, 16u);
    for (const auto& s : b.samples) {
      log.order.push_back(s.sample_id);
      log.offsets.push_back(s.offset_in_arena);
      want.resize(s.len);
      ds.fill_content(s.sample_id, 0, want);
      if (std::memcmp(arena.data() + s.offset_in_arena, want.data(), s.len) !=
          0) {
        log.content_ok = false;
      }
    }
    log.skipped += b.samples_skipped;
  }
}

TEST(FaultInjection, ReplicatedChunkEpochSurvivesCrashByteIdentical) {
  // The issue's acceptance bar: with replication=2, a single mid-epoch
  // target crash yields zero skipped samples and batches byte-identical
  // to the no-fault run (same ids, same arena offsets, same contents).
  DeliveryLog good;
  {
    ReplicaRig healthy(
        ReplicaRig::cfg(2, dlfs::core::BatchingMode::kChunkLevel));
    auto& inst = healthy.fleet.instance(0);
    inst.sequence(1);
    healthy.sim.spawn(run_epoch_logged(healthy.ds, inst, good), "healthy-epoch");
    healthy.sim.run();
    healthy.sim.rethrow_failures();
    EXPECT_EQ(good.order.size(), ReplicaRig::kSamples);
    EXPECT_EQ(good.skipped, 0u);
    EXPECT_TRUE(good.content_ok);
  }
  ReplicaRig rig(ReplicaRig::cfg(2, dlfs::core::BatchingMode::kChunkLevel));
  auto& inst = rig.fleet.instance(0);
  ASSERT_NE(rig.fleet.target(0), nullptr);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  inst.sequence(1);
  DeliveryLog log;
  rig.sim.spawn(run_epoch_logged(rig.ds, inst, log), "replicated-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 2_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(log.skipped, 0u);
  EXPECT_EQ(inst.stats().samples_skipped, 0u);
  EXPECT_TRUE(log.content_ok);
  EXPECT_EQ(log.order, good.order);
  EXPECT_EQ(log.offsets, good.offsets);
  // The failure was real: the node went down and reads failed over.
  EXPECT_EQ(inst.engine().nodes_down(), 1u);
  EXPECT_GT(inst.engine().transport_stats().timeouts, 0u);
}

TEST(FaultInjection, ReplicatedSampleLevelCrashServesFullEpoch) {
  ReplicaRig rig(ReplicaRig::cfg(2, dlfs::core::BatchingMode::kSampleLevel));
  auto& inst = rig.fleet.instance(0);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  inst.sequence(1);
  DeliveryLog log;
  rig.sim.spawn(run_epoch_logged(rig.ds, inst, log), "sample-level-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 2_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(log.order.size(), ReplicaRig::kSamples);
  EXPECT_EQ(log.skipped, 0u);
  EXPECT_TRUE(log.content_ok);
  EXPECT_EQ(inst.engine().nodes_down(), 1u);
}

TEST(FaultInjection, ReplicatedUnbatchedCrashServesFullEpoch) {
  ReplicaRig rig(ReplicaRig::cfg(2, dlfs::core::BatchingMode::kNone));
  auto& inst = rig.fleet.instance(0);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  inst.sequence(1);
  DeliveryLog log;
  rig.sim.spawn(run_epoch_logged(rig.ds, inst, log), "unbatched-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 2_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(log.order.size(), ReplicaRig::kSamples);
  EXPECT_EQ(log.skipped, 0u);
  EXPECT_TRUE(log.content_ok);
  EXPECT_EQ(inst.engine().nodes_down(), 1u);
}

TEST(FaultInjection, ReplicatedViewsCrashServesFullEpoch) {
  // Zero-copy path: a degraded chunk unit serves its samples from
  // per-sample replica buffers instead of the chunk, with exact bytes.
  ReplicaRig rig(ReplicaRig::cfg(2, dlfs::core::BatchingMode::kChunkLevel));
  auto& inst = rig.fleet.instance(0);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  inst.sequence(1);
  std::size_t served = 0;
  std::uint64_t skipped = 0;
  bool content_ok = true;
  rig.sim.spawn(
      [](ReplicaRig& r, dlfs::core::DlfsInstance& inst, std::size_t& served,
         std::uint64_t& skipped, bool& content_ok) -> Task<void> {
        std::vector<std::byte> want, got;
        for (;;) {
          auto b = co_await inst.bread_views(16);
          if (b.end_of_epoch) break;
          EXPECT_LE(b.samples.size() + b.samples_skipped, 16u);
          for (const auto& s : b.samples) {
            got.clear();
            for (const auto piece : s.pieces) {
              got.insert(got.end(), piece.begin(), piece.end());
            }
            want.resize(s.len);
            r.ds.fill_content(s.sample_id, 0, want);
            if (got.size() != s.len ||
                std::memcmp(got.data(), want.data(), s.len) != 0) {
              content_ok = false;
            }
          }
          served += b.samples.size();
          skipped += b.samples_skipped;
          inst.release_views(b);
        }
      }(rig, inst, served, skipped, content_ok),
      "views-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 2_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(served, ReplicaRig::kSamples);
  EXPECT_EQ(skipped, 0u);
  EXPECT_TRUE(content_ok);
  EXPECT_EQ(inst.engine().nodes_down(), 1u);
}

// ---------------------------------------------------------------------------
// Self-healing replication: permanent-loss detection, background
// re-replication, late rejoin, and the zero-copy pin guard.

// Four storage nodes and one pure client: enough spare slots for the
// repair engine to restore k = 2 after a permanent loss (a replacement
// target must exist besides the dead node and the surviving copy).
struct SelfHealRig {
  static constexpr std::size_t kSamples = 2048;

  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  explicit SelfHealRig(const dlfs::core::DlfsConfig& c)
      : cluster(sim, 5, FleetRig::cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(kSamples, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, c, /*client_nodes=*/{4},
              /*storage_nodes=*/{0, 1, 2, 3}) {
    fleet.mount();
  }

  static dlfs::core::DlfsConfig cfg(dlfs::core::ReplicationConfig repl,
                                    dlfs::core::BatchingMode mode,
                                    dlsim::SimDuration reprobe = 0) {
    dlfs::core::DlfsConfig c = RemoteFleetRig::cfg();
    c.fault.replication = repl;
    c.batching = mode;
    c.fault.reprobe_interval = reprobe;
    return c;
  }
};

TEST(SelfHealing, SequentialPermanentLossesRereplicateByteIdentical) {
  // The issue's acceptance bar: with k = 2 and two sequential permanent
  // losses — the second only after the first loss's repair backlog fully
  // drained — a three-epoch run stays byte-identical to the healthy run
  // (same ids, same arena offsets, same contents, zero skips) and the
  // repair engine demonstrably re-replicated data.
  dlfs::core::ReplicationConfig repl(2);
  repl.declare_dead_after = 10_ms;
  std::array<DeliveryLog, 3> good;
  {
    SelfHealRig healthy(
        SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kChunkLevel, 2_ms));
    auto& inst = healthy.fleet.instance(0);
    healthy.sim.spawn(
        [](SelfHealRig& r, dlfs::core::DlfsInstance& inst,
           std::array<DeliveryLog, 3>& logs) -> Task<void> {
          for (std::uint64_t e = 0; e < 3; ++e) {
            inst.sequence(e + 1);
            co_await run_epoch_logged(r.ds, inst, logs[e]);
          }
        }(healthy, inst, good),
        "healthy-epochs");
    healthy.sim.run();
    healthy.sim.rethrow_failures();
    for (const auto& g : good) {
      ASSERT_EQ(g.order.size(), SelfHealRig::kSamples);
      ASSERT_EQ(g.skipped, 0u);
      ASSERT_TRUE(g.content_ok);
    }
  }

  SelfHealRig rig(
      SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kChunkLevel, 2_ms));
  auto& inst = rig.fleet.instance(0);
  ASSERT_NE(rig.fleet.target(0), nullptr);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  std::array<DeliveryLog, 3> log;
  std::uint32_t dead_at_end = 0;
  bool backlog_drained = false;
  rig.sim.spawn(
      [](SelfHealRig& r, dlfs::core::DlfsInstance& inst,
         std::array<DeliveryLog, 3>& logs, std::uint32_t& dead_at_end,
         bool& backlog_drained) -> Task<void> {
        inst.sequence(1);
        co_await run_epoch_logged(r.ds, inst, logs[0]);
        // Wait for the first loss's repairs to drain before losing the
        // second node: sequential losses spaced past the repair-drain
        // time keep at least one live copy of everything.
        while (!r.fleet.repair_backlog().empty()) co_await r.sim.delay(1_ms);
        r.fleet.target(1)->crash();
        inst.sequence(2);
        co_await run_epoch_logged(r.ds, inst, logs[1]);
        while (!r.fleet.repair_backlog().empty()) co_await r.sim.delay(1_ms);
        inst.sequence(3);
        co_await run_epoch_logged(r.ds, inst, logs[2]);
        dead_at_end = r.fleet.num_declared_dead();
        backlog_drained = r.fleet.repair_backlog().empty();
        // Heal the crashed targets so the reprobe daemon can park and the
        // simulator quiesce: a permanently-down node keeps the probe
        // timer armed forever.
        r.fleet.target(0)->recover();
        r.fleet.target(1)->recover();
      }(rig, inst, log, dead_at_end, backlog_drained),
      "lossy-epochs");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  for (std::size_t e = 0; e < 3; ++e) {
    EXPECT_EQ(log[e].skipped, 0u) << "epoch " << e;
    EXPECT_TRUE(log[e].content_ok) << "epoch " << e;
    EXPECT_EQ(log[e].order, good[e].order) << "epoch " << e;
    EXPECT_EQ(log[e].offsets, good[e].offsets) << "epoch " << e;
  }
  const auto stats = inst.stats();
  EXPECT_EQ(stats.samples_skipped, 0u);
  EXPECT_EQ(stats.nodes_declared_dead, 2u);
  EXPECT_GT(stats.samples_rereplicated, 0u);
  EXPECT_GT(stats.repair_bytes, 0u);
  EXPECT_EQ(dead_at_end, 2u);
  EXPECT_TRUE(backlog_drained);
  // After the end-of-test heal, both nodes rejoined as fresh.
  EXPECT_EQ(rig.fleet.num_declared_dead(), 0u);
  EXPECT_TRUE(rig.fleet.repair_backlog().empty());
}

TEST(SelfHealing, TransientOutageBelowDeadlineIsNotDeclaredDead) {
  // A node that bounces — down past the reconnect budget but healed and
  // reprobed before declare_dead_after — is a transient link fault: no
  // declaration, no re-replication.
  dlfs::core::ReplicationConfig repl(2);
  repl.declare_dead_after = 50_ms;
  SelfHealRig rig(
      SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kChunkLevel, 2_ms));
  auto& inst = rig.fleet.instance(0);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  rig.fleet.target(0)->recover_at(rig.sim.now() + 20_ms);
  inst.sequence(1);
  DeliveryLog log;
  rig.sim.spawn(run_epoch_logged(rig.ds, inst, log), "blip-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 10_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(log.skipped, 0u);
  EXPECT_TRUE(log.content_ok);
  // The outage was real (commands timed out) and healed (no node down at
  // the end) — yet never promoted to a declaration.
  EXPECT_GT(inst.engine().transport_stats().timeouts, 0u);
  EXPECT_EQ(inst.engine().nodes_down(), 0u);
  const auto stats = inst.stats();
  EXPECT_EQ(stats.nodes_declared_dead, 0u);
  EXPECT_EQ(stats.samples_rereplicated, 0u);
  EXPECT_EQ(rig.fleet.num_declared_dead(), 0u);
}

TEST(SelfHealing, DeclaredDeadNodeHealsAndRejoinsFresh) {
  // Late rejoin: a node declared dead heals; the probe daemon rediscovers
  // it, the fleet reconciles it as a fresh node (declaration cleared, its
  // primary shard serves again), and the next epoch is full and clean.
  dlfs::core::ReplicationConfig repl(2);
  repl.declare_dead_after = 5_ms;
  SelfHealRig rig(
      SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kChunkLevel, 2_ms));
  auto& inst = rig.fleet.instance(0);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  bool was_declared = false;
  DeliveryLog log2;
  rig.sim.spawn(
      [](SelfHealRig& r, dlfs::core::DlfsInstance& inst, bool& was_declared,
         DeliveryLog& log2) -> Task<void> {
        inst.sequence(1);
        DeliveryLog log1;
        co_await run_epoch_logged(r.ds, inst, log1);
        EXPECT_EQ(log1.skipped, 0u);
        while (!r.fleet.declared_dead(0)) co_await r.sim.delay(1_ms);
        was_declared = true;
        while (!r.fleet.repair_backlog().empty()) co_await r.sim.delay(1_ms);
        r.fleet.target(0)->recover();
        while (r.fleet.declared_dead(0)) co_await r.sim.delay(1_ms);
        inst.sequence(2);
        co_await run_epoch_logged(r.ds, inst, log2);
      }(rig, inst, was_declared, log2),
      "rejoin-epochs");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_TRUE(was_declared);
  EXPECT_EQ(rig.fleet.num_declared_dead(), 0u);
  EXPECT_EQ(inst.engine().nodes_down(), 0u);
  EXPECT_EQ(log2.order.size(), SelfHealRig::kSamples);
  EXPECT_EQ(log2.skipped, 0u);
  EXPECT_TRUE(log2.content_ok);
  EXPECT_GT(inst.stats().samples_rereplicated, 0u);
}

TEST(SelfHealing, ExplicitDeclareTriggersBudgetedRepair) {
  // The explicit lifecycle hooks, with a tight repair-traffic budget: a
  // healthy slot is declared dead by fiat, the repair engine restores
  // k = 2 from surviving copies while pacing itself to the budget, and
  // undeclare() brings the slot back.
  dlfs::core::ReplicationConfig repl(2);
  repl.repair_bytes_per_sec = 16ull * 1024 * 1024;  // 16 MiB/s
  SelfHealRig rig(
      SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kChunkLevel));
  auto& inst = rig.fleet.instance(0);
  dlsim::SimTime t0 = 0, t1 = 0;
  rig.sim.spawn(
      [](SelfHealRig& r, dlsim::SimTime& t0, dlsim::SimTime& t1)
          -> Task<void> {
        t0 = r.sim.now();
        r.fleet.declare_dead(0);
        while (!r.fleet.repair_backlog().empty()) co_await r.sim.delay(1_ms);
        t1 = r.sim.now();
      }(rig, t0, t1),
      "declare-and-drain");
  rig.sim.run_watchdog(rig.sim.now() + 60_sec);
  rig.sim.rethrow_failures();
  const auto stats = inst.stats();
  EXPECT_GT(stats.samples_rereplicated, 0u);
  EXPECT_EQ(stats.repair_bytes, stats.samples_rereplicated * 4096ull);
  EXPECT_GT(stats.repair_throttles, 0u);
  // Repair throughput stays bounded by the budget (25% slack for the
  // unpaced first sample).
  ASSERT_GT(t1, t0);
  const double rate =
      static_cast<double>(stats.repair_bytes) * 1e9 /
      static_cast<double>(t1 - t0);
  EXPECT_LT(rate, 16.0 * 1024 * 1024 * 1.25);
  // Rejoin by fiat: the slot serves its primary shard again.
  rig.fleet.undeclare(0);
  EXPECT_EQ(rig.fleet.num_declared_dead(), 0u);
  inst.sequence(1);
  DeliveryLog log;
  rig.sim.spawn(run_epoch_logged(rig.ds, inst, log), "after-rejoin");
  rig.sim.run_watchdog(rig.sim.now() + 10_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(log.order.size(), SelfHealRig::kSamples);
  EXPECT_EQ(log.skipped, 0u);
  EXPECT_TRUE(log.content_ok);
}

TEST(SelfHealing, ViewPinnedChunksSurviveCrashAndRepair) {
  // Zero-copy regression: a node crashes (and is declared dead, and
  // repaired around) while a ViewBatch still pins chunks. Neither unit
  // recycling nor repair traffic may touch the pinned memory —
  // scribble_on_free turns any violation into a content mismatch.
  dlfs::core::ReplicationConfig repl(2);
  repl.declare_dead_after = 5_ms;
  auto c =
      SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kChunkLevel, 2_ms);
  c.scribble_on_free = true;
  SelfHealRig rig(c);
  auto& inst = rig.fleet.instance(0);
  bool held_ok = true;
  bool content_ok = true;
  std::size_t served = 0;
  std::uint64_t skipped = 0;
  rig.sim.spawn(
      [](SelfHealRig& r, dlfs::core::DlfsInstance& inst, bool& held_ok,
         bool& content_ok, std::size_t& served,
         std::uint64_t& skipped) -> Task<void> {
        inst.sequence(1);
        // Pin the first zero-copy batch and snapshot its expected bytes.
        auto first = co_await inst.bread_views(16);
        dlfs::core::ViewLease lease(inst, std::move(first));
        std::vector<std::vector<std::byte>> want;
        for (const auto& s : lease.batch().samples) {
          std::vector<std::byte> w(s.len);
          r.ds.fill_content(s.sample_id, 0, w);
          want.push_back(std::move(w));
        }
        served += lease.batch().samples.size();
        skipped += lease.batch().samples_skipped;
        // Crash a storage node mid-hold; run the rest of the epoch (the
        // traffic drives crash detection and failover) with the first
        // batch still pinned.
        r.fleet.target(0)->crash();
        std::vector<std::byte> got, w2;
        for (;;) {
          auto b = co_await inst.bread_views(16);
          if (b.end_of_epoch) break;
          for (const auto& s : b.samples) {
            got.clear();
            for (const auto piece : s.pieces) {
              got.insert(got.end(), piece.begin(), piece.end());
            }
            w2.resize(s.len);
            r.ds.fill_content(s.sample_id, 0, w2);
            if (got.size() != s.len ||
                std::memcmp(got.data(), w2.data(), s.len) != 0) {
              content_ok = false;
            }
          }
          served += b.samples.size();
          skipped += b.samples_skipped;
          inst.release_views(b);
        }
        // Let the declaration land and the repair backlog drain, lease
        // still held.
        while (!r.fleet.declared_dead(0)) co_await r.sim.delay(1_ms);
        while (!r.fleet.repair_backlog().empty()) co_await r.sim.delay(1_ms);
        // The pinned views must still read the original bytes.
        for (std::size_t i = 0; i < lease.batch().samples.size(); ++i) {
          const auto& s = lease.batch().samples[i];
          got.clear();
          for (const auto piece : s.pieces) {
            got.insert(got.end(), piece.begin(), piece.end());
          }
          if (got.size() != want[i].size() ||
              std::memcmp(got.data(), want[i].data(), got.size()) != 0) {
            held_ok = false;
          }
        }
        lease.release();
        // Heal the crashed target so the reprobe daemon parks and the
        // simulator quiesces.
        r.fleet.target(0)->recover();
      }(rig, inst, held_ok, content_ok, served, skipped),
      "pinned-crash-epoch");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_TRUE(held_ok);
  EXPECT_TRUE(content_ok);
  EXPECT_EQ(served, SelfHealRig::kSamples);
  EXPECT_EQ(skipped, 0u);
  EXPECT_GT(inst.stats().samples_rereplicated, 0u);
  EXPECT_EQ(inst.stats().view_pins_active, 0u);
}

TEST(SelfHealing, ShardedDirectoryInvalidatesStaleRowsAfterRepair) {
  // Stale-row regression: in sharded mode a client's lookup cache holds
  // per-sample resolutions filled during epoch 1. When the repair engine
  // publishes a replacement copy through SampleDirectory::add_replica,
  // the sample's route version bumps; a pre-repair row must be
  // invalidated and re-resolved, never served as the stale hop set.
  dlfs::core::ReplicationConfig repl(2);
  repl.declare_dead_after = 5_ms;
  auto c =
      SelfHealRig::cfg(repl, dlfs::core::BatchingMode::kSampleLevel, 2_ms);
  c.directory.mode = dlfs::core::DirectoryMode::kSharded;
  SelfHealRig rig(c);
  auto& inst = rig.fleet.instance(0);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  bool was_declared = false;
  DeliveryLog log2;
  rig.sim.spawn(
      [](SelfHealRig& r, dlfs::core::DlfsInstance& inst, bool& was_declared,
         DeliveryLog& log2) -> Task<void> {
        inst.sequence(1);
        DeliveryLog log1;
        co_await run_epoch_logged(r.ds, inst, log1);
        EXPECT_EQ(log1.skipped, 0u);
        while (!r.fleet.declared_dead(0)) co_await r.sim.delay(1_ms);
        was_declared = true;
        while (!r.fleet.repair_backlog().empty()) co_await r.sim.delay(1_ms);
        // Re-read with the node still dead: every sample the repair
        // engine re-homed must resolve its NEW hop set through the view
        // (stale pre-repair rows invalidated), not skip or mis-read.
        inst.sequence(2);
        co_await run_epoch_logged(r.ds, inst, log2);
        // Heal the target so the reprobe daemon parks and the simulator
        // quiesces.
        r.fleet.target(0)->recover();
      }(rig, inst, was_declared, log2),
      "sharded-repair-epochs");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_TRUE(was_declared);
  EXPECT_EQ(log2.order.size(), SelfHealRig::kSamples);
  EXPECT_EQ(log2.skipped, 0u);
  EXPECT_TRUE(log2.content_ok);
  const auto stats = inst.stats();
  EXPECT_GT(stats.samples_rereplicated, 0u);
  // The fix is observable: post-repair resolutions hit versioned rows
  // and invalidated them instead of serving the stale entries.
  EXPECT_GT(stats.directory.stale_invalidations, 0u);
}

TEST(FaultInjection, MidEpochReprobeRejoinsNodeWithoutEpochBoundary) {
  // No replication — the point is the background probe daemon: the node
  // crashes and heals mid-epoch, and the daemon rejoins it within one
  // reprobe interval, so only the down window's samples are skipped
  // (far fewer than the node's full share) within the SAME epoch.
  auto c = RemoteFleetRig::cfg();
  c.fault.reprobe_interval = 2_ms;
  ReplicaRig rig(c);
  auto& inst = rig.fleet.instance(0);
  const dlsim::SimTime t0 = rig.sim.now();
  rig.fleet.target(0)->crash_at(t0 + 500_us);
  rig.fleet.target(0)->recover_at(t0 + 20_ms);
  inst.sequence(1);
  EpochTally t;
  rig.sim.spawn(
      [](ReplicaRig& r, dlfs::core::DlfsInstance& inst,
         EpochTally& t) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        for (;;) {
          auto b = co_await inst.bread(16, arena);
          if (b.end_of_epoch) break;
          EXPECT_LE(b.samples.size() + b.samples_skipped, 16u);
          t.served += b.samples.size();
          t.skipped += b.samples_skipped;
          // App compute between breads stretches the epoch well past the
          // recovery point, so the rejoin lands mid-epoch.
          co_await r.sim.delay(500_us);
        }
      }(rig, inst, t),
      "reprobe-epoch");
  rig.sim.run_watchdog(t0 + 2_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(t.served + t.skipped, ReplicaRig::kSamples);
  EXPECT_GT(t.skipped, 0u);
  // The down window is ~13 ms of a ~64 ms epoch; without the mid-epoch
  // rejoin every node-0 sample after the crash (~half the epoch's
  // remainder) would have been lost.
  EXPECT_LT(t.skipped, ReplicaRig::kSamples / 2);
  EXPECT_EQ(inst.engine().nodes_down(), 0u);
  EXPECT_TRUE(rig.fleet.directory().node_available(0));
  EXPECT_GE(inst.engine().transport_stats().reconnects, 1u);
}

// ---------------------------------------------------------------------------
// Async prefetcher under injected faults

TEST(FaultInjection, PrefetcherSurvivesTransientFaultSweep) {
  // The default DlfsConfig has the async prefetcher on: every rate must
  // complete a full epoch (retries absorb the faults), and a second clean
  // epoch proves the daemon outlived the sweep.
  struct Case {
    double rate;
    std::uint64_t seed;
  };
  std::uint64_t total_retries = 0;
  for (const Case c : {Case{0.15, 3}, Case{0.3, 17}, Case{0.45, 29}}) {
    FleetRig rig(1);
    auto& inst = rig.fleet.instance(0);
    rig.cluster.node(0).device().inject_faults(c.rate, c.seed);
    inst.sequence(1);
    EpochTally t1;
    rig.sim.spawn(run_epoch(inst, t1), "faulty-epoch");
    rig.sim.run_watchdog(rig.sim.now() + 1_sec);
    rig.sim.rethrow_failures();
    EXPECT_EQ(t1.served, 128u) << "rate " << c.rate;
    EXPECT_EQ(t1.skipped, 0u) << "rate " << c.rate;
    rig.cluster.node(0).device().inject_faults(0.0);
    inst.sequence(2);
    EpochTally t2;
    rig.sim.spawn(run_epoch(inst, t2), "clean-epoch");
    rig.sim.run_watchdog(rig.sim.now() + 1_sec);
    rig.sim.rethrow_failures();
    EXPECT_EQ(t2.served, 128u) << "rate " << c.rate;
    total_retries += inst.engine().retries();
    EXPECT_GT(inst.stats().prefetch.units_issued, 0u);
  }
  EXPECT_GT(total_retries, 0u);
}

TEST(FaultInjection, ReadAheadErrorSurfacesOnOwningBreadAndDaemonSurvives) {
  FleetRig rig(1);
  auto& inst = rig.fleet.instance(0);
  rig.cluster.node(0).device().inject_faults(1.0);
  inst.sequence(1);
  auto p = rig.sim.spawn(
      [](dlfs::core::DlfsInstance& inst) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        (void)co_await inst.bread(16, arena);
      }(inst),
      "doomed-prefetched-bread");
  rig.sim.run();
  // The prefetch daemon issued the unit, but its media error belongs to
  // the bread that needed the unit.
  ASSERT_TRUE(p.failed());
  try {
    p.rethrow();
    FAIL() << "expected IoError";
  } catch (const dlfs::core::IoError& e) {
    EXPECT_EQ(e.kind, dlfs::core::IoErrorKind::kMedia);
  }
  // The daemon must survive the bad read-ahead: with faults off the next
  // epoch is served in full through the same prefetcher.
  rig.cluster.node(0).device().inject_faults(0.0);
  inst.sequence(2);
  EpochTally t;
  auto p2 = rig.sim.spawn(run_epoch(inst, t), "recovered-epoch");
  rig.sim.run();
  EXPECT_FALSE(p2.failed());
  EXPECT_EQ(t.served, 128u);
  EXPECT_GT(inst.stats().prefetch.units_issued, 0u);
}

// ---------------------------------------------------------------------------
// Ext4 kernel-path retries

TEST(FaultInjection, Ext4RetriesThenSucceeds) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<dlfs::hw::RamBackingStore>(64_MiB));
  dlfs::osfs::Ext4Fs fs(sim, dev, dlfs::default_calibration());
  dlsim::CpuCore core(sim, "app");
  dlfs::osfs::OsThread t(fs, core);
  std::vector<std::byte> data(8192, std::byte{0x7e});
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               std::span<const std::byte> d) -> Task<void> {
    const int fd = co_await fs.create(t, "f");
    co_await fs.append(t, fd, d);
    co_await fs.close(t, fd);
  }(fs, t, data));
  sim.run();
  sim.rethrow_failures();
  fs.drop_caches();
  dev.inject_faults(0.5, 21);
  bool ok = false;
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               bool& ok) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    std::vector<std::byte> buf(8192);
    const auto n = co_await fs.pread(t, *fd, buf, 0);
    ok = n == 8192 && buf[100] == std::byte{0x7e};
    co_await fs.close(t, *fd);
  }(fs, t, ok));
  sim.run();
  sim.rethrow_failures();
  EXPECT_TRUE(ok);
  EXPECT_GT(dev.faults_injected(), 0u);
}

TEST(FaultInjection, Ext4PermanentFaultIsEio) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0",
                 std::make_unique<dlfs::hw::RamBackingStore>(64_MiB));
  dlfs::osfs::Ext4Fs fs(sim, dev, dlfs::default_calibration());
  dlsim::CpuCore core(sim, "app");
  dlfs::osfs::OsThread t(fs, core);
  std::vector<std::byte> data(4096, std::byte{1});
  sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::osfs::OsThread& t,
               std::span<const std::byte> d) -> Task<void> {
    const int fd = co_await fs.create(t, "f");
    co_await fs.append(t, fd, d);
    co_await fs.close(t, fd);
  }(fs, t, data));
  sim.run();
  sim.rethrow_failures();
  fs.drop_caches();
  dev.inject_faults(1.0);
  auto p = sim.spawn([](dlfs::osfs::Ext4Fs& fs,
                        dlfs::osfs::OsThread& t) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    std::vector<std::byte> buf(4096);
    (void)co_await fs.pread(t, *fd, buf, 0);
  }(fs, t));
  sim.run(/*allow_blocked=*/true);
  EXPECT_TRUE(p.failed());
}

}  // namespace

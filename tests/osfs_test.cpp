// Tests for the Ext4-like kernel baseline: functional correctness
// (create/append/open/pread round trips), the page cache and dentry
// cache, kernel-cost charging, and multi-thread behaviour.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "common/units.hpp"
#include "hw/nvme/backing_store.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "osfs/ext4.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::hw::NvmeDevice;
using dlfs::hw::RamBackingStore;
using dlfs::osfs::Ext4Config;
using dlfs::osfs::Ext4Fs;
using dlfs::osfs::OsThread;
using dlfs::osfs::PageCache;
using dlsim::CpuCore;
using dlsim::SimTime;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

// ---------------------------------------------------------------------------
// PageCache

TEST(PageCache, HitMissAndLru) {
  PageCache pc(2);
  EXPECT_FALSE(pc.contains(1, 0));
  pc.insert(1, 0);
  pc.insert(1, 1);
  EXPECT_TRUE(pc.contains(1, 0));  // refreshes 0
  pc.insert(1, 2);                 // evicts page 1 (LRU)
  EXPECT_TRUE(pc.contains(1, 0));
  EXPECT_FALSE(pc.contains(1, 1));
  EXPECT_TRUE(pc.contains(1, 2));
}

TEST(PageCache, InvalidatePerInode) {
  PageCache pc(10);
  pc.insert(1, 0);
  pc.insert(2, 0);
  pc.invalidate(1);
  EXPECT_FALSE(pc.contains(1, 0));
  EXPECT_TRUE(pc.contains(2, 0));
}

TEST(PageCache, DropAll) {
  PageCache pc(10);
  pc.insert(1, 0);
  pc.drop_all();
  EXPECT_EQ(pc.size(), 0u);
}

// ---------------------------------------------------------------------------
// Ext4Fs

struct Ext4Rig {
  Simulator sim;
  NvmeDevice device;
  Ext4Fs fs;
  CpuCore core;
  OsThread thread;

  explicit Ext4Rig(const Ext4Config& cfg = Ext4Config{})
      : device(sim, "nvme0", std::make_unique<RamBackingStore>(1_GiB)),
        fs(sim, device, dlfs::default_calibration(), cfg),
        core(sim, "app0"),
        thread(fs, core) {}

  void write_file(const std::string& path, std::span<const std::byte> data) {
    sim.spawn([](Ext4Fs& fs, OsThread& t, std::string p,
                 std::span<const std::byte> d) -> Task<void> {
      const int fd = co_await fs.create(t, p);
      co_await fs.append(t, fd, d);
      co_await fs.close(t, fd);
    }(fs, thread, path, data));
    sim.run();
    sim.rethrow_failures();
  }
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  }
  return v;
}

TEST(Ext4, ClaimsKernelOwnership) {
  Ext4Rig rig;
  EXPECT_EQ(rig.device.owner(), dlfs::hw::DeviceOwner::kKernel);
}

TEST(Ext4, CreateWriteReadRoundTrip) {
  Ext4Rig rig;
  auto data = pattern(10000);
  rig.write_file("dir/sample0", data);
  std::vector<std::byte> out(10000);
  std::uint64_t got = 0;
  rig.sim.spawn([](Ext4Fs& fs, OsThread& t, std::span<std::byte> o,
                   std::uint64_t& n) -> Task<void> {
    auto fd = co_await fs.open(t, "dir/sample0");
    EXPECT_TRUE(fd.has_value());
    n = co_await fs.pread(t, *fd, o, 0);
    co_await fs.close(t, *fd);
  }(rig.fs, rig.thread, out, got));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(got, 10000u);
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
}

TEST(Ext4, OpenMissingFileReturnsNullopt) {
  Ext4Rig rig;
  bool found = true;
  rig.sim.spawn([](Ext4Fs& fs, OsThread& t, bool& f) -> Task<void> {
    auto fd = co_await fs.open(t, "nope");
    f = fd.has_value();
  }(rig.fs, rig.thread, found));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_FALSE(found);
}

TEST(Ext4, PreadAtOffsetAndBeyondEof) {
  Ext4Rig rig;
  auto data = pattern(8192);
  rig.write_file("f", data);
  std::vector<std::byte> out(4096);
  std::uint64_t n_mid = 0, n_eof = 0;
  rig.sim.spawn([](Ext4Fs& fs, OsThread& t, std::span<std::byte> o,
                   std::uint64_t& nm, std::uint64_t& ne) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    nm = co_await fs.pread(t, *fd, o, 5000);
    ne = co_await fs.pread(t, *fd, o, 9000);
    co_await fs.close(t, *fd);
  }(rig.fs, rig.thread, out, n_mid, n_eof));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(n_mid, 3192u);  // clipped to EOF
  EXPECT_EQ(n_eof, 0u);
  EXPECT_EQ(std::memcmp(out.data(), pattern(8192).data() + 5000, 3192), 0);
}

TEST(Ext4, SecondReadServedFromPageCache) {
  Ext4Rig rig;
  rig.write_file("f", pattern(128_KiB));
  std::vector<std::byte> out(128_KiB);
  dlsim::SimDuration t_cold = 0, t_warm = 0;
  rig.sim.spawn([](Simulator& s, Ext4Fs& fs, OsThread& t,
                   std::span<std::byte> o, dlsim::SimDuration& c,
                   dlsim::SimDuration& w) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    auto t0 = s.now();
    (void)co_await fs.pread(t, *fd, o, 0);
    c = s.now() - t0;
    t0 = s.now();
    (void)co_await fs.pread(t, *fd, o, 0);
    w = s.now() - t0;
    co_await fs.close(t, *fd);
  }(rig.sim, rig.fs, rig.thread, out, t_cold, t_warm));
  rig.sim.run();
  rig.sim.rethrow_failures();
  // Cold: device time for 128 KiB (~62us). Warm: probes + copy only.
  EXPECT_GT(t_cold, 50_us);
  EXPECT_LT(t_warm, t_cold / 2);
  EXPECT_GT(rig.fs.page_cache().hits(), 0u);
}

TEST(Ext4, DropCachesRestoresColdTiming) {
  Ext4Rig rig;
  rig.write_file("f", pattern(64_KiB));
  std::vector<std::byte> out(64_KiB);
  dlsim::SimDuration t1 = 0, t2 = 0;
  rig.sim.spawn([](Simulator& s, Ext4Fs& fs, OsThread& t,
                   std::span<std::byte> o, dlsim::SimDuration& a,
                   dlsim::SimDuration& b) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    (void)co_await fs.pread(t, *fd, o, 0);
    fs.drop_caches();
    auto t0 = s.now();
    (void)co_await fs.pread(t, *fd, o, 0);
    a = s.now() - t0;
    t0 = s.now();
    (void)co_await fs.pread(t, *fd, o, 0);
    b = s.now() - t0;
    co_await fs.close(t, *fd);
  }(rig.sim, rig.fs, rig.thread, out, t1, t2));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_GT(t1, t2 * 2);  // post-drop read went back to the device
}

TEST(Ext4, ColdOpenCostsTwoDeviceReads) {
  // A dentry-cache miss costs a directory block + inode read: ~2 blocking
  // 4 KiB device reads ~= 2 * (11.8us + kernel charges).
  Ext4Config cfg;
  cfg.dentry_cache_entries = 4;  // tiny: forces misses
  Ext4Rig rig(cfg);
  for (int i = 0; i < 32; ++i) rig.write_file("f" + std::to_string(i), pattern(512));
  rig.fs.drop_caches();
  dlsim::SimDuration t_open = 0;
  rig.sim.spawn([](Simulator& s, Ext4Fs& fs, OsThread& t,
                   dlsim::SimDuration& out) -> Task<void> {
    const auto t0 = s.now();
    auto fd = co_await fs.open(t, "f7");
    out = s.now() - t0;
    co_await fs.close(t, *fd);
  }(rig.sim, rig.fs, rig.thread, t_open));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_GT(t_open, 20_us);
  EXPECT_LT(t_open, 50_us);
}

TEST(Ext4, WarmOpenIsCheap) {
  Ext4Rig rig;
  rig.write_file("f", pattern(512));
  dlsim::SimDuration t_open = 0;
  rig.sim.spawn([](Simulator& s, Ext4Fs& fs, OsThread& t,
                   dlsim::SimDuration& out) -> Task<void> {
    auto fd0 = co_await fs.open(t, "f");  // cold-ish (created warm though)
    co_await fs.close(t, *fd0);
    const auto t0 = s.now();
    auto fd = co_await fs.open(t, "f");
    out = s.now() - t0;
    co_await fs.close(t, *fd);
  }(rig.sim, rig.fs, rig.thread, t_open));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_LT(t_open, 3_us);
}

TEST(Ext4, SmallRandomReadsPayPerReadKernelTax) {
  // QD1 4 KiB reads: ~11.8us device + ~6-7us kernel path. Throughput per
  // thread should land near 50-60K samples/s — the Ext4-Base curve.
  Ext4Rig rig;
  rig.write_file("data", pattern(1_MiB));
  constexpr int kReads = 100;
  SimTime elapsed = 0;
  rig.sim.spawn([](Simulator& s, Ext4Fs& fs, OsThread& t,
                   SimTime& out) -> Task<void> {
    auto fd = co_await fs.open(t, "data");
    std::vector<std::byte> buf(4096);
    const auto t0 = s.now();
    for (int i = 0; i < kReads; ++i) {
      // Stride > page size, previously-unread pages.
      (void)co_await fs.pread(t, *fd, buf,
                              static_cast<std::uint64_t>(i) * 8192);
    }
    out = s.now() - t0;
    co_await fs.close(t, *fd);
  }(rig.sim, rig.fs, rig.thread, elapsed));
  rig.sim.run();
  rig.sim.rethrow_failures();
  const double per_read_us = dlsim::to_micros(elapsed) / kReads;
  EXPECT_GT(per_read_us, 12.0);
  EXPECT_LT(per_read_us, 25.0);
}

TEST(Ext4, TwoThreadsOverlapDeviceTime) {
  Ext4Rig rig;
  rig.write_file("a", pattern(512_KiB, 1));
  rig.write_file("b", pattern(512_KiB, 2));
  rig.fs.drop_caches();
  CpuCore core2(rig.sim, "app1");
  OsThread thread2(rig.fs, core2);
  const SimTime start = rig.sim.now();
  SimTime done = 0;
  int remaining = 2;
  auto reader = [](Simulator& s, Ext4Fs& fs, OsThread& t, std::string path,
                   int& left, SimTime& out) -> Task<void> {
    auto fd = co_await fs.open(t, path);
    std::vector<std::byte> buf(512_KiB);
    (void)co_await fs.pread(t, *fd, buf, 0);
    co_await fs.close(t, *fd);
    if (--left == 0) out = s.now();
  };
  rig.sim.spawn(reader(rig.sim, rig.fs, rig.thread, "a", remaining, done));
  rig.sim.spawn(reader(rig.sim, rig.fs, thread2, "b", remaining, done));
  rig.sim.run();
  rig.sim.rethrow_failures();
  done -= start;
  // Two 512 KiB reads serialized on the device pipe: ~2 * 210us, but far
  // less than the fully serial path (2 * (210us + kernel)). Mostly checks
  // both threads made progress concurrently without deadlock.
  EXPECT_LT(done, 600_us);
}

TEST(Ext4, CreateExistingPathThrows) {
  Ext4Rig rig;
  rig.write_file("dup", pattern(16));
  auto p = rig.sim.spawn([](Ext4Fs& fs, OsThread& t) -> Task<void> {
    (void)co_await fs.create(t, "dup");
  }(rig.fs, rig.thread));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

TEST(Ext4, FileSize) {
  Ext4Rig rig;
  rig.write_file("f", pattern(12345));
  std::optional<std::uint64_t> size;
  rig.sim.spawn([](Ext4Fs& fs, OsThread& t,
                   std::optional<std::uint64_t>& out) -> Task<void> {
    out = co_await fs.file_size(t, "f");
  }(rig.fs, rig.thread, size));
  rig.sim.run();
  rig.sim.rethrow_failures();
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 12345u);
}

TEST(Ext4, MultiAppendBuildsOneExtent) {
  Ext4Rig rig;
  auto d1 = pattern(4096, 1);
  auto d2 = pattern(4096, 2);
  rig.sim.spawn([](Ext4Fs& fs, OsThread& t, std::span<const std::byte> a,
                   std::span<const std::byte> b) -> Task<void> {
    const int fd = co_await fs.create(t, "f");
    co_await fs.append(t, fd, a);
    co_await fs.append(t, fd, b);
    co_await fs.close(t, fd);
  }(rig.fs, rig.thread, d1, d2));
  rig.sim.run();
  rig.sim.rethrow_failures();
  std::vector<std::byte> out(8192);
  std::uint64_t got = 0;
  rig.sim.spawn([](Ext4Fs& fs, OsThread& t, std::span<std::byte> o,
                   std::uint64_t& n) -> Task<void> {
    auto fd = co_await fs.open(t, "f");
    n = co_await fs.pread(t, *fd, o, 0);
    co_await fs.close(t, *fd);
  }(rig.fs, rig.thread, out, got));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(got, 8192u);
  EXPECT_EQ(std::memcmp(out.data(), d1.data(), 4096), 0);
  EXPECT_EQ(std::memcmp(out.data() + 4096, d2.data(), 4096), 0);
}

}  // namespace

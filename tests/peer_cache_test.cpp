// Cooperative peer sample cache: the per-node PeerCacheIndex (co-located
// instances serving each other's resident samples), the consistent-hash
// PeerCacheDirectory (cross-node holder discovery with an advertise
// budget), and the fleet-level read paths — intra-node peer hits, remote
// peer pulls over the fabric, pin-protected serving under eviction
// pressure, and exactly-once skip accounting when both the peer and the
// replica route fail.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "dlfs/sample_cache.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::core::PeerCacheConfig;
using dlfs::core::PeerCacheDirectory;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

// ---------------------------------------------------------------------------
// PeerCacheDirectory unit behaviour

TEST(PeerCacheDirectory, HomeClientIsDeterministicAndSpread) {
  PeerCacheConfig cfg;
  cfg.enabled = true;
  PeerCacheDirectory dir(cfg, 4);
  std::array<bool, 4> seen{};
  for (std::size_t id = 0; id < 64; ++id) {
    const std::uint32_t home = dir.home_client(id);
    ASSERT_LT(home, 4u);
    EXPECT_EQ(home, dir.home_client(id));  // stable across calls
    seen[home] = true;
  }
  // The consistent-hash probe spreads homes across clients.
  int distinct = 0;
  for (bool b : seen) distinct += b ? 1 : 0;
  EXPECT_GE(distinct, 2);
}

TEST(PeerCacheDirectory, AdvertiseFindRetractRoundTrip) {
  PeerCacheConfig cfg;
  cfg.enabled = true;  // budget 0 = unlimited
  PeerCacheDirectory dir(cfg, 3);
  dir.advertise(/*holder=*/1, /*node=*/10, /*sample=*/7, /*bytes=*/4096);
  const auto h = dir.find(7, /*asking=*/0);
  ASSERT_TRUE(h.found);
  EXPECT_EQ(h.client, 1u);
  EXPECT_EQ(h.node, 10u);
  // The only holder is the asker itself: no peer to serve it.
  EXPECT_FALSE(dir.find(7, 1).found);
  EXPECT_EQ(dir.advertised_bytes(10), 4096u);
  // Re-advertising the same (holder, sample) is idempotent.
  dir.advertise(1, 10, 7, 4096);
  EXPECT_EQ(dir.advertised_bytes(10), 4096u);
  dir.retract(1, 7);
  EXPECT_FALSE(dir.find(7, 0).found);
  EXPECT_EQ(dir.advertised_bytes(10), 0u);
}

TEST(PeerCacheDirectory, LruBudgetRetractsOldestAdvertisement) {
  PeerCacheConfig cfg;
  cfg.enabled = true;
  cfg.advertise_budget_bytes = 8192;  // room for two 4 KiB samples
  cfg.eviction = PeerCacheConfig::Eviction::kLru;
  PeerCacheDirectory dir(cfg, 4);
  dir.advertise(0, 5, 1, 4096);
  dir.advertise(0, 5, 2, 4096);
  dir.advertise(0, 5, 3, 4096);  // pushes sample 1 out
  EXPECT_FALSE(dir.find(1, 9).found);
  EXPECT_TRUE(dir.find(2, 9).found);
  EXPECT_TRUE(dir.find(3, 9).found);
  EXPECT_EQ(dir.advertised_bytes(5), 8192u);
  EXPECT_EQ(dir.budget_retractions(), 1u);
  EXPECT_EQ(dir.refused_adverts(), 0u);
}

TEST(PeerCacheDirectory, RefuseNewBudgetKeepsOldSet) {
  PeerCacheConfig cfg;
  cfg.enabled = true;
  cfg.advertise_budget_bytes = 8192;
  cfg.eviction = PeerCacheConfig::Eviction::kRefuseNew;
  PeerCacheDirectory dir(cfg, 4);
  dir.advertise(0, 5, 1, 4096);
  dir.advertise(0, 5, 2, 4096);
  dir.advertise(0, 5, 3, 4096);  // refused: the old set stays
  EXPECT_TRUE(dir.find(1, 9).found);
  EXPECT_TRUE(dir.find(2, 9).found);
  EXPECT_FALSE(dir.find(3, 9).found);
  EXPECT_EQ(dir.advertised_bytes(5), 8192u);
  EXPECT_EQ(dir.budget_retractions(), 0u);
  EXPECT_EQ(dir.refused_adverts(), 1u);
  // retract_all clears the holder's whole advertised set.
  dir.retract_all(0);
  EXPECT_FALSE(dir.find(1, 9).found);
  EXPECT_FALSE(dir.find(2, 9).found);
  EXPECT_EQ(dir.advertised_bytes(5), 0u);
}

// ---------------------------------------------------------------------------
// Fleet-level peer reads

// `clients`/`storage` pick the topology: co-located instances share one
// node entry, remote peers get one node each. Sample-level batching so
// every demand read is an individually peer-servable unit.
struct PeerRig {
  static constexpr std::size_t kSamples = 512;

  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;

  PeerRig(std::uint32_t nodes, std::vector<std::uint32_t> clients,
          std::vector<std::uint32_t> storage, const dlfs::core::DlfsConfig& c)
      : cluster(sim, nodes, node_cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(kSamples, 4096)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, c, std::move(clients), std::move(storage)) {
    fleet.mount();
  }

  static dlfs::cluster::NodeConfig node_cfg() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;  // data-integrity checks need real bytes
    nc.device_capacity = 256_MiB;
    return nc;
  }

  /// `cache_chunks` sizes each instance's resident set (one chunk per
  /// 4 KiB sample here): >= the per-client epoch share keeps a client's
  /// whole share resident, smaller values force eviction pressure.
  static dlfs::core::DlfsConfig cfg(std::size_t cache_chunks) {
    dlfs::core::DlfsConfig c;
    c.batching = dlfs::core::BatchingMode::kSampleLevel;
    c.chunk_bytes = 64 * 1024;  // small pool chunks: many cache slots
    c.cache_chunks = cache_chunks;
    c.peer_cache.enabled = true;
    // Shrunken transport fault budget (only the failover test crashes a
    // target, but a short budget never hurts a healthy run).
    c.fault.nvmf.command_timeout = 5_ms;
    c.fault.nvmf.reconnect_backoff = 200_us;
    c.fault.nvmf.reconnect_backoff_max = 1_ms;
    c.fault.nvmf.reconnect_attempts = 4;
    return c;
  }
};

struct DeliveryLog {
  std::vector<std::uint32_t> order;
  std::uint64_t skipped = 0;
  bool content_ok = true;
};

Task<void> run_epoch_logged(const dlfs::dataset::Dataset& ds,
                            dlfs::core::DlfsInstance& inst,
                            DeliveryLog& log) {
  std::vector<std::byte> arena(64_KiB);
  std::vector<std::byte> want;
  for (;;) {
    auto b = co_await inst.bread(16, arena);
    if (b.end_of_epoch) break;
    // Skip accounting is per sample, exactly once: a batch that asked
    // for 16 samples can never report more than 16 outcomes in total.
    EXPECT_LE(b.samples.size() + b.samples_skipped, 16u);
    for (const auto& s : b.samples) {
      log.order.push_back(s.sample_id);
      want.resize(s.len);
      ds.fill_content(s.sample_id, 0, want);
      if (std::memcmp(arena.data() + s.offset_in_arena, want.data(), s.len) !=
          0) {
        log.content_ok = false;
      }
    }
    log.skipped += b.samples_skipped;
  }
}

TEST(PeerCache, CoLocatedInstancesServePeerHitsAfterReshuffle) {
  // Two instances on one client node. Epoch 1 (seed 1) leaves each
  // client's strided half resident in its own cache; epoch 2 reshuffles
  // with a new seed, so about half of each client's share is resident
  // only at its co-located peer — served through the PeerCacheIndex with
  // no fabric traffic.
  PeerRig rig(2, /*clients=*/{1, 1}, /*storage=*/{0},
              PeerRig::cfg(/*cache_chunks=*/320));
  auto& a = rig.fleet.instance(0);
  auto& b = rig.fleet.instance(1);

  a.sequence(1);
  b.sequence(1);
  DeliveryLog a1, b1;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a1), "colocated-a-e1");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b1), "colocated-b-e1");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(a1.order.size() + b1.order.size(), PeerRig::kSamples);
  EXPECT_TRUE(a1.content_ok);
  EXPECT_TRUE(b1.content_ok);

  a.sequence(2);
  b.sequence(2);
  DeliveryLog a2, b2;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a2), "colocated-a-e2");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b2), "colocated-b-e2");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(a2.order.size() + b2.order.size(), PeerRig::kSamples);
  EXPECT_EQ(a2.skipped + b2.skipped, 0u);
  EXPECT_TRUE(a2.content_ok);
  EXPECT_TRUE(b2.content_ok);
  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_GT(sa.peer_hits_local + sb.peer_hits_local, 0u);
  // Same node: a co-located holder always wins before the fabric path.
  EXPECT_EQ(sa.peer_hits_remote + sb.peer_hits_remote, 0u);
  EXPECT_GT(sa.peer_bytes + sb.peer_bytes, 0u);
}

TEST(PeerCache, RemotePeerPullsOverFabricAfterReshuffle) {
  // Two client nodes, one storage node. Epoch 2's reshuffled share pulls
  // samples the other client cached in epoch 1 out of its DRAM over the
  // fabric (peer-read RPC through the consistent-hash home), instead of
  // re-reading the single NVMe device.
  PeerRig rig(3, /*clients=*/{1, 2}, /*storage=*/{0},
              PeerRig::cfg(/*cache_chunks=*/320));
  auto& a = rig.fleet.instance(0);
  auto& b = rig.fleet.instance(1);

  a.sequence(1);
  b.sequence(1);
  DeliveryLog a1, b1;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a1), "remote-a-e1");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b1), "remote-b-e1");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  ASSERT_EQ(a1.order.size() + b1.order.size(), PeerRig::kSamples);

  a.sequence(2);
  b.sequence(2);
  DeliveryLog a2, b2;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a2), "remote-a-e2");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b2), "remote-b-e2");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(a2.skipped + b2.skipped, 0u);
  EXPECT_TRUE(a2.content_ok);
  EXPECT_TRUE(b2.content_ok);
  const auto sa = a.stats();
  const auto sb = b.stats();
  // Separate nodes: peer service crosses the fabric, never the local path.
  EXPECT_GT(sa.peer_hits_remote + sb.peer_hits_remote, 0u);
  EXPECT_EQ(sa.peer_hits_local + sb.peer_hits_local, 0u);
  EXPECT_GT(sa.peer_bytes + sb.peer_bytes, 0u);
  // Directory bookkeeping stayed consistent with the caches.
  ASSERT_NE(rig.fleet.peer_directory(), nullptr);
  EXPECT_GT(rig.fleet.peer_directory()->advertised_bytes(1) +
                rig.fleet.peer_directory()->advertised_bytes(2),
            0u);
}

TEST(PeerCache, PinnedPeerServeSurvivesEvictionPressure) {
  // Holder caches smaller than the per-client share: every epoch-2 serve
  // races the holder's own inserts, so a pinned entry must survive the
  // eviction scan until the peer copy lands. scribble_on_free turns any
  // violation (a view read out of a recycled chunk) into 0xDD bytes —
  // the content check would fail loudly.
  auto c = PeerRig::cfg(/*cache_chunks=*/96);  // share is 256 samples
  c.scribble_on_free = true;
  PeerRig rig(2, /*clients=*/{1, 1}, /*storage=*/{0}, c);
  auto& a = rig.fleet.instance(0);
  auto& b = rig.fleet.instance(1);

  a.sequence(1);
  b.sequence(1);
  DeliveryLog a1, b1;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a1), "pressure-a-e1");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b1), "pressure-b-e1");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();

  a.sequence(2);
  b.sequence(2);
  DeliveryLog a2, b2;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a2), "pressure-a-e2");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b2), "pressure-b-e2");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  EXPECT_EQ(a2.order.size() + b2.order.size(), PeerRig::kSamples);
  EXPECT_EQ(a2.skipped + b2.skipped, 0u);
  // The load-bearing assertions: every delivered byte (peer-served or
  // not) matched the canonical content — no serve read a scribbled chunk.
  EXPECT_TRUE(a2.content_ok);
  EXPECT_TRUE(b2.content_ok);
  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_GT(sa.peer_hits_local + sb.peer_hits_local, 0u);
}

TEST(PeerCache, CrashFailoverSkipsExactlyOncePerSample) {
  // Two storage nodes, two remote clients, no replication, peer cache on.
  // A mid-epoch-2 crash of one target makes its samples retry through
  // both the peer route and the (dead) replica-less device route; a
  // sample must land in exactly one bucket — served or skipped — never
  // both. Peer hits can rescue some of the dead node's samples (their
  // bytes live in a peer's DRAM), which is the cooperative cache's
  // availability win; the accounting identity must hold regardless.
  PeerRig rig(4, /*clients=*/{2, 3}, /*storage=*/{0, 1},
              PeerRig::cfg(/*cache_chunks=*/320));
  auto& a = rig.fleet.instance(0);
  auto& b = rig.fleet.instance(1);

  a.sequence(1);
  b.sequence(1);
  DeliveryLog a1, b1;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a1), "failover-a-e1");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b1), "failover-b-e1");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  ASSERT_EQ(a1.skipped + b1.skipped, 0u);

  ASSERT_NE(rig.fleet.target(0), nullptr);
  rig.fleet.target(0)->crash_at(rig.sim.now() + 500_us);
  a.sequence(2);
  b.sequence(2);
  DeliveryLog a2, b2;
  rig.sim.spawn(run_epoch_logged(rig.ds, a, a2), "failover-a-e2");
  rig.sim.spawn(run_epoch_logged(rig.ds, b, b2), "failover-b-e2");
  rig.sim.run_watchdog(rig.sim.now() + 30_sec);
  rig.sim.rethrow_failures();
  // Exactly-once, conservation form: every sample of the epoch is served
  // once or skipped once (run_epoch_logged asserts the per-batch bound).
  EXPECT_EQ(a2.order.size() + a2.skipped + b2.order.size() + b2.skipped,
            PeerRig::kSamples);
  EXPECT_TRUE(a2.content_ok);
  EXPECT_TRUE(b2.content_ok);
  // The per-instance counter agrees with the per-batch tallies — no
  // double count when a sample unwound through peer and replica routes.
  EXPECT_EQ(a.stats().samples_skipped, a2.skipped);
  EXPECT_EQ(b.stats().samples_skipped, b2.skipped);
}

TEST(PeerCache, DisabledConfigKeepsCountersAtZero) {
  // peer_cache.enabled = false must leave the read path untouched: no
  // index, no directory, all peer counters pinned at zero.
  auto c = PeerRig::cfg(/*cache_chunks=*/320);
  c.peer_cache.enabled = false;
  PeerRig rig(2, /*clients=*/{1, 1}, /*storage=*/{0}, c);
  auto& a = rig.fleet.instance(0);
  auto& b = rig.fleet.instance(1);
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    a.sequence(seed);
    b.sequence(seed);
    DeliveryLog la, lb;
    rig.sim.spawn(run_epoch_logged(rig.ds, a, la), "disabled-a");
    rig.sim.spawn(run_epoch_logged(rig.ds, b, lb), "disabled-b");
    rig.sim.run_watchdog(rig.sim.now() + 30_sec);
    rig.sim.rethrow_failures();
    EXPECT_TRUE(la.content_ok);
    EXPECT_TRUE(lb.content_ok);
  }
  EXPECT_EQ(rig.fleet.peer_directory(), nullptr);
  for (auto* inst : {&a, &b}) {
    const auto s = inst->stats();
    EXPECT_EQ(s.peer_hits_local, 0u);
    EXPECT_EQ(s.peer_hits_remote, 0u);
    EXPECT_EQ(s.peer_misses, 0u);
    EXPECT_EQ(s.peer_bytes, 0u);
  }
}

}  // namespace

// Tests for the dataset model: generators, size distributions (fitted to
// the paper's Fig. 1), deterministic content, and the TFRecord-like
// batched format.

#include <gtest/gtest.h>

#include <cstring>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dataset/record_file.hpp"

namespace {

using dlfs::dataset::Dataset;
using dlfs::dataset::RecordFileReader;
using dlfs::dataset::RecordFileWriter;
using namespace dlfs::byte_literals;

TEST(Dataset, FixedSizeGenerator) {
  auto ds = dlfs::dataset::make_fixed_size_dataset(100, 4096, 7, 10);
  EXPECT_EQ(ds.num_samples(), 100u);
  EXPECT_EQ(ds.total_bytes(), 100u * 4096u);
  EXPECT_EQ(ds.max_sample_bytes(), 4096u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ds.sample(i).size, 4096u);
    EXPECT_LT(ds.sample(i).class_id, 10u);
  }
}

TEST(Dataset, NamesAreUnique) {
  auto ds = dlfs::dataset::make_fixed_size_dataset(1000, 512);
  std::set<std::string> names;
  for (const auto& s : ds.samples()) names.insert(s.name);
  EXPECT_EQ(names.size(), 1000u);
}

TEST(Dataset, ContentIsDeterministicAndPerSample) {
  auto ds = dlfs::dataset::make_fixed_size_dataset(10, 1000, 5);
  std::vector<std::byte> a(1000), b(1000), c(1000);
  ds.fill_content(3, 0, a);
  ds.fill_content(3, 0, b);
  ds.fill_content(4, 0, c);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), 1000), 0);
  EXPECT_NE(std::memcmp(a.data(), c.data(), 1000), 0);
}

TEST(Dataset, PartialContentMatchesWhole) {
  auto ds = dlfs::dataset::make_fixed_size_dataset(5, 4096, 5);
  std::vector<std::byte> whole(4096), part(100);
  ds.fill_content(2, 0, whole);
  ds.fill_content(2, 1234, part);
  EXPECT_EQ(std::memcmp(part.data(), whole.data() + 1234, 100), 0);
}

TEST(Dataset, ContentBeyondSampleThrows) {
  auto ds = dlfs::dataset::make_fixed_size_dataset(5, 100, 5);
  std::vector<std::byte> buf(200);
  EXPECT_THROW(ds.fill_content(0, 0, buf), std::out_of_range);
}

TEST(Dataset, ImagenetLikeQuartileMatchesFig1) {
  // The paper: "about 75% of samples are less than 147 KB".
  auto ds = dlfs::dataset::make_imagenet_like_dataset(20000, 42);
  dlfs::Percentiles p;
  for (const auto& s : ds.samples()) p.add(s.size);
  EXPECT_NEAR(p.percentile(75), 147e3, 15e3);
  // All clamped into the representable range.
  EXPECT_GE(p.percentile(0), 2048.0);
  EXPECT_LE(p.percentile(100), 4.0 * 1024 * 1024);
}

TEST(Dataset, ImdbLikeQuartileMatchesFig1) {
  // "75% of samples are less than 1.6 KB".
  auto ds = dlfs::dataset::make_imdb_like_dataset(20000, 42);
  dlfs::Percentiles p;
  for (const auto& s : ds.samples()) p.add(s.size);
  EXPECT_NEAR(p.percentile(75), 1.6e3, 0.2e3);
}

TEST(Dataset, GeneratorsAreSeedDeterministic) {
  auto a = dlfs::dataset::make_imagenet_like_dataset(100, 9);
  auto b = dlfs::dataset::make_imagenet_like_dataset(100, 9);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.sample(i).size, b.sample(i).size);
    EXPECT_EQ(a.sample(i).class_id, b.sample(i).class_id);
  }
}

// ---------------------------------------------------------------------------
// Record files

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(RecordFile, WriteReadRoundTrip) {
  RecordFileWriter w;
  auto r1 = w.append(bytes_of("hello"));
  auto r2 = w.append(bytes_of("world!!"));
  EXPECT_EQ(r1.offset, 0u);
  EXPECT_EQ(r1.length, 5u);
  EXPECT_EQ(r2.offset, 13u);  // 8-byte header + 5 payload

  RecordFileReader reader(w.bytes());
  auto p1 = reader.read(r1);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(std::memcmp(p1->data(), "hello", 5), 0);
  auto p2 = reader.read(r2);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->size(), 7u);
}

TEST(RecordFile, ScanRecoversIndex) {
  RecordFileWriter w;
  for (int i = 0; i < 50; ++i) {
    w.append(bytes_of("record_" + std::to_string(i)));
  }
  RecordFileReader reader(w.bytes());
  auto idx = reader.scan();
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(idx->size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*idx)[i].offset, w.index()[i].offset);
  }
}

TEST(RecordFile, CorruptionDetectedByCrc) {
  RecordFileWriter w;
  auto ref = w.append(bytes_of("important data"));
  auto file = w.take();
  file[ref.payload_offset() + 3] ^= std::byte{0x01};  // flip one bit
  RecordFileReader reader(file);
  EXPECT_FALSE(reader.read(ref).has_value());
  EXPECT_FALSE(reader.scan().has_value());
}

TEST(RecordFile, TruncatedFileFailsScan) {
  RecordFileWriter w;
  w.append(bytes_of("0123456789"));
  auto file = w.take();
  file.resize(file.size() - 3);
  RecordFileReader reader(file);
  EXPECT_FALSE(reader.scan().has_value());
}

TEST(RecordFile, EmptyFileScansToEmptyIndex) {
  std::vector<std::byte> empty;
  RecordFileReader reader(empty);
  auto idx = reader.scan();
  ASSERT_TRUE(idx.has_value());
  EXPECT_TRUE(idx->empty());
}

TEST(RecordFile, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE).
  auto data = bytes_of("123456789");
  EXPECT_EQ(dlfs::dataset::crc32(data), 0xCBF43926u);
}

}  // namespace

// Tests for the discrete-event simulation kernel: the event loop, Task
// composition, and every synchronization primitive. Everything downstream
// (devices, file systems, the DLFS core) assumes these semantics, so this
// suite is deliberately picky about ordering and determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/cpu.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace {

using dlsim::Channel;
using dlsim::CpuCore;
using dlsim::Event;
using dlsim::Mutex;
using dlsim::Process;
using dlsim::Semaphore;
using dlsim::SimTime;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;

TEST(SimTime, Literals) {
  EXPECT_EQ(1_ns, 1u);
  EXPECT_EQ(1_us, 1000u);
  EXPECT_EQ(1_ms, 1000000u);
  EXPECT_EQ(1_sec, 1000000000u);
  EXPECT_EQ(3_us + 500_ns, 3500u);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(dlsim::to_seconds(1_sec), 1.0);
  EXPECT_DOUBLE_EQ(dlsim::to_micros(2500_ns), 2.5);
  EXPECT_DOUBLE_EQ(dlsim::to_millis(1500_us), 1.5);
}

TEST(SimTime, TransferTime) {
  // 1 GiB at 1 GB/s is ~1.0737 seconds.
  EXPECT_EQ(dlsim::transfer_time(1000000000ull, 1e9), 1_sec);
  EXPECT_EQ(dlsim::transfer_time(4096, 2.5e9), 1638u);
  EXPECT_EQ(dlsim::transfer_time(0, 1e9), 0u);
}

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_EQ(sim.live_processes(), 0u);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, DelayAdvancesTime) {
  Simulator sim;
  SimTime observed = 0;
  sim.spawn([](Simulator& s, SimTime& out) -> Task<void> {
    co_await s.delay(42_us);
    out = s.now();
  }(sim, observed));
  sim.run();
  EXPECT_EQ(observed, 42_us);
  EXPECT_EQ(sim.now(), 42_us);
}

TEST(Simulator, ZeroDelayRunsAtSameTime) {
  Simulator sim;
  SimTime observed = 1;
  sim.spawn([](Simulator& s, SimTime& out) -> Task<void> {
    co_await s.delay(0);
    co_await s.yield();
    out = s.now();
  }(sim, observed));
  sim.run();
  EXPECT_EQ(observed, 0u);
}

TEST(Simulator, FifoOrderWithinSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
      co_await s.delay(10_ns);
      ord.push_back(id);
    }(sim, order, i));
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsInterleaveByTimestamp) {
  Simulator sim;
  std::vector<std::string> trace;
  auto proc = [](Simulator& s, std::vector<std::string>& t, std::string name,
                 dlsim::SimDuration step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(step);
      t.push_back(name + std::to_string(i));
    }
  };
  sim.spawn(proc(sim, trace, "a", 10_ns));
  sim.spawn(proc(sim, trace, "b", 15_ns));
  sim.run();
  // a: 10,20,30; b: 15,30,45. At t=30 'a2' was scheduled before 'b1'... no:
  // b1 fires at 30 — scheduled at t=15, a2 scheduled at t=20: a2 first? No:
  // scheduling order: a2 scheduled when a1 ran (t=20); b1 scheduled when b0
  // ran (t=15). Both fire at 30; b1 was enqueued earlier so runs first.
  EXPECT_EQ(trace, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2",
                                             "b2"}));
}

TEST(Simulator, NestedTasksPropagateValues) {
  Simulator sim;
  int result = 0;
  auto leaf = [](Simulator& s) -> Task<int> {
    co_await s.delay(5_ns);
    co_return 21;
  };
  auto mid = [&leaf](Simulator& s) -> Task<int> {
    int v = co_await leaf(s);
    co_return v * 2;
  };
  sim.spawn([](Simulator& s, decltype(mid)& m, int& out) -> Task<void> {
    out = co_await m(s);
  }(sim, mid, result));
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Simulator, ExceptionsPropagateThroughTaskChain) {
  Simulator sim;
  auto thrower = [](Simulator& s) -> Task<void> {
    co_await s.delay(1_ns);
    throw std::runtime_error("boom");
  };
  bool caught = false;
  sim.spawn([](Simulator& s, decltype(thrower)& t, bool& c) -> Task<void> {
    try {
      co_await t(s);
    } catch (const std::runtime_error& e) {
      c = std::string(e.what()) == "boom";
    }
  }(sim, thrower, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, ProcessFailureIsReported) {
  Simulator sim;
  Process p = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(1_ns);
    throw std::logic_error("fatal");
  }(sim));
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_TRUE(p.failed());
  EXPECT_THROW(p.rethrow(), std::logic_error);
  EXPECT_THROW(sim.rethrow_failures(), std::logic_error);
}

TEST(Simulator, JoinWaitsForCompletion) {
  Simulator sim;
  SimTime joined_at = 0;
  Process worker = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(100_ns);
  }(sim));
  sim.spawn([](Simulator& s, Process w, SimTime& out) -> Task<void> {
    co_await w.join();
    out = s.now();
  }(sim, worker, joined_at));
  sim.run();
  EXPECT_EQ(joined_at, 100_ns);
}

TEST(Simulator, JoinOnFinishedProcessReturnsImmediately) {
  Simulator sim;
  Process worker = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(10_ns);
  }(sim));
  sim.run();
  SimTime joined_at = 123;
  sim.spawn([](Simulator& s, Process w, SimTime& out) -> Task<void> {
    co_await w.join();
    out = s.now();
  }(sim, worker, joined_at));
  sim.run();
  EXPECT_EQ(joined_at, 10_ns);  // no extra time passed
}

TEST(Simulator, JoinRethrowsProcessError) {
  Simulator sim;
  Process worker = sim.spawn([](Simulator& s) -> Task<void> {
    co_await s.delay(1_ns);
    throw std::runtime_error("worker died");
  }(sim));
  bool caught = false;
  sim.spawn([](Simulator&, Process w, bool& c) -> Task<void> {
    try {
      co_await w.join();
    } catch (const std::runtime_error&) {
      c = true;
    }
  }(sim, worker, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Simulator, RunUntilStopsMidway) {
  Simulator sim;
  int ticks = 0;
  sim.spawn([](Simulator& s, int& t) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.delay(10_ns);
      ++t;
    }
  }(sim, ticks));
  sim.run_until(35_ns);
  EXPECT_EQ(sim.now(), 35_ns);
  EXPECT_EQ(ticks, 3);  // events at 10, 20, 30 ran; 40 is still queued
  sim.run();
  EXPECT_EQ(ticks, 10);
}

TEST(Simulator, DeadlockDetected) {
  Simulator sim;
  Event ev(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(ev));
  EXPECT_THROW(sim.run(), dlsim::DeadlockError);
}

TEST(Simulator, DeadlockErrorNamesBlockedProcesses) {
  Simulator sim;
  Event ev(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(ev),
            "stuck-reader");
  // Daemons idle forever by design; they must not be named as culprits.
  sim.spawn_daemon([](Event& e) -> Task<void> { co_await e.wait(); }(ev),
                   "idle-server");
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const dlsim::DeadlockError& e) {
    EXPECT_EQ(e.blocked_processes, 1u);
    ASSERT_EQ(e.blocked_names.size(), 1u);
    EXPECT_EQ(e.blocked_names[0], "stuck-reader");
    EXPECT_NE(std::string(e.what()).find("stuck-reader"), std::string::npos);
  }
}

TEST(Simulator, WatchdogPassesWhenWorkFinishesInTime) {
  Simulator sim;
  bool done = false;
  sim.spawn([](Simulator& s, bool& d) -> Task<void> {
    co_await s.delay(1000);
    d = true;
  }(sim, done));
  EXPECT_NO_THROW(sim.run_watchdog(/*deadline=*/5000));
  EXPECT_TRUE(done);
}

TEST(Simulator, WatchdogThrowsWhenProcessOutlivesDeadline) {
  Simulator sim;
  Event never(sim);
  sim.spawn(
      [](Simulator& s, Event& e) -> Task<void> {
        co_await s.delay(100);
        co_await e.wait();
      }(sim, never),
      "hung-recovery");
  // A ticking daemon keeps the queue non-empty forever: without the
  // deadline the loop would spin past the hang indefinitely.
  sim.spawn_daemon(
      [](Simulator& s) -> Task<void> {
        // Deliberate busy-ticker: this test exists to prove the watchdog
        // catches exactly this shape. DLFSLINT-ALLOW: CL007
        for (;;) co_await s.delay(1000);
      }(sim),
      "ticker");
  try {
    sim.run_watchdog(/*deadline=*/5000);
    FAIL() << "expected DeadlockError";
  } catch (const dlsim::DeadlockError& e) {
    ASSERT_EQ(e.blocked_names.size(), 1u);
    EXPECT_EQ(e.blocked_names[0], "hung-recovery");
  }
}

TEST(Simulator, AllowBlockedSuppressesDeadlock) {
  Simulator sim;
  Event ev(sim);
  sim.spawn([](Event& e) -> Task<void> { co_await e.wait(); }(ev));
  EXPECT_NO_THROW(sim.run(/*allow_blocked=*/true));
  EXPECT_EQ(sim.live_processes(), 1u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = []() {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      sim.spawn([](Simulator& s, std::vector<int>& ord, int id) -> Task<void> {
        co_await s.delay(static_cast<dlsim::SimDuration>((id * 7) % 5));
        co_await s.delay(static_cast<dlsim::SimDuration>((id * 3) % 4));
        ord.push_back(id);
      }(sim, order, i));
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Event

TEST(SimEvent, WaitersWakeWhenSet) {
  Simulator sim;
  Event ev(sim);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.spawn([](Event& e, std::vector<int>& ord, int id) -> Task<void> {
      co_await e.wait();
      ord.push_back(id);
    }(ev, order, i));
  }
  sim.spawn([](Simulator& s, Event& e) -> Task<void> {
    co_await s.delay(50_ns);
    e.set();
  }(sim, ev));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(ev.is_set());
}

TEST(SimEvent, WaitOnSetEventDoesNotSuspend) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  SimTime t = 1;
  sim.spawn([](Simulator& s, Event& e, SimTime& out) -> Task<void> {
    co_await e.wait();
    out = s.now();
  }(sim, ev, t));
  sim.run();
  EXPECT_EQ(t, 0u);
}

TEST(SimEvent, ResetRearmsEvent) {
  Simulator sim;
  Event ev(sim);
  ev.set();
  ev.reset();
  EXPECT_FALSE(ev.is_set());
}

// ---------------------------------------------------------------------------
// Mutex

TEST(SimMutex, MutualExclusion) {
  Simulator sim;
  Mutex mu(sim);
  int inside = 0;
  int max_inside = 0;
  auto critical = [](Simulator& s, Mutex& m, int& in, int& mx) -> Task<void> {
    auto guard = co_await m.scoped_lock();
    ++in;
    mx = std::max(mx, in);
    co_await s.delay(10_ns);
    --in;
  };
  for (int i = 0; i < 4; ++i) {
    sim.spawn(critical(sim, mu, inside, max_inside));
  }
  sim.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_FALSE(mu.locked());
}

TEST(SimMutex, FifoHandoff) {
  Simulator sim;
  Mutex mu(sim);
  std::vector<int> order;
  auto grab = [](Simulator& s, Mutex& m, std::vector<int>& ord,
                 int id) -> Task<void> {
    auto guard = co_await m.scoped_lock();
    ord.push_back(id);
    co_await s.delay(5_ns);
  };
  for (int i = 0; i < 5; ++i) sim.spawn(grab(sim, mu, order, i));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimMutex, ScopedLockMoveTransfersOwnership) {
  Simulator sim;
  Mutex mu(sim);
  sim.spawn([](Mutex& m) -> Task<void> {
    auto a = co_await m.scoped_lock();
    dlsim::ScopedLock b = std::move(a);
    EXPECT_TRUE(m.locked());
    // b unlocks at scope exit; a must not double-unlock.
  }(mu));
  sim.run();
  EXPECT_FALSE(mu.locked());
}

// ---------------------------------------------------------------------------
// Semaphore

TEST(SimSemaphore, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(sim, 2);
  int inside = 0;
  int max_inside = 0;
  auto body = [](Simulator& s, Semaphore& sm, int& in, int& mx) -> Task<void> {
    co_await sm.acquire();
    ++in;
    mx = std::max(mx, in);
    co_await s.delay(10_ns);
    --in;
    sm.release();
  };
  for (int i = 0; i < 6; ++i) sim.spawn(body(sim, sem, inside, max_inside));
  sim.run();
  EXPECT_EQ(max_inside, 2);
  EXPECT_EQ(sem.count(), 2u);
}

TEST(SimSemaphore, TryAcquire) {
  Simulator sim;
  Semaphore sem(sim, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
}

// ---------------------------------------------------------------------------
// Channel

TEST(SimChannel, FifoDelivery) {
  Simulator sim;
  Channel<int> ch(sim, 16);
  std::vector<int> received;
  sim.spawn([](Channel<int>& c) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await c.push(i);
    c.close();
  }(ch));
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    for (;;) {
      auto v = co_await c.pop();
      if (!v) break;
      out.push_back(*v);
    }
  }(ch, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimChannel, BoundedCapacityBlocksProducer) {
  Simulator sim;
  Channel<int> ch(sim, 2);
  SimTime producer_done = 0;
  sim.spawn([](Simulator& s, Channel<int>& c, SimTime& done) -> Task<void> {
    for (int i = 0; i < 4; ++i) co_await c.push(i);
    done = s.now();
    c.close();
  }(sim, ch, producer_done));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Task<void> {
    for (;;) {
      co_await s.delay(100_ns);  // slow consumer
      auto v = co_await c.pop();
      if (!v) break;
    }
  }(sim, ch));
  sim.run();
  // Producer had to wait for the slow consumer to drain two slots.
  EXPECT_GE(producer_done, 200_ns);
}

TEST(SimChannel, PushAfterCloseThrows) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  ch.close();
  bool threw = false;
  sim.spawn([](Channel<int>& c, bool& t) -> Task<void> {
    try {
      co_await c.push(1);
    } catch (const dlsim::ChannelClosed&) {
      t = true;
    }
  }(ch, threw));
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(SimChannel, CloseDrainsRemainingItems) {
  Simulator sim;
  Channel<int> ch(sim, 8);
  std::vector<int> received;
  sim.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    EXPECT_TRUE(c.try_push(1));
    EXPECT_TRUE(c.try_push(2));
    c.close();
    for (;;) {
      auto v = co_await c.pop();
      if (!v) break;
      out.push_back(*v);
    }
  }(ch, received));
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{1, 2}));
}

TEST(SimChannel, TryPop) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  EXPECT_EQ(ch.try_pop(), std::nullopt);
  EXPECT_TRUE(ch.try_push(7));
  auto v = ch.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(SimChannel, ManyProducersOneConsumer) {
  Simulator sim;
  Channel<int> ch(sim, 4);
  int sum = 0;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 10;
  int producers_left = kProducers;
  for (int p = 0; p < kProducers; ++p) {
    sim.spawn([](Simulator& s, Channel<int>& c, int id, int& left) -> Task<void> {
      for (int i = 0; i < kPerProducer; ++i) {
        co_await s.delay(static_cast<dlsim::SimDuration>(id + 1));
        co_await c.push(1);
      }
      if (--left == 0) c.close();
    }(sim, ch, p, producers_left));
  }
  sim.spawn([](Channel<int>& c, int& total) -> Task<void> {
    for (;;) {
      auto v = co_await c.pop();
      if (!v) break;
      total += *v;
    }
  }(ch, sum));
  sim.run();
  EXPECT_EQ(sum, kProducers * kPerProducer);
}

// ---------------------------------------------------------------------------
// CpuCore

TEST(SimCpu, ComputeAccruesBusyTime) {
  Simulator sim;
  CpuCore core(sim, "c0");
  sim.spawn([](Simulator& s, CpuCore& c) -> Task<void> {
    co_await c.compute(30_ns);
    co_await s.delay(70_ns);  // blocked, not busy
  }(sim, core));
  sim.run();
  EXPECT_EQ(core.busy_ns(), 30_ns);
  EXPECT_EQ(core.elapsed_ns(), 100_ns);
  EXPECT_DOUBLE_EQ(core.utilization(), 0.3);
}

TEST(SimCpu, ChargeWithoutSuspend) {
  Simulator sim;
  CpuCore core(sim);
  core.charge(500_ns);
  EXPECT_EQ(core.busy_ns(), 500_ns);
}

TEST(SimCpu, ResetAccounting) {
  Simulator sim;
  CpuCore core(sim);
  sim.spawn([](CpuCore& c) -> Task<void> { co_await c.compute(10_ns); }(core));
  sim.run();
  core.reset_accounting();
  EXPECT_EQ(core.busy_ns(), 0u);
  EXPECT_EQ(core.elapsed_ns(), 0u);
}

TEST(SimRng, SameSeedSameStreamDifferentSeedDifferentStream) {
  // The simulation-wide RNG is the reproducibility anchor for jitter and
  // chaos schedules: one seed must replay the exact draw sequence, and
  // reseeding must rewind it.
  Simulator a;
  Simulator b;
  a.seed_rng(42);
  b.seed_rng(42);
  std::vector<std::uint64_t> sa;
  std::vector<std::uint64_t> sb;
  for (int i = 0; i < 64; ++i) sa.push_back(a.rand64());
  for (int i = 0; i < 64; ++i) sb.push_back(b.rand64());
  EXPECT_EQ(sa, sb);
  // Reseeding rewinds the stream.
  a.seed_rng(42);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.rand64(), sa[i]);
  // A different seed diverges immediately (splitmix64 mixes the seed into
  // the first output).
  b.seed_rng(43);
  EXPECT_NE(b.rand64(), sa[0]);
  // The stream is not trivially degenerate: 64 draws, no repeats.
  std::vector<std::uint64_t> sorted = sa;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace

// Tests for the huge-page DMA pool.

#include <gtest/gtest.h>

#include <cstring>

#include "common/units.hpp"
#include "mem/hugepage_pool.hpp"

namespace {

using dlfs::mem::DmaBuffer;
using dlfs::mem::HugePagePool;
using dlfs::mem::PoolExhausted;
using namespace dlfs::byte_literals;

TEST(HugePagePool, CarvesRequestedChunks) {
  HugePagePool pool(1_MiB, 256_KiB);
  EXPECT_EQ(pool.total_chunks(), 4u);
  EXPECT_EQ(pool.free_chunks(), 4u);
  EXPECT_EQ(pool.chunk_size(), 256_KiB);
}

TEST(HugePagePool, RoundsUpToWholeChunks) {
  HugePagePool pool(100, 64);
  EXPECT_EQ(pool.total_chunks(), 2u);
}

TEST(HugePagePool, RejectsZeroChunkSize) {
  EXPECT_THROW(HugePagePool(1_MiB, 0), std::invalid_argument);
}

TEST(HugePagePool, AllocateAndAutoRelease) {
  HugePagePool pool(4 * 64_KiB, 64_KiB);
  {
    DmaBuffer a = pool.allocate();
    DmaBuffer b = pool.allocate();
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a.size(), 64_KiB);
    EXPECT_NE(a.data(), b.data());
    EXPECT_EQ(pool.used_chunks(), 2u);
  }
  EXPECT_EQ(pool.used_chunks(), 0u);
  EXPECT_EQ(pool.peak_used_chunks(), 2u);
}

TEST(HugePagePool, ExhaustionThrows) {
  HugePagePool pool(2 * 4_KiB, 4_KiB);
  auto a = pool.allocate();
  auto b = pool.allocate();
  EXPECT_THROW(pool.allocate(), PoolExhausted);
  a.release();
  EXPECT_NO_THROW(pool.allocate());
}

TEST(HugePagePool, AllocateManyAllOrNothing) {
  HugePagePool pool(4 * 4_KiB, 4_KiB);
  EXPECT_THROW(pool.allocate_many(5), PoolExhausted);
  EXPECT_EQ(pool.free_chunks(), 4u);  // nothing leaked by the failed call
  auto bufs = pool.allocate_many(4);
  EXPECT_EQ(bufs.size(), 4u);
  EXPECT_EQ(pool.free_chunks(), 0u);
}

TEST(HugePagePool, OwnsIdentifiesPoolMemory) {
  HugePagePool pool(4 * 4_KiB, 4_KiB);
  auto buf = pool.allocate();
  EXPECT_TRUE(pool.owns(buf.data()));
  EXPECT_TRUE(pool.owns(buf.data() + buf.size() - 1));
  std::byte outside{};
  EXPECT_FALSE(pool.owns(&outside));
}

TEST(HugePagePool, MoveTransfersOwnership) {
  HugePagePool pool(2 * 4_KiB, 4_KiB);
  DmaBuffer a = pool.allocate();
  std::byte* p = a.data();
  DmaBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(pool.used_chunks(), 1u);
}

TEST(HugePagePool, ChunksAreWritable) {
  HugePagePool pool(4_KiB, 4_KiB);
  auto buf = pool.allocate();
  std::memset(buf.data(), 0xab, buf.size());
  EXPECT_EQ(static_cast<unsigned char>(buf.span()[100]), 0xabu);
}

TEST(HugePagePool, ReuseReturnsSameMemory) {
  HugePagePool pool(4_KiB, 4_KiB);
  std::byte* first = nullptr;
  {
    auto buf = pool.allocate();
    first = buf.data();
  }
  auto buf2 = pool.allocate();
  EXPECT_EQ(buf2.data(), first);
}

}  // namespace

// Unit tests for the tenant QoS layer: weighted-fair admission clocks,
// priority classes, per-tenant inflight caps, and the grant lifecycle
// (admit / cancel / complete). Pure governor logic — no simulator.

#include <gtest/gtest.h>

#include <stdexcept>

#include "dlfs/qos.hpp"

namespace {

using dlfs::core::QosClass;
using dlfs::core::TenantGovernor;
using dlfs::core::TenantQos;

TEST(TenantGovernor, SingleTenantAdmitsFreely) {
  TenantGovernor gov;
  auto t = gov.register_tenant(TenantQos{"solo", 1, QosClass::kNormal, 0});
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(t->try_admit(1 << 20));
    t->on_complete(1 << 20);
  }
  EXPECT_EQ(t->stats().admitted, 64u);
  EXPECT_EQ(t->stats().deferred, 0u);
}

TEST(TenantGovernor, ZeroWeightIsRejected) {
  TenantGovernor gov;
  EXPECT_THROW((void)gov.register_tenant(TenantQos{"bad", 0}),
               std::invalid_argument);
}

TEST(TenantGovernor, HeavierTenantAdmitsProportionallyMore) {
  // Both tenants keep work in flight; the vtime clocks advance at
  // bytes / weight, so with the burst window exhausted the weight-3
  // tenant admits ~3x the bytes of the weight-1 tenant.
  TenantGovernor gov(/*burst_bytes=*/1 << 20);
  auto heavy = gov.register_tenant(TenantQos{"heavy", 3});
  auto light = gov.register_tenant(TenantQos{"light", 1});
  // Seed both with one in-flight grant so neither is "idle" (idle tenants
  // snap to the floor and always admit).
  ASSERT_TRUE(heavy->try_admit(1 << 16));
  ASSERT_TRUE(light->try_admit(1 << 16));
  std::uint64_t heavy_bytes = 0;
  std::uint64_t light_bytes = 0;
  for (int round = 0; round < 1000; ++round) {
    if (heavy->try_admit(1 << 16)) {
      heavy_bytes += 1 << 16;
      heavy->on_complete(1 << 16);
    }
    if (light->try_admit(1 << 16)) {
      light_bytes += 1 << 16;
      light->on_complete(1 << 16);
    }
  }
  ASSERT_GT(light_bytes, 0u);
  const double ratio =
      static_cast<double>(heavy_bytes) / static_cast<double>(light_bytes);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.0);
}

TEST(TenantGovernor, HighPriorityOutweighsNormal) {
  TenantGovernor gov(/*burst_bytes=*/1 << 18);
  auto high = gov.register_tenant(TenantQos{"high", 1, QosClass::kHigh});
  auto norm = gov.register_tenant(TenantQos{"norm", 1, QosClass::kNormal});
  ASSERT_TRUE(high->try_admit(4096));
  ASSERT_TRUE(norm->try_admit(4096));
  std::uint64_t hb = 0;
  std::uint64_t nb = 0;
  for (int round = 0; round < 2000; ++round) {
    if (high->try_admit(1 << 16)) {
      hb += 1 << 16;
      high->on_complete(1 << 16);
    }
    if (norm->try_admit(1 << 16)) {
      nb += 1 << 16;
      norm->on_complete(1 << 16);
    }
  }
  ASSERT_GT(nb, 0u);
  // kHigh multiplies the effective weight by kHighBoost (8x).
  EXPECT_GT(static_cast<double>(hb) / static_cast<double>(nb), 4.0);
}

TEST(TenantGovernor, BackgroundTricklesWhileForegroundBusy) {
  TenantGovernor gov;
  auto fg = gov.register_tenant(TenantQos{"fg", 1, QosClass::kNormal});
  auto bg = gov.register_tenant(TenantQos{"bg", 1, QosClass::kBackground});
  ASSERT_TRUE(fg->try_admit(4096));  // foreground has work in flight
  EXPECT_TRUE(bg->try_admit(4096));  // one background grant is allowed...
  EXPECT_FALSE(bg->try_admit(4096));  // ...but never a second one
  EXPECT_EQ(bg->stats().deferred, 1u);
  // Once the foreground drains, background runs at full depth.
  fg->on_complete(4096);
  EXPECT_TRUE(bg->try_admit(4096));
  EXPECT_EQ(bg->inflight(), 2u);
}

TEST(TenantGovernor, MaxInflightCapsAdmission) {
  TenantGovernor gov;
  auto t = gov.register_tenant(TenantQos{"capped", 1, QosClass::kNormal, 2});
  EXPECT_TRUE(t->try_admit(4096));
  EXPECT_TRUE(t->try_admit(4096));
  EXPECT_FALSE(t->try_admit(4096));
  t->on_complete(4096);
  EXPECT_TRUE(t->try_admit(4096));
}

TEST(TenantGovernor, CancelAdmitRewindsTheClock) {
  TenantGovernor gov;
  auto t = gov.register_tenant(TenantQos{"t", 1});
  ASSERT_TRUE(t->try_admit(4096));
  EXPECT_EQ(t->stats().admitted, 1u);
  EXPECT_EQ(t->stats().bytes_admitted, 4096u);
  t->cancel_admit(4096);  // the command never reached a device
  EXPECT_EQ(t->stats().admitted, 0u);
  EXPECT_EQ(t->stats().bytes_admitted, 0u);
  EXPECT_EQ(t->inflight(), 0u);
  EXPECT_THROW(t->cancel_admit(4096), std::logic_error);
  EXPECT_THROW(t->on_complete(4096), std::logic_error);
}

TEST(TenantGovernor, IdleTenantDoesNotBankShare) {
  // A tenant that sat idle while another streamed must not monopolize on
  // return: its vtime snaps to the current floor, so both make progress.
  TenantGovernor gov(/*burst_bytes=*/1 << 18);
  auto busy = gov.register_tenant(TenantQos{"busy", 1});
  auto idle = gov.register_tenant(TenantQos{"idle", 1});
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(busy->try_admit(1 << 16));
    busy->on_complete(1 << 16);
  }
  // The idle tenant wakes up: it admits, and does NOT lock busy out for
  // 500 rounds of "catch-up".
  ASSERT_TRUE(busy->try_admit(1 << 16));  // keep busy in flight
  ASSERT_TRUE(idle->try_admit(1 << 16));
  int busy_admits = 0;
  for (int i = 0; i < 100; ++i) {
    if (busy->try_admit(1 << 16)) {
      ++busy_admits;
      busy->on_complete(1 << 16);
    }
    if (idle->try_admit(1 << 16)) idle->on_complete(1 << 16);
  }
  EXPECT_GT(busy_admits, 20);
}

TEST(TenantGovernor, LateRegistrantStartsAtTheFloor) {
  TenantGovernor gov(/*burst_bytes=*/1 << 18);
  auto first = gov.register_tenant(TenantQos{"first", 1});
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(first->try_admit(1 << 16));
    first->on_complete(1 << 16);
  }
  auto late = gov.register_tenant(TenantQos{"late", 1});
  ASSERT_TRUE(first->try_admit(1 << 16));
  ASSERT_TRUE(late->try_admit(1 << 16));
  // The newcomer competes fairly from "now" — it cannot starve first.
  int first_admits = 0;
  for (int i = 0; i < 100; ++i) {
    if (first->try_admit(1 << 16)) {
      ++first_admits;
      first->on_complete(1 << 16);
    }
    if (late->try_admit(1 << 16)) late->on_complete(1 << 16);
  }
  EXPECT_GT(first_admits, 20);
  EXPECT_EQ(gov.tenant_count(), 2u);
}

}  // namespace

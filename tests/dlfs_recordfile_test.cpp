// Tests for the TFRecord-style batched-file mount mode
// (DlfsConfig::record_file_samples > 0): per-sample direct access inside
// batched files, file-oriented entries, and whole-file reads that parse
// and checksum as valid record files.

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dataset/record_file.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::core::Batch;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::core::SampleHandle;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  dlfs::cluster::Cluster cluster;
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  DlfsFleet fleet;

  Rig(std::uint32_t nodes, std::size_t samples, std::uint32_t sample_bytes,
      std::uint32_t per_file)
      : cluster(sim, nodes, node_cfg()),
        ds(dlfs::dataset::make_fixed_size_dataset(samples, sample_bytes)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, make_cfg(per_file)) {
    fleet.mount();
  }

  static dlfs::cluster::NodeConfig node_cfg() {
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = false;  // whole-file CRC checks need real bytes
    nc.device_capacity = 512_MiB;
    return nc;
  }
  static DlfsConfig make_cfg(std::uint32_t per_file) {
    DlfsConfig cfg;
    cfg.record_file_samples = per_file;
    return cfg;
  }
};

TEST(RecordFileMount, LayoutGroupsSamplesWithHeaders) {
  Rig rig(2, 100, 1000, 8);
  const auto& files = rig.fleet.record_files();
  ASSERT_EQ(files.size(), 2u);
  std::size_t total_files = 0, total_samples = 0;
  for (const auto& slot_files : files) {
    for (const auto& f : slot_files) {
      EXPECT_LE(f.sample_ids.size(), 8u);
      EXPECT_EQ(f.len, f.sample_ids.size() * (8 + 1000));
      total_samples += f.sample_ids.size();
      ++total_files;
    }
  }
  EXPECT_EQ(total_samples, 100u);
  EXPECT_EQ(rig.fleet.directory().num_files(), total_files);
  // Sample payload offsets skip the 8-byte headers.
  const auto& loc = rig.fleet.layout()[files[0][0].sample_ids[0]];
  EXPECT_EQ(loc.offset, files[0][0].offset + 8);
}

TEST(RecordFileMount, SampleReadsInsideBatchedFilesAreExact) {
  Rig rig(1, 64, 2048, 8);
  auto& inst = rig.fleet.instance(0);
  bool all_ok = true;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, bool& ok) -> Task<void> {
    std::vector<std::byte> buf(2048), want(2048);
    for (std::uint32_t id = 0; id < 64; ++id) {
      SampleHandle h = co_await inst.open_id(id);
      co_await inst.read(h, buf);
      r.ds.fill_content(id, 0, want);
      if (std::memcmp(buf.data(), want.data(), want.size()) != 0) ok = false;
    }
  }(rig, inst, all_ok));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(all_ok);
}

TEST(RecordFileMount, WholeFileReadParsesWithValidChecksums) {
  Rig rig(1, 32, 1500, 4);
  auto& inst = rig.fleet.instance(0);
  const auto& f = rig.fleet.record_files()[0][1];  // second batched file
  bool parsed = false;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst,
                   const DlfsFleet::RecordFileInfo& f,
                   bool& ok) -> Task<void> {
    SampleHandle h = co_await inst.open_file(f.name);
    EXPECT_EQ(h.sample_id, SampleHandle::kNoSample);
    EXPECT_EQ(h.entry->len(), f.len);
    std::vector<std::byte> buf(f.len);
    co_await inst.read(h, buf);
    dlfs::dataset::RecordFileReader reader(buf);
    auto index = reader.scan();  // validates structure + every CRC
    if (!index || index->size() != f.sample_ids.size()) co_return;
    // Each record's payload must equal the corresponding sample content.
    ok = true;
    for (std::size_t k = 0; k < index->size(); ++k) {
      auto payload = reader.read((*index)[k]);
      std::vector<std::byte> want(payload->size());
      r.ds.fill_content(f.sample_ids[k], 0, want);
      if (std::memcmp(payload->data(), want.data(), want.size()) != 0) {
        ok = false;
      }
    }
  }(rig, inst, f, parsed));
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_TRUE(parsed);
}

TEST(RecordFileMount, OpenUnknownFileThrows) {
  Rig rig(1, 8, 512, 4);
  auto p = rig.sim.spawn([](DlfsInstance& inst) -> Task<void> {
    (void)co_await inst.open_file("rf9_99");
  }(rig.fleet.instance(0)));
  rig.sim.run();
  EXPECT_TRUE(p.failed());
}

TEST(RecordFileMount, BreadEpochCoversBatchedDataset) {
  Rig rig(2, 200, 700, 16);
  for (std::uint32_t c = 0; c < 2; ++c) rig.fleet.instance(c).sequence(3);
  std::set<std::uint32_t> seen;
  bool content_ok = true;
  for (std::uint32_t c = 0; c < 2; ++c) {
    rig.sim.spawn([](Rig& r, DlfsInstance& inst, std::set<std::uint32_t>& s,
                     bool& ok) -> Task<void> {
      std::vector<std::byte> arena(64_KiB), want(700);
      for (;;) {
        Batch b = co_await inst.bread(16, arena);
        if (b.end_of_epoch) break;
        for (const auto& smp : b.samples) {
          s.insert(smp.sample_id);
          r.ds.fill_content(smp.sample_id, 0, want);
          if (std::memcmp(arena.data() + smp.offset_in_arena, want.data(),
                          700) != 0) {
            ok = false;
          }
        }
      }
    }(rig, rig.fleet.instance(c), seen, content_ok));
  }
  rig.sim.run();
  rig.sim.rethrow_failures();
  EXPECT_EQ(seen.size(), 200u);
  EXPECT_TRUE(content_ok);
}

TEST(RecordFileMount, TooLargeFileGroupRejected) {
  Simulator sim;
  dlfs::cluster::NodeConfig nc;
  nc.device_capacity = 1_GiB;
  dlfs::cluster::Cluster cluster(sim, 1, nc);
  auto ds = dlfs::dataset::make_fixed_size_dataset(64, 1_MiB);
  dlfs::cluster::Pfs pfs(sim, ds);
  DlfsConfig cfg;
  cfg.record_file_samples = 16;  // 16 MiB per file > 8 MiB len field
  EXPECT_THROW(DlfsFleet(cluster, pfs, ds, cfg), std::invalid_argument);
}

TEST(RecordFileMount, ZeroMeansRawLayout) {
  Rig rig(1, 10, 512, 0);
  EXPECT_TRUE(rig.fleet.record_files()[0].empty());
  EXPECT_EQ(rig.fleet.directory().num_files(), 0u);
  EXPECT_EQ(rig.fleet.layout()[0].offset % 512, 0u);  // tightly packed
}

}  // namespace

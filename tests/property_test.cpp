// Cross-module property tests: randomized stress of the DES kernel
// (determinism, conservation), fabric accounting invariants, and
// whole-stack DLFS epoch properties swept over cluster size, batching
// mode, dataset shape, and chunk size.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <set>
#include <tuple>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/avl_tree.hpp"
#include "dlfs/dlfs.hpp"
#include "dlfs/sample_entry.hpp"
#include "hw/net/fabric.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace {

using dlfs::core::BatchingMode;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

// ---------------------------------------------------------------------------
// DES kernel under randomized load

class SimStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimStress, RandomProcessSoupIsDeterministicAndConserves) {
  // A soup of producers/consumers over shared channels with random
  // delays: every token pushed must be popped, the run must terminate,
  // and two runs must produce identical event counts and final times.
  auto run = [&](std::uint64_t seed) {
    Simulator sim;
    dlfs::Rng rng(seed);
    constexpr int kChannels = 4;
    std::vector<std::unique_ptr<dlsim::Channel<int>>> chans;
    for (int i = 0; i < kChannels; ++i) {
      chans.push_back(std::make_unique<dlsim::Channel<int>>(
          sim, 1 + rng.next_below(8)));
    }
    std::uint64_t consumed = 0;
    const int kProducers = 6;
    const int kPerProducer = 50;
    int producers_left = kProducers * kChannels;
    for (int c = 0; c < kChannels; ++c) {
      for (int p = 0; p < kProducers; ++p) {
        sim.spawn([](Simulator& s, dlsim::Channel<int>& ch,
                     std::uint64_t d, int& left) -> Task<void> {
          for (int i = 0; i < kPerProducer; ++i) {
            co_await s.delay(d % 97 + 1);
            co_await ch.push(1);
          }
          if (--left == 0) {
            // no-op: consumers stop via close below
          }
          co_return;
        }(sim, *chans[c], rng.next(), producers_left));
      }
      sim.spawn([](dlsim::Channel<int>& ch, std::uint64_t& total) -> Task<void> {
        for (;;) {
          auto v = co_await ch.pop();
          if (!v) break;
          total += static_cast<std::uint64_t>(*v);
        }
      }(*chans[c], consumed));
    }
    // Closer: waits for all pushes (kProducers * kPerProducer per chan).
    sim.spawn([](Simulator& s,
                 std::vector<std::unique_ptr<dlsim::Channel<int>>>& cs)
                  -> Task<void> {
      co_await s.delay(100000);  // after every producer finished
      for (auto& c : cs) c->close();
    }(sim, chans));
    sim.run();
    return std::make_tuple(consumed, sim.now(), sim.events_processed());
  };
  const auto a = run(GetParam());
  const auto b = run(GetParam());
  EXPECT_EQ(a, b);  // bit-for-bit deterministic
  EXPECT_EQ(std::get<0>(a),
            static_cast<std::uint64_t>(4 * 6 * 50));  // conservation
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimStress,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(SimStress, ThousandsOfProcessesDrain) {
  Simulator sim;
  std::uint64_t sum = 0;
  for (int i = 0; i < 5000; ++i) {
    sim.spawn([](Simulator& s, std::uint64_t& out,
                 std::uint64_t d) -> Task<void> {
      co_await s.delay(d);
      out += 1;
    }(sim, sum, static_cast<std::uint64_t>(i % 17)));
  }
  sim.run();
  EXPECT_EQ(sum, 5000u);
  EXPECT_EQ(sim.live_processes(), 0u);
}

// ---------------------------------------------------------------------------
// Fabric invariants

class FabricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricProperty, ByteAccountingBalancesAndTimeRespectsBounds) {
  Simulator sim;
  constexpr std::uint32_t kNodes = 6;
  dlfs::hw::Fabric fabric(sim, kNodes);
  dlfs::Rng rng(GetParam());
  struct Flow {
    std::uint32_t src, dst;
    std::uint64_t bytes;
  };
  std::vector<Flow> flows;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 60; ++i) {
    Flow f{static_cast<std::uint32_t>(rng.next_below(kNodes)),
           static_cast<std::uint32_t>(rng.next_below(kNodes)),
           1 + rng.next_below(1_MiB)};
    total_bytes += f.bytes;
    flows.push_back(f);
  }
  for (const auto& f : flows) {
    sim.spawn([](dlfs::hw::Fabric& fab, Flow fl) -> Task<void> {
      co_await fab.transfer(fl.src, fl.dst, fl.bytes);
    }(fabric, f));
  }
  sim.run();
  // Conservation: sum sent == sum received == total.
  std::uint64_t sent = 0, recv = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    sent += fabric.bytes_sent(n);
    recv += fabric.bytes_received(n);
  }
  EXPECT_EQ(sent, total_bytes);
  EXPECT_EQ(recv, total_bytes);
  // Lower bound: the busiest egress pipe cannot beat wire speed.
  std::uint64_t max_pipe = 0;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    std::uint64_t nic = 0;
    for (const auto& f : flows) {
      if (f.src == n && f.src != f.dst) nic += f.bytes;
    }
    max_pipe = std::max(max_pipe, nic);
  }
  EXPECT_GE(sim.now() + 1, dlsim::transfer_time(max_pipe, 6.8e9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricProperty,
                         ::testing::Values(3, 7, 31, 127));

// ---------------------------------------------------------------------------
// Whole-stack DLFS epoch properties

struct StackParam {
  std::uint32_t nodes;
  BatchingMode mode;
  bool variable_sizes;
  std::uint64_t chunk_bytes;
};

class DlfsStackProperty : public ::testing::TestWithParam<StackParam> {};

TEST_P(DlfsStackProperty, EpochIsExactCoverWithExactBytes) {
  const StackParam p = GetParam();
  Simulator sim;
  dlfs::cluster::NodeConfig nc;
  nc.synthetic_store = false;
  nc.device_capacity = 512_MiB;
  dlfs::cluster::Cluster cluster(sim, p.nodes, nc);
  auto ds = p.variable_sizes
                ? dlfs::dataset::make_imdb_like_dataset(300, 5)
                : dlfs::dataset::make_fixed_size_dataset(300, 3333, 5);
  dlfs::cluster::Pfs pfs(sim, ds);
  dlfs::core::DlfsConfig cfg;
  cfg.batching = p.mode;
  cfg.chunk_bytes = p.chunk_bytes;
  dlfs::core::DlfsFleet fleet(cluster, pfs, ds, cfg);
  fleet.mount();

  for (std::uint32_t c = 0; c < p.nodes; ++c) fleet.instance(c).sequence(9);
  std::set<std::uint32_t> seen;
  std::uint64_t bytes = 0;
  bool content_ok = true;
  for (std::uint32_t c = 0; c < p.nodes; ++c) {
    sim.spawn([](const dlfs::dataset::Dataset& ds,
                 dlfs::core::DlfsInstance& inst, std::set<std::uint32_t>& s,
                 std::uint64_t& bytes, bool& ok) -> Task<void> {
      std::vector<std::byte> arena(
          16ull * ds.max_sample_bytes() + 4096);
      std::vector<std::byte> want;
      for (;;) {
        auto b = co_await inst.bread(13, arena);  // odd batch on purpose
        if (b.end_of_epoch) break;
        for (const auto& smp : b.samples) {
          if (!s.insert(smp.sample_id).second) ok = false;  // duplicate!
          bytes += smp.len;
          want.resize(smp.len);
          ds.fill_content(smp.sample_id, 0, want);
          if (std::memcmp(arena.data() + smp.offset_in_arena, want.data(),
                          smp.len) != 0) {
            ok = false;
          }
        }
      }
    }(ds, fleet.instance(c), seen, bytes, content_ok));
  }
  sim.run();
  sim.rethrow_failures();
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_EQ(bytes, ds.total_bytes());
  EXPECT_TRUE(content_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DlfsStackProperty,
    ::testing::Values(
        StackParam{1, BatchingMode::kChunkLevel, false, 256_KiB},
        StackParam{1, BatchingMode::kChunkLevel, true, 64_KiB},
        StackParam{3, BatchingMode::kChunkLevel, true, 256_KiB},
        StackParam{3, BatchingMode::kSampleLevel, true, 256_KiB},
        StackParam{2, BatchingMode::kNone, false, 256_KiB},
        StackParam{5, BatchingMode::kChunkLevel, true, 128_KiB},
        StackParam{4, BatchingMode::kChunkLevel, false, 1_MiB}));

TEST(DlfsStackProperty, TwoEpochsDifferentSeedsBothCover) {
  Simulator sim;
  dlfs::cluster::NodeConfig nc;
  nc.synthetic_store = false;
  nc.device_capacity = 256_MiB;
  dlfs::cluster::Cluster cluster(sim, 2, nc);
  auto ds = dlfs::dataset::make_fixed_size_dataset(2048, 1000);
  dlfs::cluster::Pfs pfs(sim, ds);
  dlfs::core::DlfsFleet fleet(cluster, pfs, ds, dlfs::core::DlfsConfig{});
  fleet.mount();

  std::vector<std::vector<std::uint32_t>> epochs;
  for (std::uint64_t seed : {100ull, 200ull}) {
    std::vector<std::uint32_t> order;
    for (std::uint32_t c = 0; c < 2; ++c) fleet.instance(c).sequence(seed);
    for (std::uint32_t c = 0; c < 2; ++c) {
      sim.spawn([](dlfs::core::DlfsInstance& inst,
                   std::vector<std::uint32_t>& out) -> Task<void> {
        std::vector<std::byte> arena(64_KiB);
        for (;;) {
          auto b = co_await inst.bread(8, arena);
          if (b.end_of_epoch) break;
          for (const auto& s : b.samples) out.push_back(s.sample_id);
        }
      }(fleet.instance(c), order));
    }
    sim.run();
    sim.rethrow_failures();
    std::set<std::uint32_t> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 2048u);
    epochs.push_back(std::move(order));
  }
  EXPECT_NE(epochs[0], epochs[1]);  // reshuffled between epochs
}

// ---------------------------------------------------------------------------
// SampleEntry bit-field packing (Fig. 3b: NID:16 | key:48 || off:40 |
// len:23 | V:1)

using dlfs::core::SampleEntry;

TEST(SampleEntryPacking, MaxValuesRoundTripExactly) {
  const auto nid = static_cast<std::uint16_t>(SampleEntry::kMaxNid);
  const SampleEntry e(nid, SampleEntry::kKeyMask, SampleEntry::kMaxOffset,
                      static_cast<std::uint32_t>(SampleEntry::kMaxLen),
                      /*valid_in_cache=*/true);
  EXPECT_EQ(e.nid(), nid);
  EXPECT_EQ(e.key(), SampleEntry::kKeyMask);
  EXPECT_EQ(e.offset(), SampleEntry::kMaxOffset);
  EXPECT_EQ(e.len(), SampleEntry::kMaxLen);
  EXPECT_TRUE(e.valid_in_cache());
  // All 128 bits are accounted for: every field at max + V set must
  // saturate both words.
  EXPECT_EQ(e.raw_hi(), ~0ull);
  EXPECT_EQ(e.raw_lo(), ~0ull);
}

TEST(SampleEntryPacking, ZeroEntryIsAllClear) {
  const SampleEntry e(0, 0, 0, 0, false);
  EXPECT_EQ(e.raw_hi(), 0u);
  EXPECT_EQ(e.raw_lo(), 0u);
  EXPECT_FALSE(e.valid_in_cache());
}

TEST(SampleEntryPacking, FieldsDoNotBleedIntoNeighbours) {
  // Each field alone at max must leave every other field zero — a shift
  // or mask bug would leak bits across the boundary.
  const SampleEntry only_nid(static_cast<std::uint16_t>(SampleEntry::kMaxNid),
                             0, 0, 0);
  EXPECT_EQ(only_nid.key(), 0u);
  EXPECT_EQ(only_nid.raw_lo(), 0u);

  const SampleEntry only_key(0, SampleEntry::kKeyMask, 0, 0);
  EXPECT_EQ(only_key.nid(), 0u);
  EXPECT_EQ(only_key.raw_lo(), 0u);

  const SampleEntry only_off(0, 0, SampleEntry::kMaxOffset, 0);
  EXPECT_EQ(only_off.raw_hi(), 0u);
  EXPECT_EQ(only_off.len(), 0u);
  EXPECT_FALSE(only_off.valid_in_cache());

  const SampleEntry only_len(
      0, 0, 0, static_cast<std::uint32_t>(SampleEntry::kMaxLen));
  EXPECT_EQ(only_len.raw_hi(), 0u);
  EXPECT_EQ(only_len.offset(), 0u);
  EXPECT_FALSE(only_len.valid_in_cache());
}

TEST(SampleEntryPacking, OverflowingAnyFieldIsRejected) {
  EXPECT_THROW(SampleEntry(0, SampleEntry::kKeyMask + 1, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(SampleEntry(0, 0, SampleEntry::kMaxOffset + 1, 0),
               std::invalid_argument);
  EXPECT_THROW(
      SampleEntry(0, 0, 0,
                  static_cast<std::uint32_t>(SampleEntry::kMaxLen + 1)),
      std::invalid_argument);
}

TEST(SampleEntryPacking, RandomizedRoundTripAndValidBitIsolation) {
  dlfs::Rng rng(0xf193b);  // deterministic seed, independent of others
  for (int i = 0; i < 5000; ++i) {
    const auto nid = static_cast<std::uint16_t>(rng.next_below(1ull << 16));
    const std::uint64_t key = rng.next_below(SampleEntry::kKeyMask + 1);
    const std::uint64_t off = rng.next_below(SampleEntry::kMaxOffset + 1);
    const auto len =
        static_cast<std::uint32_t>(rng.next_below(SampleEntry::kMaxLen + 1));
    const bool v = rng.next_below(2) == 1;
    SampleEntry e(nid, key, off, len, v);
    ASSERT_EQ(e.nid(), nid);
    ASSERT_EQ(e.key(), key);
    ASSERT_EQ(e.offset(), off);
    ASSERT_EQ(e.len(), len);
    ASSERT_EQ(e.valid_in_cache(), v);
    // Flipping V must not disturb any packed neighbour.
    e.set_valid_in_cache(!v);
    ASSERT_EQ(e.valid_in_cache(), !v);
    ASSERT_EQ(e.offset(), off);
    ASSERT_EQ(e.len(), len);
    ASSERT_EQ(e.raw_hi(), SampleEntry(nid, key, off, len, !v).raw_hi());
    ASSERT_EQ(e.raw_lo(), SampleEntry(nid, key, off, len, !v).raw_lo());
  }
}

// ---------------------------------------------------------------------------
// AvlTree duplicate-key and rebalance edge cases

using IntTree = dlfs::core::AvlTree<int, int>;

TEST(AvlTreeEdge, DuplicateInsertIsRejectedAndTreeUnchanged) {
  IntTree t;
  EXPECT_TRUE(t.insert(7, 70));
  EXPECT_FALSE(t.insert(7, 71));  // duplicate: refused...
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(7), 70);  // ...and the original value survives
  // Duplicates below an interior node must not trigger a rebalance or a
  // size bump either.
  for (int k : {3, 11, 1, 5, 9, 13}) EXPECT_TRUE(t.insert(k, k * 10));
  const std::size_t sz = t.size();
  const int h = t.height();
  for (int k : {3, 11, 1, 5, 9, 13, 7}) EXPECT_FALSE(t.insert(k, -1));
  EXPECT_EQ(t.size(), sz);
  EXPECT_EQ(t.height(), h);
  EXPECT_TRUE(t.validate());
  for (int k : {3, 11, 1, 5, 9, 13}) EXPECT_EQ(*t.find(k), k * 10);
}

TEST(AvlTreeEdge, MonotonicInsertsStayLogarithmic) {
  // Ascending and descending runs force every LL/RR rotation chain.
  for (const bool ascending : {true, false}) {
    IntTree t;
    constexpr int kN = 1024;
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(t.insert(ascending ? i : kN - i, i));
      ASSERT_TRUE(t.validate());
    }
    EXPECT_EQ(t.size(), static_cast<std::size_t>(kN));
    // AVL height bound: h <= 1.4405 * log2(n + 2).
    EXPECT_LE(t.height(), 15);  // 1.4405 * log2(1026) ~ 14.4
  }
}

TEST(AvlTreeEdge, ZigZagInsertsForceDoubleRotations) {
  // LR shape: insert 30, 10, 20 — root must become 20.
  IntTree lr;
  EXPECT_TRUE(lr.insert(30, 0));
  EXPECT_TRUE(lr.insert(10, 0));
  EXPECT_TRUE(lr.insert(20, 0));
  EXPECT_TRUE(lr.validate());
  EXPECT_EQ(lr.height(), 2);
  // RL shape: 10, 30, 20.
  IntTree rl;
  EXPECT_TRUE(rl.insert(10, 0));
  EXPECT_TRUE(rl.insert(30, 0));
  EXPECT_TRUE(rl.insert(20, 0));
  EXPECT_TRUE(rl.validate());
  EXPECT_EQ(rl.height(), 2);
}

TEST(AvlTreeEdge, EraseTwoChildNodeKeepsOrderAndBalance) {
  IntTree t;
  for (int k : {8, 4, 12, 2, 6, 10, 14, 1, 3, 5, 7, 9, 11, 13, 15}) {
    ASSERT_TRUE(t.insert(k, k));
  }
  // Erase the root (two children) and interior two-child nodes; the
  // in-order successor replacement must preserve BST order + balance.
  for (int k : {8, 4, 12}) {
    ASSERT_TRUE(t.erase(k));
    ASSERT_FALSE(t.contains(k));
    ASSERT_TRUE(t.validate());
  }
  EXPECT_FALSE(t.erase(8));  // erasing twice reports absence
  std::vector<int> order;
  t.for_each([&](const int& k, const int&) { order.push_back(k); });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 12u);
}

TEST(AvlTreeEdge, RandomizedInsertEraseMirrorsReferenceSet) {
  dlfs::Rng rng(20260806);
  IntTree t;
  std::set<int> ref;
  for (int step = 0; step < 4000; ++step) {
    const int key = static_cast<int>(rng.next_below(512));
    if (rng.next_below(3) == 0) {
      ASSERT_EQ(t.erase(key), ref.erase(key) == 1);
    } else {
      ASSERT_EQ(t.insert(key, key), ref.insert(key).second);
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  ASSERT_TRUE(t.validate());
  std::vector<int> order;
  t.for_each([&](const int& k, const int&) { order.push_back(k); });
  EXPECT_TRUE(std::equal(order.begin(), order.end(), ref.begin(), ref.end()));
}

}  // namespace

// Tests for the hardware models: backing stores, the NVMe device service
// model (latency floor, IOPS ceiling, bandwidth ceiling, queue depth),
// device ownership, and the fabric's NIC pipe model.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/calibration.hpp"
#include "common/units.hpp"
#include "hw/net/fabric.hpp"
#include "hw/nvme/backing_store.hpp"
#include "hw/nvme/nvme_device.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::NvmeParams;
using dlfs::hw::Fabric;
using dlfs::hw::IoCompletion;
using dlfs::hw::IoOp;
using dlfs::hw::IoStatus;
using dlfs::hw::NvmeDevice;
using dlfs::hw::NvmeQueuePair;
using dlfs::hw::RamBackingStore;
using dlfs::hw::SyntheticBackingStore;
using dlsim::SimTime;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

// ---------------------------------------------------------------------------
// Backing stores

TEST(RamBackingStore, ReadBackWhatWasWritten) {
  RamBackingStore store(1_MiB);
  std::vector<std::byte> in(1000);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::byte>(i & 0xff);
  }
  store.write(12345, in);
  std::vector<std::byte> out(1000);
  store.read(12345, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST(RamBackingStore, UnwrittenReadsAsZero) {
  RamBackingStore store(1_MiB);
  std::vector<std::byte> out(64, std::byte{0xff});
  store.read(0, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(RamBackingStore, SparsePagesOnlyMaterializeOnWrite) {
  RamBackingStore store(1_GiB, 64_KiB);
  EXPECT_EQ(store.resident_pages(), 0u);
  std::vector<std::byte> b(10, std::byte{1});
  store.write(500_MiB, b);
  EXPECT_EQ(store.resident_pages(), 1u);
}

TEST(RamBackingStore, CrossPageBoundary) {
  RamBackingStore store(1_MiB, 4096);
  std::vector<std::byte> in(10000, std::byte{0x5a});
  store.write(4000, in);  // spans 3+ pages
  std::vector<std::byte> out(10000);
  store.read(4000, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST(RamBackingStore, OutOfRangeThrows) {
  RamBackingStore store(4096);
  std::vector<std::byte> b(100);
  EXPECT_THROW(store.read(4000, b), std::out_of_range);
  EXPECT_THROW(store.write(4096, b), std::out_of_range);
}

TEST(SyntheticBackingStore, DeterministicContent) {
  SyntheticBackingStore store(1_MiB, /*seed=*/7);
  std::vector<std::byte> a(777), b(777);
  store.read(1234, a);
  store.read(1234, b);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], store.expected_byte(1234 + i));
  }
}

TEST(SyntheticBackingStore, UnalignedEqualsAligned) {
  // Reading [100, 200) must produce the same bytes as the middle of an
  // aligned read of [96, 208).
  SyntheticBackingStore store(1_MiB, 99);
  std::vector<std::byte> big(112), small(100);
  store.read(96, big);
  store.read(100, small);
  EXPECT_EQ(std::memcmp(small.data(), big.data() + 4, small.size()), 0);
}

TEST(SyntheticBackingStore, DifferentSeedsDiffer) {
  SyntheticBackingStore a(1_MiB, 1), b(1_MiB, 2);
  std::vector<std::byte> va(64), vb(64);
  a.read(0, va);
  b.read(0, vb);
  EXPECT_NE(std::memcmp(va.data(), vb.data(), 64), 0);
}

TEST(SyntheticBackingStore, WritesCountedButDiscarded) {
  SyntheticBackingStore store(1_MiB, 1);
  std::vector<std::byte> b(128, std::byte{0});
  store.write(0, b);
  EXPECT_EQ(store.bytes_written(), 128u);
}

// ---------------------------------------------------------------------------
// NVMe device timing model

std::unique_ptr<NvmeDevice> make_device(Simulator& sim,
                                         std::uint64_t cap = 1_GiB) {
  return std::make_unique<NvmeDevice>(
      sim, "nvme0", std::make_unique<SyntheticBackingStore>(cap, 42));
}

// Helper: submit a read and return its completion time.
SimTime timed_read(Simulator& sim, NvmeQueuePair& qp, std::uint64_t bytes) {
  std::vector<std::byte> buf(bytes);
  SimTime done = 0;
  sim.spawn([](Simulator& s, NvmeQueuePair& q, std::span<std::byte> b,
               SimTime& out) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b, 1), IoStatus::kOk);
    co_await q.wait_for_completion();
    auto cpls = q.poll();
    EXPECT_EQ(cpls.size(), 1u);
    out = s.now();
  }(sim, qp, buf, done));
  sim.run();
  return done;
}

TEST(NvmeDevice, Qd1LatencyFloorSmallRead) {
  // 4 KiB QD1: occupancy max(1.8us, 1.638us) = 1.8us + 10us latency.
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair();
  const SimTime done = timed_read(sim, *qp, 4096);
  EXPECT_EQ(done, 1800 + 10000u);
}

TEST(NvmeDevice, Qd1LargeReadBandwidthBound) {
  // 1 MiB: occupancy = 1MiB / 2.5GB/s = 419430ns; + 10us latency.
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair();
  const SimTime done = timed_read(sim, *qp, 1_MiB);
  EXPECT_NEAR(static_cast<double>(done), 419430.4 + 10000.0, 2.0);
}

TEST(NvmeDevice, PipelinedSmallReadsHitIopsCeiling) {
  // 64 overlapping 512B commands: pipe serializes at cmd_min_occupancy
  // (1.8us each) => last completion at 64*1.8us + 10us latency.
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair(64);
  std::vector<std::vector<std::byte>> bufs(64, std::vector<std::byte>(512));
  SimTime last_done = 0;
  sim.spawn([](Simulator& s, NvmeQueuePair& q,
               std::vector<std::vector<std::byte>>& bs,
               SimTime& out) -> Task<void> {
    for (std::size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(q.submit(IoOp::kRead, i * 512, bs[i], i), IoStatus::kOk);
    }
    std::size_t harvested = 0;
    while (harvested < bs.size()) {
      co_await q.wait_for_completion();
      harvested += q.poll().size();
    }
    out = s.now();
  }(sim, *qp, bufs, last_done));
  sim.run();
  EXPECT_EQ(last_done, 64 * 1800 + 10000u);
  // Effective IOPS ~= 1 / 1.8us ~= 555K.
  const double iops = 64.0 / dlsim::to_seconds(last_done);
  EXPECT_GT(iops, 500e3);
  EXPECT_LT(iops, 600e3);
}

TEST(NvmeDevice, PipelinedLargeReadsSaturateBandwidth) {
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair(32);
  constexpr std::size_t kN = 32;
  std::vector<std::vector<std::byte>> bufs(kN, std::vector<std::byte>(128_KiB));
  SimTime last_done = 0;
  sim.spawn([](Simulator& s, NvmeQueuePair& q,
               std::vector<std::vector<std::byte>>& bs,
               SimTime& out) -> Task<void> {
    for (std::size_t i = 0; i < bs.size(); ++i) {
      EXPECT_EQ(q.submit(IoOp::kRead, i * 128_KiB, bs[i], i), IoStatus::kOk);
    }
    std::size_t harvested = 0;
    while (harvested < bs.size()) {
      co_await q.wait_for_completion();
      harvested += q.poll().size();
    }
    out = s.now();
  }(sim, *qp, bufs, last_done));
  sim.run();
  const double bw =
      static_cast<double>(kN * 128_KiB) / dlsim::to_seconds(last_done);
  EXPECT_GT(bw, 2.3e9);  // close to the 2.5 GB/s ceiling
  EXPECT_LE(bw, 2.5e9);
}

TEST(NvmeDevice, QueueDepthEnforced) {
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair(2);
  std::vector<std::byte> buf(512);
  sim.spawn([](NvmeQueuePair& q, std::span<std::byte> b) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b, 1), IoStatus::kOk);
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b, 2), IoStatus::kOk);
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b, 3), IoStatus::kQueueFull);
    co_await q.wait_for_completion();
    (void)q.poll();
    EXPECT_EQ(q.submit(IoOp::kRead, 0, b, 4), IoStatus::kOk);
  }(*qp, buf));
  sim.run();
}

TEST(NvmeDevice, OutOfRangeRejectedAtSubmit) {
  Simulator sim;
  auto dev = make_device(sim, 4096);
  auto qp = dev->create_qpair();
  std::vector<std::byte> buf(512);
  EXPECT_EQ(qp->submit(IoOp::kRead, 4000, buf, 1), IoStatus::kOutOfRange);
  EXPECT_EQ(qp->outstanding(), 0u);
}

TEST(NvmeDevice, CompletionsNotVisibleBeforeTheirTime) {
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair();
  std::vector<std::byte> buf(4096);
  EXPECT_EQ(qp->submit(IoOp::kRead, 0, buf, 1), IoStatus::kOk);
  EXPECT_TRUE(qp->poll().empty());  // t = 0, completion at 11.8us
  sim.run_until(5_us);
  EXPECT_TRUE(qp->poll().empty());
  sim.run_until(12_us);
  EXPECT_EQ(qp->poll().size(), 1u);
}

TEST(NvmeDevice, ReadsReturnStoreContent) {
  Simulator sim;
  auto store = std::make_unique<RamBackingStore>(1_MiB);
  std::vector<std::byte> data(2048);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>((i * 7) & 0xff);
  }
  store->write(8192, data);
  NvmeDevice dev(sim, "nvme0", std::move(store));
  auto qp = dev.create_qpair();
  std::vector<std::byte> buf(2048);
  EXPECT_EQ(qp->submit(IoOp::kRead, 8192, buf, 1), IoStatus::kOk);
  sim.run_until(1_ms);
  EXPECT_EQ(qp->poll().size(), 1u);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), data.size()), 0);
}

TEST(NvmeDevice, WriteThenReadRoundTrip) {
  Simulator sim;
  NvmeDevice dev(sim, "nvme0", std::make_unique<RamBackingStore>(1_MiB));
  auto qp = dev.create_qpair();
  std::vector<std::byte> in(1024, std::byte{0x3c});
  std::vector<std::byte> out(1024);
  sim.spawn([](NvmeQueuePair& q, std::span<std::byte> i,
               std::span<std::byte> o) -> Task<void> {
    EXPECT_EQ(q.submit(IoOp::kWrite, 100, i, 1), IoStatus::kOk);
    co_await q.wait_for_completion();
    (void)q.poll();
    EXPECT_EQ(q.submit(IoOp::kRead, 100, o, 2), IoStatus::kOk);
    co_await q.wait_for_completion();
    (void)q.poll();
  }(*qp, in, out));
  sim.run();
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size()), 0);
}

TEST(NvmeDevice, MultipleQpairsShareThePipe) {
  // Two qpairs each posting one 1 MiB read at t=0: the pipe serializes,
  // so the second completion lands ~one transfer later.
  Simulator sim;
  auto dev = make_device(sim);
  auto qp1 = dev->create_qpair();
  auto qp2 = dev->create_qpair();
  std::vector<std::byte> b1(1_MiB), b2(1_MiB);
  EXPECT_EQ(qp1->submit(IoOp::kRead, 0, b1, 1), IoStatus::kOk);
  EXPECT_EQ(qp2->submit(IoOp::kRead, 0, b2, 2), IoStatus::kOk);
  sim.run_until(430_us);
  EXPECT_EQ(qp1->poll().size(), 1u);  // ~429us
  EXPECT_TRUE(qp2->poll().empty());
  sim.run_until(850_us);
  EXPECT_EQ(qp2->poll().size(), 1u);  // ~849us
}

TEST(NvmeDevice, OwnershipExclusive) {
  Simulator sim;
  auto dev = make_device(sim);
  dev->claim(dlfs::hw::DeviceOwner::kKernel);
  EXPECT_THROW(dev->claim(dlfs::hw::DeviceOwner::kUserSpace),
               std::logic_error);
  dev->release(dlfs::hw::DeviceOwner::kKernel);
  EXPECT_NO_THROW(dev->claim(dlfs::hw::DeviceOwner::kUserSpace));
  EXPECT_THROW(dev->release(dlfs::hw::DeviceOwner::kKernel), std::logic_error);
}

TEST(NvmeDevice, StatsAccumulateAndReset) {
  Simulator sim;
  auto dev = make_device(sim);
  auto qp = dev->create_qpair();
  std::vector<std::byte> buf(4096);
  EXPECT_EQ(qp->submit(IoOp::kRead, 0, buf, 1), IoStatus::kOk);
  sim.run_until(1_ms);
  (void)qp->poll();
  EXPECT_EQ(dev->bytes_read(), 4096u);
  EXPECT_EQ(dev->commands_completed(), 1u);
  dev->reset_stats();
  EXPECT_EQ(dev->bytes_read(), 0u);
}

// ---------------------------------------------------------------------------
// Fabric

TEST(Fabric, PointToPointLatencyPlusTransfer) {
  Simulator sim;
  Fabric fab(sim, 2);
  SimTime done = 0;
  sim.spawn([](Simulator& s, Fabric& f, SimTime& out) -> Task<void> {
    co_await f.transfer(0, 1, 1000000);  // 1 MB at 6.8 GB/s ~= 147us
    out = s.now();
  }(sim, fab, done));
  sim.run();
  const SimTime expected = dlsim::transfer_time(1000000, 6.8e9) + 1300;
  EXPECT_EQ(done, expected);
}

TEST(Fabric, ControlMessageIsLatencyDominated) {
  Simulator sim;
  Fabric fab(sim, 2);
  SimTime done = 0;
  sim.spawn([](Simulator& s, Fabric& f, SimTime& out) -> Task<void> {
    co_await f.send_control(0, 1);
    out = s.now();
  }(sim, fab, done));
  sim.run();
  EXPECT_GE(done, 1300u);
  EXPECT_LT(done, 1400u);
}

TEST(Fabric, EgressPipeSerializesOneSender) {
  // Node 0 sends 1 MB to nodes 1 and 2 simultaneously: its egress NIC
  // serializes, so total time ~= 2 transfers.
  Simulator sim;
  Fabric fab(sim, 3);
  SimTime done = 0;
  int remaining = 2;
  auto send = [](Simulator& s, Fabric& f, dlfs::hw::NodeId dst, int& left,
                 SimTime& out) -> Task<void> {
    co_await f.transfer(0, dst, 1000000);
    if (--left == 0) out = s.now();
  };
  sim.spawn(send(sim, fab, 1, remaining, done));
  sim.spawn(send(sim, fab, 2, remaining, done));
  sim.run();
  const SimTime one = dlsim::transfer_time(1000000, 6.8e9);
  EXPECT_GE(done, 2 * one);
  EXPECT_LT(done, 2 * one + 10_us);
}

TEST(Fabric, DisjointPairsDoNotContend) {
  // 0->1 and 2->3 at the same time: full bisection, no serialization.
  Simulator sim;
  Fabric fab(sim, 4);
  std::vector<SimTime> done(2, 0);
  auto send = [](Simulator& s, Fabric& f, dlfs::hw::NodeId src,
                 dlfs::hw::NodeId dst, SimTime& out) -> Task<void> {
    co_await f.transfer(src, dst, 1000000);
    out = s.now();
  };
  sim.spawn(send(sim, fab, 0, 1, done[0]));
  sim.spawn(send(sim, fab, 2, 3, done[1]));
  sim.run();
  const SimTime one = dlsim::transfer_time(1000000, 6.8e9) + 1300;
  EXPECT_EQ(done[0], one);
  EXPECT_EQ(done[1], one);
}

TEST(Fabric, LoopbackBypassesNic) {
  Simulator sim;
  Fabric fab(sim, 2);
  SimTime done = 0;
  sim.spawn([](Simulator& s, Fabric& f, SimTime& out) -> Task<void> {
    co_await f.transfer(0, 0, 1000000);
    out = s.now();
  }(sim, fab, done));
  sim.run();
  // 20 GB/s local DMA: 50us for 1 MB, far below the 147us wire time.
  EXPECT_LT(done, 60_us);
}

TEST(Fabric, StatsPerNode) {
  Simulator sim;
  Fabric fab(sim, 2);
  sim.spawn([](Fabric& f) -> Task<void> {
    co_await f.transfer(0, 1, 1000);
    co_await f.transfer(1, 0, 500);
  }(fab));
  sim.run();
  EXPECT_EQ(fab.bytes_sent(0), 1000u);
  EXPECT_EQ(fab.bytes_received(1), 1000u);
  EXPECT_EQ(fab.bytes_sent(1), 500u);
  EXPECT_EQ(fab.bytes_received(0), 500u);
  EXPECT_EQ(fab.messages(), 2u);
}

TEST(Fabric, BadNodeIdThrows) {
  Simulator sim;
  Fabric fab(sim, 2);
  EXPECT_THROW((void)fab.bytes_sent(5), std::out_of_range);
}

}  // namespace

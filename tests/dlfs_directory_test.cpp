// Tests for the sharded sample directory: lazy remote resolution through
// the owner's metadata RPC, the bounded positive/negative lookup caches,
// the O(dataset/S) per-client memory claim (byte-accounted), and epoch
// delivery identity between the sharded and full-allgather mounts. The
// DirectoryMatrix suite is mode-agnostic: the ctest registration runs it
// once per DirectoryMode via DLFS_TEST_DIRECTORY.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/simulator.hpp"

namespace {

using dlfs::cluster::Cluster;
using dlfs::cluster::NodeConfig;
using dlfs::cluster::Pfs;
using dlfs::core::BatchingMode;
using dlfs::core::DirectoryMode;
using dlfs::core::DlfsConfig;
using dlfs::core::DlfsFleet;
using dlfs::core::DlfsInstance;
using dlfs::dataset::Dataset;
using dlsim::Simulator;
using dlsim::Task;
using namespace dlfs::byte_literals;

struct Rig {
  Simulator sim;
  Cluster cluster;
  Dataset ds;
  Pfs pfs;
  DlfsFleet fleet;

  Rig(Dataset dataset, DlfsConfig cfg, std::uint32_t nodes,
      std::vector<dlfs::hw::NodeId> client_nodes,
      std::vector<dlfs::hw::NodeId> storage_nodes)
      : cluster(sim, nodes, make_node_config()),
        ds(std::move(dataset)),
        pfs(sim, ds),
        fleet(cluster, pfs, ds, cfg, std::move(client_nodes),
              std::move(storage_nodes)) {
    fleet.mount();
  }

  static NodeConfig make_node_config() {
    NodeConfig nc;
    nc.synthetic_store = false;
    nc.device_capacity = 1_GiB;
    return nc;
  }
};

DlfsConfig sharded_cfg() {
  DlfsConfig cfg;
  cfg.batching = BatchingMode::kChunkLevel;
  cfg.directory.mode = DirectoryMode::kSharded;
  return cfg;
}

DirectoryMode mode_from_env() {
  const char* v = std::getenv("DLFS_TEST_DIRECTORY");
  if (v != nullptr && std::string(v) == "sharded") {
    return DirectoryMode::kSharded;
  }
  return DirectoryMode::kFull;
}

/// Runs `body` as a spawned coroutine and drives the sim to completion.
template <typename Body>
void run_in_sim(Rig& rig, Body&& body) {
  rig.sim.spawn(std::forward<Body>(body));
  rig.sim.run();
  rig.sim.rethrow_failures();
}

/// Drains one epoch with bread() and returns (ids, content ok).
std::vector<std::uint32_t> drain_epoch(Rig& rig, DlfsInstance& inst,
                                       std::uint64_t seed,
                                       std::size_t batch = 16) {
  inst.sequence(seed);
  std::vector<std::uint32_t> ids;
  rig.sim.spawn([](Rig& r, DlfsInstance& inst, std::size_t batch,
                   std::vector<std::uint32_t>& out) -> Task<void> {
    std::vector<std::byte> arena(batch * r.ds.max_sample_bytes());
    for (;;) {
      auto b = co_await inst.bread(batch, arena);
      if (b.end_of_epoch) break;
      for (const auto& s : b.samples) {
        out.push_back(s.sample_id);
        std::vector<std::byte> want(s.len);
        r.ds.fill_content(s.sample_id, 0, want);
        EXPECT_EQ(std::memcmp(arena.data() + s.offset_in_arena, want.data(),
                              want.size()),
                  0);
      }
    }
  }(rig, inst, batch, ids));
  rig.sim.run();
  rig.sim.rethrow_failures();
  return ids;
}

// ---------------------------------------------------------------------------

TEST(ShardedDirectory, ForeignSampleResolvesThroughOwnerRpc) {
  // Client on node 4 holds no shard: every first resolution is remote,
  // every repeat is a positive-cache hit.
  Rig rig(dlfs::dataset::make_fixed_size_dataset(256, 4096), sharded_cfg(),
          /*nodes=*/5, /*clients=*/{4}, /*storage=*/{0, 1, 2, 3});
  auto& inst = rig.fleet.instance(0);
  ASSERT_NE(inst.directory_view(), nullptr);

  run_in_sim(rig, [](Rig& r, DlfsInstance& inst) -> Task<void> {
    auto h1 = co_await inst.open_id(7);
    std::vector<std::byte> buf(h1.entry->len());
    co_await inst.read(h1, buf);
    std::vector<std::byte> want(buf.size());
    r.ds.fill_content(7, 0, want);
    EXPECT_EQ(std::memcmp(buf.data(), want.data(), want.size()), 0);
    auto h2 = co_await inst.open_id(7);  // repeat: served by the cache
    EXPECT_EQ(h1.entry, h2.entry);
  }(rig, inst));

  const auto& st = inst.stats().directory;
  EXPECT_EQ(st.local_hits, 0u);
  EXPECT_EQ(st.remote_lookups, 1u);
  EXPECT_EQ(st.cache_hits, 1u);
}

TEST(ShardedDirectory, CoLocatedShardServesLocally) {
  // Client on node 0 is co-located with storage slot 0: its own shard is
  // resident, so samples owned there never pay an RPC.
  Rig rig(dlfs::dataset::make_fixed_size_dataset(256, 4096), sharded_cfg(),
          /*nodes=*/2, /*clients=*/{0}, /*storage=*/{0, 1});
  auto& inst = rig.fleet.instance(0);
  const auto* view = inst.directory_view();
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->resident(0));
  EXPECT_FALSE(view->resident(1));

  // Resolve every sample once: slot-0 samples are local hits, slot-1
  // samples are remote.
  run_in_sim(rig, [](DlfsInstance& inst) -> Task<void> {
    for (std::uint32_t id = 0; id < 256; ++id) {
      (void)co_await inst.open_id(id);
    }
  }(inst));

  const auto& st = inst.stats().directory;
  EXPECT_EQ(st.local_hits, rig.fleet.directory().shard_entries(0));
  EXPECT_EQ(st.remote_lookups, rig.fleet.directory().shard_entries(1));
  EXPECT_GT(st.local_hits, 0u);
  EXPECT_GT(st.remote_lookups, 0u);
}

TEST(ShardedDirectory, NegativeCacheAnswersRepeatMisses) {
  auto cfg = sharded_cfg();
  Rig rig(dlfs::dataset::make_fixed_size_dataset(64, 4096), cfg,
          /*nodes=*/3, /*clients=*/{2}, /*storage=*/{0, 1});
  auto& inst = rig.fleet.instance(0);

  run_in_sim(rig, [](Rig& r, DlfsInstance& inst) -> Task<void> {
    (void)r;
    for (int attempt = 0; attempt < 2; ++attempt) {
      bool threw = false;
      try {
        (void)co_await inst.open("no-such-sample");
      } catch (const std::invalid_argument&) {
        threw = true;
      }
      EXPECT_TRUE(threw);
    }
  }(rig, inst));

  const auto& st = inst.stats().directory;
  // First miss pays the RPC and seeds the negative cache; the second is
  // answered client-side.
  EXPECT_EQ(st.remote_lookups, 1u);
  EXPECT_EQ(st.negative_hits, 1u);
}

TEST(ShardedDirectory, LookupCacheEvictsAtCapacity) {
  auto cfg = sharded_cfg();
  cfg.directory.lookup_cache_entries = 4;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(64, 4096), cfg,
          /*nodes=*/3, /*clients=*/{2}, /*storage=*/{0, 1});
  auto& inst = rig.fleet.instance(0);

  run_in_sim(rig, [](Rig& r, DlfsInstance& inst) -> Task<void> {
    (void)r;
    // 8 distinct foreign ids through a 4-entry cache: evictions must
    // happen, and id 0 (LRU) must have been displaced by the time we
    // come back around.
    for (std::uint32_t id = 0; id < 8; ++id) {
      (void)co_await inst.open_id(id);
    }
    (void)co_await inst.open_id(0);
  }(rig, inst));

  const auto& st = inst.stats().directory;
  EXPECT_GT(st.cache_evictions, 0u);
  EXPECT_EQ(st.remote_lookups, 9u);  // 8 cold + 1 re-resolve after eviction
  EXPECT_EQ(st.cache_hits, 0u);
}

TEST(ShardedDirectory, PerClientBytesStrictlyBelowFullAllgather) {
  // The acceptance bar: at S >= 4 the sharded client's accounted
  // directory memory stays strictly below the full-allgather copy — even
  // after a whole epoch has filled the lookup cache.
  auto cfg = sharded_cfg();
  cfg.directory.lookup_cache_entries = 128;
  cfg.directory.negative_cache_entries = 64;
  Rig rig(dlfs::dataset::make_fixed_size_dataset(2048, 4096), cfg,
          /*nodes=*/5, /*clients=*/{4}, /*storage=*/{0, 1, 2, 3});
  auto& inst = rig.fleet.instance(0);

  const std::uint64_t full = rig.fleet.full_directory_bytes();
  EXPECT_LT(inst.directory_bytes(), full);

  const auto ids = drain_epoch(rig, inst, /*seed=*/42);
  EXPECT_EQ(ids.size(), 2048u);
  EXPECT_LT(inst.directory_bytes(), full);
  // The cache is bounded, so the resident figure is partition map +
  // caps, not O(dataset).
  const auto* view = inst.directory_view();
  ASSERT_NE(view, nullptr);
  EXPECT_LE(view->resident_bytes(),
            dlfs::core::DirectoryView::kPartitionRowBytes * 4 +
                128 * (dlfs::core::SampleDirectory::kEntryBytes +
                       dlfs::core::SampleDirectory::kIdRowBytes) +
                64 * dlfs::core::DirectoryView::kNegativeRowBytes);
}

TEST(ShardedDirectory, EpochByteIdenticalToFullMount) {
  // Same dataset, same seed, both directory modes: the delivered id
  // sequence must match exactly and every sample's bytes must verify
  // (drain_epoch checks content against the dataset generator).
  auto run = [](DirectoryMode mode) {
    auto cfg = sharded_cfg();
    cfg.directory.mode = mode;
    Rig rig(dlfs::dataset::make_fixed_size_dataset(512, 4096), cfg,
            /*nodes=*/5, /*clients=*/{4}, /*storage=*/{0, 1, 2, 3});
    return drain_epoch(rig, rig.fleet.instance(0), /*seed=*/1234);
  };
  const auto full = run(DirectoryMode::kFull);
  const auto sharded = run(DirectoryMode::kSharded);
  EXPECT_EQ(full, sharded);
  EXPECT_EQ(full.size(), 512u);
}

// ---------------------------------------------------------------------------
// DirectoryMatrix: mode-agnostic epoch coverage, registered once per
// DirectoryMode via the DLFS_TEST_DIRECTORY environment variable.

TEST(DirectoryMatrix, EpochDeliversEverySampleWithContent) {
  // Two clients share one epoch: under the same seed each delivers its
  // strided share, and the union covers the dataset exactly once —
  // whichever directory layout the clients hold.
  auto cfg = sharded_cfg();
  cfg.directory.mode = mode_from_env();
  Rig rig(dlfs::dataset::make_fixed_size_dataset(384, 4096), cfg,
          /*nodes=*/4, /*clients=*/{0, 1}, /*storage=*/{0, 1, 2, 3});
  std::vector<std::uint32_t> ids;
  for (std::uint32_t c = 0; c < 2; ++c) {
    const auto part = drain_epoch(rig, rig.fleet.instance(c), /*seed=*/7);
    ids.insert(ids.end(), part.begin(), part.end());
  }
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 384u);
  for (std::uint32_t i = 0; i < 384; ++i) EXPECT_EQ(ids[i], i);
}

TEST(DirectoryMatrix, OpenByNameReadsCorrectBytes) {
  auto cfg = sharded_cfg();
  cfg.directory.mode = mode_from_env();
  Rig rig(dlfs::dataset::make_fixed_size_dataset(128, 4096), cfg,
          /*nodes=*/3, /*clients=*/{2}, /*storage=*/{0, 1});
  auto& inst = rig.fleet.instance(0);
  run_in_sim(rig, [](Rig& r, DlfsInstance& inst) -> Task<void> {
    for (std::uint32_t id = 0; id < 128; id += 17) {
      const auto name = std::string(r.ds.sample(id).name);
      auto h = co_await inst.open(name);
      EXPECT_EQ(h.sample_id, id);
      std::vector<std::byte> buf(h.entry->len());
      co_await inst.read(h, buf);
      std::vector<std::byte> want(buf.size());
      r.ds.fill_content(id, 0, want);
      EXPECT_EQ(std::memcmp(buf.data(), want.data(), want.size()), 0);
    }
  }(rig, inst));
}

}  // namespace

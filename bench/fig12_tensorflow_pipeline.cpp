// Fig. 12 — Aggregated data-import throughput for a TensorFlow-style
// input pipeline (tfio) on top of DLFS, Octopus and Ext4, 512 B and
// 128 KB samples, 2..16 nodes.
//
// Paper headlines:
//   * 512 B : DLFS-TF 102.07x Ext4-TF and 29.93x Octopus-TF (average)
//   * 128 KB: DLFS-TF +61.4% vs Ext4-TF, 1.25x vs Octopus-TF

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "harness.hpp"
#include "octofs/octofs.hpp"
#include "osfs/ext4.hpp"
#include "sim/simulator.hpp"
#include "tfio/pipeline.hpp"
#include "tfio/sources.hpp"

using dlfs::Table;
using dlsim::Task;
using namespace dlfs::byte_literals;

namespace {

struct TfResult {
  double samples_per_sec = 0.0;
};

dlfs::cluster::NodeConfig make_nc(std::uint32_t sample_bytes,
                                  std::size_t samples_per_node,
                                  std::uint32_t nodes) {
  dlfs::cluster::NodeConfig nc;
  nc.synthetic_store = true;
  nc.device_capacity = std::max<std::uint64_t>(
      1_GiB, 2ull * sample_bytes * samples_per_node * nodes);
  return nc;
}

/// Drains one pipeline per client and returns aggregate throughput.
template <typename MakeSource>
TfResult drain_pipelines(dlsim::Simulator& sim, std::uint32_t clients,
                         MakeSource&& make_source,
                         std::vector<dlsim::CpuCore*> cores) {
  const dlsim::SimTime start = sim.now();
  std::uint64_t total = 0;
  std::vector<std::unique_ptr<dlfs::tfio::Pipeline>> pipes;
  for (std::uint32_t c = 0; c < clients; ++c) {
    pipes.push_back(std::make_unique<dlfs::tfio::Pipeline>(
        *cores[c], make_source(c), dlfs::default_calibration().framework));
    // Standard tf.data shape: batch then a small prefetch queue, so the
    // framework stages overlap the consumer loop on every backend.
    pipes.back()->batch(32).prefetch(2);
    sim.spawn([](dlfs::tfio::Pipeline& p, std::uint64_t& n) -> Task<void> {
      for (;;) {
        auto b = co_await p.next_batch();
        if (!b) break;
        n += b->elements.size();
      }
    }(*pipes.back(), total));
  }
  sim.run();
  sim.rethrow_failures();
  TfResult r;
  r.samples_per_sec =
      static_cast<double>(total) / dlsim::to_seconds(sim.now() - start);
  return r;
}

TfResult run_dlfs_tf(std::uint32_t nodes, std::uint32_t sample_bytes,
                     std::size_t samples_per_node) {
  dlsim::Simulator sim;
  dlfs::cluster::Cluster cluster(
      sim, nodes, make_nc(sample_bytes, samples_per_node, nodes));
  auto ds = dlfs::dataset::make_fixed_size_dataset(samples_per_node * nodes,
                                                   sample_bytes, 5);
  dlfs::cluster::Pfs pfs(sim, ds);
  dlfs::core::DlfsConfig cfg;
  cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
  dlfs::core::DlfsFleet fleet(cluster, pfs, ds, cfg);
  fleet.mount();
  std::vector<dlsim::CpuCore*> cores;
  for (std::uint32_t c = 0; c < nodes; ++c) {
    cores.push_back(&fleet.instance(c).io_core());
  }
  return drain_pipelines(
      sim, nodes,
      [&](std::uint32_t c) {
        return std::make_unique<dlfs::tfio::DlfsSource>(
            fleet.instance(c), /*epoch_seed=*/9, /*io_batch=*/32,
            ds.max_sample_bytes());
      },
      cores);
}

TfResult run_ext4_tf(std::uint32_t nodes, std::uint32_t sample_bytes,
                     std::size_t samples_per_node) {
  dlsim::Simulator sim;
  dlfs::cluster::Cluster cluster(
      sim, nodes, make_nc(sample_bytes, samples_per_node, nodes));
  std::vector<std::unique_ptr<dlfs::osfs::Ext4Fs>> fss;
  std::vector<std::unique_ptr<dlfs::osfs::OsThread>> threads;
  std::vector<dlsim::CpuCore*> cores;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    fss.push_back(std::make_unique<dlfs::osfs::Ext4Fs>(
        sim, cluster.node(n).device(), dlfs::default_calibration()));
    sim.spawn([](dlfs::osfs::Ext4Fs& fs, dlfs::cluster::Node& node,
                 std::uint32_t bytes, std::size_t count) -> Task<void> {
      dlfs::osfs::OsThread staging(fs, node.core(15));
      std::vector<std::byte> data(bytes);
      for (std::size_t i = 0; i < count; ++i) {
        const int fd = co_await fs.create(staging, "s" + std::to_string(i));
        co_await fs.append(staging, fd, data);
        co_await fs.close(staging, fd);
      }
    }(*fss[n], cluster.node(n), sample_bytes, samples_per_node));
  }
  sim.run();
  sim.rethrow_failures();
  for (std::uint32_t n = 0; n < nodes; ++n) {
    fss[n]->drop_caches();
    cores.push_back(&cluster.node(n).core(0));
    threads.push_back(
        std::make_unique<dlfs::osfs::OsThread>(*fss[n], *cores.back()));
  }
  return drain_pipelines(
      sim, nodes,
      [&](std::uint32_t c) {
        dlfs::Rng rng(7);
        auto order = rng.permutation(samples_per_node);
        std::vector<dlfs::tfio::Ext4Source::FileRef> refs;
        for (auto i : order) {
          refs.push_back({"s" + std::to_string(i),
                          static_cast<std::uint32_t>(i), 0, sample_bytes});
        }
        return std::make_unique<dlfs::tfio::Ext4Source>(*fss[c], *threads[c],
                                                        std::move(refs));
      },
      cores);
}

TfResult run_octo_tf(std::uint32_t nodes, std::uint32_t sample_bytes,
                     std::size_t samples_per_node) {
  dlsim::Simulator sim;
  dlfs::cluster::Cluster cluster(
      sim, nodes, make_nc(sample_bytes, samples_per_node, nodes));
  dlfs::octofs::OctoFs fs(cluster, dlfs::default_calibration());
  const std::size_t total = samples_per_node * nodes;
  sim.spawn([](dlfs::octofs::OctoFs& fs, std::uint32_t bytes,
               std::size_t total) -> Task<void> {
    std::vector<std::byte> data(bytes);
    for (std::size_t i = 0; i < total; ++i) {
      co_await fs.stage_file("s" + std::to_string(i), data);
    }
  }(fs, sample_bytes, total));
  sim.run();
  sim.rethrow_failures();
  std::vector<std::unique_ptr<dlfs::octofs::OctoFs::Client>> clients;
  std::vector<dlsim::CpuCore*> cores;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    cores.push_back(&cluster.node(n).core(0));
    clients.push_back(fs.make_client(n, *cores.back()));
  }
  return drain_pipelines(
      sim, nodes,
      [&](std::uint32_t c) {
        dlfs::Rng rng(7);
        auto order = rng.permutation(total);
        std::vector<dlfs::tfio::OctoSource::FileRef> refs;
        for (std::size_t i = c; i < order.size(); i += nodes) {
          refs.push_back({"s" + std::to_string(order[i]),
                          static_cast<std::uint32_t>(order[i]), 0,
                          sample_bytes});
        }
        return std::make_unique<dlfs::tfio::OctoSource>(*clients[c],
                                                        std::move(refs));
      },
      cores);
}

}  // namespace

int main() {
  dlfs::print_banner("Fig 12: TensorFlow-style pipeline throughput");

  const std::vector<std::uint32_t> node_counts = {2, 4, 8, 16};
  for (std::uint32_t size : {512u, static_cast<std::uint32_t>(128_KiB)}) {
    const std::size_t spn = size == 512 ? 2048 : 128;
    Table t({"nodes", "Ext4-TF", "Octopus-TF", "DLFS-TF", "DLFS/Ext4",
             "DLFS/Octo", "unit"});
    double sum_e = 0, sum_o = 0;
    for (auto nodes : node_counts) {
      const auto dl = run_dlfs_tf(nodes, size, spn);
      const auto e4 = run_ext4_tf(nodes, size, spn);
      const auto oc = run_octo_tf(nodes, size, spn);
      sum_e += dl.samples_per_sec / e4.samples_per_sec;
      sum_o += dl.samples_per_sec / oc.samples_per_sec;
      t.add_row({Table::integer(nodes),
                 Table::num(e4.samples_per_sec / 1e3, 1),
                 Table::num(oc.samples_per_sec / 1e3, 1),
                 Table::num(dl.samples_per_sec / 1e3, 1),
                 Table::num(dl.samples_per_sec / e4.samples_per_sec, 2) + "x",
                 Table::num(dl.samples_per_sec / oc.samples_per_sec, 2) + "x",
                 "Ksamples/s"});
    }
    std::printf("\nsample size %s\n", dlfs::format_bytes(size).c_str());
    t.print();
    const double n = static_cast<double>(node_counts.size());
    if (size == 512) {
      std::printf(
          "paper: DLFS-TF 102.07x Ext4-TF | measured %.2fx ; 29.93x "
          "Octopus-TF | measured %.2fx\n",
          sum_e / n, sum_o / n);
    } else {
      std::printf(
          "paper: DLFS-TF +61.4%% vs Ext4-TF | measured +%.1f%% ; 1.25x "
          "Octopus-TF | measured %.2fx\n",
          (sum_e / n - 1.0) * 100.0, sum_o / n);
    }
  }
  return 0;
}

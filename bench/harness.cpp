#include "harness.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "octofs/octofs.hpp"
#include "osfs/ext4.hpp"
#include "sim/simulator.hpp"

namespace dlfs::bench {

namespace {

using dlsim::SimTime;
using dlsim::Task;
using namespace dlfs::byte_literals;

cluster::NodeConfig node_config(const Workload& w) {
  cluster::NodeConfig nc;
  nc.synthetic_store = true;
  nc.device_capacity = std::max<std::uint64_t>(
      1_GiB, 2ull * w.sample_bytes * w.samples_per_node * w.num_nodes);
  nc.nvme = w.calibration.nvme;
  return nc;
}

}  // namespace

RunResult run_dlfs(const Workload& w, core::DlfsConfig cfg,
                   dlsim::SimDuration injected_poll_compute,
                   const FaultPlan& faults) {
  dlsim::Simulator sim;
  cluster::Cluster cluster(sim, w.num_nodes, node_config(w),
                           w.calibration.nic);
  const std::uint32_t n_storage = w.storage == 0 ? w.num_nodes : w.storage;
  const std::uint32_t n_clients = w.clients == 0 ? w.num_nodes : w.clients;
  auto ds = dataset::make_fixed_size_dataset(
      w.samples_per_node * n_storage, w.sample_bytes, w.seed);
  cluster::Pfs pfs(sim, ds, w.calibration.pfs);
  cfg.calibration = w.calibration;
  std::vector<hw::NodeId> client_nodes, storage_nodes;
  for (std::uint32_t i = 0; i < n_clients; ++i) {
    client_nodes.push_back((w.client_node_offset + i) % w.num_nodes);
  }
  for (std::uint32_t i = 0; i < n_storage; ++i) storage_nodes.push_back(i);
  core::DlfsFleet fleet(cluster, pfs, ds, cfg, client_nodes, storage_nodes);
  fleet.mount();

  const SimTime start = sim.now();
  if (faults.crash_slot >= 0) {
    auto* target = fleet.target(static_cast<std::uint32_t>(faults.crash_slot));
    target->crash_at(start + faults.crash_at);
    if (faults.recover_at) target->recover_at(start + *faults.recover_at);
  }
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    auto& inst = fleet.instance(c);
    inst.set_injected_poll_compute(injected_poll_compute);
    inst.io_core().reset_accounting();
    inst.sequence(w.seed + 1);
  }
  std::uint64_t total_samples = 0;
  // Epoch end is when the last reader finishes, not when the event queue
  // drains — a scheduled recovery can outlive the epoch.
  SimTime readers_done = start;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    sim.spawn([](dlsim::Simulator& sim, core::DlfsInstance& inst,
                 const Workload& w, std::uint64_t& total,
                 SimTime& done) -> Task<void> {
      if (w.zero_copy) {
        // Double-buffered zero-copy reader: each view batch stays pinned
        // (consumed by "the application") while the next is fetched; the
        // lease handoff releases the previous batch's units.
        core::ViewLease prev;
        for (;;) {
          auto vb = co_await inst.bread_views(w.batch_size);
          if (vb.end_of_epoch) break;
          total += vb.samples.size();
          prev = core::ViewLease(inst, std::move(vb));
        }
      } else {
        std::vector<std::byte> arena(
            (w.batch_size + 1) * static_cast<std::size_t>(w.sample_bytes));
        for (;;) {
          auto batch = co_await inst.bread(w.batch_size, arena);
          if (batch.end_of_epoch) break;
          total += batch.samples.size();
        }
      }
      done = std::max(done, sim.now());
    }(sim, fleet.instance(c), w, total_samples, readers_done));
  }
  sim.run();
  sim.rethrow_failures();

  RunResult r;
  r.elapsed = readers_done - start;
  r.samples = total_samples;
  r.samples_per_sec =
      static_cast<double>(total_samples) / dlsim::to_seconds(r.elapsed);
  r.bytes_per_sec = r.samples_per_sec * w.sample_bytes;
  double util = 0.0;
  double lookup_us = 0.0;
  std::uint64_t delivered_samples = 0;
  std::uint64_t delivered_bytes = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    auto& inst = fleet.instance(c);
    util += inst.io_core().utilization();
    const core::InstanceStats st = inst.stats();
    lookup_us += dlsim::to_micros(st.lookup_time_total);
    r.cache_hits += inst.cache().hits();
    r.cache_misses += inst.cache().misses();
    r.bytes_copied += st.bytes_copied;
    r.bytes_zero_copy += st.bytes_zero_copy;
    r.view_pins_active += st.view_pins_active;
    r.cross_core_handoffs += st.cross_core_handoffs;
    const core::PrefetchStats& ps = st.prefetch;
    r.prefetch.units_issued += ps.units_issued;
    r.prefetch.units_resident_at_pick += ps.units_resident_at_pick;
    r.prefetch.units_stalled += ps.units_stalled;
    r.prefetch.stall_ns += ps.stall_ns;
    r.prefetch.window_grows += ps.window_grows;
    r.prefetch.window_shrinks += ps.window_shrinks;
    r.prefetch.units_dropped += ps.units_dropped;
    r.prefetch.units_reissued += ps.units_reissued;
    r.prefetch.arbiter_throttles += ps.arbiter_throttles;
    r.prefetch.in_flight_hwm =
        std::max(r.prefetch.in_flight_hwm, ps.in_flight_hwm);
    r.prefetch.window_target =
        std::max(r.prefetch.window_target, ps.window_target);
    auto& eng = inst.engine();
    r.io_retries += eng.retries();
    const spdk::IoQueueStats ts = eng.transport_stats();
    r.transport.timeouts += ts.timeouts;
    r.transport.connections_lost += ts.connections_lost;
    r.transport.reconnects += ts.reconnects;
    r.transport.replays += ts.replays;
    r.samples_skipped += st.samples_skipped;
    r.nodes_down = std::max(r.nodes_down, eng.nodes_down());
    r.nodes_declared_dead += st.nodes_declared_dead;
    r.samples_rereplicated += st.samples_rereplicated;
    r.repair_bytes += st.repair_bytes;
    r.repair_throttles += st.repair_throttles;
    r.qos_deferrals += st.qos_deferrals;
    r.directory.local_hits += st.directory.local_hits;
    r.directory.cache_hits += st.directory.cache_hits;
    r.directory.negative_hits += st.directory.negative_hits;
    r.directory.remote_lookups += st.directory.remote_lookups;
    r.directory.cache_evictions += st.directory.cache_evictions;
    r.directory.stale_invalidations += st.directory.stale_invalidations;
    r.directory_bytes += st.directory_bytes;
    r.peer_hits_local += st.peer_hits_local;
    r.peer_hits_remote += st.peer_hits_remote;
    r.peer_misses += st.peer_misses;
    r.peer_bytes += st.peer_bytes;
    delivered_samples += st.samples_delivered;
    delivered_bytes += st.bytes_delivered;
  }
  // Cross-check the instances' own delivery counters against the
  // reader-side tally: a mismatch means a batch was double-counted or
  // silently dropped between the instance and the application.
  if (delivered_samples != total_samples ||
      delivered_bytes != total_samples * w.sample_bytes) {
    throw std::logic_error(
        "run_dlfs: delivery counters disagree with the reader tally: "
        "instances report " +
        std::to_string(delivered_samples) + " samples / " +
        std::to_string(delivered_bytes) + " bytes, readers saw " +
        std::to_string(total_samples) + " samples / " +
        std::to_string(total_samples * w.sample_bytes) + " bytes");
  }
  r.client_cpu_util = util / n_clients;
  r.lookup_us_avg =
      total_samples ? lookup_us / static_cast<double>(total_samples) : 0.0;
  return r;
}

RunResult run_ext4(const Workload& w, std::uint32_t threads_per_node) {
  dlsim::Simulator sim;
  cluster::Cluster cluster(sim, w.num_nodes, node_config(w),
                           w.calibration.nic);
  // One Ext4 per node over its own device, holding that node's shard.
  std::vector<std::unique_ptr<osfs::Ext4Fs>> fss;
  for (std::uint32_t n = 0; n < w.num_nodes; ++n) {
    fss.push_back(std::make_unique<osfs::Ext4Fs>(
        sim, cluster.node(n).device(), w.calibration));
  }
  // Stage: each node's files written by one staging thread.
  for (std::uint32_t n = 0; n < w.num_nodes; ++n) {
    sim.spawn([](osfs::Ext4Fs& fs, cluster::Node& node,
                 const Workload& w) -> Task<void> {
      osfs::OsThread staging(fs, node.core(15));
      std::vector<std::byte> data(w.sample_bytes);
      for (std::size_t i = 0; i < w.samples_per_node; ++i) {
        const int fd =
            co_await fs.create(staging, "s" + std::to_string(i));
        co_await fs.append(staging, fd, data);
        co_await fs.close(staging, fd);
      }
    }(*fss[n], cluster.node(n), w));
  }
  sim.run();
  sim.rethrow_failures();
  for (auto& fs : fss) fs->drop_caches();

  const SimTime start = sim.now();
  std::uint64_t total_samples = 0;
  std::vector<dlsim::CpuCore*> cores;
  std::vector<std::unique_ptr<osfs::OsThread>> threads;
  double open_us_total = 0.0;
  for (std::uint32_t n = 0; n < w.num_nodes; ++n) {
    for (std::uint32_t t = 0; t < threads_per_node; ++t) {
      auto& core = cluster.node(n).core(t);
      core.reset_accounting();
      cores.push_back(&core);
      threads.push_back(std::make_unique<osfs::OsThread>(*fss[n], core));
      sim.spawn([](dlsim::Simulator& sim, osfs::Ext4Fs& fs,
                   osfs::OsThread& thread, const Workload& w,
                   std::uint32_t tid, std::uint32_t nthreads,
                   std::uint64_t& total, double& open_us) -> Task<void> {
        // This thread reads its strided slice of the node's shuffled list.
        Rng rng(w.seed + 7);
        auto order = rng.permutation(w.samples_per_node);
        std::vector<std::byte> buf(w.sample_bytes);
        for (std::size_t i = tid; i < order.size(); i += nthreads) {
          const SimTime t0 = sim.now();
          auto fd =
              co_await fs.open(thread, "s" + std::to_string(order[i]));
          open_us += dlsim::to_micros(sim.now() - t0);
          (void)co_await fs.pread(thread, *fd, buf, 0);
          co_await fs.close(thread, *fd);
          ++total;
        }
      }(sim, *fss[n], *threads.back(), w, t, threads_per_node, total_samples,
        open_us_total));
    }
  }
  sim.run();
  sim.rethrow_failures();

  RunResult r;
  r.elapsed = sim.now() - start;
  r.samples = total_samples;
  r.samples_per_sec =
      static_cast<double>(total_samples) / dlsim::to_seconds(r.elapsed);
  r.bytes_per_sec = r.samples_per_sec * w.sample_bytes;
  double util = 0.0;
  for (auto* c : cores) util += c->utilization();
  r.client_cpu_util = util / static_cast<double>(cores.size());
  r.lookup_us_avg =
      total_samples ? open_us_total / static_cast<double>(total_samples) : 0.0;
  return r;
}

RunResult run_octopus(const Workload& w) {
  dlsim::Simulator sim;
  cluster::Cluster cluster(sim, w.num_nodes, node_config(w),
                           w.calibration.nic);
  octofs::OctoFs fs(cluster, w.calibration);
  const std::size_t total = w.samples_per_node * w.num_nodes;
  // Stage the global dataset (hash-placed on owners).
  sim.spawn([](octofs::OctoFs& fs, const Workload& w,
               std::size_t total) -> Task<void> {
    std::vector<std::byte> data(w.sample_bytes);
    for (std::size_t i = 0; i < total; ++i) {
      co_await fs.stage_file("s" + std::to_string(i), data);
    }
  }(fs, w, total));
  sim.run();
  sim.rethrow_failures();

  const SimTime start = sim.now();
  std::uint64_t read_count = 0;
  double lookup_us_total = 0.0;
  std::vector<std::unique_ptr<octofs::OctoFs::Client>> clients;
  std::vector<dlsim::CpuCore*> cores;
  for (std::uint32_t n = 0; n < w.num_nodes; ++n) {
    auto& core = cluster.node(n).core(0);
    core.reset_accounting();
    cores.push_back(&core);
    clients.push_back(fs.make_client(n, core));
    sim.spawn([](dlsim::Simulator& sim, octofs::OctoFs::Client& client,
                 const Workload& w, std::uint32_t nid, std::size_t total,
                 std::uint64_t& count, double& lookup_us) -> Task<void> {
      // Client n reads its strided share of a global shuffled order.
      Rng rng(w.seed + 11);
      auto order = rng.permutation(total);
      std::vector<std::byte> buf(w.sample_bytes);
      for (std::size_t i = nid; i < order.size(); i += w.num_nodes) {
        const SimTime t0 = sim.now();
        auto meta = co_await client.open("s" + std::to_string(order[i]));
        lookup_us += dlsim::to_micros(sim.now() - t0);
        co_await client.read(*meta, buf);
        ++count;
      }
    }(sim, *clients.back(), w, n, total, read_count, lookup_us_total));
  }
  sim.run();
  sim.rethrow_failures();

  RunResult r;
  r.elapsed = sim.now() - start;
  r.samples = read_count;
  r.samples_per_sec =
      static_cast<double>(read_count) / dlsim::to_seconds(r.elapsed);
  r.bytes_per_sec = r.samples_per_sec * w.sample_bytes;
  double util = 0.0;
  for (auto* c : cores) util += c->utilization();
  r.client_cpu_util = util / static_cast<double>(cores.size());
  r.lookup_us_avg =
      read_count ? lookup_us_total / static_cast<double>(read_count) : 0.0;
  return r;
}

LookupTimes measure_lookup_times(std::uint32_t num_nodes,
                                 std::size_t files_per_node,
                                 std::uint32_t sample_bytes,
                                 std::size_t measure_count) {
  LookupTimes out;
  Workload w;
  w.num_nodes = num_nodes;
  w.sample_bytes = sample_bytes;
  w.samples_per_node = files_per_node;
  {
    // DLFS: mount, then time raw directory lookups from node 0.
    dlsim::Simulator sim;
    cluster::Cluster cluster(sim, num_nodes, node_config(w));
    auto ds = dataset::make_fixed_size_dataset(files_per_node * num_nodes,
                                               sample_bytes, 1);
    cluster::Pfs pfs(sim, ds);
    core::DlfsFleet fleet(cluster, pfs, ds, core::DlfsConfig{});
    fleet.mount();
    auto& inst = fleet.instance(0);
    const SimTime t0 = sim.now();
    sim.spawn([](core::DlfsInstance& inst, const dataset::Dataset& ds,
                 std::size_t count) -> Task<void> {
      Rng rng(3);
      for (std::size_t i = 0; i < count; ++i) {
        const auto id =
            static_cast<std::uint32_t>(rng.next_below(ds.num_samples()));
        (void)co_await inst.open_id(id);
      }
    }(inst, ds, measure_count));
    sim.run();
    sim.rethrow_failures();
    out.dlfs_us = dlsim::to_micros(sim.now() - t0) /
                  static_cast<double>(measure_count);
  }
  {
    // Ext4: cold opens on one node. Beyond the metadata-cache capacity the
    // per-open cost is flat, so staging is capped for host-time reasons.
    const std::size_t ext4_files = std::min<std::size_t>(files_per_node, 30000);
    dlsim::Simulator sim;
    cluster::Cluster cluster(sim, 1, node_config(w));
    osfs::Ext4Fs fs(sim, cluster.node(0).device(), default_calibration());
    sim.spawn([](osfs::Ext4Fs& fs, cluster::Node& node, std::size_t n,
                 std::uint32_t bytes) -> Task<void> {
      osfs::OsThread staging(fs, node.core(15));
      std::vector<std::byte> data(bytes);
      for (std::size_t i = 0; i < n; ++i) {
        const int fd = co_await fs.create(staging, "s" + std::to_string(i));
        co_await fs.append(staging, fd, data);
        co_await fs.close(staging, fd);
      }
    }(fs, cluster.node(0), ext4_files, sample_bytes));
    sim.run();
    sim.rethrow_failures();
    fs.drop_caches();
    const SimTime t0 = sim.now();
    sim.spawn([](osfs::Ext4Fs& fs, cluster::Node& node, std::size_t files,
                 std::size_t count) -> Task<void> {
      osfs::OsThread thread(fs, node.core(0));
      Rng rng(3);
      for (std::size_t i = 0; i < count; ++i) {
        const auto id = rng.next_below(files);
        auto fd = co_await fs.open(thread, "s" + std::to_string(id));
        co_await fs.close(thread, *fd);
      }
    }(fs, cluster.node(0), ext4_files, measure_count));
    sim.run();
    sim.rethrow_failures();
    out.ext4_us = dlsim::to_micros(sim.now() - t0) /
                  static_cast<double>(measure_count);
  }
  {
    // OctoFS: lookups from node 0 over the partitioned namespace.
    dlsim::Simulator sim;
    cluster::Cluster cluster(sim, num_nodes, node_config(w));
    octofs::OctoFs fs(cluster, default_calibration());
    // Lookup cost does not depend on file count; cap staging for host time.
    const std::size_t total =
        std::min<std::size_t>(files_per_node * num_nodes, 100000);
    sim.spawn([](octofs::OctoFs& fs, std::size_t n,
                 std::uint32_t bytes) -> Task<void> {
      std::vector<std::byte> data(bytes);
      for (std::size_t i = 0; i < n; ++i) {
        co_await fs.stage_file("s" + std::to_string(i), data);
      }
    }(fs, total, sample_bytes));
    sim.run();
    sim.rethrow_failures();
    auto client = fs.make_client(0, cluster.node(0).core(0));
    const SimTime t0 = sim.now();
    sim.spawn([](octofs::OctoFs::Client& client, std::size_t files,
                 std::size_t count) -> Task<void> {
      Rng rng(3);
      for (std::size_t i = 0; i < count; ++i) {
        const auto id = rng.next_below(files);
        (void)co_await client.open("s" + std::to_string(id));
      }
    }(*client, total, measure_count));
    sim.run();
    sim.rethrow_failures();
    out.octopus_us = dlsim::to_micros(sim.now() - t0) /
                     static_cast<double>(measure_count);
  }
  return out;
}

void JsonReport::add(const std::string& config, const RunResult& r) {
  rows_.push_back(Row{config, r});
}

std::string JsonReport::write() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& [config, r] = rows_[i];
    const auto& p = r.prefetch;
    out << "  {\"config\": \"" << config << "\""
        << ", \"samples_per_sec\": " << r.samples_per_sec
        << ", \"bytes_per_sec\": " << r.bytes_per_sec
        << ", \"client_cpu_util\": " << r.client_cpu_util
        << ", \"elapsed_us\": " << dlsim::to_micros(r.elapsed)
        << ", \"samples\": " << r.samples
        << ", \"lookup_us_avg\": " << r.lookup_us_avg
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"cache_misses\": " << r.cache_misses
        << ", \"bytes_copied\": " << r.bytes_copied
        << ", \"bytes_zero_copy\": " << r.bytes_zero_copy
        << ", \"view_pins_active\": " << r.view_pins_active
        << ", \"cross_core_handoffs\": " << r.cross_core_handoffs
        << ", \"prefetch_units_issued\": " << p.units_issued
        << ", \"prefetch_units_resident_at_pick\": "
        << p.units_resident_at_pick
        << ", \"prefetch_units_stalled\": " << p.units_stalled
        << ", \"prefetch_stall_us\": " << dlsim::to_micros(p.stall_ns)
        << ", \"prefetch_in_flight_hwm\": " << p.in_flight_hwm
        << ", \"prefetch_window_grows\": " << p.window_grows
        << ", \"prefetch_window_shrinks\": " << p.window_shrinks
        << ", \"prefetch_units_dropped\": " << p.units_dropped
        << ", \"prefetch_units_reissued\": " << p.units_reissued
        << ", \"prefetch_arbiter_throttles\": " << p.arbiter_throttles
        << ", \"prefetch_window_target\": " << p.window_target
        << ", \"io_retries\": " << r.io_retries
        << ", \"io_timeouts\": " << r.transport.timeouts
        << ", \"connections_lost\": " << r.transport.connections_lost
        << ", \"reconnects\": " << r.transport.reconnects
        << ", \"replays\": " << r.transport.replays
        << ", \"samples_skipped\": " << r.samples_skipped
        << ", \"nodes_down\": " << r.nodes_down
        << ", \"nodes_declared_dead\": " << r.nodes_declared_dead
        << ", \"samples_rereplicated\": " << r.samples_rereplicated
        << ", \"repair_bytes\": " << r.repair_bytes
        << ", \"repair_throttles\": " << r.repair_throttles
        << ", \"qos_deferrals\": " << r.qos_deferrals
        << ", \"directory_local_hits\": " << r.directory.local_hits
        << ", \"directory_cache_hits\": " << r.directory.cache_hits
        << ", \"directory_negative_hits\": " << r.directory.negative_hits
        << ", \"directory_remote_lookups\": " << r.directory.remote_lookups
        << ", \"directory_cache_evictions\": " << r.directory.cache_evictions
        << ", \"directory_stale_invalidations\": "
        << r.directory.stale_invalidations
        << ", \"directory_bytes\": " << r.directory_bytes
        << ", \"peer_hits_local\": " << r.peer_hits_local
        << ", \"peer_hits_remote\": " << r.peer_hits_remote
        << ", \"peer_misses\": " << r.peer_misses
        << ", \"peer_bytes\": " << r.peer_bytes << "}"
        << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return path;
}

}  // namespace dlfs::bench

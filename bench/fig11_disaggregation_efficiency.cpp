// Fig. 11 — Effective throughput on disaggregated NVMe devices
// (128 KB samples).
//
//   DLFS-1C  : one client node reading from 1..16 remote NVMe-oF targets
//   DLFS-16C : sixteen clients over the same pool
//   NVMe-1C  : ideal — min(total device bandwidth, one client NIC)
//   NVMe-16C : ideal — total device bandwidth
//
// Paper headlines: DLFS-1C reaches 93.4% of the ideal (NIC-capped beyond
// ~2 devices); DLFS-16C scales linearly up to 88% of ideal.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

using dlfs::Table;
using dlfs::bench::Workload;
using namespace dlfs::byte_literals;

int main() {
  dlfs::print_banner(
      "Fig 11: effective throughput on disaggregated NVMe devices (128 KiB)");

  const auto& cal = dlfs::default_calibration();
  const double dev_bw = cal.nvme.read_bw_bytes_per_sec;
  const double nic_bw = cal.nic.bw_bytes_per_sec;
  const double sample = 128.0 * 1024.0;

  const std::vector<std::uint32_t> device_counts = {1, 2, 4, 8, 16};
  Table t({"devices", "NVMe-1C", "DLFS-1C", "eff", "NVMe-16C", "DLFS-16C",
           "eff", "unit"});
  double eff1_sum = 0, eff16_sum = 0;
  std::vector<double> dlfs16_series;
  for (auto n : device_counts) {
    // One client on a dedicated extra node; every device remote.
    Workload w1;
    w1.num_nodes = n + 1;
    w1.clients = 1;
    w1.storage = n;
    w1.client_node_offset = n;  // the client lives on the extra node
    w1.sample_bytes = static_cast<std::uint32_t>(sample);
    w1.samples_per_node = 256;
    dlfs::core::DlfsConfig cfg;
    cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
    cfg.prefetch.initial_units = 16;  // one client must cover many devices
    auto res1 = dlfs::bench::run_dlfs(w1, cfg);

    Workload w16 = w1;
    w16.num_nodes = std::max<std::uint32_t>(n, 16);
    w16.clients = 16;
    w16.storage = n;
    dlfs::core::DlfsConfig cfg16 = cfg;
    cfg16.prefetch.initial_units = 4;
    auto res16 = dlfs::bench::run_dlfs(w16, cfg16);

    const double ideal1 =
        std::min(static_cast<double>(n) * dev_bw, nic_bw) / sample;
    const double ideal16 = static_cast<double>(n) * dev_bw / sample;
    const double eff1 = res1.samples_per_sec / ideal1;
    const double eff16 = res16.samples_per_sec / ideal16;
    eff1_sum += eff1;
    eff16_sum += eff16;
    dlfs16_series.push_back(res16.samples_per_sec);
    t.add_row({Table::integer(n), Table::num(ideal1 / 1e3, 1),
               Table::num(res1.samples_per_sec / 1e3, 1),
               Table::num(eff1 * 100, 1) + "%", Table::num(ideal16 / 1e3, 1),
               Table::num(res16.samples_per_sec / 1e3, 1),
               Table::num(eff16 * 100, 1) + "%", "Ksamples/s"});
  }
  t.print();
  const double n = static_cast<double>(device_counts.size());
  std::printf(
      "\npaper: DLFS-1C 93.4%% of ideal | measured avg %.1f%% ; DLFS-16C up "
      "to 88%% | measured avg %.1f%%\n",
      eff1_sum / n * 100, eff16_sum / n * 100);
  std::printf("DLFS-16C scaling 1->16 devices: %.2fx (linear = 16x)\n",
              dlfs16_series.back() / dlfs16_series.front());
  return 0;
}

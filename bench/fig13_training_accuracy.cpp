// Fig. 13 — Training accuracy: application-driven full randomization
// (Full_Rand) vs the DLFS-determined sample order (random chunks,
// sequential within a chunk), over 100 epochs.
//
// The paper trains AlexNet on image data; the question it answers —
// does chunk-relaxed ordering hurt SGD convergence? — is model-agnostic,
// so we train an MLP on a synthetic 10-class task (see DESIGN.md §2).
// A no-shuffle control is included to show the experiment *can* detect a
// bad order.
//
// Paper headline: "no observable differences in the training accuracy".

#include <cstdio>

#include "common/table.hpp"
#include "dnn/experiment.hpp"

using dlfs::Table;
using dlfs::dnn::OrderPolicy;

int main() {
  dlfs::print_banner("Fig 13: training accuracy, Full_Rand vs DLFS order");

  dlfs::dnn::SyntheticTaskConfig tcfg;
  tcfg.train_samples = 8192;
  tcfg.test_samples = 2048;
  tcfg.cluster_sigma = 2.2;  // hard enough that ordering could matter
  dlfs::dnn::SyntheticTask task(tcfg);

  dlfs::dnn::TrainRunConfig rcfg;
  rcfg.epochs = 100;
  rcfg.batch_size = 32;
  rcfg.learning_rate = 0.03f;

  const auto full =
      dlfs::dnn::train_with_order(task, OrderPolicy::kFullRandom, rcfg);
  const auto chunked =
      dlfs::dnn::train_with_order(task, OrderPolicy::kDlfsChunked, rcfg);
  const auto sequential =
      dlfs::dnn::train_with_order(task, OrderPolicy::kSequential, rcfg);

  Table t({"epoch", "Full_Rand", "DLFS", "No-shuffle (control)"});
  for (std::size_t e = 9; e < rcfg.epochs; e += 10) {
    t.add_row({Table::integer(e + 1),
               Table::num(full.test_accuracy_per_epoch[e] * 100, 2) + "%",
               Table::num(chunked.test_accuracy_per_epoch[e] * 100, 2) + "%",
               Table::num(sequential.test_accuracy_per_epoch[e] * 100, 2) +
                   "%"});
  }
  t.print();

  const double gap =
      (full.final_accuracy() - chunked.final_accuracy()) * 100.0;
  std::printf(
      "\npaper: no observable accuracy difference | measured final gap "
      "Full_Rand - DLFS = %.2f pp (final: %.2f%% vs %.2f%%)\n",
      gap, full.final_accuracy() * 100, chunked.final_accuracy() * 100);
  return 0;
}

// Fig. 9 — Scalability: aggregated throughput across 2..16 nodes (one
// emulated NVMe device each) at 512 B and 128 KB samples.
//
// Paper headlines:
//   * 512 B : DLFS 28.45x Ext4 and 104.38x Octopus on average;
//             near-linear DLFS scaling with node count
//   * 128 KB: DLFS +65.1% over Ext4; 1.37x over Octopus

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

using dlfs::Table;
using dlfs::bench::Workload;
using namespace dlfs::byte_literals;

int main() {
  dlfs::print_banner("Fig 9: scalability over 2..16 networked NVMe devices");

  const std::vector<std::uint32_t> node_counts = {2, 4, 8, 16};
  for (std::uint64_t size : {512_B, 128_KiB}) {
    Table t({"nodes", "Ext4", "Octopus", "DLFS", "DLFS/Ext4", "DLFS/Octo",
             "unit"});
    double sum_e4 = 0, sum_oc = 0;
    std::vector<double> dlfs_series;
    for (auto nodes : node_counts) {
      Workload w;
      w.num_nodes = nodes;
      w.sample_bytes = static_cast<std::uint32_t>(size);
      w.samples_per_node = size == 512 ? 3072 : 192;
      dlfs::core::DlfsConfig cfg;
      cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
      const double dl = dlfs::bench::run_dlfs(w, cfg).samples_per_sec;
      const double e4 = dlfs::bench::run_ext4(w, 1).samples_per_sec;
      const double oc = dlfs::bench::run_octopus(w).samples_per_sec;
      sum_e4 += dl / e4;
      sum_oc += dl / oc;
      dlfs_series.push_back(dl);
      t.add_row({Table::integer(nodes), Table::num(e4 / 1e3, 1),
                 Table::num(oc / 1e3, 1), Table::num(dl / 1e3, 1),
                 Table::num(dl / e4, 2) + "x", Table::num(dl / oc, 2) + "x",
                 "Ksamples/s"});
    }
    std::printf("\nsample size %s\n", dlfs::format_bytes(size).c_str());
    t.print();
    const double n = static_cast<double>(node_counts.size());
    if (size == 512) {
      std::printf(
          "paper: DLFS 28.45x Ext4 | measured %.2fx ; 104.38x Octopus | "
          "measured %.2fx\n",
          sum_e4 / n, sum_oc / n);
    } else {
      std::printf(
          "paper: DLFS +65.1%% vs Ext4 | measured +%.1f%% ; 1.37x Octopus | "
          "measured %.2fx\n",
          (sum_e4 / n - 1.0) * 100.0, sum_oc / n);
    }
    std::printf("DLFS scaling 2->16 nodes: %.2fx (linear would be 8x)\n",
                dlfs_series.back() / dlfs_series.front());
  }
  return 0;
}

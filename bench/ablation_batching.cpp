// Ablation of the design choices DESIGN.md §7 calls out (not a paper
// figure): batching mode, chunk size, SPDK queue depth, and the
// SCQ copy-thread pool, all on a single node with a local device.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"

using dlfs::Table;
using dlfs::bench::Workload;
using dlfs::core::BatchingMode;
using namespace dlfs::byte_literals;
using namespace dlsim::literals;

int main() {
  dlfs::print_banner("Ablation: DLFS batching design choices");

  // --- batching mode vs sample size ----------------------------------------
  {
    Table t({"sample", "none (DLFS-Base)", "sample-level", "chunk-level",
             "unit"});
    for (std::uint64_t size : {512_B, 4_KiB, 128_KiB}) {
      Workload w;
      w.num_nodes = 1;
      w.sample_bytes = static_cast<std::uint32_t>(size);
      w.samples_per_node = size <= 4_KiB ? 8192 : 512;
      std::vector<std::string> row = {dlfs::format_bytes(size)};
      for (auto mode : {BatchingMode::kNone, BatchingMode::kSampleLevel,
                        BatchingMode::kChunkLevel}) {
        dlfs::core::DlfsConfig cfg;
        cfg.batching = mode;
        // DLFS-Base is definitionally synchronous per-sample reads; keep
        // the generalized async daemon out of the baseline column.
        if (mode == BatchingMode::kNone) cfg.prefetch.enabled = false;
        row.push_back(
            Table::num(dlfs::bench::run_dlfs(w, cfg).samples_per_sec / 1e3, 1));
      }
      row.push_back("Ksamples/s");
      t.add_row(std::move(row));
    }
    std::printf("\nbatching mode\n");
    t.print();
  }

  // --- chunk size (512 B samples, chunk-level) ------------------------------
  {
    Table t({"chunk size", "Ksamples/s", "requests posted/sample"});
    Workload w;
    w.num_nodes = 1;
    w.sample_bytes = 512;
    w.samples_per_node = 16384;
    for (std::uint64_t chunk : {64_KiB, 128_KiB, 256_KiB, 512_KiB, 1_MiB}) {
      dlfs::core::DlfsConfig cfg;
      cfg.batching = BatchingMode::kChunkLevel;
      cfg.chunk_bytes = chunk;
      auto r = dlfs::bench::run_dlfs(w, cfg);
      t.add_row({dlfs::format_bytes(chunk),
                 Table::num(r.samples_per_sec / 1e3, 1),
                 Table::num(static_cast<double>(chunk) == 0
                                ? 0
                                : 512.0 / static_cast<double>(chunk),
                            4)});
    }
    std::printf("\nchunk size (512 B samples)\n");
    t.print();
  }

  // --- queue depth (sample-level batching, 4 KiB) ---------------------------
  {
    Table t({"queue depth", "Ksamples/s"});
    Workload w;
    w.num_nodes = 1;
    w.sample_bytes = 4096;
    w.samples_per_node = 8192;
    for (std::uint32_t qd : {1u, 4u, 16u, 64u, 128u}) {
      dlfs::core::DlfsConfig cfg;
      cfg.batching = BatchingMode::kSampleLevel;
      cfg.queue_depth = qd;
      auto r = dlfs::bench::run_dlfs(w, cfg);
      t.add_row({Table::integer(qd), Table::num(r.samples_per_sec / 1e3, 1)});
    }
    std::printf("\nSPDK queue depth (4 KiB, sample-level batching)\n");
    t.print();
  }

  // --- copy threads (chunk-level, 128 KiB) ----------------------------------
  {
    Table t({"copy threads", "Ksamples/s", "io-core util"});
    Workload w;
    w.num_nodes = 1;
    w.sample_bytes = 128_KiB;
    w.samples_per_node = 512;
    for (std::uint32_t ct : {0u, 1u, 2u, 4u}) {
      dlfs::core::DlfsConfig cfg;
      cfg.batching = BatchingMode::kChunkLevel;
      cfg.copy_threads = ct;
      auto r = dlfs::bench::run_dlfs(w, cfg);
      t.add_row({Table::integer(ct), Table::num(r.samples_per_sec / 1e3, 1),
                 Table::num(r.client_cpu_util, 2)});
    }
    std::printf("\nSCQ copy-thread pool (128 KiB, chunk-level)\n");
    t.print();
  }

  // --- zero-copy delivery (the paper's §III-C.2 future work) ---------------
  {
    Table t({"delivery", "Ksamples/s", "io+copy CPU us/sample"});
    for (bool zero_copy : {false, true}) {
      // bread vs bread_views over one epoch, single node, 4 KiB samples.
      dlsim::Simulator sim;
      dlfs::cluster::NodeConfig nc;
      nc.synthetic_store = true;
      nc.device_capacity = 1_GiB;
      dlfs::cluster::Cluster cluster(sim, 1, nc);
      auto ds = dlfs::dataset::make_fixed_size_dataset(8192, 4096);
      dlfs::cluster::Pfs pfs(sim, ds);
      dlfs::core::DlfsConfig cfg;
      cfg.batching = BatchingMode::kChunkLevel;
      dlfs::core::DlfsFleet fleet(cluster, pfs, ds, cfg);
      fleet.mount();
      auto& inst = fleet.instance(0);
      inst.sequence(1);
      inst.io_core().reset_accounting();
      const auto t0 = sim.now();
      sim.spawn([](dlfs::core::DlfsInstance& inst, bool zc)
                    -> dlsim::Task<void> {
        std::vector<std::byte> arena(64 * 4096);
        for (;;) {
          if (zc) {
            auto b = co_await inst.bread_views(32);
            if (b.end_of_epoch) break;
            inst.release_views(b);
          } else {
            auto b = co_await inst.bread(32, arena);
            if (b.end_of_epoch) break;
          }
        }
      }(inst, zero_copy));
      sim.run();
      sim.rethrow_failures();
      const double secs = dlsim::to_seconds(sim.now() - t0);
      const double cpu_us =
          dlsim::to_micros(inst.io_core().busy_ns() +
                           inst.engine().copy_busy_ns()) /
          8192.0;
      t.add_row({zero_copy ? "zero-copy views" : "copy to app buffer",
                 Table::num(8192.0 / secs / 1e3, 1), Table::num(cpu_us, 2)});
    }
    std::printf("\nzero-copy delivery (4 KiB, chunk-level)\n");
    t.print();
  }

  // --- sample cache across epochs (sample-level batching) -------------------
  {
    // When the working set fits in the huge-page sample cache, the second
    // epoch is served from memory: the V-bit fast path of dlfs_read.
    Table t({"epoch", "Ksamples/s", "cache hits", "device reads"});
    dlsim::Simulator sim;
    dlfs::cluster::NodeConfig nc;
    nc.synthetic_store = true;
    nc.device_capacity = 1_GiB;
    dlfs::cluster::Cluster cluster(sim, 1, nc);
    auto ds = dlfs::dataset::make_fixed_size_dataset(1024, 4096);
    dlfs::cluster::Pfs pfs(sim, ds);
    dlfs::core::DlfsConfig cfg;
    cfg.batching = BatchingMode::kSampleLevel;
    cfg.cache_chunks = 1100;  // whole dataset fits
    // Each cached sample occupies one pool chunk; size the pool for the
    // cache plus in-flight I/O.
    cfg.pool_bytes = 512ull * 1024 * 1024;
    dlfs::core::DlfsFleet fleet(cluster, pfs, ds, cfg);
    fleet.mount();
    auto& inst = fleet.instance(0);
    for (int epoch = 0; epoch < 2; ++epoch) {
      inst.sequence(100 + static_cast<std::uint64_t>(epoch));
      const auto t0 = sim.now();
      const auto hits0 = inst.cache().hits();
      const auto reads0 = cluster.node(0).device().commands_completed();
      sim.spawn([](dlfs::core::DlfsInstance& inst) -> dlsim::Task<void> {
        std::vector<std::byte> arena(64 * 4096);
        for (;;) {
          auto b = co_await inst.bread(32, arena);
          if (b.end_of_epoch) break;
        }
      }(inst));
      sim.run();
      sim.rethrow_failures();
      const double secs = dlsim::to_seconds(sim.now() - t0);
      t.add_row({Table::integer(static_cast<std::uint64_t>(epoch + 1)),
                 Table::num(1024.0 / secs / 1e3, 1),
                 Table::integer(inst.cache().hits() - hits0),
                 Table::integer(cluster.node(0).device().commands_completed() -
                                reads0)});
    }
    std::printf("\nsample-cache reuse across epochs (4 KiB, dataset fits)\n");
    t.print();
  }

  // --- read-ahead: sync batch-coupled vs async daemon -----------------------
  {
    // Same read-ahead depth and same pool budget for both modes; the app
    // computes between breads, so only the async window can overlap the
    // next batch's device time with that compute. Depth 0 = demand-only.
    Table t({"depth", "sync Ksamples/s", "async Ksamples/s", "async stalls",
             "stall ms"});
    dlfs::bench::JsonReport report("prefetch_sweep");
    Workload w;
    w.num_nodes = 1;
    w.sample_bytes = 128_KiB;
    w.samples_per_node = 768;
    const auto compute = 1500_us;  // app compute per bread
    for (std::uint32_t depth : {0u, 2u, 4u, 8u, 16u}) {
      dlfs::core::DlfsConfig cfg;
      cfg.batching = BatchingMode::kChunkLevel;
      cfg.prefetch.initial_units = depth;
      cfg.prefetch.enabled = false;
      auto sync_r = dlfs::bench::run_dlfs(w, cfg, compute);
      report.add("mode=sync depth=" + std::to_string(depth), sync_r);
      cfg.prefetch.enabled = true;
      auto async_r = dlfs::bench::run_dlfs(w, cfg, compute);
      report.add("mode=async depth=" + std::to_string(depth), async_r);
      t.add_row({Table::integer(depth),
                 Table::num(sync_r.samples_per_sec / 1e3, 1),
                 Table::num(async_r.samples_per_sec / 1e3, 1),
                 Table::integer(async_r.prefetch.units_stalled),
                 Table::num(static_cast<double>(async_r.prefetch.stall_ns) /
                                1e6,
                            2)});
    }
    std::printf("\nread-ahead: sync vs async (128 KiB, chunk-level, 1.5 ms "
                "compute between breads)\n");
    t.print();

    // Same sweep on the sample-level path, which the generalized daemon
    // now serves: the sync baseline is the legacy batched demand fetch
    // (no read-ahead, depth ignored), async fuses per-sample extents into
    // window units and overlaps them with the injected compute.
    Table ts({"depth", "sync Ksamples/s", "async Ksamples/s", "async stalls",
              "stall ms"});
    Workload ws;
    ws.num_nodes = 1;
    ws.sample_bytes = 4096;
    ws.samples_per_node = 8192;
    const auto compute_s = 200_us;
    for (std::uint32_t depth : {0u, 2u, 4u, 8u, 16u}) {
      dlfs::core::DlfsConfig cfg;
      cfg.batching = BatchingMode::kSampleLevel;
      cfg.prefetch.initial_units = depth;
      cfg.prefetch.enabled = false;
      auto sync_r = dlfs::bench::run_dlfs(ws, cfg, compute_s);
      report.add("mode=sync-sample depth=" + std::to_string(depth), sync_r);
      cfg.prefetch.enabled = true;
      auto async_r = dlfs::bench::run_dlfs(ws, cfg, compute_s);
      report.add("mode=async-sample depth=" + std::to_string(depth), async_r);
      ts.add_row({Table::integer(depth),
                  Table::num(sync_r.samples_per_sec / 1e3, 1),
                  Table::num(async_r.samples_per_sec / 1e3, 1),
                  Table::integer(async_r.prefetch.units_stalled),
                  Table::num(static_cast<double>(async_r.prefetch.stall_ns) /
                                 1e6,
                             2)});
    }
    std::printf("\nread-ahead: sync vs async (4 KiB, sample-level, 200 us "
                "compute between breads)\n");
    ts.print();
    std::printf("wrote %s\n", report.write().c_str());
  }
  return 0;
}

// Fig. 8 — Aggregated random-read throughput over 16 nodes (one emulated
// NVMe device per node) vs sample size, for DLFS, Octopus and Ext4.
//
// Paper headlines:
//   * samples <= 4 KB:  DLFS 9.72x Ext4, 6.05x Octopus
//   * samples >= 16 KB: DLFS 1.31x Ext4, 1.12x Octopus (average)

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

using dlfs::Table;
using dlfs::bench::Workload;
using namespace dlfs::byte_literals;

int main() {
  dlfs::print_banner("Fig 8: aggregated throughput over 16 nodes");

  const std::vector<std::uint64_t> sizes = {512, 4_KiB, 16_KiB, 128_KiB,
                                            1_MiB};
  Table t({"sample", "Ext4", "Octopus", "DLFS", "DLFS/Ext4", "DLFS/Octo",
           "unit"});
  std::vector<double> r_ext4, r_octo;
  for (auto size : sizes) {
    Workload w;
    w.num_nodes = 16;
    w.sample_bytes = static_cast<std::uint32_t>(size);
    w.samples_per_node = size <= 4_KiB    ? 2048
                         : size <= 16_KiB ? 1024
                         : size <= 128_KiB ? 192
                                           : 48;
    dlfs::core::DlfsConfig cfg;
    cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
    const double dl = dlfs::bench::run_dlfs(w, cfg).samples_per_sec;
    const double e4 = dlfs::bench::run_ext4(w, 1).samples_per_sec;
    const double oc = dlfs::bench::run_octopus(w).samples_per_sec;
    r_ext4.push_back(dl / e4);
    r_octo.push_back(dl / oc);
    t.add_row({dlfs::format_bytes(size), Table::num(e4 / 1e3, 1),
               Table::num(oc / 1e3, 1), Table::num(dl / 1e3, 1),
               Table::num(dl / e4, 2) + "x", Table::num(dl / oc, 2) + "x",
               "Ksamples/s"});
  }
  t.print();

  std::printf("\npaper-vs-measured headlines\n");
  std::printf(
      "  <=4KB : DLFS/Ext4 paper 9.72x | measured %.2fx ; DLFS/Octopus "
      "paper 6.05x | measured %.2fx\n",
      (r_ext4[0] + r_ext4[1]) / 2, (r_octo[0] + r_octo[1]) / 2);
  std::printf(
      "  >=16KB: DLFS/Ext4 paper 1.31x | measured %.2fx ; DLFS/Octopus "
      "paper 1.12x | measured %.2fx\n",
      (r_ext4[2] + r_ext4[3] + r_ext4[4]) / 3,
      (r_octo[2] + r_octo[3] + r_octo[4]) / 3);
  return 0;
}

// Perf-regression smoke — the CI gate for the delivery hot path.
//
// One pinned configuration (single node, 4 KiB samples, 2000 samples,
// batch 32, chunk-level batching, async prefetch at the default depth 4)
// is run twice: once through the dlfs_bread copy path and once through
// dlfs_bread_views (zero-copy view batches, double-buffered reader).
// The simulation is deterministic, so the committed baseline in
// bench/perf_baseline.json reproduces exactly on every machine; the
// tolerances below only leave headroom for intentional cost-model
// calibration changes that are small enough not to matter.
//
// The gate fails (exit 1) when any of these hold:
//   * either run's samples/sec drops below 90% of its baseline;
//   * either run's prefetch stall time exceeds baseline * 1.10 + 50 us
//     (the epsilon keeps a zero-stall baseline from forbidding noise);
//   * the zero-copy run memcpy'd anything (warm chunk units must be
//     handed out as views: bytes_copied == 0 steady-state);
//   * the zero-copy run is slower than the copy path.
//
// Flags:
//   --baseline PATH        gate against a committed baseline (CI entry)
//   --write-baseline PATH  refresh the baseline after an intentional
//                          perf change (commit the result)
//
// Results also land in BENCH_perf_smoke.json for artifact upload.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "harness.hpp"
#include "sim/time.hpp"

using dlfs::Table;
using dlfs::bench::RunResult;
using dlfs::bench::Workload;

namespace {

constexpr double kSpsFloorFraction = 0.90;   // fail below 90% of baseline
constexpr double kStallCeilFraction = 1.10;  // fail above 110% of baseline
constexpr double kStallEpsilonUs = 50.0;     // slack for zero-stall baselines

Workload pinned_workload() {
  Workload w;
  w.num_nodes = 1;
  w.sample_bytes = 4096;
  w.samples_per_node = 2000;
  w.batch_size = 32;
  return w;
}

dlfs::core::DlfsConfig pinned_config() {
  dlfs::core::DlfsConfig cfg;
  cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
  cfg.prefetch.enabled = true;
  cfg.prefetch.initial_units = 4;
  return cfg;
}

double stall_us(const RunResult& r) {
  return static_cast<double>(r.prefetch.stall_ns) / 1e3;
}

/// Minimal flat-JSON number lookup — enough for the baseline file this
/// bench itself writes (no nesting, unique keys), so no JSON dependency.
std::optional<double> find_number(const std::string& text,
                                  const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return std::nullopt;
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

void write_baseline(const std::string& path, const RunResult& copy,
                    const RunResult& zc) {
  std::ofstream out(path);
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"copy_samples_per_sec\": %.1f,\n"
                "  \"copy_stall_us\": %.1f,\n"
                "  \"zero_copy_samples_per_sec\": %.1f,\n"
                "  \"zero_copy_stall_us\": %.1f\n"
                "}\n",
                copy.samples_per_sec, stall_us(copy), zc.samples_per_sec,
                stall_us(zc));
  out << buf;
}

/// One run vs. its baseline pair; returns false (and prints why) on
/// regression.
bool gate_run(const char* label, const RunResult& r, double base_sps,
              double base_stall_us) {
  bool ok = true;
  if (r.samples_per_sec < base_sps * kSpsFloorFraction) {
    std::fprintf(stderr,
                 "FAIL [%s] samples/sec regressed: %.1f < %.0f%% of "
                 "baseline %.1f\n",
                 label, r.samples_per_sec, kSpsFloorFraction * 100.0,
                 base_sps);
    ok = false;
  }
  const double stall_ceil =
      base_stall_us * kStallCeilFraction + kStallEpsilonUs;
  if (stall_us(r) > stall_ceil) {
    std::fprintf(stderr,
                 "FAIL [%s] prefetch stall grew: %.1f us > ceiling %.1f us "
                 "(baseline %.1f us)\n",
                 label, stall_us(r), stall_ceil, base_stall_us);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string refresh_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-baseline") == 0 &&
               i + 1 < argc) {
      refresh_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--baseline PATH] [--write-baseline PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  dlfs::print_banner("Perf smoke: delivery hot path vs committed baseline");

  const Workload base_w = pinned_workload();
  const dlfs::core::DlfsConfig cfg = pinned_config();

  Workload copy_w = base_w;
  const RunResult copy = dlfs::bench::run_dlfs(copy_w, cfg);

  Workload zc_w = base_w;
  zc_w.zero_copy = true;
  const RunResult zc = dlfs::bench::run_dlfs(zc_w, cfg);

  Table t({"path", "samples/s", "stall_us", "bytes_copied",
           "bytes_zero_copy"});
  t.add_row({"copy", Table::num(copy.samples_per_sec, 1),
             Table::num(stall_us(copy), 1), Table::integer(copy.bytes_copied),
             Table::integer(copy.bytes_zero_copy)});
  t.add_row({"zero_copy", Table::num(zc.samples_per_sec, 1),
             Table::num(stall_us(zc), 1), Table::integer(zc.bytes_copied),
             Table::integer(zc.bytes_zero_copy)});
  t.print();

  dlfs::bench::JsonReport report("perf_smoke");
  report.add("path=copy", copy);
  report.add("path=zero_copy", zc);
  std::printf("wrote %s\n", report.write().c_str());

  if (!refresh_path.empty()) {
    write_baseline(refresh_path, copy, zc);
    std::printf("baseline refreshed: %s\n", refresh_path.c_str());
    return 0;
  }

  bool ok = true;

  // Invariants that hold regardless of the baseline: a warm prefetched
  // epoch through bread_views must not memcpy sample bytes, and the
  // zero-copy path must not lose to the path that does strictly more
  // work per sample.
  if (zc.bytes_copied != 0) {
    std::fprintf(stderr,
                 "FAIL [zero_copy] copied %llu bytes; warm chunk units must "
                 "deliver as views\n",
                 static_cast<unsigned long long>(zc.bytes_copied));
    ok = false;
  }
  if (zc.bytes_zero_copy == 0) {
    std::fprintf(stderr, "FAIL [zero_copy] no bytes delivered as views\n");
    ok = false;
  }
  if (zc.samples_per_sec < copy.samples_per_sec) {
    std::fprintf(stderr,
                 "FAIL zero-copy slower than copy path: %.1f < %.1f "
                 "samples/sec\n",
                 zc.samples_per_sec, copy.samples_per_sec);
    ok = false;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr,
                   "FAIL cannot read baseline %s (regenerate with "
                   "--write-baseline)\n",
                   baseline_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const auto c_sps = find_number(text, "copy_samples_per_sec");
    const auto c_stall = find_number(text, "copy_stall_us");
    const auto z_sps = find_number(text, "zero_copy_samples_per_sec");
    const auto z_stall = find_number(text, "zero_copy_stall_us");
    if (!c_sps || !c_stall || !z_sps || !z_stall) {
      std::fprintf(stderr, "FAIL baseline %s is missing keys\n",
                   baseline_path.c_str());
      return 1;
    }
    ok &= gate_run("copy", copy, *c_sps, *c_stall);
    ok &= gate_run("zero_copy", zc, *z_sps, *z_stall);
  }

  std::printf("perf smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// Host-time microbenchmark (google-benchmark): throughput of the DES
// kernel itself — events/second through the scheduler, channel hand-offs,
// and process spawn cost. These bound how large a simulated experiment
// stays tractable.

#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace {

using dlsim::Channel;
using dlsim::Simulator;
using dlsim::Task;

void BM_DelayEvents(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    sim.spawn([](Simulator& s, int count) -> Task<void> {
      for (int i = 0; i < count; ++i) co_await s.delay(10);
    }(sim, n));
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DelayEvents)->Arg(1 << 12)->Arg(1 << 16);

void BM_ChannelHandoff(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    Channel<int> ch(sim, 8);
    sim.spawn([](Channel<int>& c, int count) -> Task<void> {
      for (int i = 0; i < count; ++i) co_await c.push(i);
      c.close();
    }(ch, n));
    sim.spawn([](Channel<int>& c) -> Task<void> {
      for (;;) {
        auto v = co_await c.pop();
        if (!v) break;
      }
    }(ch));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChannelHandoff)->Arg(1 << 12)->Arg(1 << 15);

void BM_SpawnJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < n; ++i) {
      sim.spawn([](Simulator& s) -> Task<void> { co_await s.delay(1); }(sim));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SpawnJoin)->Arg(1 << 10)->Arg(1 << 13);

}  // namespace

BENCHMARK_MAIN();

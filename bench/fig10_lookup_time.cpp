// Fig. 10 — Sample lookup time for 1 million samples across 2..16 nodes
// (512 B and 128 KB samples; size only matters for staging).
//
// DLFS: in-memory AVL directory lookup. Ext4: file open (the paper's
// equivalent). Octopus: metadata lookup RPC to the hash owner.
//
// Paper headlines: Ext4's lookup is ~2 orders of magnitude above DLFS;
// Octopus is worst; only DLFS's total lookup time falls linearly with
// node count (each node looks up only its 1M/N share).
//
// Method note: per-lookup cost is measured over a 10k-lookup sample with
// up to 50k staged files per node (the cost is flat beyond the metadata
// caches, which these counts already exceed); the reported totals are
// per-lookup cost x (1M / nodes) lookups per node.

#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"

using dlfs::Table;
using namespace dlfs::byte_literals;

int main() {
  dlfs::print_banner("Fig 10: sample lookup time (1M samples)");

  constexpr double kTotalSamples = 1e6;
  const std::vector<std::uint32_t> node_counts = {2, 4, 8, 16};
  // Metadata cost is independent of sample size (the paper's two panels
  // differ only through measurement noise), so one sweep serves both the
  // 512 B and 128 KB panels.
  Table t({"nodes", "DLFS us/lookup", "Ext4 us/open", "Octopus us/lookup",
           "DLFS total", "Ext4 total", "Octopus total"});
  std::vector<double> dlfs_totals;
  for (auto nodes : node_counts) {
    const std::size_t files_per_node = std::min<std::size_t>(
        static_cast<std::size_t>(kTotalSamples) / nodes, 50000);
    auto lt = dlfs::bench::measure_lookup_times(nodes, files_per_node, 512,
                                                10000);
    const double per_node_lookups = kTotalSamples / nodes;
    const double d_total = lt.dlfs_us * per_node_lookups / 1e6;     // s
    const double e_total = lt.ext4_us * per_node_lookups / 1e6;    // s
    const double o_total = lt.octopus_us * per_node_lookups / 1e6;  // s
    dlfs_totals.push_back(d_total);
    t.add_row({Table::integer(nodes), Table::num(lt.dlfs_us, 3),
               Table::num(lt.ext4_us, 2), Table::num(lt.octopus_us, 2),
               Table::num(d_total, 3) + " s", Table::num(e_total, 2) + " s",
               Table::num(o_total, 2) + " s"});
  }
  std::printf("\n(512 B and 128 KB panels share these numbers)\n");
  t.print();
  std::printf(
      "DLFS total lookup time 2->16 nodes: %.2fx lower (linear would be "
      "8x)\n",
      dlfs_totals.front() / dlfs_totals.back());
  std::printf(
      "\npaper: Ext4 ~2 orders of magnitude above DLFS; Octopus worst; "
      "only DLFS scales down linearly\n");
  return 0;
}

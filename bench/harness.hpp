#pragma once

// Shared workload harness for the figure-reproduction benches: builds a
// cluster, stages a fixed-size dataset on DLFS / Ext4 / OctoFS, runs one
// epoch of random sample reads, and reports throughput and CPU numbers
// out of the deterministic simulation.
//
// Methodology notes (mirrors the paper's §IV setup):
//  * random reads, batch of 32 samples unless a figure says otherwise;
//  * DLFS and Ext4 issue I/O from one core per client (the paper's
//    single-core configuration) unless a sweep varies it;
//  * multi-node Ext4 reads its node-local shard (the paper: "Ext4 reads
//    data locally"); DLFS and OctoFS read the global dataset;
//  * results come from simulated time, so one run is exact — the paper's
//    five-run averaging guards against noise we don't have.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/calibration.hpp"
#include "dlfs/dlfs.hpp"
#include "sim/time.hpp"
#include "spdk/io_queue.hpp"

namespace dlfs::bench {

struct Workload {
  std::uint32_t num_nodes = 1;
  std::uint32_t clients = 0;  // 0 = every node
  std::uint32_t storage = 0;  // 0 = every node
  // Client i runs on node (client_node_offset + i) % num_nodes. Fig. 11's
  // single-client case sets this past the storage nodes so every device
  // is remote.
  std::uint32_t client_node_offset = 0;
  std::uint32_t sample_bytes = 4096;
  std::size_t samples_per_node = 2000;
  std::size_t batch_size = 32;
  std::uint64_t seed = 42;
  // DLFS runs only: read the epoch through dlfs_bread_views (zero-copy
  // view batches, chunk-level batching required) instead of dlfs_bread.
  // The reader double-buffers: each batch stays pinned while the next
  // one is fetched, then its ViewLease releases it.
  bool zero_copy = false;
  Calibration calibration{};
};

/// Scheduled storage-node failure for an availability run: crash storage
/// slot `crash_slot` at `crash_at` (relative to the epoch start), and
/// optionally bring it back at `recover_at`. Default = no fault.
struct FaultPlan {
  std::int32_t crash_slot = -1;  // storage slot to crash; -1 = healthy run
  dlsim::SimDuration crash_at = 0;
  std::optional<dlsim::SimDuration> recover_at;
};

struct RunResult {
  double samples_per_sec = 0.0;
  double bytes_per_sec = 0.0;
  double client_cpu_util = 0.0;  // mean across client I/O cores
  dlsim::SimDuration elapsed = 0;
  std::uint64_t samples = 0;
  double lookup_us_avg = 0.0;  // mean per-sample lookup/open time
  // DLFS-only counters (zero for the baselines): sample-cache traffic and
  // the async prefetcher's window statistics, summed over clients (window
  // high-water mark and target are maxima).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // Delivery-path byte split (DLFS only): memcpy'd bytes vs bytes handed
  // out as zero-copy views, plus units still pinned at epoch end and
  // copy jobs that ran on a core other than their producer's.
  std::uint64_t bytes_copied = 0;
  std::uint64_t bytes_zero_copy = 0;
  std::uint64_t view_pins_active = 0;
  std::uint64_t cross_core_handoffs = 0;
  core::PrefetchStats prefetch{};
  // Fault-domain counters, summed over clients: device-level retries, the
  // transport's timeout/reconnect tallies, samples the degraded epoch
  // skipped, and how many storage nodes were still down at the end.
  std::uint64_t io_retries = 0;
  spdk::IoQueueStats transport{};
  std::uint64_t samples_skipped = 0;
  std::uint32_t nodes_down = 0;
  // Self-healing counters, summed over clients: permanent-loss
  // declarations observed, samples re-replicated by the repair engine,
  // bytes of repair traffic, and repair submissions delayed by the
  // repair-bandwidth budget.
  std::uint64_t nodes_declared_dead = 0;
  std::uint64_t samples_rereplicated = 0;
  std::uint64_t repair_bytes = 0;
  std::uint64_t repair_throttles = 0;
  // Multi-tenant QoS and sharded-directory counters, summed over
  // clients: batch deliveries deferred by the token-bucket arbiter, the
  // directory view's hit/miss split, and bytes of directory fill
  // traffic. (tools/dlfslint/telemetry_check enforces that every
  // InstanceStats counter reaches this struct and the json report.)
  std::uint64_t qos_deferrals = 0;
  core::DirectoryViewStats directory{};
  std::uint64_t directory_bytes = 0;
  // Cooperative peer-cache counters, summed over clients: samples served
  // out of a co-located instance's cache, samples pulled from a remote
  // client's DRAM over the fabric, peer lookups that fell back to the
  // replica read path, and total peer-served bytes.
  std::uint64_t peer_hits_local = 0;
  std::uint64_t peer_hits_remote = 0;
  std::uint64_t peer_misses = 0;
  std::uint64_t peer_bytes = 0;
};

/// One epoch of dlfs_bread across all clients. A FaultPlan crashes one
/// storage node mid-epoch; the epoch then completes over the surviving
/// subset (RunResult::samples_skipped counts what was lost).
[[nodiscard]] RunResult run_dlfs(const Workload& w, core::DlfsConfig cfg,
                                 dlsim::SimDuration injected_poll_compute = 0,
                                 const FaultPlan& faults = {});

/// One epoch of open/pread/close over node-local Ext4, `threads_per_node`
/// reader threads per node (1 = Ext4-Base, >1 = Ext4-MC).
[[nodiscard]] RunResult run_ext4(const Workload& w,
                                 std::uint32_t threads_per_node = 1);

/// One epoch of open+RDMA-read over OctoFS (one client per node).
[[nodiscard]] RunResult run_octopus(const Workload& w);

/// Fig. 10: per-lookup metadata cost (directory lookup for DLFS, open for
/// Ext4, lookup RPC for OctoFS) measured over `measure_count` random
/// samples with `files_per_node` staged per node.
struct LookupTimes {
  double dlfs_us = 0.0;
  double ext4_us = 0.0;
  double octopus_us = 0.0;
};
[[nodiscard]] LookupTimes measure_lookup_times(std::uint32_t num_nodes,
                                               std::size_t files_per_node,
                                               std::uint32_t sample_bytes,
                                               std::size_t measure_count);

/// Accumulates bench results and writes them as BENCH_<name>.json in the
/// current directory — one flat JSON object per row, newline-separated
/// inside a top-level array, so figure scripts and CI can diff runs.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Adds one row; `config` tags the sweep point (e.g. "depth=4 mode=async").
  void add(const std::string& config, const RunResult& r);

  /// Writes BENCH_<name>.json; returns the path written.
  std::string write() const;

 private:
  struct Row {
    std::string config;
    RunResult result;
  };
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace dlfs::bench

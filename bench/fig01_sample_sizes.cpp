// Fig. 1 — Sample size distribution for different datasets.
//
// The paper plots size CDFs for ImageNet (75% of samples < 147 KB) and
// IMDB (75% < 1.6 KB) to motivate the many-small-random-reads pattern.
// We regenerate both from the fitted synthetic distributions and report
// the quartiles next to the paper's.

#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"

int main() {
  using dlfs::Table;
  dlfs::print_banner("Fig 1: sample size distribution (ImageNet-like, IMDB-like)");

  constexpr std::size_t kSamples = 50000;

  auto imagenet = dlfs::dataset::make_imagenet_like_dataset(kSamples, 42);
  auto imdb = dlfs::dataset::make_imdb_like_dataset(kSamples, 42);

  auto report = [](const dlfs::dataset::Dataset& ds, double paper_p75) {
    dlfs::Percentiles p;
    auto hist = dlfs::Histogram::pow2(256.0, 8.0 * 1024 * 1024);
    for (const auto& s : ds.samples()) {
      p.add(s.size);
      hist.add(s.size);
    }
    std::printf("\n%s (%zu samples, %s total)\n", ds.name().c_str(),
                ds.num_samples(),
                dlfs::format_bytes(ds.total_bytes()).c_str());
    std::printf("%s", hist.render_cdf("B").c_str());
    Table t({"percentile", "size"});
    for (double q : {25.0, 50.0, 75.0, 95.0, 99.0}) {
      t.add_row({"p" + Table::num(q, 0),
                 dlfs::format_bytes(static_cast<std::uint64_t>(
                     p.percentile(q)))});
    }
    t.print();
    std::printf("paper: 75%% of samples below %.1f KB | measured p75 = %.1f KB\n",
                paper_p75 / 1e3, p.percentile(75) / 1e3);
  };

  report(imagenet, 147e3);
  report(imdb, 1.6e3);
  return 0;
}

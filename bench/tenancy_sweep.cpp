// Tenancy sweep — multi-job QoS on shared storage nodes.
//
// Several DLFS fleets (one per tenant) mount over the *same* four
// storage nodes, each carving a disjoint device region (device_base)
// and pinning its client I/O thread to its own core of the shared
// client node (client_core_base). The tenants register with one
// TenantGovernor, whose start-time weighted-fair clocks arbitrate the
// shared NVMe devices and fabric pipes at admission time.
//
// Two modes:
//
//   --smoke   3 identical tenants under QoS. Exits non-zero if any
//             tenant falls below 75% of its fair throughput share, any
//             sample is skipped, or the Jain fairness index over
//             weight-normalized throughput drops below 0.9. Run as the
//             `tenancy_smoke` ctest and in CI.
//
//   (default) noisy-neighbor sweep: a victim runs alone, then against a
//             noisy tenant (deep 64-unit prefetch window) with QoS off,
//             then with QoS on (victim kHigh). The acceptance bar from
//             the sharding/QoS issue: the noisy tenant degrades the
//             victim's p99 batch latency by < 10% with QoS on, while
//             the QoS-off run shows the regression the governor is
//             there to prevent.
//
// Per tenant the bench reports throughput, p50/p99 samples/sec (batch
// rates; p99 = the rate of the 99th-percentile-slowest batch), p50/p99
// batch latency, and admission deferrals; per scenario the Jain
// fairness index (sum x)^2 / (n * sum x^2) over throughput / weight.
// Always writes BENCH_tenancy_sweep.json for CI upload.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/pfs.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dataset/dataset.hpp"
#include "dlfs/dlfs.hpp"
#include "harness.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

using dlsim::Task;
using namespace dlsim::literals;
using namespace dlfs::byte_literals;

namespace {

constexpr std::uint32_t kSampleBytes = 4096;
constexpr std::uint32_t kBatch = 16;

struct TenantSpec {
  std::string name;
  std::uint32_t weight = 1;
  dlfs::core::QosClass priority = dlfs::core::QosClass::kNormal;
  std::uint32_t prefetch_units = 0;  // 0 = library defaults
  std::size_t samples = 4096;
  std::uint32_t epochs = 2;
  // Loop epochs until the stop flag rises (the noisy neighbor keeps the
  // devices saturated for exactly as long as the victim is measuring).
  bool run_until_stopped = false;
};

struct TenantResult {
  std::string name;
  std::uint32_t weight = 1;
  std::uint64_t samples = 0;
  std::uint64_t skipped = 0;
  std::uint64_t deferrals = 0;
  double elapsed_ms = 0.0;
  double throughput = 0.0;  // samples/sec over the tenant's own run
  double p50_sps = 0.0;     // median per-batch rate
  double p99_sps = 0.0;     // rate of the 99th-percentile-slowest batch
  double p50_batch_us = 0.0;
  double p99_batch_us = 0.0;
};

struct Scenario {
  std::string name;
  bool qos = false;
  std::vector<TenantSpec> tenants;
};

struct ScenarioResult {
  std::string name;
  bool qos = false;
  double fairness = 0.0;
  std::vector<TenantResult> tenants;
};

dlfs::core::DlfsConfig tenant_config(
    const TenantSpec& spec, std::size_t idx,
    std::shared_ptr<dlfs::core::TenantGovernor> gov) {
  dlfs::core::DlfsConfig c;
  c.batching = dlfs::core::BatchingMode::kChunkLevel;
  // Disjoint device regions + disjoint client cores: the tenants share
  // the storage *hardware* (device service queues, fabric pipes) but
  // nothing logical.
  c.device_base = static_cast<std::uint64_t>(idx) * 256_MiB;
  c.client_core_base = static_cast<std::uint32_t>(idx);
  if (spec.prefetch_units != 0) {
    c.prefetch.initial_units = spec.prefetch_units;
    c.prefetch.max_units = spec.prefetch_units;
  }
  c.tenant.name = spec.name;
  c.tenant.weight = spec.weight;
  c.tenant.priority = spec.priority;
  c.tenant.governor = std::move(gov);
  return c;
}

// One tenant = one fleet with its own dataset staged into its own device
// region; the shared pieces are the cluster's nodes and fabric.
struct Job {
  dlfs::dataset::Dataset ds;
  dlfs::cluster::Pfs pfs;
  dlfs::core::DlfsFleet fleet;
  TenantSpec spec;
  std::vector<dlsim::SimDuration> batch_lat;
  std::vector<std::size_t> batch_samples;
  dlsim::SimTime t_start = 0;
  dlsim::SimTime t_end = 0;

  Job(dlsim::Simulator& sim, dlfs::cluster::Cluster& cl,
      const TenantSpec& s, std::size_t idx,
      std::shared_ptr<dlfs::core::TenantGovernor> gov)
      : ds(dlfs::dataset::make_fixed_size_dataset(s.samples, kSampleBytes)),
        pfs(sim, ds),
        fleet(cl, pfs, ds, tenant_config(s, idx, std::move(gov)),
              /*client_nodes=*/{4}, /*storage_nodes=*/{0, 1, 2, 3}),
        spec(s) {
    fleet.mount();
  }
};

Task<void> tenant_reader(dlsim::Simulator& sim, Job& job, const bool& stop,
                         bool& done) {
  auto& inst = job.fleet.instance(0);
  std::vector<std::byte> arena(64_KiB);
  job.t_start = sim.now();
  std::uint32_t epoch = 0;
  bool running = true;
  while (running) {
    inst.sequence(++epoch);
    for (;;) {
      const dlsim::SimTime t0 = sim.now();
      auto b = co_await inst.bread(kBatch, arena);
      if (b.end_of_epoch) break;
      job.batch_lat.push_back(sim.now() - t0);
      job.batch_samples.push_back(b.samples.size());
      if (stop && job.spec.run_until_stopped) break;
    }
    if (job.spec.run_until_stopped) {
      running = !stop;
    } else {
      running = epoch < job.spec.epochs;
    }
  }
  job.t_end = sim.now();
  done = true;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

TenantResult summarize(Job& job) {
  TenantResult r;
  r.name = job.spec.name;
  r.weight = job.spec.weight;
  r.skipped = job.fleet.instance(0).stats().samples_skipped;
  r.deferrals = job.fleet.instance(0).stats().qos_deferrals;
  std::vector<double> lat_us;
  std::vector<double> rates;
  for (std::size_t i = 0; i < job.batch_lat.size(); ++i) {
    r.samples += job.batch_samples[i];
    const double us = dlsim::to_micros(job.batch_lat[i]);
    lat_us.push_back(us);
    if (us > 0.0) {
      rates.push_back(static_cast<double>(job.batch_samples[i]) /
                      (us / 1e6));
    }
  }
  const double elapsed_s = dlsim::to_seconds(job.t_end - job.t_start);
  r.elapsed_ms = elapsed_s * 1e3;
  r.throughput =
      elapsed_s > 0 ? static_cast<double>(r.samples) / elapsed_s : 0.0;
  r.p50_batch_us = percentile(lat_us, 0.50);
  r.p99_batch_us = percentile(lat_us, 0.99);
  r.p50_sps = percentile(rates, 0.50);
  r.p99_sps = percentile(rates, 0.01);  // slow tail
  return r;
}

double jain_fairness(const std::vector<TenantResult>& tenants) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto& t : tenants) {
    const double x = t.throughput / static_cast<double>(t.weight);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum /
         (static_cast<double>(tenants.size()) * sum_sq);
}

ScenarioResult run_scenario(const Scenario& sc) {
  dlsim::Simulator sim;
  dlfs::cluster::Cluster cluster(sim, 5, dlfs::cluster::NodeConfig{});
  std::shared_ptr<dlfs::core::TenantGovernor> gov;
  if (sc.qos) gov = std::make_shared<dlfs::core::TenantGovernor>();

  std::vector<std::unique_ptr<Job>> jobs;
  for (std::size_t i = 0; i < sc.tenants.size(); ++i) {
    jobs.push_back(std::make_unique<Job>(sim, cluster, sc.tenants[i], i, gov));
  }

  // The stop flag is the union of the finite tenants' completions: the
  // run_until_stopped tenants keep the devices busy until every measured
  // tenant has finished.
  std::vector<std::unique_ptr<bool>> done;
  bool all_finite_done = false;
  for (auto& job : jobs) {
    done.push_back(std::make_unique<bool>(false));
    sim.spawn(tenant_reader(sim, *job, all_finite_done, *done.back()),
              "tenant-" + job->spec.name);
  }
  sim.spawn(
      [](dlsim::Simulator& s, std::vector<std::unique_ptr<Job>>& js,
         std::vector<std::unique_ptr<bool>>& flags,
         bool& all_done) -> Task<void> {
        for (;;) {
          bool pending = false;
          for (std::size_t i = 0; i < js.size(); ++i) {
            if (!js[i]->spec.run_until_stopped && !*flags[i]) pending = true;
          }
          if (!pending) break;
          co_await s.delay(100_us);
        }
        all_done = true;
      }(sim, jobs, done, all_finite_done),
      "stop-watcher");

  sim.run_watchdog(sim.now() + 600_sec);
  sim.rethrow_failures();

  ScenarioResult res;
  res.name = sc.name;
  res.qos = sc.qos;
  for (auto& job : jobs) res.tenants.push_back(summarize(*job));
  res.fairness = jain_fairness(res.tenants);
  return res;
}

void print_scenario(const ScenarioResult& res) {
  std::printf("-- %s (qos=%s, fairness=%.4f)\n", res.name.c_str(),
              res.qos ? "on" : "off", res.fairness);
  dlfs::Table table({"tenant", "w", "samples", "skipped", "sps", "p50_sps",
                     "p99_sps", "p50_us", "p99_us", "deferrals"});
  for (const auto& t : res.tenants) {
    table.add_row({t.name, dlfs::Table::integer(t.weight),
                   dlfs::Table::integer(t.samples),
                   dlfs::Table::integer(t.skipped),
                   dlfs::Table::num(t.throughput, 0),
                   dlfs::Table::num(t.p50_sps, 0),
                   dlfs::Table::num(t.p99_sps, 0),
                   dlfs::Table::num(t.p50_batch_us, 1),
                   dlfs::Table::num(t.p99_batch_us, 1),
                   dlfs::Table::integer(t.deferrals)});
  }
  table.print();
}

void write_artifact(const std::string& mode,
                    const std::vector<ScenarioResult>& scenarios,
                    bool passed) {
  const std::string path = "BENCH_tenancy_sweep.json";
  std::ofstream out(path);
  out << "{\n  \"mode\": \"" << mode << "\",\n  \"passed\": "
      << (passed ? "true" : "false") << ",\n  \"scenarios\": [\n";
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const auto& sc = scenarios[s];
    out << "    {\"name\": \"" << sc.name << "\", \"qos\": "
        << (sc.qos ? "true" : "false") << ", \"fairness\": " << sc.fairness
        << ", \"tenants\": [\n";
    for (std::size_t t = 0; t < sc.tenants.size(); ++t) {
      const auto& tr = sc.tenants[t];
      out << "      {\"name\": \"" << tr.name << "\", \"weight\": "
          << tr.weight << ", \"samples\": " << tr.samples
          << ", \"skipped\": " << tr.skipped
          << ", \"samples_per_sec\": " << tr.throughput
          << ", \"p50_samples_per_sec\": " << tr.p50_sps
          << ", \"p99_samples_per_sec\": " << tr.p99_sps
          << ", \"p50_batch_us\": " << tr.p50_batch_us
          << ", \"p99_batch_us\": " << tr.p99_batch_us
          << ", \"qos_deferrals\": " << tr.deferrals << "}"
          << (t + 1 < sc.tenants.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (s + 1 < scenarios.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

int run_smoke() {
  dlfs::print_banner("Tenancy smoke: 3 equal tenants, shared governor");
  Scenario sc;
  sc.name = "3x_equal_qos";
  sc.qos = true;
  for (int i = 0; i < 3; ++i) {
    TenantSpec t;
    t.name = "tenant" + std::to_string(i);
    t.samples = 3072;
    t.epochs = 2;
    sc.tenants.push_back(t);
  }
  const ScenarioResult res = run_scenario(sc);
  print_scenario(res);

  double total = 0.0;
  for (const auto& t : res.tenants) total += t.throughput;
  const double fair = total / static_cast<double>(res.tenants.size());
  bool ok = res.fairness >= 0.9;
  for (const auto& t : res.tenants) {
    if (t.skipped != 0) {
      std::fprintf(stderr, "FAIL: tenant %s skipped %llu samples\n",
                   t.name.c_str(),
                   static_cast<unsigned long long>(t.skipped));
      ok = false;
    }
    if (t.throughput < 0.75 * fair) {
      std::fprintf(stderr,
                   "FAIL: tenant %s below fair share: %.0f < 0.75 * %.0f\n",
                   t.name.c_str(), t.throughput, fair);
      ok = false;
    }
  }
  if (res.fairness < 0.9) {
    std::fprintf(stderr, "FAIL: fairness index %.4f < 0.9\n", res.fairness);
  }
  write_artifact("smoke", {res}, ok);
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int run_sweep() {
  dlfs::print_banner("Tenancy sweep: noisy neighbor vs QoS");

  TenantSpec victim;
  victim.name = "victim";
  victim.samples = 4096;
  victim.epochs = 3;

  TenantSpec noisy;
  noisy.name = "noisy";
  noisy.samples = 8192;
  noisy.prefetch_units = 64;  // deep window: floods the shared devices
  noisy.run_until_stopped = true;

  Scenario alone{"victim_alone", /*qos=*/false, {victim}};
  Scenario qos_off{"noisy_qos_off", /*qos=*/false, {victim, noisy}};
  TenantSpec victim_hi = victim;
  victim_hi.priority = dlfs::core::QosClass::kHigh;
  Scenario qos_on{"noisy_qos_on", /*qos=*/true, {victim_hi, noisy}};

  std::vector<ScenarioResult> results;
  for (const auto* sc : {&alone, &qos_off, &qos_on}) {
    results.push_back(run_scenario(*sc));
    print_scenario(results.back());
  }

  const double base_p99 = results[0].tenants[0].p99_batch_us;
  const double off_p99 = results[1].tenants[0].p99_batch_us;
  const double on_p99 = results[2].tenants[0].p99_batch_us;
  const double deg_off = base_p99 > 0 ? off_p99 / base_p99 - 1.0 : 0.0;
  const double deg_on = base_p99 > 0 ? on_p99 / base_p99 - 1.0 : 0.0;
  std::printf(
      "victim p99 batch latency: alone=%.1fus qos_off=%.1fus (+%.1f%%) "
      "qos_on=%.1fus (+%.1f%%)\n",
      base_p99, off_p99, deg_off * 100.0, on_p99, deg_on * 100.0);

  // Acceptance: with QoS the noisy tenant costs the victim < 10% of p99;
  // without it the regression the governor prevents must actually show.
  bool ok = deg_on < 0.10 && deg_off > deg_on;
  for (const auto& res : results) {
    for (const auto& t : res.tenants) {
      if (t.skipped != 0) ok = false;
    }
  }
  write_artifact("sweep", results, ok);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: QoS did not protect the victim (deg_on=%.1f%% "
                 "deg_off=%.1f%%)\n",
                 deg_on * 100.0, deg_off * 100.0);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  return smoke ? run_smoke() : run_sweep();
}

// Availability sweep — degraded-epoch behaviour under a storage-node
// crash (robustness companion to the throughput figures; the paper's
// fault model, §II: a user-level client must survive a target reboot
// without an epoch-long stall).
//
// One client node reads a 2-target remote pool. Sweep A crashes target 0
// at increasing points through the epoch and never brings it back: the
// epoch must still terminate, serving the surviving subset and counting
// the rest as skipped. Sweep B crashes at a fixed point and varies the
// outage length: short outages are absorbed by command replay after
// reconnect (zero skips), long ones degrade the epoch.
//
// Flags:
//   --smoke          shrunken dataset and one point per sweep (CI entry)
//   --replication N  k-way replica placement; with N >= 2 a permanent
//                    single-node crash must skip ZERO samples (reads fail
//                    over to the surviving replica) — the run exits
//                    non-zero if any Sweep A point skips.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "harness.hpp"
#include "sim/time.hpp"

using dlfs::Table;
using dlfs::bench::FaultPlan;
using dlfs::bench::Workload;
using namespace dlsim::literals;

namespace {

Workload remote_pool_workload() {
  Workload w;
  w.num_nodes = 3;
  w.clients = 1;
  w.storage = 2;
  w.client_node_offset = 2;  // both devices remote
  w.sample_bytes = 128 * 1024;
  w.samples_per_node = 512;
  return w;
}

dlfs::core::DlfsConfig fault_config() {
  dlfs::core::DlfsConfig cfg;
  cfg.batching = dlfs::core::BatchingMode::kChunkLevel;
  cfg.prefetch.initial_units = 8;
  // The timeout must clear the healthy tail queueing delay at this
  // prefetch depth (a few ms) or the transport false-positives; 20 ms
  // still lets detection + reconnect fit inside one epoch.
  cfg.fault.nvmf.command_timeout = 20_ms;
  cfg.fault.nvmf.reconnect_backoff = 200_us;
  cfg.fault.nvmf.reconnect_backoff_max = 2_ms;
  cfg.fault.nvmf.reconnect_attempts = 4;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint32_t replication = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--replication") == 0 && i + 1 < argc) {
      replication = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--replication N]\n",
                   argv[0]);
      return 2;
    }
  }

  dlfs::print_banner(
      "Availability: epoch continuation across storage-node crashes");
  std::printf("replication=%u%s\n", replication, smoke ? " (smoke)" : "");

  Workload w = remote_pool_workload();
  if (smoke) w.samples_per_node = 128;
  dlfs::core::DlfsConfig cfg = fault_config();
  cfg.fault.replication = replication;
  dlfs::bench::JsonReport report(
      replication > 1 ? "availability_sweep_r" + std::to_string(replication)
                      : std::string("availability_sweep"));

  const auto baseline = dlfs::bench::run_dlfs(w, cfg);
  report.add("fault=none", baseline);
  const double epoch_ms = dlsim::to_micros(baseline.elapsed) / 1e3;

  // Sweep A: permanent crash at a fraction of the healthy epoch time.
  // With replication >= 2 every sample has a live replica, so a single
  // permanent crash must cost routing, not samples: skipped == 0.
  bool replication_held = true;
  const std::vector<double> fracs =
      smoke ? std::vector<double>{0.3}
            : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9};
  Table ta({"crash_at", "epoch", "served", "skipped", "timeouts", "unit"});
  ta.add_row({"never", Table::num(epoch_ms, 2), Table::integer(baseline.samples),
              Table::integer(baseline.samples_skipped),
              Table::integer(baseline.transport.timeouts), "ms/samples"});
  for (const double frac : fracs) {
    FaultPlan plan;
    plan.crash_slot = 0;
    plan.crash_at = static_cast<dlsim::SimDuration>(
        static_cast<double>(baseline.elapsed) * frac);
    const auto r = dlfs::bench::run_dlfs(w, cfg, 0, plan);
    report.add("fault=crash frac=" + Table::num(frac, 1), r);
    ta.add_row({Table::num(frac * 100, 0) + "%",
                Table::num(dlsim::to_micros(r.elapsed) / 1e3, 2),
                Table::integer(r.samples), Table::integer(r.samples_skipped),
                Table::integer(r.transport.timeouts), "ms/samples"});
    if (replication >= 2 && r.samples_skipped != 0) replication_held = false;
  }
  std::printf("\nSweep A: permanent crash of 1 of 2 targets\n");
  ta.print();

  // Sweep B: crash at 30%, vary the outage before recovery.
  Table tb({"outage", "epoch", "served", "skipped", "reconnects", "replays",
            "unit"});
  const auto crash_at = static_cast<dlsim::SimDuration>(
      static_cast<double>(baseline.elapsed) * 0.3);
  const std::vector<double> outages =
      smoke ? std::vector<double>{10.0}
            : std::vector<double>{1.0, 10.0, 40.0, 200.0};
  for (const double out_ms : outages) {
    FaultPlan plan;
    plan.crash_slot = 0;
    plan.crash_at = crash_at;
    plan.recover_at =
        crash_at + static_cast<dlsim::SimDuration>(out_ms * 1e6);
    const auto r = dlfs::bench::run_dlfs(w, cfg, 0, plan);
    report.add("fault=crash-recover outage_ms=" + Table::num(out_ms, 1), r);
    tb.add_row({Table::num(out_ms, 1) + "ms",
                Table::num(dlsim::to_micros(r.elapsed) / 1e3, 2),
                Table::integer(r.samples), Table::integer(r.samples_skipped),
                Table::integer(r.transport.reconnects),
                Table::integer(r.transport.replays), "ms/samples"});
  }
  std::printf("\nSweep B: crash at 30%%, recover after an outage\n");
  tb.print();

  std::printf("wrote %s\n", report.write().c_str());
  if (!replication_held) {
    std::fprintf(stderr,
                 "FAIL: replication=%u run skipped samples on a single-node "
                 "crash\n",
                 replication);
    return 1;
  }
  return 0;
}
